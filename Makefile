GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race bench bench-record check difftest faultinject fuzz soak obs cluster chaos storagefault

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race pass runs in -short mode: the brute-force reference miners of
# the heavyweight cross-validation tests are orders of magnitude slower
# under the race detector and those tests exercise no concurrency — the
# plain `test` pass covers them, and the parallel-scheduling determinism
# and cancellation tests (the ones the race detector is for) do not skip.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Record the benchmark trajectory: BenchmarkMine at three database
# scales for both tree engines (slab default vs the seed pointer tree
# behind Options.PointerTree), written as BENCH_pr6.json at the repo
# root. Format documented in EXPERIMENTS.md. Set DISC_BENCH_SUMMARY to
# also append a markdown comparison table (CI points it at
# $$GITHUB_STEP_SUMMARY) and DISC_BENCH_ENFORCE=1 to fail unless the
# slab engine cuts allocs/op by >= 25% and improves ns/op at the medium
# and large scales.
BENCH_RECORD ?= BENCH_pr6.json
bench-record:
	DISC_BENCH_RECORD=$(BENCH_RECORD) $(GO) test -run TestBenchRecord -count=1 -v -timeout 1800s .

# The full differential grid (128 generated/mutated databases × every
# miner and DISC option combination) under the race detector. The plain
# `test` pass already runs the grid without -race; `race` samples it
# (-short). This target is the exhaustive combination CI runs as its own
# job.
difftest:
	$(GO) test -race -run TestDifferentialGrid -count=1 ./internal/difftest

# Deterministic fault injection under the race detector: injected worker
# panics must surface as typed errors (never crashes), and runs killed at
# injected partition boundaries must resume from their checkpoints
# byte-identically to a straight run, across a sampled differential grid.
faultinject:
	$(GO) test -race -run 'TestFaultInjection' -count=1 ./internal/difftest
	$(GO) test -race -run 'TestWorkerPanicContained|TestPanicContainedEverySite|TestCheckpointResumeByteIdentical|TestProgressNeverConcurrent' -count=1 ./internal/core
	$(GO) test -race -run 'TestInjectedPanic|TestKillRestartResubmit|TestResubmitSameManager|TestPeriodicSnapshots|TestConcurrent' -count=1 ./internal/jobs
	$(GO) test -race -run 'TestWorkerPanicTypedPayload|TestInjectedCancel|TestFlakyRequestBody' -count=1 ./cmd/discserve

# End-to-end soak of the discserve binary as a real process: build it,
# drive the operational contract over HTTP (413 on oversized input, 429
# with Retry-After under overload, dedup, cancel), kill -9 it mid-job,
# restart over the same checkpoint dir and require the resumed result to
# be byte-identical to a discmine run, then SIGTERM for a clean drain
# with exit code 0. Opt-in via the DISC_SOAK gate because it builds
# binaries and mines a deliberately slow job.
soak:
	DISC_SOAK=1 $(GO) test -race -run TestServiceSoak -count=1 -v -timeout 600s ./cmd/discserve

# Distributed mining under the race detector: the sharded-engine
# foundation in core (shard-union byte identity, including the
# policy-less configurations), the shard protocol and coordinator
# retry/reschedule logic in internal/cluster, the discserve role wiring
# (in-process fleets over the real HTTP surface), and the
# cluster-equals-local differential grid with injected worker faults
# (mid-shard panic rescheduled from its checkpoint, dropped
# connections).
cluster:
	$(GO) test -race -run 'TestShard' -count=1 ./internal/core ./internal/checkpoint
	$(GO) test -race -count=1 ./internal/cluster
	$(GO) test -race -run 'TestFleet|TestParseFlagsCluster' -count=1 ./cmd/discserve
	$(GO) test -race -run TestClusterEqualsLocalGrid -count=1 ./internal/difftest

# Coordinator-side chaos under the race detector: the self-healing
# suite in internal/cluster (circuit breakers, heartbeat-TTL expiry
# rescheduling, hedged dispatch, injected coordinator crash resumed from
# the durable shard ledger), the startup-validation and ledger recovery
# wiring in discserve, the chaos differential grid (every regime must
# end byte-identical to a local run AND prove its fault fired), and the
# real-binary drill: a two-worker fleet whose coordinator is kill -9'd
# mid-job and restarted over the same -ledger-dir, resuming only the
# unfinished shards to a byte-identical result.
chaos:
	$(GO) test -race -run 'TestBreaker|TestExpiredWorker|TestHedged|TestCoordinatorCrash|TestRecoverResubmits' -count=1 ./internal/cluster
	$(GO) test -race -run 'TestParseFlagsRejectsWedged|TestOrphanedCheckpoints' -count=1 ./cmd/discserve ./internal/jobs
	$(GO) test -race -run TestClusterChaosGrid -count=1 ./internal/difftest
	DISC_CHAOS=1 $(GO) test -race -run TestFleetCoordinatorKill9 -count=1 -v -timeout 600s ./cmd/discserve

# Storage faults under the race detector: the durable-state plane's
# filesystem seam and fault FS (deterministic ENOSPC budgets, torn
# writes, sync errors, silent bit flips), quarantine-not-crash recovery
# and degraded-durability in jobs and cluster, retention GC and the
# resting-file scrubber, the healthz/metrics surfacing in discserve, and
# the disk-fault differential grid (byte-identical or typed degraded
# completion, never a crash, every regime proving its fault fired).
# Finishes with a fuzz smoke of both durable-document decoders: any
# input either decodes or fails typed (ErrCorrupt/ErrVersion) — never a
# panic.
storagefault:
	$(GO) test -race -run 'TestStorage|TestKindOf|TestSweep|TestScrub|TestQuarantine|TestFSNil' -count=1 ./internal/checkpoint ./internal/faultinject ./internal/cluster
	$(GO) test -race -run 'TestCheckpointFailuresCountedAndDegrade|TestDurabilityRearmsAfterProbe|TestCorruptCheckpointQuarantinedNotCrash|TestStartupGCReclaimsOrphans|TestStartupScrubQuarantinesBitRot|TestPeriodicStorageGC' -count=1 ./internal/jobs
	$(GO) test -race -run 'TestHealthzSurfacesDegradedDurability|TestMetricsExposeStorageFamilies' -count=1 ./cmd/discserve
	$(GO) test -race -run TestStorageFaultGrid -count=1 ./internal/difftest
	$(GO) test -run '^$$' -fuzz FuzzRead$$ -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz FuzzReadLedger -fuzztime $(FUZZTIME) ./internal/checkpoint

# The observability suite under the race detector: the registry/tracer
# package itself (including the 16-goroutine hammer and the exposition
# golden file), the engine's registry-vs-Stats read-through parity and
# progress-stream closing contract, the substrate recorders, and the
# metrics/trace surfaces of both binaries.
obs:
	$(GO) test -race -count=1 ./internal/obs
	$(GO) test -race -run 'TestObs|TestProgressFinal' -count=1 ./internal/core
	$(GO) test -race -run 'TestRecorder' -count=1 ./internal/avl ./internal/counting
	$(GO) test -race -run 'TestMetricsEndpoint|TestHealthzKeepsOldKeys' -count=1 ./cmd/discserve
	$(GO) test -race -run 'TestMetricsOut|TestTraceEmits' -count=1 ./cmd/discmine

# Coverage-guided fuzzing smoke pass: Go allows one -fuzz pattern per
# invocation, so each target gets its own run.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDISCAllVsOracle -fuzztime $(FUZZTIME) ./internal/difftest
	$(GO) test -run '^$$' -fuzz FuzzDynamicVsOracle -fuzztime $(FUZZTIME) ./internal/difftest

# check is what CI runs: vet, build, the full suite, then the race pass.
check: vet build test race
