GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race pass runs in -short mode: the brute-force reference miners of
# the heavyweight cross-validation tests are orders of magnitude slower
# under the race detector and those tests exercise no concurrency — the
# plain `test` pass covers them, and the parallel-scheduling determinism
# and cancellation tests (the ones the race detector is for) do not skip.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# check is what CI runs: vet, build, the full suite, then the race pass.
check: vet build test race
