// Command experiments regenerates the tables and figures of the evaluation
// section (§4) of Chiu, Wu & Chen (ICDE 2004).
//
// Usage:
//
//	experiments -exp all -scale 0.1 [-seed 1] [-v]
//	experiments -exp fig8,table13 -scale 1      # paper-sized run
//
// Scale multiplies the paper's customer counts; relative thresholds and all
// other parameters are preserved, so curve shapes and ratios remain
// comparable at reduced scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/disc-mining/disc/internal/bench"
)

// parseInts parses a comma-separated integer list ("" -> nil).
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list ("" -> nil).
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exp := fs.String("exp", "all", "comma-separated experiment ids, or 'all' (available: table5, fig8, fig9, table12, table13, table14, fig10, ablation, speedup)")
	scale := fs.Float64("scale", 0.1, "fraction of the paper's database sizes (1 = paper scale)")
	seed := fs.Int64("seed", 1, "generator seed")
	workers := fs.Int("workers", 0, "partition worker pool size for the disc-all variants (0 = one per CPU)")
	verbose := fs.Bool("v", false, "print one line per measurement")
	csvPath := fs.String("csv", "", "append raw measurements of all experiments to this CSV file")
	sizes := fs.String("sizes", "", "comma-separated customer counts overriding the fig8 sweep")
	fracs := fs.String("fracs", "", "comma-separated minimum supports overriding the fig9/table12/table13/ablation sweep")
	thetas := fs.String("thetas", "", "comma-separated theta values overriding the table14/fig10 sweep")
	chart := fs.Bool("chart", false, "render ASCII bar charts after each timing experiment")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Workers: *workers}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	var err error
	if cfg.Sizes, err = parseInts(*sizes); err != nil {
		return fmt.Errorf("-sizes: %w", err)
	}
	if cfg.Fracs, err = parseFloats(*fracs); err != nil {
		return fmt.Errorf("-fracs: %w", err)
	}
	if cfg.Thetas, err = parseFloats(*thetas); err != nil {
		return fmt.Errorf("-thetas: %w", err)
	}

	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			todo = append(todo, e)
		}
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		csvFile = f
	}
	for _, e := range todo {
		r, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		r.Render(stdout)
		if *chart {
			r.RenderChart(stdout)
		}
		if csvFile != nil {
			if err := r.WriteCSV(csvFile); err != nil {
				return err
			}
		}
	}
	return nil
}
