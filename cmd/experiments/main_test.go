package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTable5ViaCLI(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table5"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GSP", "SPADE", "SPAM", "PrefixSpan", "DISC-all"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %s in:\n%s", want, out.String())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig99"}, &out); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

func TestCommaSeparatedList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table5, table5"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "== table5") != 2 {
		t.Errorf("expected two table5 renders:\n%s", out.String())
	}
}

func TestCSVFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	var out bytes.Buffer
	if err := run([]string{"-exp", "table5", "-csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "experiment,algo,x,seconds,patterns") {
		t.Errorf("csv = %q", data)
	}
}

func TestSweepOverrideParsing(t *testing.T) {
	if got, err := parseInts(" 300, 600 "); err != nil || len(got) != 2 || got[1] != 600 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if got, err := parseFloats("0.05,0.02"); err != nil || len(got) != 2 || got[0] != 0.05 {
		t.Errorf("parseFloats = %v, %v", got, err)
	}
	if _, err := parseInts("x"); err == nil {
		t.Error("bad ints must error")
	}
	if _, err := parseFloats("y"); err == nil {
		t.Error("bad floats must error")
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "table5", "-sizes", "zz"}, &out); err == nil {
		t.Error("bad -sizes must error")
	}
}
