// Command paperwalk prints the worked examples of §1–§3 of Chiu, Wu & Chen
// (ICDE 2004) — Tables 1-4 and 8-10, the ordering examples, the SPADE
// ID-list merge and the bi-level counting of Example 3.5 — with every value
// computed by this repository's implementations, for side-by-side
// comparison with the paper.
package main

import (
	"fmt"
	"os"

	"github.com/disc-mining/disc/internal/walkthrough"
)

func main() {
	if err := walkthrough.Run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperwalk:", err)
		os.Exit(1)
	}
}
