package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.txt")
	err := run([]string{"-ncust", "50", "-nitems", "40", "-slen", "4", "-tlen", "2",
		"-nseqpats", "30", "-nlitpats", "100", "-seed", "3", "-o", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 50 {
		t.Errorf("wrote %d lines, want 50", lines)
	}
	if !strings.Contains(string(data), "(") {
		t.Errorf("native format expected:\n%s", string(data)[:100])
	}
}

func TestGenerateSPMF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.spmf")
	err := run([]string{"-ncust", "10", "-nitems", "20", "-nseqpats", "20", "-nlitpats", "50",
		"-format", "spmf", "-o", path})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "-2") {
		t.Errorf("SPMF format expected:\n%s", data)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"-format", "bogus"}); err == nil {
		t.Error("unknown format must error")
	}
	if err := run([]string{"-ncust", "-5"}); err == nil {
		t.Error("negative ncust must error")
	}
}
