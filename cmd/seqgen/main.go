// Command seqgen synthesizes customer-sequence databases with the
// IBM-Quest-style generator, using the option names of Table 11 of Chiu,
// Wu & Chen (ICDE 2004).
//
// Usage:
//
//	seqgen -ncust 50000 -slen 10 -tlen 2.5 -nitems 1000 -seq.patlen 4 \
//	       -seed 1 -o db.txt [-format native|spmf]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/gen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "seqgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("seqgen", flag.ContinueOnError)
	var cfg gen.Config
	fs.IntVar(&cfg.NCust, "ncust", 10000, "number of customers")
	fs.Float64Var(&cfg.SLen, "slen", 10, "average number of transactions per customer")
	fs.Float64Var(&cfg.TLen, "tlen", 2.5, "average number of items per transaction")
	fs.IntVar(&cfg.NItems, "nitems", 1000, "number of different items")
	fs.Float64Var(&cfg.SeqPatLen, "seq.patlen", 4, "average length of maximal potentially-large sequences")
	fs.Float64Var(&cfg.LitPatLen, "lit.patlen", 1.25, "average size of potentially-large itemsets")
	fs.IntVar(&cfg.NSeqPatterns, "nseqpats", 5000, "size of the potentially-large sequence pool")
	fs.IntVar(&cfg.NLitPatterns, "nlitpats", 25000, "size of the potentially-large itemset pool")
	fs.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "native", "output format: native or spmf")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var f data.Format
	switch *format {
	case "native":
		f = data.Native
	case "spmf":
		f = data.SPMF
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	db, err := gen.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, data.Describe(db))
	if *out == "" {
		return data.Write(os.Stdout, db, f)
	}
	return data.WriteFile(*out, db, f)
}
