package main

import (
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/cliutil"
	"github.com/disc-mining/disc/internal/faultinject"
)

// TestSharedFlagsAccepted is the drift regression for the budget and
// checkpoint flag set shared with discmine: every name cliutil exports
// must parse here, so the two binaries cannot diverge.
func TestSharedFlagsAccepted(t *testing.T) {
	for _, name := range cliutil.SharedFlagNames() {
		if _, err := parseFlags([]string{"-" + name + "=0"}); err != nil {
			t.Errorf("shared flag -%s rejected: %v", name, err)
		}
	}
}

func TestParseFlagsMapping(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0",
		"-jobs", "3", "-queue", "5", "-workers", "4",
		"-job-timeout", "90s", "-drain-timeout", "11s",
		"-checkpoint-dir", "/tmp/ckpt", "-checkpoint-interval", "2s",
		"-max-patterns", "1000", "-max-mem-bytes", "4096",
		"-max-body-bytes", "2048", "-max-line-bytes", "512", "-max-tokens", "64",
		"-cache", "9", "-retry-after", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:0" || cfg.jobs.Workers != 3 || cfg.jobs.QueueDepth != 5 ||
		cfg.workers != 4 || cfg.jobs.JobTimeout != 90*time.Second ||
		cfg.drainTimeout != 11*time.Second || cfg.jobs.CheckpointDir != "/tmp/ckpt" ||
		cfg.jobs.CheckpointInterval != 2*time.Second {
		t.Errorf("service flags misrouted: %+v", cfg)
	}
	// The shared budget flags must land on the manager's job budgets —
	// this is the plumbing that keeps discmine and discserve enforcing
	// the same limits.
	if cfg.jobs.MaxPatterns != 1000 || cfg.jobs.MaxMemBytes != 4096 {
		t.Errorf("shared budget flags misrouted: %+v", cfg.jobs)
	}
	if cfg.maxBodyBytes != 2048 || cfg.limits.MaxLineBytes != 512 || cfg.limits.MaxTokens != 64 {
		t.Errorf("input limit flags misrouted: %+v", cfg)
	}
	if cfg.jobs.CacheJobs != 9 || cfg.jobs.RetryAfter != 3*time.Second {
		t.Errorf("cache/retry flags misrouted: %+v", cfg.jobs)
	}
	if cfg.jobs.Faults != nil {
		t.Error("fault injector armed without fault flags")
	}
}

func TestParseFlagsFaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-fault-seed", "7", "-fault-panic-after", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.jobs.Faults == nil {
		t.Fatal("fault flags did not arm an injector")
	}
	if cfg.jobs.Faults.Fired(faultinject.WorkerPanic) != 0 {
		t.Error("injector fired before any work")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
