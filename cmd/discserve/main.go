// Command discserve runs the DISC mining engine as a hardened HTTP
// service: a bounded job queue with admission control and load
// shedding, per-job deadlines and resource budgets, panic containment,
// fingerprint-keyed job deduplication (identical submissions attach to
// the in-flight job or hit the result cache), checkpoint/resume across
// restarts, and graceful drain on SIGTERM.
//
// Usage:
//
//	discserve -addr :8375 [-jobs 2] [-queue 16] [-checkpoint-dir /var/lib/discserve] [-max-patterns N] [-max-mem-bytes N]
//
// Endpoints:
//
//	POST   /jobs?minsup=0.01[&algo=disc-all&workers=4&timeout=30s&wait=1]  (body: database, native or SPMF)
//	GET    /jobs/{id}          status (typed error payload on failures)
//	GET    /jobs/{id}/result   patterns, text/plain, canonical order
//	DELETE /jobs/{id}          cancel (progress is checkpointed)
//	GET    /healthz            liveness + metrics
//	GET    /readyz             admission readiness (503 while draining)
//	GET    /metrics            Prometheus text exposition
//	GET    /debug/jobs/{id}/timeline  assembled fleet-wide trace timeline of the job
//
// With -admin-addr, a second listener serves /metrics, the job
// timelines (and, with -pprof, the /debug/pprof/* profiling surface)
// away from the job API, so scraping and profiling are never exposed
// on the tenant-facing port. -trace additionally streams every span
// record as a structured JSON log line to stderr as it closes.
//
// Cluster roles (-role): a coordinator shards each disc-all-family job
// across its -peers and self-registered workers (POST /cluster/register
// is the heartbeat), rescheduling failed shards from their checkpoints
// and assembling a byte-identical result; a worker serves POST
// /cluster/shard and, with -coordinator, announces itself there every
// -heartbeat. Both roles keep the full job API. -cluster-secret sets a
// shared fleet secret required on the /cluster/* endpoints; without it
// they are open, which is safe only on a trusted network.
//
// A coordinator self-heals: with -ledger-dir it journals every shard
// scheduling decision to a durable per-job ledger and, on restart,
// resubmits interrupted jobs and resumes only their unfinished shards
// (byte-identical result, no client action needed); per-worker circuit
// breakers (-breaker-failures/-breaker-backoff/-breaker-max-backoff)
// park failing workers with jittered exponential backoff and half-open
// probes; -hedge-quantile duplicates straggling shard attempts onto a
// second worker once they outlive the fleet's latency quantile
// (-hedge-min floor, -hedge-budget cap). Configurations that would
// wedge a fleet — zero timeouts, a heartbeat TTL under the heartbeat
// interval — are rejected at startup.
//
// Overload answers 429 with Retry-After; oversized inputs answer 413;
// SIGTERM stops admission, finishes (or checkpoints) the backlog within
// -drain-timeout, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/disc-mining/disc/internal/cliutil"
	"github.com/disc-mining/disc/internal/cluster"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/obs"

	// Imported for their miner registrations: the service accepts every
	// algorithm name the registry knows.
	_ "github.com/disc-mining/disc"
)

// serveConfig is everything the flags decide, factored out so tests can
// parse a flag vector without starting a server.
type serveConfig struct {
	addr         string
	adminAddr    string
	pprof        bool
	trace        bool
	jobs         jobs.Config
	limits       data.Limits
	maxBodyBytes int64
	workers      int
	drainTimeout time.Duration

	// Cluster role wiring (-role coordinator|worker|standalone).
	role          string
	cluster       cluster.Config // coordinator side
	coordinator   string         // worker side: coordinator base URL to register with
	advertise     string         // worker side: our externally reachable base URL
	heartbeat     time.Duration  // worker side: registration interval
	clusterSecret string         // shared fleet secret (both roles)
	storageGC     time.Duration  // cadence of the coordinator's ledger-dir GC
	faults        *faultinject.Injector
}

// parseFlags maps the command line onto a serveConfig. The budget and
// checkpoint flags are the shared cliutil set, so discmine and discserve
// cannot drift apart.
func parseFlags(args []string) (serveConfig, error) {
	fs := flag.NewFlagSet("discserve", flag.ContinueOnError)
	var cfg serveConfig
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8375", "listen address (host:port; port 0 picks a free port)")
	fs.StringVar(&cfg.adminAddr, "admin-addr", "", "serve /metrics (and -pprof) on this separate address (empty = disabled)")
	fs.BoolVar(&cfg.pprof, "pprof", false, "expose /debug/pprof/* on the admin listener (requires -admin-addr)")
	fs.BoolVar(&cfg.trace, "trace", false, "stream span records as structured JSON log lines to stderr (trace/span/parent IDs included)")
	fs.IntVar(&cfg.jobs.Workers, "jobs", 2, "jobs mined concurrently")
	fs.IntVar(&cfg.jobs.QueueDepth, "queue", 16, "admitted-but-not-running backlog bound; beyond it submissions are shed with 429")
	fs.IntVar(&cfg.workers, "workers", 0, "default per-job partition worker pool size (0 = one per CPU)")
	fs.DurationVar(&cfg.jobs.JobTimeout, "job-timeout", 0, "per-job deadline (0 = none)")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "SIGTERM grace: in-flight jobs past it are canceled and checkpointed")
	fs.StringVar(&cfg.jobs.CheckpointDir, "checkpoint-dir", "", "persist per-job checkpoints here; interrupted jobs resume on resubmission")
	fs.Int64Var(&cfg.maxBodyBytes, "max-body-bytes", 64<<20, "reject request bodies larger than this with 413")
	fs.IntVar(&cfg.limits.MaxLineBytes, "max-line-bytes", 0, "per-line input size limit (0 = default)")
	fs.IntVar(&cfg.limits.MaxTokens, "max-tokens", 0, "per-line token count limit (0 = default)")
	fs.IntVar(&cfg.jobs.CacheJobs, "cache", 64, "terminal jobs retained for result caching and idempotent retries")
	fs.DurationVar(&cfg.jobs.RetryAfter, "retry-after", time.Second, "Retry-After hint on 429/503 responses")
	fs.StringVar(&cfg.role, "role", "standalone", "cluster role: standalone, coordinator (shard jobs across -peers and registered workers) or worker (serve /cluster/shard)")
	peers := fs.String("peers", "", "coordinator: comma-separated static worker base URLs")
	fs.IntVar(&cfg.cluster.Shards, "shards", 0, "coordinator: shards per job (0 = one per live worker)")
	fs.DurationVar(&cfg.cluster.ShardTimeout, "shard-timeout", 5*time.Minute, "coordinator: per-attempt shard deadline; a shard past it is rescheduled from its checkpoint")
	fs.IntVar(&cfg.cluster.Retries, "shard-retries", 3, "coordinator: reschedules per shard before mining it locally")
	fs.DurationVar(&cfg.cluster.HeartbeatTTL, "heartbeat-ttl", 30*time.Second, "coordinator: registered workers expire this long after their last heartbeat; an expired worker's in-flight shards are rescheduled immediately")
	fs.StringVar(&cfg.cluster.LedgerDir, "ledger-dir", "", "coordinator: persist a per-job shard ledger here; a restarted coordinator recovers interrupted jobs from it and re-runs only their unfinished shards")
	fs.IntVar(&cfg.cluster.BreakerFailures, "breaker-failures", 3, "coordinator: consecutive transport failures that open a worker's circuit breaker (typed worker errors get double the grace)")
	fs.DurationVar(&cfg.cluster.Cooldown, "breaker-backoff", 10*time.Second, "coordinator: base backoff of an open circuit breaker; consecutive trips double it, jittered")
	fs.DurationVar(&cfg.cluster.BreakerMaxBackoff, "breaker-max-backoff", 2*time.Minute, "coordinator: cap on the open-circuit backoff")
	fs.Float64Var(&cfg.cluster.HedgeQuantile, "hedge-quantile", 0.95, "coordinator: hedge a shard attempt once it outlives this quantile of observed dispatch latencies (0 disables hedging)")
	fs.DurationVar(&cfg.cluster.HedgeMinDelay, "hedge-min", time.Second, "coordinator: floor on the hedge delay")
	fs.IntVar(&cfg.cluster.HedgeBudget, "hedge-budget", 0, "coordinator: speculative dispatches allowed per job (0 = one per shard, negative disables)")
	fs.StringVar(&cfg.coordinator, "coordinator", "", "worker: coordinator base URL to register with (empty = rely on the coordinator's static -peers)")
	fs.StringVar(&cfg.advertise, "advertise", "", "worker: externally reachable base URL to register (default http://<bound addr>)")
	fs.DurationVar(&cfg.heartbeat, "heartbeat", 10*time.Second, "worker: registration heartbeat interval")
	fs.StringVar(&cfg.clusterSecret, "cluster-secret", "", "shared fleet secret required on /cluster/register and /cluster/shard (empty = open; trusted networks only)")
	fs.DurationVar(&cfg.jobs.StorageRetention, "storage-retention", 168*time.Hour, "reclaim orphaned checkpoints, stale ledgers, quarantined *.corrupt files and .tmp leftovers older than this (0 = keep forever)")
	fs.DurationVar(&cfg.storageGC, "storage-gc-interval", time.Hour, "cadence of the periodic storage GC and resting-file CRC scrub over the checkpoint and ledger directories (0 = startup pass only)")
	seed := fs.Int64("fault-seed", 0, "fault injection seed (testing/drills)")
	panicN := fs.Int("fault-panic-after", 0, "inject a worker panic on the N-th partition (testing/drills)")
	cancelN := fs.Int("fault-cancel-after", 0, "inject a cancellation on the N-th partition (testing/drills)")
	dropProb := fs.Float64("fault-shard-drop", 0, "worker: drop shard connections with this probability (testing/drills)")
	slowProb := fs.Float64("fault-shard-slow", 0, "worker: stall shard requests with this probability (testing/drills)")
	hangN := fs.Int("fault-shard-hang-after", 0, "worker: hang the N-th shard request until it is canceled (testing/drills)")
	crashN := fs.Int("fault-coordinator-crash-after", 0, "coordinator: abort the job at its N-th shard-ledger transition (testing/drills)")
	enospcB := fs.Int("fault-enospc-after-bytes", 0, "fail durable-state writes with ENOSPC once this many bytes have been accepted (testing/drills)")
	tornProb := fs.Float64("fault-torn-write", 0, "tear durable-state writes (persist half, report short write) with this probability (testing/drills)")
	syncProb := fs.Float64("fault-sync-error", 0, "fail durable-state fsyncs with EIO with this probability (testing/drills)")
	flipProb := fs.Float64("fault-bitflip", 0, "silently flip one bit of a durable-state write with this probability (testing/drills)")
	shared := cliutil.RegisterShared(fs) // -max-patterns, -max-mem-bytes, -checkpoint-interval
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.jobs.MaxPatterns = shared.MaxPatterns
	cfg.jobs.MaxMemBytes = shared.MaxMemBytes
	cfg.jobs.CheckpointInterval = shared.CheckpointInterval
	switch cfg.role {
	case "standalone", "coordinator", "worker":
	default:
		return cfg, fmt.Errorf("-role must be standalone, coordinator or worker (got %q)", cfg.role)
	}
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			cfg.cluster.Peers = append(cfg.cluster.Peers, p)
		}
	}
	// Fail fast on scheduling parameters that would quietly wedge a
	// fleet: a zero shard timeout never reschedules anything, a TTL at or
	// under the heartbeat interval expires healthy workers between beats.
	if cfg.cluster.ShardTimeout <= 0 {
		return cfg, fmt.Errorf("-shard-timeout must be positive (got %s)", cfg.cluster.ShardTimeout)
	}
	if cfg.cluster.Retries < 0 {
		return cfg, fmt.Errorf("-shard-retries must not be negative (got %d)", cfg.cluster.Retries)
	}
	if cfg.heartbeat <= 0 {
		return cfg, fmt.Errorf("-heartbeat must be positive (got %s)", cfg.heartbeat)
	}
	if cfg.cluster.HeartbeatTTL <= cfg.heartbeat {
		return cfg, fmt.Errorf("-heartbeat-ttl (%s) must exceed the -heartbeat interval (%s), or workers expire between beats",
			cfg.cluster.HeartbeatTTL, cfg.heartbeat)
	}
	if cfg.cluster.HedgeQuantile < 0 || cfg.cluster.HedgeQuantile >= 1 {
		return cfg, fmt.Errorf("-hedge-quantile must be in [0,1) (got %g; 0 disables hedging)", cfg.cluster.HedgeQuantile)
	}
	if cfg.cluster.BreakerFailures < 1 {
		return cfg, fmt.Errorf("-breaker-failures must be at least 1 (got %d)", cfg.cluster.BreakerFailures)
	}
	if cfg.cluster.Cooldown <= 0 {
		return cfg, fmt.Errorf("-breaker-backoff must be positive (got %s)", cfg.cluster.Cooldown)
	}
	if cfg.cluster.BreakerMaxBackoff < cfg.cluster.Cooldown {
		return cfg, fmt.Errorf("-breaker-max-backoff (%s) must not undercut -breaker-backoff (%s)",
			cfg.cluster.BreakerMaxBackoff, cfg.cluster.Cooldown)
	}
	if cfg.cluster.LedgerDir != "" && cfg.role != "coordinator" {
		return cfg, fmt.Errorf("-ledger-dir only applies to -role coordinator (role is %q)", cfg.role)
	}
	if cfg.jobs.StorageRetention < 0 {
		return cfg, fmt.Errorf("-storage-retention must not be negative (got %s)", cfg.jobs.StorageRetention)
	}
	if cfg.storageGC < 0 {
		return cfg, fmt.Errorf("-storage-gc-interval must not be negative (got %s)", cfg.storageGC)
	}
	cfg.jobs.StorageGCInterval = cfg.storageGC
	cfg.cluster.StorageRetention = cfg.jobs.StorageRetention
	if *panicN > 0 || *cancelN > 0 || *dropProb > 0 || *slowProb > 0 || *hangN > 0 || *crashN > 0 ||
		*enospcB > 0 || *tornProb > 0 || *syncProb > 0 || *flipProb > 0 {
		inj := faultinject.New(*seed)
		if *panicN > 0 {
			inj.Arm(faultinject.WorkerPanic, faultinject.Spec{AfterN: *panicN})
		}
		if *cancelN > 0 {
			inj.Arm(faultinject.CtxCancel, faultinject.Spec{AfterN: *cancelN})
		}
		if *dropProb > 0 {
			inj.Arm(faultinject.ShardDrop, faultinject.Spec{Prob: *dropProb})
		}
		if *slowProb > 0 {
			inj.Arm(faultinject.ShardSlow, faultinject.Spec{Prob: *slowProb})
		}
		if *hangN > 0 {
			inj.Arm(faultinject.ShardHang, faultinject.Spec{AfterN: *hangN})
		}
		if *crashN > 0 {
			inj.Arm(faultinject.CoordinatorCrash, faultinject.Spec{AfterN: *crashN})
		}
		storage := false
		if *enospcB > 0 {
			inj.Arm(faultinject.StorageENOSPC, faultinject.Spec{AfterN: *enospcB})
			storage = true
		}
		if *tornProb > 0 {
			inj.Arm(faultinject.StorageTorn, faultinject.Spec{Prob: *tornProb})
			storage = true
		}
		if *syncProb > 0 {
			inj.Arm(faultinject.StorageSync, faultinject.Spec{Prob: *syncProb})
			storage = true
		}
		if *flipProb > 0 {
			inj.Arm(faultinject.StorageBitFlip, faultinject.Spec{Prob: *flipProb})
			storage = true
		}
		if storage {
			// One shared fault FS: the ENOSPC byte budget is a volume-level
			// property, so jobs checkpoints and cluster ledgers draw on it
			// together, like files on one full disk.
			ffs := inj.FS(nil)
			cfg.jobs.FS = ffs
			cfg.cluster.FS = ffs
		}
		cfg.jobs.Faults = inj
		cfg.faults = inj
	}
	return cfg, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "discserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout)
}

// runCtx is run with an externally triggered shutdown: canceling ctx
// drains exactly like SIGTERM. Tests use it to host whole fleets
// in-process.
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stdout, format+"\n", a...) }
	cfg.jobs.Logf = logf
	if cfg.pprof && cfg.adminAddr == "" {
		return fmt.Errorf("-pprof requires -admin-addr")
	}

	// One observer for the whole process: the manager counts into it,
	// both listeners render it, and expvar mirrors it for debug tooling.
	observer := obs.NewObserver()
	obs.RegisterBuildInfo(observer.Registry)
	observer.Registry.MirrorExpvar("disc")
	if cfg.trace {
		observer.Tracer.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	cfg.jobs.Obs = observer
	// Node names spans in the fleet timeline: the role says which kind of
	// process recorded a span, the worker's advertised URL (below) says
	// where a shard actually ran.
	cfg.jobs.Node = cfg.role

	// Cluster roles: a coordinator replaces the manager's local mining
	// with fleet dispatch; a worker additionally serves the shard
	// endpoint and heartbeats its registration. Everything else — the job
	// API, admission, checkpointing, drain — is identical in every role.
	var coord *cluster.Coordinator
	if cfg.jobs.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.jobs.CheckpointDir, 0o755); err != nil {
			return fmt.Errorf("creating -checkpoint-dir: %w", err)
		}
	}
	if cfg.role != "standalone" && cfg.clusterSecret == "" {
		logf("discserve: warning: cluster role %q without -cluster-secret; /cluster/* endpoints are open to any client", cfg.role)
	}
	if cfg.role == "coordinator" {
		cc := cfg.cluster
		cc.Secret = cfg.clusterSecret
		cc.Faults = cfg.faults
		cc.Logf = logf
		cc.Obs = observer
		if cc.LedgerDir != "" {
			if err := os.MkdirAll(cc.LedgerDir, 0o755); err != nil {
				return fmt.Errorf("creating -ledger-dir: %w", err)
			}
		}
		coord = cluster.New(cc)
		cfg.jobs.Mine = coord.Mine
	}

	mgr := jobs.NewManager(cfg.jobs)
	gcCtx, gcCancel := context.WithCancel(context.Background())
	defer gcCancel()
	if coord != nil {
		// Resubmit jobs interrupted by a previous coordinator's death; each
		// reloads its ledger inside Mine and re-runs only unfinished shards.
		// Recover first — it quarantines unusable ledgers — then GC, which
		// scrubs resting files and reclaims anything past retention.
		if n := coord.Recover(mgr.Submit); n > 0 {
			logf("discserve: recovered %d interrupted job(s) from the shard ledger", n)
		}
		coord.StorageGC()
		if cfg.storageGC > 0 && cfg.cluster.LedgerDir != "" {
			go func() {
				tick := time.NewTicker(cfg.storageGC)
				defer tick.Stop()
				for {
					select {
					case <-tick.C:
						coord.StorageGC()
					case <-gcCtx.Done():
						return
					}
				}
			}()
		}
	}
	srv := newServer(mgr, cfg.limits, cfg.maxBodyBytes, cfg.workers, logf)
	if coord != nil {
		srv.clusterDegraded = coord.DegradedDurability
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// The bound address line is the startup contract scripts key on
	// (port 0 resolves to a real port here).
	fmt.Fprintf(stdout, "discserve: listening on %s\n", ln.Addr())

	mux := srv.routes()
	hbCtx, hbCancel := context.WithCancel(context.Background())
	defer hbCancel()
	switch cfg.role {
	case "coordinator":
		mux.HandleFunc("POST /cluster/register", coord.HandleRegister)
		logf("discserve: coordinator role: %d static peers, shards=%d", len(cfg.cluster.Peers), cfg.cluster.Shards)
	case "worker":
		advertise := cfg.advertise
		if advertise == "" {
			advertise = "http://" + ln.Addr().String()
		}
		worker := cluster.NewWorker(cluster.WorkerConfig{
			Workers:       cfg.workers,
			MaxPatterns:   cfg.jobs.MaxPatterns,
			MaxMemBytes:   cfg.jobs.MaxMemBytes,
			MaxConcurrent: cfg.jobs.Workers,
			MaxBodyBytes:  cfg.maxBodyBytes,
			Secret:        cfg.clusterSecret,
			Faults:        cfg.faults,
			Logf:          logf,
			Obs:           observer,
			Node:          advertise, // span records name this worker by its fleet-visible URL
		})
		mux.HandleFunc("POST /cluster/shard", worker.HandleShard)
		if cfg.coordinator != "" {
			logf("discserve: worker role: registering %s with %s", advertise, cfg.coordinator)
			go cluster.Heartbeat(hbCtx, nil, cfg.coordinator, advertise, cfg.clusterSecret, cfg.heartbeat, logf)
		} else {
			logf("discserve: worker role: serving /cluster/shard (no -coordinator, relying on static peers)")
		}
	}

	hs := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	var admin *http.Server
	if cfg.adminAddr != "" {
		adminLn, err := net.Listen("tcp", cfg.adminAddr)
		if err != nil {
			return err
		}
		amux := http.NewServeMux()
		amux.Handle("GET /metrics", obs.Handler(observer.Registry))
		amux.HandleFunc("GET /debug/jobs/{id}/timeline", srv.handleTimeline)
		if cfg.pprof {
			amux.HandleFunc("/debug/pprof/", pprof.Index)
			amux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			amux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			amux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			amux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		fmt.Fprintf(stdout, "discserve: admin listening on %s\n", adminLn.Addr())
		admin = &http.Server{Handler: amux}
		go func() {
			if err := admin.Serve(adminLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logf("discserve: admin: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		logf("discserve: %v: draining (grace %s)", s, cfg.drainTimeout)
	case <-ctx.Done():
		logf("discserve: shutdown requested: draining (grace %s)", cfg.drainTimeout)
	}
	signal.Stop(sig)
	hbCancel() // stop the worker heartbeat before the listener goes away

	// Graceful drain: stop admitting (readyz flips to 503), let queued
	// and running jobs finish; past the grace they are canceled and
	// their progress checkpointed. Only then stop the HTTP listener, so
	// clients can poll job status for the whole drain.
	srv.ready.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		logf("discserve: drain: %v", err)
	}
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if admin != nil {
		if err := admin.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logf("discserve: admin shutdown: %v", err)
		}
	}
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Jobs are already drained and checkpointed; a connection that
		// outlives the HTTP grace (a mid-flight scrape, an aborted shard
		// stream) is force-closed rather than holding the exit hostage.
		logf("discserve: forcing listener close: %v", err)
		hs.Close()
	}
	logf("discserve: drained, exiting")
	return nil
}
