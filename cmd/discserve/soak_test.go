package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/gen"
)

// TestServiceSoak exercises the deployed binary end to end: build it,
// run it as a real process, and walk the operational contract — 413 on
// oversized input, 429 with Retry-After under overload, dedup, cancel,
// kill -9 mid-job with checkpoint resume to a byte-identical result,
// and a clean SIGTERM drain with exit code 0.
//
// It is opt-in (set DISC_SOAK=1; `make soak` does) because it builds
// binaries and mines a deliberately slow job.
func TestServiceSoak(t *testing.T) {
	if os.Getenv("DISC_SOAK") == "" {
		t.Skip("set DISC_SOAK=1 (or run `make soak`) to run the service soak test")
	}

	bin := t.TempDir()
	serveBin := filepath.Join(bin, "discserve")
	mineBin := filepath.Join(bin, "discmine")
	for path, pkg := range map[string]string{serveBin: ".", mineBin: "../discmine"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// A database dense enough that mining it takes seconds: the window
	// for overload, cancellation and the mid-job kill.
	slowDB, err := gen.Generate(gen.Config{NCust: 300, SLen: 6, TLen: 2.5, NItems: 40, SeqPatLen: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dbPath := filepath.Join(bin, "db.txt")
	if err := data.WriteFile(dbPath, slowDB, data.Native); err != nil {
		t.Fatal(err)
	}
	slowBody, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	otherDB, err := gen.Generate(gen.Config{NCust: 300, SLen: 6, TLen: 2.5, NItems: 40, SeqPatLen: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var otherBody bytes.Buffer
	if err := data.Write(&otherBody, otherDB, data.Native); err != nil {
		t.Fatal(err)
	}
	const minsup = "3" // absolute δ, same for server and discmine

	ckptDir := filepath.Join(bin, "ckpt")
	if err := os.Mkdir(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-addr", "127.0.0.1:0", "-jobs", "1", "-queue", "1",
		"-checkpoint-dir", ckptDir, "-checkpoint-interval", "50ms",
		"-max-line-bytes", "65536", "-retry-after", "2s",
		"-drain-timeout", "60s",
	}

	// startServer launches the binary and returns its base URL. Read the
	// returned proc's logs only through proc.logs (mutex-guarded: the
	// stdout drain goroutine writes it concurrently), and wait on
	// proc.scanDone before asserting on final log content.
	startServer := func() *serverProc {
		t.Helper()
		p := &serverProc{cmd: exec.Command(serveBin, args...), scanDone: make(chan struct{})}
		stdout, err := p.cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		p.cmd.Stderr = &p.logs
		if err := p.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		addr := ""
		for sc.Scan() {
			line := sc.Text()
			p.logs.WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "discserve: listening on "); ok {
				addr = rest
				break
			}
		}
		if addr == "" {
			t.Fatalf("no listening line from server; logs:\n%s", p.logs.String())
		}
		go func() { // keep draining stdout so the process never blocks on it
			defer close(p.scanDone)
			for sc.Scan() {
				p.logs.WriteString(sc.Text() + "\n")
			}
		}()
		p.base = "http://" + addr
		return p
	}

	post := func(url string, body []byte) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(url, "text/plain", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp, out
	}

	p1 := startServer()
	cmd, base, logs := p1.cmd, p1.base, &p1.logs
	defer cmd.Process.Kill()

	// --- 413: a single line past -max-line-bytes.
	huge := []byte("1:" + strings.Repeat("(1 2)", 40000) + "\n")
	if resp, out := post(base+"/jobs?minsup="+minsup, huge); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized line = %d: %s", resp.StatusCode, out)
	}

	// --- submit the slow job and wait until it is running.
	_, out := post(base+"/jobs?minsup="+minsup, slowBody)
	id := jsonField(t, out, "id")
	waitState(t, base, id, "running", 30*time.Second)

	// --- dedup: identical bytes attach to the running job.
	if _, out := post(base+"/jobs?minsup="+minsup, slowBody); jsonField(t, out, "id") != id {
		t.Fatalf("identical resubmission got a new job: %s", out)
	}

	// --- 429 + Retry-After: fill the single queue slot, then overflow.
	resp, out := post(base+"/jobs?minsup="+minsup, otherBody.Bytes())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit = %d: %s", resp.StatusCode, out)
	}
	queuedID := jsonField(t, out, "id")
	third, err := gen.Generate(gen.Config{NCust: 50, SLen: 4, TLen: 2, NItems: 30, SeqPatLen: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var thirdBody bytes.Buffer
	if err := data.Write(&thirdBody, third, data.Native); err != nil {
		t.Fatal(err)
	}
	resp, out = post(base+"/jobs?minsup="+minsup, thirdBody.Bytes())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit = %d: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// --- cancel the queued job.
	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+queuedID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued job: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
	waitState(t, base, queuedID, "canceled", 30*time.Second)

	// --- kill -9 mid-job once a periodic checkpoint has content.
	ckptPath := filepath.Join(ckptDir, id+".ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(ckptPath); err == nil && fi.Size() > 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint with content appeared at %s; logs:\n%s", ckptPath, logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	// --- restart over the same checkpoint dir; the identical submission
	// resumes and the result is byte-identical to an offline CLI run.
	p2 := startServer()
	cmd2, base2, logs2 := p2.cmd, p2.base, &p2.logs
	defer cmd2.Process.Kill()
	resp, out = post(base2+"/jobs?minsup="+minsup+"&wait=1", slowBody)
	if resp.StatusCode != http.StatusOK || jsonField(t, out, "state") != "done" {
		t.Fatalf("post-kill resubmit = %d: %s\nlogs:\n%s", resp.StatusCode, out, logs2.String())
	}
	if jsonField(t, out, "id") != id {
		t.Fatalf("job identity changed across restart: %s", out)
	}
	if !strings.Contains(logs2.String(), "resuming from checkpoint") {
		t.Errorf("restarted server did not resume from the checkpoint; logs:\n%s", logs2.String())
	}
	respRes, err := http.Get(base2 + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	serverResult, _ := io.ReadAll(respRes.Body)
	respRes.Body.Close()

	cliOut := filepath.Join(bin, "cli-patterns.txt")
	if msg, err := exec.Command(mineBin, "-in", dbPath, "-minsup", minsup, "-o", cliOut).CombinedOutput(); err != nil {
		t.Fatalf("discmine reference run: %v\n%s", err, msg)
	}
	cliResult, err := os.ReadFile(cliOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serverResult, cliResult) {
		t.Errorf("service result (%d bytes) != discmine result (%d bytes) for the same job",
			len(serverResult), len(cliResult))
	}

	// --- SIGTERM: graceful drain, exit code 0.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v\nlogs:\n%s", err, logs2.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("server did not drain after SIGTERM; logs:\n%s", logs2.String())
	}
	<-p2.scanDone // the drain goroutine has flushed the final log lines
	if !strings.Contains(logs2.String(), "drained, exiting") {
		t.Errorf("missing drain completion line; logs:\n%s", logs2.String())
	}
}

// serverProc is one running discserve binary under test.
type serverProc struct {
	cmd      *exec.Cmd
	base     string
	logs     syncBuf
	scanDone chan struct{}
}

// syncBuf is a mutex-guarded log buffer: the process writes (via the
// stdout drain goroutine and stderr), the test reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) WriteString(x string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b.WriteString(x)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// jsonField plucks a top-level string field out of a JSON object without
// committing to the full schema.
func jsonField(t *testing.T, body []byte, key string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	v, _ := m[key].(string)
	return v
}

func waitState(t *testing.T, base, id, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if jsonField(t, body, "state") == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s: %s", id, want, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
