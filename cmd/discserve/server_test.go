package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/testutil"
)

// testServer stands up the full handler stack over a manager with cfg.
func testServer(t *testing.T, cfg jobs.Config, limits data.Limits, maxBody int64) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	if maxBody == 0 {
		maxBody = 64 << 20
	}
	mgr := jobs.NewManager(cfg)
	srv := newServer(mgr, limits, maxBody, 2, t.Logf)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Drain(ctx)
	})
	return ts, mgr
}

// dbBody renders db in the native text format, as a client would POST it.
func dbBody(t *testing.T, db mining.Database) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := data.Write(&b, db, data.Native); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// table1Body is the paper's Table 1 database (56 frequent sequences at δ=2).
func table1Body(t *testing.T) []byte { return dbBody(t, testutil.Table1()) }

func post(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func del(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func decodeJob(t *testing.T, body []byte) jobJSON {
	t.Helper()
	var j jobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatalf("bad job JSON %q: %v", body, err)
	}
	return j
}

func decodeErr(t *testing.T, body []byte) errJSON {
	t.Helper()
	var e struct {
		Error errJSON `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("bad error JSON %q: %v", body, err)
	}
	return e.Error
}

func TestSubmitWaitAndFetchResult(t *testing.T) {
	ts, _ := testServer(t, jobs.Config{Workers: 2}, data.Limits{}, 0)

	resp, body := post(t, ts, "/jobs?minsup=2&wait=1", table1Body(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	j := decodeJob(t, body)
	if j.State != "done" || j.Patterns != 56 {
		t.Fatalf("job = %+v, want done with the paper's 56 patterns", j)
	}

	resp, body = get(t, ts, j.Result)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, body)
	}
	ref, err := (&core.Miner{Opts: core.Options{BiLevel: true, Levels: 2}}).Mine(testutil.Table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := jobs.WriteResult(&want, ref); err != nil {
		t.Fatal(err)
	}
	if string(body) != want.String() {
		t.Errorf("service result diverges from engine output:\ngot\n%s\nwant\n%s", body, want.String())
	}

	// Idempotent resubmission: same bytes, same id, served from cache.
	resp, body = post(t, ts, "/jobs?minsup=2&wait=1", table1Body(t))
	if resp.StatusCode != http.StatusOK || decodeJob(t, body).ID != j.ID {
		t.Fatalf("resubmission = %d %s, want cache hit on %s", resp.StatusCode, body, j.ID)
	}
}

func TestAsyncSubmitPollCancel(t *testing.T) {
	// A dense generated database keeps the worker busy long enough to
	// observe the queued/running states and land a cancellation.
	r := rand.New(rand.NewSource(7))
	dense := testutil.SkewedRandomDB(r, 400, 14, 10, 6)
	ts, _ := testServer(t, jobs.Config{Workers: 1}, data.Limits{}, 0)

	resp, body := post(t, ts, "/jobs?minsup=2", dbBody(t, dense))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	j := decodeJob(t, body)
	if j.State != "queued" && j.State != "running" {
		t.Fatalf("fresh job state = %s", j.State)
	}

	resp, body = get(t, ts, "/jobs/"+j.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	// The result is not ready: 409 with a retry hint.
	resp, body = get(t, ts, "/jobs/"+j.ID+"/result")
	if st := decodeJob(t, body).State; resp.StatusCode != http.StatusConflict && st != "done" {
		t.Fatalf("early result fetch = %d (state %s)", resp.StatusCode, st)
	}

	resp, body = del(t, ts, "/jobs/"+j.ID)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d: %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body = get(t, ts, "/jobs/"+j.ID)
		st := decodeJob(t, body)
		if st.State == "canceled" || st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never terminated: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body = del(t, ts, "/jobs/no-such-job")
	if resp.StatusCode != http.StatusNotFound || decodeErr(t, body).Kind != "not_found" {
		t.Fatalf("cancel unknown = %d %s", resp.StatusCode, body)
	}
}

func TestOversizedInputRejected413(t *testing.T) {
	t.Run("body", func(t *testing.T) {
		ts, _ := testServer(t, jobs.Config{}, data.Limits{}, 16)
		resp, body := post(t, ts, "/jobs?minsup=2", table1Body(t))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized body = %d: %s", resp.StatusCode, body)
		}
		if decodeErr(t, body).Kind != "input" {
			t.Fatalf("payload = %s, want kind input", body)
		}
	})
	t.Run("line", func(t *testing.T) {
		ts, _ := testServer(t, jobs.Config{}, data.Limits{MaxLineBytes: 16}, 0)
		resp, body := post(t, ts, "/jobs?minsup=2", table1Body(t))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized line = %d: %s", resp.StatusCode, body)
		}
	})
	// The server survives both rejections.
	ts, _ := testServer(t, jobs.Config{}, data.Limits{}, 0)
	if resp, body := post(t, ts, "/jobs?minsup=2&wait=1", table1Body(t)); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy submit after rejections = %d: %s", resp.StatusCode, body)
	}
}

func TestBadRequests400(t *testing.T) {
	ts, _ := testServer(t, jobs.Config{}, data.Limits{}, 0)
	for _, tc := range []struct {
		name, path string
		body       string
	}{
		{"malformed minsup", "/jobs?minsup=lots", "1:(1)(2)\n"},
		{"malformed body", "/jobs?minsup=1", "1:(((\n"},
		{"empty body", "/jobs?minsup=1", ""},
		{"unknown algo", "/jobs?minsup=1&algo=quantum", "1:(1)(2)\n"},
	} {
		resp, body := post(t, ts, tc.path, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d: %s", tc.name, resp.StatusCode, body)
		}
		if decodeErr(t, body).Kind != "input" {
			t.Errorf("%s payload = %s, want kind input", tc.name, body)
		}
	}
	if resp, _ := get(t, ts, "/jobs/ffffffffffffffff"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestQueueFullSheds429WithRetryAfter(t *testing.T) {
	slow := func(i int) []byte {
		return dbBody(t, testutil.SkewedRandomDB(rand.New(rand.NewSource(int64(i))), 400, 14, 10, 6))
	}
	ts, _ := testServer(t, jobs.Config{Workers: 1, QueueDepth: 1, RetryAfter: 7 * time.Second}, data.Limits{}, 0)

	// Job 1 occupies the worker, job 2 the single queue slot.
	_, b1 := post(t, ts, "/jobs?minsup=2", slow(1))
	j1 := decodeJob(t, b1)
	deadline := time.Now().Add(30 * time.Second)
	for decodeJob(t, func() []byte { _, b := get(t, ts, "/jobs/"+j1.ID); return b }()).State != "running" {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, b2 := post(t, ts, "/jobs?minsup=2", slow(2))
	j2 := decodeJob(t, b2)

	// Job 3 is shed: 429 plus the configured Retry-After hint.
	resp, body := post(t, ts, "/jobs?minsup=2", slow(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7", got)
	}
	if decodeErr(t, body).Kind != "shed" {
		t.Errorf("payload = %s, want kind shed", body)
	}

	// A duplicate of an in-flight job still gets in: dedup is free.
	resp, body = post(t, ts, "/jobs?minsup=2", slow(1))
	if resp.StatusCode != http.StatusAccepted || decodeJob(t, body).ID != j1.ID {
		t.Errorf("duplicate during overload = %d %s, want attach to %s", resp.StatusCode, body, j1.ID)
	}

	for _, id := range []string{j1.ID, j2.ID} {
		del(t, ts, "/jobs/"+id)
	}
}

// TestWorkerPanicTypedPayloadProcessKeepsServing is the acceptance
// criterion: an injected worker panic fails that one job with a 5xx
// carrying the typed invariant payload, and the process keeps serving.
func TestWorkerPanicTypedPayloadProcessKeepsServing(t *testing.T) {
	inj := faultinject.New(1).Arm(faultinject.WorkerPanic, faultinject.Spec{AfterN: 1})
	ts, _ := testServer(t, jobs.Config{Workers: 1, Faults: inj}, data.Limits{}, 0)

	resp, body := post(t, ts, "/jobs?minsup=2&wait=1", table1Body(t))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked job = %d: %s", resp.StatusCode, body)
	}
	j := decodeJob(t, body)
	if j.State != "failed" || j.Error == nil || j.Error.Kind != "invariant" {
		t.Fatalf("panicked job payload = %s, want failed with kind invariant", body)
	}
	if j.Error.Partition == "" {
		t.Errorf("invariant payload lost the partition: %s", body)
	}
	// Fetching the failed job's result repeats the typed error.
	resp, body = get(t, ts, "/jobs/"+j.ID+"/result")
	if resp.StatusCode != http.StatusInternalServerError || decodeErr(t, body).Kind != "invariant" {
		t.Fatalf("failed result fetch = %d %s", resp.StatusCode, body)
	}

	// The process keeps serving: health is up and the next job (distinct
	// content — a failed fingerprint would resume) completes.
	if resp, body := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d: %s", resp.StatusCode, body)
	}
	other := dbBody(t, testutil.SkewedRandomDB(rand.New(rand.NewSource(9)), 30, 8, 5, 3))
	resp, body = post(t, ts, "/jobs?minsup=2&wait=1", other)
	if resp.StatusCode != http.StatusOK || decodeJob(t, body).State != "done" {
		t.Fatalf("job after panic = %d %s, want done", resp.StatusCode, body)
	}
	// And the panicked job itself heals on resubmission (the injector
	// was one-shot): robustness means the failure is not sticky.
	resp, body = post(t, ts, "/jobs?minsup=2&wait=1", table1Body(t))
	if resp.StatusCode != http.StatusOK || decodeJob(t, body).Patterns != 56 {
		t.Fatalf("resubmitted panicked job = %d %s, want done with 56 patterns", resp.StatusCode, body)
	}
}

// TestInjectedCancelCheckpointsAndResumes drives the cancel → checkpoint
// → resubmit → resume path through the HTTP surface.
func TestInjectedCancelCheckpointsAndResumes(t *testing.T) {
	db := testutil.SkewedRandomDB(rand.New(rand.NewSource(92)), 90, 12, 6, 4)
	body := dbBody(t, db)
	dir := t.TempDir()

	inj := faultinject.New(60).Arm(faultinject.CtxCancel, faultinject.Spec{AfterN: 60})
	ts, _ := testServer(t, jobs.Config{Workers: 1, CheckpointDir: dir, Faults: inj}, data.Limits{}, 0)

	resp, out := post(t, ts, "/jobs?minsup=2&wait=1", body)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("interrupted job = %d: %s", resp.StatusCode, out)
	}
	j := decodeJob(t, out)
	if j.State != "canceled" || j.Error == nil || j.Error.Kind != "canceled" {
		t.Fatalf("interrupted payload = %s, want canceled", out)
	}

	// Resubmit the identical bytes: the job resumes from its checkpoint
	// and the result matches a straight engine run exactly.
	resp, out = post(t, ts, "/jobs?minsup=2&wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit = %d: %s", resp.StatusCode, out)
	}
	j2 := decodeJob(t, out)
	if j2.State != "done" || j2.Resumed == 0 {
		t.Fatalf("resubmitted job = %s, want done with restored partitions", out)
	}
	ref, err := (&core.Miner{Opts: core.Options{BiLevel: true, Levels: 2, Workers: 2}}).Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := jobs.WriteResult(&want, ref); err != nil {
		t.Fatal(err)
	}
	_, res := get(t, ts, "/jobs/"+j2.ID+"/result")
	if string(res) != want.String() {
		t.Errorf("resumed result diverges from straight run")
	}
}

// TestFlakyRequestBodyDoesNotWedgeServer feeds the server a request body
// that fails mid-read (a flaky client connection) and verifies the
// request errors out while the server keeps serving.
func TestFlakyRequestBodyDoesNotWedgeServer(t *testing.T) {
	ts, _ := testServer(t, jobs.Config{Workers: 1}, data.Limits{}, 0)

	inj := faultinject.New(3).Arm(faultinject.DataRead, faultinject.Spec{AfterN: 1})
	flaky := inj.FlakyReader(bytes.NewReader(table1Body(t)))
	resp, err := http.Post(ts.URL+"/jobs?minsup=2", "text/plain", io.NopCloser(flaky))
	if err == nil {
		// The transport surfaced the body error as a response instead:
		// it must be a client-side 4xx/5xx, never a hung request.
		defer resp.Body.Close()
		if resp.StatusCode < 400 {
			t.Fatalf("flaky body accepted with %d", resp.StatusCode)
		}
	}

	// Server intact after the aborted upload.
	resp2, body := post(t, ts, "/jobs?minsup=2&wait=1", table1Body(t))
	if resp2.StatusCode != http.StatusOK || decodeJob(t, body).State != "done" {
		t.Fatalf("submit after flaky upload = %d %s", resp2.StatusCode, body)
	}
}

func TestReadyzFlipsOnDrainHealthzStaysUp(t *testing.T) {
	ts, mgr := testServer(t, jobs.Config{}, data.Limits{}, 0)

	if resp, body := get(t, ts, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d: %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ := get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz lost its Retry-After hint")
	}
	// Liveness stays green — the process is healthy, just not admitting.
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d", resp.StatusCode)
	}
	var h struct {
		Draining bool         `json:"draining"`
		Metrics  jobs.Metrics `json:"metrics"`
	}
	if err := json.Unmarshal(body, &h); err != nil || !h.Draining {
		t.Fatalf("healthz payload = %s (err=%v), want draining true", body, err)
	}
	// Submissions are refused with the draining taxonomy.
	respS, bodyS := post(t, ts, "/jobs?minsup=2", table1Body(t))
	if respS.StatusCode != http.StatusServiceUnavailable || decodeErr(t, bodyS).Kind != "draining" {
		t.Fatalf("submit during drain = %d %s", respS.StatusCode, bodyS)
	}
}

// TestHealthzMetricsProgress sanity-checks the counters a dashboard
// would alert on.
func TestHealthzMetricsProgress(t *testing.T) {
	ts, _ := testServer(t, jobs.Config{Workers: 1}, data.Limits{}, 0)
	post(t, ts, "/jobs?minsup=2&wait=1", table1Body(t))
	post(t, ts, "/jobs?minsup=2&wait=1", table1Body(t)) // cache hit
	_, body := get(t, ts, "/healthz")
	var h struct {
		Metrics jobs.Metrics `json:"metrics"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Metrics.Submitted != 1 || h.Metrics.CacheHits != 1 || h.Metrics.Done != 1 {
		t.Fatalf("metrics = %+v", h.Metrics)
	}
}
