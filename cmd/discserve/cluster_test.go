package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/testutil"
)

// startRole hosts one discserve instance in-process (runCtx) and returns
// its base URL. The instance drains and exits at test cleanup.
func startRole(t *testing.T, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var logs syncBuf
	done := make(chan error, 1)
	go func() { done <- runCtx(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &logs) }()
	t.Cleanup(func() {
		start := time.Now()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("instance exited with error: %v\nlogs:\n%s", err, logs.String())
			}
			if d := time.Since(start); d > 2*time.Second {
				t.Logf("slow drain (%s); logs:\n%s", d, logs.String())
			}
		case <-time.After(30 * time.Second):
			t.Errorf("instance did not drain; logs:\n%s", logs.String())
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, line := range strings.Split(logs.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "discserve: listening on "); ok {
				return "http://" + rest
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listening line; logs:\n%s", logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// localWant mines the server's default configuration locally and renders
// the canonical result text — the bytes every clustered run must match.
func localWant(t *testing.T, db mining.Database, minSup int) string {
	t.Helper()
	m := &core.Miner{Opts: core.Options{BiLevel: true, Levels: 2}}
	res, err := m.Mine(db, minSup)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := jobs.WriteResult(&b, res); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func submitAndFetch(t *testing.T, base string, body []byte) (string, string) {
	t.Helper()
	resp, raw := postURL(t, base+"/jobs?minsup=2&wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	j := decodeJob(t, raw)
	if j.State != "done" {
		t.Fatalf("job state %q, error %+v", j.State, j.Error)
	}
	res, err := http.Get(base + "/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	text, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return j.ID, string(text)
}

func postURL(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetStaticPeersByteIdentical: two worker-role instances, one
// coordinator-role instance pointed at them via -peers; a job submitted
// to the coordinator's ordinary job API mines across the fleet and its
// result is byte-identical to a local run. The cluster metric families
// show up on both roles.
func TestFleetStaticPeersByteIdentical(t *testing.T) {
	db := testutil.Table1()
	want := localWant(t, db, 2)
	w1 := startRole(t, "-role", "worker", "-jobs", "4")
	w2 := startRole(t, "-role", "worker", "-jobs", "4")
	coord := startRole(t, "-role", "coordinator",
		"-peers", w1+","+w2, "-shards", "3", "-shard-timeout", "1m")

	_, got := submitAndFetch(t, coord, dbBody(t, db))
	if got != want {
		t.Fatalf("clustered result differs from local run:\ngot:\n%s\nwant:\n%s", got, want)
	}
	cm := metricsText(t, coord)
	if !strings.Contains(cm, `disc_cluster_shards_total{state="done"} 3`) {
		t.Errorf("coordinator metrics missing shard accounting:\n%s", cm)
	}
	if !strings.Contains(cm, "disc_cluster_worker_latency_seconds") {
		t.Error("coordinator metrics missing per-worker latency histograms")
	}
	servedTotal := 0
	for _, w := range []string{w1, w2} {
		wm := metricsText(t, w)
		if strings.Contains(wm, `disc_cluster_worker_shards_total{outcome="done"}`) {
			servedTotal++
		}
	}
	if servedTotal == 0 {
		t.Error("no worker reported serving a shard")
	}
}

// TestFleetHeartbeatRegistration: a coordinator with no static peers
// learns its worker through POST /cluster/register heartbeats, then
// dispatches to it.
func TestFleetHeartbeatRegistration(t *testing.T) {
	db := testutil.Table1()
	want := localWant(t, db, 2)
	coord := startRole(t, "-role", "coordinator", "-shards", "2")
	startRole(t, "-role", "worker", "-jobs", "4",
		"-coordinator", coord, "-heartbeat", "20ms")

	// Wait for the registration to land, then mine through the fleet.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(metricsText(t, coord), "disc_cluster_workers 1") {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered with the coordinator")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, got := submitAndFetch(t, coord, dbBody(t, db))
	if got != want {
		t.Fatal("heartbeat-registered fleet result differs from local run")
	}
	if !strings.Contains(metricsText(t, coord), `disc_cluster_shards_total{state="done"} 2`) {
		t.Error("shards did not go through the registered worker")
	}
}

// TestFleetClusterSecret: with -cluster-secret on both roles the
// heartbeat registration and shard dispatch authenticate end to end,
// while an unauthenticated registration is refused.
func TestFleetClusterSecret(t *testing.T) {
	db := testutil.Table1()
	want := localWant(t, db, 2)
	coord := startRole(t, "-role", "coordinator", "-shards", "2", "-cluster-secret", "fleet-pw")
	startRole(t, "-role", "worker", "-jobs", "4",
		"-coordinator", coord, "-heartbeat", "20ms", "-cluster-secret", "fleet-pw")

	// A secretless registration must bounce off the coordinator.
	resp, raw := postURL(t, coord+"/cluster/register", []byte(`{"url":"http://rogue:1"}`))
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated registration: HTTP %d (%s), want 401", resp.StatusCode, raw)
	}

	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(metricsText(t, coord), "disc_cluster_workers 1") {
		if time.Now().After(deadline) {
			t.Fatal("authenticated worker never registered with the coordinator")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, got := submitAndFetch(t, coord, dbBody(t, db))
	if got != want {
		t.Fatal("secret-authenticated fleet result differs from local run")
	}
	if !strings.Contains(metricsText(t, coord), `disc_cluster_shards_total{state="done"} 2`) {
		t.Error("shards did not go through the authenticated worker")
	}
}

// TestFleetSurvivesDroppingWorker: one worker drops every shard
// connection (injected); the fleet still produces the byte-identical
// result by rescheduling onto the healthy worker.
func TestFleetSurvivesDroppingWorker(t *testing.T) {
	db := testutil.Table1()
	want := localWant(t, db, 2)
	bad := startRole(t, "-role", "worker", "-fault-seed", "7", "-fault-shard-drop", "1")
	good := startRole(t, "-role", "worker", "-jobs", "4")
	coord := startRole(t, "-role", "coordinator",
		"-peers", bad+","+good, "-shards", "2", "-shard-timeout", "30s")

	_, got := submitAndFetch(t, coord, dbBody(t, db))
	if got != want {
		t.Fatal("fleet with a dropping worker produced a different result")
	}
	cm := metricsText(t, coord)
	if !strings.Contains(cm, `disc_cluster_shards_total{state="retried"}`) {
		t.Errorf("dropping worker never triggered a reschedule:\n%s", cm)
	}
}

func TestParseFlagsClusterMapping(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-role", "coordinator", "-peers", " http://a:1 ,http://b:2,",
		"-shards", "4", "-shard-timeout", "90s", "-shard-retries", "5",
		"-heartbeat-ttl", "42s", "-cluster-secret", "hunter2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.role != "coordinator" || len(cfg.cluster.Peers) != 2 ||
		cfg.cluster.Peers[0] != "http://a:1" || cfg.cluster.Peers[1] != "http://b:2" ||
		cfg.cluster.Shards != 4 || cfg.cluster.ShardTimeout != 90*time.Second ||
		cfg.cluster.Retries != 5 || cfg.cluster.HeartbeatTTL != 42*time.Second ||
		cfg.clusterSecret != "hunter2" {
		t.Errorf("cluster flags misrouted: %+v", cfg.cluster)
	}
	cfg, err = parseFlags([]string{"-role", "worker",
		"-coordinator", "http://c:3", "-advertise", "http://me:4", "-heartbeat", "5s",
		"-fault-seed", "1", "-fault-shard-drop", "0.5", "-fault-shard-slow", "0.25"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.role != "worker" || cfg.coordinator != "http://c:3" ||
		cfg.advertise != "http://me:4" || cfg.heartbeat != 5*time.Second {
		t.Errorf("worker flags misrouted: %+v", cfg)
	}
	if cfg.faults == nil {
		t.Error("shard fault flags did not arm an injector")
	}
	if _, err := parseFlags([]string{"-role", "conductor"}); err == nil {
		t.Error("bad -role accepted")
	}
}

// TestParseFlagsRejectsWedgedClusterConfig: scheduling parameters that
// would quietly wedge a fleet — a timeout that never fires, a TTL that
// expires healthy workers between beats, a breaker that can never close
// — must fail at startup with an error naming the flag, not at the
// first job hours later.
func TestParseFlagsRejectsWedgedClusterConfig(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring the error must carry
	}{
		{"zero shard timeout", []string{"-shard-timeout", "0s"}, "-shard-timeout"},
		{"negative retries", []string{"-shard-retries", "-1"}, "-shard-retries"},
		{"zero heartbeat", []string{"-heartbeat", "0s"}, "-heartbeat"},
		{"ttl under heartbeat", []string{"-heartbeat", "30s", "-heartbeat-ttl", "10s"}, "expire between beats"},
		{"hedge quantile one", []string{"-hedge-quantile", "1"}, "-hedge-quantile"},
		{"negative hedge quantile", []string{"-hedge-quantile", "-0.5"}, "-hedge-quantile"},
		{"zero breaker failures", []string{"-breaker-failures", "0"}, "-breaker-failures"},
		{"max backoff under base", []string{"-breaker-backoff", "1m", "-breaker-max-backoff", "1s"}, "-breaker-max-backoff"},
		{"ledger dir on worker", []string{"-role", "worker", "-ledger-dir", "/tmp/x"}, "-ledger-dir"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			if err == nil {
				t.Fatalf("args %v accepted, want an error mentioning %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending flag (%q)", err, tc.want)
			}
		})
	}
	// The same knobs with sane values must parse.
	if _, err := parseFlags([]string{"-role", "coordinator", "-ledger-dir", t.TempDir(),
		"-hedge-quantile", "0", "-breaker-failures", "1"}); err != nil {
		t.Fatalf("valid self-healing coordinator config rejected: %v", err)
	}
}
