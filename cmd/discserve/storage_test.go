package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/testutil"
)

// healthzStorage is the slice of the /healthz payload the storage tests
// care about.
type healthzStorage struct {
	DegradedDurability bool                  `json:"degraded_durability"`
	Storage            jobs.DurabilityStatus `json:"storage"`
}

// TestHealthzSurfacesDegradedDurability: a disk that swallows checkpoint
// writes flips degraded_durability in /healthz and surfaces the failure
// in the storage block, while the job itself still terminates normally —
// the regression test for checkpoint failures being log-only.
func TestHealthzSurfacesDegradedDurability(t *testing.T) {
	db := testutil.SkewedRandomDB(rand.New(rand.NewSource(92)), 90, 12, 6, 4)
	body := dbBody(t, db)
	dir := t.TempDir()

	// CtxCancel interrupts the job mid-run, forcing the exit-path
	// checkpoint write; the ENOSPC arm makes that write fail.
	inj := faultinject.New(60).
		Arm(faultinject.CtxCancel, faultinject.Spec{AfterN: 60}).
		Arm(faultinject.StorageENOSPC, faultinject.Spec{Prob: 1})
	ts, _ := testServer(t, jobs.Config{
		Workers: 1, CheckpointDir: dir, Faults: inj, FS: inj.FS(nil),
		DegradeAfter: 1, DurabilityProbe: time.Hour,
	}, data.Limits{}, 0)

	var h healthzStorage
	if _, out := get(t, ts, "/healthz"); json.Unmarshal(out, &h) != nil || h.DegradedDurability {
		t.Fatalf("fresh server already degraded: %s", out)
	}

	resp, out := post(t, ts, "/jobs?minsup=2&wait=1", body)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("interrupted job = %d: %s", resp.StatusCode, out)
	}

	_, out = get(t, ts, "/healthz")
	if err := json.Unmarshal(out, &h); err != nil {
		t.Fatalf("healthz payload %s: %v", out, err)
	}
	if !h.DegradedDurability || !h.Storage.Degraded {
		t.Fatalf("degraded durability not surfaced: %s", out)
	}
	if h.Storage.CheckpointFailures < 1 || h.Storage.LastError == "" {
		t.Fatalf("storage block missing the failure evidence: %s", out)
	}

	// The same facts on /metrics, for the alerting path.
	_, metrics := get(t, ts, "/metrics")
	for _, want := range []string{
		`disc_storage_degraded{component="jobs"} 1`,
		`disc_jobs_checkpoint_failures_total 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsExposeStorageFamilies: the quarantine and GC counters are
// registered eagerly, so a fresh server's scrape already shows them at
// zero — dashboards and alerts can rely on the families existing.
func TestMetricsExposeStorageFamilies(t *testing.T) {
	ts, _ := testServer(t, jobs.Config{CheckpointDir: t.TempDir()}, data.Limits{}, 0)
	_, metrics := get(t, ts, "/metrics")
	for _, want := range []string{
		`disc_storage_quarantined_total{kind="checkpoint"} 0`,
		`disc_storage_degraded{component="jobs"} 0`,
		`disc_jobs_checkpoint_failures_total 0`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
