package main

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/jobs"
)

// TestMetricsEndpoint: after one mined job, GET /metrics serves the
// Prometheus text exposition with every required family — the manager's
// job instruments and the engine families flushed by the run. Families
// with no samples yet are still present at zero (eager registration),
// so dashboards can be built against a fresh server.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := testServer(t, jobs.Config{Workers: 1, QueueDepth: 4, CheckpointDir: t.TempDir()}, data.Limits{}, 0)
	if resp, body := post(t, ts, "/jobs?minsup=2&wait=1", table1Body(t)); resp.StatusCode != 200 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`disc_jobs_submitted_total 1`,
		`disc_jobs_finished_total{state="done"} 1`,
		`disc_jobs_queue_depth 0`,
		`disc_jobs_by_state{state="done"} 1`,
		`disc_job_duration_seconds_count{state="done"} 1`,
		`disc_mine_runs_total 1`,
		`disc_partitions_total{level="0"}`,
		`disc_rounds_total`,
		`disc_skips_total`,
		`disc_frequent_hits_total`,
		`disc_stage_duration_seconds_count{stage="mine"} 1`,
		`# TYPE disc_checkpoint_write_seconds histogram`,
		`# HELP disc_jobs_shed_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

// TestHealthzKeepsOldKeysAndAddsObservability: /healthz keeps its
// original ready/draining/metrics contract and adds queue_depth,
// jobs_by_state and build info sourced from the same registry /metrics
// renders.
func TestHealthzKeepsOldKeysAndAddsObservability(t *testing.T) {
	ts, _ := testServer(t, jobs.Config{Workers: 1, QueueDepth: 4}, data.Limits{}, 0)
	if resp, body := post(t, ts, "/jobs?minsup=2&wait=1", table1Body(t)); resp.StatusCode != 200 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
	var h struct {
		Ready       *bool          `json:"ready"`
		Draining    *bool          `json:"draining"`
		Metrics     *jobs.Metrics  `json:"metrics"`
		QueueDepth  *int           `json:"queue_depth"`
		JobsByState map[string]int `json:"jobs_by_state"`
		Build       struct {
			Version string `json:"version"`
			Go      string `json:"go"`
		} `json:"build"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("bad healthz JSON %q: %v", body, err)
	}
	switch {
	case h.Ready == nil || h.Draining == nil || h.Metrics == nil:
		t.Fatalf("original keys missing from %s", body)
	case h.QueueDepth == nil:
		t.Fatalf("queue_depth missing from %s", body)
	case h.JobsByState["done"] != 1:
		t.Fatalf("jobs_by_state[done] = %d, want 1 (%s)", h.JobsByState["done"], body)
	case !strings.HasPrefix(h.Build.Go, "go"):
		t.Fatalf("build.go = %q, want a Go version (%s)", h.Build.Go, body)
	}
	if h.Metrics.Done != 1 || h.Metrics.Submitted != 1 {
		t.Fatalf("metrics snapshot %+v, want one submitted+done job", h.Metrics)
	}
}
