package main

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/gen"
)

// TestFleetCoordinatorKill9 exercises coordinator crash recovery on the
// deployed binary, not the in-process drill: build discserve and
// discmine, run a real two-worker fleet, kill -9 the coordinator while
// the durable shard ledger shows the job part-done, restart it over the
// same -ledger-dir, and require the startup recovery path to resubmit
// the job, resume only the unfinished shards, and produce a result
// byte-identical to an offline discmine run.
//
// One worker hangs its first shard forever (injected), which both holds
// the kill window open indefinitely and proves the resumed coordinator
// re-dispatches the shard the crashed one never collected.
//
// It is opt-in (set DISC_CHAOS=1; `make chaos` does) because it builds
// binaries and mines a deliberately slow job.
func TestFleetCoordinatorKill9(t *testing.T) {
	if os.Getenv("DISC_CHAOS") == "" {
		t.Skip("set DISC_CHAOS=1 (or run `make chaos`) to run the fleet kill -9 chaos test")
	}

	bin := t.TempDir()
	serveBin := filepath.Join(bin, "discserve")
	mineBin := filepath.Join(bin, "discmine")
	for path, pkg := range map[string]string{serveBin: ".", mineBin: "../discmine"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	slowDB, err := gen.Generate(gen.Config{NCust: 300, SLen: 6, TLen: 2.5, NItems: 40, SeqPatLen: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dbPath := filepath.Join(bin, "db.txt")
	if err := data.WriteFile(dbPath, slowDB, data.Native); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	const minsup = "3"

	// startProc launches one discserve role and returns it once listening.
	startProc := func(args ...string) *serverProc {
		t.Helper()
		p := &serverProc{
			cmd:      exec.Command(serveBin, append([]string{"-addr", "127.0.0.1:0"}, args...)...),
			scanDone: make(chan struct{}),
		}
		stdout, err := p.cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		p.cmd.Stderr = &p.logs
		if err := p.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		addr := ""
		for sc.Scan() {
			line := sc.Text()
			p.logs.WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "discserve: listening on "); ok {
				addr = rest
				break
			}
		}
		if addr == "" {
			t.Fatalf("no listening line; logs:\n%s", p.logs.String())
		}
		go func() {
			defer close(p.scanDone)
			for sc.Scan() {
				p.logs.WriteString(sc.Text() + "\n")
			}
		}()
		p.base = "http://" + addr
		return p
	}

	// Worker 1 hangs the first shard it is asked to mine and holds it
	// until the connection dies; worker 2 is healthy.
	w1 := startProc("-role", "worker", "-jobs", "4", "-fault-seed", "2", "-fault-shard-hang-after", "1")
	defer w1.cmd.Process.Kill()
	w2 := startProc("-role", "worker", "-jobs", "4")
	defer w2.cmd.Process.Kill()

	ledgerDir := filepath.Join(bin, "ledger")
	coordArgs := []string{"-role", "coordinator", "-peers", w1.base + "," + w2.base,
		"-shards", "3", "-shard-timeout", "5m", "-hedge-quantile", "0", "-ledger-dir", ledgerDir}
	c1 := startProc(coordArgs...)
	defer c1.cmd.Process.Kill()

	// Submit without wait: the hung shard stalls the job indefinitely.
	resp, out := postURL(t, c1.base+"/jobs?minsup="+minsup, body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d: %s", resp.StatusCode, out)
	}
	id := jsonField(t, out, "id")

	// The job's ledger file is named by its fingerprint, which is also
	// the job id. Wait until it shows real progress — at least one shard
	// done AND at least one not done — so the kill provably lands mid-job.
	ledgerPath := filepath.Join(ledgerDir, id+".ledger")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		led, err := checkpoint.ReadLedgerFile(ledgerPath)
		if err == nil {
			done := 0
			for _, s := range led.Shards {
				if s.State == checkpoint.ShardDone {
					done++
				}
			}
			if done >= 1 && done < len(led.Shards) {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("ledger %s never reached a part-done state (%v); logs:\n%s", ledgerPath, err, c1.logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// kill -9: no cleanup runs, the ledger survives as-is.
	if err := c1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	c1.cmd.Wait()

	// Restart over the same ledger dir. Startup recovery must resubmit
	// the interrupted job on its own — no client resubmission.
	c2 := startProc(coordArgs...)
	defer c2.cmd.Process.Kill()
	waitState(t, c2.base, id, "done", 3*time.Minute)

	logs := c2.logs.String()
	if !strings.Contains(logs, "recovered 1 interrupted job(s) from the shard ledger") {
		t.Errorf("restarted coordinator did not report ledger recovery; logs:\n%s", logs)
	}
	if !strings.Contains(logs, "resumes from its shard ledger") {
		t.Errorf("resumed job did not reload shard state from the ledger; logs:\n%s", logs)
	}
	m := metricsText(t, c2.base)
	if strings.Contains(m, "disc_cluster_ledger_resumed_shards_total 0") ||
		!strings.Contains(m, "disc_cluster_ledger_resumed_shards_total") {
		t.Errorf("metrics show no ledger-resumed shards:\n%s", m)
	}
	if _, err := os.Stat(ledgerPath); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("ledger must be retired once the job completes (stat: %v)", err)
	}

	// The resumed result must be byte-identical to an offline CLI run.
	res, err := http.Get(c2.base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	serverResult, _ := io.ReadAll(res.Body)
	res.Body.Close()
	cliOut := filepath.Join(bin, "cli-patterns.txt")
	if msg, err := exec.Command(mineBin, "-in", dbPath, "-minsup", minsup, "-o", cliOut).CombinedOutput(); err != nil {
		t.Fatalf("discmine reference run: %v\n%s", err, msg)
	}
	cliResult, err := os.ReadFile(cliOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serverResult, cliResult) {
		t.Errorf("post-crash fleet result (%d bytes) != discmine result (%d bytes)",
			len(serverResult), len(cliResult))
	}
}
