package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/obs"
)

// server is the HTTP face of a jobs.Manager. It owns nothing but the
// request/response mapping: admission decisions, deduplication,
// budgets, containment and checkpointing all live in the manager — the
// server translates its typed errors onto status codes.
type server struct {
	mgr     *jobs.Manager
	limits  data.Limits // per-line / per-sequence input limits
	maxBody int64       // request body cap (413 beyond it)
	workers int         // default per-job partition workers
	ready   atomic.Bool
	logf    func(format string, args ...any)
	// clusterDegraded, when set (coordinator role), reports whether the
	// coordinator's ledger durability is degraded; it feeds the
	// degraded_durability field of /healthz alongside the manager's own.
	clusterDegraded func() bool
}

func newServer(mgr *jobs.Manager, limits data.Limits, maxBody int64, workers int, logf func(string, ...any)) *server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &server{mgr: mgr, limits: limits, maxBody: maxBody, workers: workers, logf: logf}
	s.ready.Store(true)
	return s
}

// routes wires the service endpoints:
//
//	POST   /jobs             submit a database, get a job (idempotent by content)
//	GET    /jobs/{id}        job status
//	GET    /jobs/{id}/result mined patterns, text/plain, canonical order
//	DELETE /jobs/{id}        cancel
//	GET    /healthz          liveness + metrics (always 200 while serving)
//	GET    /readyz           admission readiness (503 while draining)
//	GET    /metrics          Prometheus text exposition of the shared registry
//	GET    /debug/jobs/{id}/timeline  the job's assembled fleet-wide trace timeline
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/jobs/{id}/timeline", s.handleTimeline)
	mux.Handle("GET /metrics", obs.Handler(s.mgr.Registry()))
	return mux
}

// errJSON is the typed error payload. The taxonomy itself lives in
// internal/jobs (WireError) because the cluster shard protocol speaks
// it too; this alias keeps the server code and tests on their
// historical name.
type errJSON = jobs.WireError

// jobJSON is the status wire form.
type jobJSON struct {
	ID       string    `json:"id"`
	Algo     string    `json:"algo"`
	MinSup   int       `json:"minsup"`
	State    string    `json:"state"`
	Patterns int       `json:"patterns,omitempty"`
	Resumed  int       `json:"resumed,omitempty"`
	Error    *errJSON  `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Result   string    `json:"result,omitempty"` // URL of the result, once done
}

func statusJSON(st jobs.Status) jobJSON {
	out := jobJSON{
		ID: st.ID, Algo: st.Algo, MinSup: st.MinSup, State: string(st.State),
		Patterns: st.Patterns, Resumed: st.Resumed, Created: st.Created,
	}
	if st.Err != nil {
		out.Error = typedError(st.Err)
	}
	if st.State == jobs.StateDone {
		out.Result = "/jobs/" + st.ID + "/result"
	}
	return out
}

// typedError and failureCode are the shared jobs wire mappings under
// their historical server-local names.
func typedError(err error) *errJSON  { return jobs.TypedWireError(err) }
func failureCode(st jobs.Status) int { return jobs.FailureStatusCode(st) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *server) writeError(w http.ResponseWriter, code int, e *errJSON) {
	writeJSON(w, code, map[string]*errJSON{"error": e})
}

func (s *server) retryAfterHeader(w http.ResponseWriter) {
	secs := int(s.mgr.RetryAfter() / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// parseSubmit builds a jobs.Request from the query parameters and body.
func (s *server) parseSubmit(w http.ResponseWriter, r *http.Request) (jobs.Request, error) {
	q := r.URL.Query()
	req := jobs.Request{Algo: q.Get("algo")}
	opts := core.Options{BiLevel: true, Levels: 2, Workers: s.workers}

	get := func(key string, f func(string) error) error {
		if v := q.Get(key); v != "" {
			if err := f(v); err != nil {
				return fmt.Errorf("query parameter %q: %w", key, err)
			}
		}
		return nil
	}
	var minsup float64 = 0.01
	if err := errors.Join(
		get("minsup", func(v string) (err error) { minsup, err = strconv.ParseFloat(v, 64); return }),
		get("workers", func(v string) (err error) { opts.Workers, err = strconv.Atoi(v); return }),
		get("levels", func(v string) (err error) { opts.Levels, err = strconv.Atoi(v); return }),
		get("gamma", func(v string) (err error) { opts.Gamma, err = strconv.ParseFloat(v, 64); return }),
		get("bilevel", func(v string) (err error) { opts.BiLevel, err = strconv.ParseBool(v); return }),
		get("timeout", func(v string) (err error) { req.Timeout, err = time.ParseDuration(v); return }),
	); err != nil {
		return req, err
	}
	req.Opts = opts

	// The byte count disambiguates a parse failure caused by truncation
	// at the cap (a 413) from a genuinely malformed body (a 400): the
	// scanner hands the truncated tail to the parser before surfacing
	// the MaxBytesReader error, so the parse error alone can't tell.
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.maxBody)}
	db, err := data.ReadLimited(body, data.Auto, s.limits)
	if err != nil {
		if body.n >= s.maxBody {
			return req, fmt.Errorf("request body exceeds %d bytes: %w", s.maxBody, data.ErrInputTooLarge)
		}
		return req, err
	}
	if len(db) == 0 {
		return req, errors.New("empty database")
	}
	req.DB = db
	// minsup below 1 is a fraction of the database size, like discmine.
	if minsup < 1 {
		req.MinSup = int(minsup * float64(len(db)))
		if req.MinSup < 1 {
			req.MinSup = 1
		}
	} else {
		req.MinSup = int(minsup)
	}
	return req, nil
}

// countingReader tracks how many bytes the parser consumed.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := s.parseSubmit(w, r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) || errors.Is(err, data.ErrInputTooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, &errJSON{Kind: "input", Message: err.Error()})
			return
		}
		s.writeError(w, http.StatusBadRequest, &errJSON{Kind: "input", Message: err.Error()})
		return
	}

	j, err := s.mgr.Submit(req)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.retryAfterHeader(w)
		s.writeError(w, http.StatusTooManyRequests, &errJSON{Kind: "shed", Message: err.Error()})
		return
	case errors.Is(err, jobs.ErrDraining):
		s.retryAfterHeader(w)
		s.writeError(w, http.StatusServiceUnavailable, &errJSON{Kind: "draining", Message: err.Error()})
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, &errJSON{Kind: "input", Message: err.Error()})
		return
	}

	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			// The client went away; the job keeps running (another
			// identical submission can still attach to it).
			return
		}
	}
	st := j.Status()
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
		if st.State != jobs.StateDone {
			code = failureCode(st)
		}
	}
	writeJSON(w, code, statusJSON(st))
}

func (s *server) job(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	j, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, &errJSON{Kind: "not_found", Message: err.Error()})
		return nil, false
	}
	return j, true
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, statusJSON(j.Status()))
	}
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st := j.Status()
	switch st.State {
	case jobs.StateDone:
		res, _ := j.Result()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := jobs.WriteResult(w, res); err != nil {
			s.logf("discserve: writing result of %s: %v", st.ID, err)
		}
	case jobs.StateFailed, jobs.StateCanceled:
		s.writeError(w, failureCode(st), typedError(st.Err))
	default:
		// Not terminal yet: tell the client to come back.
		s.retryAfterHeader(w)
		s.writeError(w, http.StatusConflict, &errJSON{
			Kind: "not_ready", Message: fmt.Sprintf("job %s is %s", st.ID, st.State)})
	}
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, &errJSON{Kind: "not_found", Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, statusJSON(j.Status()))
}

// handleTimeline serves the job's assembled flight-recorder timeline:
// every span and event the fleet recorded under the job's trace ID —
// coordinator shard spans, worker-side children folded back over the
// wire, engine partition spans — in one JSON document. The id is the
// job ID (the checkpoint fingerprint); /healthz lists the trace IDs of
// the jobs currently holding a recorder.
func (s *server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	tl, err := s.mgr.Timeline(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, &errJSON{Kind: "not_found", Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, tl)
}

// handleHealthz is liveness plus the metrics snapshot: it answers 200
// for as long as the process can serve at all — including during drain.
// Every number is sourced from the manager's registry instruments (the
// same ones /metrics renders); ready/draining/metrics are the original
// keys, kept for compatibility.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	byState := s.mgr.JobsByState()
	states := make(map[string]int, len(byState))
	for st, n := range byState {
		states[string(st)] = n
	}
	version, goVersion := obs.BuildVersion()
	storage := s.mgr.Durability()
	degraded := storage.Degraded
	if s.clusterDegraded != nil && s.clusterDegraded() {
		degraded = true
	}
	writeJSON(w, http.StatusOK, struct {
		Ready              bool                  `json:"ready"`
		Draining           bool                  `json:"draining"`
		DegradedDurability bool                  `json:"degraded_durability"`
		Storage            jobs.DurabilityStatus `json:"storage"`
		Metrics            jobs.Metrics          `json:"metrics"`
		QueueDepth         int                   `json:"queue_depth"`
		JobsByState        map[string]int        `json:"jobs_by_state"`
		ActiveTraces       []string              `json:"active_traces"`
		Build              struct {
			Version string `json:"version"`
			Go      string `json:"go"`
		} `json:"build"`
	}{
		Ready: s.ready.Load(), Draining: s.mgr.Draining(),
		DegradedDurability: degraded, Storage: storage,
		Metrics:      s.mgr.Metrics(),
		QueueDepth:   s.mgr.QueueDepth(), JobsByState: states,
		ActiveTraces: s.mgr.ActiveTraces(),
		Build: struct {
			Version string `json:"version"`
			Go      string `json:"go"`
		}{version, goVersion},
	})
}

// handleReadyz is admission readiness: a load balancer stops routing
// here the moment shutdown starts, while in-flight jobs finish.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() || s.mgr.Draining() {
		s.retryAfterHeader(w)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
