// Command discmine mines frequent sequences from a database file with any
// of the implemented algorithms.
//
// Usage:
//
//	discmine -in db.txt -minsup 0.005 [-algo disc-all] [-top 20] [-stats] [-o patterns.txt]
//
// minsup below 1 is a fraction of the database size; at or above 1 it is
// the absolute minimum support count δ.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/disc-mining/disc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "discmine:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("discmine", flag.ContinueOnError)
	in := fs.String("in", "", "input database (native or SPMF format)")
	algo := fs.String("algo", string(disc.DISCAll), fmt.Sprintf("algorithm: %v", disc.Algorithms()))
	minsup := fs.Float64("minsup", 0.01, "minimum support: fraction (<1) or absolute count (>=1)")
	top := fs.Int("top", 0, "print only the top-N patterns by support (0 = all)")
	stats := fs.Bool("stats", false, "print DISC run statistics (disc-all variants only)")
	verify := fs.String("verify", "", "re-mine with this second algorithm and require identical results")
	out := fs.String("o", "", "write patterns to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	db, err := disc.ReadDatabase(*in)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "loaded %s\n", disc.DescribeDatabase(db))

	delta := int(*minsup)
	if *minsup < 1 {
		delta = disc.AbsSupport(*minsup, len(db))
	}
	m, err := disc.NewMiner(disc.Algorithm(*algo))
	if err != nil {
		return err
	}

	start := time.Now()
	res, err := m.Mine(db, delta)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %s in %.3fs (δ=%d)\n", m.Name(), res, time.Since(start).Seconds(), delta)

	if *verify != "" {
		v, err := disc.NewMiner(disc.Algorithm(*verify))
		if err != nil {
			return err
		}
		vStart := time.Now()
		vRes, err := v.Mine(db, delta)
		if err != nil {
			return err
		}
		if diff := res.Diff(vRes); diff != "" {
			return fmt.Errorf("verification against %s FAILED:\n%s", v.Name(), diff)
		}
		fmt.Fprintf(stdout, "verified against %s in %.3fs: identical results\n", v.Name(), time.Since(vStart).Seconds())
	}

	if *stats {
		if sm, ok := m.(interface{ LastStats() disc.Stats }); ok {
			fmt.Fprintf(stdout, "stats: %+v\n", sm.LastStats())
		} else {
			fmt.Fprintf(stdout, "stats: not available for %s\n", m.Name())
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	printed := 0
	for _, pc := range res.Sorted() {
		if *top > 0 && printed >= *top {
			fmt.Fprintf(w, "... (%d more)\n", res.Len()-printed)
			break
		}
		fmt.Fprintf(w, "%s support=%d\n", pc.Pattern, pc.Support)
		printed++
	}
	return nil
}
