// Command discmine mines frequent sequences from a database file with any
// of the implemented algorithms.
//
// Usage:
//
//	discmine -in db.txt -minsup 0.005 [-algo disc-all] [-workers 4] [-timeout 30s] [-top 20] [-stats] [-o patterns.txt]
//
// minsup below 1 is a fraction of the database size; at or above 1 it is
// the absolute minimum support count δ.
//
// -workers bounds the partition worker pool of the disc-all variants
// (0 = one worker per CPU; the mined result is identical at every
// setting). -timeout aborts the run after the given duration; Ctrl-C
// (SIGINT) aborts it immediately. Either way the process exits with an
// error instead of printing a partial result.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"github.com/disc-mining/disc"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "discmine:", err)
		os.Exit(1)
	}
}

// minerFor builds the requested algorithm, threading the worker count into
// the disc-all variants (the only parallel engines).
func minerFor(algo disc.Algorithm, workers int) (disc.Miner, error) {
	opts := disc.DefaultOptions()
	opts.Workers = workers
	switch algo {
	case disc.DISCAll:
		return disc.NewDISCAll(opts), nil
	case disc.DynamicDISCAll:
		return disc.NewDynamicDISCAll(opts), nil
	}
	return disc.NewMiner(algo)
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("discmine", flag.ContinueOnError)
	in := fs.String("in", "", "input database (native or SPMF format)")
	algo := fs.String("algo", string(disc.DISCAll), fmt.Sprintf("algorithm: %v", disc.Algorithms()))
	minsup := fs.Float64("minsup", 0.01, "minimum support: fraction (<1) or absolute count (>=1)")
	workers := fs.Int("workers", 0, "partition worker pool size for disc-all variants (0 = one per CPU)")
	timeout := fs.Duration("timeout", 0, "abort mining after this duration (0 = no limit)")
	top := fs.Int("top", 0, "print only the top-N patterns by support (0 = all)")
	stats := fs.Bool("stats", false, "print DISC run statistics (disc-all variants only)")
	verify := fs.String("verify", "", "re-mine with this second algorithm and require identical results")
	out := fs.String("o", "", "write patterns to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	db, err := disc.ReadDatabase(*in)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "loaded %s\n", disc.DescribeDatabase(db))

	delta := int(*minsup)
	if *minsup < 1 {
		delta = disc.AbsSupport(*minsup, len(db))
	}
	m, err := minerFor(disc.Algorithm(*algo), *workers)
	if err != nil {
		return err
	}

	start := time.Now()
	res, err := disc.AsContextMiner(m).MineContext(ctx, db, delta)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %s in %.3fs (δ=%d)\n", m.Name(), res, time.Since(start).Seconds(), delta)

	if *verify != "" {
		v, err := minerFor(disc.Algorithm(*verify), *workers)
		if err != nil {
			return err
		}
		vStart := time.Now()
		vRes, err := disc.AsContextMiner(v).MineContext(ctx, db, delta)
		if err != nil {
			return err
		}
		if diff := res.Diff(vRes); diff != "" {
			return fmt.Errorf("verification against %s FAILED:\n%s", v.Name(), diff)
		}
		fmt.Fprintf(stdout, "verified against %s in %.3fs: identical results\n", v.Name(), time.Since(vStart).Seconds())
	}

	if *stats {
		if sm, ok := m.(interface{ LastStats() disc.Stats }); ok {
			fmt.Fprintf(stdout, "stats: %+v\n", sm.LastStats())
		} else {
			fmt.Fprintf(stdout, "stats: not available for %s\n", m.Name())
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	printed := 0
	for _, pc := range res.Sorted() {
		if *top > 0 && printed >= *top {
			fmt.Fprintf(w, "... (%d more)\n", res.Len()-printed)
			break
		}
		fmt.Fprintf(w, "%s support=%d\n", pc.Pattern, pc.Support)
		printed++
	}
	return nil
}
