// Command discmine mines frequent sequences from a database file with any
// of the implemented algorithms.
//
// Usage:
//
//	discmine -in db.txt -minsup 0.005 [-algo disc-all] [-workers 4] [-timeout 30s] [-top 20] [-stats] [-o patterns.txt]
//
// minsup below 1 is a fraction of the database size; at or above 1 it is
// the absolute minimum support count δ.
//
// -workers bounds the partition worker pool of the disc-all variants
// (0 = one worker per CPU; the mined result is identical at every
// setting). -timeout aborts the run after the given duration; Ctrl-C
// (SIGINT) aborts it immediately.
//
// With -checkpoint <path>, an interrupted disc-all run writes the
// completed first-level partitions to <path>, reports how many finished,
// and exits with code 2; rerunning with -resume restores them and mines
// only the unfinished partitions — the final result is byte-identical to
// an uninterrupted run. -checkpoint-interval additionally snapshots the
// checkpoint periodically while the run is in flight.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"time"

	"github.com/disc-mining/disc"
	"github.com/disc-mining/disc/internal/cliutil"
	"github.com/disc-mining/disc/internal/obs"
)

// exitError carries a specific process exit code out of run.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }
func (e *exitError) ExitCode() int { return e.code }

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "discmine:", err)
		code := 1
		var ec interface{ ExitCode() int }
		if errors.As(err, &ec) {
			code = ec.ExitCode()
		}
		os.Exit(code)
	}
}

// minerFor builds the requested algorithm, threading the full options into
// the disc-all variants (the only engines that honour them).
func minerFor(algo disc.Algorithm, opts disc.Options) (disc.Miner, error) {
	switch algo {
	case disc.DISCAll:
		return disc.NewDISCAll(opts), nil
	case disc.DynamicDISCAll:
		return disc.NewDynamicDISCAll(opts), nil
	}
	return disc.NewMiner(algo)
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("discmine", flag.ContinueOnError)
	in := fs.String("in", "", "input database (native or SPMF format)")
	algo := fs.String("algo", string(disc.DISCAll), fmt.Sprintf("algorithm: %v", disc.Algorithms()))
	minsup := fs.Float64("minsup", 0.01, "minimum support: fraction (<1) or absolute count (>=1)")
	workers := fs.Int("workers", 0, "partition worker pool size for disc-all variants (0 = one per CPU)")
	timeout := fs.Duration("timeout", 0, "abort mining after this duration (0 = no limit)")
	top := fs.Int("top", 0, "print only the top-N patterns by support (0 = all)")
	stats := fs.Bool("stats", false, "print DISC run statistics (disc-all variants only)")
	verify := fs.String("verify", "", "re-mine with this second algorithm and require identical results")
	out := fs.String("o", "", "write patterns to this file instead of stdout")
	ckptPath := fs.String("checkpoint", "", "write a resumable checkpoint here when the run is interrupted (disc-all variants)")
	resume := fs.Bool("resume", false, "restore completed partitions from the -checkpoint file, if it exists")
	metricsOut := fs.String("metrics-out", "", "dump the run's metrics in Prometheus text format to this file on exit (\"-\" = stdout)")
	trace := fs.Bool("trace", false, "stream hierarchical span records (trace/span/parent IDs) as JSON lines to stderr")
	shared := cliutil.RegisterShared(fs) // -max-patterns, -max-mem-bytes, -checkpoint-interval
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	// Observability: one observer for the whole invocation. The metrics
	// dump is deferred so an interrupted run (exit code 2) still reports
	// what it did — the batch counterpart of scraping discserve.
	var observer *obs.Observer
	if *metricsOut != "" || *trace {
		observer = obs.NewObserver()
		obs.RegisterBuildInfo(observer.Registry)
		if *trace {
			// The CLI mints its own trace: every streamed span record
			// carries the same trace_id plus span/parent IDs, so one run's
			// hierarchy reads exactly like a discserve job timeline.
			observer.Tracer.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
			src := obs.NewIDSource(0)
			tc := obs.NewTraceContext(src.TraceID(), "discmine", src, obs.NewRecorder(0))
			observer = observer.WithTrace(tc, 0)
		}
		if *metricsOut != "" {
			defer func() {
				if err := dumpMetrics(observer, *metricsOut, stdout); err != nil {
					fmt.Fprintln(os.Stderr, "discmine: writing metrics:", err)
				}
			}()
		}
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	db, err := disc.ReadDatabase(*in)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "loaded %s\n", disc.DescribeDatabase(db))

	delta := int(*minsup)
	if *minsup < 1 {
		delta = disc.AbsSupport(*minsup, len(db))
	}
	algorithm := disc.Algorithm(*algo)
	opts := disc.DefaultOptions()
	opts.Workers = *workers
	opts.Obs = observer
	shared.Apply(&opts)

	// Checkpoint/resume wiring. The fingerprint binds the checkpoint file
	// to this exact job (algorithm, options, δ, database content), so a
	// checkpoint can never silently poison a different run's results.
	var cp *disc.Checkpointer
	var fp uint64
	if *ckptPath != "" {
		if algorithm != disc.DISCAll && algorithm != disc.DynamicDISCAll {
			return fmt.Errorf("-checkpoint requires a disc-all variant, not %q", algorithm)
		}
		fp = disc.CheckpointFingerprint(string(algorithm), opts, delta, db)
		cp = disc.NewCheckpointer()
		if *resume {
			switch f, err := disc.ReadCheckpoint(*ckptPath); {
			case errors.Is(err, os.ErrNotExist):
				fmt.Fprintf(stdout, "no checkpoint at %s, starting fresh\n", *ckptPath)
			case err != nil:
				return err
			case f.Algo != string(algorithm) || f.MinSup != delta || f.Fingerprint != fp:
				return fmt.Errorf("%w: %s belongs to a different job", disc.ErrCheckpointMismatch, *ckptPath)
			default:
				cp = disc.ResumeCheckpoint(f)
				fmt.Fprintf(stdout, "resuming: restored %d completed partitions from %s\n", len(f.Partitions), *ckptPath)
			}
		}
		opts.Checkpoint = cp
	} else if *resume {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	m, err := minerFor(algorithm, opts)
	if err != nil {
		return err
	}

	if cp != nil && shared.CheckpointInterval > 0 {
		tick := time.NewTicker(shared.CheckpointInterval)
		done := make(chan struct{})
		defer close(done)
		defer tick.Stop()
		go func() {
			for {
				select {
				case <-tick.C:
					// Snapshot whatever has completed; failures are retried
					// at the next tick and on interruption.
					_, _ = cp.File(string(algorithm), delta, fp).WriteFile(*ckptPath)
				case <-done:
					return
				}
			}
		}()
	}

	start := time.Now()
	res, err := disc.AsContextMiner(m).MineContext(ctx, db, delta)
	if err != nil {
		if cp != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			f := cp.File(string(algorithm), delta, fp)
			if _, werr := f.WriteFile(*ckptPath); werr != nil {
				return fmt.Errorf("interrupted, and writing the checkpoint failed: %v (run error: %w)", werr, err)
			}
			fmt.Fprintf(stdout, "interrupted: %d completed partitions checkpointed to %s\n", len(f.Partitions), *ckptPath)
			return &exitError{code: 2, err: fmt.Errorf("%w; rerun with -resume to continue", err)}
		}
		return err
	}
	if cp != nil {
		// The run finished: the checkpoint is obsolete.
		os.Remove(*ckptPath)
	}
	fmt.Fprintf(stdout, "%s: %s in %.3fs (δ=%d)\n", m.Name(), res, time.Since(start).Seconds(), delta)

	if *verify != "" {
		vopts := opts
		vopts.Checkpoint = nil
		v, err := minerFor(disc.Algorithm(*verify), vopts)
		if err != nil {
			return err
		}
		vStart := time.Now()
		vRes, err := disc.AsContextMiner(v).MineContext(ctx, db, delta)
		if err != nil {
			return err
		}
		if diff := res.Diff(vRes); diff != "" {
			return fmt.Errorf("verification against %s FAILED:\n%s", v.Name(), diff)
		}
		fmt.Fprintf(stdout, "verified against %s in %.3fs: identical results\n", v.Name(), time.Since(vStart).Seconds())
	}

	if *stats {
		if sm, ok := m.(interface{ LastStats() disc.Stats }); ok {
			fmt.Fprintf(stdout, "stats: %+v\n", sm.LastStats())
		} else {
			fmt.Fprintf(stdout, "stats: not available for %s\n", m.Name())
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	printed := 0
	for _, pc := range res.Sorted() {
		if *top > 0 && printed >= *top {
			fmt.Fprintf(w, "... (%d more)\n", res.Len()-printed)
			break
		}
		fmt.Fprintf(w, "%s support=%d\n", pc.Pattern, pc.Support)
		printed++
	}
	return nil
}

// dumpMetrics renders the observer's registry in the Prometheus text
// exposition format to path ("-" selects stdout).
func dumpMetrics(o *obs.Observer, path string, stdout io.Writer) error {
	if path == "-" {
		return o.Registry.WriteText(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Registry.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
