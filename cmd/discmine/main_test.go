package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/disc-mining/disc"
	"github.com/disc-mining/disc/internal/cliutil"
	"github.com/disc-mining/disc/internal/faultinject"
)

func writeDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.txt")
	content := "1:(1 5 7)(2)(8)(6)(3)(2 6)\n2:(2)(4 6)(5)\n3:(2 6 7)\n4:(6)(1 7)(2 6 8)(2 6)\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMineFile(t *testing.T) {
	path := writeDB(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-algo", "disc-all", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "4 customers") {
		t.Errorf("missing database summary:\n%s", s)
	}
	if !strings.Contains(s, "56 frequent sequences") {
		t.Errorf("expected 56 frequent sequences (Table 1, δ=2):\n%s", s)
	}
	if !strings.Contains(s, "Rounds:") && !strings.Contains(s, "Rounds") {
		t.Errorf("missing stats:\n%s", s)
	}
}

func TestFractionalThresholdAndTop(t *testing.T) {
	path := writeDB(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "0.5", "-top", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "δ=2") {
		t.Errorf("0.5 of 4 customers should give δ=2:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "more)") {
		t.Errorf("-top 3 should elide patterns:\n%s", out.String())
	}
}

func TestOutputFile(t *testing.T) {
	path := writeDB(t)
	outPath := filepath.Join(t.TempDir(), "patterns.txt")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-o", outPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "support=") {
		t.Errorf("pattern file content:\n%s", data)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{}, &out); err == nil {
		t.Error("missing -in must error")
	}
	if err := run(context.Background(), []string{"-in", "nope.txt"}, &out); err == nil {
		t.Error("missing file must error")
	}
	path := writeDB(t)
	if err := run(context.Background(), []string{"-in", path, "-algo", "bogus"}, &out); err == nil {
		t.Error("unknown algorithm must error")
	}
}

func TestAllAlgorithmsRunViaCLI(t *testing.T) {
	path := writeDB(t)
	for _, algo := range []string{"prefixspan", "pseudo", "gsp", "spade", "spam", "levelwise", "dynamic-disc-all"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-algo", algo}, &out); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "56 frequent sequences") {
			t.Errorf("%s disagrees:\n%s", algo, out.String())
		}
	}
}

func TestWorkersFlag(t *testing.T) {
	path := writeDB(t)
	for _, workers := range []string{"1", "4"} {
		for _, algo := range []string{"disc-all", "dynamic-disc-all"} {
			var out bytes.Buffer
			if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-algo", algo, "-workers", workers}, &out); err != nil {
				t.Fatalf("%s -workers %s: %v", algo, workers, err)
			}
			if !strings.Contains(out.String(), "56 frequent sequences") {
				t.Errorf("%s -workers %s disagrees:\n%s", algo, workers, out.String())
			}
		}
	}
}

func TestTimeoutAndCancellation(t *testing.T) {
	path := writeDB(t)
	var out bytes.Buffer
	// A generous timeout on a tiny database must not interfere.
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-timeout", "1m"}, &out); err != nil {
		t.Fatal(err)
	}
	// A cancelled parent context (what SIGINT produces) aborts the run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"-in", path, "-minsup", "2"}, &out); err != context.Canceled {
		t.Errorf("cancelled run = %v, want context.Canceled", err)
	}
	// An already-expired -timeout aborts the run with DeadlineExceeded:
	// the deadline passes while the database loads, long before mining.
	err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-timeout", "1ns"}, &out)
	if err != context.DeadlineExceeded {
		t.Errorf("expired -timeout = %v, want DeadlineExceeded", err)
	}
}

// TestCheckpointFlagValidation covers the flag-combination errors.
func TestCheckpointFlagValidation(t *testing.T) {
	path := writeDB(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-resume"}, &out); err == nil {
		t.Error("-resume without -checkpoint must error")
	}
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-algo", "spade", "-checkpoint", ckpt}, &out)
	if err == nil {
		t.Error("-checkpoint with a non-disc-all algorithm must error")
	}
}

// TestInterruptWritesCheckpointExitCode2: a cancelled checkpointed run
// writes the checkpoint, reports the completed partition count, and
// surfaces exit code 2; a fresh -resume run then completes normally and
// retires the file.
func TestInterruptWritesCheckpointExitCode2(t *testing.T) {
	path := writeDB(t)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := run(ctx, []string{"-in", path, "-minsup", "2", "-checkpoint", ckpt}, &out)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled checkpointed run = %v, want wrapped context.Canceled", err)
	}
	var ec interface{ ExitCode() int }
	if !errors.As(err, &ec) || ec.ExitCode() != 2 {
		t.Fatalf("err %v does not carry exit code 2", err)
	}
	if !strings.Contains(out.String(), "completed partitions checkpointed") {
		t.Errorf("missing interruption report:\n%s", out.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}

	out.Reset()
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-checkpoint", ckpt, "-resume"}, &out); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !strings.Contains(out.String(), "resuming:") || !strings.Contains(out.String(), "56 frequent sequences") {
		t.Errorf("resume output:\n%s", out.String())
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("completed run must retire the checkpoint, stat = %v", err)
	}
}

// TestResumeRestoresPartitions: a checkpoint with real completed
// partitions (produced by an injected mid-run interruption through the
// library) resumes through the CLI byte-identically to a straight run.
func TestResumeRestoresPartitions(t *testing.T) {
	path := writeDB(t)
	db, err := disc.ReadDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find an injection point that interrupts the run after at least one
	// first-level partition completed: with one worker the partition walk
	// is deterministic, so scan the boundary index upward.
	var cp *disc.Checkpointer
	for n := 2; ; n++ {
		if n > 64 {
			t.Fatal("no injection point left a partially completed run")
		}
		ctx, cancel := context.WithCancel(context.Background())
		opts := disc.DefaultOptions()
		opts.Workers = 1
		cp = disc.NewCheckpointer()
		opts.Checkpoint = cp
		inj := faultinject.New(1).
			Arm(faultinject.CtxCancel, faultinject.Spec{AfterN: n}).
			OnCancel(cancel)
		opts.Faults = inj
		_, err := disc.NewDISCAll(opts).MineContext(ctx, db, 2)
		cancel()
		if err != nil && cp.Completed() > 0 {
			break
		}
		if inj.Fired(faultinject.CtxCancel) == 0 {
			t.Fatal("run finished before any injection point interrupted it")
		}
	}
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	fp := disc.CheckpointFingerprint(string(disc.DISCAll), disc.DefaultOptions(), 2, db)
	if _, err := cp.File(string(disc.DISCAll), 2, fp).WriteFile(ckpt); err != nil {
		t.Fatal(err)
	}

	var straight, resumed bytes.Buffer
	outA := filepath.Join(t.TempDir(), "straight.txt")
	outB := filepath.Join(t.TempDir(), "resumed.txt")
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-o", outA}, &straight); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-checkpoint", ckpt, "-resume", "-o", outB}, &resumed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resuming: restored") {
		t.Errorf("resume did not restore partitions:\n%s", resumed.String())
	}
	a, _ := os.ReadFile(outA)
	b, _ := os.ReadFile(outB)
	if !bytes.Equal(a, b) {
		t.Errorf("resumed pattern output differs from straight run")
	}
}

// TestResumeRejectsForeignCheckpoint: a checkpoint written by a different
// job (different δ here) must be rejected, not silently merged.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	path := writeDB(t)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	if err := run(ctx, []string{"-in", path, "-minsup", "3", "-checkpoint", ckpt}, &out); err == nil {
		t.Fatal("expected interruption")
	}
	err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-checkpoint", ckpt, "-resume"}, &out)
	if !errors.Is(err, disc.ErrCheckpointMismatch) {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
	// Resuming with no checkpoint file on disk starts fresh.
	out.Reset()
	missing := filepath.Join(t.TempDir(), "none.ckpt")
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-checkpoint", missing, "-resume"}, &out); err != nil {
		t.Fatalf("missing checkpoint must start fresh: %v", err)
	}
	if !strings.Contains(out.String(), "starting fresh") {
		t.Errorf("missing fresh-start notice:\n%s", out.String())
	}
}

func TestVerifyFlag(t *testing.T) {
	path := writeDB(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-verify", "spade"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified against spade") {
		t.Errorf("missing verification line:\n%s", out.String())
	}
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-verify", "bogus"}, &out); err == nil {
		t.Error("unknown verify algorithm must error")
	}
}

// TestSharedFlagsAccepted is the drift regression for the budget and
// checkpoint flag set shared with discserve: every name cliutil exports
// must parse here too. Reaching the "-in is required" error proves the
// flag vector itself was accepted.
func TestSharedFlagsAccepted(t *testing.T) {
	for _, name := range cliutil.SharedFlagNames() {
		var out bytes.Buffer
		err := run(context.Background(), []string{"-" + name + "=0"}, &out)
		if err == nil || err.Error() != "-in is required" {
			t.Errorf("shared flag -%s rejected: %v", name, err)
		}
	}
}
