package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.txt")
	content := "1:(1 5 7)(2)(8)(6)(3)(2 6)\n2:(2)(4 6)(5)\n3:(2 6 7)\n4:(6)(1 7)(2 6 8)(2 6)\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMineFile(t *testing.T) {
	path := writeDB(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-algo", "disc-all", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "4 customers") {
		t.Errorf("missing database summary:\n%s", s)
	}
	if !strings.Contains(s, "56 frequent sequences") {
		t.Errorf("expected 56 frequent sequences (Table 1, δ=2):\n%s", s)
	}
	if !strings.Contains(s, "Rounds:") && !strings.Contains(s, "Rounds") {
		t.Errorf("missing stats:\n%s", s)
	}
}

func TestFractionalThresholdAndTop(t *testing.T) {
	path := writeDB(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "0.5", "-top", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "δ=2") {
		t.Errorf("0.5 of 4 customers should give δ=2:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "more)") {
		t.Errorf("-top 3 should elide patterns:\n%s", out.String())
	}
}

func TestOutputFile(t *testing.T) {
	path := writeDB(t)
	outPath := filepath.Join(t.TempDir(), "patterns.txt")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-o", outPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "support=") {
		t.Errorf("pattern file content:\n%s", data)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{}, &out); err == nil {
		t.Error("missing -in must error")
	}
	if err := run(context.Background(), []string{"-in", "nope.txt"}, &out); err == nil {
		t.Error("missing file must error")
	}
	path := writeDB(t)
	if err := run(context.Background(), []string{"-in", path, "-algo", "bogus"}, &out); err == nil {
		t.Error("unknown algorithm must error")
	}
}

func TestAllAlgorithmsRunViaCLI(t *testing.T) {
	path := writeDB(t)
	for _, algo := range []string{"prefixspan", "pseudo", "gsp", "spade", "spam", "levelwise", "dynamic-disc-all"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-algo", algo}, &out); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "56 frequent sequences") {
			t.Errorf("%s disagrees:\n%s", algo, out.String())
		}
	}
}

func TestWorkersFlag(t *testing.T) {
	path := writeDB(t)
	for _, workers := range []string{"1", "4"} {
		for _, algo := range []string{"disc-all", "dynamic-disc-all"} {
			var out bytes.Buffer
			if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-algo", algo, "-workers", workers}, &out); err != nil {
				t.Fatalf("%s -workers %s: %v", algo, workers, err)
			}
			if !strings.Contains(out.String(), "56 frequent sequences") {
				t.Errorf("%s -workers %s disagrees:\n%s", algo, workers, out.String())
			}
		}
	}
}

func TestTimeoutAndCancellation(t *testing.T) {
	path := writeDB(t)
	var out bytes.Buffer
	// A generous timeout on a tiny database must not interfere.
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-timeout", "1m"}, &out); err != nil {
		t.Fatal(err)
	}
	// A cancelled parent context (what SIGINT produces) aborts the run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"-in", path, "-minsup", "2"}, &out); err != context.Canceled {
		t.Errorf("cancelled run = %v, want context.Canceled", err)
	}
	// An already-expired -timeout aborts the run with DeadlineExceeded:
	// the deadline passes while the database loads, long before mining.
	err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-timeout", "1ns"}, &out)
	if err != context.DeadlineExceeded {
		t.Errorf("expired -timeout = %v, want DeadlineExceeded", err)
	}
}

func TestVerifyFlag(t *testing.T) {
	path := writeDB(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-verify", "spade"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified against spade") {
		t.Errorf("missing verification line:\n%s", out.String())
	}
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-verify", "bogus"}, &out); err == nil {
		t.Error("unknown verify algorithm must error")
	}
}
