package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMetricsOutFile: -metrics-out dumps the run's registry in the
// Prometheus text format, carrying the same engine families discserve
// serves at /metrics, plus build identity.
func TestMetricsOutFile(t *testing.T) {
	path := writeDB(t)
	mpath := filepath.Join(t.TempDir(), "metrics.prom")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-metrics-out", mpath}, &out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		"# TYPE disc_mine_runs_total counter",
		"disc_mine_runs_total 1",
		"disc_rounds_total",
		"disc_skips_total",
		"disc_frequent_hits_total",
		`disc_partitions_total{level="0"}`,
		`disc_stage_duration_seconds_count{stage="mine"} 1`,
		"disc_build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics dump lacks %q:\n%s", want, text)
		}
	}
}

// TestMetricsOutStdout: "-" selects stdout, after the pattern output.
func TestMetricsOutStdout(t *testing.T) {
	path := writeDB(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-minsup", "2", "-metrics-out", "-"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "56 frequent sequences") {
		t.Fatalf("mining output missing:\n%s", s)
	}
	if !strings.Contains(s, "disc_mine_runs_total 1") {
		t.Fatalf("metrics missing from stdout:\n%s", s)
	}
}

// TestTraceEmitsSpanRecords: -trace streams one JSON span record per
// traced stage to stderr in the hierarchical format — every record
// carries the run's trace ID and its own span ID, and the partition
// spans parent under the root "mine" span.
func TestTraceEmitsSpanRecords(t *testing.T) {
	path := writeDB(t)
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = w
	var out bytes.Buffer
	runErr := run(context.Background(), []string{"-in", path, "-minsup", "2", "-trace"}, &out)
	os.Stderr = oldStderr
	w.Close()
	lines, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	type record struct {
		Msg    string  `json:"msg"`
		Stage  string  `json:"stage"`
		Dur    float64 `json:"dur"`
		Trace  string  `json:"trace_id"`
		Span   string  `json:"span_id"`
		Parent string  `json:"parent_span_id"`
	}
	stages := map[string]bool{}
	traces := map[string]bool{}
	spanOf := map[string]string{}   // stage -> span_id (last seen)
	parentOf := map[string]string{} // stage -> parent_span_id (last seen)
	sc := bufio.NewScanner(bytes.NewReader(lines))
	for sc.Scan() {
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON trace line %q: %v", sc.Text(), err)
		}
		if rec.Msg != "span" || rec.Stage == "" {
			t.Fatalf("unexpected trace record %q", sc.Text())
		}
		if len(rec.Trace) != 16 || len(rec.Span) != 16 {
			t.Fatalf("record %q lacks 16-hex trace/span IDs", sc.Text())
		}
		stages[rec.Stage] = true
		traces[rec.Trace] = true
		spanOf[rec.Stage] = rec.Span
		parentOf[rec.Stage] = rec.Parent
	}
	if !stages["mine"] || !stages["partition_l0"] {
		t.Fatalf("traced stages %v, want at least mine and partition_l0", stages)
	}
	if len(traces) != 1 {
		t.Fatalf("want one trace ID across all records, got %v", traces)
	}
	if parentOf["partition_l0"] != spanOf["mine"] {
		t.Fatalf("partition_l0 parent %q, want the mine span %q",
			parentOf["partition_l0"], spanOf["mine"])
	}
}
