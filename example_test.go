package disc_test

import (
	"fmt"

	"github.com/disc-mining/disc"
)

// The paper's Table 1 database, used by all examples.
func paperDB() disc.Database {
	return disc.Database{
		disc.MustParseCustomer(1, "(a, e, g)(b)(h)(f)(c)(b, f)"),
		disc.MustParseCustomer(2, "(b)(d, f)(e)"),
		disc.MustParseCustomer(3, "(b, f, g)"),
		disc.MustParseCustomer(4, "(f)(a, g)(b, f, h)(b, f)"),
	}
}

func ExampleMine() {
	res, _ := disc.Mine(paperDB(), 2)
	sup, _ := res.Support(disc.MustParsePattern("(a)(b)(b)"))
	fmt.Printf("%d frequent sequences; <(a)(b)(b)> support=%d\n", res.Len(), sup)
	// Output: 56 frequent sequences; <(a)(b)(b)> support=2
}

func ExampleNewMiner() {
	m, _ := disc.NewMiner(disc.SPADE)
	res, _ := m.Mine(paperDB(), 2)
	fmt.Println(m.Name(), res.Len())
	// Output: spade 56
}

func ExampleCompare() {
	a := disc.MustParsePattern("(a, b)(c)")
	b := disc.MustParsePattern("(a)(b, c)")
	fmt.Println(disc.Compare(a, b) < 0)
	// Output: true
}

func ExampleMineRelative() {
	// δ = ⌈0.5 · 4⌉ = 2.
	res, _ := disc.MineRelative(paperDB(), 0.5)
	fmt.Println(res.MaxLen())
	// Output: 5
}

func ExampleMineWeighted() {
	w := make(disc.Weights, 9)
	for i := range w {
		w[i] = 1.0
	}
	w[8] = 3.0 // item h is three times as important
	patterns, _ := disc.MineWeighted(paperDB(), w, 6.0)
	fmt.Printf("%s wsup=%.0f\n", patterns[0].Pattern.Letters(), patterns[0].WeightedSupport)
	// Output: <(h)> wsup=6
}

func ExampleResult_Sorted() {
	res, _ := disc.Mine(paperDB(), 3)
	for _, pc := range res.Sorted() {
		fmt.Printf("%s %d\n", pc.Pattern.Letters(), pc.Support)
	}
	// Output:
	// <(b)> 4
	// <(b, f)> 3
	// <(b)(f)> 3
	// <(f)> 4
	// <(g)> 3
}
