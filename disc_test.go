package disc

import (
	"context"
	"math/rand"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/testutil"
)

// TestAlgorithmsMatchRegistry: the public algorithm list and the miner
// registry must stay in sync — NewMiner resolves names through the
// registry, and the differential harness enumerates it.
func TestAlgorithmsMatchRegistry(t *testing.T) {
	registered := map[string]bool{}
	for _, n := range mining.RegisteredNames() {
		registered[n] = true
	}
	for _, a := range Algorithms() {
		if !registered[string(a)] {
			t.Errorf("algorithm %q is not registered", a)
			continue
		}
		m, err := NewMiner(a)
		if err != nil {
			t.Errorf("NewMiner(%q): %v", a, err)
			continue
		}
		if m.Name() != string(a) {
			t.Errorf("NewMiner(%q).Name() = %q", a, m.Name())
		}
	}
	if got, want := len(registered), len(Algorithms()); got != want {
		t.Errorf("%d registered miners vs %d public algorithms: %v", got, want, mining.RegisteredNames())
	}
}

func table1() Database {
	return Database{
		MustParseCustomer(1, "(a, e, g)(b)(h)(f)(c)(b, f)"),
		MustParseCustomer(2, "(b)(d, f)(e)"),
		MustParseCustomer(3, "(b, f, g)"),
		MustParseCustomer(4, "(f)(a, g)(b, f, h)(b, f)"),
	}
}

func TestQuickstartFlow(t *testing.T) {
	res, err := Mine(table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sup, ok := res.Support(MustParsePattern("(a)(b)(b)")); !ok || sup != 2 {
		t.Errorf("<(a)(b)(b)> = %d,%v", sup, ok)
	}
	rel, err := MineRelative(table1(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Diff(rel); diff != "" {
		t.Errorf("MineRelative(0.5) over 4 customers must equal Mine(2):\n%s", diff)
	}
}

func TestAllAlgorithmsAgreeViaFacade(t *testing.T) {
	ref, err := Mine(table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Algorithms() {
		m, err := NewMiner(a)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != string(a) {
			t.Errorf("Name() = %q, want %q", m.Name(), a)
		}
		got, err := m.Mine(table1(), 2)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if diff := ref.Diff(got); diff != "" {
			t.Errorf("%s:\n%s", a, diff)
		}
	}
	if _, err := NewMiner("nope"); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("unknown algorithm error = %v", err)
	}
}

func TestMineContextThroughFacade(t *testing.T) {
	ref, err := Mine(table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MineContext(context.Background(), table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Diff(got); diff != "" {
		t.Errorf("MineContext differs from Mine:\n%s", diff)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := MineContext(ctx, table1(), 2); err != context.Canceled || res != nil {
		t.Errorf("cancelled MineContext = (%v, %v), want (nil, Canceled)", res, err)
	}
}

// TestWrappedMinerCancellation: AsContextMiner upgrades a serial baseline
// (no native cancellation support) to honour a cancelled context promptly,
// and the abandoned background run winds down without leaking goroutines.
func TestWrappedMinerCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	m, err := NewMiner(PrefixSpan)
	if err != nil {
		t.Fatal(err)
	}
	cm := AsContextMiner(m)
	// Sanity: without cancellation the wrapper is transparent.
	ref, _ := Mine(table1(), 2)
	got, err := cm.MineContext(context.Background(), table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Diff(got); diff != "" {
		t.Errorf("wrapped PrefixSpan differs from DISC-all:\n%s", diff)
	}
	// A run on a heavier database is cancelled immediately after start;
	// the wrapper must return Canceled well before the mine would finish.
	r := rand.New(rand.NewSource(7))
	db := testutil.SkewedRandomDB(r, 300, 12, 6, 4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cm.MineContext(ctx, db, 2)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("MineContext = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("wrapped miner did not return after cancellation")
	}
	// The abandoned serial mine keeps running in the background until it
	// completes; wait for it to wind down.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base+2 {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Errorf("goroutines did not settle: %d now vs %d at start", n, base)
	}
}

func TestStatsExposedThroughFacade(t *testing.T) {
	m := NewDISCAll(DefaultOptions())
	if _, err := m.Mine(table1(), 2); err != nil {
		t.Fatal(err)
	}
	if m.LastStats().Rounds == 0 {
		t.Error("no DISC rounds recorded")
	}
	d := NewDynamicDISCAll(Options{BiLevel: true, Gamma: 0.4})
	if _, err := d.Mine(table1(), 2); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAndRoundTripThroughFacade(t *testing.T) {
	db, err := Generate(GeneratorConfig{NCust: 50, NItems: 30, SLen: 5, TLen: 2,
		SeqPatLen: 3, NSeqPatterns: 20, NLitPatterns: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	native := filepath.Join(dir, "db.txt")
	spmf := filepath.Join(dir, "db.spmf")
	if err := WriteDatabase(native, db); err != nil {
		t.Fatal(err)
	}
	if err := WriteDatabaseSPMF(spmf, db); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{native, spmf} {
		got, err := ReadDatabase(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(db) {
			t.Errorf("%s: %d customers, want %d", p, len(got), len(db))
		}
		for i := range db {
			if Compare(got[i].Pattern(), db[i].Pattern()) != 0 {
				t.Fatalf("%s: customer %d differs", p, i)
			}
		}
	}
	if !strings.Contains(DescribeDatabase(db), "50 customers") {
		t.Errorf("DescribeDatabase = %q", DescribeDatabase(db))
	}
}

func TestWeightedThroughFacade(t *testing.T) {
	w := make(Weights, 9)
	for i := range w {
		w[i] = 1
	}
	out, err := MineWeighted(table1(), w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no weighted patterns")
	}
	// With unit weights, weighted support equals plain support.
	ref, _ := Mine(table1(), 2)
	if len(out) != ref.Len() {
		t.Errorf("unit-weight mining found %d patterns, plain found %d", len(out), ref.Len())
	}
}

func TestNRRByLevelThroughFacade(t *testing.T) {
	res, err := Mine(table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	nrr := NRRByLevel(res, len(table1()))
	if len(nrr) < 2 || nrr[0] <= 0 || nrr[0] > 1 {
		t.Errorf("NRRByLevel = %v", nrr)
	}
}

func TestClosedMaximalThroughFacade(t *testing.T) {
	res, err := Mine(table1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	closed, maximal := Closed(res), Maximal(res)
	if !(maximal.Len() <= closed.Len() && closed.Len() <= res.Len()) {
		t.Fatalf("sizes: %d maximal, %d closed, %d all", maximal.Len(), closed.Len(), res.Len())
	}
	if maximal.Len() == 0 {
		t.Fatal("no maximal patterns")
	}
	// With δ=2 on Table 1 the longest frequent sequences have length 5;
	// each of them must be maximal.
	for _, pc := range res.Sorted() {
		if pc.Pattern.Len() == res.MaxLen() {
			if _, ok := maximal.Support(pc.Pattern); !ok {
				t.Errorf("longest pattern %s not maximal", pc.Pattern.Letters())
			}
		}
	}
}
