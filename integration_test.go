package disc

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/gen"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// TestAllMinersAgreeOnGeneratedWorkloads is the repository's heaviest
// integration test: all eight production miners (the level-wise reference
// included) must produce identical pattern sets with identical supports on
// IBM-Quest-style generated data across parameter settings that mirror the
// paper's workloads in miniature.
func TestAllMinersAgreeOnGeneratedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		name string
		cfg  gen.Config
		frac float64
	}{
		// Thresholds sit above the expected planted-pattern supports so the
		// frequent tails stay small enough for the quadratic reference
		// miners (GSP, LevelWise) to finish in seconds.
		{"sparse-table11", gen.Config{NCust: 400, SLen: 10, TLen: 2.5, NItems: 100,
			SeqPatLen: 4, NSeqPatterns: 60, NLitPatterns: 300, Seed: 2}, 0.08},
		{"dense-lesh", gen.Config{NCust: 150, SLen: 8, TLen: 4, NItems: 80,
			SeqPatLen: 6, NSeqPatterns: 40, NLitPatterns: 200, Seed: 3}, 0.15},
		{"long-theta", gen.Config{NCust: 200, SLen: 20, TLen: 2, NItems: 120,
			SeqPatLen: 4, NSeqPatterns: 50, NLitPatterns: 250, Seed: 4}, 0.12},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db, err := gen.Generate(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			minSup := AbsSupport(c.frac, len(db))
			var ref *Result
			for _, a := range Algorithms() {
				if a == GSP && c.name == "dense-lesh" {
					continue // GSP's candidate counting is quadratic; covered by the other cases
				}
				m, err := NewMiner(a)
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Mine(db, minSup)
				if err != nil {
					t.Fatalf("%s: %v", a, err)
				}
				if ref == nil {
					ref = res
					if res.Len() == 0 {
						t.Fatalf("workload %s produced no patterns at δ=%d", c.name, minSup)
					}
					continue
				}
				if diff := ref.Diff(res); diff != "" {
					t.Errorf("%s disagrees on %s (δ=%d):\n%s", a, c.name, minSup, diff)
				}
			}
		})
	}
}

// TestSupportsAreExactOnGeneratedData verifies, for a sample of mined
// patterns, that the reported support equals a direct containment count.
func TestSupportsAreExactOnGeneratedData(t *testing.T) {
	db, err := gen.Generate(gen.Config{NCust: 300, SLen: 8, TLen: 3, NItems: 60,
		SeqPatLen: 4, NSeqPatterns: 40, NLitPatterns: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(db, AbsSupport(0.03, len(db)))
	if err != nil {
		t.Fatal(err)
	}
	sorted := res.Sorted()
	if len(sorted) == 0 {
		t.Fatal("no patterns")
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 40 && i < len(sorted); i++ {
		pc := sorted[r.Intn(len(sorted))]
		count := 0
		for _, cs := range db {
			if cs.Contains(pc.Pattern) {
				count++
			}
		}
		if count != pc.Support {
			t.Fatalf("support of %s = %d, direct count %d", pc.Pattern, pc.Support, count)
		}
	}
}

// TestAntiMonotonePropertyOfResults: every prefix of a frequent sequence
// is frequent with at least the same support (a structural invariant every
// correct result set satisfies).
func TestAntiMonotonePropertyOfResults(t *testing.T) {
	db, err := gen.Generate(gen.Config{NCust: 250, SLen: 8, TLen: 3, NItems: 50,
		SeqPatLen: 4, NSeqPatterns: 30, NLitPatterns: 150, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(db, AbsSupport(0.04, len(db)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range res.Sorted() {
		if pc.Pattern.Len() == 1 {
			continue
		}
		prefix := pc.Pattern.Prefix(pc.Pattern.Len() - 1)
		psup, ok := res.Support(prefix)
		if !ok {
			t.Fatalf("prefix %s of frequent %s missing", prefix, pc.Pattern)
		}
		if psup < pc.Support {
			t.Fatalf("prefix %s support %d < %s support %d", prefix, psup, pc.Pattern, pc.Support)
		}
	}
}

// TestDeterministicResults: mining twice yields identical results, and the
// result set is independent of customer order.
func TestDeterministicResults(t *testing.T) {
	db, err := gen.Generate(gen.Config{NCust: 200, SLen: 6, TLen: 2.5, NItems: 40,
		SeqPatLen: 3, NSeqPatterns: 30, NLitPatterns: 120, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	minSup := AbsSupport(0.05, len(db))
	a, err := Mine(db, minSup)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(db, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if diff := a.Diff(b); diff != "" {
		t.Fatalf("non-deterministic:\n%s", diff)
	}
	shuffled := append(mining.Database(nil), db...)
	rand.New(rand.NewSource(5)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	c, err := Mine(shuffled, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if diff := a.Diff(c); diff != "" {
		t.Fatalf("order-dependent:\n%s", diff)
	}
}

// TestLargeAlphabetSmallData guards against index bugs when the item space
// is much larger than the data.
func TestLargeAlphabetSmallData(t *testing.T) {
	db := Database{
		NewCustomer(1, seq.NewItemset(9999), seq.NewItemset(12345)),
		NewCustomer(2, seq.NewItemset(9999), seq.NewItemset(12345)),
	}
	for _, a := range Algorithms() {
		m, _ := NewMiner(a)
		res, err := m.Mine(db, 2)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if sup, ok := res.Support(MustParsePattern("(9999)(12345)")); !ok || sup != 2 {
			t.Errorf("%s: <(9999)(12345)> = %d,%v", a, sup, ok)
		}
	}
}
