// Benchmarks regenerating the workload of every table and figure of the
// paper's evaluation (§4), one benchmark per artifact, at a laptop-friendly
// fixed scale (the cmd/experiments tool runs the full sweeps; see
// EXPERIMENTS.md for paper-vs-measured results).
//
//	go test -bench=. -benchmem
package disc

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/gen"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/prefixspan"
)

// Workload cache: databases are generated once and shared by the
// benchmarks that sweep over them.
var (
	once     sync.Once
	sparseDB Database // Figure 8 point: Table 11 defaults
	denseDB  Database // Figure 9 / Tables 12-13: slen=tlen=seq.patlen=8
	thetaDB  Database // Table 14 / Figure 10 point: θ=20
	smallDB  Database // Table 5 all-baselines point: small alphabet so the
	// quadratic candidate generators (GSP, LevelWise) stay in budget
)

func workloads(b *testing.B) {
	b.Helper()
	once.Do(func() {
		mustGen := func(c gen.Config) Database {
			db, err := gen.Generate(c)
			if err != nil {
				b.Fatal(err)
			}
			return db
		}
		// Pattern pools stay at the Quest defaults: with fixed pools both δ
		// and the planted-pattern supports scale with the customer count,
		// preserving the paper workloads' δ-to-support ratio (see
		// internal/bench docs).
		sparse := gen.PaperDefaults(2000)
		sparse.Seed = 1
		sparseDB = mustGen(sparse)

		dense := gen.DenseDefaults(500)
		dense.Seed = 1
		denseDB = mustGen(dense)

		theta := gen.PaperDefaults(1000)
		theta.SLen = 20
		theta.Seed = 1
		thetaDB = mustGen(theta)

		small := gen.PaperDefaults(300)
		small.NItems = 100
		small.NSeqPatterns, small.NLitPatterns = 100, 500
		small.Seed = 1
		smallDB = mustGen(small)
	})
}

func benchMiner(b *testing.B, m mining.Miner, db Database, minSup int) {
	b.Helper()
	b.ReportAllocs()
	var patterns int
	for i := 0; i < b.N; i++ {
		res, err := m.Mine(db, minSup)
		if err != nil {
			b.Fatal(err)
		}
		patterns = res.Len()
	}
	b.ReportMetric(float64(patterns), "patterns")
}

// BenchmarkFig8 measures the Figure 8 point (database-size sweep, minsup
// 0.0025, Table 11 parameters) for the three compared algorithms.
func BenchmarkFig8(b *testing.B) {
	workloads(b)
	minSup := AbsSupport(0.0025, len(sparseDB))
	if minSup < 2 {
		minSup = 2
	}
	b.Run("DISCAll", func(b *testing.B) { benchMiner(b, core.New(), sparseDB, minSup) })
	b.Run("PrefixSpan", func(b *testing.B) { benchMiner(b, prefixspan.Basic{}, sparseDB, minSup) })
	b.Run("Pseudo", func(b *testing.B) { benchMiner(b, prefixspan.Pseudo{}, sparseDB, minSup) })
}

// BenchmarkFig9 measures the Figure 9 point (dense database, two ends of
// the threshold sweep) for the three compared algorithms.
func BenchmarkFig9(b *testing.B) {
	workloads(b)
	for _, frac := range []float64{0.02, 0.005} {
		minSup := AbsSupport(frac, len(denseDB))
		b.Run("DISCAll/minsup="+trim(frac), func(b *testing.B) { benchMiner(b, core.New(), denseDB, minSup) })
		b.Run("PrefixSpan/minsup="+trim(frac), func(b *testing.B) { benchMiner(b, prefixspan.Basic{}, denseDB, minSup) })
		b.Run("Pseudo/minsup="+trim(frac), func(b *testing.B) { benchMiner(b, prefixspan.Pseudo{}, denseDB, minSup) })
	}
}

// BenchmarkTable12NRR measures the Table 12 pipeline: a DISC-all run plus
// the per-level NRR aggregation of §4.2.
func BenchmarkTable12NRR(b *testing.B) {
	workloads(b)
	minSup := AbsSupport(0.01, len(denseDB))
	m := core.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := m.Mine(denseDB, minSup)
		if err != nil {
			b.Fatal(err)
		}
		nrr := NRRByLevel(res, len(denseDB))
		if len(nrr) == 0 {
			b.Fatal("no NRR levels")
		}
	}
}

// BenchmarkTable13Ratio measures the two sides of the Table 13 ratio
// (Pseudo vs DISC-all on the dense database at minsup 0.0075).
func BenchmarkTable13Ratio(b *testing.B) {
	workloads(b)
	minSup := AbsSupport(0.0075, len(denseDB))
	b.Run("Pseudo", func(b *testing.B) { benchMiner(b, prefixspan.Pseudo{}, denseDB, minSup) })
	b.Run("DISCAll", func(b *testing.B) { benchMiner(b, core.New(), denseDB, minSup) })
}

// BenchmarkTable14NRR measures the Table 14 pipeline at θ=20.
func BenchmarkTable14NRR(b *testing.B) {
	workloads(b)
	minSup := AbsSupport(0.005, len(thetaDB))
	m := core.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := m.Mine(thetaDB, minSup)
		if err != nil {
			b.Fatal(err)
		}
		_ = NRRByLevel(res, len(thetaDB))
	}
}

// BenchmarkFig10 measures the Figure 10 point (θ=20, minsup 0.005) for all
// four compared algorithms, including Dynamic DISC-all.
func BenchmarkFig10(b *testing.B) {
	workloads(b)
	minSup := AbsSupport(0.005, len(thetaDB))
	b.Run("DISCAll", func(b *testing.B) { benchMiner(b, core.New(), thetaDB, minSup) })
	b.Run("DynamicDISCAll", func(b *testing.B) { benchMiner(b, core.NewDynamic(), thetaDB, minSup) })
	b.Run("PrefixSpan", func(b *testing.B) { benchMiner(b, prefixspan.Basic{}, thetaDB, minSup) })
	b.Run("Pseudo", func(b *testing.B) { benchMiner(b, prefixspan.Pseudo{}, thetaDB, minSup) })
}

// BenchmarkMineParallel sweeps the partition worker pool on the Figure 8
// workload. On a multi-CPU host the larger pools should show the speedup
// the execution layer is for; on one CPU the sweep measures the scheduling
// overhead of the parallel path (eager bucket computation plus merge),
// which must stay small. The mined result is identical at every width.
func BenchmarkMineParallel(b *testing.B) {
	workloads(b)
	minSup := AbsSupport(0.0025, len(sparseDB))
	if minSup < 2 {
		minSup = 2
	}
	widths := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		widths = append(widths, g)
	}
	for _, w := range widths {
		m := NewDISCAll(Options{BiLevel: true, Levels: 2, Workers: w})
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchMiner(b, m, sparseDB, minSup) })
	}
}

// BenchmarkTable5Baselines complements the static Table 5 matrix with a
// like-for-like timing of every implemented algorithm on one workload — a
// small-alphabet database, because GSP's and LevelWise's candidate
// generation is quadratic in the number of frequent items.
func BenchmarkTable5Baselines(b *testing.B) {
	workloads(b)
	minSup := AbsSupport(0.05, len(smallDB))
	for _, a := range Algorithms() {
		m, err := NewMiner(a)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(a), func(b *testing.B) { benchMiner(b, m, smallDB, minSup) })
	}
}

func trim(f float64) string {
	switch f {
	case 0.02:
		return "0.02"
	case 0.005:
		return "0.005"
	}
	return "x"
}
