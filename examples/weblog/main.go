// Web traversal mining: the first weighting application named in §5 of the
// paper — "when finding the traversal patterns in the WWW, different pages
// may have a variety of importance, e.g. page weights."
//
// Sessions are synthesized as page-visit sequences (one page per
// transaction) over a small site map with a few habitual paths. Plain
// frequent-sequence mining surfaces the high-traffic navigation paths;
// weighted mining re-ranks them with page weights that value the checkout
// funnel, exactly the scenario the paper sketches.
//
//	go run ./examples/weblog
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/disc-mining/disc"
)

// The site map: page ids and names.
var pages = []string{
	"", // item 0 unused
	"home", "search", "category", "product", "reviews",
	"cart", "checkout", "payment", "confirm", "help",
}

// Habitual navigation paths with relative popularity.
var paths = []struct {
	weight int
	visits []disc.Item
}{
	{5, []disc.Item{1, 2, 4, 5}},          // home -> search -> product -> reviews
	{4, []disc.Item{1, 3, 4, 6}},          // home -> category -> product -> cart
	{3, []disc.Item{1, 3, 4}},             // window shopping
	{2, []disc.Item{1, 2, 4, 6, 7, 8, 9}}, // the full purchase funnel
	{1, []disc.Item{1, 10}},               // help lookups
}

func main() {
	r := rand.New(rand.NewSource(7))
	db := make(disc.Database, 0, 2000)
	for s := 0; s < 2000; s++ {
		db = append(db, session(r, s+1))
	}
	fmt.Println("sessions:", disc.DescribeDatabase(db))

	// Plain mining: the most common navigation paths.
	res, err := disc.MineRelative(db, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s at 5%% support; longest paths:\n", res)
	for _, pc := range res.Sorted() {
		if pc.Pattern.Len() >= res.MaxLen()-1 {
			fmt.Printf("  %-40s %4d sessions\n", renderPath(pc.Pattern), pc.Support)
		}
	}

	// Weighted mining: pages later in the purchase funnel matter more, so
	// rarer checkout paths outrank ubiquitous browsing hops.
	w := make(disc.Weights, len(pages))
	for i := range w {
		w[i] = 1
	}
	w[6], w[7], w[8], w[9] = 3, 5, 5, 8 // cart, checkout, payment, confirm
	weighted, err := disc.MineWeighted(db, w, 250)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop weighted paths (τ=250, funnel pages upweighted):\n")
	for i, wp := range weighted {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-40s wsup=%7.1f (support %d, weight %.2f)\n",
			renderPath(wp.Pattern), wp.WeightedSupport, wp.Support, wp.Weight)
	}
}

// session synthesizes one visit: a habitual path with noise hops, possibly
// truncated.
func session(r *rand.Rand, id int) *disc.Customer {
	p := pick(r)
	var visits []disc.Itemset
	for _, page := range p {
		if r.Float64() < 0.15 {
			continue // abandoned step
		}
		visits = append(visits, disc.NewItemset(page))
		if r.Float64() < 0.25 { // a random detour
			visits = append(visits, disc.NewItemset(disc.Item(1+r.Intn(len(pages)-1))))
		}
	}
	if len(visits) == 0 {
		visits = append(visits, disc.NewItemset(1))
	}
	return disc.NewCustomer(id, visits...)
}

func pick(r *rand.Rand) []disc.Item {
	total := 0
	for _, p := range paths {
		total += p.weight
	}
	x := r.Intn(total)
	for _, p := range paths {
		if x < p.weight {
			return p.visits
		}
		x -= p.weight
	}
	return paths[0].visits
}

func renderPath(p disc.Pattern) string {
	out := ""
	for i := 0; i < p.Len(); i++ {
		if i > 0 {
			out += " > "
		}
		out += pages[p.ItemAt(i)]
	}
	return out
}
