// Market-basket analysis: the motivating workload of the paper's
// introduction. A synthetic retail database is generated with the
// IBM-Quest-style generator (the same process as §4's evaluation data),
// mined for frequent purchase sequences, and the DISC-all runtime is
// compared against PrefixSpan with pseudo-projection on the same data.
//
//	go run ./examples/market
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/disc-mining/disc"
)

func main() {
	// A season of purchase histories: 5000 customers, ~10 store visits
	// each, ~2.5 products per visit, 500 distinct products.
	cfg := disc.GeneratorConfig{
		NCust:     5000,
		SLen:      10,
		TLen:      2.5,
		NItems:    500,
		SeqPatLen: 4,
		// Pools scaled to the database so planted buying patterns recur.
		NSeqPatterns: 500,
		NLitPatterns: 2500,
		Seed:         42,
	}
	db, err := disc.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated", disc.DescribeDatabase(db))

	// Mine at 1% relative support.
	delta := disc.AbsSupport(0.01, len(db))
	miner := disc.NewDISCAll(disc.DefaultOptions())
	start := time.Now()
	res, err := miner.Mine(db, delta)
	if err != nil {
		log.Fatal(err)
	}
	discTime := time.Since(start)
	fmt.Printf("\nDISC-all: %s in %v (δ=%d)\n", res, discTime, delta)

	st := miner.LastStats()
	fmt.Printf("DISC rounds=%d frequent-hits=%d lemma-2.2-skips=%d\n",
		st.Rounds, st.FrequentHits, st.Skips)

	// The longest purchase sequences are the interesting ones: print the
	// top patterns of maximal length.
	fmt.Printf("\nlongest frequent purchase sequences (length %d):\n", res.MaxLen())
	shown := 0
	for _, pc := range res.Sorted() {
		if pc.Pattern.Len() == res.MaxLen() {
			fmt.Printf("  %s bought by %d customers\n", pc.Pattern, pc.Support)
			if shown++; shown >= 5 {
				break
			}
		}
	}

	// Head-to-head against PrefixSpan (pseudo-projection), as in Figure 8.
	pseudo, err := disc.NewMiner(disc.Pseudo)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	res2, err := pseudo.Mine(db, delta)
	if err != nil {
		log.Fatal(err)
	}
	pseudoTime := time.Since(start)
	fmt.Printf("\nPseudo: identical result=%v in %v (DISC-all/Pseudo time ratio %.2f)\n",
		res.Equal(res2), pseudoTime, discTime.Seconds()/pseudoTime.Seconds())
}
