// DNA motif mining: the second §5 application domain ("in DNA sequence
// analysis, some genes may be more important than the others"). Reads are
// synthesized around two planted motifs over the nucleotide alphabet
// {A, C, G, T}; frequent-subsequence mining at a high threshold recovers
// the motifs from the noisy reads.
//
//	go run ./examples/dna
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"github.com/disc-mining/disc"
)

const bases = "ACGT"

// item encoding: A=1, C=2, G=3, T=4.
func encode(s string) []disc.Itemset {
	out := make([]disc.Itemset, len(s))
	for i, b := range s {
		out[i] = disc.NewItemset(disc.Item(strings.IndexRune(bases, b) + 1))
	}
	return out
}

func decode(p disc.Pattern) string {
	var b strings.Builder
	for i := 0; i < p.Len(); i++ {
		b.WriteByte(bases[p.ItemAt(i)-1])
	}
	return b.String()
}

func main() {
	motifs := []string{"ACGTAC", "TTGACA"} // the planted signals
	r := rand.New(rand.NewSource(11))
	db := make(disc.Database, 0, 800)
	for i := 0; i < 800; i++ {
		db = append(db, read(r, i+1, motifs))
	}
	fmt.Println("reads:", disc.DescribeDatabase(db))

	// Mine subsequences occurring in at least 60% of the reads. Random
	// 4-letter background makes short subsequences ubiquitous, so only
	// length filters plus the high threshold isolate real motifs.
	res, err := disc.MineRelative(db, 0.60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s at 60%% support\n", res)

	fmt.Printf("\ncandidate motifs (length >= 6):\n")
	found := map[string]bool{}
	for _, pc := range res.Sorted() {
		if pc.Pattern.Len() < 6 {
			continue
		}
		m := decode(pc.Pattern)
		fmt.Printf("  %-10s in %d/%d reads\n", m, pc.Support, len(db))
		found[m] = true
	}
	for _, m := range motifs {
		fmt.Printf("planted motif %s recovered: %v\n", m, found[m])
	}
}

// read synthesizes one sequencing read: random background with one or both
// motifs embedded (sometimes with a point deletion).
func read(r *rand.Rand, id int, motifs []string) *disc.Customer {
	var sb strings.Builder
	background := func(n int) {
		for i := 0; i < n; i++ {
			sb.WriteByte(bases[r.Intn(4)])
		}
	}
	background(3 + r.Intn(5))
	for _, m := range motifs {
		if r.Float64() < 0.85 {
			if r.Float64() < 0.2 { // point deletion
				cut := r.Intn(len(m))
				sb.WriteString(m[:cut] + m[cut+1:])
			} else {
				sb.WriteString(m)
			}
			background(2 + r.Intn(4))
		}
	}
	background(3 + r.Intn(5))
	return disc.NewCustomer(id, encode(sb.String())...)
}
