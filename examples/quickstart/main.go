// Quickstart: mine the paper's Table 1 example database with DISC-all.
//
//	go run ./examples/quickstart
//
// The database and the expected output follow §1-§2 of Chiu, Wu & Chen
// (ICDE 2004): with minimum support count δ=2 the frequent 1-sequences are
// <(a)>, <(b)>, <(e)>, <(f)>, <(g)>, <(h)>, and among the 3-sequences the
// paper's running example <(a)(b)(b)> appears with support exactly 2.
package main

import (
	"fmt"
	"log"

	"github.com/disc-mining/disc"
)

func main() {
	// The example database of Table 1: four customers, each an ordered
	// list of transactions (itemsets). Letters a-z parse as items 1-26.
	db := disc.Database{
		disc.MustParseCustomer(1, "(a, e, g)(b)(h)(f)(c)(b, f)"),
		disc.MustParseCustomer(2, "(b)(d, f)(e)"),
		disc.MustParseCustomer(3, "(b, f, g)"),
		disc.MustParseCustomer(4, "(f)(a, g)(b, f, h)(b, f)"),
	}
	fmt.Println(disc.DescribeDatabase(db))

	// Mine every sequence supported by at least two customers.
	res, err := disc.Mine(db, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s with δ=2:\n\n", res)
	for _, pc := range res.Sorted() {
		fmt.Printf("  %-22s support=%d\n", pc.Pattern.Letters(), pc.Support)
	}

	// Individual supports can be queried directly.
	p := disc.MustParsePattern("(a)(b)(b)")
	if sup, ok := res.Support(p); ok {
		fmt.Printf("\nthe paper's Example 1.1 sequence %s has support %d\n", p.Letters(), sup)
	}

	// Every other algorithm yields the identical result set.
	spade, err := disc.NewMiner(disc.SPADE)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := spade.Mine(db, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-check with %s: identical=%v\n", spade.Name(), res.Equal(res2))
}
