module github.com/disc-mining/disc

go 1.22
