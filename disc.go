// Package disc is a Go implementation of the DISC (DIrect Sequence
// Comparison) strategy and the DISC-all / Dynamic DISC-all sequential
// pattern mining algorithms of Chiu, Wu & Chen, "An Efficient Algorithm
// for Mining Frequent Sequences by a New Strategy without Support
// Counting" (ICDE 2004), together with full implementations of the
// baselines the paper discusses (GSP, SPADE, SPAM, PrefixSpan with
// physical and pseudo projection), an IBM-Quest-style synthetic data
// generator, dataset I/O, and the weighted-mining extension the paper
// sketches as future work.
//
// # Quick start
//
//	db := disc.Database{
//	    disc.MustParseCustomer(1, "(a, e, g)(b)(h)(f)(c)(b, f)"),
//	    disc.MustParseCustomer(2, "(b)(d, f)(e)"),
//	    disc.MustParseCustomer(3, "(b, f, g)"),
//	    disc.MustParseCustomer(4, "(f)(a, g)(b, f, h)(b, f)"),
//	}
//	res, err := disc.Mine(db, 2) // minimum support count δ = 2
//	for _, pc := range res.Sorted() {
//	    fmt.Printf("%s support=%d\n", pc.Pattern.Letters(), pc.Support)
//	}
//
// Algorithms other than the default DISC-all are available through
// NewMiner; synthetic databases through Generate.
package disc

import (
	"context"
	"fmt"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/gen"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/weighted"

	// Imported for their miner registrations (NewMiner resolves algorithm
	// names through the mining registry).
	_ "github.com/disc-mining/disc/internal/bruteforce"
	_ "github.com/disc-mining/disc/internal/gsp"
	_ "github.com/disc-mining/disc/internal/prefixspan"
	_ "github.com/disc-mining/disc/internal/spade"
	_ "github.com/disc-mining/disc/internal/spam"
)

// Core data-model types, re-exported from the internal packages.
type (
	// Item is a single item identifier (>= 1).
	Item = seq.Item
	// Itemset is a canonical transaction: sorted, duplicate-free items.
	Itemset = seq.Itemset
	// Pattern is a sequence in the paper's (item, transaction-number) pair
	// representation.
	Pattern = seq.Pattern
	// Customer is one customer sequence: an ordered list of transactions.
	Customer = seq.CustomerSeq
	// Database is a set of customer sequences.
	Database = mining.Database
	// Result is a set of frequent sequences with exact support counts.
	Result = mining.Result
	// PatternCount is one frequent sequence and its support.
	PatternCount = mining.PatternCount
	// Miner is the interface implemented by all algorithms.
	Miner = mining.Miner
	// ContextMiner is a Miner that additionally honours context
	// cancellation and deadlines.
	ContextMiner = mining.ContextMiner
	// ExecOptions tunes how a mine executes (worker count, progress hook)
	// independently of what it computes.
	ExecOptions = mining.ExecOptions
	// ProgressEvent is one execution progress report.
	ProgressEvent = mining.ProgressEvent
	// ProgressFunc receives ProgressEvents during a mine.
	ProgressFunc = mining.ProgressFunc
	// GeneratorConfig configures the synthetic data generator (the paper's
	// Table 11 options).
	GeneratorConfig = gen.Config
	// Options tunes the DISC-all family (bi-level, partitioning levels,
	// the dynamic NRR threshold γ).
	Options = core.Options
	// Stats reports what a DISC-all run did (rounds, skips, partitions,
	// observed NRR per level).
	Stats = core.Stats
	// Weights are per-item weights for the weighted-mining extension.
	Weights = weighted.Weights
	// WeightedPattern is one weighted-frequent sequence.
	WeightedPattern = weighted.Pattern
)

// Sequence construction helpers.
var (
	// NewItemset builds a canonical itemset.
	NewItemset = seq.NewItemset
	// NewPattern builds a canonical pattern from itemsets.
	NewPattern = seq.NewPattern
	// NewCustomer builds a customer sequence from transactions.
	NewCustomer = seq.NewCustomerSeq
	// ParsePattern parses "(a, b)(c)" or "(1 2)(3)" notation.
	ParsePattern = seq.ParsePattern
	// MustParsePattern is ParsePattern panicking on error.
	MustParsePattern = seq.MustParsePattern
	// ParseCustomer parses a customer sequence body.
	ParseCustomer = seq.ParseCustomerSeq
	// MustParseCustomer is ParseCustomer panicking on error.
	MustParseCustomer = seq.MustParseCustomerSeq
	// Compare is the paper's comparative order (Definition 2.2).
	Compare = seq.Compare
	// AbsSupport converts a relative threshold into the absolute δ.
	AbsSupport = mining.AbsSupport
	// AsContextMiner upgrades any Miner to a ContextMiner, wrapping
	// algorithms without native cancellation support.
	AsContextMiner = mining.AsContextMiner
	// NRRByLevel computes the §4.2 non-reduction rates from a result set.
	NRRByLevel = mining.NRRByLevel
	// Generate synthesizes a database (IBM-Quest-style process).
	Generate = gen.Generate
	// ReadDatabase loads a database file (native or SPMF format).
	ReadDatabase = data.ReadFile
)

// WriteDatabase saves a database file in the native text format.
func WriteDatabase(path string, db Database) error {
	return data.WriteFile(path, db, data.Native)
}

// WriteDatabaseSPMF saves a database file in the SPMF format.
func WriteDatabaseSPMF(path string, db Database) error {
	return data.WriteFile(path, db, data.SPMF)
}

// Algorithm names an available mining algorithm.
type Algorithm string

// The available algorithms.
const (
	DISCAll        Algorithm = "disc-all"         // the paper's contribution (Figure 2, bi-level)
	DynamicDISCAll Algorithm = "dynamic-disc-all" // the Appendix variant with the NRR-driven divide
	PrefixSpan     Algorithm = "prefixspan"       // Pei et al., physical projection
	Pseudo         Algorithm = "pseudo"           // PrefixSpan with pseudo-projection
	GSP            Algorithm = "gsp"              // Srikant & Agrawal
	SPADE          Algorithm = "spade"            // Zaki, vertical ID-lists
	SPAM           Algorithm = "spam"             // Ayres et al., vertical bitmaps
	LevelWise      Algorithm = "levelwise"        // naive generate-and-count reference
)

// Algorithms lists every available algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{DISCAll, DynamicDISCAll, PrefixSpan, Pseudo, GSP, SPADE, SPAM, LevelWise}
}

// NewMiner constructs a miner by algorithm name. Every algorithm package
// registers its constructor with the shared miner registry (also consumed
// by the differential-correctness harness in internal/difftest), so this
// is a registry lookup.
func NewMiner(a Algorithm) (Miner, error) {
	m, err := mining.NewRegistered(string(a))
	if err != nil {
		return nil, fmt.Errorf("disc: unknown algorithm %q (available: %v)", a, Algorithms())
	}
	return m, nil
}

// NewDISCAll constructs a DISC-all miner with explicit options; its
// LastStats method exposes run statistics.
func NewDISCAll(opts Options) *core.Miner { return &core.Miner{Opts: opts} }

// NewDynamicDISCAll constructs a Dynamic DISC-all miner with explicit
// options (γ in Options.Gamma).
func NewDynamicDISCAll(opts Options) *core.Dynamic { return &core.Dynamic{Opts: opts} }

// DefaultOptions is the paper's experimental configuration: bi-level on,
// two partitioning levels, γ = 0.5.
func DefaultOptions() Options { return core.DefaultOptions() }

// Mine runs DISC-all with default options: it returns every sequence
// supported by at least minSup customers, with exact support counts.
func Mine(db Database, minSup int) (*Result, error) {
	return core.New().Mine(db, minSup)
}

// MineContext is Mine honouring ctx: mining stops promptly with ctx.Err()
// when the context is cancelled or its deadline passes. Parallel execution
// is controlled through Options.Workers on NewDISCAll / NewDynamicDISCAll;
// this entry point uses the defaults (one worker per CPU).
func MineContext(ctx context.Context, db Database, minSup int) (*Result, error) {
	return core.New().MineContext(ctx, db, minSup)
}

// MineRelative is Mine with a relative threshold: δ = ⌈frac·len(db)⌉.
func MineRelative(db Database, frac float64) (*Result, error) {
	return Mine(db, mining.AbsSupport(frac, len(db)))
}

// MineWeighted runs the §5 weighted-mining extension: patterns whose
// weighted support (support × mean item weight) reaches tau.
func MineWeighted(db Database, w Weights, tau float64) ([]WeightedPattern, error) {
	return weighted.Miner{Weights: w}.Mine(db, tau)
}

// Closed filters a result set down to its closed patterns (no frequent
// supersequence with equal support).
func Closed(r *Result) *Result { return r.Closed() }

// Maximal filters a result set down to its maximal patterns (no frequent
// supersequence at all).
func Maximal(r *Result) *Result { return r.Maximal() }

// DescribeDatabase returns a one-line summary of the database shape.
func DescribeDatabase(db Database) string {
	return data.Describe(db).String()
}

// Resilience layer: typed failures, checkpoint/resume and input bounds,
// re-exported from the internal packages.
type (
	// InvariantError is a contained engine panic: the partition it came
	// from, the panic value and the stack. Matches ErrInternalInvariant.
	InvariantError = mining.InvariantError
	// BudgetError is a breached resource budget (patterns or memory).
	// Matches ErrBudgetExceeded.
	BudgetError = mining.BudgetError
	// SizeError is an input exceeding the reader bounds. Matches
	// ErrInputTooLarge.
	SizeError = data.SizeError
	// ReadLimits bounds what one input line may cost the reader.
	ReadLimits = data.Limits
	// Checkpointer collects completed first-level partitions for
	// checkpoint/resume (Options.Checkpoint).
	Checkpointer = core.Checkpointer
	// CheckpointFile is the encodable snapshot of a checkpointed run.
	CheckpointFile = checkpoint.File
)

// Resilience sentinels and constructors.
var (
	// ErrInternalInvariant matches every contained engine panic: Mine
	// returns it instead of crashing the process.
	ErrInternalInvariant = mining.ErrInternalInvariant
	// ErrBudgetExceeded matches every resource-budget breach
	// (ExecOptions.MaxPatterns / MaxMemBytes).
	ErrBudgetExceeded = mining.ErrBudgetExceeded
	// ErrInputTooLarge matches every reader size-limit breach.
	ErrInputTooLarge = data.ErrInputTooLarge
	// ErrCheckpointMismatch reports a checkpoint written by a different
	// mining job (algorithm, options, δ or database differ).
	ErrCheckpointMismatch = checkpoint.ErrMismatch
	// NewCheckpointer returns an empty checkpointer for a fresh
	// resumable run.
	NewCheckpointer = core.NewCheckpointer
	// ResumeCheckpoint seeds a checkpointer from a decoded checkpoint
	// file; the next run restores its partitions instead of re-mining.
	ResumeCheckpoint = core.ResumeFrom
	// CheckpointFingerprint binds a checkpoint to a mining job.
	CheckpointFingerprint = core.CheckpointFingerprint
	// ReadCheckpoint decodes and integrity-checks a checkpoint file.
	ReadCheckpoint = checkpoint.ReadFile
	// ReadDatabaseLimited loads a database under explicit input bounds.
	ReadDatabaseLimited = data.ReadLimited
)
