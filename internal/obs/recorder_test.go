package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDParseRoundTrip(t *testing.T) {
	src := NewIDSource(7)
	for i := 0; i < 100; i++ {
		tr, sp := src.TraceID(), src.SpanID()
		if tr.IsZero() || sp.IsZero() {
			t.Fatalf("minted zero ID (trace=%v span=%v)", tr, sp)
		}
		if len(tr.String()) != 16 || len(sp.String()) != 16 {
			t.Fatalf("IDs must render as 16 hex digits, got %q / %q", tr, sp)
		}
		if got, ok := ParseTraceID(tr.String()); !ok || got != tr {
			t.Fatalf("trace round trip: %q -> (%v, %v)", tr, got, ok)
		}
		if got, ok := ParseSpanID(sp.String()); !ok || got != sp {
			t.Fatalf("span round trip: %q -> (%v, %v)", sp, got, ok)
		}
	}
	for _, bad := range []string{"", "xyz", "0000000000000000", "1234", "00000000000000001", "g000000000000000"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestIDSourceSeededDeterministic(t *testing.T) {
	a, b := NewIDSource(42), NewIDSource(42)
	for i := 0; i < 20; i++ {
		if x, y := a.SpanID(), b.SpanID(); x != y {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, x, y)
		}
	}
}

func TestRecorderRingEviction(t *testing.T) {
	// Capacity 8 splits into a 6-slot span ring and a 2-slot event ring;
	// each evicts its own oldest entries independently.
	r := NewRecorder(8)
	for i := 0; i < 20; i++ {
		r.Append(Event{Kind: KindSpanEnd, Stage: fmt.Sprintf("s%d", i)})
	}
	for i := 0; i < 3; i++ {
		r.Append(Event{Kind: KindEvent, Stage: fmt.Sprintf("e%d", i)})
	}
	if r.Len() != 8 || r.Cap() != 8 {
		t.Fatalf("ring len/cap = %d/%d, want 8/8", r.Len(), r.Cap())
	}
	// 20 spans into 6 slots drops 14; 3 events into 2 slots drops 1.
	if r.Dropped() != 15 {
		t.Fatalf("dropped = %d, want 15", r.Dropped())
	}
	evs := r.Events()
	// Oldest retained span is seq 14; Seq keeps counting across evictions
	// so the gap from 0 reveals exactly how much history was lost. The
	// merged snapshot is in ascending-seq (append) order: spans 14..19,
	// then events e1 (seq 21) and e2 (seq 22).
	want := []struct {
		seq   uint64
		stage string
	}{{14, "s14"}, {15, "s15"}, {16, "s16"}, {17, "s17"}, {18, "s18"}, {19, "s19"}, {21, "e1"}, {22, "e2"}}
	if len(evs) != len(want) {
		t.Fatalf("snapshot holds %d entries, want %d: %+v", len(evs), len(want), evs)
	}
	for i, ev := range evs {
		if ev.Seq != want[i].seq || ev.Stage != want[i].stage {
			t.Fatalf("entry %d = seq %d %q, want seq %d %q", i, ev.Seq, ev.Stage, want[i].seq, want[i].stage)
		}
	}
}

// TestRecorderSpanFloodKeepsLifecycleEvents pins the reason the recorder
// is two rings and not one: a partition-heavy job emits thousands of
// span records, and they must never evict the handful of lifecycle
// events (queue admit, shard assign) that make a timeline debuggable.
func TestRecorderSpanFloodKeepsLifecycleEvents(t *testing.T) {
	r := NewRecorder(64)
	r.Append(Event{Kind: KindEvent, Stage: "queue-admit"})
	for i := 0; i < 10000; i++ {
		r.Append(Event{Kind: KindSpanEnd, Stage: "partition_l2"})
	}
	var found bool
	for _, ev := range r.Events() {
		if ev.Kind == KindEvent && ev.Stage == "queue-admit" {
			found = true
		}
	}
	if !found {
		t.Fatal("span flood evicted the queue-admit lifecycle event")
	}
	if r.Dropped() == 0 {
		t.Fatal("flood of 10000 spans into a 64-entry recorder must report drops")
	}
}

func TestRecorderPreservesCallerTime(t *testing.T) {
	r := NewRecorder(8)
	remote := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	r.Append(Event{Kind: KindSpanEnd, Time: remote})
	r.Append(Event{Kind: KindEvent})
	evs := r.Events()
	if !evs[0].Time.Equal(remote) {
		t.Fatalf("caller-set time overwritten: %v", evs[0].Time)
	}
	if evs[1].Time.IsZero() {
		t.Fatal("zero time not stamped")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Append(Event{})
	if r.Events() != nil || r.Len() != 0 || r.Cap() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	var tc *TraceContext
	tc.Event("x", 0, nil)
	tc.AddRemoteSpans([]SpanRecord{{}})
	if tc.Timeline("j") != nil {
		t.Fatal("nil trace context must yield nil timeline")
	}
}

// TestRecorderBoundedUnderHammer is the -race proof that the flight
// recorder never grows and never blocks: many writers hammer a tiny
// ring while readers snapshot it, and at the end the ring holds exactly
// its capacity with every other append accounted as dropped.
func TestRecorderBoundedUnderHammer(t *testing.T) {
	const (
		capacity = 64
		writers  = 8
		appends  = 5000
	)
	r := NewRecorder(capacity)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if evs := r.Events(); len(evs) > capacity {
					t.Errorf("snapshot holds %d events, cap is %d", len(evs), capacity)
					return
				}
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < appends; i++ {
				// Mix kinds so both eviction domains overflow.
				kind := KindSpanEnd
				if i%4 == 0 {
					kind = KindEvent
				}
				r.Append(Event{Kind: kind, Stage: "hammer", Node: fmt.Sprint(w)})
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if r.Len() != capacity || r.Cap() != capacity {
		t.Fatalf("ring len/cap = %d/%d, want %d/%d", r.Len(), r.Cap(), capacity, capacity)
	}
	if want := uint64(writers*appends - capacity); r.Dropped() != want {
		t.Fatalf("dropped = %d, want %d", r.Dropped(), want)
	}
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot out of append order at %d: seq %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestAddRemoteSpansFiltersForeignTrace(t *testing.T) {
	src := NewIDSource(3)
	tc := NewTraceContext(src.TraceID(), "coord", src, NewRecorder(16))
	start := time.Date(2021, 5, 6, 7, 8, 9, 0, time.UTC)
	tc.AddRemoteSpans([]SpanRecord{
		{Trace: tc.TraceID().String(), Span: "00000000000000aa", Parent: "00000000000000bb",
			Stage: "shard_worker", Node: "w1", Start: start, DurNS: int64(time.Second)},
		{Trace: "ffffffffffffffff", Span: "00000000000000cc", Stage: "imposter", Node: "evil"},
		{Trace: tc.TraceID().String(), Span: "not-an-id", Stage: "garbled"},
	})
	spans := tc.Recorder().Spans()
	if len(spans) != 1 {
		t.Fatalf("want exactly the matching span folded in, got %d: %+v", len(spans), spans)
	}
	sp := spans[0]
	if sp.Stage != "shard_worker" || sp.Node != "w1" || sp.Parent != "00000000000000bb" {
		t.Fatalf("folded span mangled: %+v", sp)
	}
	if !sp.Start.Equal(start) || sp.DurNS != int64(time.Second) {
		t.Fatalf("remote timestamps not preserved: %+v", sp)
	}
}

func TestTraceContextTimelineAssembly(t *testing.T) {
	src := NewIDSource(11)
	tc := NewTraceContext(src.TraceID(), "coord", src, NewRecorder(32))
	o := NewObserver().WithTrace(tc, 0)
	root := o.Span("job")
	tc.Event("queue-admit", root.ID(), map[string]string{"job": "j1"})
	child := o.SpanUnder(root, "shard")
	child.End()
	root.End()

	tl := tc.Timeline("j1")
	if tl.TraceID != tc.TraceID().String() || tl.JobID != "j1" {
		t.Fatalf("timeline identity wrong: %+v", tl)
	}
	if len(tl.Spans) != 2 {
		t.Fatalf("want 2 completed spans, got %d", len(tl.Spans))
	}
	byStage := map[string]SpanRecord{}
	for _, sp := range tl.Spans {
		if sp.Trace != tl.TraceID {
			t.Fatalf("span %q carries trace %q, want %q", sp.Stage, sp.Trace, tl.TraceID)
		}
		byStage[sp.Stage] = sp
	}
	if byStage["shard"].Parent != byStage["job"].Span {
		t.Fatalf("shard span parent %q, want job span %q", byStage["shard"].Parent, byStage["job"].Span)
	}
	if len(tl.Events) != 1 || tl.Events[0].Name != "queue-admit" || tl.Events[0].Span != byStage["job"].Span {
		t.Fatalf("events wrong: %+v", tl.Events)
	}
	// The schema is a stable JSON contract — CI curls it and greps keys.
	b, err := json.Marshal(tl)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"trace_id"`, `"job_id"`, `"spans"`, `"events"`, `"dropped_events"`, `"span_id"`, `"stage"`, `"duration_ns"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("timeline JSON lacks %s:\n%s", key, b)
		}
	}
}

func TestUnregisterRemovesSeries(t *testing.T) {
	r := NewRegistry()
	r.Gauge("disc_test_gauge", "help.", Label{"worker", "a"}).Set(1)
	r.Gauge("disc_test_gauge", "help.", Label{"worker", "b"}).Set(2)
	if !r.Unregister("disc_test_gauge", Label{"worker", "a"}) {
		t.Fatal("Unregister of a live series returned false")
	}
	text := renderText(t, r)
	if strings.Contains(text, `worker="a"`) {
		t.Fatalf("series a still renders:\n%s", text)
	}
	if !strings.Contains(text, `worker="b"`) {
		t.Fatalf("series b vanished with a:\n%s", text)
	}
	// Removing the last child removes the whole family (HELP/TYPE lines).
	if !r.Unregister("disc_test_gauge", Label{"worker", "b"}) {
		t.Fatal("Unregister of series b returned false")
	}
	if text := renderText(t, r); strings.Contains(text, "disc_test_gauge") {
		t.Fatalf("empty family still renders:\n%s", text)
	}
	// Unknown names and labels are a polite no.
	if r.Unregister("disc_test_gauge", Label{"worker", "a"}) || r.Unregister("nope") {
		t.Fatal("Unregister invented a series")
	}
	// A detached handle keeps working without rendering.
	g := r.Gauge("disc_test_gauge2", "help.", Label{"worker", "c"})
	r.Unregister("disc_test_gauge2", Label{"worker", "c"})
	g.Set(9) // must not panic
}

func renderText(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
