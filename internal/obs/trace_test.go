package obs

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// TestNilTracerAndObserverInert pins the nil-safety contract: every
// entry point on a nil tracer/observer is a usable no-op.
func TestNilTracerAndObserverInert(t *testing.T) {
	var tr *Tracer
	tr.Start("mine").End() // must not panic

	var o *Observer
	o.Span("mine").End()
	o.Counter("c", "h").Inc()
	o.Gauge("g", "h").Set(1)
	o.Histogram("h", "h", DurationBuckets).Observe(1)
}

// TestSpanAggregatesIntoHistogram checks the span → per-stage histogram
// path that feeds /metrics.
func TestSpanAggregatesIntoHistogram(t *testing.T) {
	o := NewObserver()
	o.Span("partition", slog.Int("level", 0)).End()
	o.Span("partition").End()
	o.Span("mine").End()

	h := o.Registry.Histogram(StageDurationMetric, "", DurationBuckets, Label{"stage", "partition"})
	if got := h.Count(); got != 2 {
		t.Errorf("partition span count = %d, want 2", got)
	}
	if got := o.Registry.Histogram(StageDurationMetric, "", DurationBuckets, Label{"stage", "mine"}).Count(); got != 1 {
		t.Errorf("mine span count = %d, want 1", got)
	}
	var b strings.Builder
	if err := o.Registry.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `disc_stage_duration_seconds_count{stage="partition"} 2`) {
		t.Errorf("exposition missing stage histogram:\n%s", b.String())
	}
}

// TestSpanLogsJSON checks the slog emission half: one JSON record per
// span carrying stage, duration, and the caller's attributes.
func TestSpanLogsJSON(t *testing.T) {
	var buf strings.Builder
	o := NewObserver()
	o.Tracer.Logger = slog.New(slog.NewJSONHandler(&buf, nil))

	o.Span("eager_buckets", slog.Int("level", 2), slog.String("key", "7")).End()

	line := strings.TrimSpace(buf.String())
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("span record is not JSON: %v\n%s", err, line)
	}
	if rec["msg"] != "span" || rec["stage"] != "eager_buckets" {
		t.Errorf("record = %v", rec)
	}
	if rec["level"] == nil || rec["key"] != "7" {
		t.Errorf("caller attrs missing: %v", rec)
	}
	if _, ok := rec["dur"]; !ok {
		t.Errorf("duration missing: %v", rec)
	}
}
