package obs

import (
	"context"
	"log/slog"
	"time"
)

// StageDurationMetric is the histogram family every span aggregates
// into, labeled by stage. Spans are how per-stage timings reach
// /metrics without any log processing.
const StageDurationMetric = "disc_stage_duration_seconds"

// Tracer hands out Spans around mining stages (whole runs, first-level
// partitions, eager bucket closures, jobs). Ending a span does two
// independent things, each optional:
//
//   - observes the duration into the registry's per-stage histogram
//     (StageDurationMetric), when a Registry is set;
//   - emits one structured log/slog record carrying the stage, the
//     duration and the caller's attributes, when a Logger is set — the
//     stream discmine -trace prints as JSON.
//
// A nil *Tracer returns a zero Span whose End is a no-op, so call sites
// never branch.
type Tracer struct {
	Registry *Registry
	Logger   *slog.Logger
}

// Span is one timed region. It is a value type: starting and ending a
// span allocates nothing beyond what slog itself needs when a Logger is
// configured.
type Span struct {
	t     *Tracer
	stage string
	attrs []slog.Attr
	start time.Time
}

// Start begins a span for stage. The attrs ride along to the log record
// at End; they do not become histogram labels (per-stage cardinality
// stays fixed).
func (t *Tracer) Start(stage string, attrs ...slog.Attr) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, attrs: attrs, start: time.Now()}
}

// End closes the span, recording its duration. Safe on the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	if r := s.t.Registry; r != nil {
		r.Histogram(StageDurationMetric, "Duration of mining stages by span.",
			DurationBuckets, Label{"stage", s.stage}).Observe(d.Seconds())
	}
	if l := s.t.Logger; l != nil {
		attrs := make([]slog.Attr, 0, len(s.attrs)+2)
		attrs = append(attrs, slog.String("stage", s.stage), slog.Duration("dur", d))
		attrs = append(attrs, s.attrs...)
		l.LogAttrs(context.Background(), slog.LevelInfo, "span", attrs...)
	}
}

// Observer bundles the two halves of the observability substrate — the
// metrics registry and the span tracer — into the single handle that
// Options-style structs carry. A nil *Observer is fully inert.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
}

// NewObserver returns an observer over a fresh registry whose tracer
// aggregates spans into that same registry. Attach a Logger to the
// Tracer afterwards to also stream span JSON.
func NewObserver() *Observer {
	r := NewRegistry()
	return &Observer{Registry: r, Tracer: &Tracer{Registry: r}}
}

// Span starts a span on the observer's tracer; nil-safe.
func (o *Observer) Span(stage string, attrs ...slog.Attr) Span {
	if o == nil {
		return Span{}
	}
	return o.Tracer.Start(stage, attrs...)
}

// Counter returns the named counter from the observer's registry, or a
// detached throwaway counter when the observer (or its registry) is nil
// so call sites stay branch-free.
func (o *Observer) Counter(name, help string, labels ...Label) *Counter {
	if o == nil || o.Registry == nil {
		return &Counter{}
	}
	return o.Registry.Counter(name, help, labels...)
}

// Gauge returns the named gauge from the observer's registry, or a
// detached throwaway gauge when the observer (or its registry) is nil.
func (o *Observer) Gauge(name, help string, labels ...Label) *Gauge {
	if o == nil || o.Registry == nil {
		return &Gauge{}
	}
	return o.Registry.Gauge(name, help, labels...)
}

// Histogram returns the named histogram from the observer's registry,
// or a detached throwaway histogram when the observer (or its registry)
// is nil.
func (o *Observer) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if o == nil || o.Registry == nil {
		return newHistogram(buckets)
	}
	return o.Registry.Histogram(name, help, buckets, labels...)
}
