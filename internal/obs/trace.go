package obs

import (
	"context"
	"log/slog"
	"time"
)

// StageDurationMetric is the histogram family every span aggregates
// into, labeled by stage. Spans are how per-stage timings reach
// /metrics without any log processing.
const StageDurationMetric = "disc_stage_duration_seconds"

// Tracer hands out Spans around mining stages (whole runs, first-level
// partitions, eager bucket closures, jobs). Ending a span does two
// independent things, each optional:
//
//   - observes the duration into the registry's per-stage histogram
//     (StageDurationMetric), when a Registry is set;
//   - emits one structured log/slog record carrying the stage, the
//     duration and the caller's attributes, when a Logger is set — the
//     stream discmine/discserve -trace prints as JSON.
//
// A third half lives on the Observer: when a TraceContext is bound
// (Observer.WithTrace), spans additionally carry trace/span/parent IDs
// and record start/end into the trace's flight recorder.
//
// A nil *Tracer returns a zero Span whose End is a no-op, so call sites
// never branch.
type Tracer struct {
	Registry *Registry
	Logger   *slog.Logger
}

// TraceContext is the identity of one trace as seen by one process:
// the trace ID, this process's node name, the ID source spans mint
// from, and the flight recorder events land in. It travels by value
// semantics over the wire (trace ID + parent span ID headers) and by
// pointer within a process. All methods are nil-safe.
type TraceContext struct {
	trace TraceID
	node  string
	src   *IDSource
	rec   *Recorder
}

// NewTraceContext builds a context for trace on node. A nil src gets a
// time-seeded source; a nil rec gets a DefaultRecorderEvents ring.
func NewTraceContext(trace TraceID, node string, src *IDSource, rec *Recorder) *TraceContext {
	if src == nil {
		src = NewIDSource(0)
	}
	if rec == nil {
		rec = NewRecorder(0)
	}
	return &TraceContext{trace: trace, node: node, src: src, rec: rec}
}

// TraceID returns the trace's ID (zero for a nil context).
func (tc *TraceContext) TraceID() TraceID {
	if tc == nil {
		return 0
	}
	return tc.trace
}

// Node returns the node name stamped on this process's records.
func (tc *TraceContext) Node() string {
	if tc == nil {
		return ""
	}
	return tc.node
}

// Recorder returns the trace's flight recorder (nil for a nil context).
func (tc *TraceContext) Recorder() *Recorder {
	if tc == nil {
		return nil
	}
	return tc.rec
}

// NewSpanID mints a span ID from the trace's source.
func (tc *TraceContext) NewSpanID() SpanID {
	if tc == nil {
		return 0
	}
	return tc.src.SpanID()
}

// Event records a structured point-in-time event (queue admit,
// checkpoint write, shard assign/resolve/hedge, breaker transition,
// degrade latch) under the given span (zero for trace-level events).
func (tc *TraceContext) Event(name string, span SpanID, attrs map[string]string) {
	if tc == nil {
		return
	}
	tc.rec.Append(Event{
		Kind:  KindEvent,
		Stage: name,
		Trace: tc.trace,
		Span:  span,
		Node:  tc.node,
		Attrs: attrs,
	})
}

// record stamps the trace ID and node onto ev and appends it.
func (tc *TraceContext) record(ev Event) {
	if tc == nil {
		return
	}
	ev.Trace = tc.trace
	if ev.Node == "" {
		ev.Node = tc.node
	}
	tc.rec.Append(ev)
}

// AddRemoteSpans folds completed span records from another process
// (a worker's shard response) into this trace's recorder, preserving
// their origin node and timestamps. Records from a different trace are
// dropped — a confused worker cannot pollute the timeline.
func (tc *TraceContext) AddRemoteSpans(spans []SpanRecord) {
	if tc == nil {
		return
	}
	want := tc.trace.String()
	for _, sr := range spans {
		if sr.Trace != want {
			continue
		}
		id, ok := ParseSpanID(sr.Span)
		if !ok {
			continue
		}
		var parent SpanID
		if sr.Parent != "" {
			parent, _ = ParseSpanID(sr.Parent)
		}
		tc.rec.Append(Event{
			Kind:   KindSpanEnd,
			Stage:  sr.Stage,
			Trace:  tc.trace,
			Span:   id,
			Parent: parent,
			Node:   sr.Node,
			Time:   sr.Start.Add(time.Duration(sr.DurNS)),
			Dur:    time.Duration(sr.DurNS),
			Attrs:  sr.Attrs,
		})
	}
}

// Span is one timed region. It is a value type: starting and ending a
// span allocates nothing beyond what slog itself needs when a Logger is
// configured and what the flight recorder needs when a trace is bound.
type Span struct {
	t      *Tracer
	tc     *TraceContext
	id     SpanID
	parent SpanID
	stage  string
	attrs  []slog.Attr
	start  time.Time
}

// Start begins a span for stage. The attrs ride along to the log record
// at End; they do not become histogram labels (per-stage cardinality
// stays fixed). Spans started directly on a Tracer carry no trace IDs;
// use Observer.Span under a WithTrace observer for that.
func (t *Tracer) Start(stage string, attrs ...slog.Attr) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, attrs: attrs, start: time.Now()}
}

// ID returns the span's ID (zero when no trace is bound).
func (s Span) ID() SpanID { return s.id }

// TraceID returns the ID of the trace the span belongs to.
func (s Span) TraceID() TraceID { return s.tc.TraceID() }

// Live reports whether ending the span will record anything.
func (s Span) Live() bool { return s.t != nil || s.tc != nil }

// End closes the span, recording its duration into the stage histogram,
// the slog stream, and the trace's flight recorder — each when
// configured. Safe on the zero Span.
func (s Span) End() {
	if s.t == nil && s.tc == nil {
		return
	}
	d := time.Since(s.start)
	if s.t != nil {
		if r := s.t.Registry; r != nil {
			r.Histogram(StageDurationMetric, "Duration of mining stages by span.",
				DurationBuckets, Label{"stage", s.stage}).Observe(d.Seconds())
		}
		if l := s.t.Logger; l != nil {
			attrs := make([]slog.Attr, 0, len(s.attrs)+5)
			attrs = append(attrs, slog.String("stage", s.stage), slog.Duration("dur", d))
			if s.tc != nil {
				attrs = append(attrs, slog.String("trace_id", s.tc.TraceID().String()),
					slog.String("span_id", s.id.String()))
				if !s.parent.IsZero() {
					attrs = append(attrs, slog.String("parent_span_id", s.parent.String()))
				}
			}
			attrs = append(attrs, s.attrs...)
			l.LogAttrs(context.Background(), slog.LevelInfo, "span", attrs...)
		}
	}
	if s.tc != nil {
		s.tc.record(Event{
			Kind:   KindSpanEnd,
			Stage:  s.stage,
			Span:   s.id,
			Parent: s.parent,
			Dur:    d,
		})
	}
}

// Observer bundles the two halves of the observability substrate — the
// metrics registry and the span tracer — into the single handle that
// Options-style structs carry, plus an optional bound trace context
// that upgrades every span it starts into an ID-carrying, recorded
// span. A nil *Observer is fully inert.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer

	trace  *TraceContext
	parent SpanID
}

// NewObserver returns an observer over a fresh registry whose tracer
// aggregates spans into that same registry. Attach a Logger to the
// Tracer afterwards to also stream span JSON.
func NewObserver() *Observer {
	r := NewRegistry()
	return &Observer{Registry: r, Tracer: &Tracer{Registry: r}}
}

// WithTrace returns a copy of the observer bound to tc: spans started
// on the copy mint IDs under the trace, parent to parent (when the
// call site supplies none), and land in the trace's flight recorder.
// The registry and tracer are shared with the receiver. A nil tc
// returns the receiver unchanged; nil-safe.
func (o *Observer) WithTrace(tc *TraceContext, parent SpanID) *Observer {
	if o == nil || tc == nil {
		return o
	}
	c := *o
	c.trace = tc
	c.parent = parent
	return &c
}

// Trace returns the bound trace context, if any. Nil-safe.
func (o *Observer) Trace() *TraceContext {
	if o == nil {
		return nil
	}
	return o.trace
}

// ParentSpan returns the default parent span ID spans started on this
// observer inherit. Nil-safe.
func (o *Observer) ParentSpan() SpanID {
	if o == nil {
		return 0
	}
	return o.parent
}

// Span starts a span on the observer's tracer, parented to the
// observer's bound parent span; nil-safe.
func (o *Observer) Span(stage string, attrs ...slog.Attr) Span {
	if o == nil {
		return Span{}
	}
	return o.startSpan(stage, o.parent, attrs)
}

// SpanUnder starts a span whose parent is the given span (falling back
// to the observer's bound parent when parent carries no ID); nil-safe.
// This is how the engine threads the partition hierarchy: each
// recursion level passes its own span down as the parent of the next.
func (o *Observer) SpanUnder(parent Span, stage string, attrs ...slog.Attr) Span {
	if o == nil {
		return Span{}
	}
	pid := parent.id
	if pid.IsZero() {
		pid = o.parent
	}
	return o.startSpan(stage, pid, attrs)
}

func (o *Observer) startSpan(stage string, parent SpanID, attrs []slog.Attr) Span {
	sp := Span{t: o.Tracer, stage: stage, attrs: attrs, start: time.Now()}
	if tc := o.trace; tc != nil {
		sp.tc = tc
		sp.id = tc.NewSpanID()
		sp.parent = parent
		tc.record(Event{Kind: KindSpanStart, Stage: stage, Span: sp.id, Parent: parent})
	}
	if sp.t == nil && sp.tc == nil {
		return Span{}
	}
	return sp
}

// Counter returns the named counter from the observer's registry, or a
// detached throwaway counter when the observer (or its registry) is nil
// so call sites stay branch-free.
func (o *Observer) Counter(name, help string, labels ...Label) *Counter {
	if o == nil || o.Registry == nil {
		return &Counter{}
	}
	return o.Registry.Counter(name, help, labels...)
}

// Gauge returns the named gauge from the observer's registry, or a
// detached throwaway gauge when the observer (or its registry) is nil.
func (o *Observer) Gauge(name, help string, labels ...Label) *Gauge {
	if o == nil || o.Registry == nil {
		return &Gauge{}
	}
	return o.Registry.Gauge(name, help, labels...)
}

// Histogram returns the named histogram from the observer's registry,
// or a detached throwaway histogram when the observer (or its registry)
// is nil.
func (o *Observer) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if o == nil || o.Registry == nil {
		return newHistogram(buckets)
	}
	return o.Registry.Histogram(name, help, buckets, labels...)
}
