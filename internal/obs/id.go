// Trace identity. A trace is one job's journey through the fleet: the
// coordinator mints a TraceID when the job is admitted, every span
// opened on the job's behalf — locally or on a worker — carries it, and
// span parenthood is expressed with SpanIDs so the flight recorder can
// reassemble the hierarchy after the fact.
//
// IDs are random 64-bit values minted from an IDSource. Production
// sources are time-seeded; tests seed them explicitly so golden
// timelines are reproducible.
package obs

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one end-to-end trace (one job). The zero value
// means "untraced".
type TraceID uint64

// SpanID identifies one span within a trace. The zero value means
// "no span" (used as the parent of root spans).
type SpanID uint64

// String renders the ID as 16 lowercase hex digits, the wire and JSON
// form.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// IsZero reports whether the ID is the untraced sentinel.
func (id TraceID) IsZero() bool { return id == 0 }

// IsZero reports whether the ID is the no-span sentinel.
func (id SpanID) IsZero() bool { return id == 0 }

// ParseTraceID decodes the 16-hex-digit wire form. Returns false for
// anything else, including the zero ID (which never travels).
func ParseTraceID(s string) (TraceID, bool) {
	v, ok := parseHexID(s)
	return TraceID(v), ok
}

// ParseSpanID decodes the 16-hex-digit wire form.
func ParseSpanID(s string) (SpanID, bool) {
	v, ok := parseHexID(s)
	return SpanID(v), ok
}

func parseHexID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v, true
}

// IDSource mints non-zero random trace and span IDs. It is safe for
// concurrent use. The zero value is not usable; construct with
// NewIDSource.
type IDSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewIDSource returns a source seeded with seed; seed 0 means
// time-seeded (production). Non-zero seeds give a deterministic ID
// sequence for golden tests.
func NewIDSource(seed int64) *IDSource {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &IDSource{rng: rand.New(rand.NewSource(seed))}
}

// TraceID mints a fresh non-zero trace ID.
func (s *IDSource) TraceID() TraceID { return TraceID(s.next()) }

// SpanID mints a fresh non-zero span ID.
func (s *IDSource) SpanID() SpanID { return SpanID(s.next()) }

func (s *IDSource) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if v := s.rng.Uint64(); v != 0 {
			return v
		}
	}
}
