package obs

import (
	"expvar"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestWriteTextGolden renders a registry exercising every instrument
// kind, label escaping, and histogram bucket emission, and compares the
// full exposition against testdata/metrics.golden byte for byte.
// Regenerate with: OBS_UPDATE_GOLDEN=1 go test ./internal/obs -run Golden
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("disc_rounds_total", "DISC rounds executed.").Add(42)
	r.Counter("disc_partitions_total", "Partitions processed by level.", Label{"level", "0"}).Add(7)
	r.Counter("disc_partitions_total", "Partitions processed by level.", Label{"level", "1"}).Add(19)
	r.Gauge("disc_jobs_queue_depth", "Jobs waiting in the admission queue.").Set(3)
	r.GaugeFunc("disc_live", "A read-through gauge.", func() float64 { return 2.5 })
	r.Counter("disc_escapes_total", `Help with a \ backslash
and a newline.`, Label{"path", `a\b"c` + "\nd"}).Inc()
	h := r.Histogram("disc_stage_duration_seconds", "Duration of mining stages by span.",
		[]float64{0.01, 0.1, 1}, Label{"stage", "mine"})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if update() {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func update() bool { return os.Getenv("OBS_UPDATE_GOLDEN") != "" }

// TestHistogramInvariants checks the exposition-level contract:
// cumulative buckets are non-decreasing, the +Inf bucket equals _count,
// and _sum matches the observed total.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	vals := []float64{0.5, 1, 1.5, 3, 100}
	var sum float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if got := h.Count(); got != int64(len(vals)) {
		t.Errorf("Count = %d, want %d", got, len(vals))
	}
	if got := h.Sum(); math.Abs(got-sum) > 1e-9 {
		t.Errorf("Sum = %g, want %g", got, sum)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Upper-bound membership: values exactly on a boundary land in that
	// bucket (le is inclusive), so cum counts are 2, 3, 4, 5.
	wantLines := []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="4"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
		`lat_sum 106`,
	}
	for _, line := range wantLines {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	// The +Inf bucket must equal _count on every render.
	var inf, count int64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `lat_bucket{le="+Inf"} `) {
			fmt.Sscanf(line, `lat_bucket{le="+Inf"} %d`, &inf)
		}
		if strings.HasPrefix(line, "lat_count ") {
			fmt.Sscanf(line, "lat_count %d", &count)
		}
	}
	if inf != count {
		t.Errorf("+Inf bucket %d != _count %d", inf, count)
	}
}

// TestLabelEscaping covers the three escapes the text format requires in
// label values and the two in HELP text.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help \\ and\nnewline", Label{"l", "q\"b\\s\nn"}).Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP m help \\ and\nnewline`+"\n") {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `m{l="q\"b\\s\nn"} 1`+"\n") {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestSameInstrumentSharedAndKindMismatchPanics pins the get-or-create
// identity contract.
func TestSameInstrumentSharedAndKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h", Label{"x", "1"}, Label{"y", "2"})
	b := r.Counter("c", "h", Label{"y", "2"}, Label{"x", "1"}) // order-insensitive
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("c", "h")
}

// TestRegistryRace hammers a shared registry from 16 goroutines mixing
// instrument creation, recording on all three kinds, and concurrent
// renders. Run under -race (make obs does).
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("race_total", "h", Label{"g", fmt.Sprint(g % 4)}).Inc()
				r.Gauge("race_gauge", "h").Set(float64(i))
				r.Histogram("race_hist", "h", DurationBuckets).Observe(float64(i) / 1000)
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WriteText(&b); err != nil {
						t.Errorf("WriteText: %v", err)
					}
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	var total int64
	for g := 0; g < 4; g++ {
		total += r.Counter("race_total", "h", Label{"g", fmt.Sprint(g)}).Value()
	}
	if want := int64(goroutines * iters); total != want {
		t.Errorf("counter total = %d, want %d", total, want)
	}
	if got := r.Histogram("race_hist", "h", DurationBuckets).Count(); got != int64(goroutines*iters) {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
}

// TestHandler checks the scrape endpoint's content type and body.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "h").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1\n") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestMirrorExpvar publishes, re-points, and reads back through the
// expvar tree. Re-pointing must not panic (expvar.Publish would on a
// duplicate name).
func TestMirrorExpvar(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("ev_total", "h").Add(5)
	r1.MirrorExpvar("test_mirror")
	v := expvar.Get("test_mirror")
	if v == nil {
		t.Fatal("expvar name not published")
	}
	if !strings.Contains(v.String(), `"ev_total":5`) {
		t.Errorf("expvar snapshot = %s", v.String())
	}

	r2 := NewRegistry()
	r2.Counter("ev_total", "h").Add(9)
	r2.MirrorExpvar("test_mirror") // must re-point, not panic
	if !strings.Contains(expvar.Get("test_mirror").String(), `"ev_total":9`) {
		t.Errorf("expvar not re-pointed: %s", expvar.Get("test_mirror").String())
	}
}

func TestCounterDropsNegative(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-4)
	if got := c.Value(); got != 10 {
		t.Errorf("Value = %d, want 10 (negative Add must be dropped)", got)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "disc_build_info{") {
		t.Errorf("exposition missing disc_build_info:\n%s", b.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 10 observations spread uniformly inside (1,2]: every quantile
	// interpolates within that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got < 1 || got > 2 {
		t.Errorf("median %v outside the (1,2] bucket", got)
	}
	if lo, hi := h.Quantile(0.1), h.Quantile(0.9); lo >= hi {
		t.Errorf("quantiles not monotone: q10=%v q90=%v", lo, hi)
	}
	// Overflow observations clamp to the highest finite bound.
	over := newHistogram([]float64{1, 2})
	over.Observe(100)
	if got := over.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", got)
	}
}

func TestQuantileAcrossMergesHistograms(t *testing.T) {
	fast := newHistogram(DurationBuckets)
	slow := newHistogram(DurationBuckets)
	for i := 0; i < 90; i++ {
		fast.Observe(0.01)
	}
	for i := 0; i < 10; i++ {
		slow.Observe(20)
	}
	// 90% of the union is fast: the p50 must sit near 0.01s, the p99 up
	// near the slow mass.
	if got := QuantileAcross(0.5, fast, slow); got > 0.1 {
		t.Errorf("merged p50 = %v, want near the fast mass", got)
	}
	if got := QuantileAcross(0.99, fast, slow); got < 1 {
		t.Errorf("merged p99 = %v, want in the slow mass", got)
	}
	// Nil and empty histograms are ignored, not mis-merged.
	if got := QuantileAcross(0.5, nil, fast); got > 0.1 {
		t.Errorf("nil-tolerant merge p50 = %v", got)
	}
	if got := QuantileAcross(0.5); got != 0 {
		t.Errorf("no histograms quantile = %v, want 0", got)
	}
}
