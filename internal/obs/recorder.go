// The flight recorder: a bounded, per-trace record of span start/end
// entries and structured events. One Recorder lives for the lifetime of
// one trace (one job); every process that works on the trace appends to
// its own recorder and ships completed span records back to the
// coordinator, which folds them into the job's recorder so a single
// fleet-wide timeline can be assembled.
//
// The recorder never blocks the mining hot path and never grows: it is
// two ring buffers that evict independently — one for span records
// (numerous: every partition the engine times), one for lifecycle
// events (rare: queue admit, shard assign/resolve, checkpoint write,
// breaker transition). When a ring is full its oldest entry is evicted
// and a dropped counter advances, so a pathological trace costs a fixed
// amount of memory and the timeline says exactly how much history it
// lost — and a partition-heavy job can never flush its own lifecycle
// out of the record, because spans only ever evict spans.
package obs

import (
	"sync"
	"time"
)

// DefaultRecorderEvents is the total ring capacity used when a
// TraceContext is built without an explicit bound. Sized to hold every
// entry of a typical sharded job (tens of spans per shard, a handful of
// lifecycle events) with generous headroom.
const DefaultRecorderEvents = 4096

// EventKind classifies a recorder entry.
type EventKind uint8

const (
	// KindSpanStart marks the opening of a span.
	KindSpanStart EventKind = iota
	// KindSpanEnd marks the close of a span and carries its duration.
	KindSpanEnd
	// KindEvent is a point-in-time structured event (queue admit,
	// checkpoint write, shard assign/resolve/hedge, breaker
	// transition, degrade latch).
	KindEvent
)

// String returns the JSON/wire name of the kind.
func (k EventKind) String() string {
	switch k {
	case KindSpanStart:
		return "span-start"
	case KindSpanEnd:
		return "span-end"
	default:
		return "event"
	}
}

// Event is one recorder entry. Seq and Mono are stamped by Append:
// Seq increases monotonically for the life of the recorder (it keeps
// counting across evictions, so gaps reveal loss), and Mono is the
// monotonic-clock offset from the recorder's epoch, immune to wall
// clock steps.
type Event struct {
	Seq    uint64
	Mono   time.Duration
	Time   time.Time
	Kind   EventKind
	Stage  string // span stage, or event name for KindEvent
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	Node   string
	Dur    time.Duration     // KindSpanEnd only
	Attrs  map[string]string // optional structured payload
}

// ringBuf is one bounded eviction domain of the recorder.
type ringBuf struct {
	buf     []Event
	next    int // next write position once full
	full    bool
	dropped uint64
}

func newRingBuf(capacity int) ringBuf {
	return ringBuf{buf: make([]Event, 0, capacity)}
}

func (rb *ringBuf) append(ev Event) {
	if !rb.full {
		rb.buf = append(rb.buf, ev)
		if len(rb.buf) == cap(rb.buf) {
			rb.full = true
		}
		return
	}
	rb.buf[rb.next] = ev
	rb.next = (rb.next + 1) % len(rb.buf)
	rb.dropped++
}

// snapshot returns the retained entries in append order (oldest first).
func (rb *ringBuf) snapshot() []Event {
	out := make([]Event, 0, len(rb.buf))
	if rb.full {
		out = append(out, rb.buf[rb.next:]...)
		out = append(out, rb.buf[:rb.next]...)
	} else {
		out = append(out, rb.buf...)
	}
	return out
}

// Recorder is the bounded per-trace record. All methods are safe for
// concurrent use; a nil *Recorder is inert.
type Recorder struct {
	mu     sync.Mutex
	epoch  time.Time
	seq    uint64
	spans  ringBuf // KindSpanStart / KindSpanEnd entries
	events ringBuf // KindEvent entries, evicted independently
}

// NewRecorder returns a recorder holding at most capacity entries in
// total; capacity <= 0 selects DefaultRecorderEvents. A quarter of the
// capacity (at least one slot) is reserved for lifecycle events, the
// rest holds span records.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderEvents
	}
	eventCap := capacity / 4
	if eventCap < 1 {
		eventCap = 1
	}
	spanCap := capacity - eventCap
	if spanCap < 1 {
		spanCap = 1
	}
	return &Recorder{epoch: time.Now(),
		spans: newRingBuf(spanCap), events: newRingBuf(eventCap)}
}

// Append stamps and stores ev in its kind's ring, evicting that ring's
// oldest entry when it is full. ev.Time is preserved when the caller
// set it (remote span records keep their origin timestamps); otherwise
// it is stamped now. Nil-safe.
func (r *Recorder) Append(ev Event) {
	if r == nil {
		return
	}
	now := time.Now()
	if ev.Time.IsZero() {
		ev.Time = now
	}
	r.mu.Lock()
	ev.Seq = r.seq
	r.seq++
	ev.Mono = now.Sub(r.epoch)
	if ev.Kind == KindEvent {
		r.events.append(ev)
	} else {
		r.spans.append(ev)
	}
	r.mu.Unlock()
}

// Events returns a snapshot of the retained entries of both rings,
// merged in append order (ascending Seq). Nil-safe.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	sp, evs := r.spans.snapshot(), r.events.snapshot()
	r.mu.Unlock()
	out := make([]Event, 0, len(sp)+len(evs))
	for len(sp) > 0 && len(evs) > 0 {
		if sp[0].Seq < evs[0].Seq {
			out = append(out, sp[0])
			sp = sp[1:]
		} else {
			out = append(out, evs[0])
			evs = evs[1:]
		}
	}
	out = append(out, sp...)
	out = append(out, evs...)
	return out
}

// Dropped reports how many entries were evicted across both rings to
// keep the recorder bounded. Nil-safe.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans.dropped + r.events.dropped
}

// Len reports the number of retained entries. Nil-safe.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans.buf) + len(r.events.buf)
}

// Cap reports the total capacity across both rings. Nil-safe.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return cap(r.spans.buf) + cap(r.events.buf)
}
