// Timeline assembly: turning a trace's flight-recorder contents into
// the JSON document served by GET /debug/jobs/{id}/timeline and
// asserted by the golden tests. The schema is deliberately flat —
// a sorted span table plus a sorted event table — so shell tooling
// (jq, grep in CI) can validate it without a trace viewer.
package obs

import (
	"sort"
	"time"
)

// SpanRecord is the completed-span wire and JSON form. Workers return
// these in shard responses; the coordinator folds them into the job's
// recorder; the timeline endpoint serves them sorted.
type SpanRecord struct {
	Trace  string            `json:"trace_id"`
	Span   string            `json:"span_id"`
	Parent string            `json:"parent_span_id,omitempty"`
	Stage  string            `json:"stage"`
	Node   string            `json:"node,omitempty"`
	Start  time.Time         `json:"start"`
	DurNS  int64             `json:"duration_ns"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// TimelineEvent is one structured point-in-time event in the JSON
// timeline.
type TimelineEvent struct {
	Seq   uint64            `json:"seq"`
	Name  string            `json:"name"`
	Node  string            `json:"node,omitempty"`
	Span  string            `json:"span_id,omitempty"`
	Time  time.Time         `json:"time"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Timeline is the assembled fleet-wide record of one trace.
type Timeline struct {
	TraceID string          `json:"trace_id"`
	JobID   string          `json:"job_id,omitempty"`
	Spans   []SpanRecord    `json:"spans"`
	Events  []TimelineEvent `json:"events"`
	Dropped uint64          `json:"dropped_events"`
}

// Spans extracts the completed spans retained in the recorder, sorted
// by start time (ties broken by stage then span ID) so output is
// stable. Nil-safe.
func (r *Recorder) Spans() []SpanRecord {
	evs := r.Events()
	out := make([]SpanRecord, 0, len(evs))
	for _, ev := range evs {
		if ev.Kind != KindSpanEnd {
			continue
		}
		rec := SpanRecord{
			Trace: ev.Trace.String(),
			Span:  ev.Span.String(),
			Stage: ev.Stage,
			Node:  ev.Node,
			Start: ev.Time.Add(-ev.Dur),
			DurNS: ev.Dur.Nanoseconds(),
			Attrs: ev.Attrs,
		}
		if !ev.Parent.IsZero() {
			rec.Parent = ev.Parent.String()
		}
		out = append(out, rec)
	}
	sortSpans(out)
	return out
}

func sortSpans(s []SpanRecord) {
	sort.SliceStable(s, func(i, j int) bool {
		if !s[i].Start.Equal(s[j].Start) {
			return s[i].Start.Before(s[j].Start)
		}
		if s[i].Stage != s[j].Stage {
			return s[i].Stage < s[j].Stage
		}
		return s[i].Span < s[j].Span
	})
}

// Timeline assembles the full record for the trace: every completed
// span (local and folded-in remote), every structured event, and the
// eviction count. Nil-safe: a nil context yields a nil timeline.
func (tc *TraceContext) Timeline(jobID string) *Timeline {
	if tc == nil {
		return nil
	}
	tl := &Timeline{
		TraceID: tc.trace.String(),
		JobID:   jobID,
		Spans:   tc.rec.Spans(),
		Events:  []TimelineEvent{},
		Dropped: tc.rec.Dropped(),
	}
	for _, ev := range tc.rec.Events() {
		if ev.Kind != KindEvent {
			continue
		}
		te := TimelineEvent{
			Seq:   ev.Seq,
			Name:  ev.Stage,
			Node:  ev.Node,
			Time:  ev.Time,
			Attrs: ev.Attrs,
		}
		if !ev.Span.IsZero() {
			te.Span = ev.Span.String()
		}
		tl.Events = append(tl.Events, te)
	}
	sort.SliceStable(tl.Events, func(i, j int) bool { return tl.Events[i].Seq < tl.Events[j].Seq })
	return tl
}
