// Package obs is the repository's observability substrate, built on the
// standard library alone: a concurrency-safe metrics registry — counters,
// gauges and histograms with fixed bucket schemas — that renders the
// Prometheus text exposition format and mirrors into expvar, plus
// lightweight span tracing (trace.go) that emits structured log/slog JSON
// and aggregates into per-stage duration histograms.
//
// The design contract, shared with every instrumented layer:
//
//   - Instruments are get-or-create and identified by (name, label set):
//     the same call from two goroutines returns the same instrument, so
//     recording sites never coordinate.
//   - Recording (Inc/Add/Set/Observe) is a handful of atomic operations,
//     lock-free and allocation-free; the registry lock is taken only to
//     look instruments up and to render.
//   - Hot engine paths (internal/avl, internal/counting) do not talk to
//     the registry at all: they count into nil-safe local recorders whose
//     totals the engine folds into registry counters once per run, so the
//     uninstrumented path costs one pointer check per site.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Instruments with the same name but
// different label sets are children of one metric family and render under
// one HELP/TYPE header.
type Label struct {
	Key, Value string
}

// Fixed bucket schemas. Every histogram in the repository uses one of
// these, so dashboards can compare latencies and sizes across subsystems
// without per-metric bucket surprises.
var (
	// DurationBuckets spans 100µs to 60s in seconds — partition spans,
	// checkpoint writes and whole-job latencies all fit.
	DurationBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
	// SizeBuckets spans 256B to 64MiB in bytes — checkpoint snapshots and
	// result payloads.
	SizeBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
)

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotone counter. The zero value is usable but normally
// counters come from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error and are dropped to
// keep the exposition monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with a cumulative Prometheus
// rendering (_bucket/_sum/_count). Observations are atomic per bucket;
// the rendered +Inf bucket and _count are derived from the same snapshot
// of the bucket counts, so the exposition invariants hold even while
// observations race with a scrape.
type Histogram struct {
	upper  []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	return &Histogram{upper: up, counts: make([]atomic.Int64, len(up)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v; len(upper) = +Inf
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation inside the containing bucket —
// the usual histogram_quantile estimate. With no observations it
// returns 0; a rank landing in the +Inf overflow bucket clamps to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 { return QuantileAcross(q, h) }

// QuantileAcross estimates a quantile over the union of several
// histograms sharing one bucket schema (e.g. the per-worker latency
// family) by summing their bucket counts. Histograms with a different
// bucket count are skipped rather than mis-merged.
func QuantileAcross(q float64, hs ...*Histogram) float64 {
	var upper []float64
	var counts []int64
	var total int64
	for _, h := range hs {
		if h == nil || len(h.upper) == 0 {
			continue
		}
		if upper == nil {
			upper = h.upper
			counts = make([]int64, len(upper)+1)
		}
		if len(h.upper) != len(upper) {
			continue
		}
		for i := range h.counts {
			n := h.counts[i].Load()
			counts[i] += n
			total += n
		}
	}
	if total == 0 || upper == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range counts {
		if n > 0 && float64(cum+n) >= rank {
			if i >= len(upper) {
				break // +Inf bucket: clamp below
			}
			lo := 0.0
			if i > 0 {
				lo = upper[i-1]
			}
			return lo + (upper[i]-lo)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	return upper[len(upper)-1]
}

// child is one instrument of a family: a concrete label set plus exactly
// one of the value holders.
type child struct {
	labels  []Label // sorted by key
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

type family struct {
	name, help string
	kind       kind
	buckets    []float64
	children   map[string]*child
}

// Registry is a concurrency-safe set of metric families. Construct with
// NewRegistry; instruments are created on first use and shared afterwards.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// canonLabels returns a copy of labels sorted by key — the child identity.
func canonLabels(labels []Label) ([]Label, string) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return ls, b.String()
}

// lookup returns the child for (name, labels), creating family and child
// as needed. A name registered under a different kind is a programming
// error and panics with a message naming both kinds.
func (r *Registry) lookup(name, help string, k kind, buckets []float64, labels []Label) *child {
	ls, key := canonLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, buckets: buckets, children: map[string]*child{}}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: ls}
		switch k {
		case counterKind:
			c.counter = &Counter{}
		case gaugeKind:
			c.gauge = &Gauge{}
		case histogramKind:
			c.hist = newHistogram(f.buckets)
		}
		f.children[key] = c
	}
	return c
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, counterKind, nil, labels).counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, gaugeKind, nil, labels).gauge
}

// GaugeFunc registers (or replaces) a gauge whose value is read from fn
// at render time — the read-through shape: the exposed number is computed
// from the owning subsystem's live state, so the registry can never
// disagree with it.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.lookup(name, help, gaugeKind, nil, labels)
	r.mu.Lock()
	c.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram for (name, labels), creating it on
// first use with the given bucket schema (the family's schema is fixed by
// the first registration).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.lookup(name, help, histogramKind, buckets, labels).hist
}

// Unregister removes the series for (name, labels) from the registry,
// reporting whether it existed. When the last series of a family is
// removed the family (and its HELP/TYPE lines) disappears from the
// exposition too. This is how per-worker series are pruned when a
// worker's heartbeat TTL expires, keeping a churning fleet's registry
// cardinality bounded. Handles previously returned by the accessor
// functions keep working but are detached: updates through them no
// longer reach the exposition.
func (r *Registry) Unregister(name string, labels ...Label) bool {
	if r == nil {
		return false
	}
	_, key := canonLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return false
	}
	if _, ok := f.children[key]; !ok {
		return false
	}
	delete(f.children, key)
	if len(f.children) == 0 {
		delete(r.families, name)
	}
	return true
}

// escapeHelp escapes a HELP line per the text exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}, with extra appended last (the
// histogram le label). Empty sets render as nothing.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, children by label
// signature, one HELP/TYPE header per family, cumulative histogram
// buckets with a +Inf bucket equal to _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := f.children[k]
			switch f.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(c.labels), c.counter.Value())
			case gaugeKind:
				v := 0.0
				if c.gaugeFn != nil {
					v = c.gaugeFn()
				} else {
					v = c.gauge.Value()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(c.labels), formatFloat(v))
			case histogramKind:
				var cum int64
				for i, ub := range c.hist.upper {
					cum += c.hist.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(c.labels, Label{"le", formatFloat(ub)}), cum)
				}
				cum += c.hist.counts[len(c.hist.upper)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(c.labels, Label{"le", "+Inf"}), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(c.labels), formatFloat(c.hist.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(c.labels), cum)
			}
		}
	}
	r.mu.RUnlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot flattens the registry into a plain map — the expvar mirror
// and the JSON surfaces read this. Counter and gauge children map to
// numbers keyed "name{labels}"; histograms map to {count, sum}.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		for _, c := range f.children {
			key := f.name + labelString(c.labels)
			switch f.kind {
			case counterKind:
				out[key] = c.counter.Value()
			case gaugeKind:
				if c.gaugeFn != nil {
					out[key] = c.gaugeFn()
				} else {
					out[key] = c.gauge.Value()
				}
			case histogramKind:
				out[key] = map[string]any{"count": c.hist.Count(), "sum": c.hist.Sum()}
			}
		}
	}
	return out
}

// Handler serves the registry as a Prometheus scrape endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// expvar publication is process-global and permanent (expvar has no
// unpublish), so the holder indirection lets a name be re-pointed at a
// newer registry — a restarted test server reuses the name instead of
// panicking in expvar.Publish.
var expvarHolders sync.Map // name -> *atomic.Pointer[Registry]

// MirrorExpvar publishes the registry under name in the process's expvar
// tree as a Func returning Snapshot(). Calling it again with the same
// name re-points the existing publication at r.
func (r *Registry) MirrorExpvar(name string) {
	p, loaded := expvarHolders.LoadOrStore(name, new(atomic.Pointer[Registry]))
	holder := p.(*atomic.Pointer[Registry])
	holder.Store(r)
	if !loaded {
		expvar.Publish(name, expvar.Func(func() any {
			if reg := holder.Load(); reg != nil {
				return reg.Snapshot()
			}
			return nil
		}))
	}
}

// BuildVersion reports the module version (or "(devel)") and the Go
// toolchain version of the running binary.
func BuildVersion() (version, goVersion string) {
	version, goVersion = "unknown", runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
	}
	return version, goVersion
}

// RegisterBuildInfo exposes the build identity as the conventional
// constant-1 info gauge disc_build_info{version,goversion}.
func RegisterBuildInfo(r *Registry) {
	v, g := BuildVersion()
	r.Gauge("disc_build_info", "Build identity of the serving binary (constant 1).",
		Label{"version", v}, Label{"goversion", g}).Set(1)
}
