package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/obs"
)

// Config shapes a Coordinator.
type Config struct {
	// Peers are statically configured worker base URLs (always eligible;
	// no heartbeat required). Workers may also self-register over
	// HandleRegister and stay eligible while heartbeating.
	Peers []string
	// Shards fixes the shard count per job; 0 means one shard per live
	// worker at dispatch time (at least one).
	Shards int
	// ShardTimeout bounds one dispatch attempt of one shard (default 5
	// minutes). A shard hitting it is rescheduled from its accumulated
	// checkpoint, so a slow worker costs time, not completed work.
	ShardTimeout time.Duration
	// Retries is how many times a failed shard attempt is rescheduled
	// before the coordinator mines the shard locally (default 3).
	Retries int
	// HeartbeatTTL is how long a self-registered worker stays eligible
	// after its last heartbeat (default 30s).
	HeartbeatTTL time.Duration
	// Cooldown parks a peer after a transport failure so retries prefer
	// other workers (default 10s).
	Cooldown time.Duration
	// Client performs the shard dispatches (default http.DefaultClient;
	// per-attempt contexts carry the timeout, so the client needs none).
	Client *http.Client
	// Secret, when set, authenticates the cluster control plane: the
	// coordinator sends it on every shard dispatch and requires it on
	// /cluster/register. Empty leaves the endpoints open — acceptable
	// only on a trusted network, since a registered URL receives the
	// full job database and its answers are folded into results.
	Secret string
	// Faults arms the coordinator-side injection points and is forwarded
	// to local fallback runs.
	Faults *faultinject.Injector
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
	// Obs is the shared observability handle (nil gets a private one).
	Obs *obs.Observer
}

type peer struct {
	url       string
	static    bool
	lastSeen  time.Time
	downUntil time.Time
}

// Coordinator splits shardable jobs into first-level-partition shards,
// dispatches them to workers, reschedules failures from their
// checkpoints, and assembles the byte-identical result locally. Its
// Mine method is shaped to plug into jobs.Config.Mine.
type Coordinator struct {
	cfg Config

	mu    sync.Mutex
	peers map[string]*peer
	next  int // round-robin cursor over the sorted live peer list

	obs       *obs.Observer
	shards    map[string]*obs.Counter // state -> counter
	shardDur  *obs.Histogram
	workerLat map[string]*obs.Histogram // worker url -> latency histogram
}

// New starts a coordinator over the statically configured peers.
func New(cfg Config) *Coordinator {
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 5 * time.Minute
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.HeartbeatTTL <= 0 {
		cfg.HeartbeatTTL = 30 * time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	o := cfg.Obs
	if o == nil {
		o = obs.NewObserver()
	}
	c := &Coordinator{cfg: cfg, peers: map[string]*peer{}, obs: o,
		workerLat: map[string]*obs.Histogram{}}
	for _, u := range cfg.Peers {
		c.peers[u] = &peer{url: u, static: true}
	}
	r := o.Registry
	c.shards = map[string]*obs.Counter{}
	for _, state := range []string{"done", "failed", "retried", "local"} {
		c.shards[state] = r.Counter("disc_cluster_shards_total",
			"Shard dispatch outcomes: done (a worker finished it), retried (an attempt failed and the shard was rescheduled), local (workers exhausted, mined by the coordinator), failed (gave up).",
			obs.Label{Key: "state", Value: state})
	}
	c.shardDur = r.Histogram("disc_cluster_shard_duration_seconds",
		"Wall time of one shard from first dispatch to completion.", obs.DurationBuckets)
	r.GaugeFunc("disc_cluster_workers", "Workers currently eligible for shard dispatch.",
		func() float64 { return float64(len(c.Workers())) })
	return c
}

// Register makes a worker eligible for dispatch (idempotent; also the
// heartbeat — each call refreshes the TTL).
func (c *Coordinator) Register(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[url]
	if !ok {
		p = &peer{url: url}
		c.peers[url] = p
		c.cfg.Logf("cluster: worker %s registered", url)
	}
	p.lastSeen = time.Now()
}

// HandleRegister is POST /cluster/register: a worker announcing itself,
// repeated periodically as a heartbeat. With a configured Secret the
// request must prove fleet membership — an unauthenticated registration
// would otherwise hand the full job database to an arbitrary URL and
// trust the partitions it returns.
func (c *Coordinator) HandleRegister(rw http.ResponseWriter, r *http.Request) {
	if !authorized(c.cfg.Secret, r) {
		writeJSON(rw, http.StatusUnauthorized,
			ShardResponse{Error: &jobs.WireError{Kind: "auth", Message: "missing or wrong cluster secret"}})
		return
	}
	var reg registration
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<16)).Decode(&reg); err != nil || reg.URL == "" {
		writeJSON(rw, http.StatusBadRequest,
			ShardResponse{Error: &jobs.WireError{Kind: "input", Message: "registration needs a url"}})
		return
	}
	c.Register(reg.URL)
	rw.WriteHeader(http.StatusNoContent)
}

// Workers lists the currently eligible worker URLs, sorted: static peers
// always, self-registered ones while their heartbeat TTL holds.
func (c *Coordinator) Workers() []string {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, p := range c.peers {
		if p.static || now.Sub(p.lastSeen) < c.cfg.HeartbeatTTL {
			out = append(out, p.url)
		}
	}
	sort.Strings(out)
	return out
}

// pickWorker selects the next eligible worker round-robin, skipping ones
// already tried for this shard attempt cycle and ones cooling down after
// a transport failure. Returns "" when none qualifies.
func (c *Coordinator) pickWorker(tried map[string]bool) string {
	live := c.Workers()
	if len(live) == 0 {
		return ""
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	// First pass honors cooldowns; the second ignores them — a parked
	// worker is still better than none.
	for _, honorCooldown := range []bool{true, false} {
		for i := 0; i < len(live); i++ {
			u := live[(c.next+i)%len(live)]
			if tried[u] {
				continue
			}
			if honorCooldown && c.peers[u] != nil && now.Before(c.peers[u].downUntil) {
				continue
			}
			c.next = (c.next + i + 1) % len(live)
			return u
		}
	}
	return ""
}

// parkPeer starts a cooldown after a transport failure.
func (c *Coordinator) parkPeer(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.peers[url]; ok {
		p.downUntil = time.Now().Add(c.cfg.Cooldown)
	}
}

// latency returns the per-worker dispatch latency histogram, creating it
// on the worker's first dispatch.
//
// The registry call must happen outside c.mu: the registry's render
// paths (WriteText/Snapshot) hold the registry lock while invoking the
// disc_cluster_workers gauge fn, which takes c.mu — creating the
// histogram while holding c.mu takes the two locks in the opposite
// order and deadlocks against a concurrent /metrics scrape. Registry
// instruments are get-or-create by (name, labels), so two racing
// creators receive the same histogram and the cache store is idempotent.
func (c *Coordinator) latency(url string) *obs.Histogram {
	c.mu.Lock()
	h, ok := c.workerLat[url]
	c.mu.Unlock()
	if ok {
		return h
	}
	h = c.obs.Registry.Histogram("disc_cluster_worker_latency_seconds",
		"Shard dispatch round-trip latency, by worker.",
		obs.DurationBuckets, obs.Label{Key: "worker", Value: url})
	c.mu.Lock()
	c.workerLat[url] = h
	c.mu.Unlock()
	return h
}

// shardAcc accumulates one shard's completed partitions across dispatch
// attempts, deduplicating by partition key (a retried shard re-ships
// what its predecessor completed).
type shardAcc struct {
	seen  map[string]bool
	parts []checkpoint.Partition
}

// fold merges freshly received partitions, recording each new one into
// the job's checkpointer (so periodic snapshots persist cluster
// progress). Returns how many were new.
func (a *shardAcc) fold(parts []checkpoint.Partition, cp *core.Checkpointer) int {
	fresh := 0
	for _, p := range parts {
		k := p.Key.Key()
		if a.seen[k] {
			continue
		}
		a.seen[k] = true
		a.parts = append(a.parts, p)
		if cp != nil {
			cp.RecordPartition(p)
		}
		fresh++
	}
	return fresh
}

// Mine distributes one job across the fleet and returns a result
// byte-identical to a local run. It has the jobs.Config.Mine shape: the
// manager keeps admission, dedup, deadlines, containment and
// checkpoint persistence; this replaces only the mining itself.
//
// Non-shardable algorithms, resource-budgeted jobs and an empty fleet
// fall back to an ordinary local run. Budgets (MaxPatterns/MaxMemBytes)
// are job-global counters: a sharded run would make each worker enforce
// the full budget against its own shard, letting a clustered job mine
// up to shards×budget or fail where a local run would not — so budgeted
// jobs keep the byte-identical contract by never sharding. Otherwise
// the job splits into shards; each shard is dispatched with the shard's
// accumulated partitions as resume state, failed or timed-out attempts
// are rescheduled (costing only un-checkpointed work), and a shard that
// exhausts its retries is mined locally. The final local assembly run
// restores every collected partition and merges them in ascending key
// order — the same merge an uninterrupted local run performs.
func (c *Coordinator) Mine(ctx context.Context, req jobs.Request, cp *core.Checkpointer) (*mining.Result, error) {
	workers := c.Workers()
	budgeted := req.Opts.MaxPatterns > 0 || req.Opts.MaxMemBytes > 0
	if !shardable(req.Algo) || budgeted || len(workers) == 0 {
		switch {
		case !shardable(req.Algo):
			// Quiet: the baselines always run locally, nothing to report.
		case budgeted:
			c.cfg.Logf("cluster: job has a resource budget, mining %s locally (budgets are job-global; shards would each enforce their own)", req.Algo)
		default:
			c.cfg.Logf("cluster: no live workers, mining %s locally", req.Algo)
		}
		return c.mineLocal(ctx, req, cp, nil)
	}
	shards := c.cfg.Shards
	if shards <= 0 {
		shards = len(workers)
	}

	var dbText bytes.Buffer
	if err := data.Write(&dbText, req.DB, data.Native); err != nil {
		return nil, fmt.Errorf("cluster: encoding database: %w", err)
	}
	fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)

	// Pre-seed each shard's accumulator with the partitions a previous
	// incarnation of this job already collected (crash-resume): those
	// shards' workers restore them instead of re-mining.
	accs := make([]*shardAcc, shards)
	for i := range accs {
		accs[i] = &shardAcc{seen: map[string]bool{}}
	}
	var restored []checkpoint.Partition
	if cp != nil {
		restored = cp.RestoredPartitions()
	}
	for _, p := range restored {
		a := accs[core.ShardOf(p.Key, shards)]
		k := p.Key.Key()
		if !a.seen[k] {
			a.seen[k] = true
			a.parts = append(a.parts, p)
		}
	}

	// No budgets travel with the shards: budgeted jobs took the local
	// path above, so request budgets here are always zero and workers
	// apply only their own protective limits.
	base := ShardRequest{
		Algo: req.Algo, MinSup: req.MinSup,
		BiLevel: req.Opts.BiLevel, Levels: req.Opts.Levels, Gamma: req.Opts.Gamma,
		Workers: req.Opts.Workers,
		Shards: shards, Fingerprint: fmt.Sprintf("%016x", fp), DB: dbText.String(),
	}

	errs := make([]error, shards)
	var wg sync.WaitGroup
	for idx := 0; idx < shards; idx++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			errs[idx] = c.runShard(ctx, base, idx, fp, accs[idx], req, cp)
		}(idx)
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			c.shards["failed"].Inc()
			return nil, fmt.Errorf("cluster: shard %d/%d: %w", idx, shards, err)
		}
	}

	// Assembly: restore every collected partition locally. The level-0
	// scan and the ascending-key merge are all that executes here, and
	// the engine self-heals any partition nobody shipped by mining it.
	var all []checkpoint.Partition
	for _, a := range accs {
		all = append(all, a.parts...)
	}
	asm := core.ResumeFrom(&checkpoint.File{
		Algo: req.Algo, Fingerprint: fp, MinSup: req.MinSup, Partitions: all,
	})
	res, err := c.mineWith(ctx, req, asm, nil)
	if err != nil {
		return nil, err
	}
	c.cfg.Logf("cluster: job %016x assembled from %d shards, %d partitions", fp, shards, len(all))
	return res, nil
}

// runShard drives one shard to completion: dispatch, fold the returned
// checkpoint, reschedule on failure, and fall back to a local shard run
// when workers are exhausted.
func (c *Coordinator) runShard(ctx context.Context, base ShardRequest, idx int, fp uint64,
	acc *shardAcc, req jobs.Request, cp *core.Checkpointer) error {
	start := time.Now()
	tried := map[string]bool{}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		url := c.pickWorker(tried)
		if url == "" {
			// Every live worker tried this cycle; start over (the failed
			// ones may have recovered) rather than giving up early.
			tried = map[string]bool{}
			if url = c.pickWorker(tried); url == "" {
				break // fleet emptied under us
			}
		}
		tried[url] = true

		resp, err := c.dispatch(ctx, url, base, idx, fp, acc)
		if err != nil {
			c.parkPeer(url)
			c.shards["retried"].Inc()
			c.cfg.Logf("cluster: shard %d/%d attempt %d on %s failed: %v (rescheduling from %d partitions)",
				idx, base.Shards, attempt+1, url, err, len(acc.parts))
			lastErr = err
			continue
		}
		// Validate the returned checkpoint before trusting the response
		// outcome: on a success response an undecodable, mismatched or
		// absent checkpoint means the shard's work never actually arrived,
		// and silently counting it done would quietly degrade the whole
		// shard to local re-mining during assembly.
		var cpErr error
		if resp.Checkpoint != "" {
			switch f, derr := decodeCheckpoint(resp.Checkpoint); {
			case derr != nil:
				cpErr = fmt.Errorf("undecodable checkpoint from %s: %w", url, derr)
			case f.Fingerprint != fp:
				cpErr = fmt.Errorf("checkpoint from %s has fingerprint %016x, job is %016x", url, f.Fingerprint, fp)
			default:
				acc.fold(f.Partitions, cp)
			}
		} else if resp.Error == nil {
			cpErr = fmt.Errorf("success response from %s carried no checkpoint", url)
		}
		if resp.Error != nil {
			// The worker mined and failed (panic, budget, …). Its partial
			// checkpoint is folded in, so the reschedule resumes.
			c.shards["retried"].Inc()
			c.cfg.Logf("cluster: shard %d/%d attempt %d on %s: worker error: %v (rescheduling from %d partitions)",
				idx, base.Shards, attempt+1, url, resp.Error, len(acc.parts))
			lastErr = resp.Error
			continue
		}
		if cpErr != nil {
			// Success in name only — treat it like a worker failure and
			// reschedule rather than silently re-mining the shard locally.
			c.shards["retried"].Inc()
			c.cfg.Logf("cluster: shard %d/%d attempt %d on %s: %v (rescheduling from %d partitions)",
				idx, base.Shards, attempt+1, url, cpErr, len(acc.parts))
			lastErr = cpErr
			continue
		}
		c.shards["done"].Inc()
		c.shardDur.Observe(time.Since(start).Seconds())
		return nil
	}

	// Workers exhausted: mine the shard here, resuming from whatever the
	// fleet completed. Correctness never depends on the fleet.
	c.cfg.Logf("cluster: shard %d/%d exhausted retries (last: %v), mining locally", idx, base.Shards, lastErr)
	local := core.ResumeFrom(&checkpoint.File{
		Algo: req.Algo, Fingerprint: fp, MinSup: req.MinSup, Partitions: acc.parts,
	})
	spec := &core.ShardSpec{Index: idx, Count: base.Shards}
	if _, err := c.mineWith(ctx, req, local, spec); err != nil {
		return err
	}
	acc.fold(local.File(req.Algo, req.MinSup, fp).Partitions, cp)
	c.shards["local"].Inc()
	c.shardDur.Observe(time.Since(start).Seconds())
	return nil
}

// dispatch performs one shard attempt against one worker.
func (c *Coordinator) dispatch(ctx context.Context, url string, base ShardRequest,
	idx int, fp uint64, acc *shardAcc) (*ShardResponse, error) {
	sreq := base
	sreq.Shard = idx
	if len(acc.parts) > 0 {
		text, err := encodeCheckpoint(&checkpoint.File{
			Algo: base.Algo, Fingerprint: fp, MinSup: base.MinSup,
			Shard: idx, ShardCount: base.Shards, Partitions: acc.parts,
		})
		if err != nil {
			return nil, err
		}
		sreq.Resume = text
	}
	body, err := json.Marshal(&sreq)
	if err != nil {
		return nil, err
	}

	actx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, url+"/cluster/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	setSecret(hreq, c.cfg.Secret)
	start := time.Now()
	hres, err := c.cfg.Client.Do(hreq)
	c.latency(url).Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	var resp ShardResponse
	if err := json.NewDecoder(io.LimitReader(hres.Body, 1<<30)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("decoding worker response (HTTP %d): %w", hres.StatusCode, err)
	}
	if resp.Error == nil && hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker answered HTTP %d", hres.StatusCode)
	}
	return &resp, nil
}

// mineLocal is the no-fleet path: exactly what the manager's default
// mining would have done.
func (c *Coordinator) mineLocal(ctx context.Context, req jobs.Request, cp *core.Checkpointer, spec *core.ShardSpec) (*mining.Result, error) {
	return c.mineWith(ctx, req, cp, spec)
}

// mineWith runs the job's algorithm here with the given checkpointer and
// optional shard scope.
func (c *Coordinator) mineWith(ctx context.Context, req jobs.Request, cp *core.Checkpointer, spec *core.ShardSpec) (*mining.Result, error) {
	opts := req.Opts
	opts.Checkpoint = cp
	opts.Shard = spec
	opts.Faults = c.cfg.Faults
	opts.Obs = c.obs
	miner, err := localMinerFor(req.Algo, opts)
	if err != nil {
		return nil, err
	}
	return mining.AsContextMiner(miner).MineContext(ctx, req.DB, req.MinSup)
}

// localMinerFor builds the algorithm for coordinator-side runs (the
// disc-all family natively, everything else through the registry — the
// non-shardable baselines reach here on the local fallback path).
func localMinerFor(algo string, opts core.Options) (mining.Miner, error) {
	if shardable(algo) {
		return minerFor(algo, opts)
	}
	return mining.NewRegistered(algo)
}

// Heartbeat runs a worker-side registration loop: announce url to the
// coordinator at coordURL every interval until ctx ends, proving fleet
// membership with secret (empty when the fleet runs open). Errors are
// logged and retried — a worker outliving a coordinator restart
// re-registers on the next beat.
func Heartbeat(ctx context.Context, client *http.Client, coordURL, url, secret string,
	interval time.Duration, logf func(string, ...any)) {
	if client == nil {
		client = http.DefaultClient
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	beat := func() {
		body, _ := json.Marshal(registration{URL: url})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordURL+"/cluster/register", bytes.NewReader(body))
		if err != nil {
			logf("cluster: heartbeat: %v", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		setSecret(req, secret)
		res, err := client.Do(req)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				logf("cluster: heartbeat to %s failed: %v", coordURL, err)
			}
			return
		}
		if res.StatusCode == http.StatusUnauthorized {
			logf("cluster: heartbeat to %s rejected: wrong or missing cluster secret", coordURL)
		}
		res.Body.Close()
	}
	beat()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			beat()
		case <-ctx.Done():
			return
		}
	}
}

// Shardable reports whether jobs for algo can be distributed; exported
// for the serving binary's status output.
func Shardable(algo string) bool { return shardable(algo) }

// ShardRetries reports how many shard attempts have been rescheduled so
// far — the observable the fault grids assert on when a worker is
// killed or dropped mid-shard.
func (c *Coordinator) ShardRetries() int { return int(c.shards["retried"].Value()) }
