package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/obs"
)

// ErrCoordinatorCrash is what Mine returns when the CoordinatorCrash
// fault point fires: the in-process stand-in for the coordinator dying
// at a ledger transition. The shard ledger is frozen at its persisted
// state, exactly as a real kill -9 would leave it.
var ErrCoordinatorCrash = errors.New("cluster: injected coordinator crash (drill; shard ledger preserved on disk)")

// Config shapes a Coordinator.
type Config struct {
	// Peers are statically configured worker base URLs (always eligible;
	// no heartbeat required). Workers may also self-register over
	// HandleRegister and stay eligible while heartbeating.
	Peers []string
	// Shards fixes the shard count per job; 0 means one shard per live
	// worker at dispatch time (at least one). A job resuming from a
	// persisted ledger keeps the ledger's shard count regardless — its
	// recorded partitions were hashed with it.
	Shards int
	// ShardTimeout bounds one dispatch attempt of one shard (default 5
	// minutes). A shard hitting it is rescheduled from its accumulated
	// checkpoint, so a slow worker costs time, not completed work.
	ShardTimeout time.Duration
	// Retries is how many times a failed shard attempt is rescheduled
	// before the coordinator mines the shard locally (default 3).
	Retries int
	// HeartbeatTTL is how long a self-registered worker stays eligible
	// after its last heartbeat (default 30s). A worker whose TTL expires
	// while it holds a dispatched shard has that attempt canceled and the
	// shard rescheduled immediately.
	HeartbeatTTL time.Duration
	// Cooldown is the base backoff of an open circuit breaker (default
	// 10s); consecutive trips double it, jittered, up to
	// BreakerMaxBackoff.
	Cooldown time.Duration
	// BreakerFailures is how many consecutive transport failures open a
	// worker's circuit breaker (default 3). Typed worker errors — the
	// worker answered, the mining failed — get twice the grace.
	BreakerFailures int
	// BreakerMaxBackoff caps the open-circuit backoff (default 2m).
	BreakerMaxBackoff time.Duration
	// HedgeQuantile enables hedged dispatch: once a shard attempt
	// outlives this quantile of the fleet's observed dispatch latencies,
	// a second attempt is sent to another worker and the first valid
	// reply wins. 0 disables hedging.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge delay (default 1s) — also the delay
	// used before any latency has been observed.
	HedgeMinDelay time.Duration
	// HedgeBudget bounds speculative dispatches per job (0 = one per
	// shard; negative disables).
	HedgeBudget int
	// LedgerDir, when set, persists a per-job shard ledger at every shard
	// state transition. A restarted coordinator recovers interrupted jobs
	// from it (see Recover) and schedules only their unfinished shards.
	LedgerDir string
	// FS is the filesystem ledger writes, removals and quarantine renames
	// go through (nil = the real filesystem). Fault drills plug in
	// faultinject.Injector.FS here.
	FS checkpoint.FS
	// DegradeAfter is how many consecutive ledger write failures switch
	// the coordinator into degraded-durability mode: scheduling and
	// mining continue byte-identically, but ledger persistence stops
	// until a probe write succeeds (default 3; negative disables).
	DegradeAfter int
	// DurabilityProbe is how often a degraded coordinator retries one
	// ledger write to see whether the disk recovered (default 15s).
	DurabilityProbe time.Duration
	// StorageRetention is the age beyond which stale ledgers, quarantined
	// files and .tmp staging files in LedgerDir are reclaimed by
	// StorageGC (0 = keep forever).
	StorageRetention time.Duration
	// Client performs the shard dispatches (default http.DefaultClient;
	// per-attempt contexts carry the timeout, so the client needs none).
	Client *http.Client
	// Secret, when set, authenticates the cluster control plane: the
	// coordinator sends it on every shard dispatch and requires it on
	// /cluster/register. Empty leaves the endpoints open — acceptable
	// only on a trusted network, since a registered URL receives the
	// full job database and its answers are folded into results.
	Secret string
	// Faults arms the coordinator-side injection points and is forwarded
	// to local fallback runs.
	Faults *faultinject.Injector
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
	// Obs is the shared observability handle (nil gets a private one).
	Obs *obs.Observer
}

type peer struct {
	url      string
	static   bool
	lastSeen time.Time
}

// Coordinator splits shardable jobs into first-level-partition shards,
// dispatches them to workers, reschedules failures from their
// checkpoints, and assembles the byte-identical result locally. Its
// Mine method is shaped to plug into jobs.Config.Mine.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	peers    map[string]*peer
	next     int // round-robin cursor over the sorted live peer list
	breakers map[string]*breaker

	obs            *obs.Observer
	shards         map[string]*obs.Counter // state -> counter
	hedges         map[string]*obs.Counter // outcome -> counter
	breakerTrans   map[string]*obs.Counter // destination state -> counter
	expired        *obs.Counter
	ledgerWrites   *obs.Counter
	ledgerFailures *obs.Counter
	ledgerResumed  *obs.Counter
	quarantined    *obs.Counter // disc_storage_quarantined_total{kind="ledger"}
	ledgerDur      *obs.Histogram
	shardDur       *obs.Histogram
	workerLat      map[string]*obs.Histogram // worker url -> latency histogram

	// Durability state: consecutive ledger write failures and the
	// degraded-durability latch. dmu is a leaf lock — never held while
	// taking c.mu or calling into the registry — because the
	// disc_storage_degraded gauge reads it at render time.
	dmu         sync.Mutex
	consecFails int
	degraded    bool
	lastProbe   time.Time
}

// New starts a coordinator over the statically configured peers.
func New(cfg Config) *Coordinator {
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 5 * time.Minute
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.HeartbeatTTL <= 0 {
		cfg.HeartbeatTTL = 30 * time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = 3
	}
	if cfg.BreakerMaxBackoff <= 0 {
		cfg.BreakerMaxBackoff = 2 * time.Minute
	}
	if cfg.HedgeMinDelay <= 0 {
		cfg.HedgeMinDelay = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.FS == nil {
		cfg.FS = checkpoint.OS
	}
	if cfg.DegradeAfter == 0 {
		cfg.DegradeAfter = 3
	}
	if cfg.DurabilityProbe <= 0 {
		cfg.DurabilityProbe = 15 * time.Second
	}
	o := cfg.Obs
	if o == nil {
		o = obs.NewObserver()
	}
	c := &Coordinator{cfg: cfg, peers: map[string]*peer{}, obs: o,
		breakers:  map[string]*breaker{},
		workerLat: map[string]*obs.Histogram{}}
	for _, u := range cfg.Peers {
		c.peers[u] = &peer{url: u, static: true}
	}
	r := o.Registry
	c.shards = map[string]*obs.Counter{}
	for _, state := range []string{"done", "failed", "retried", "local", "resumed"} {
		c.shards[state] = r.Counter("disc_cluster_shards_total",
			"Shard dispatch outcomes: done (a worker finished it), retried (an attempt failed and the shard was rescheduled), local (workers exhausted, mined by the coordinator), resumed (restored as done from a persisted ledger), failed (gave up).",
			obs.Label{Key: "state", Value: state})
	}
	c.hedges = map[string]*obs.Counter{}
	for _, outcome := range []string{"launched", "won", "primary"} {
		c.hedges[outcome] = r.Counter("disc_cluster_hedges_total",
			"Hedged shard dispatches: launched (a speculative second attempt was sent), won (the hedge's reply was used), primary (the primary still won the race).",
			obs.Label{Key: "outcome", Value: outcome})
	}
	c.breakerTrans = map[string]*obs.Counter{}
	for _, state := range []string{"closed", "half-open", "open"} {
		c.breakerTrans[state] = r.Counter("disc_cluster_breaker_transitions_total",
			"Circuit-breaker state transitions, by destination state.",
			obs.Label{Key: "to", Value: state})
	}
	c.expired = r.Counter("disc_cluster_expired_dispatches_total",
		"Dispatch attempts canceled because the worker's heartbeat TTL expired while it held the shard.")
	c.ledgerWrites = r.Counter("disc_cluster_ledger_writes_total",
		"Durable shard-ledger writes (one per shard state transition).")
	c.ledgerFailures = r.Counter("disc_cluster_ledger_write_failures_total",
		"Durable shard-ledger writes that failed (disk full, torn write, sync error).")
	c.ledgerResumed = r.Counter("disc_cluster_ledger_resumed_shards_total",
		"Shards restored as already done from a persisted shard ledger after a coordinator restart.")
	c.quarantined = r.Counter("disc_storage_quarantined_total",
		"Durable-state files quarantined after failing CRC or decode verification, by kind.",
		obs.Label{Key: "kind", Value: checkpoint.KindLedger})
	r.GaugeFunc("disc_storage_degraded",
		"1 while durability is degraded (checkpoint writes suspended after repeated failures), by component.",
		func() float64 {
			if c.DegradedDurability() {
				return 1
			}
			return 0
		}, obs.Label{Key: "component", Value: "cluster"})
	c.ledgerDur = r.Histogram("disc_cluster_ledger_write_seconds",
		"Latency of one atomic shard-ledger write.", obs.DurationBuckets)
	c.shardDur = r.Histogram("disc_cluster_shard_duration_seconds",
		"Wall time of one shard from first dispatch to completion.", obs.DurationBuckets)
	r.GaugeFunc("disc_cluster_workers", "Workers currently eligible for shard dispatch.",
		func() float64 { return float64(len(c.Workers())) })
	return c
}

// Register makes a worker eligible for dispatch (idempotent; also the
// heartbeat — each call refreshes the TTL).
func (c *Coordinator) Register(url string) {
	c.mu.Lock()
	p, ok := c.peers[url]
	if !ok {
		p = &peer{url: url}
		c.peers[url] = p
		c.cfg.Logf("cluster: worker %s registered", url)
	}
	p.lastSeen = time.Now()
	c.mu.Unlock()
	c.pruneExpired()
}

// pruneGraceFactor is how many heartbeat TTLs a self-registered worker
// stays known (though ineligible) after its last heartbeat before its
// peer entry, breaker and per-worker metric series are removed. The
// grace beyond the eligibility TTL keeps watchExpiry's in-flight
// cancellation the first responder to a death; pruning is the janitor
// behind it.
const pruneGraceFactor = 2

// pruneExpired removes self-registered workers whose heartbeat lapsed
// more than pruneGraceFactor×HeartbeatTTL ago: the peer entry, its
// circuit breaker, its latency-histogram cache, and — the part that
// keeps a churning fleet's registry cardinality bounded — its
// disc_cluster_breaker_state and disc_cluster_worker_latency_seconds
// series. A pruned worker that comes back simply re-registers and gets
// fresh ones.
//
// Called from the mutation paths (Register, pickWorker), never from
// Workers(): the disc_cluster_workers gauge invokes Workers() while
// the registry lock is held, and Unregister takes that same lock.
// Registry calls happen strictly after c.mu is released (the
// registry→c.mu lock order is fixed by the render path; see latency).
func (c *Coordinator) pruneExpired() {
	now := time.Now()
	grace := pruneGraceFactor * c.cfg.HeartbeatTTL
	var victims []string
	c.mu.Lock()
	for url, p := range c.peers {
		if p.static || now.Sub(p.lastSeen) < grace {
			continue
		}
		delete(c.peers, url)
		delete(c.breakers, url)
		delete(c.workerLat, url)
		victims = append(victims, url)
	}
	c.mu.Unlock()
	for _, url := range victims {
		c.obs.Registry.Unregister("disc_cluster_breaker_state",
			obs.Label{Key: "worker", Value: url})
		c.obs.Registry.Unregister("disc_cluster_worker_latency_seconds",
			obs.Label{Key: "worker", Value: url})
		c.cfg.Logf("cluster: worker %s pruned after %s without a heartbeat; its metric series are unregistered", url, grace)
	}
}

// HandleRegister is POST /cluster/register: a worker announcing itself,
// repeated periodically as a heartbeat. With a configured Secret the
// request must prove fleet membership — an unauthenticated registration
// would otherwise hand the full job database to an arbitrary URL and
// trust the partitions it returns.
func (c *Coordinator) HandleRegister(rw http.ResponseWriter, r *http.Request) {
	if !authorized(c.cfg.Secret, r) {
		writeJSON(rw, http.StatusUnauthorized,
			ShardResponse{Error: &jobs.WireError{Kind: "auth", Message: "missing or wrong cluster secret"}})
		return
	}
	var reg registration
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<16)).Decode(&reg); err != nil || reg.URL == "" {
		writeJSON(rw, http.StatusBadRequest,
			ShardResponse{Error: &jobs.WireError{Kind: "input", Message: "registration needs a url"}})
		return
	}
	c.Register(reg.URL)
	rw.WriteHeader(http.StatusNoContent)
}

// Workers lists the currently eligible worker URLs, sorted: static peers
// always, self-registered ones while their heartbeat TTL holds.
func (c *Coordinator) Workers() []string {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, p := range c.peers {
		if p.static || now.Sub(p.lastSeen) < c.cfg.HeartbeatTTL {
			out = append(out, p.url)
		}
	}
	sort.Strings(out)
	return out
}

// pickWorker selects the next eligible worker round-robin, skipping ones
// already tried for this shard attempt cycle and ones whose circuit
// breaker denies dispatch. Returns "" when none qualifies.
func (c *Coordinator) pickWorker(tried map[string]bool) string {
	c.pruneExpired()
	live := c.Workers()
	if len(live) == 0 {
		return ""
	}
	now := time.Now()
	// Resolve breakers before taking c.mu: creation touches the registry,
	// which must never nest inside c.mu (see latency). The breaker mutex
	// itself is a leaf lock, safe to take under c.mu during selection.
	brs := make(map[string]*breaker, len(live))
	for _, u := range live {
		if !tried[u] {
			brs[u] = c.breakerFor(u)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The first pass honors breakers; the second ignores them — a tripped
	// worker is still better than none when every circuit is open.
	for _, honor := range []bool{true, false} {
		for i := 0; i < len(live); i++ {
			u := live[(c.next+i)%len(live)]
			if tried[u] {
				continue
			}
			if honor && !brs[u].allow(now) {
				continue
			}
			c.next = (c.next + i + 1) % len(live)
			return u
		}
	}
	return ""
}

// breakerFor returns the worker's circuit breaker, creating it (and its
// state gauge) on the worker's first contact. Creation follows the
// latency() pattern: the registry call happens outside c.mu because the
// registry's render paths invoke gauge fns that take c.mu. The breaker's
// onChange hook touches only pre-created counters and the log, never a
// lock above it.
func (c *Coordinator) breakerFor(url string) *breaker {
	c.mu.Lock()
	b, ok := c.breakers[url]
	c.mu.Unlock()
	if ok {
		return b
	}
	nb := newBreaker(c.cfg.BreakerFailures, c.cfg.Cooldown, c.cfg.BreakerMaxBackoff)
	nb.onChange = func(from, to breakerState) {
		c.breakerTrans[to.String()].Inc()
		c.cfg.Logf("cluster: breaker for %s: %s -> %s", url, from, to)
	}
	c.mu.Lock()
	if cur, ok := c.breakers[url]; ok {
		b = cur
	} else {
		c.breakers[url] = nb
		b = nb
	}
	c.mu.Unlock()
	if b == nb {
		c.obs.Registry.GaugeFunc("disc_cluster_breaker_state",
			"Per-worker circuit breaker state: 0 closed, 1 half-open, 2 open.",
			func() float64 { return float64(nb.current()) },
			obs.Label{Key: "worker", Value: url})
	}
	return b
}

// latency returns the per-worker dispatch latency histogram, creating it
// on the worker's first dispatch.
//
// The registry call must happen outside c.mu: the registry's render
// paths (WriteText/Snapshot) hold the registry lock while invoking the
// disc_cluster_workers gauge fn, which takes c.mu — creating the
// histogram while holding c.mu takes the two locks in the opposite
// order and deadlocks against a concurrent /metrics scrape. Registry
// instruments are get-or-create by (name, labels), so two racing
// creators receive the same histogram and the cache store is idempotent.
func (c *Coordinator) latency(url string) *obs.Histogram {
	c.mu.Lock()
	h, ok := c.workerLat[url]
	c.mu.Unlock()
	if ok {
		return h
	}
	h = c.obs.Registry.Histogram("disc_cluster_worker_latency_seconds",
		"Shard dispatch round-trip latency, by worker.",
		obs.DurationBuckets, obs.Label{Key: "worker", Value: url})
	c.mu.Lock()
	c.workerLat[url] = h
	c.mu.Unlock()
	return h
}

// shardAcc accumulates one shard's completed partitions across dispatch
// attempts, deduplicating by partition key (a retried shard re-ships
// what its predecessor completed, and a hedge race could deliver the
// same partition twice). Owned by the shard's runShard goroutine; never
// shared.
type shardAcc struct {
	seen  map[string]bool
	parts []checkpoint.Partition
}

// fold merges freshly received partitions, recording each new one into
// the job's checkpointer (so periodic snapshots persist cluster
// progress). Returns how many were new.
func (a *shardAcc) fold(parts []checkpoint.Partition, cp *core.Checkpointer) int {
	fresh := 0
	for _, p := range parts {
		k := p.Key.Key()
		if a.seen[k] {
			continue
		}
		a.seen[k] = true
		a.parts = append(a.parts, p)
		if cp != nil {
			cp.RecordPartition(p)
		}
		fresh++
	}
	return fresh
}

// snapshotParts copies the accumulated partitions for handoff to the
// ledger (whose writer goroutine must not alias the accumulator).
func snapshotParts(a *shardAcc) []checkpoint.Partition {
	return append([]checkpoint.Partition(nil), a.parts...)
}

// jobRun carries the per-job scheduling state shared by the shard
// goroutines: the durable ledger handle, the hedge budget, and the
// injected-crash switch.
type jobRun struct {
	led        *jobLedger
	hedgesLeft atomic.Int64
	abort      context.CancelFunc
	crashed    atomic.Bool
}

func (r *jobRun) takeHedge() bool { return r.hedgesLeft.Add(-1) >= 0 }
func (r *jobRun) giveHedge()      { r.hedgesLeft.Add(1) }

// crashPoint fires the CoordinatorCrash drill at a ledger transition
// site: freeze the ledger at its persisted state, cancel the job's
// other shard goroutines, and surface ErrCoordinatorCrash — the closest
// an in-process test can get to kill -9 between two scheduler actions.
func (c *Coordinator) crashPoint(run *jobRun, site string) error {
	if run.led == nil || !c.cfg.Faults.Fire(faultinject.CoordinatorCrash, site) {
		return nil
	}
	c.cfg.Logf("cluster: injected coordinator crash at %s", site)
	run.crashed.Store(true)
	run.led.kill()
	run.abort()
	return ErrCoordinatorCrash
}

// Mine distributes one job across the fleet and returns a result
// byte-identical to a local run. It has the jobs.Config.Mine shape: the
// manager keeps admission, dedup, deadlines, containment and
// checkpoint persistence; this replaces only the mining itself.
//
// Non-shardable algorithms, resource-budgeted jobs and an empty fleet
// fall back to an ordinary local run. Budgets (MaxPatterns/MaxMemBytes)
// are job-global counters: a sharded run would make each worker enforce
// the full budget against its own shard, letting a clustered job mine
// up to shards×budget or fail where a local run would not — so budgeted
// jobs keep the byte-identical contract by never sharding. Otherwise
// the job splits into shards; each shard is dispatched with the shard's
// accumulated partitions as resume state, failed or timed-out attempts
// are rescheduled (costing only un-checkpointed work), and a shard that
// exhausts its retries is mined locally. The final local assembly run
// restores every collected partition and merges them in ascending key
// order — the same merge an uninterrupted local run performs.
//
// With LedgerDir configured every shard state transition is persisted
// first, so a coordinator killed at any instant restarts, finds the
// ledger, and (via Recover or an identical resubmission) re-runs only
// the unfinished shards — still byte-identical, because done shards'
// partitions are restored from the ledger and the assembly merge is
// order-independent of who mined what.
func (c *Coordinator) Mine(ctx context.Context, req jobs.Request, cp *core.Checkpointer) (*mining.Result, error) {
	workers := c.Workers()
	budgeted := req.Opts.MaxPatterns > 0 || req.Opts.MaxMemBytes > 0
	if !shardable(req.Algo) || budgeted || len(workers) == 0 {
		switch {
		case !shardable(req.Algo):
			// Quiet: the baselines always run locally, nothing to report.
		case budgeted:
			c.cfg.Logf("cluster: job has a resource budget, mining %s locally (budgets are job-global; shards would each enforce their own)", req.Algo)
		default:
			c.cfg.Logf("cluster: no live workers, mining %s locally", req.Algo)
		}
		res, err := c.mineLocal(ctx, req, cp, nil)
		if err == nil && c.cfg.LedgerDir != "" && shardable(req.Algo) {
			// A ledger left behind by a clustered incarnation of this job
			// is satisfied by the local result; retire it so restarts stop
			// resubmitting a finished job.
			fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)
			if c.cfg.FS.Remove(LedgerPath(c.cfg.LedgerDir, fp)) == nil {
				c.cfg.Logf("cluster: job %016x finished locally; its shard ledger is retired", fp)
			}
		}
		return res, err
	}
	shards := c.cfg.Shards
	if shards <= 0 {
		shards = len(workers)
	}

	var dbText bytes.Buffer
	if err := data.Write(&dbText, req.DB, data.Native); err != nil {
		return nil, fmt.Errorf("cluster: encoding database: %w", err)
	}
	fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)

	// mctx lets an injected coordinator crash stop the job's other shard
	// goroutines the way a real process death would.
	mctx, mcancel := context.WithCancel(ctx)
	defer mcancel()
	run := &jobRun{abort: mcancel}
	var doneShards map[int]bool
	run.led, shards, doneShards = c.openLedger(req, fp, shards, dbText.String())
	budget := int64(c.cfg.HedgeBudget)
	if budget == 0 {
		budget = int64(shards)
	}
	run.hedgesLeft.Store(budget)

	// Pre-seed each shard's accumulator with the partitions a previous
	// incarnation of this job already collected — from the job checkpoint
	// (manager-level crash-resume) and from the ledger's per-shard
	// partition snapshots (coordinator-level crash-resume). Those shards'
	// workers restore them instead of re-mining.
	accs := make([]*shardAcc, shards)
	for i := range accs {
		accs[i] = &shardAcc{seen: map[string]bool{}}
	}
	var restored []checkpoint.Partition
	if cp != nil {
		restored = cp.RestoredPartitions()
	}
	for _, p := range restored {
		a := accs[core.ShardOf(p.Key, shards)]
		k := p.Key.Key()
		if !a.seen[k] {
			a.seen[k] = true
			a.parts = append(a.parts, p)
		}
	}
	for i, parts := range run.led.shardParts() {
		accs[i].fold(parts, cp)
	}

	// No budgets travel with the shards: budgeted jobs took the local
	// path above, so request budgets here are always zero and workers
	// apply only their own protective limits.
	base := ShardRequest{
		Algo: req.Algo, MinSup: req.MinSup,
		BiLevel: req.Opts.BiLevel, Levels: req.Opts.Levels, Gamma: req.Opts.Gamma,
		Workers: req.Opts.Workers,
		Shards:  shards, Fingerprint: fmt.Sprintf("%016x", fp), DB: dbText.String(),
	}

	errs := make([]error, shards)
	var wg sync.WaitGroup
	for idx := 0; idx < shards; idx++ {
		if doneShards[idx] {
			c.shards["resumed"].Inc()
			continue
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			errs[idx] = c.runShard(mctx, base, idx, fp, accs[idx], req, cp, run)
		}(idx)
	}
	wg.Wait()
	if run.crashed.Load() {
		return nil, ErrCoordinatorCrash
	}
	for idx, err := range errs {
		if err != nil {
			c.shards["failed"].Inc()
			return nil, fmt.Errorf("cluster: shard %d/%d: %w", idx, shards, err)
		}
	}

	// Assembly: restore every collected partition locally. The level-0
	// scan and the ascending-key merge are all that executes here, and
	// the engine self-heals any partition nobody shipped by mining it.
	var all []checkpoint.Partition
	for _, a := range accs {
		all = append(all, a.parts...)
	}
	asm := core.ResumeFrom(&checkpoint.File{
		Algo: req.Algo, Fingerprint: fp, MinSup: req.MinSup, Partitions: all,
	})
	res, err := c.mineWith(ctx, req, asm, nil)
	if err != nil {
		return nil, err
	}
	run.led.retire()
	c.cfg.Logf("cluster: job %016x assembled from %d shards, %d partitions", fp, shards, len(all))
	return res, nil
}

// runShard drives one shard to completion: dispatch (hedged when the
// attempt drags), fold the returned checkpoint, reschedule on failure,
// and fall back to a local shard run when workers are exhausted. Every
// state transition lands in the job ledger before the next action.
func (c *Coordinator) runShard(ctx context.Context, base ShardRequest, idx int, fp uint64,
	acc *shardAcc, req jobs.Request, cp *core.Checkpointer, run *jobRun) error {
	start := time.Now()
	// The shard span brackets everything this shard costs the job —
	// every dispatch attempt, hedge race and reschedule — and is the
	// parent the winning worker's spans hang under in the assembled
	// timeline. Scheduling decisions land as structured events on the
	// job's flight recorder.
	tc := req.Trace
	sp := c.obs.WithTrace(tc, req.ParentSpan).Span("shard")
	defer sp.End()
	shard := fmt.Sprint(idx)
	tried := map[string]bool{}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		url := c.pickWorker(tried)
		if url == "" {
			// Every live worker tried this cycle; start over (the failed
			// ones may have recovered) rather than giving up early.
			tried = map[string]bool{}
			if url = c.pickWorker(tried); url == "" {
				break // fleet emptied under us
			}
		}
		tried[url] = true
		run.led.assign(idx, url)
		tc.Event("shard-assign", sp.ID(), map[string]string{
			"shard": shard, "worker": url, "attempt": fmt.Sprint(attempt + 1)})
		if err := c.crashPoint(run, fmt.Sprintf("assign-%d", idx)); err != nil {
			return err
		}

		winner, err := c.attemptShard(ctx, base, idx, fp, acc, cp, url, tried, run, tc, sp.ID())
		if err != nil {
			c.shards["retried"].Inc()
			run.led.resolve(idx, winner, outcomeFor(err), snapshotParts(acc))
			tc.Event("shard-resolve", sp.ID(), map[string]string{
				"shard": shard, "worker": winner, "outcome": outcomeFor(err)})
			c.cfg.Logf("cluster: shard %d/%d attempt %d on %s failed: %v (rescheduling from %d partitions)",
				idx, base.Shards, attempt+1, winner, err, len(acc.parts))
			lastErr = err
			continue
		}
		run.led.done(idx, winner, snapshotParts(acc))
		tc.Event("shard-resolve", sp.ID(), map[string]string{
			"shard": shard, "worker": winner, "outcome": "done"})
		c.shards["done"].Inc()
		c.shardDur.Observe(time.Since(start).Seconds())
		if err := c.crashPoint(run, fmt.Sprintf("done-%d", idx)); err != nil {
			return err
		}
		return nil
	}

	// Workers exhausted: mine the shard here, resuming from whatever the
	// fleet completed. Correctness never depends on the fleet.
	c.cfg.Logf("cluster: shard %d/%d exhausted retries (last: %v), mining locally", idx, base.Shards, lastErr)
	run.led.assign(idx, "(local)")
	tc.Event("shard-assign", sp.ID(), map[string]string{
		"shard": shard, "worker": "(local)", "attempt": "fallback"})
	local := core.ResumeFrom(&checkpoint.File{
		Algo: req.Algo, Fingerprint: fp, MinSup: req.MinSup, Partitions: acc.parts,
	})
	spec := &core.ShardSpec{Index: idx, Count: base.Shards}
	// The local fallback's engine spans parent under this shard's span,
	// not the job root — the timeline should show the shard absorbing
	// the cost.
	lreq := req
	lreq.ParentSpan = sp.ID()
	if _, err := c.mineWith(ctx, lreq, local, spec); err != nil {
		return err
	}
	acc.fold(local.File(req.Algo, req.MinSup, fp).Partitions, cp)
	run.led.done(idx, "(local)", snapshotParts(acc))
	tc.Event("shard-resolve", sp.ID(), map[string]string{
		"shard": shard, "worker": "(local)", "outcome": "done"})
	c.shards["local"].Inc()
	c.shardDur.Observe(time.Since(start).Seconds())
	return nil
}

// outcomeFor condenses an attempt error into a whitespace-free ledger
// token for the shard's attempt history.
func outcomeFor(err error) string {
	var we *jobs.WireError
	if errors.As(err, &we) {
		return "worker-" + we.Kind
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return "timeout-or-canceled"
	}
	return "transport-error"
}

// attemptShard drives one scheduling attempt of one shard: the primary
// dispatch, plus — once the attempt outlives the fleet's latency
// quantile and budget allows — one hedged dispatch to another worker.
// The first valid reply wins, the loser's context is canceled, and only
// the winner's partitions count (the accumulator's key dedup makes even
// a racing double delivery idempotent). Partial checkpoints from failed
// replies fold into acc so a reschedule resumes, and each reply settles
// the worker's circuit breaker. Returns the worker whose reply won — or,
// with the error, the worker whose failure is being reported.
func (c *Coordinator) attemptShard(ctx context.Context, base ShardRequest, idx int, fp uint64,
	acc *shardAcc, cp *core.Checkpointer, primary string, tried map[string]bool, run *jobRun,
	tc *obs.TraceContext, spid obs.SpanID) (string, error) {
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll() // the loser of a hedge race is canceled here

	type reply struct {
		url   string
		parts []checkpoint.Partition
		spans []obs.SpanRecord
		err   error
		kind  failKind
	}
	// Capacity 2: both attempts can always deliver without a reader — the
	// loser's reply is simply never received, and no goroutine leaks.
	replies := make(chan reply, 2)
	launch := func(url string) {
		// The resume snapshot is rendered here, in the select-loop
		// goroutine, because acc may gain partitions between launches.
		resume, err := encodeResume(base, idx, fp, acc)
		if err != nil {
			replies <- reply{url: url, err: err, kind: failWorker}
			return
		}
		go func() {
			resp, err := c.dispatch(actx, url, base, idx, resume, tc, spid)
			if err != nil {
				replies <- reply{url: url, err: err, kind: failTransport}
				return
			}
			parts, err := vetResponse(resp, url, fp)
			replies <- reply{url: url, parts: parts, spans: resp.Spans, err: err, kind: failWorker}
		}()
	}
	launch(primary)
	inflight := 1
	hedgedTo := ""

	var hedgeC <-chan time.Time
	if delay, ok := c.hedgeDelay(run); ok {
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	firstURL := primary
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			if !run.takeHedge() {
				run.giveHedge()
				continue
			}
			url := c.pickWorker(tried)
			if url == "" {
				run.giveHedge()
				continue
			}
			tried[url] = true
			hedgedTo = url
			inflight++
			c.hedges["launched"].Inc()
			tc.Event("shard-hedge", spid, map[string]string{
				"shard": fmt.Sprint(idx), "worker": url, "primary": primary})
			c.cfg.Logf("cluster: shard %d/%d hedged to %s (%s is past the fleet's latency quantile)",
				idx, base.Shards, url, primary)
			launch(url)
		case r := <-replies:
			inflight--
			// Even a failed reply may carry a partial checkpoint — and the
			// worker-side span records of the attempt, which belong in the
			// timeline whether the attempt won or not.
			if len(r.parts) > 0 {
				acc.fold(r.parts, cp)
			}
			tc.AddRemoteSpans(r.spans)
			if r.err == nil {
				br := c.breakerFor(r.url)
				pre := br.current()
				br.onSuccess()
				c.noteBreaker(tc, spid, r.url, pre, br.current())
				switch {
				case hedgedTo == "":
				case r.url == hedgedTo:
					c.hedges["won"].Inc()
				default:
					c.hedges["primary"].Inc()
				}
				return r.url, nil
			}
			br := c.breakerFor(r.url)
			pre := br.current()
			br.onFailure(r.kind, time.Now())
			c.noteBreaker(tc, spid, r.url, pre, br.current())
			if firstErr == nil {
				firstErr, firstURL = r.err, r.url
			}
			if inflight == 0 {
				return firstURL, firstErr
			}
			c.cfg.Logf("cluster: shard %d/%d attempt on %s failed (%v); awaiting the hedge",
				idx, base.Shards, r.url, r.err)
		case <-ctx.Done():
			return primary, ctx.Err()
		}
	}
}

// noteBreaker records a breaker state change caused by one settled
// reply as a trace event. The before/after read brackets only this
// caller's settle call; a concurrent transition simply lands as its own
// caller's event.
func (c *Coordinator) noteBreaker(tc *obs.TraceContext, spid obs.SpanID, url string, from, to breakerState) {
	if tc == nil || from == to {
		return
	}
	tc.Event("breaker-transition", spid, map[string]string{
		"worker": url, "from": from.String(), "to": to.String()})
}

// hedgeDelay decides whether this attempt may hedge and after how long:
// the configured quantile over the union of every worker's observed
// dispatch latencies, floored by HedgeMinDelay.
func (c *Coordinator) hedgeDelay(run *jobRun) (time.Duration, bool) {
	if c.cfg.HedgeQuantile <= 0 || run.hedgesLeft.Load() <= 0 {
		return 0, false
	}
	c.mu.Lock()
	hs := make([]*obs.Histogram, 0, len(c.workerLat))
	for _, h := range c.workerLat {
		hs = append(hs, h)
	}
	c.mu.Unlock()
	d := time.Duration(obs.QuantileAcross(c.cfg.HedgeQuantile, hs...) * float64(time.Second))
	if d < c.cfg.HedgeMinDelay {
		d = c.cfg.HedgeMinDelay
	}
	return d, true
}

// vetResponse validates one worker reply. It returns the partitions of
// the reply's checkpoint (even alongside a typed worker error — partial
// progress is progress) and the error the attempt should report: the
// worker's typed error, or a checkpoint-validation failure on a success
// response whose work never actually arrived (silently counting that
// done would quietly degrade the shard to local re-mining at assembly).
func vetResponse(resp *ShardResponse, url string, fp uint64) ([]checkpoint.Partition, error) {
	var parts []checkpoint.Partition
	var cpErr error
	if resp.Checkpoint != "" {
		switch f, derr := decodeCheckpoint(resp.Checkpoint); {
		case derr != nil:
			cpErr = fmt.Errorf("undecodable checkpoint from %s: %w", url, derr)
		case f.Fingerprint != fp:
			cpErr = fmt.Errorf("checkpoint from %s has fingerprint %016x, job is %016x", url, f.Fingerprint, fp)
		default:
			parts = f.Partitions
		}
	} else if resp.Error == nil {
		cpErr = fmt.Errorf("success response from %s carried no checkpoint", url)
	}
	if resp.Error != nil {
		return parts, resp.Error
	}
	return parts, cpErr
}

// encodeResume renders the shard's accumulated partitions as the
// dispatch's resume checkpoint ("" when there is nothing to resume).
func encodeResume(base ShardRequest, idx int, fp uint64, acc *shardAcc) (string, error) {
	if len(acc.parts) == 0 {
		return "", nil
	}
	return encodeCheckpoint(&checkpoint.File{
		Algo: base.Algo, Fingerprint: fp, MinSup: base.MinSup,
		Shard: idx, ShardCount: base.Shards, Partitions: acc.parts,
	})
}

// dispatch performs one shard attempt against one worker. A bound
// trace rides along as headers: the trace ID and the coordinator-side
// shard span the worker should parent its spans under.
func (c *Coordinator) dispatch(ctx context.Context, url string, base ShardRequest,
	idx int, resume string, tc *obs.TraceContext, spid obs.SpanID) (*ShardResponse, error) {
	sreq := base
	sreq.Shard = idx
	sreq.Resume = resume
	body, err := json.Marshal(&sreq)
	if err != nil {
		return nil, err
	}

	actx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	stop := c.watchExpiry(actx, cancel, url)
	defer stop()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, url+"/cluster/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	setSecret(hreq, c.cfg.Secret)
	if tc != nil {
		hreq.Header.Set(traceIDHeader, tc.TraceID().String())
		hreq.Header.Set(parentSpanHeader, spid.String())
	}
	start := time.Now()
	hres, err := c.cfg.Client.Do(hreq)
	c.latency(url).Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	var resp ShardResponse
	if err := json.NewDecoder(io.LimitReader(hres.Body, 1<<30)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("decoding worker response (HTTP %d): %w", hres.StatusCode, err)
	}
	if resp.Error == nil && hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker answered HTTP %d", hres.StatusCode)
	}
	return &resp, nil
}

// watchExpiry cancels an in-flight dispatch the moment the worker's
// heartbeat TTL expires: a dead worker's shard must be rescheduled
// immediately on expiry, not after the full shard timeout also passes.
// Static peers have no heartbeat and are never expired. The returned
// stop function ends the watch on the dispatch's normal completion.
func (c *Coordinator) watchExpiry(ctx context.Context, cancel context.CancelFunc, url string) func() {
	c.mu.Lock()
	p, ok := c.peers[url]
	static := !ok || p.static
	c.mu.Unlock()
	if static {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	stop := func() { once.Do(func() { close(done) }) }
	go func() {
		for {
			c.mu.Lock()
			p, ok := c.peers[url]
			var expiry time.Time
			if ok {
				expiry = p.lastSeen.Add(c.cfg.HeartbeatTTL)
			}
			c.mu.Unlock()
			if !ok {
				// The peer was pruned out from under the dispatch: its
				// heartbeat lapsed past the prune grace, which implies the
				// TTL expired too — cancel exactly as an observed expiry
				// would have.
				c.expired.Inc()
				c.cfg.Logf("cluster: worker %s pruned while holding a shard; canceling the attempt", url)
				cancel()
				return
			}
			d := time.Until(expiry)
			if d <= 0 {
				c.expired.Inc()
				c.cfg.Logf("cluster: worker %s heartbeat TTL expired while holding a shard; canceling the attempt", url)
				cancel()
				return
			}
			// Re-check at the projected expiry: a heartbeat landing in the
			// meantime pushes it out and the timer re-arms.
			t := time.NewTimer(d + 5*time.Millisecond)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				return
			case <-ctx.Done():
				t.Stop()
				return
			}
		}
	}()
	return stop
}

// mineLocal is the no-fleet path: exactly what the manager's default
// mining would have done.
func (c *Coordinator) mineLocal(ctx context.Context, req jobs.Request, cp *core.Checkpointer, spec *core.ShardSpec) (*mining.Result, error) {
	return c.mineWith(ctx, req, cp, spec)
}

// mineWith runs the job's algorithm here with the given checkpointer and
// optional shard scope. The run's engine spans carry the request's
// trace (when the manager minted one), parented under whatever span the
// request names — the job root for local fallbacks and assembly, the
// shard span for a shard's local re-mine.
func (c *Coordinator) mineWith(ctx context.Context, req jobs.Request, cp *core.Checkpointer, spec *core.ShardSpec) (*mining.Result, error) {
	opts := req.Opts
	opts.Checkpoint = cp
	opts.Shard = spec
	opts.Faults = c.cfg.Faults
	opts.Obs = c.obs.WithTrace(req.Trace, req.ParentSpan)
	miner, err := localMinerFor(req.Algo, opts)
	if err != nil {
		return nil, err
	}
	return mining.AsContextMiner(miner).MineContext(ctx, req.DB, req.MinSup)
}

// localMinerFor builds the algorithm for coordinator-side runs (the
// disc-all family natively, everything else through the registry — the
// non-shardable baselines reach here on the local fallback path).
func localMinerFor(algo string, opts core.Options) (mining.Miner, error) {
	if shardable(algo) {
		return minerFor(algo, opts)
	}
	return mining.NewRegistered(algo)
}

// Heartbeat runs a worker-side registration loop: announce url to the
// coordinator at coordURL every interval until ctx ends, proving fleet
// membership with secret (empty when the fleet runs open). Errors are
// logged and retried — a worker outliving a coordinator restart
// re-registers on the next beat.
func Heartbeat(ctx context.Context, client *http.Client, coordURL, url, secret string,
	interval time.Duration, logf func(string, ...any)) {
	if client == nil {
		client = http.DefaultClient
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	beat := func() {
		body, _ := json.Marshal(registration{URL: url})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordURL+"/cluster/register", bytes.NewReader(body))
		if err != nil {
			logf("cluster: heartbeat: %v", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		setSecret(req, secret)
		res, err := client.Do(req)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				logf("cluster: heartbeat to %s failed: %v", coordURL, err)
			}
			return
		}
		if res.StatusCode == http.StatusUnauthorized {
			logf("cluster: heartbeat to %s rejected: wrong or missing cluster secret", coordURL)
		}
		res.Body.Close()
	}
	beat()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			beat()
		case <-ctx.Done():
			return
		}
	}
}

// Shardable reports whether jobs for algo can be distributed; exported
// for the serving binary's status output.
func Shardable(algo string) bool { return shardable(algo) }

// ShardRetries reports how many shard attempts have been rescheduled so
// far — the observable the fault grids assert on when a worker is
// killed or dropped mid-shard.
func (c *Coordinator) ShardRetries() int { return int(c.shards["retried"].Value()) }

// HedgesLaunched reports how many speculative shard dispatches this
// coordinator has sent — the observable of the straggler-hedge drills.
func (c *Coordinator) HedgesLaunched() int { return int(c.hedges["launched"].Value()) }

// ExpiredDispatches reports how many in-flight dispatches were canceled
// by heartbeat-TTL expiry — the observable of the dead-worker drills.
func (c *Coordinator) ExpiredDispatches() int { return int(c.expired.Value()) }

// ResumedShards reports how many shards were restored as already done
// from a persisted shard ledger — the observable of the
// coordinator-restart drills.
func (c *Coordinator) ResumedShards() int { return int(c.ledgerResumed.Value()) }

// LedgerWriteFailures reports how many ledger writes have failed — the
// observable of the disk-fault drills.
func (c *Coordinator) LedgerWriteFailures() int { return int(c.ledgerFailures.Value()) }

// QuarantinedLedgers reports how many ledgers this coordinator has
// quarantined as undecodable.
func (c *Coordinator) QuarantinedLedgers() int { return int(c.quarantined.Value()) }

// DegradedDurability reports whether ledger persistence is currently
// degraded: repeated write failures suspended it and no probe write has
// succeeded yet. Mining is unaffected — results stay byte-identical —
// but a coordinator crash while degraded recovers from checkpoints
// instead of the ledger.
func (c *Coordinator) DegradedDurability() bool {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	return c.degraded
}

// durabilityAttempt reports whether a ledger write should be tried now:
// always while healthy, only at DurabilityProbe cadence while degraded.
func (c *Coordinator) durabilityAttempt() bool {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if !c.degraded {
		return true
	}
	if time.Since(c.lastProbe) < c.cfg.DurabilityProbe {
		return false
	}
	c.lastProbe = time.Now()
	return true
}

// durabilityFailed records one failed ledger write and latches
// degraded-durability mode after DegradeAfter consecutive failures.
func (c *Coordinator) durabilityFailed() {
	c.dmu.Lock()
	c.consecFails++
	trip := !c.degraded && c.cfg.DegradeAfter > 0 && c.consecFails >= c.cfg.DegradeAfter
	if trip {
		c.degraded = true
		c.lastProbe = time.Now()
	}
	n := c.consecFails
	c.dmu.Unlock()
	if trip {
		c.cfg.Logf("cluster: ledger durability degraded after %d consecutive write failures; mining continues, probing every %s", n, c.cfg.DurabilityProbe)
	}
}

// durabilityOK records one successful ledger write, re-arming
// durability if it was degraded.
func (c *Coordinator) durabilityOK() {
	c.dmu.Lock()
	rearmed := c.degraded
	c.degraded = false
	c.consecFails = 0
	c.dmu.Unlock()
	if rearmed {
		c.cfg.Logf("cluster: ledger durability re-armed, writes succeeding again")
	}
}

// StorageGC runs one scrub+sweep pass over LedgerDir: resting ledgers
// are re-verified (bit-rot is quarantined before a recovery would trip
// over it) and files past StorageRetention — stale ledgers, quarantined
// evidence, .tmp leftovers — are reclaimed. An active job's ledger is
// rewritten at every shard transition, so its mtime keeps it clear of
// any sane retention window. The serving binary calls this at startup
// (after Recover) and on its storage GC ticker.
func (c *Coordinator) StorageGC() {
	if c.cfg.LedgerDir == "" {
		return
	}
	r := c.obs.Registry
	s := &checkpoint.Sweeper{
		FS:             c.cfg.FS,
		Retention:      c.cfg.StorageRetention,
		MaxQuarantined: 32,
		Logf:           c.cfg.Logf,
		OnReclaim: func(kind string, files int, bytes int64) {
			r.Counter("disc_storage_reclaimed_files_total",
				"Durable-state files reclaimed by retention GC, by kind.",
				obs.Label{Key: "kind", Value: kind}).Add(int64(files))
			r.Counter("disc_storage_reclaimed_bytes_total",
				"Bytes reclaimed by retention GC, by kind.",
				obs.Label{Key: "kind", Value: kind}).Add(bytes)
		},
		OnQuarantine: func(kind string) {
			if kind == checkpoint.KindLedger {
				c.quarantined.Inc()
				return
			}
			r.Counter("disc_storage_quarantined_total",
				"Durable-state files quarantined after failing CRC or decode verification, by kind.",
				obs.Label{Key: "kind", Value: kind}).Inc()
		},
	}
	s.Scrub(c.cfg.LedgerDir)
	s.Sweep(c.cfg.LedgerDir)
}
