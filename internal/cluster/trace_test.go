package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/obs"
)

// fleetTimeline runs one job through a manager whose Mine hook is a
// two-worker coordinator fleet and returns the assembled timeline.
func fleetTimeline(t *testing.T, nodeA, nodeB string) *obs.Timeline {
	t.Helper()
	req := testReq(t, "disc-all")
	req.Opts.Workers = 1
	a := startWorker(t, WorkerConfig{Node: nodeA, TraceSeed: 1, MaxConcurrent: 8})
	b := startWorker(t, WorkerConfig{Node: nodeB, TraceSeed: 2, MaxConcurrent: 8})
	coord := New(Config{Peers: []string{a, b}, Shards: 2, ShardTimeout: time.Minute,
		HedgeQuantile: 0}) // hedging off: one dispatch per shard, a deterministic span set
	m := jobs.NewManager(jobs.Config{
		Workers:   1,
		Node:      "coordinator",
		TraceSeed: 99,
		Mine: func(ctx context.Context, r jobs.Request, cp *core.Checkpointer) (*mining.Result, error) {
			return coord.Mine(ctx, r, cp)
		},
	})
	defer m.Drain(context.Background())
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	if _, ok := j.Result(); !ok {
		t.Fatalf("job failed: %v", j.Status().Err)
	}
	tl, err := m.Timeline(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// TestFleetTimelineAcceptance is the acceptance contract of the
// tracing tentpole: one job sharded over a two-worker in-process fleet
// yields a single assembled timeline in which every worker-side span
// carries the job's trace ID, every parent link resolves to a span in
// the same timeline, and the coordinator's shard spans bracket the
// worker-side children they dispatched.
func TestFleetTimelineAcceptance(t *testing.T) {
	tl := fleetTimeline(t, "w1", "w2")

	if tl.TraceID == "" || len(tl.TraceID) != 16 {
		t.Fatalf("timeline lacks a trace ID: %+v", tl)
	}
	byID := map[string]obs.SpanRecord{}
	for _, sp := range tl.Spans {
		if sp.Trace != tl.TraceID {
			t.Fatalf("span %s/%s carries trace %q, want the job's %q", sp.Node, sp.Stage, sp.Trace, tl.TraceID)
		}
		byID[sp.Span] = sp
	}
	stages := map[string]int{}
	var roots int
	for _, sp := range tl.Spans {
		stages[sp.Stage]++
		if sp.Parent == "" {
			roots++
			if sp.Stage != "job" {
				t.Fatalf("parentless span %q on %s, only the job root may be one", sp.Stage, sp.Node)
			}
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Fatalf("span %s/%s parent %s resolves to no span in the timeline", sp.Node, sp.Stage, sp.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("want exactly one root span, got %d", roots)
	}
	if stages["job"] != 1 || stages["shard"] != 2 || stages["shard_worker"] != 2 {
		t.Fatalf("span census %v, want 1 job, 2 shard, 2 shard_worker", stages)
	}

	workerNodes := map[string]bool{}
	var sawEngine bool
	for _, sp := range tl.Spans {
		switch sp.Stage {
		case "shard_worker":
			workerNodes[sp.Node] = true
			// The dispatching coordinator shard span brackets its worker child.
			par := byID[sp.Parent]
			if par.Stage != "shard" || par.Node != "coordinator" {
				t.Fatalf("shard_worker on %s parents under %s/%s, want a coordinator shard span", sp.Node, par.Node, par.Stage)
			}
			cs, ce := par.Start, par.Start.Add(time.Duration(par.DurNS))
			ws, we := sp.Start, sp.Start.Add(time.Duration(sp.DurNS))
			if ws.Before(cs) || we.After(ce) {
				t.Fatalf("shard span [%v,%v] does not bracket worker span [%v,%v]", cs, ce, ws, we)
			}
		default:
			if strings.HasPrefix(sp.Stage, "partition_") && (sp.Node == "w1" || sp.Node == "w2") {
				sawEngine = true
			}
		}
	}
	if len(workerNodes) == 0 {
		t.Fatal("no worker-side spans made it back over the wire")
	}
	if !sawEngine {
		t.Fatal("worker engine partition spans missing from the assembled timeline")
	}

	eventNames := map[string]int{}
	for _, ev := range tl.Events {
		eventNames[ev.Name]++
	}
	if eventNames["queue-admit"] != 1 || eventNames["shard-assign"] < 2 || eventNames["shard-resolve"] < 2 {
		t.Fatalf("event census %v, want queue-admit and per-shard assign/resolve", eventNames)
	}
}

// TestFleetTimelineGolden pins the normalized shape of a two-worker
// fleet timeline: span hierarchy (stages, nodes, parent links) and the
// event set, with IDs remapped canonically and scheduling-dependent
// detail (timestamps, worker pairing, ports) normalized away.
// Regenerate with: CLUSTER_UPDATE_GOLDEN=1 go test ./internal/cluster -run FleetTimelineGolden
func TestFleetTimelineGolden(t *testing.T) {
	// Both workers share one node name: which of the two symmetric
	// workers mines which shard is a scheduling race, so the normalized
	// form must not encode it.
	tl := fleetTimeline(t, "worker", "worker")
	got := normalizeTimeline(t, tl)

	golden := filepath.Join("testdata", "timeline.golden")
	if os.Getenv("CLUSTER_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set CLUSTER_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("normalized timeline mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// normalizeTimeline renders the timeline as a deterministic text form:
// the span tree in canonical DFS order (children sorted by their
// canonical subtree serialization, so symmetric branches land in a
// stable order regardless of which worker won which shard) plus the
// event multiset sorted by name and shard.
func normalizeTimeline(t *testing.T, tl *obs.Timeline) string {
	t.Helper()
	children := map[string][]obs.SpanRecord{}
	byID := map[string]obs.SpanRecord{}
	var tree func(sp obs.SpanRecord) string
	tree = func(sp obs.SpanRecord) string {
		kids := make([]string, 0, len(children[sp.Span]))
		for _, c := range children[sp.Span] {
			kids = append(kids, tree(c))
		}
		sort.Strings(kids)
		return fmt.Sprintf("%s(%s)[%s]", sp.Stage, sp.Node, strings.Join(kids, " "))
	}
	var roots []obs.SpanRecord
	for _, sp := range tl.Spans {
		byID[sp.Span] = sp
	}
	for _, sp := range tl.Spans {
		if _, ok := byID[sp.Parent]; ok && sp.Parent != "" {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace present=%t job present=%t\n", tl.TraceID != "", tl.JobID != "")
	fmt.Fprintf(&b, "dropped %d\n", tl.Dropped)
	b.WriteString("spans:\n")
	remap := map[string]string{}
	var walk func(sp obs.SpanRecord, depth int)
	walk = func(sp obs.SpanRecord, depth int) {
		id := fmt.Sprintf("S%d", len(remap)+1)
		remap[sp.Span] = id
		parent := "-"
		if p, ok := remap[sp.Parent]; ok {
			parent = p
		}
		fmt.Fprintf(&b, "%s%s %s node=%s parent=%s\n", strings.Repeat("  ", depth+1), id, sp.Stage, sp.Node, parent)
		kids := append([]obs.SpanRecord(nil), children[sp.Span]...)
		sort.SliceStable(kids, func(i, j int) bool { return tree(kids[i]) < tree(kids[j]) })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return tree(roots[i]) < tree(roots[j]) })
	for _, r := range roots {
		walk(r, 0)
	}

	b.WriteString("events:\n")
	type nev struct{ name, shard, attempt, span string }
	var evs []nev
	for _, ev := range tl.Events {
		e := nev{name: ev.Name, shard: ev.Attrs["shard"], attempt: ev.Attrs["attempt"]}
		if id, ok := remap[ev.Span]; ok {
			e.span = id
		}
		evs = append(evs, e)
	}
	sort.Slice(evs, func(i, j int) bool {
		a, c := evs[i], evs[j]
		if a.name != c.name {
			return a.name < c.name
		}
		if a.shard != c.shard {
			return a.shard < c.shard
		}
		return a.attempt < c.attempt
	})
	for _, e := range evs {
		line := "  " + e.name
		if e.shard != "" {
			line += " shard=" + e.shard
		}
		if e.attempt != "" {
			line += " attempt=" + e.attempt
		}
		if e.span != "" {
			line += " span=" + e.span
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// TestWorkerSeriesPrunedOnExpiry is the regression test for the
// per-worker metric-series leak: a self-registered worker whose
// heartbeat lapsed past the prune grace must take its
// disc_cluster_breaker_state gauge and latency histogram out of the
// exposition, and its peer/breaker/latency map entries with them.
// Re-registration recreates everything cleanly.
func TestWorkerSeriesPrunedOnExpiry(t *testing.T) {
	o := obs.NewObserver()
	c := New(Config{HeartbeatTTL: 20 * time.Millisecond, Obs: o})
	const url = "http://worker-leak:1"
	c.Register(url)
	c.breakerFor(url)
	c.latency(url).Observe(0.001)

	text := renderRegistry(t, o)
	if !strings.Contains(text, `disc_cluster_breaker_state{worker="`+url+`"}`) ||
		!strings.Contains(text, `disc_cluster_worker_latency_seconds_count{worker="`+url+`"}`) {
		t.Fatalf("per-worker series missing before expiry:\n%s", text)
	}

	// Sleep past pruneGraceFactor × TTL, then trigger the prune the way
	// production does (another worker's registration).
	time.Sleep(time.Duration(pruneGraceFactor)*c.cfg.HeartbeatTTL + 30*time.Millisecond)
	c.Register("http://worker-alive:2")

	text = renderRegistry(t, o)
	if strings.Contains(text, url) {
		t.Fatalf("expired worker's series still render (metric leak):\n%s", text)
	}
	c.mu.Lock()
	_, peerLeak := c.peers[url]
	_, brLeak := c.breakers[url]
	_, latLeak := c.workerLat[url]
	c.mu.Unlock()
	if peerLeak || brLeak || latLeak {
		t.Fatalf("expired worker leaks state: peer=%v breaker=%v latency=%v", peerLeak, brLeak, latLeak)
	}

	// A pruned worker that comes back gets fresh series, not a panic.
	c.Register(url)
	c.breakerFor(url)
	c.latency(url).Observe(0.002)
	if text := renderRegistry(t, o); !strings.Contains(text, `disc_cluster_breaker_state{worker="`+url+`"}`) {
		t.Fatalf("re-registered worker's series missing:\n%s", text)
	}
}

func renderRegistry(t *testing.T, o *obs.Observer) string {
	t.Helper()
	var b strings.Builder
	if err := o.Registry.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
