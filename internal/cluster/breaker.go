package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// breakerState is the classic circuit-breaker trio. The int values are
// the exported gauge encoding (disc_cluster_breaker_state{worker}).
type breakerState int

const (
	breakerClosed   breakerState = 0
	breakerHalfOpen breakerState = 1
	breakerOpen     breakerState = 2
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// failKind distinguishes what a failed attempt says about the worker.
type failKind int

const (
	// failTransport: the worker never answered (connection refused, reset,
	// attempt timeout, TTL-expiry cancellation) — the strongest signal the
	// worker is gone.
	failTransport failKind = iota
	// failWorker: the worker answered with a typed error or an invalid
	// checkpoint — it is alive but struggling, so the breaker gives it
	// twice the grace before opening.
	failWorker
)

// breaker is a per-worker closed/open/half-open circuit breaker keyed by
// consecutive failures and error kind. Open circuits back off
// exponentially per consecutive trip with ±25% jitter (decorrelating
// probe storms across a fleet) up to a cap; a half-open circuit grants
// exactly one probe shard, and that probe's outcome decides between
// closing and re-opening with a longer backoff.
//
// The breaker's own mutex never wraps a registry or Coordinator.mu
// call: onChange fires on pre-created counters (atomics only), and the
// state gauge reads through current(), which takes only this mutex —
// preserving the coordinator's lock-order discipline.
type breaker struct {
	threshold int           // consecutive transport failures that open a closed circuit
	base      time.Duration // first open backoff
	max       time.Duration // backoff cap

	mu        sync.Mutex
	state     breakerState
	transport int // consecutive transport failures while closed
	worker    int // consecutive typed worker failures while closed
	trips     int // consecutive opens without an intervening success
	until     time.Time
	probing   bool
	onChange  func(from, to breakerState) // called outside the critical section
}

func newBreaker(threshold int, base, max time.Duration) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if base <= 0 {
		base = 10 * time.Second
	}
	if max < base {
		max = base
	}
	return &breaker{threshold: threshold, base: base, max: max}
}

// current reports the state for the metrics gauge.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// allow reports whether a dispatch may go to this worker now. An open
// circuit past its backoff transitions to half-open and grants exactly
// one probe; further requests wait for the probe's outcome.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	var change func()
	defer func() {
		b.mu.Unlock()
		if change != nil {
			change()
		}
	}()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(b.until) {
			return false
		}
		from := b.state
		b.state = breakerHalfOpen
		b.probing = true
		change = b.changeFn(from, breakerHalfOpen)
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess closes the circuit and clears every streak.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	from := b.state
	b.state = breakerClosed
	b.transport, b.worker, b.trips = 0, 0, 0
	b.probing = false
	change := b.changeFn(from, breakerClosed)
	b.mu.Unlock()
	if change != nil {
		change()
	}
}

// onFailure records one failed attempt. A half-open probe failure
// re-opens immediately with a longer backoff; a closed circuit opens
// once the consecutive-failure streak of either kind crosses its
// threshold (typed worker errors get double the transport grace).
func (b *breaker) onFailure(kind failKind, now time.Time) {
	b.mu.Lock()
	b.probing = false
	trip := false
	switch b.state {
	case breakerHalfOpen:
		trip = true
	case breakerClosed:
		if kind == failTransport {
			b.transport++
		} else {
			b.worker++
		}
		trip = b.transport >= b.threshold || b.worker >= 2*b.threshold
	default: // already open (a second-pass dispatch failed): extend
		trip = true
	}
	var change func()
	if trip {
		from := b.state
		b.trips++
		backoff := b.base << (b.trips - 1)
		if backoff > b.max || backoff <= 0 { // <=0 guards shift overflow
			backoff = b.max
		}
		// ±25% jitter so a fleet of breakers does not re-probe in lockstep.
		backoff += time.Duration((rand.Float64() - 0.5) * 0.5 * float64(backoff))
		b.until = now.Add(backoff)
		b.state = breakerOpen
		b.transport, b.worker = 0, 0
		change = b.changeFn(from, breakerOpen)
	}
	b.mu.Unlock()
	if change != nil {
		change()
	}
}

// changeFn captures an onChange invocation for execution outside the
// critical section (nil when the state did not move).
func (b *breaker) changeFn(from, to breakerState) func() {
	if from == to || b.onChange == nil {
		return nil
	}
	fn := b.onChange
	return func() { fn(from, to) }
}
