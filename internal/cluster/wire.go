// Package cluster distributes one mining job across a fleet of discserve
// workers. The unit of distribution is the shard: a stable hash-assigned
// subset of the job's first-level partitions (core.ShardOf), mined by a
// worker as an ordinary shard-scoped engine run whose completed
// partitions come back as a shard-granular checkpoint. The coordinator
// accumulates shard checkpoints — resending a shard's accumulated
// partitions as its resume state when the shard is retried, so a worker
// that died mid-shard costs only the partitions it had not recorded —
// and finishes with a local ResumeFrom assembly run, which restores
// every received partition and merges them in the engine's ascending key
// order. Byte-identity of a clustered run with a local one is therefore
// the existing checkpoint-resume identity, proven partition-wise; the
// shard-union property is pinned by core's TestShardUnionByteIdentical
// and end-to-end by the difftest cluster grid.
//
// Errors cross the wire as the internal/jobs typed taxonomy (WireError),
// so a worker failure relayed by the coordinator reaches the tenant in
// the same JSON shape a local failure would.
package cluster

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"strings"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/obs"
)

// secretHeader carries the shared fleet secret on every control-plane
// request (/cluster/register, /cluster/shard). Both sides treat an empty
// configured secret as "open fleet" — the deployment's explicit choice
// for trusted networks; anything else is checked constant-time.
const secretHeader = "X-Disc-Cluster-Secret"

// The trace-propagation headers: a shard dispatch carries the job's
// trace ID and the coordinator-side shard span it should parent under,
// so the worker's spans land in the same fleet-wide timeline. Absent
// headers mean an untraced dispatch (an old coordinator); the worker
// simply mines without recording.
const (
	traceIDHeader    = "X-Disc-Trace-Id"
	parentSpanHeader = "X-Disc-Parent-Span"
)

// setSecret attaches the fleet secret to an outgoing request (no-op when
// the fleet runs open).
func setSecret(r *http.Request, secret string) {
	if secret != "" {
		r.Header.Set(secretHeader, secret)
	}
}

// authorized reports whether an incoming control-plane request proves
// fleet membership under the configured secret.
func authorized(secret string, r *http.Request) bool {
	if secret == "" {
		return true
	}
	got := r.Header.Get(secretHeader)
	return subtle.ConstantTimeCompare([]byte(got), []byte(secret)) == 1
}

// ShardRequest is the coordinator→worker dispatch payload: the whole job
// identity plus which shard of it to mine. The database travels in the
// native text encoding, the optional resume state as a checkpoint-format
// document; both reuse the repository's canonical formats rather than
// inventing wire-only ones.
type ShardRequest struct {
	Algo    string  `json:"algo"`
	MinSup  int     `json:"minsup"`
	BiLevel bool    `json:"bilevel"`
	Levels  int     `json:"levels"`
	Gamma   float64 `json:"gamma"`
	Workers int     `json:"workers,omitempty"` // suggested mining concurrency; the worker may cap it
	// MaxPatterns/MaxMemBytes are *per-shard* budgets: the worker
	// enforces the tighter of these and its own configured limits against
	// the one shard it mines. The coordinator never ships them — a job
	// with a resource budget runs on the local path so the budget stays
	// job-global (see Coordinator.Mine) — but the fields remain in the
	// contract for dispatchers that want per-shard caps and for worker
	// self-protection.
	MaxPatterns int    `json:"max_patterns,omitempty"`
	MaxMemBytes int64  `json:"max_mem_bytes,omitempty"`
	Shard       int    `json:"shard"`
	Shards      int    `json:"shards"`
	Fingerprint string `json:"fingerprint"` // 16 hex digits; workers refuse mismatched jobs
	DB          string `json:"db"`          // data.Native text
	Resume      string `json:"resume,omitempty"`
}

// Options reconstructs the result-relevant engine options the request
// describes. Both sides derive the fingerprint from these, so a request
// that decodes at all is verifiable.
func (r *ShardRequest) Options() core.Options {
	return core.Options{BiLevel: r.BiLevel, Levels: r.Levels, Gamma: r.Gamma}
}

// ShardResponse is the worker's reply. Checkpoint carries the shard's
// completed partitions — on success all of them, on failure whatever
// completed before the error, so a reschedule resumes rather than
// restarts. Error is the typed taxonomy shared with the job API.
type ShardResponse struct {
	Checkpoint string          `json:"checkpoint,omitempty"`
	Error      *jobs.WireError `json:"error,omitempty"`
	// Spans are the worker's completed span records for this shard run,
	// present when the dispatch carried trace headers. The coordinator
	// folds them into the job's flight recorder, which is how one
	// fleet-wide timeline exists at all.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// registration is the worker→coordinator announce/heartbeat payload.
type registration struct {
	URL string `json:"url"`
}

// Fingerprint formats a job fingerprint the way the wire carries it (16
// hex digits, the same form jobs use as their ID).
func Fingerprint(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// shardable reports whether the algorithm supports partition sharding —
// the checkpointable disc-all family; the baseline miners are
// monolithic and always run locally.
func shardable(algo string) bool {
	return algo == "disc-all" || algo == "dynamic-disc-all"
}

// encodeCheckpoint renders a shard-granular checkpoint to wire text.
func encodeCheckpoint(f *checkpoint.File) (string, error) {
	var b strings.Builder
	if _, err := f.Write(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// decodeCheckpoint parses wire checkpoint text.
func decodeCheckpoint(s string) (*checkpoint.File, error) {
	return checkpoint.Read(strings.NewReader(s))
}

// tighter resolves a request budget against the worker's own: the
// minimum of the pair, zero meaning unset (mirrors the jobs manager's
// budget rule).
func tighter[T int | int64](a, b T) T {
	switch {
	case a <= 0:
		return b
	case b <= 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}
