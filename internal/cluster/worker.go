package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/obs"
)

// WorkerConfig shapes a shard worker.
type WorkerConfig struct {
	// Workers is the mining concurrency of one shard run (0 selects
	// GOMAXPROCS, like core.Options.Workers).
	Workers int
	// MaxPatterns and MaxMemBytes are this worker's own budgets; a shard
	// runs under the tighter of these and the request's.
	MaxPatterns int
	MaxMemBytes int64
	// MaxConcurrent bounds concurrently mined shards; excess requests are
	// shed with 429 so the coordinator reschedules them (default 2).
	MaxConcurrent int
	// MaxBodyBytes caps the request body (default 1 GiB).
	MaxBodyBytes int64
	// Secret, when set, is required on every /cluster/shard request —
	// the same shared fleet secret the coordinator is configured with.
	// Empty serves the shard endpoint open (trusted networks only).
	Secret string
	// Faults arms the worker-side fault points: ShardDrop (abort the
	// connection mid-request), ShardSlow (stall before mining), ShardHang
	// (stall until the request is canceled — a straggler that never
	// finishes on its own), and the engine points of the shard run itself.
	Faults *faultinject.Injector
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
	// Obs is the shared observability handle (nil gets a private one).
	Obs *obs.Observer
	// Node names this worker in the span records it returns to the
	// coordinator (default "worker"). A fleet timeline reads it to say
	// where each shard actually ran.
	Node string
	// TraceEvents bounds the per-shard flight recorder (0 selects
	// obs.DefaultRecorderEvents); TraceSeed seeds span ID minting
	// (0 = time-seeded; tests pin it for golden timelines).
	TraceEvents int
	TraceSeed   int64
}

// Worker mines dispatched shards. It is the server side of the shard
// protocol; mount Handler on the serving mux.
type Worker struct {
	cfg    WorkerConfig
	sem    chan struct{}
	obs    *obs.Observer
	ids    *obs.IDSource           // span ID minting for propagated traces
	served map[string]*obs.Counter // outcome -> counter
	dur    *obs.Histogram
}

// NewWorker returns a worker ready to serve shard requests.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 30
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Node == "" {
		cfg.Node = "worker"
	}
	o := cfg.Obs
	if o == nil {
		o = obs.NewObserver()
	}
	w := &Worker{cfg: cfg, sem: make(chan struct{}, cfg.MaxConcurrent), obs: o,
		ids: obs.NewIDSource(cfg.TraceSeed)}
	r := o.Registry
	w.served = map[string]*obs.Counter{}
	for _, outcome := range []string{"done", "failed", "canceled", "shed", "input", "auth"} {
		w.served[outcome] = r.Counter("disc_cluster_worker_shards_total",
			"Shard requests served by this worker, by outcome.",
			obs.Label{Key: "outcome", Value: outcome})
	}
	w.dur = r.Histogram("disc_cluster_worker_shard_seconds",
		"Wall time of one shard mined by this worker.", obs.DurationBuckets)
	return w
}

// HandleShard is POST /cluster/shard: mine one shard of a job and reply
// with its shard-granular checkpoint. Mining failures still answer 200
// with a typed error next to the partial checkpoint — the transport
// worked, the mining did not, and the coordinator needs both facts.
func (w *Worker) HandleShard(rw http.ResponseWriter, r *http.Request) {
	if !authorized(w.cfg.Secret, r) {
		w.reject(rw, http.StatusUnauthorized, "auth", "missing or wrong cluster secret")
		return
	}
	var req ShardRequest
	body := http.MaxBytesReader(rw, r.Body, w.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		w.reject(rw, http.StatusBadRequest, "input", fmt.Sprintf("decoding shard request: %v", err))
		return
	}
	site := fmt.Sprintf("shard-%d/%d", req.Shard, req.Shards)
	// Fault points for the resilience grid: a dropped connection (the
	// coordinator sees a transport error, no response at all) and a
	// stalled worker (the coordinator's shard timeout fires).
	if w.cfg.Faults.Fire(faultinject.ShardDrop, site) {
		w.cfg.Logf("cluster: worker dropping connection at %s (injected)", site)
		panic(http.ErrAbortHandler)
	}
	if w.cfg.Faults.Fire(faultinject.ShardSlow, site) {
		w.cfg.Logf("cluster: worker stalling at %s (injected)", site)
		select {
		case <-time.After(30 * time.Second):
		case <-r.Context().Done():
			return
		}
	}
	if w.cfg.Faults.Fire(faultinject.ShardHang, site) {
		// A straggler that never finishes: hold the request until the
		// coordinator gives up on it (hedge win, TTL expiry, or timeout).
		w.cfg.Logf("cluster: worker hanging at %s until canceled (injected)", site)
		<-r.Context().Done()
		return
	}

	if !shardable(req.Algo) {
		w.reject(rw, http.StatusBadRequest, "input", fmt.Sprintf("algorithm %q is not shardable", req.Algo))
		return
	}
	if req.Shards < 1 || req.Shard < 0 || req.Shard >= req.Shards {
		w.reject(rw, http.StatusBadRequest, "input", fmt.Sprintf("shard %d of %d out of range", req.Shard, req.Shards))
		return
	}
	db, err := data.Read(strings.NewReader(req.DB), data.Native)
	if err != nil {
		w.reject(rw, http.StatusBadRequest, "input", fmt.Sprintf("decoding shard database: %v", err))
		return
	}
	fp, err := strconv.ParseUint(req.Fingerprint, 16, 64)
	if err != nil {
		w.reject(rw, http.StatusBadRequest, "input", fmt.Sprintf("bad fingerprint %q", req.Fingerprint))
		return
	}
	// The worker recomputes the job identity from what it actually
	// decoded: a corrupted database or mismatched options cannot silently
	// mine the wrong job into a checkpoint the coordinator will trust.
	if got := core.CheckpointFingerprint(req.Algo, req.Options(), req.MinSup, db); got != fp {
		w.reject(rw, http.StatusBadRequest, "input",
			fmt.Sprintf("fingerprint mismatch: request says %016x, decoded job is %016x", fp, got))
		return
	}

	// Admission control: shed beyond MaxConcurrent so a saturated worker
	// answers immediately and the coordinator reschedules elsewhere.
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	default:
		w.reject(rw, http.StatusTooManyRequests, "shed", "worker at shard capacity")
		return
	}

	cp := core.NewCheckpointer()
	if req.Resume != "" {
		f, err := decodeCheckpoint(req.Resume)
		if err != nil {
			w.reject(rw, http.StatusBadRequest, "input", fmt.Sprintf("bad resume checkpoint: %v", err))
			return
		}
		if f.Fingerprint != fp {
			w.reject(rw, http.StatusBadRequest, "input",
				fmt.Sprintf("resume checkpoint fingerprint %016x does not match job %016x", f.Fingerprint, fp))
			return
		}
		cp = core.ResumeFrom(f)
	}

	opts := req.Options()
	opts.Workers = tighter(req.Workers, w.cfg.Workers)
	opts.MaxPatterns = tighter(req.MaxPatterns, w.cfg.MaxPatterns)
	opts.MaxMemBytes = tighter(req.MaxMemBytes, w.cfg.MaxMemBytes)
	opts.Checkpoint = cp
	opts.Shard = &core.ShardSpec{Index: req.Shard, Count: req.Shards}
	opts.Faults = w.cfg.Faults
	opts.Obs = w.obs

	// Trace propagation: a dispatch carrying the trace headers gets its
	// own worker-side flight recorder under the propagated trace ID. The
	// worker's root span parents under the coordinator's shard span, the
	// engine's spans parent under the worker's root span, and every
	// completed record travels back in the response for the coordinator
	// to fold into the job's timeline.
	var tc *obs.TraceContext
	var wsp obs.Span
	if trace, ok := obs.ParseTraceID(r.Header.Get(traceIDHeader)); ok {
		parent, _ := obs.ParseSpanID(r.Header.Get(parentSpanHeader))
		tc = obs.NewTraceContext(trace, w.cfg.Node, w.ids, obs.NewRecorder(w.cfg.TraceEvents))
		wsp = w.obs.WithTrace(tc, parent).Span("shard_worker")
		opts.Obs = w.obs.WithTrace(tc, wsp.ID())
	}

	start := time.Now()
	mineErr := mining.Contain(site, func() error {
		miner, err := minerFor(req.Algo, opts)
		if err != nil {
			return err
		}
		_, err = mining.AsContextMiner(miner).MineContext(r.Context(), db, req.MinSup)
		return err
	})
	w.dur.Observe(time.Since(start).Seconds())
	wsp.End()

	file := cp.File(req.Algo, req.MinSup, fp)
	file.Shard, file.ShardCount = req.Shard, req.Shards
	text, encErr := encodeCheckpoint(file)
	resp := ShardResponse{Checkpoint: text, Spans: tc.Recorder().Spans()}
	switch {
	case errors.Is(mineErr, context.Canceled) || errors.Is(mineErr, context.DeadlineExceeded):
		// The coordinator canceled us (hedge lost, TTL expiry, shard
		// timeout) — it is no longer listening, but account for the wasted
		// work and answer anyway for any proxy still holding the socket.
		resp.Error = jobs.TypedWireError(mineErr)
		w.served["canceled"].Inc()
		w.cfg.Logf("cluster: %s canceled after %d partitions", site, cp.Completed())
	case mineErr != nil:
		resp.Error = jobs.TypedWireError(mineErr)
		w.served["failed"].Inc()
		w.cfg.Logf("cluster: %s failed after %d partitions: %v", site, cp.Completed(), mineErr)
	case encErr != nil:
		resp.Checkpoint = ""
		resp.Error = jobs.TypedWireError(encErr)
		w.served["failed"].Inc()
	default:
		w.served["done"].Inc()
		w.cfg.Logf("cluster: %s done: %d partitions (%d restored)", site, cp.Completed(), cp.Restored())
	}
	writeJSON(rw, http.StatusOK, resp)
}

// minerFor builds the shardable algorithms directly — the registry
// clones lose the Opts wiring the shard run needs.
func minerFor(algo string, opts core.Options) (mining.Miner, error) {
	switch algo {
	case "disc-all":
		return &core.Miner{Opts: opts}, nil
	case "dynamic-disc-all":
		return &core.Dynamic{Opts: opts}, nil
	}
	return nil, fmt.Errorf("cluster: algorithm %q is not shardable", algo)
}

func (w *Worker) reject(rw http.ResponseWriter, code int, kind, msg string) {
	if ctr, ok := w.served[kind]; ok && kind != "done" && kind != "failed" {
		ctr.Inc()
	}
	writeJSON(rw, code, ShardResponse{Error: &jobs.WireError{Kind: kind, Message: msg}})
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(v)
}
