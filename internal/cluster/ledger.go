package cluster

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/jobs"
)

// LedgerPath names one job's ledger file inside a ledger directory;
// exported so drills and operational tooling can locate a job's ledger
// by fingerprint.
func LedgerPath(dir string, fp uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.ledger", fp))
}

// jobLedger is the coordinator's handle on one job's durable shard
// ledger. A nil *jobLedger (no LedgerDir configured) is valid and
// records nothing. Every transition persists the whole ledger atomically
// before returning, so the on-disk state is never older than the
// scheduling decision just acted on — the invariant a kill -9 recovery
// depends on.
type jobLedger struct {
	c    *Coordinator
	path string

	mu   sync.Mutex
	l    *checkpoint.Ledger
	dead bool // a simulated coordinator crash froze the ledger (drills)
}

// openLedger loads or creates the job's ledger. A valid prior ledger for
// the same fingerprint wins: its shard count is authoritative (the
// recorded partitions were hashed with it, and a restarted coordinator
// may see a different live-worker count than the crashed one did), its
// done shards are returned so Mine skips dispatching them, and shards
// caught mid-assignment return to pending with an "interrupted" attempt
// on record. Anything else — no file, corrupt file, another job's
// fingerprint — starts a fresh ledger.
func (c *Coordinator) openLedger(req jobs.Request, fp uint64, shards int, dbText string) (*jobLedger, int, map[int]bool) {
	if c.cfg.LedgerDir == "" {
		return nil, shards, nil
	}
	jl := &jobLedger{c: c, path: LedgerPath(c.cfg.LedgerDir, fp)}
	prev, err := checkpoint.ReadLedgerFileFS(c.cfg.FS, jl.path)
	switch {
	case err == nil || errors.Is(err, fs.ErrNotExist):
	case checkpoint.Undecodable(err):
		// Corrupt prior ledger: quarantine it so the fresh one written
		// below takes the name, and the evidence survives for inspection.
		if q, qerr := checkpoint.Quarantine(c.cfg.FS, jl.path); qerr == nil {
			c.quarantined.Inc()
			c.cfg.Logf("cluster: quarantined corrupt ledger to %s: %v", q, err)
		} else {
			c.cfg.Logf("cluster: cannot quarantine corrupt ledger %s: %v (read error: %v)", jl.path, qerr, err)
		}
	default:
		c.cfg.Logf("cluster: ignoring unusable ledger %s: %v", jl.path, err)
	}
	if err == nil && prev.Fingerprint == fp && len(prev.Shards) > 0 {
		done := map[int]bool{}
		for i := range prev.Shards {
			s := &prev.Shards[i]
			switch s.State {
			case checkpoint.ShardDone:
				done[i] = true
			case checkpoint.ShardAssigned:
				// Whether the assigned worker finished is unknowable from
				// here; the dedup on fold makes re-dispatch safe either way.
				s.Attempts = append(s.Attempts,
					checkpoint.ShardAttempt{Worker: s.Worker, Outcome: "interrupted"})
				s.State, s.Worker = checkpoint.ShardPending, ""
			}
		}
		jl.l = prev
		c.ledgerResumed.Add(int64(len(done)))
		c.cfg.Logf("cluster: job %016x resumes from its shard ledger: %d/%d shards already done",
			fp, len(done), len(prev.Shards))
		jl.mu.Lock()
		jl.persistLocked()
		jl.mu.Unlock()
		return jl, len(prev.Shards), done
	}
	l := &checkpoint.Ledger{
		Algo: req.Algo, Fingerprint: fp, MinSup: req.MinSup,
		BiLevel: req.Opts.BiLevel, Levels: req.Opts.Levels, Gamma: req.Opts.Gamma,
		Workers: req.Opts.Workers, DB: dbText,
		Shards: make([]checkpoint.LedgerShard, shards),
	}
	for i := range l.Shards {
		l.Shards[i].State = checkpoint.ShardPending
	}
	jl.l = l
	jl.mu.Lock()
	jl.persistLocked()
	jl.mu.Unlock()
	return jl, shards, nil
}

// mutate applies one state transition and persists it. No-op on a nil
// ledger or after a simulated crash froze it.
func (jl *jobLedger) mutate(fn func(l *checkpoint.Ledger)) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.dead {
		return
	}
	fn(jl.l)
	jl.persistLocked()
}

func (jl *jobLedger) persistLocked() {
	c := jl.c
	if !c.durabilityAttempt() {
		return // degraded and no probe due: scheduling continues, ledger off
	}
	start := time.Now()
	if _, err := jl.l.WriteFileFS(c.cfg.FS, jl.path); err != nil {
		c.ledgerFailures.Inc()
		c.durabilityFailed()
		c.cfg.Logf("cluster: ledger write failed: %v (continuing; recovery degrades to checkpoint resume)", err)
		return
	}
	c.durabilityOK()
	c.ledgerWrites.Inc()
	c.ledgerDur.Observe(time.Since(start).Seconds())
}

// assign marks a shard as held by worker.
func (jl *jobLedger) assign(idx int, worker string) {
	jl.mutate(func(l *checkpoint.Ledger) {
		s := &l.Shards[idx]
		s.State, s.Worker = checkpoint.ShardAssigned, worker
	})
}

// resolve records a failed attempt, returning the shard to pending with
// its partial partitions on record.
func (jl *jobLedger) resolve(idx int, worker, outcome string, parts []checkpoint.Partition) {
	jl.mutate(func(l *checkpoint.Ledger) {
		s := &l.Shards[idx]
		s.State, s.Worker = checkpoint.ShardPending, ""
		s.Attempts = append(s.Attempts, checkpoint.ShardAttempt{Worker: worker, Outcome: outcome})
		s.Partitions = parts
	})
}

// done marks a shard complete with its full partition set.
func (jl *jobLedger) done(idx int, worker string, parts []checkpoint.Partition) {
	jl.mutate(func(l *checkpoint.Ledger) {
		s := &l.Shards[idx]
		s.State, s.Worker = checkpoint.ShardDone, ""
		s.Attempts = append(s.Attempts, checkpoint.ShardAttempt{Worker: worker, Outcome: "done"})
		s.Partitions = parts
	})
}

// kill freezes the ledger at its current on-disk state — the injected
// CoordinatorCrash drill's stand-in for the process dying, so shard
// goroutines still winding down cannot advance what a real kill -9 would
// have frozen.
func (jl *jobLedger) kill() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	jl.dead = true
	jl.mu.Unlock()
}

// retire removes the ledger once the job's result is assembled: the
// result cache and checkpoints own the job from here.
func (jl *jobLedger) retire() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.dead {
		return
	}
	if err := jl.c.cfg.FS.Remove(jl.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		jl.c.cfg.Logf("cluster: removing ledger: %v", err)
	}
}

// shardParts returns a snapshot of the partitions the ledger holds for
// each shard (nil ledger → nil), for pre-seeding shard accumulators.
func (jl *jobLedger) shardParts() [][]checkpoint.Partition {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	out := make([][]checkpoint.Partition, len(jl.l.Shards))
	for i := range jl.l.Shards {
		out[i] = append([]checkpoint.Partition(nil), jl.l.Shards[i].Partitions...)
	}
	return out
}

// Recover scans LedgerDir for the ledgers of interrupted jobs and
// resubmits each through submit (typically jobs.Manager.Submit). The
// ledger is self-contained — database and result-relevant options travel
// inside it — and the fingerprint is recomputed from the decoded request
// before resubmission, so a ledger that disagrees with its own job is
// skipped, never mined. Returns how many jobs were resubmitted; each
// resubmission reaches Mine through the manager, re-opens its ledger
// there, and schedules only the unfinished shards.
func (c *Coordinator) Recover(submit func(jobs.Request) (*jobs.Job, error)) int {
	if c.cfg.LedgerDir == "" {
		return 0
	}
	matches, err := filepath.Glob(filepath.Join(c.cfg.LedgerDir, "*.ledger"))
	if err != nil {
		return 0
	}
	sort.Strings(matches)
	n := 0
	// quarantine sets aside a ledger no restart could ever use — one
	// that does not decode, or that disagrees with its own job. Leaving
	// it would re-log the same skip on every startup forever.
	quarantine := func(path string, why error) {
		if q, qerr := checkpoint.Quarantine(c.cfg.FS, path); qerr == nil {
			c.quarantined.Inc()
			c.cfg.Logf("cluster: quarantined unusable ledger to %s: %v", q, why)
		} else {
			c.cfg.Logf("cluster: cannot quarantine unusable ledger %s: %v (reason: %v)", path, qerr, why)
		}
	}
	for _, path := range matches {
		l, err := checkpoint.ReadLedgerFileFS(c.cfg.FS, path)
		if err != nil {
			if checkpoint.Undecodable(err) {
				quarantine(path, err)
			} else {
				c.cfg.Logf("cluster: skipping unreadable ledger %s: %v", path, err)
			}
			continue
		}
		db, err := data.Read(strings.NewReader(l.DB), data.Native)
		if err != nil {
			quarantine(path, fmt.Errorf("database does not decode: %w", err))
			continue
		}
		req := jobs.Request{
			Algo: l.Algo, MinSup: l.MinSup, DB: db,
			Opts: core.Options{BiLevel: l.BiLevel, Levels: l.Levels, Gamma: l.Gamma, Workers: l.Workers},
		}
		if got := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, db); got != l.Fingerprint {
			quarantine(path, fmt.Errorf("fingerprint %016x does not match its own job (%016x)", l.Fingerprint, got))
			continue
		}
		if _, err := submit(req); err != nil {
			c.cfg.Logf("cluster: resubmitting ledgered job %016x: %v", l.Fingerprint, err)
			continue
		}
		c.cfg.Logf("cluster: recovered interrupted job %016x from its shard ledger", l.Fingerprint)
		n++
	}
	return n
}
