package cluster

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
	_ "github.com/disc-mining/disc/internal/prefixspan" // registry entry for the non-shardable path
	"github.com/disc-mining/disc/internal/testutil"
)

func render(res *mining.Result) string {
	var b strings.Builder
	if err := jobs.WriteResult(&b, res); err != nil {
		panic(err)
	}
	return b.String()
}

// startWorker serves one in-process worker and returns its base URL.
func startWorker(t *testing.T, cfg WorkerConfig) string {
	t.Helper()
	w := NewWorker(cfg)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/shard", w.HandleShard)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

func testReq(t *testing.T, algo string) jobs.Request {
	t.Helper()
	r := rand.New(rand.NewSource(41))
	req := jobs.Request{Algo: algo, MinSup: 2, DB: testutil.SkewedRandomDB(r, 80, 12, 6, 4)}
	switch algo {
	case "disc-all":
		req.Opts = core.Options{BiLevel: true, Levels: 2}
	case "dynamic-disc-all":
		req.Opts = core.Options{BiLevel: true, Gamma: 0.5}
	}
	return req
}

func localRun(t *testing.T, req jobs.Request) string {
	t.Helper()
	miner, err := localMinerFor(req.Algo, req.Opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mining.AsContextMiner(miner).MineContext(context.Background(), req.DB, req.MinSup)
	if err != nil {
		t.Fatal(err)
	}
	return render(res)
}

func TestClusterMineByteIdenticalToLocal(t *testing.T) {
	for _, algo := range []string{"disc-all", "dynamic-disc-all"} {
		t.Run(algo, func(t *testing.T) {
			req := testReq(t, algo)
			want := localRun(t, req)
			var peers []string
			for i := 0; i < 3; i++ {
				peers = append(peers, startWorker(t, WorkerConfig{}))
			}
			c := New(Config{Peers: peers, Shards: 5, ShardTimeout: time.Minute})
			res, err := c.Mine(context.Background(), req, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := render(res); got != want {
				t.Fatalf("clustered result differs from local run:\ngot %d bytes, want %d bytes", len(got), len(want))
			}
			if n := int(c.shards["done"].Value()); n != 5 {
				t.Fatalf("want 5 shards done, got %d", n)
			}
		})
	}
}

func TestClusterRetriesDroppedConnections(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	// Worker A drops the connection on every shard request; worker B is
	// healthy. Every shard must land on B, byte-identically.
	bad := startWorker(t, WorkerConfig{
		Faults: faultinject.New(7).Arm(faultinject.ShardDrop, faultinject.Spec{Prob: 1}),
	})
	good := startWorker(t, WorkerConfig{MaxConcurrent: 8})
	c := New(Config{Peers: []string{bad, good}, Shards: 3, ShardTimeout: time.Minute, Cooldown: time.Millisecond})
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("clustered result with a dropping worker differs from local run")
	}
	if c.shards["retried"].Value() == 0 {
		t.Fatal("dropped connections should have counted as retries")
	}
	if n := int(c.shards["done"].Value()); n != 3 {
		t.Fatalf("want 3 shards done, got %d", n)
	}
}

func TestClusterReschedulesMidShardFailureFromCheckpoint(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	// Worker A panics inside the engine partway through a shard (after 3
	// completed partitions) — its reply carries a typed error plus the
	// partial checkpoint. The reschedule must resume, not restart.
	flaky := startWorker(t, WorkerConfig{
		Faults: faultinject.New(11).Arm(faultinject.WorkerPanic, faultinject.Spec{AfterN: 4}),
	})
	good := startWorker(t, WorkerConfig{MaxConcurrent: 8})
	c := New(Config{Peers: []string{flaky, good}, Shards: 2, ShardTimeout: time.Minute, Cooldown: time.Millisecond})
	cp := core.NewCheckpointer()
	res, err := c.Mine(context.Background(), req, cp)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("clustered result with a mid-shard panic differs from local run")
	}
	if cp.Completed() == 0 {
		t.Fatal("received partitions should have been recorded into the job checkpointer")
	}
}

func TestClusterLocalFallbackWhenFleetUnusable(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	// Every worker drops every request: all shards exhaust their retries
	// and are mined locally — correctness never depends on the fleet.
	bad := startWorker(t, WorkerConfig{
		Faults: faultinject.New(7).Arm(faultinject.ShardDrop, faultinject.Spec{Prob: 1}),
	})
	c := New(Config{Peers: []string{bad}, Shards: 2, Retries: 1, ShardTimeout: time.Second, Cooldown: time.Millisecond})
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("local-fallback result differs from local run")
	}
	if n := int(c.shards["local"].Value()); n != 2 {
		t.Fatalf("want 2 shards mined locally, got %d", n)
	}
}

func TestClusterNonShardableRunsLocally(t *testing.T) {
	req := testReq(t, "disc-all")
	req.Algo = "prefixspan"
	req.Opts = core.Options{}
	want := localRun(t, req)
	c := New(Config{Peers: []string{"http://127.0.0.1:1"}}) // never contacted
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("non-shardable local run differs")
	}
	if c.shards["done"].Value()+c.shards["local"].Value() != 0 {
		t.Fatal("non-shardable algorithm must not touch the shard path")
	}
}

func TestWorkerRejectsFingerprintMismatch(t *testing.T) {
	url := startWorker(t, WorkerConfig{})
	req := testReq(t, "disc-all")
	c := New(Config{Peers: []string{url}})
	base := ShardRequest{
		Algo: req.Algo, MinSup: req.MinSup, BiLevel: true, Levels: 2,
		Shards: 1, Fingerprint: "00000000deadbeef", DB: "1:(1 2)(3)\n",
	}
	resp, err := c.dispatch(context.Background(), url, base, 0, 0xdeadbeef, &shardAcc{seen: map[string]bool{}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Kind != "input" {
		t.Fatalf("want typed input error for fingerprint mismatch, got %+v", resp.Error)
	}
}

func TestWorkerShedsBeyondCapacity(t *testing.T) {
	// MaxConcurrent 1 and a worker stalled by ShardSlow: the second
	// concurrent request must shed with kind "shed", not queue.
	w := NewWorker(WorkerConfig{MaxConcurrent: 1})
	// Occupy the only slot directly.
	w.sem <- struct{}{}
	defer func() { <-w.sem }()
	url := func() string {
		mux := http.NewServeMux()
		mux.HandleFunc("POST /cluster/shard", w.HandleShard)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv.URL
	}()
	req := testReq(t, "disc-all")
	c := New(Config{Peers: []string{url}})
	fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)
	var db strings.Builder
	if err := data.Write(&db, req.DB, data.Native); err != nil {
		t.Fatal(err)
	}
	base := ShardRequest{
		Algo: req.Algo, MinSup: req.MinSup, BiLevel: true, Levels: 2,
		Shards: 1, Fingerprint: Fingerprint(fp), DB: db.String(),
	}
	resp, err := c.dispatch(context.Background(), url, base, 0, fp, &shardAcc{seen: map[string]bool{}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Kind != "shed" {
		t.Fatalf("want shed error from saturated worker, got %+v", resp.Error)
	}
}

func TestRegistrationAndHeartbeatTTL(t *testing.T) {
	c := New(Config{HeartbeatTTL: 50 * time.Millisecond})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", c.HandleRegister)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Heartbeat(ctx, nil, srv.URL, "http://worker-1", 10*time.Millisecond, nil)

	deadline := time.Now().Add(2 * time.Second)
	for len(c.Workers()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Workers(); len(got) != 1 || got[0] != "http://worker-1" {
		t.Fatalf("workers = %v", got)
	}
	cancel() // stop heartbeating; the TTL must expire the worker
	deadline = time.Now().Add(2 * time.Second)
	for len(c.Workers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never expired after heartbeats stopped")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestManagerMineHookDelegatesToCoordinator(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	worker := startWorker(t, WorkerConfig{MaxConcurrent: 8})
	var called atomic.Int32
	coord := New(Config{Peers: []string{worker}, Shards: 2, ShardTimeout: time.Minute})
	m := jobs.NewManager(jobs.Config{
		Workers: 1,
		Mine: func(ctx context.Context, r jobs.Request, cp *core.Checkpointer) (*mining.Result, error) {
			called.Add(1)
			return coord.Mine(ctx, r, cp)
		},
	})
	defer m.Drain(context.Background())
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	res, ok := j.Result()
	if !ok {
		t.Fatalf("job failed: %v", j.Status().Err)
	}
	if got := render(res); got != want {
		t.Fatal("manager-dispatched clustered job differs from local run")
	}
	if called.Load() != 1 {
		t.Fatalf("mine hook called %d times, want 1", called.Load())
	}
}
