package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
	_ "github.com/disc-mining/disc/internal/prefixspan" // registry entry for the non-shardable path
	"github.com/disc-mining/disc/internal/testutil"
)

func render(res *mining.Result) string {
	var b strings.Builder
	if err := jobs.WriteResult(&b, res); err != nil {
		panic(err)
	}
	return b.String()
}

// startWorker serves one in-process worker and returns its base URL.
func startWorker(t *testing.T, cfg WorkerConfig) string {
	t.Helper()
	w := NewWorker(cfg)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/shard", w.HandleShard)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

func testReq(t *testing.T, algo string) jobs.Request {
	t.Helper()
	r := rand.New(rand.NewSource(41))
	req := jobs.Request{Algo: algo, MinSup: 2, DB: testutil.SkewedRandomDB(r, 80, 12, 6, 4)}
	switch algo {
	case "disc-all":
		req.Opts = core.Options{BiLevel: true, Levels: 2}
	case "dynamic-disc-all":
		req.Opts = core.Options{BiLevel: true, Gamma: 0.5}
	}
	return req
}

func localRun(t *testing.T, req jobs.Request) string {
	t.Helper()
	miner, err := localMinerFor(req.Algo, req.Opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mining.AsContextMiner(miner).MineContext(context.Background(), req.DB, req.MinSup)
	if err != nil {
		t.Fatal(err)
	}
	return render(res)
}

func TestClusterMineByteIdenticalToLocal(t *testing.T) {
	for _, algo := range []string{"disc-all", "dynamic-disc-all"} {
		t.Run(algo, func(t *testing.T) {
			req := testReq(t, algo)
			want := localRun(t, req)
			var peers []string
			for i := 0; i < 3; i++ {
				peers = append(peers, startWorker(t, WorkerConfig{}))
			}
			c := New(Config{Peers: peers, Shards: 5, ShardTimeout: time.Minute})
			res, err := c.Mine(context.Background(), req, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := render(res); got != want {
				t.Fatalf("clustered result differs from local run:\ngot %d bytes, want %d bytes", len(got), len(want))
			}
			if n := int(c.shards["done"].Value()); n != 5 {
				t.Fatalf("want 5 shards done, got %d", n)
			}
		})
	}
}

func TestClusterRetriesDroppedConnections(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	// Worker A drops the connection on every shard request; worker B is
	// healthy. Every shard must land on B, byte-identically.
	bad := startWorker(t, WorkerConfig{
		Faults: faultinject.New(7).Arm(faultinject.ShardDrop, faultinject.Spec{Prob: 1}),
	})
	good := startWorker(t, WorkerConfig{MaxConcurrent: 8})
	c := New(Config{Peers: []string{bad, good}, Shards: 3, ShardTimeout: time.Minute, Cooldown: time.Millisecond})
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("clustered result with a dropping worker differs from local run")
	}
	if c.shards["retried"].Value() == 0 {
		t.Fatal("dropped connections should have counted as retries")
	}
	if n := int(c.shards["done"].Value()); n != 3 {
		t.Fatalf("want 3 shards done, got %d", n)
	}
}

func TestClusterReschedulesMidShardFailureFromCheckpoint(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	// Worker A panics inside the engine partway through a shard (after 3
	// completed partitions) — its reply carries a typed error plus the
	// partial checkpoint. The reschedule must resume, not restart.
	flaky := startWorker(t, WorkerConfig{
		Faults: faultinject.New(11).Arm(faultinject.WorkerPanic, faultinject.Spec{AfterN: 4}),
	})
	good := startWorker(t, WorkerConfig{MaxConcurrent: 8})
	c := New(Config{Peers: []string{flaky, good}, Shards: 2, ShardTimeout: time.Minute, Cooldown: time.Millisecond})
	cp := core.NewCheckpointer()
	res, err := c.Mine(context.Background(), req, cp)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("clustered result with a mid-shard panic differs from local run")
	}
	if cp.Completed() == 0 {
		t.Fatal("received partitions should have been recorded into the job checkpointer")
	}
}

func TestClusterLocalFallbackWhenFleetUnusable(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	// Every worker drops every request: all shards exhaust their retries
	// and are mined locally — correctness never depends on the fleet.
	bad := startWorker(t, WorkerConfig{
		Faults: faultinject.New(7).Arm(faultinject.ShardDrop, faultinject.Spec{Prob: 1}),
	})
	c := New(Config{Peers: []string{bad}, Shards: 2, Retries: 1, ShardTimeout: time.Second, Cooldown: time.Millisecond})
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("local-fallback result differs from local run")
	}
	if n := int(c.shards["local"].Value()); n != 2 {
		t.Fatalf("want 2 shards mined locally, got %d", n)
	}
}

func TestClusterNonShardableRunsLocally(t *testing.T) {
	req := testReq(t, "disc-all")
	req.Algo = "prefixspan"
	req.Opts = core.Options{}
	want := localRun(t, req)
	c := New(Config{Peers: []string{"http://127.0.0.1:1"}}) // never contacted
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("non-shardable local run differs")
	}
	if c.shards["done"].Value()+c.shards["local"].Value() != 0 {
		t.Fatal("non-shardable algorithm must not touch the shard path")
	}
}

func TestWorkerRejectsFingerprintMismatch(t *testing.T) {
	url := startWorker(t, WorkerConfig{})
	req := testReq(t, "disc-all")
	c := New(Config{Peers: []string{url}})
	base := ShardRequest{
		Algo: req.Algo, MinSup: req.MinSup, BiLevel: true, Levels: 2,
		Shards: 1, Fingerprint: "00000000deadbeef", DB: "1:(1 2)(3)\n",
	}
	resp, err := c.dispatch(context.Background(), url, base, 0, "", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Kind != "input" {
		t.Fatalf("want typed input error for fingerprint mismatch, got %+v", resp.Error)
	}
}

func TestWorkerShedsBeyondCapacity(t *testing.T) {
	// MaxConcurrent 1 and a worker stalled by ShardSlow: the second
	// concurrent request must shed with kind "shed", not queue.
	w := NewWorker(WorkerConfig{MaxConcurrent: 1})
	// Occupy the only slot directly.
	w.sem <- struct{}{}
	defer func() { <-w.sem }()
	url := func() string {
		mux := http.NewServeMux()
		mux.HandleFunc("POST /cluster/shard", w.HandleShard)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv.URL
	}()
	req := testReq(t, "disc-all")
	c := New(Config{Peers: []string{url}})
	fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)
	var db strings.Builder
	if err := data.Write(&db, req.DB, data.Native); err != nil {
		t.Fatal(err)
	}
	base := ShardRequest{
		Algo: req.Algo, MinSup: req.MinSup, BiLevel: true, Levels: 2,
		Shards: 1, Fingerprint: Fingerprint(fp), DB: db.String(),
	}
	resp, err := c.dispatch(context.Background(), url, base, 0, "", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Kind != "shed" {
		t.Fatalf("want shed error from saturated worker, got %+v", resp.Error)
	}
}

func TestRegistrationAndHeartbeatTTL(t *testing.T) {
	c := New(Config{HeartbeatTTL: 50 * time.Millisecond})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", c.HandleRegister)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Heartbeat(ctx, nil, srv.URL, "http://worker-1", "", 10*time.Millisecond, nil)

	deadline := time.Now().Add(2 * time.Second)
	for len(c.Workers()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Workers(); len(got) != 1 || got[0] != "http://worker-1" {
		t.Fatalf("workers = %v", got)
	}
	cancel() // stop heartbeating; the TTL must expire the worker
	deadline = time.Now().Add(2 * time.Second)
	for len(c.Workers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never expired after heartbeats stopped")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestManagerMineHookDelegatesToCoordinator(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	worker := startWorker(t, WorkerConfig{MaxConcurrent: 8})
	var called atomic.Int32
	coord := New(Config{Peers: []string{worker}, Shards: 2, ShardTimeout: time.Minute})
	m := jobs.NewManager(jobs.Config{
		Workers: 1,
		Mine: func(ctx context.Context, r jobs.Request, cp *core.Checkpointer) (*mining.Result, error) {
			called.Add(1)
			return coord.Mine(ctx, r, cp)
		},
	})
	defer m.Drain(context.Background())
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	res, ok := j.Result()
	if !ok {
		t.Fatalf("job failed: %v", j.Status().Err)
	}
	if got := render(res); got != want {
		t.Fatal("manager-dispatched clustered job differs from local run")
	}
	if called.Load() != 1 {
		t.Fatalf("mine hook called %d times, want 1", called.Load())
	}
}

// TestLatencyCreationDoesNotDeadlockMetricsScrape is the regression test
// for an ABBA deadlock: latency() used to hold Coordinator.mu while
// creating the histogram (which takes Registry.mu), while a /metrics
// scrape holds Registry.mu and invokes the disc_cluster_workers gauge fn
// (which takes Coordinator.mu). Hammering both paths concurrently must
// finish.
func TestLatencyCreationDoesNotDeadlockMetricsScrape(t *testing.T) {
	c := New(Config{})
	// Hammer both lock paths continuously for a fixed window: scrapers
	// render (Registry.mu → gauge fn → Coordinator.mu) while creators
	// register fresh per-worker histograms (the path that used to take
	// Coordinator.mu → Registry.mu). The old ordering deadlocks within
	// milliseconds under this load; the fixed one always finishes.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := c.obs.Registry.WriteText(io.Discard); err != nil {
						t.Errorf("WriteText: %v", err)
						return
					}
				}
			}()
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					c.latency(fmt.Sprintf("http://worker-%d-%d", g, i)).Observe(0.001)
				}
			}(g)
		}
		wg.Wait()
	}()
	time.AfterFunc(2*time.Second, func() { close(stop) })
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("metrics scrape deadlocked against latency histogram creation (ABBA on Coordinator.mu / Registry.mu)")
	}
}

// TestBudgetedJobsTakeLocalPath: resource budgets are job-global, so a
// budgeted job must never shard — each worker would enforce the full
// budget against its own shard, breaking the byte-identical contract
// exactly when budgets bind.
func TestBudgetedJobsTakeLocalPath(t *testing.T) {
	req := testReq(t, "disc-all")
	req.Opts.MaxPatterns = 1 << 30 // non-binding, but present
	want := localRun(t, req)
	worker := startWorker(t, WorkerConfig{MaxConcurrent: 8})
	c := New(Config{Peers: []string{worker}, Shards: 2, ShardTimeout: time.Minute})
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("budgeted clustered run differs from local run")
	}
	total := c.shards["done"].Value() + c.shards["local"].Value() +
		c.shards["retried"].Value() + c.shards["failed"].Value()
	if total != 0 {
		t.Fatalf("budgeted job touched the shard path (%d shard outcomes)", total)
	}

	// A binding budget surfaces the same typed failure a local run does,
	// instead of shards each mining up to the full budget.
	req.Opts.MaxPatterns = 1
	if _, err := c.Mine(context.Background(), req, nil); !errors.Is(err, mining.ErrBudgetExceeded) {
		t.Fatalf("binding budget should fail like a local run, got %v", err)
	}
}

// TestClusterSecretEnforced: with a configured fleet secret, shard
// dispatch and registration both require it; a matching fleet still
// mines byte-identically.
func TestClusterSecretEnforced(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	url := startWorker(t, WorkerConfig{Secret: "fleet-secret", MaxConcurrent: 8})

	fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)
	var db strings.Builder
	if err := data.Write(&db, req.DB, data.Native); err != nil {
		t.Fatal(err)
	}
	base := ShardRequest{
		Algo: req.Algo, MinSup: req.MinSup, BiLevel: true, Levels: 2,
		Shards: 1, Fingerprint: Fingerprint(fp), DB: db.String(),
	}

	// A coordinator without the secret is turned away with a typed error.
	open := New(Config{Peers: []string{url}})
	resp, err := open.dispatch(context.Background(), url, base, 0, "", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Kind != "auth" {
		t.Fatalf("want auth error from secret-protected worker, got %+v", resp.Error)
	}

	// The matching secret mines byte-identically.
	c := New(Config{Peers: []string{url}, Shards: 2, Secret: "fleet-secret", ShardTimeout: time.Minute})
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("secret-authenticated clustered run differs from local run")
	}

	// Registration demands the secret too: a rogue announce is refused…
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", c.HandleRegister)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	rr, err := http.Post(srv.URL+"/cluster/register", "application/json",
		strings.NewReader(`{"url":"http://rogue:1"}`))
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated registration answered HTTP %d, want 401", rr.StatusCode)
	}
	if got := c.Workers(); len(got) != 1 {
		t.Fatalf("unauthenticated registration must not add a worker: %v", got)
	}
	// …while an authenticated heartbeat registers.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Heartbeat(ctx, nil, srv.URL, "http://worker-2", "fleet-secret", 5*time.Millisecond, nil)
	deadline := time.Now().Add(2 * time.Second)
	for len(c.Workers()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("authenticated heartbeat never registered: %v", c.Workers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBadSuccessCheckpointIsRetriedNotDone: a 200 response whose
// checkpoint is undecodable, fingerprint-mismatched or absent used to be
// silently counted done, quietly degrading the shard to local re-mining
// during assembly. It must count as a retry instead.
func TestBadSuccessCheckpointIsRetriedNotDone(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)
	wrongFP, err := encodeCheckpoint(&checkpoint.File{
		Algo: req.Algo, Fingerprint: fp ^ 0xff, MinSup: req.MinSup,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, ckpt := range map[string]string{
		"undecodable": "this is not a checkpoint",
		"mismatched":  wrongFP,
		"absent":      "",
	} {
		t.Run(name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
				writeJSON(rw, http.StatusOK, ShardResponse{Checkpoint: ckpt})
			}))
			defer srv.Close()
			c := New(Config{Peers: []string{srv.URL}, Shards: 1, Retries: 1,
				ShardTimeout: time.Minute, Cooldown: time.Millisecond})
			res, err := c.Mine(context.Background(), req, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := render(res); got != want {
				t.Fatal("result with a checkpoint-corrupting worker differs from local run")
			}
			if n := c.shards["done"].Value(); n != 0 {
				t.Fatalf("bad success checkpoint counted %d shards done, want 0", n)
			}
			if c.shards["retried"].Value() == 0 {
				t.Fatal("bad success checkpoint should count as a retry")
			}
			if n := c.shards["local"].Value(); n != 1 {
				t.Fatalf("shard should have fallen back to local mining, got %d", n)
			}
		})
	}
}

// TestWorkerResumeRejectionMessages: the two resume-rejection causes
// must be distinguishable — a decode failure reports the parse error, a
// fingerprint mismatch reports both fingerprints (not "<nil>").
func TestWorkerResumeRejectionMessages(t *testing.T) {
	url := startWorker(t, WorkerConfig{})
	req := testReq(t, "disc-all")
	fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)
	var db strings.Builder
	if err := data.Write(&db, req.DB, data.Native); err != nil {
		t.Fatal(err)
	}
	base := ShardRequest{
		Algo: req.Algo, MinSup: req.MinSup, BiLevel: true, Levels: 2,
		Shards: 1, Fingerprint: Fingerprint(fp), DB: db.String(),
	}
	c := New(Config{Peers: []string{url}})

	resp, err := c.dispatch(context.Background(), url, base, 0, "this is not a checkpoint", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || !strings.Contains(resp.Error.Message, "bad resume checkpoint") ||
		strings.Contains(resp.Error.Message, "<nil>") {
		t.Fatalf("undecodable resume: want the decode error, got %+v", resp.Error)
	}

	wrong, err := encodeCheckpoint(&checkpoint.File{
		Algo: req.Algo, Fingerprint: fp ^ 0xff, MinSup: req.MinSup,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = c.dispatch(context.Background(), url, base, 0, wrong, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || !strings.Contains(resp.Error.Message, "does not match job") {
		t.Fatalf("mismatched resume: want an explicit fingerprint-mismatch message, got %+v", resp.Error)
	}
}
