package cluster

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
)

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(2, 100*time.Millisecond, 400*time.Millisecond)
	var trans []string
	b.onChange = func(from, to breakerState) { trans = append(trans, from.String()+">"+to.String()) }
	now := time.Now()

	if !b.allow(now) {
		t.Fatal("a closed breaker must allow dispatch")
	}
	b.onFailure(failTransport, now)
	if !b.allow(now) {
		t.Fatal("one failure below the threshold must not open the circuit")
	}
	b.onSuccess()
	b.onFailure(failTransport, now)
	if !b.allow(now) {
		t.Fatal("a success must have reset the failure streak")
	}
	b.onFailure(failTransport, now)
	if got := b.current(); got != breakerOpen {
		t.Fatalf("state after %d consecutive transport failures = %v, want open", 2, got)
	}
	if b.allow(now) {
		t.Fatal("an open breaker inside its backoff must deny dispatch")
	}

	// Past the backoff (first trip: 100ms ±25%): half-open, exactly one probe.
	later := now.Add(200 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("an open breaker past its backoff must grant a half-open probe")
	}
	if got := b.current(); got != breakerHalfOpen {
		t.Fatalf("state after the probe grant = %v, want half-open", got)
	}
	if b.allow(later) {
		t.Fatal("half-open must grant exactly one probe")
	}
	b.onSuccess()
	if got := b.current(); got != breakerClosed {
		t.Fatalf("state after a successful probe = %v, want closed", got)
	}

	// Typed worker errors get double the transport grace.
	for i := 0; i < 3; i++ {
		b.onFailure(failWorker, now)
		if got := b.current(); got != breakerClosed {
			t.Fatalf("worker failure %d opened the circuit before 2x threshold (state %v)", i+1, got)
		}
	}
	b.onFailure(failWorker, now)
	if got := b.current(); got != breakerOpen {
		t.Fatalf("state after 2x-threshold worker failures = %v, want open", got)
	}

	// A failed probe re-opens with a longer backoff (second consecutive
	// trip: 200ms ±25%, so at least 150ms).
	probeAt := now.Add(time.Hour)
	if !b.allow(probeAt) {
		t.Fatal("probe after a long wait must be granted")
	}
	b.onFailure(failTransport, probeAt)
	if got := b.current(); got != breakerOpen {
		t.Fatalf("state after a failed probe = %v, want open", got)
	}
	if b.allow(probeAt.Add(50 * time.Millisecond)) {
		t.Fatal("the re-opened backoff must be longer than the first trip's")
	}
	if !b.allow(probeAt.Add(time.Second)) {
		t.Fatal("the re-opened breaker must eventually grant a probe again")
	}
	if len(trans) == 0 {
		t.Fatal("state transitions should have reached the onChange hook")
	}
}

// TestExpiredWorkerShardRescheduledImmediately is the regression test for
// the dead-worker hole: a self-registered worker whose heartbeat TTL
// expires while it holds a dispatched shard used to keep that shard
// in-flight until the full shard timeout. The expiry must cancel the
// attempt and reschedule the shard immediately.
func TestExpiredWorkerShardRescheduledImmediately(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	// The hung worker never answers on its own; only cancellation frees
	// its shard. It heartbeats once (Register below) and then goes silent.
	hung := startWorker(t, WorkerConfig{
		Faults: faultinject.New(5).Arm(faultinject.ShardHang, faultinject.Spec{Prob: 1}),
	})
	healthy := startWorker(t, WorkerConfig{MaxConcurrent: 8})
	c := New(Config{Peers: []string{healthy}, Shards: 2, ShardTimeout: time.Minute,
		HeartbeatTTL: 200 * time.Millisecond, Cooldown: time.Millisecond})
	c.Register(hung)

	start := time.Now()
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("result after a TTL-expired worker differs from local run")
	}
	if c.ExpiredDispatches() == 0 {
		t.Fatal("the hung dispatch should have been canceled by heartbeat-TTL expiry, not by the shard timeout")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("reschedule took %v — the shard waited out the timeout instead of the TTL", elapsed)
	}
	if n := int(c.shards["done"].Value()); n != 2 {
		t.Fatalf("want 2 shards done, got %d", n)
	}
}

// TestHedgedDispatchTakesFirstValidResult: a straggler worker that hangs
// forever forces a hedge; the hedge's reply wins, the hung primary is
// canceled, the merged result stays byte-identical and each shard counts
// exactly once.
func TestHedgedDispatchTakesFirstValidResult(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	straggler := startWorker(t, WorkerConfig{
		Faults: faultinject.New(9).Arm(faultinject.ShardHang, faultinject.Spec{Prob: 1}),
	})
	healthy := startWorker(t, WorkerConfig{MaxConcurrent: 8})
	c := New(Config{Peers: []string{straggler, healthy}, Shards: 2, ShardTimeout: time.Minute,
		HedgeQuantile: 0.95, HedgeMinDelay: 50 * time.Millisecond})

	start := time.Now()
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("hedged result differs from local run")
	}
	if c.HedgesLaunched() == 0 {
		t.Fatal("the straggler should have forced at least one hedged dispatch")
	}
	if c.hedges["won"].Value() == 0 {
		t.Fatal("the hedge should have won against a primary that never answers")
	}
	if n := int(c.shards["done"].Value()); n != 2 {
		t.Fatalf("want exactly 2 shards done (the losing attempt must not double-count), got %d", n)
	}
	if n := int(c.shards["retried"].Value()); n != 0 {
		t.Fatalf("a hedge win is not a retry, got %d retries", n)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("hedging took %v — the straggler stalled the job to its timeout", elapsed)
	}
}

// TestCoordinatorCrashResumesFromLedger: a coordinator killed at a
// ledger transition leaves a ledger behind; a fresh coordinator over the
// same LedgerDir re-runs only the unfinished shards and still produces
// the byte-identical result, then retires the ledger.
func TestCoordinatorCrashResumesFromLedger(t *testing.T) {
	req := testReq(t, "disc-all")
	want := localRun(t, req)
	dir := t.TempDir()
	var peers []string
	for i := 0; i < 2; i++ {
		peers = append(peers, startWorker(t, WorkerConfig{MaxConcurrent: 8}))
	}

	fi := faultinject.New(3).Arm(faultinject.CoordinatorCrash, faultinject.Spec{AfterN: 5})
	c1 := New(Config{Peers: peers, Shards: 3, ShardTimeout: time.Minute, LedgerDir: dir, Faults: fi})
	if _, err := c1.Mine(context.Background(), req, nil); !errors.Is(err, ErrCoordinatorCrash) {
		t.Fatalf("want ErrCoordinatorCrash from the drilled run, got %v", err)
	}
	if got := fi.Fired(faultinject.CoordinatorCrash); got != 1 {
		t.Fatalf("CoordinatorCrash fired %d times, want 1", got)
	}

	fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)
	led, err := checkpoint.ReadLedgerFile(LedgerPath(dir, fp))
	if err != nil {
		t.Fatalf("crashed coordinator left no readable ledger: %v", err)
	}
	doneBefore := 0
	for _, s := range led.Shards {
		if s.State == checkpoint.ShardDone {
			doneBefore++
		}
	}

	// The restarted coordinator is configured with a different shard
	// count — the ledger's must win, its partitions were hashed with it.
	c2 := New(Config{Peers: peers, Shards: 7, ShardTimeout: time.Minute, LedgerDir: dir})
	res, err := c2.Mine(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Fatal("post-crash resumed result differs from an uninterrupted local run")
	}
	if got := c2.ResumedShards(); got != doneBefore {
		t.Errorf("resumed %d shards from the ledger, want %d (its done count)", got, doneBefore)
	}
	if got := int(c2.shards["done"].Value()); got != len(led.Shards)-doneBefore {
		t.Errorf("re-dispatched %d shards, want only the %d unfinished ones",
			got, len(led.Shards)-doneBefore)
	}
	if _, err := os.Stat(LedgerPath(dir, fp)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ledger must be retired after the job completes (stat: %v)", err)
	}
}

// TestRecoverResubmitsInterruptedJobs: a restarted coordinator turns the
// surviving ledgers back into job submissions — self-contained, verified
// against their own fingerprint — and skips junk.
func TestRecoverResubmitsInterruptedJobs(t *testing.T) {
	req := testReq(t, "disc-all")
	dir := t.TempDir()
	worker := startWorker(t, WorkerConfig{MaxConcurrent: 8})

	fi := faultinject.New(1).Arm(faultinject.CoordinatorCrash, faultinject.Spec{AfterN: 1})
	c1 := New(Config{Peers: []string{worker}, Shards: 2, ShardTimeout: time.Minute, LedgerDir: dir, Faults: fi})
	if _, err := c1.Mine(context.Background(), req, nil); !errors.Is(err, ErrCoordinatorCrash) {
		t.Fatalf("want ErrCoordinatorCrash, got %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.ledger"), []byte("not a ledger"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := New(Config{Peers: []string{worker}, LedgerDir: dir})
	var got []jobs.Request
	n := c2.Recover(func(r jobs.Request) (*jobs.Job, error) {
		got = append(got, r)
		return nil, nil
	})
	if n != 1 || len(got) != 1 {
		t.Fatalf("recovered %d jobs (%d submissions), want exactly 1 — junk must be skipped", n, len(got))
	}
	r := got[0]
	if r.Algo != req.Algo || r.MinSup != req.MinSup {
		t.Fatalf("recovered request %q minsup %d, want %q minsup %d", r.Algo, r.MinSup, req.Algo, req.MinSup)
	}
	wantFP := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)
	if fp := core.CheckpointFingerprint(r.Algo, r.Opts, r.MinSup, r.DB); fp != wantFP {
		t.Fatalf("recovered request fingerprints to %016x, original job is %016x", fp, wantFP)
	}

	// A coordinator without a LedgerDir has nothing to recover.
	if n := New(Config{}).Recover(func(jobs.Request) (*jobs.Job, error) {
		t.Fatal("submit must not be called without a LedgerDir")
		return nil, nil
	}); n != 0 {
		t.Fatalf("ledgerless Recover returned %d", n)
	}
}
