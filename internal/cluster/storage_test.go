package cluster

import (
	"os"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
)

// TestStorageGCSweepsAndScrubsLedgerDir: one StorageGC pass reclaims
// ledgers past retention and quarantines resting bit-rot, leaving a
// fresh, valid ledger untouched.
func TestStorageGCSweepsAndScrubsLedgerDir(t *testing.T) {
	dir := t.TempDir()
	ledger := func(fp uint64) *checkpoint.Ledger {
		return &checkpoint.Ledger{
			Algo: "disc-all", Fingerprint: fp, MinSup: 2, DB: "1 2 3\n",
			Shards: []checkpoint.LedgerShard{{State: checkpoint.ShardPending}},
		}
	}

	stale := LedgerPath(dir, 0xaa)
	if _, err := ledger(0xaa).WriteFile(stale); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	rotted := LedgerPath(dir, 0xbb)
	if _, err := ledger(0xbb).WriteFile(rotted); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(rotted)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x20
	if err := os.WriteFile(rotted, b, 0o644); err != nil {
		t.Fatal(err)
	}

	live := LedgerPath(dir, 0xcc)
	if _, err := ledger(0xcc).WriteFile(live); err != nil {
		t.Fatal(err)
	}

	c := New(Config{
		Peers: []string{"http://127.0.0.1:1"}, // never contacted
		LedgerDir: dir, StorageRetention: 24 * time.Hour, Logf: t.Logf,
	})
	c.StorageGC()

	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale ledger survived GC (stat err: %v)", err)
	}
	if _, err := os.Stat(rotted + checkpoint.QuarantineSuffix); err != nil {
		t.Errorf("rotted ledger not quarantined: %v", err)
	}
	if got := c.QuarantinedLedgers(); got != 1 {
		t.Errorf("QuarantinedLedgers = %d, want 1", got)
	}
	if _, err := checkpoint.ReadLedgerFileFS(nil, live); err != nil {
		t.Errorf("fresh valid ledger must survive GC intact: %v", err)
	}
}
