package gen

import (
	"math"
	"testing"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/prefixspan"
	"github.com/disc-mining/disc/internal/seq"
)

func smallConfig(seed int64) Config {
	return Config{
		NCust: 300, SLen: 6, TLen: 2.5, NItems: 60, SeqPatLen: 4,
		NSeqPatterns: 50, NLitPatterns: 200, Seed: seed,
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(smallConfig(7))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if seq.Compare(a[i].Pattern(), b[i].Pattern()) != 0 {
			t.Fatalf("customer %d differs between runs with the same seed", i)
		}
	}
	c, _ := Generate(smallConfig(8))
	same := 0
	for i := range a {
		if seq.Compare(a[i].Pattern(), c[i].Pattern()) == 0 {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical databases")
	}
}

func TestShapeMatchesParameters(t *testing.T) {
	cfg := Config{
		NCust: 2000, SLen: 10, TLen: 2.5, NItems: 200, SeqPatLen: 4,
		NSeqPatterns: 500, NLitPatterns: 2000, Seed: 1,
	}
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != cfg.NCust {
		t.Fatalf("len = %d, want %d", len(db), cfg.NCust)
	}
	theta := db.AvgTransPerCustomer()
	if math.Abs(theta-cfg.SLen) > 1.0 {
		t.Errorf("avg transactions per customer = %.2f, want ~%.1f", theta, cfg.SLen)
	}
	totalTrans := 0
	for _, cs := range db {
		totalTrans += cs.NTrans()
		for _, it := range cs.Items() {
			if it < 1 || int(it) > cfg.NItems {
				t.Fatalf("item %d out of range", it)
			}
		}
	}
	avgT := float64(db.TotalItems()) / float64(totalTrans)
	if avgT < 1.2 || avgT > cfg.TLen+1.5 {
		t.Errorf("avg items per transaction = %.2f, want near %.1f", avgT, cfg.TLen)
	}
	// CIDs are 1-based and sequential.
	if db[0].CID != 1 || db[len(db)-1].CID != cfg.NCust {
		t.Errorf("CIDs = %d..%d", db[0].CID, db[len(db)-1].CID)
	}
}

// TestEmbeddedPatternsAreMineable: the point of the generator is that it
// plants sequential patterns. Mining at a moderate threshold must surface
// multi-itemset patterns, not just single items.
func TestEmbeddedPatternsAreMineable(t *testing.T) {
	db, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	minSup := mining.AbsSupport(0.02, len(db))
	res, err := core.New().Mine(db, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLen() < 3 {
		t.Errorf("generated data yields max pattern length %d; embedded patterns not discoverable", res.MaxLen())
	}
	multi := 0
	for _, pc := range res.Sorted() {
		if pc.Pattern.NumItemsets() > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-transaction frequent sequences found in generated data")
	}
}

// TestMinersAgreeOnGeneratedData is an end-to-end integration check on
// realistic data: DISC-all, Dynamic, PrefixSpan, Pseudo and the level-wise
// reference all agree.
func TestMinersAgreeOnGeneratedData(t *testing.T) {
	db, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	minSup := mining.AbsSupport(0.03, len(db))
	ref, err := bruteforce.LevelWise{}.Mine(db, minSup)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []mining.Miner{core.New(), core.NewDynamic(), prefixspan.Basic{}, prefixspan.Pseudo{}} {
		got, err := m.Mine(db, minSup)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if diff := ref.Diff(got); diff != "" {
			t.Fatalf("%s disagrees on generated data:\n%s", m.Name(), diff)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Generate(Config{NCust: -1, NItems: 10}); err == nil {
		t.Error("negative ncust must error")
	}
	if _, err := Generate(Config{NCust: 10, NItems: 0}); err == nil {
		t.Error("zero nitems must error")
	}
	// Zero-value optional fields fall back to Quest defaults.
	db, err := Generate(Config{NCust: 5, NItems: 50})
	if err != nil || len(db) != 5 {
		t.Errorf("defaults: %v, %d customers", err, len(db))
	}
}

// TestGenerateTinyItemUniverse: itemset sizes are clamped to the item
// universe, so a universe smaller than a Poisson size draw terminates
// (this used to loop forever) and every item stays in range.
func TestGenerateTinyItemUniverse(t *testing.T) {
	for items := 1; items <= 3; items++ {
		db, err := Generate(Config{NCust: 30, SLen: 2, TLen: 2, NItems: items, Seed: int64(items)})
		if err != nil {
			t.Fatal(err)
		}
		if len(db) != 30 {
			t.Fatalf("nitems=%d: %d customers", items, len(db))
		}
		for _, cs := range db {
			for _, it := range cs.Items() {
				if int(it) < 1 || int(it) > items {
					t.Fatalf("nitems=%d: item %d out of range", items, it)
				}
			}
		}
	}
}

func TestPaperDefaultConfigs(t *testing.T) {
	p := PaperDefaults(50000)
	if p.SLen != 10 || p.TLen != 2.5 || p.NItems != 1000 || p.SeqPatLen != 4 {
		t.Errorf("PaperDefaults = %+v", p)
	}
	d := DenseDefaults(10000)
	if d.SLen != 8 || d.TLen != 8 || d.SeqPatLen != 8 {
		t.Errorf("DenseDefaults = %+v", d)
	}
}

func TestPoissonMean(t *testing.T) {
	g := &generator{cfg: Config{}, r: newRand(9)}
	n := 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += g.poisson(3.0)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-3.0) > 0.1 {
		t.Errorf("poisson(3) sample mean = %.3f", mean)
	}
	if g.poisson(0) != 0 || g.poisson(-1) != 0 {
		t.Error("poisson of non-positive mean must be 0")
	}
}
