// Package gen is a from-scratch reimplementation of the IBM Quest
// synthetic sequence generator of Agrawal & Srikant (ICDE 1995), which the
// paper's evaluation (§4, Table 11) drives through the options ncust, slen,
// tlen, nitems and seq.patlen. The original July-1997 binary is not
// available; this generator reproduces the documented statistical process:
//
//  1. A pool of NI potentially-large itemsets: sizes Poisson-distributed
//     around lit.patlen, successive itemsets sharing a correlated fraction
//     of items, with exponentially distributed selection weights.
//  2. A pool of NS potentially-large sequences: lengths (in itemsets)
//     Poisson-distributed around seq.patlen, itemsets drawn from pool 1
//     (again with correlation between successive sequences), exponential
//     weights, and a per-sequence corruption level (normal around the
//     configured mean) controlling how completely instances are embedded.
//  3. Customer sequences: transaction counts Poisson(slen), transaction
//     sizes Poisson(tlen); weighted potentially-large sequences are
//     corrupted (items dropped per the corruption level) and embedded onto
//     random increasing transaction positions until the item budget is
//     met; leftover capacity is filled from the itemset pool.
//
// The generator is deterministic for a fixed Config (including Seed).
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Config mirrors the paper's Table 11 command options plus the Quest
// defaults the paper says it kept.
type Config struct {
	NCust     int     // ncust: number of customers
	SLen      float64 // slen: average transactions per customer (the paper's θ in §4.3)
	TLen      float64 // tlen: average items per transaction
	NItems    int     // nitems: number of distinct items
	SeqPatLen float64 // seq.patlen: average itemsets per maximal potentially-large sequence

	LitPatLen    float64 // lit.patlen: average items per potentially-large itemset (Quest default 1.25)
	NSeqPatterns int     // NS: size of the potentially-large sequence pool (Quest default 5000)
	NLitPatterns int     // NI: size of the potentially-large itemset pool (Quest default 25000)
	Correlation  float64 // correlation between successive pool entries (Quest default 0.25)
	Corruption   float64 // mean per-item drop probability when embedding (Quest corruption mean)

	Seed int64
}

// PaperDefaults returns the Table 11 parameter setting of §4.1:
// slen=10, tlen=2.5, nitems=1000, seq.patlen=4 (ncust varies per figure).
func PaperDefaults(ncust int) Config {
	return Config{
		NCust:     ncust,
		SLen:      10,
		TLen:      2.5,
		NItems:    1000,
		SeqPatLen: 4,
	}
}

// DenseDefaults returns the §4.1 second-experiment setting taken from Lesh
// et al.: slen, tlen and seq.patlen all 8.
func DenseDefaults(ncust int) Config {
	return Config{
		NCust:     ncust,
		SLen:      8,
		TLen:      8,
		NItems:    1000,
		SeqPatLen: 8,
	}
}

func (c Config) withDefaults() (Config, error) {
	if c.NCust < 0 || c.NItems <= 0 {
		return c, fmt.Errorf("gen: invalid config: ncust=%d nitems=%d", c.NCust, c.NItems)
	}
	if c.SLen <= 0 {
		c.SLen = 10
	}
	if c.TLen <= 0 {
		c.TLen = 2.5
	}
	if c.SeqPatLen <= 0 {
		c.SeqPatLen = 4
	}
	if c.LitPatLen <= 0 {
		c.LitPatLen = 1.25
	}
	if c.NSeqPatterns <= 0 {
		c.NSeqPatterns = 5000
	}
	if c.NLitPatterns <= 0 {
		c.NLitPatterns = 25000
	}
	if c.Correlation <= 0 {
		c.Correlation = 0.25
	}
	if c.Corruption <= 0 {
		c.Corruption = 0.25
	}
	return c, nil
}

// Generate synthesizes a database per the config.
func Generate(cfg Config) (mining.Database, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, r: r}
	g.buildItemsetPool()
	g.buildSequencePool()
	db := make(mining.Database, cfg.NCust)
	for c := range db {
		db[c] = g.customer(c + 1)
	}
	return db, nil
}

type generator struct {
	cfg cfg
	r   *rand.Rand

	itemsets   [][]seq.Item // potentially-large itemset pool
	itemsetCum []float64    // cumulative weights

	seqs       [][][]seq.Item // potentially-large sequence pool
	seqCum     []float64
	corruption []float64 // per-sequence corruption level
}

type cfg = Config

// poisson samples a Poisson variate with the given mean (Knuth's method;
// the means here are tiny).
func (g *generator) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func (g *generator) buildItemsetPool() {
	n := g.cfg.NLitPatterns
	g.itemsets = make([][]seq.Item, n)
	weights := make([]float64, n)
	var prev []seq.Item
	for i := 0; i < n; i++ {
		size := g.poisson(g.cfg.LitPatLen-1) + 1
		// An itemset holds distinct items, so its size cannot exceed the
		// universe; without the clamp the fill loop below never terminates
		// on configs with very few items.
		if size > g.cfg.NItems {
			size = g.cfg.NItems
		}
		set := map[seq.Item]bool{}
		// A correlated fraction of items comes from the previous itemset.
		if len(prev) > 0 {
			frac := math.Min(1, g.r.ExpFloat64()*g.cfg.Correlation)
			take := int(frac * float64(len(prev)))
			for _, j := range g.r.Perm(len(prev))[:take] {
				if len(set) < size {
					set[prev[j]] = true
				}
			}
		}
		for len(set) < size {
			set[seq.Item(1+g.r.Intn(g.cfg.NItems))] = true
		}
		items := make([]seq.Item, 0, len(set))
		for it := range set {
			items = append(items, it)
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		g.itemsets[i] = items
		weights[i] = g.r.ExpFloat64()
		prev = items
	}
	g.itemsetCum = cumulative(weights)
}

func (g *generator) buildSequencePool() {
	n := g.cfg.NSeqPatterns
	g.seqs = make([][][]seq.Item, n)
	weights := make([]float64, n)
	g.corruption = make([]float64, n)
	var prev [][]seq.Item
	for i := 0; i < n; i++ {
		length := g.poisson(g.cfg.SeqPatLen-1) + 1
		s := make([][]seq.Item, 0, length)
		// Correlated fraction of itemsets carried over from the previous
		// pool entry, preserving order.
		if len(prev) > 0 {
			frac := math.Min(1, g.r.ExpFloat64()*g.cfg.Correlation)
			take := int(frac * float64(len(prev)))
			if take > length {
				take = length
			}
			idx := g.r.Perm(len(prev))[:take]
			sort.Ints(idx)
			for _, j := range idx {
				s = append(s, prev[j])
			}
		}
		for len(s) < length {
			s = append(s, g.pickItemset())
		}
		g.seqs[i] = s
		weights[i] = g.r.ExpFloat64()
		// Corruption level: normal around the configured mean, clipped.
		c := g.cfg.Corruption + 0.1*g.r.NormFloat64()
		if c < 0 {
			c = 0
		}
		if c > 0.9 {
			c = 0.9
		}
		g.corruption[i] = c
		prev = s
	}
	g.seqCum = cumulative(weights)
}

func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	sum := 0.0
	for i, x := range w {
		sum += x
		out[i] = sum
	}
	return out
}

func pickWeighted(r *rand.Rand, cum []float64) int {
	x := r.Float64() * cum[len(cum)-1]
	return sort.SearchFloat64s(cum, x)
}

func (g *generator) pickItemset() []seq.Item {
	return g.itemsets[pickWeighted(g.r, g.itemsetCum)]
}

// customer synthesizes one customer sequence.
func (g *generator) customer(cid int) *seq.CustomerSeq {
	nt := g.poisson(g.cfg.SLen-1) + 1
	sizes := make([]int, nt)
	budget := 0
	for i := range sizes {
		sizes[i] = g.poisson(g.cfg.TLen-1) + 1
		budget += sizes[i]
	}
	trans := make([]map[seq.Item]bool, nt)
	for i := range trans {
		trans[i] = map[seq.Item]bool{}
	}
	used := 0
	// Embed corrupted potentially-large sequences onto random increasing
	// transaction positions until the budget is spent (with an attempt cap
	// so heavily corrupted picks cannot loop forever).
	for attempts := 0; used < budget && attempts < 4+2*nt; attempts++ {
		pi := pickWeighted(g.r, g.seqCum)
		inst := g.corrupt(g.seqs[pi], g.corruption[pi])
		if len(inst) == 0 || len(inst) > nt {
			continue
		}
		pos := g.r.Perm(nt)[:len(inst)]
		sort.Ints(pos)
		for j, is := range inst {
			for _, it := range is {
				if !trans[pos[j]][it] {
					trans[pos[j]][it] = true
					used++
				}
			}
		}
	}
	// Top up under-filled transactions from the itemset pool so that the
	// average transaction size tracks tlen.
	for i := range trans {
		for guard := 0; len(trans[i]) < sizes[i] && guard < 8; guard++ {
			for _, it := range g.pickItemset() {
				if len(trans[i]) >= sizes[i] {
					break
				}
				trans[i][it] = true
			}
		}
	}
	sets := make([]seq.Itemset, nt)
	for i, m := range trans {
		is := make(seq.Itemset, 0, len(m))
		for it := range m {
			is = append(is, it)
		}
		sets[i] = is // NewCustomerSeq canonicalizes
	}
	return seq.NewCustomerSeq(cid, sets...)
}

// corrupt drops each item of the pattern with the pattern's corruption
// probability and removes emptied itemsets.
func (g *generator) corrupt(pat [][]seq.Item, level float64) [][]seq.Item {
	out := make([][]seq.Item, 0, len(pat))
	for _, is := range pat {
		var kept []seq.Item
		for _, it := range is {
			if g.r.Float64() >= level {
				kept = append(kept, it)
			}
		}
		if len(kept) > 0 {
			out = append(out, kept)
		}
	}
	return out
}

// newRand builds the generator's seeded source (exposed for tests).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Mutate returns a randomly perturbed deep copy of db: per customer one
// structural edit is applied (drop/duplicate/swap a transaction, drop an
// item occurrence, inject an item from another customer, or no change),
// and occasionally a whole customer is duplicated. Every result is
// re-canonicalized through seq.NewCustomerSeq; customers mutated to
// emptiness are removed. The differential-correctness harness
// (internal/difftest) uses this to reach database shapes the generator's
// statistical process never produces — near-empty customers, exact
// duplicate sequences, truncated tails. Deterministic for a fixed rand
// state.
func Mutate(r *rand.Rand, db mining.Database) mining.Database {
	out := make(mining.Database, 0, len(db)+1)
	for _, cs := range db {
		src := cs.Itemsets()
		sets := make([]seq.Itemset, len(src))
		for i, is := range src {
			sets[i] = append(seq.Itemset(nil), is...)
		}
		switch r.Intn(6) {
		case 0: // drop a transaction
			if len(sets) > 0 {
				t := r.Intn(len(sets))
				sets = append(sets[:t], sets[t+1:]...)
			}
		case 1: // duplicate a transaction in place
			if len(sets) > 0 {
				t := r.Intn(len(sets))
				sets = append(sets[:t+1], sets[t:]...)
			}
		case 2: // swap two transactions
			if len(sets) > 1 {
				a, b := r.Intn(len(sets)), r.Intn(len(sets))
				sets[a], sets[b] = sets[b], sets[a]
			}
		case 3: // drop one item occurrence
			if len(sets) > 0 {
				t := r.Intn(len(sets))
				if len(sets[t]) > 0 {
					i := r.Intn(len(sets[t]))
					sets[t] = append(sets[t][:i], sets[t][i+1:]...)
				}
			}
		case 4: // inject an item from another customer
			if len(sets) > 0 && len(db) > 0 {
				donor := db[r.Intn(len(db))]
				if donor.Len() > 0 {
					t := r.Intn(len(sets))
					sets[t] = append(sets[t], donor.ItemAt(r.Intn(donor.Len())))
				}
			}
		default: // unchanged
		}
		ncs := seq.NewCustomerSeq(cs.CID, sets...)
		if ncs.Len() > 0 {
			out = append(out, ncs)
		}
	}
	if len(out) > 0 && r.Intn(4) == 0 {
		out = append(out, out[r.Intn(len(out))])
	}
	return out
}
