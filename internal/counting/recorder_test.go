package counting

import (
	"testing"

	"github.com/disc-mining/disc/internal/seq"
)

// TestRecorderCountsDedupHits checks that only the last-CID-suppressed
// touches count as dedup hits, that supports are unchanged by
// observation, and that the nil-recorder path is safe.
func TestRecorderCountsDedupHits(t *testing.T) {
	var rec Recorder
	a := New(5).Observe(&rec)

	a.TouchS(3, 1) // first touch: not a dedup hit
	a.TouchS(3, 1) // same customer again: dedup hit
	a.TouchS(3, 1) // and again
	a.TouchS(3, 2) // new customer: counts
	a.TouchI(4, 1)
	a.TouchI(4, 1) // dedup hit

	if got := rec.DedupHits.Load(); got != 3 {
		t.Errorf("DedupHits = %d, want 3", got)
	}
	if got := a.SupS(3); got != 2 {
		t.Errorf("SupS(3) = %d, want 2", got)
	}
	if got := a.SupI(4); got != 1 {
		t.Errorf("SupI(4) = %d, want 1", got)
	}

	// Recorder survives Reset (pooled arrays rely on this).
	a.Reset()
	a.TouchS(2, 7)
	a.TouchS(2, 7)
	if got := rec.DedupHits.Load(); got != 4 {
		t.Errorf("DedupHits after Reset = %d, want 4", got)
	}

	plain := New(seq.Item(5))
	plain.TouchS(1, 1)
	plain.TouchS(1, 1) // nil recorder must not panic
	if got := plain.SupS(1); got != 1 {
		t.Errorf("plain SupS = %d, want 1", got)
	}
}
