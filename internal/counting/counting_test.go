package counting

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/seq"
)

func TestDedupByCID(t *testing.T) {
	a := New(10)
	// Customer 1 touches item 3 twice in each form: counts once.
	a.TouchS(3, 1)
	a.TouchS(3, 1)
	a.TouchI(3, 1)
	a.TouchI(3, 1)
	a.TouchS(3, 2)
	if a.SupS(3) != 2 {
		t.Errorf("SupS(3) = %d, want 2", a.SupS(3))
	}
	if a.SupI(3) != 1 {
		t.Errorf("SupI(3) = %d, want 1", a.SupI(3))
	}
	if a.SupS(4) != 0 || a.SupI(4) != 0 {
		t.Error("untouched item has nonzero support")
	}
}

func TestResetIsO1AndComplete(t *testing.T) {
	a := New(5)
	for cid := int32(1); cid <= 4; cid++ {
		for x := seq.Item(1); x <= 5; x++ {
			a.TouchS(x, cid)
			a.TouchI(x, cid)
		}
	}
	a.Reset()
	for x := seq.Item(1); x <= 5; x++ {
		if a.SupS(x) != 0 || a.SupI(x) != 0 {
			t.Fatalf("item %d survived Reset", x)
		}
	}
	if got := a.FrequentS(1, nil); len(got) != 0 {
		t.Errorf("FrequentS after Reset = %v", got)
	}
	// Counts behave normally after reset (epoch stamping must not confuse
	// stale cells).
	a.TouchS(2, 7)
	if a.SupS(2) != 1 {
		t.Errorf("SupS(2) after reset = %d", a.SupS(2))
	}
}

func TestFrequentAscendingOrder(t *testing.T) {
	a := New(20)
	for _, x := range []seq.Item{9, 2, 17, 5} {
		for cid := int32(1); cid <= 3; cid++ {
			a.TouchS(x, cid)
		}
	}
	a.TouchS(12, 1) // below threshold
	got := a.FrequentS(3, nil)
	want := []seq.Item{2, 5, 9, 17}
	if len(got) != len(want) {
		t.Fatalf("FrequentS = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FrequentS = %v, want %v", got, want)
		}
	}
}

// TestAgainstMapModel drives random touch sequences and compares against a
// map-based model, across many epochs.
func TestAgainstMapModel(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := New(8)
	for epoch := 0; epoch < 50; epoch++ {
		a.Reset()
		modelS := map[seq.Item]map[int32]bool{}
		modelI := map[seq.Item]map[int32]bool{}
		// The last-CID dedup assumes each customer's touches are
		// contiguous, as in a database scan: iterate customers in order
		// with a random burst of touches each.
		for cid := int32(1); cid <= 10; cid++ {
			for op := 0; op < 20; op++ {
				x := seq.Item(1 + r.Intn(8))
				if r.Intn(2) == 0 {
					a.TouchS(x, cid)
					if modelS[x] == nil {
						modelS[x] = map[int32]bool{}
					}
					modelS[x][cid] = true
				} else {
					a.TouchI(x, cid)
					if modelI[x] == nil {
						modelI[x] = map[int32]bool{}
					}
					modelI[x][cid] = true
				}
			}
		}
		for x := seq.Item(1); x <= 8; x++ {
			if a.SupS(x) != len(modelS[x]) {
				t.Fatalf("epoch %d SupS(%d) = %d, model %d", epoch, x, a.SupS(x), len(modelS[x]))
			}
			if a.SupI(x) != len(modelI[x]) {
				t.Fatalf("epoch %d SupI(%d) = %d, model %d", epoch, x, a.SupI(x), len(modelI[x]))
			}
		}
	}
}

// Caveat from the paper's counting-array description: the last-CID trick
// only works when each customer's touches are contiguous. Out-of-order
// re-touching by an earlier customer would double count — assert the
// documented behaviour so the DISC-all code keeps respecting it.
func TestNonContiguousCIDsDoubleCount(t *testing.T) {
	a := New(4)
	a.TouchS(1, 1)
	a.TouchS(1, 2)
	a.TouchS(1, 1) // revisiting customer 1: counted again by design
	if a.SupS(1) != 3 {
		t.Errorf("SupS = %d; the last-CID mechanism assumes contiguous customer scans", a.SupS(1))
	}
}

// TestSteadyStateZeroAllocs pins the scratch-buffer property the engine
// arenas rely on: after one warm round, a full touch / frequent-scan /
// Reset cycle of the same shape performs zero heap allocations — the
// Frequent* sort runs in the retained sortBuf, not a fresh copy of the
// touched list.
func TestSteadyStateZeroAllocs(t *testing.T) {
	a := New(60)
	buf := make([]seq.Item, 0, 64)
	round := func() {
		for i := 0; i < 200; i++ {
			a.TouchS(seq.Item(i%53+1), int32(i%17))
			a.TouchI(seq.Item(i%41+1), int32(i%17))
		}
		buf = a.FrequentS(3, buf[:0])
		buf = a.FrequentI(3, buf[:0])
		a.Reset()
	}
	round()
	round()
	if allocs := testing.AllocsPerRun(20, round); allocs != 0 {
		t.Fatalf("steady-state round allocated %.0f times, want 0", allocs)
	}
}

// TestMemBytesAccounting sanity-checks the O(1) footprint report: zero
// before any slab exists is impossible (New allocates the support
// slabs), but the figure must grow once the touched lists and sort
// scratch fill, and must be stable across Reset (slabs are retained).
func TestMemBytesAccounting(t *testing.T) {
	a := New(100)
	base := a.MemBytes()
	if base <= 0 {
		t.Fatalf("fresh array MemBytes = %d", base)
	}
	for i := 0; i < 300; i++ {
		a.TouchS(seq.Item(i%97+1), int32(i))
	}
	a.FrequentS(1, nil)
	grown := a.MemBytes()
	if grown <= base {
		t.Fatalf("MemBytes did not grow with touched lists: %d -> %d", base, grown)
	}
	a.Reset()
	if got := a.MemBytes(); got != grown {
		t.Fatalf("Reset changed MemBytes %d -> %d; slabs should be retained", grown, got)
	}
}
