// Package counting implements the counting-array mechanism of §3.1 of
// Chiu, Wu & Chen (ICDE 2004): per-item support accumulators for the two
// extension forms <(λ)(x)> (s-extension) and <(λx)> (i-extension), each
// cell paired with the last customer id that touched it so that repeated
// occurrences inside one customer sequence count once (Figure 3).
//
// Arrays are reset in O(1) by epoch stamping, since DISC-all resets one per
// partition and per virtual partition.
package counting

import (
	"slices"
	"sync/atomic"

	"github.com/disc-mining/disc/internal/seq"
)

// Recorder accumulates counting-array statistics. Like avl.Recorder it
// is a local atomic sink, not a registry instrument: TouchS/TouchI are
// the innermost loop of DISC's support counting, so the uninstrumented
// path must stay a single pointer check. A nil *Recorder is valid.
type Recorder struct {
	// DedupHits counts touches suppressed by the last-customer-id check
	// — repeated occurrences inside one customer sequence that the
	// Figure 3 mechanism refuses to double count.
	DedupHits atomic.Int64
}

func (r *Recorder) dedup() {
	if r != nil {
		r.DedupHits.Add(1)
	}
}

// Array accumulates support counts for s-form and i-form single-item
// extensions of a fixed prefix.
type Array struct {
	epoch      uint32
	supS, supI []int32
	cidS, cidI []int32
	epS, epI   []uint32 // epoch stamp per cell
	touchedS   []seq.Item
	touchedI   []seq.Item
	sortBuf    []seq.Item // frequent()'s reusable sort staging
	maxItem    seq.Item
	rec        *Recorder
}

// Observe attaches a recorder (nil detaches) and returns the array for
// chaining. Pooled arrays keep their recorder across Reset.
func (a *Array) Observe(r *Recorder) *Array {
	a.rec = r
	return a
}

// New returns an array for items in [1, maxItem].
func New(maxItem seq.Item) *Array {
	n := int(maxItem) + 1
	return &Array{
		epoch: 1,
		supS:  make([]int32, n), supI: make([]int32, n),
		cidS: make([]int32, n), cidI: make([]int32, n),
		epS: make([]uint32, n), epI: make([]uint32, n),
		maxItem: maxItem,
	}
}

// Reset clears all counts in O(1).
func (a *Array) Reset() {
	a.epoch++
	a.touchedS = a.touchedS[:0]
	a.touchedI = a.touchedI[:0]
}

// TouchS records that customer cid supports the s-form extension with item
// x; repeated calls with the same cid are counted once.
func (a *Array) TouchS(x seq.Item, cid int32) {
	if a.epS[x] != a.epoch {
		a.epS[x] = a.epoch
		a.supS[x] = 1
		a.cidS[x] = cid
		a.touchedS = append(a.touchedS, x)
		return
	}
	if a.cidS[x] != cid {
		a.cidS[x] = cid
		a.supS[x]++
		return
	}
	a.rec.dedup()
}

// TouchI records that customer cid supports the i-form extension with item
// x; repeated calls with the same cid are counted once.
func (a *Array) TouchI(x seq.Item, cid int32) {
	if a.epI[x] != a.epoch {
		a.epI[x] = a.epoch
		a.supI[x] = 1
		a.cidI[x] = cid
		a.touchedI = append(a.touchedI, x)
		return
	}
	if a.cidI[x] != cid {
		a.cidI[x] = cid
		a.supI[x]++
		return
	}
	a.rec.dedup()
}

// SupS returns the s-form support of item x.
func (a *Array) SupS(x seq.Item) int {
	if a.epS[x] != a.epoch {
		return 0
	}
	return int(a.supS[x])
}

// SupI returns the i-form support of item x.
func (a *Array) SupI(x seq.Item) int {
	if a.epI[x] != a.epoch {
		return 0
	}
	return int(a.supI[x])
}

// FrequentS appends to buf the items whose s-form support is at least
// minSup, in ascending item order, and returns the extended buffer.
func (a *Array) FrequentS(minSup int, buf []seq.Item) []seq.Item {
	return a.frequent(a.touchedS, a.supS, a.epS, minSup, buf)
}

// FrequentI appends to buf the items whose i-form support is at least
// minSup, in ascending item order, and returns the extended buffer.
func (a *Array) FrequentI(minSup int, buf []seq.Item) []seq.Item {
	return a.frequent(a.touchedI, a.supI, a.epI, minSup, buf)
}

func (a *Array) frequent(touched []seq.Item, sup []int32, ep []uint32, minSup int, buf []seq.Item) []seq.Item {
	// touched is unsorted; results must come out in item order. The
	// touched set is small relative to maxItem in deep partitions, so sort
	// a copy of the touched list (staged in the array's reusable buffer —
	// warm calls allocate nothing) rather than scanning the whole array.
	tmp := append(a.sortBuf[:0], touched...)
	a.sortBuf = tmp
	slices.Sort(tmp)
	for _, x := range tmp {
		if ep[x] == a.epoch && int(sup[x]) >= minSup {
			buf = append(buf, x)
		}
	}
	return buf
}

// MemBytes returns the array's slab footprint: six per-item cell arrays
// plus the touched and sort staging buffers. O(1); feeds the engine's
// resource-budget accounting.
func (a *Array) MemBytes() int64 {
	return int64(cap(a.supS)+cap(a.supI)+cap(a.cidS)+cap(a.cidI))*4 +
		int64(cap(a.epS)+cap(a.epI))*4 +
		int64(cap(a.touchedS)+cap(a.touchedI)+cap(a.sortBuf))*4
}
