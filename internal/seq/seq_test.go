package seq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewItemsetCanonicalizes(t *testing.T) {
	is := NewItemset(4, 2, 4, 1, 2)
	want := Itemset{1, 2, 4}
	if len(is) != len(want) {
		t.Fatalf("NewItemset = %v, want %v", is, want)
	}
	for i := range want {
		if is[i] != want[i] {
			t.Fatalf("NewItemset = %v, want %v", is, want)
		}
	}
}

func TestItemsetContains(t *testing.T) {
	cases := []struct {
		t, s string
		want bool
	}{
		{"(a, e, g)", "(a, g)", true},
		{"(a, e, g)", "(a, e, g)", true},
		{"(a, e, g)", "(b)", false},
		{"(a, e, g)", "(a, b)", false},
		{"(b, f)", "(f)", true},
		{"(b)", "(b, f)", false},
	}
	for _, c := range cases {
		tp := MustParsePattern(c.t).LastItemset()
		sp := MustParsePattern(c.s).LastItemset()
		if got := tp.Contains(sp); got != c.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", tp, sp, got, c.want)
		}
	}
}

func TestItemsetHas(t *testing.T) {
	is := NewItemset(2, 5, 9)
	for _, c := range []struct {
		x    Item
		want bool
	}{{2, true}, {5, true}, {9, true}, {1, false}, {3, false}, {10, false}} {
		if got := is.Has(c.x); got != c.want {
			t.Errorf("Has(%d) = %v, want %v", c.x, got, c.want)
		}
	}
}

// TestTransactionNumbering reproduces the §2 example: in <(a)(b)(c,d)(e)>
// the transaction numbers of the five items are 1, 2, 3, 3, 4.
func TestTransactionNumbering(t *testing.T) {
	p := MustParsePattern("(a)(b)(c,d)(e)")
	want := []int32{1, 2, 3, 3, 4}
	if p.Len() != 5 {
		t.Fatalf("Len = %d, want 5", p.Len())
	}
	for i, w := range want {
		if p.TNoAt(i) != w {
			t.Errorf("tno[%d] = %d, want %d", i, p.TNoAt(i), w)
		}
	}
	if p.NumItemsets() != 4 {
		t.Errorf("NumItemsets = %d, want 4", p.NumItemsets())
	}
}

// TestCompareIntroExamples checks the §1.2 ordering examples:
// <(a)(b)(h)> < <(a)(c)(f)> and <(a,b)(c)> < <(a)(b,c)>.
func TestCompareIntroExamples(t *testing.T) {
	cases := []struct {
		small, big string
	}{
		{"(a)(b)(h)", "(a)(c)(f)"},
		{"(a,b)(c)", "(a)(b,c)"},
	}
	for _, c := range cases {
		a, b := MustParsePattern(c.small), MustParsePattern(c.big)
		if Compare(a, b) >= 0 {
			t.Errorf("Compare(%s, %s) = %d, want < 0", a.Letters(), b.Letters(), Compare(a, b))
		}
		if Compare(b, a) <= 0 {
			t.Errorf("Compare(%s, %s) = %d, want > 0", b.Letters(), a.Letters(), Compare(b, a))
		}
	}
}

// TestCompareExample21 checks Example 2.1 under canonical itemsets.
// A = <(a,c,d)(d,b)> canonicalizes to <(a,c,d)(b,d)>; B = <(a,d,e)(a)>.
// The differential point of A and B is the second position (0-based 1)
// because c < d, giving A < B. The paper's comparison of A against
// C = <(a,c)(d,a)> depends on the literal (unsorted) writing of C; under
// canonical form C = <(a,c)(a,d)> and the differential point moves to the
// third position with item a < d, so C < A (see DESIGN.md).
func TestCompareExample21(t *testing.T) {
	A := MustParsePattern("(a,c,d)(d,b)")
	B := MustParsePattern("(a,d,e)(a)")
	C := MustParsePattern("(a,c)(d,a)")
	if pos, ok := DifferentialPoint(A, B); !ok || pos != 1 {
		t.Errorf("DifferentialPoint(A,B) = %d,%v, want 1,true", pos, ok)
	}
	if Compare(A, B) >= 0 {
		t.Errorf("want A < B")
	}
	if pos, ok := DifferentialPoint(A, C); !ok || pos != 2 {
		t.Errorf("DifferentialPoint(A,C) = %d,%v, want 2,true", pos, ok)
	}
	if Compare(C, A) >= 0 {
		t.Errorf("want C < A under canonical itemsets")
	}
}

func TestComparePrefixIsSmaller(t *testing.T) {
	a := MustParsePattern("(a)(b)")
	b := MustParsePattern("(a)(b)(c)")
	c := MustParsePattern("(a)(b,c)")
	if Compare(a, b) >= 0 || Compare(a, c) >= 0 {
		t.Errorf("strict pair-prefix must be smaller")
	}
}

func TestDifferentialPointEqual(t *testing.T) {
	a := MustParsePattern("(a,b)(c)")
	b := MustParsePattern("(b, a)(c)")
	if _, ok := DifferentialPoint(a, b); ok {
		t.Errorf("equal sequences must have no differential point")
	}
	if Compare(a, b) != 0 {
		t.Errorf("canonicalized equal sequences must compare equal")
	}
}

func TestPatternAccessors(t *testing.T) {
	p := MustParsePattern("(a,c)(b)(d,e)")
	if p.LastItem() != 5 {
		t.Errorf("LastItem = %d, want 5 (e)", p.LastItem())
	}
	if p.LastTNo() != 3 {
		t.Errorf("LastTNo = %d, want 3", p.LastTNo())
	}
	ls := p.LastItemset()
	if len(ls) != 2 || ls[0] != 4 || ls[1] != 5 {
		t.Errorf("LastItemset = %v, want [4 5]", ls)
	}
	pre := p.Prefix(3)
	if pre.String() != "<(1, 3)(2)>" {
		t.Errorf("Prefix(3) = %s", pre.String())
	}
	sets := p.Itemsets()
	if len(sets) != 3 || !sets[0].Has(1) || !sets[0].Has(3) || !sets[1].Has(2) {
		t.Errorf("Itemsets = %v", sets)
	}
}

func TestExtend(t *testing.T) {
	p := MustParsePattern("(a)(b)")
	pi := p.ExtendI(3)
	if pi.Letters() != "<(a)(b, c)>" {
		t.Errorf("ExtendI = %s", pi.Letters())
	}
	ps := p.ExtendS(1)
	if ps.Letters() != "<(a)(b)(a)>" {
		t.Errorf("ExtendS = %s", ps.Letters())
	}
	// Extending must not mutate the original.
	if p.Letters() != "<(a)(b)>" {
		t.Errorf("original mutated: %s", p.Letters())
	}
	// Extend dispatches by tno.
	if got := p.Extend(3, 2).Letters(); got != "<(a)(b, c)>" {
		t.Errorf("Extend i-form = %s", got)
	}
	if got := p.Extend(1, 3).Letters(); got != "<(a)(b)(a)>" {
		t.Errorf("Extend s-form = %s", got)
	}
}

func TestExtendIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExtendI with non-increasing item must panic")
		}
	}()
	MustParsePattern("(a)(b)").ExtendI(2)
}

func TestPatternFromPairsValidation(t *testing.T) {
	bad := []struct {
		items []Item
		tnos  []int32
	}{
		{[]Item{1}, []int32{2}},       // must start at 1
		{[]Item{1, 1}, []int32{1, 1}}, // duplicate within transaction
		{[]Item{2, 1}, []int32{1, 1}}, // descending within transaction
		{[]Item{1, 2}, []int32{1, 3}}, // tno jump
		{[]Item{0}, []int32{1}},       // invalid item
		{[]Item{1, 2}, []int32{1}},    // length mismatch
		{[]Item{1, 2}, []int32{2, 1}}, // first tno wrong
	}
	for i, c := range bad {
		if _, err := PatternFromPairs(c.items, c.tnos); err == nil {
			t.Errorf("case %d: expected error for items=%v tnos=%v", i, c.items, c.tnos)
		}
	}
	p, err := PatternFromPairs([]Item{1, 3, 2}, []int32{1, 1, 2})
	if err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}
	if p.Letters() != "<(a, c)(b)>" {
		t.Errorf("round trip = %s", p.Letters())
	}
}

// TestContainsTable1 uses the paper's Table 1 database: <(a, g)(b)> appears
// in customer sequences 1 and 4 only.
func TestContainsTable1(t *testing.T) {
	db := table1(t)
	p := MustParsePattern("(a,g)(b)")
	want := map[int]bool{1: true, 2: false, 3: false, 4: true}
	for _, cs := range db {
		if got := cs.Contains(p); got != want[cs.CID] {
			t.Errorf("CID %d Contains(%s) = %v, want %v", cs.CID, p.Letters(), got, want[cs.CID])
		}
	}
	// The SPADE example from §1.1: <(a, g)(h)(f)> appears in customer
	// sequences 1 and 4.
	q := MustParsePattern("(a,g)(h)(f)")
	wantQ := map[int]bool{1: true, 2: false, 3: false, 4: true}
	for _, cs := range db {
		if got := cs.Contains(q); got != wantQ[cs.CID] {
			t.Errorf("CID %d Contains(%s) = %v, want %v", cs.CID, q.Letters(), got, wantQ[cs.CID])
		}
	}
}

func table1(t *testing.T) []*CustomerSeq {
	t.Helper()
	return []*CustomerSeq{
		MustParseCustomerSeq(1, "(a, e, g)(b)(h)(f)(c)(b, f)"),
		MustParseCustomerSeq(2, "(b)(d, f)(e)"),
		MustParseCustomerSeq(3, "(b, f, g)"),
		MustParseCustomerSeq(4, "(f)(a, g)(b, f, h)(b, f)"),
	}
}

// TestLeftmostMatchExample33 reproduces Example 3.3: matching <(a)(a, g)>
// on CID 1 = (a)(a, g, h)(c) yields matching point 3 (1-based), i.e.
// flattened position 2, in transaction index 1.
func TestLeftmostMatchExample33(t *testing.T) {
	cs := MustParseCustomerSeq(1, "(a)(a, g, h)(c)")
	trans, pos, ok := cs.LeftmostMatch(MustParsePattern("(a)(a, g)"))
	if !ok || trans != 1 || pos != 2 {
		t.Fatalf("LeftmostMatch = trans %d pos %d ok %v, want 1 2 true", trans, pos, ok)
	}
	// <(a)(a, e)> has no match on CID 1.
	if _, _, ok := cs.LeftmostMatch(MustParsePattern("(a)(a, e)")); ok {
		t.Fatal("unexpected match of <(a)(a, e)>")
	}
}

// TestLeftmostMatchExample34 reproduces Example 3.4: matching <(a)(a, e)>
// on CID 3 = (a, f, g)(a, e, g, h)(c, g, h) yields matching point 5
// (1-based), i.e. flattened position 4.
func TestLeftmostMatchExample34(t *testing.T) {
	cs := MustParseCustomerSeq(3, "(a, f, g)(a, e, g, h)(c, g, h)")
	trans, pos, ok := cs.LeftmostMatch(MustParsePattern("(a)(a, e)"))
	if !ok || trans != 1 || pos != 4 {
		t.Fatalf("LeftmostMatch = trans %d pos %d ok %v, want 1 4 true", trans, pos, ok)
	}
}

func TestMatchPrefixEnd(t *testing.T) {
	cs := MustParseCustomerSeq(1, "(a)(b)(a,b)(c)")
	// Prefix of <(a)(b)(c)> is <(a)(b)>, ending at transaction 1.
	if end, ok := cs.MatchPrefixEnd(MustParsePattern("(a)(b)(c)")); !ok || end != 1 {
		t.Errorf("MatchPrefixEnd = %d,%v want 1,true", end, ok)
	}
	// Single-itemset pattern: empty prefix ends at -1.
	if end, ok := cs.MatchPrefixEnd(MustParsePattern("(a,b)")); !ok || end != -1 {
		t.Errorf("MatchPrefixEnd single = %d,%v want -1,true", end, ok)
	}
	// Unmatchable prefix.
	if _, ok := cs.MatchPrefixEnd(MustParsePattern("(c)(a)(b)")); ok {
		t.Errorf("MatchPrefixEnd should fail for <(c)(a)(b)>")
	}
}

func TestSuffix(t *testing.T) {
	cs := MustParseCustomerSeq(4, "(f)(a, g)(b, f, h)(b, f)")
	s := cs.Suffix(1, 1) // from transaction (a,g), keep all items
	if s.Pattern().Letters() != "<(a, g)(b, f, h)(b, f)>" {
		t.Errorf("Suffix(1,1) = %s", s.Pattern().Letters())
	}
	s2 := cs.Suffix(1, 7) // filter first transaction to items >= g
	if s2.Pattern().Letters() != "<(g)(b, f, h)(b, f)>" {
		t.Errorf("Suffix(1,7) = %s", s2.Pattern().Letters())
	}
	// Filtering may empty the first transaction entirely; it is dropped and
	// later transactions are kept whole.
	s3 := cs.Suffix(0, 7)
	if s3.Pattern().Letters() != "<(a, g)(b, f, h)(b, f)>" {
		t.Errorf("Suffix(0,7) = %s", s3.Pattern().Letters())
	}
	if s3.NTrans() != 3 {
		t.Errorf("Suffix(0,7) NTrans = %d, want 3", s3.NTrans())
	}
}

func TestMinItemAndNextMinItem(t *testing.T) {
	cs := MustParseCustomerSeq(2, "(b)(a)(f)(a, c, e, g)")
	min, tr, ok := cs.MinItem()
	if !ok || min != 1 || tr != 1 {
		t.Errorf("MinItem = %d,%d,%v want a,1,true", min, tr, ok)
	}
	// Next distinct minimum after a is b at transaction 0.
	nxt, tr2, ok := cs.NextMinItem(1)
	if !ok || nxt != 2 || tr2 != 0 {
		t.Errorf("NextMinItem(a) = %d,%d,%v want b,0,true", nxt, tr2, ok)
	}
	// After g there is nothing.
	if _, _, ok := cs.NextMinItem(7); ok {
		t.Errorf("NextMinItem(g) should fail")
	}
}

func TestDistinctItems(t *testing.T) {
	cs := MustParseCustomerSeq(1, "(b)(a)(b, c)")
	seen := make([]bool, 10)
	got := cs.DistinctItems(nil, seen)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("DistinctItems = %v", got)
	}
	for i, s := range seen {
		if s {
			t.Errorf("seen[%d] not cleared", i)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"<(a, e, g)(b)(h)(f)(c)(b, f)>",
		"<(a)>",
		"<(a, b, c)>",
	}
	for _, c := range cases {
		p := MustParsePattern(c)
		if p.Letters() != c {
			t.Errorf("round trip %q = %q", c, p.Letters())
		}
	}
	// Numeric parsing.
	p := MustParsePattern("(1 5)(2)")
	if p.String() != "<(1, 5)(2)>" {
		t.Errorf("numeric parse = %s", p.String())
	}
	if _, err := ParsePattern("(a"); err == nil {
		t.Errorf("unbalanced paren should error")
	}
	if _, err := ParsePattern("a)"); err == nil {
		t.Errorf("missing paren should error")
	}
	if _, err := ParsePattern("()"); err == nil {
		t.Errorf("empty itemset should error")
	}
	if _, err := ParsePattern("(0)"); err == nil {
		t.Errorf("item 0 should error")
	}
}

// randomPattern builds a random canonical pattern with at most maxLen items
// over an alphabet of n items.
func randomPattern(r *rand.Rand, n, maxLen int) Pattern {
	k := 1 + r.Intn(maxLen)
	var sets []Itemset
	remaining := k
	for remaining > 0 {
		sz := 1 + r.Intn(3)
		if sz > remaining {
			sz = remaining
		}
		var is Itemset
		for i := 0; i < sz; i++ {
			is = append(is, Item(1+r.Intn(n)))
		}
		c := NewItemset(is...)
		sets = append(sets, c)
		remaining -= len(c)
	}
	return NewPattern(sets...)
}

// TestCompareIsTotalOrder checks reflexivity, antisymmetry and transitivity
// of the comparative order on random patterns.
func TestCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a := randomPattern(r, 6, 6)
		b := randomPattern(r, 6, 6)
		c := randomPattern(r, 6, 6)
		if Compare(a, a) != 0 {
			t.Fatalf("Compare(%v, %v) != 0", a, a)
		}
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %v, %v", a, b)
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated for %v, %v, %v", a, b, c)
		}
		if (Compare(a, b) == 0) != (a.Key() == b.Key()) {
			t.Fatalf("Key inconsistent with Compare for %v, %v", a, b)
		}
	}
}

// TestKeyUniqueness: distinct sequences must yield distinct keys even when
// item boundaries could be confused.
func TestKeyUniqueness(t *testing.T) {
	a := MustParsePattern("(a, b)(c)")
	b := MustParsePattern("(a)(b, c)")
	c := MustParsePattern("(a, b, c)")
	d := MustParsePattern("(a)(b)(c)")
	keys := map[string]string{}
	for _, p := range []Pattern{a, b, c, d} {
		if prev, dup := keys[p.Key()]; dup {
			t.Fatalf("key collision between %s and %s", prev, p.Letters())
		}
		keys[p.Key()] = p.Letters()
	}
}

// TestCompareMatchesSortedKeys: sorting by Compare must be a deterministic
// total order (quick-check style over random slices).
func TestCompareSortStability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ps := make([]Pattern, 20)
		for i := range ps {
			ps[i] = randomPattern(r, 5, 5)
		}
		sort.Slice(ps, func(i, j int) bool { return Compare(ps[i], ps[j]) < 0 })
		for i := 1; i < len(ps); i++ {
			if Compare(ps[i-1], ps[i]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestContainsAgainstNaive cross-checks LeftmostMatch-based containment
// against a naive recursive containment check on random data.
func TestContainsAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		cs := randomCustomer(r, 5, 6, 3)
		p := randomPattern(r, 5, 4)
		got := cs.Contains(p)
		want := naiveContains(cs.Itemsets(), p.Itemsets())
		if got != want {
			t.Fatalf("Contains(%s, %s) = %v, want %v", cs.Pattern().Letters(), p.Letters(), got, want)
		}
	}
}

func randomCustomer(r *rand.Rand, n, maxTrans, maxPerTrans int) *CustomerSeq {
	nt := 1 + r.Intn(maxTrans)
	sets := make([]Itemset, nt)
	for i := range sets {
		sz := 1 + r.Intn(maxPerTrans)
		var is Itemset
		for j := 0; j < sz; j++ {
			is = append(is, Item(1+r.Intn(n)))
		}
		sets[i] = is
	}
	return NewCustomerSeq(0, sets...)
}

func naiveContains(db []Itemset, pat []Itemset) bool {
	if len(pat) == 0 {
		return true
	}
	if len(db) == 0 {
		return false
	}
	if db[0].Contains(pat[0]) && naiveContains(db[1:], pat[1:]) {
		return true
	}
	return naiveContains(db[1:], pat)
}

// TestLeftmostMatchIsLeftmost verifies that the greedy match minimizes the
// final transaction index by comparing against exhaustive search.
func TestLeftmostMatchIsLeftmost(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		cs := randomCustomer(r, 4, 5, 3)
		p := randomPattern(r, 4, 4)
		trans, _, ok := cs.LeftmostMatch(p)
		minTrans, found := exhaustiveMinLastTrans(cs, p)
		if ok != found {
			t.Fatalf("match disagreement for %s in %s", p.Letters(), cs.Pattern().Letters())
		}
		if ok && trans != minTrans {
			t.Fatalf("LeftmostMatch trans %d, exhaustive min %d for %s in %s",
				trans, minTrans, p.Letters(), cs.Pattern().Letters())
		}
	}
}

func exhaustiveMinLastTrans(cs *CustomerSeq, p Pattern) (int, bool) {
	sets := p.Itemsets()
	best := -1
	var rec func(si, ti int, last int)
	rec = func(si, ti, last int) {
		if si == len(sets) {
			if best < 0 || last < best {
				best = last
			}
			return
		}
		for tt := ti; tt < cs.NTrans(); tt++ {
			if cs.Transaction(tt).Contains(sets[si]) {
				rec(si+1, tt+1, tt)
			}
		}
	}
	rec(0, 0, -1)
	return best, best >= 0
}
