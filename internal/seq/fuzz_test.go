package seq

import "testing"

// FuzzParsePattern: the pattern parser must never panic, and accepted
// inputs must render/re-parse to an equal pattern.
func FuzzParsePattern(f *testing.F) {
	f.Add("(a, b)(c)")
	f.Add("<(1 2)(3)>")
	f.Add("(z)")
	f.Add("((")
	f.Add(")(")
	f.Add("( a , , b )")
	f.Add("(99999999999)")
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParsePattern(input)
		if err != nil {
			return
		}
		q, err := ParsePattern(p.Letters())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", p.Letters(), input, err)
		}
		if !q.Equal(p) {
			t.Fatalf("round trip changed pattern: %q -> %q", p.Letters(), q.Letters())
		}
	})
}
