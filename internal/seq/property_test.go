package seq

import (
	"math/rand"
	"testing"
)

// TestPrefixLaws: every proper pair-prefix of a pattern compares strictly
// smaller, and the full-length prefix is the pattern itself.
func TestPrefixLaws(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	for i := 0; i < 2000; i++ {
		p := randomPattern(r, 6, 7)
		for k := 1; k < p.Len(); k++ {
			pre := p.Prefix(k)
			if Compare(pre, p) >= 0 {
				t.Fatalf("Prefix(%d) of %s not smaller", k, p.Letters())
			}
			if pre.Len() != k {
				t.Fatalf("Prefix(%d).Len() = %d", k, pre.Len())
			}
		}
		if !p.Prefix(p.Len()).Equal(p) || !p.Prefix(p.Len()+5).Equal(p) {
			t.Fatalf("full prefix of %s differs", p.Letters())
		}
	}
}

// TestExtendPrefixInverse: extending then taking the prefix recovers the
// original pattern, for both extension forms.
func TestExtendPrefixInverse(t *testing.T) {
	r := rand.New(rand.NewSource(302))
	for i := 0; i < 2000; i++ {
		p := randomPattern(r, 6, 6)
		x := Item(1 + r.Intn(6))
		s := p.ExtendS(x)
		if !s.Prefix(p.Len()).Equal(p) {
			t.Fatalf("ExtendS inverse failed for %s + %d", p.Letters(), x)
		}
		if s.LastItem() != x || s.LastTNo() != p.LastTNo()+1 {
			t.Fatalf("ExtendS shape wrong: %s", s.Letters())
		}
		if x > p.LastItem() {
			ii := p.ExtendI(x)
			if !ii.Prefix(p.Len()).Equal(p) || ii.LastTNo() != p.LastTNo() {
				t.Fatalf("ExtendI inverse failed for %s + %d", p.Letters(), x)
			}
		}
	}
}

// TestContainmentClosedUnderPrefix: if a customer contains p, it contains
// every prefix of p.
func TestContainmentClosedUnderPrefix(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for i := 0; i < 1500; i++ {
		cs := randomCustomer(r, 5, 6, 3)
		p := randomPattern(r, 5, 5)
		if !cs.Contains(p) {
			continue
		}
		for k := 1; k < p.Len(); k++ {
			if !cs.Contains(p.Prefix(k)) {
				t.Fatalf("%s contains %s but not its prefix %s",
					cs.Pattern().Letters(), p.Letters(), p.Prefix(k).Letters())
			}
		}
	}
}

// TestParseFormatRoundTrip: rendering then parsing any random pattern is
// the identity.
func TestParseFormatRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(304))
	for i := 0; i < 2000; i++ {
		p := randomPattern(r, 26, 8)
		for _, text := range []string{p.Letters(), p.String()} {
			q, err := ParsePattern(text)
			if err != nil {
				t.Fatalf("parse %q: %v", text, err)
			}
			if !q.Equal(p) {
				t.Fatalf("round trip %q -> %s", text, q.Letters())
			}
		}
	}
}

// TestCustomerSeqPatternConsistency: the flattened accessors agree with the
// itemset view.
func TestCustomerSeqPatternConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(305))
	for i := 0; i < 1000; i++ {
		cs := randomCustomer(r, 8, 5, 4)
		if cs.Len() != cs.Pattern().Len() {
			t.Fatalf("Len mismatch")
		}
		pos := 0
		for tn := 0; tn < cs.NTrans(); tn++ {
			tr := cs.Transaction(tn)
			if int(cs.TransStart(tn)) != pos {
				t.Fatalf("TransStart(%d) = %d, want %d", tn, cs.TransStart(tn), pos)
			}
			for _, it := range tr {
				if cs.ItemAt(pos) != it || int(cs.TNoAt(pos)) != tn+1 {
					t.Fatalf("flattened mismatch at %d", pos)
				}
				pos++
			}
		}
		if pos != cs.Len() {
			t.Fatalf("length mismatch: %d vs %d", pos, cs.Len())
		}
	}
}

// TestDifferentialPointSymmetry: the differential point is symmetric and
// consistent with Compare.
func TestDifferentialPointSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(306))
	for i := 0; i < 2000; i++ {
		a := randomPattern(r, 5, 5)
		b := randomPattern(r, 5, 5)
		pa, oka := DifferentialPoint(a, b)
		pb, okb := DifferentialPoint(b, a)
		if oka != okb || (oka && pa != pb) {
			t.Fatalf("asymmetric differential point for %s, %s", a.Letters(), b.Letters())
		}
		if oka != (Compare(a, b) != 0) {
			t.Fatalf("differential point existence disagrees with Compare")
		}
	}
}
