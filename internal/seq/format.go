package seq

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders the pattern in the paper's notation with numeric items,
// e.g. "<(1, 5)(2)>".
func (p Pattern) String() string {
	return p.format(func(it Item) string { return strconv.Itoa(int(it)) })
}

// Letters renders the pattern using the paper's letter alphabet
// (1 => a, 2 => b, ...). Items beyond 26 fall back to numbers.
func (p Pattern) Letters() string {
	return p.format(letterOf)
}

func letterOf(it Item) string {
	if it >= 1 && it <= 26 {
		return string(rune('a' + it - 1))
	}
	return strconv.Itoa(int(it))
}

func (p Pattern) format(f func(Item) string) string {
	var b strings.Builder
	b.WriteByte('<')
	for i, it := range p.items {
		if i == 0 || p.tnos[i] != p.tnos[i-1] {
			if i > 0 {
				b.WriteByte(')')
			}
			b.WriteByte('(')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(f(it))
	}
	if len(p.items) > 0 {
		b.WriteByte(')')
	}
	b.WriteByte('>')
	return b.String()
}

// String renders the customer sequence like "<(1, 5)(2)>" prefixed by its
// CID.
func (cs *CustomerSeq) String() string {
	return fmt.Sprintf("cid=%d %s", cs.CID, cs.Pattern().String())
}

// Letters renders the customer sequence body with the letter alphabet.
func (cs *CustomerSeq) Letters() string {
	return cs.Pattern().Letters()
}

// ParsePattern parses the paper's sequence notation. Both letter items
// ("(a, e, g)(b)") and numeric items ("(1 5)(2)") are accepted; the
// surrounding <> is optional, and commas between items are optional.
// Single letters a-z parse as items 1-26.
func ParsePattern(s string) (Pattern, error) {
	itemsets, err := parseItemsets(s)
	if err != nil {
		return Pattern{}, err
	}
	return NewPattern(itemsets...), nil
}

// MustParsePattern is ParsePattern panicking on error; for tests and
// examples with literal sequences.
func MustParsePattern(s string) Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseCustomerSeq parses a customer sequence body in the same notation as
// ParsePattern.
func ParseCustomerSeq(cid int, s string) (*CustomerSeq, error) {
	itemsets, err := parseItemsets(s)
	if err != nil {
		return nil, err
	}
	return NewCustomerSeq(cid, itemsets...), nil
}

// MustParseCustomerSeq is ParseCustomerSeq panicking on error.
func MustParseCustomerSeq(cid int, s string) *CustomerSeq {
	cs, err := ParseCustomerSeq(cid, s)
	if err != nil {
		panic(err)
	}
	return cs
}

func parseItemsets(s string) ([]Itemset, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "<")
	s = strings.TrimSuffix(s, ">")
	var itemsets []Itemset
	rest := strings.TrimSpace(s)
	for len(rest) > 0 {
		if rest[0] != '(' {
			return nil, fmt.Errorf("seq: expected '(' at %q", rest)
		}
		end := strings.IndexByte(rest, ')')
		if end < 0 {
			return nil, fmt.Errorf("seq: unbalanced '(' in %q", s)
		}
		body := rest[1:end]
		fields := strings.FieldsFunc(body, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
		var is Itemset
		for _, f := range fields {
			it, err := parseItem(f)
			if err != nil {
				return nil, err
			}
			is = append(is, it)
		}
		if len(is) == 0 {
			return nil, fmt.Errorf("seq: empty itemset in %q", s)
		}
		itemsets = append(itemsets, is)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return itemsets, nil
}

func parseItem(f string) (Item, error) {
	if len(f) == 1 && f[0] >= 'a' && f[0] <= 'z' {
		return Item(f[0]-'a') + 1, nil
	}
	n, err := strconv.Atoi(f)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("seq: invalid item %q", f)
	}
	return Item(n), nil
}
