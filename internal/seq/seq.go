// Package seq implements the sequence data model of Chiu, Wu & Chen
// (ICDE 2004): items, itemsets (transactions), customer sequences, the
// flattened (item, transaction-number) pair representation of a sequence,
// and the comparative order (Definitions 2.1 and 2.2) that the DISC
// strategy sorts by.
//
// Conventions used throughout the repository:
//
//   - Items are positive int32 identifiers. Item 0 is reserved and never
//     appears in a sequence.
//   - Itemsets are canonical: sorted ascending with no duplicates. The
//     paper's Example 2.1 writes one transaction as "(d, b)"; treating
//     itemsets literally (unsorted) would make the comparative order depend
//     on the written representation of a pattern, which breaks support
//     counting across customers, so all itemsets are canonicalized at
//     construction time (see DESIGN.md).
//   - Transaction numbers in the pair representation are 1-based and
//     renumbered relative to the sequence itself, exactly as in §2 of the
//     paper: in <(a)(b)(c,d)(e)> the five items carry numbers 1,2,3,3,4.
package seq

import (
	"fmt"
	"sort"
	"strings"
)

// Item is a single item identifier. Valid items are >= 1.
type Item int32

// Itemset is a canonical (sorted ascending, duplicate-free) set of items.
type Itemset []Item

// NewItemset builds a canonical itemset from the given items.
func NewItemset(items ...Item) Itemset {
	out := make(Itemset, len(items))
	copy(out, items)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Deduplicate in place.
	w := 0
	for i, it := range out {
		if i == 0 || it != out[i-1] {
			out[w] = it
			w++
		}
	}
	return out[:w]
}

// Contains reports whether the canonical itemset t contains every item of
// the canonical itemset s (that is, s ⊆ t). Both must be sorted ascending.
func (t Itemset) Contains(s Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	i := 0
	for _, want := range s {
		for i < len(t) && t[i] < want {
			i++
		}
		if i >= len(t) || t[i] != want {
			return false
		}
		i++
	}
	return true
}

// Has reports whether the canonical itemset t contains the item x.
func (t Itemset) Has(x Item) bool {
	i := sort.Search(len(t), func(i int) bool { return t[i] >= x })
	return i < len(t) && t[i] == x
}

// Pattern is a sequence in the flattened pair representation of §2: parallel
// slices of items and their 1-based transaction numbers. The zero Pattern is
// the empty sequence. Patterns are immutable once built; all mutating
// helpers return fresh values.
type Pattern struct {
	items []Item
	tnos  []int32
}

// NewPattern builds a canonical pattern from a list of itemsets. Empty
// itemsets are dropped; items within an itemset are canonicalized.
func NewPattern(itemsets ...Itemset) Pattern {
	var p Pattern
	no := int32(0)
	for _, is := range itemsets {
		c := NewItemset(is...)
		if len(c) == 0 {
			continue
		}
		no++
		for _, it := range c {
			p.items = append(p.items, it)
			p.tnos = append(p.tnos, no)
		}
	}
	return p
}

// PatternFromPairs builds a pattern directly from parallel item and
// transaction-number slices. It validates canonical form: tnos must start at
// 1, be non-decreasing, increase by at most 1, and items within a
// transaction must be strictly increasing.
func PatternFromPairs(items []Item, tnos []int32) (Pattern, error) {
	if len(items) != len(tnos) {
		return Pattern{}, fmt.Errorf("seq: %d items but %d transaction numbers", len(items), len(tnos))
	}
	for i := range items {
		if items[i] < 1 {
			return Pattern{}, fmt.Errorf("seq: invalid item %d at position %d", items[i], i)
		}
		switch {
		case i == 0:
			if tnos[0] != 1 {
				return Pattern{}, fmt.Errorf("seq: first transaction number is %d, want 1", tnos[0])
			}
		case tnos[i] == tnos[i-1]:
			if items[i] <= items[i-1] {
				return Pattern{}, fmt.Errorf("seq: items %d,%d not ascending within transaction %d", items[i-1], items[i], tnos[i])
			}
		case tnos[i] == tnos[i-1]+1:
			// New transaction: any item allowed.
		default:
			return Pattern{}, fmt.Errorf("seq: transaction number jumps from %d to %d", tnos[i-1], tnos[i])
		}
	}
	p := Pattern{items: append([]Item(nil), items...), tnos: append([]int32(nil), tnos...)}
	return p, nil
}

// MustPattern is PatternFromPairs that panics on invalid input. Intended for
// tests and package-internal construction of known-valid values.
func MustPattern(items []Item, tnos []int32) Pattern {
	p, err := PatternFromPairs(items, tnos)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the length of the pattern: the total number of item
// occurrences (the paper's k for a k-sequence).
func (p Pattern) Len() int { return len(p.items) }

// IsEmpty reports whether the pattern has no items.
func (p Pattern) IsEmpty() bool { return len(p.items) == 0 }

// NumItemsets returns the number of transactions (itemsets) in the pattern.
func (p Pattern) NumItemsets() int {
	if len(p.tnos) == 0 {
		return 0
	}
	return int(p.tnos[len(p.tnos)-1])
}

// ItemAt returns the item at flattened position i (0-based).
func (p Pattern) ItemAt(i int) Item { return p.items[i] }

// TNoAt returns the 1-based transaction number at flattened position i.
func (p Pattern) TNoAt(i int) int32 { return p.tnos[i] }

// LastItem returns the last item of the pattern. Panics on empty patterns.
func (p Pattern) LastItem() Item { return p.items[len(p.items)-1] }

// LastTNo returns the transaction number of the last item (== NumItemsets).
func (p Pattern) LastTNo() int32 { return p.tnos[len(p.tnos)-1] }

// LastTNoOrZero returns LastTNo, or 0 for the empty pattern.
func (p Pattern) LastTNoOrZero() int32 {
	if len(p.tnos) == 0 {
		return 0
	}
	return p.tnos[len(p.tnos)-1]
}

// Itemsets expands the pattern back into a slice of itemsets.
func (p Pattern) Itemsets() []Itemset {
	out := make([]Itemset, 0, p.NumItemsets())
	for i := 0; i < len(p.items); {
		j := i
		for j < len(p.items) && p.tnos[j] == p.tnos[i] {
			j++
		}
		out = append(out, Itemset(append([]Item(nil), p.items[i:j]...)))
		i = j
	}
	return out
}

// ItemsetAt returns the items of the 1-based transaction number no as a
// sub-slice of the pattern's backing array (do not mutate).
func (p Pattern) ItemsetAt(no int32) Itemset {
	lo := sort.Search(len(p.tnos), func(i int) bool { return p.tnos[i] >= no })
	hi := lo
	for hi < len(p.tnos) && p.tnos[hi] == no {
		hi++
	}
	return Itemset(p.items[lo:hi])
}

// LastItemset returns the final itemset of the pattern.
func (p Pattern) LastItemset() Itemset {
	if len(p.items) == 0 {
		return nil
	}
	return p.ItemsetAt(p.tnos[len(p.items)-1])
}

// Prefix returns the k-prefix of the pattern: its first k (item, tno) pairs,
// which is itself a valid pattern (§3.2 "k-prefix").
func (p Pattern) Prefix(k int) Pattern {
	if k > len(p.items) {
		k = len(p.items)
	}
	return Pattern{items: p.items[:k:k], tnos: p.tnos[:k:k]}
}

// ExtendI returns p with the item x appended to its last itemset
// (an i-extension). x must be greater than the last item of p.
func (p Pattern) ExtendI(x Item) Pattern {
	if len(p.items) == 0 {
		panic("seq: i-extension of empty pattern")
	}
	if x <= p.LastItem() {
		panic(fmt.Sprintf("seq: i-extension item %d not greater than last item %d", x, p.LastItem()))
	}
	return Pattern{
		items: append(p.items[:len(p.items):len(p.items)], x),
		tnos:  append(p.tnos[:len(p.tnos):len(p.tnos)], p.LastTNo()),
	}
}

// ExtendS returns p with the item x appended as a new final itemset
// (an s-extension).
func (p Pattern) ExtendS(x Item) Pattern {
	no := int32(1)
	if len(p.items) > 0 {
		no = p.LastTNo() + 1
	}
	return Pattern{
		items: append(p.items[:len(p.items):len(p.items)], x),
		tnos:  append(p.tnos[:len(p.tnos):len(p.tnos)], no),
	}
}

// Extend appends the pair (x, tno). tno must equal LastTNo() (i-extension)
// or LastTNo()+1 (s-extension).
func (p Pattern) Extend(x Item, tno int32) Pattern {
	switch {
	case len(p.items) == 0 && tno == 1:
		return p.ExtendS(x)
	case tno == p.LastTNo():
		return p.ExtendI(x)
	case tno == p.LastTNo()+1:
		return p.ExtendS(x)
	}
	panic(fmt.Sprintf("seq: invalid extension tno %d after %d", tno, p.LastTNo()))
}

// Clone returns a deep copy of the pattern.
func (p Pattern) Clone() Pattern {
	return Pattern{
		items: append([]Item(nil), p.items...),
		tnos:  append([]int32(nil), p.tnos...),
	}
}

// Equal reports whether p and q are the same sequence.
func (p Pattern) Equal(q Pattern) bool { return Compare(p, q) == 0 }

// Compare implements the comparative order of Definition 2.2 extended to
// sequences of unequal length: the flattened (item, transaction-number)
// pair lists are compared lexicographically, where a pair (i1, n1) precedes
// (i2, n2) iff i1 < i2, or i1 == i2 and n1 < n2. If one sequence is a strict
// pair-prefix of the other, the shorter one is smaller (the paper appends a
// virtual item smaller than every real item to the shorter sequence).
//
// Definition 2.1(b) as printed requires the items *and* the transaction
// numbers to differ at the differential point; Example 2.1 demonstrates that
// the intended condition is "item or transaction number differs", which is
// what this function implements.
func Compare(p, q Pattern) int {
	n := len(p.items)
	if len(q.items) < n {
		n = len(q.items)
	}
	for i := 0; i < n; i++ {
		switch {
		case p.items[i] < q.items[i]:
			return -1
		case p.items[i] > q.items[i]:
			return 1
		case p.tnos[i] < q.tnos[i]:
			return -1
		case p.tnos[i] > q.tnos[i]:
			return 1
		}
	}
	switch {
	case len(p.items) < len(q.items):
		return -1
	case len(p.items) > len(q.items):
		return 1
	}
	return 0
}

// ComparePairWith compares the single extension pair (x1, n1) against
// (x2, n2) under the pair order used by Compare.
func ComparePair(x1 Item, n1 int32, x2 Item, n2 int32) int {
	switch {
	case x1 < x2:
		return -1
	case x1 > x2:
		return 1
	case n1 < n2:
		return -1
	case n1 > n2:
		return 1
	}
	return 0
}

// DifferentialPoint returns the 0-based flattened position of the
// differential point of p and q per Definition 2.1, and ok=false if the
// sequences are equal (no differential point exists). If one sequence is a
// strict prefix of the other, the differential point is the length of the
// shorter sequence (the virtual-item position).
func DifferentialPoint(p, q Pattern) (pos int, ok bool) {
	n := len(p.items)
	if len(q.items) < n {
		n = len(q.items)
	}
	for i := 0; i < n; i++ {
		if p.items[i] != q.items[i] || p.tnos[i] != q.tnos[i] {
			return i, true
		}
	}
	if len(p.items) != len(q.items) {
		return n, true
	}
	return 0, false
}

// Key returns a compact byte-string key uniquely identifying the pattern,
// suitable for use as a map key. The encoding is 4 bytes of item (big
// endian, so byte order follows item order) plus 1 byte marking whether the
// pair opens a new transaction.
func (p Pattern) Key() string {
	var b strings.Builder
	b.Grow(len(p.items) * 5)
	prev := int32(0)
	for i, it := range p.items {
		b.WriteByte(byte(uint32(it) >> 24))
		b.WriteByte(byte(uint32(it) >> 16))
		b.WriteByte(byte(uint32(it) >> 8))
		b.WriteByte(byte(uint32(it)))
		if p.tnos[i] != prev {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
		prev = p.tnos[i]
	}
	return b.String()
}

// CustomerSeq is a customer sequence: the ordered list of a customer's
// transactions, stored flattened for fast scanning. CID carries the
// customer id from the source database.
type CustomerSeq struct {
	CID    int
	items  []Item  // all items, transaction by transaction
	tnos   []int32 // 1-based transaction number per item
	starts []int32 // starts[t] = first flattened index of transaction t (0-based t); len = NTrans+1
}

// NewCustomerSeq builds a customer sequence from raw transactions,
// canonicalizing each transaction and dropping empty ones.
func NewCustomerSeq(cid int, transactions ...Itemset) *CustomerSeq {
	cs := &CustomerSeq{CID: cid}
	for _, t := range transactions {
		c := NewItemset(t...)
		if len(c) == 0 {
			continue
		}
		cs.starts = append(cs.starts, int32(len(cs.items)))
		no := int32(len(cs.starts))
		for _, it := range c {
			cs.items = append(cs.items, it)
			cs.tnos = append(cs.tnos, no)
		}
	}
	cs.starts = append(cs.starts, int32(len(cs.items)))
	return cs
}

// Len returns the total number of item occurrences (the paper's sequence
// length).
func (cs *CustomerSeq) Len() int { return len(cs.items) }

// NTrans returns the number of transactions.
func (cs *CustomerSeq) NTrans() int { return len(cs.starts) - 1 }

// Transaction returns the items of the 0-based transaction t as a sub-slice
// (do not mutate).
func (cs *CustomerSeq) Transaction(t int) Itemset {
	return Itemset(cs.items[cs.starts[t]:cs.starts[t+1]])
}

// ItemAt returns the item at flattened position i.
func (cs *CustomerSeq) ItemAt(i int) Item { return cs.items[i] }

// TransStart returns the flattened index of the first item of the 0-based
// transaction t; TransStart(NTrans()) is the total length.
func (cs *CustomerSeq) TransStart(t int) int32 { return cs.starts[t] }

// TNoAt returns the 1-based transaction number at flattened position i.
func (cs *CustomerSeq) TNoAt(i int) int32 { return cs.tnos[i] }

// Items returns the flattened item slice (do not mutate).
func (cs *CustomerSeq) Items() []Item { return cs.items }

// Pattern returns the whole customer sequence as a Pattern.
func (cs *CustomerSeq) Pattern() Pattern {
	return Pattern{items: cs.items, tnos: cs.tnos}
}

// Itemsets returns the customer sequence as a slice of itemsets.
func (cs *CustomerSeq) Itemsets() []Itemset {
	out := make([]Itemset, cs.NTrans())
	for t := range out {
		out[t] = cs.Transaction(t)
	}
	return out
}

// Suffix returns a new customer sequence consisting of transactions
// fromTrans.. of cs, with the first of them filtered to items >= minItem.
// It is the "reduced customer sequence" primitive used by the multi-level
// partitioning of §3.1.
func (cs *CustomerSeq) Suffix(fromTrans int, minItem Item) *CustomerSeq {
	out := &CustomerSeq{CID: cs.CID}
	for t := fromTrans; t < cs.NTrans(); t++ {
		tr := cs.Transaction(t)
		if t == fromTrans {
			i := sort.Search(len(tr), func(i int) bool { return tr[i] >= minItem })
			tr = tr[i:]
		}
		if len(tr) == 0 {
			continue
		}
		out.starts = append(out.starts, int32(len(out.items)))
		no := int32(len(out.starts))
		for _, it := range tr {
			out.items = append(out.items, it)
			out.tnos = append(out.tnos, no)
		}
	}
	out.starts = append(out.starts, int32(len(out.items)))
	return out
}

// Contains reports whether cs contains the pattern p as a subsequence
// (the paper's "customer sequence supports p").
func (cs *CustomerSeq) Contains(p Pattern) bool {
	_, _, ok := cs.LeftmostMatch(p)
	return ok
}

// LeftmostMatch finds the greedy leftmost match of p in cs: each successive
// itemset of p is matched in the earliest possible transaction. On success
// it returns the 0-based transaction index holding p's final itemset and
// the flattened position in cs of p's final item (the paper's "matching
// point" M). The greedy strategy provably minimizes both.
func (cs *CustomerSeq) LeftmostMatch(p Pattern) (lastTrans int, matchPos int, ok bool) {
	return cs.matchFrom(p, 0, 0)
}

// MatchPrefixEnd matches all itemsets of p except the last one, greedily
// leftmost, and returns the 0-based transaction index where that prefix
// ends (-1 if the prefix is empty, i.e. p has a single itemset). ok=false
// if even the prefix does not occur.
func (cs *CustomerSeq) MatchPrefixEnd(p Pattern) (prefixEnd int, ok bool) {
	n := p.NumItemsets()
	if n <= 1 {
		return -1, true
	}
	t := 0
	for no := int32(1); no < int32(n); no++ {
		is := p.ItemsetAt(no)
		for ; t < cs.NTrans(); t++ {
			if cs.Transaction(t).Contains(is) {
				break
			}
		}
		if t >= cs.NTrans() {
			return 0, false
		}
		t++
	}
	return t - 1, true
}

func (cs *CustomerSeq) matchFrom(p Pattern, itemsetNo int32, fromTrans int) (lastTrans int, matchPos int, ok bool) {
	t := fromTrans
	n := int32(p.NumItemsets())
	if n == 0 {
		return -1, -1, true
	}
	var is Itemset
	for no := itemsetNo + 1; no <= n; no++ {
		is = p.ItemsetAt(no)
		for ; t < cs.NTrans(); t++ {
			if cs.Transaction(t).Contains(is) {
				break
			}
		}
		if t >= cs.NTrans() {
			return 0, 0, false
		}
		if no < n {
			t++
		}
	}
	// Matching point: position of the last item of p within transaction t.
	last := is[len(is)-1]
	lo := int(cs.starts[t])
	hi := int(cs.starts[t+1])
	pos := lo + sort.Search(hi-lo, func(i int) bool { return cs.items[lo+i] >= last })
	return t, pos, true
}

// DistinctItems appends the distinct items of cs to buf (using seen as a
// scratch bitmap indexed by item; callers must clear the touched entries or
// pass a fresh map-like slice). It returns the extended buffer. The items
// are appended in ascending order.
func (cs *CustomerSeq) DistinctItems(buf []Item, seen []bool) []Item {
	start := len(buf)
	for _, it := range cs.items {
		if !seen[it] {
			seen[it] = true
			buf = append(buf, it)
		}
	}
	tail := buf[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	for _, it := range tail {
		seen[it] = false
	}
	return buf
}

// MinItem returns the smallest item in cs and the 0-based transaction index
// of its leftmost occurrence (the paper's "minimum point"). ok=false for an
// empty sequence.
func (cs *CustomerSeq) MinItem() (min Item, minTrans int, ok bool) {
	if len(cs.items) == 0 {
		return 0, 0, false
	}
	min = cs.items[0]
	pos := 0
	for i, it := range cs.items {
		if it < min {
			min = it
			pos = i
		}
	}
	// Leftmost occurrence of min.
	for i, it := range cs.items {
		if it == min {
			pos = i
			break
		}
	}
	return min, int(cs.tnos[pos]) - 1, true
}

// NextMinItem returns the smallest item of cs strictly greater than x, and
// the 0-based transaction index of its leftmost occurrence. ok=false if no
// such item exists. This drives the first-level partition reassignment of
// Step 2.2 (§3.1).
func (cs *CustomerSeq) NextMinItem(x Item) (min Item, minTrans int, ok bool) {
	found := false
	var pos int
	for i, it := range cs.items {
		if it > x && (!found || it < cs.items[pos]) {
			found = true
			pos = i
		}
	}
	if !found {
		return 0, 0, false
	}
	m := cs.items[pos]
	for i, it := range cs.items {
		if it == m {
			pos = i
			break
		}
	}
	return m, int(cs.tnos[pos]) - 1, true
}

// DropItem returns the pattern with the item at flattened position i
// removed; a singleton itemset disappears entirely. The result is a
// (k-1)-subsequence of p — every maximal proper subsequence arises this
// way, which is what the GSP prune step and the closed/maximal filters
// enumerate.
func (p Pattern) DropItem(i int) Pattern {
	out := Pattern{
		items: make([]Item, 0, len(p.items)-1),
		tnos:  make([]int32, 0, len(p.items)-1),
	}
	// Whether the dropped item's transaction survives.
	lo, hi := i, i+1
	for lo > 0 && p.tnos[lo-1] == p.tnos[i] {
		lo--
	}
	for hi < len(p.items) && p.tnos[hi] == p.tnos[i] {
		hi++
	}
	gone := hi-lo == 1 // the itemset held only the dropped item
	for j := range p.items {
		if j == i {
			continue
		}
		no := p.tnos[j]
		if gone && no > p.tnos[i] {
			no--
		}
		out.items = append(out.items, p.items[j])
		out.tnos = append(out.tnos, no)
	}
	return out
}
