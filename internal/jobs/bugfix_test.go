package jobs

// Regression tests for three manager bugs that became visible once jobs
// started crossing process boundaries (the cluster path multiplies all
// three): budget clobbering in defaultMine, the asynchronous periodic-
// snapshot stop racing the final checkpoint write, and canceled queued
// jobs leaking their admission slot.

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/testutil"
)

func TestTighterBudget(t *testing.T) {
	cases := []struct{ request, service, want int }{
		{0, 0, 0},  // neither side has an opinion
		{5, 0, 5},  // zero service budget must NOT discard the request's
		{0, 5, 5},  // service cap binds a request that asked for nothing
		{3, 7, 3},  // tighter request wins
		{7, 3, 3},  // tighter service wins
		{-1, 4, 4}, // negatives are unset, like zero
		{4, -1, 4}, //
	}
	for _, c := range cases {
		if got := tighterBudget(c.request, c.service); got != c.want {
			t.Errorf("tighterBudget(%d, %d) = %d, want %d", c.request, c.service, got, c.want)
		}
	}
	if got := tighterBudget(int64(9), int64(0)); got != 9 {
		t.Errorf("tighterBudget[int64](9, 0) = %d, want 9", got)
	}
}

// TestRequestBudgetSurvivesZeroServiceBudget is the end-to-end
// regression: a service with no configured pattern budget used to
// overwrite (and thereby discard) the request's tighter one, so a job
// that asked to stop at 1 pattern ran unbounded.
func TestRequestBudgetSurvivesZeroServiceBudget(t *testing.T) {
	m := NewManager(Config{Workers: 1}) // MaxPatterns = 0: no service budget
	defer drain(t, m)

	req := reqFor(testutil.Table1(), 1) // δ=1 floods patterns
	req.Opts.MaxPatterns = 1
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateFailed || !errors.Is(st.Err, mining.ErrBudgetExceeded) {
		t.Fatalf("status = %+v, want failed with ErrBudgetExceeded (request budget was discarded)", st)
	}
}

// TestServiceBudgetStillBindsLooseRequest pins the other direction: the
// minimum rule must not let a request opt out of the service's limits.
func TestServiceBudgetStillBindsLooseRequest(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxPatterns: 1})
	defer drain(t, m)

	req := reqFor(testutil.Table1(), 1)
	req.Opts.MaxPatterns = 1 << 30 // far looser than the service's
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateFailed || !errors.Is(st.Err, mining.ErrBudgetExceeded) {
		t.Fatalf("status = %+v, want failed with ErrBudgetExceeded (service budget was overridden)", st)
	}
}

// TestPeriodicSnapshotsStopSynchronous pins the stop contract: the stop
// function returned by periodicSnapshots must not return while a
// periodic checkpoint write is still in flight, because runJob writes
// the same path immediately after calling it.
func TestPeriodicSnapshotsStopSynchronous(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{CheckpointDir: dir, CheckpointInterval: time.Millisecond})
	defer drain(t, m)

	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	m.writeCkpt = func(j *Job, cp *core.Checkpointer, path string) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}

	req := reqFor(smallDB(1), 2).normalize()
	j := newJob("0000000000000001", 1, req)
	stop := m.periodicSnapshots(j, core.NewCheckpointer(), filepath.Join(dir, j.id+".ckpt"))

	<-entered // a periodic write is now in flight and blocked

	stopped := make(chan struct{})
	go func() {
		stop()
		close(stopped)
	}()
	select {
	case <-stopped:
		t.Fatal("stop returned while a periodic checkpoint write was still in flight")
	case <-time.After(100 * time.Millisecond):
	}
	close(release) // let the blocked write finish; stop must now return
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("stop never returned after the in-flight write finished")
	}
	stop() // idempotent, and still synchronous
}

// TestPeriodicSnapshotsNoFinalWriteRace runs real jobs with a snapshot
// interval shorter than the job, so under -race an asynchronous stop
// would let the periodic writer overlap runJob's final writeCheckpoint
// on the same path.
func TestPeriodicSnapshotsNoFinalWriteRace(t *testing.T) {
	m := NewManager(Config{
		Workers:            2,
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: time.Millisecond,
	})
	for i := 1; i <= 8; i++ {
		j, err := m.Submit(reqFor(smallDB(i), 2))
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, j); st.State != StateDone {
			t.Fatalf("job %d = %+v", i, st)
		}
	}
	drain(t, m)
}

// TestCanceledQueuedJobFreesQueueSlot is the admission-accounting
// regression: a job canceled while queued turns terminal immediately
// and must free its queue slot at that moment — QueueDepth drops, and a
// new submission is admitted instead of shed.
func TestCanceledQueuedJobFreesQueueSlot(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	m.mine = func(ctx context.Context, j *Job, cp *core.Checkpointer) (*mining.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return mining.NewResult(), nil
		}
	}

	// j1 occupies the worker, j2 the single queue slot.
	j1, err := m.Submit(reqFor(smallDB(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; j1.State() != StateRunning; i++ {
		if i > 5000 {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	j2, err := m.Submit(reqFor(smallDB(2), 2))
	if err != nil {
		t.Fatal(err)
	}
	if d := m.QueueDepth(); d != 1 {
		t.Fatalf("QueueDepth = %d, want 1", d)
	}

	// Cancel the queued job: it is terminal now, and its slot is free.
	if _, err := m.Cancel(j2.ID()); err != nil {
		t.Fatal(err)
	}
	if st := j2.Status(); st.State != StateCanceled {
		t.Fatalf("canceled queued job = %+v", st)
	}
	if d := m.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth after canceling the queued job = %d, want 0", d)
	}
	if q := m.Metrics().Queued; q != 0 {
		t.Fatalf("Metrics.Queued = %d, want 0", q)
	}

	// The freed slot admits a new job instead of shedding it.
	j3, err := m.Submit(reqFor(smallDB(3), 2))
	if err != nil {
		t.Fatalf("submission after queued-job cancel shed: %v", err)
	}

	close(release)
	if st := waitTerminal(t, j1); st.State != StateDone {
		t.Fatalf("j1 = %+v", st)
	}
	if st := waitTerminal(t, j3); st.State != StateDone {
		t.Fatalf("j3 = %+v", st)
	}
	// The canceled job never ran.
	if n := m.ExecCount(j2.ID()); n != 0 {
		t.Fatalf("canceled queued job executed %d times, want 0", n)
	}
	drain(t, m)
}
