// Package jobs turns the repository's engine primitives into a
// multi-tenant mining service: a bounded job queue with admission
// control and explicit load shedding, a worker pool that runs every job
// under panic containment with a per-job deadline and resource budgets,
// and job deduplication keyed by the checkpoint fingerprint — an
// identical resubmission (a client retrying after a disconnect) attaches
// to the in-flight job or is served from the completed-job cache instead
// of mining twice.
//
// Jobs that die mid-run (cancellation, deadline, a contained panic, or
// the whole process being killed) leave a checkpoint behind; resubmitting
// the identical job resumes from it and produces a result byte-identical
// to an uninterrupted run. Each robustness mechanism maps onto one
// engine primitive from the earlier layers: containment is
// mining.Contain, budgets are core.Options.MaxPatterns/MaxMemBytes,
// checkpoints are internal/checkpoint via core.Checkpointer, identity is
// checkpoint.Fingerprint.
package jobs

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/obs"
)

// State is a job's lifecycle state. Terminal states are StateDone,
// StateFailed and StateCanceled.
type State string

// The job lifecycle: queued → running → done | failed | canceled. A job
// canceled while still queued skips running entirely.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// The typed admission failures of Submit. The HTTP layer maps them onto
// status codes (429 with Retry-After, 503, 404).
var (
	// ErrQueueFull is the load-shedding rejection: the bounded queue has
	// no free slot. The client should retry after Manager.RetryAfter.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects submissions while the manager is shutting
	// down gracefully.
	ErrDraining = errors.New("jobs: draining, not admitting new jobs")
	// ErrNotFound marks a job id the manager does not know.
	ErrNotFound = errors.New("jobs: no such job")
)

// Request describes one mining job. Two Requests with the same
// algorithm, result-relevant options, δ and database content are the
// same job: they share a fingerprint, and the manager executes them at
// most once.
type Request struct {
	// Algo is a registered algorithm name (default "disc-all").
	Algo string
	// MinSup is the absolute minimum support count δ (≥ 1).
	MinSup int
	// Opts are the engine options. The budget fields are overridden by
	// the manager's configured per-job budgets; Checkpoint and Faults
	// are owned by the manager.
	Opts core.Options
	// Timeout overrides the manager's per-job deadline when positive;
	// it is capped at the manager's JobTimeout.
	Timeout time.Duration
	// DB is the database to mine.
	DB mining.Database
	// Trace and ParentSpan carry the job's trace identity into a Mine
	// hook (the cluster coordinator opens its shard spans under them).
	// They are owned by the manager: set just before the hook runs and
	// stripped from submissions, so they never enter the fingerprint.
	Trace      *obs.TraceContext
	ParentSpan obs.SpanID
}

// normalize resolves defaults and strips fields the manager owns.
func (r Request) normalize() Request {
	if r.Algo == "" {
		r.Algo = "disc-all"
	}
	if r.MinSup < 1 {
		r.MinSup = 1
	}
	r.Opts.Checkpoint = nil
	r.Opts.Faults = nil
	r.Opts.Progress = nil
	r.Opts.Obs = nil
	r.Opts.Shard = nil // shards are a cluster-internal execution detail, not a job identity
	r.Trace = nil
	r.ParentSpan = 0
	return r
}

// fingerprint binds the request to its job identity (see
// checkpoint.Fingerprint: algorithm, result-relevant options, δ,
// database content — worker count excluded).
func (r Request) fingerprint() uint64 {
	return core.CheckpointFingerprint(r.Algo, r.Opts, r.MinSup, r.DB)
}

// Job is one admitted mining job. All fields are private and
// mutex-guarded; observe a job through Status, Done and Result.
type Job struct {
	id    string
	fp    uint64
	req   Request
	trace *obs.TraceContext // minted at admission, immutable afterwards

	mu       sync.Mutex
	state    State
	result   *mining.Result
	err      error
	cancel   func()     // non-nil while running
	canceled bool       // a cancellation was requested (possibly pre-run)
	resumed  int        // partitions restored from a checkpoint
	rootSpan obs.SpanID // the run's root "job" span, set by runJob
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{} // closed on reaching a terminal state
}

func newJob(id string, fp uint64, req Request) *Job {
	return &Job{id: id, fp: fp, req: req, state: StateQueued,
		created: time.Now(), done: make(chan struct{})}
}

// ID returns the job's identity: the 16-hex-digit checkpoint
// fingerprint. Identical requests share an ID.
func (j *Job) ID() string { return j.id }

// Trace returns the job's trace context — the flight recorder its
// fleet-wide timeline assembles from.
func (j *Job) Trace() *obs.TraceContext { return j.trace }

// rootSpanID returns the ID of the run's root span (zero before the
// job starts running).
func (j *Job) rootSpanID() obs.SpanID {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rootSpan
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the mined result once the job is done.
func (j *Job) Result() (*mining.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// Status is an immutable snapshot of a job.
type Status struct {
	ID       string
	Algo     string
	MinSup   int
	State    State
	Patterns int    // mined pattern count, once done
	Resumed  int    // first-level partitions restored from a checkpoint
	TraceID  string // the job's trace identity (timeline lookup key)
	Err      error
	Created  time.Time
	Started  time.Time
	Finished time.Time
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID: j.id, Algo: j.req.Algo, MinSup: j.req.MinSup,
		State: j.state, Resumed: j.resumed, Err: j.err,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.state == StateDone && j.result != nil {
		s.Patterns = j.result.Len()
	}
	if j.trace != nil {
		s.TraceID = j.trace.TraceID().String()
	}
	return s
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(s State, res *mining.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state, j.result, j.err = s, res, err
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
}

// WriteResult renders a result set in the canonical pattern-per-line
// text form ("<pattern> support=<n>\n", ascending comparative order) —
// the same bytes discmine prints, so service results can be compared
// byte-for-byte against CLI runs and across restarts.
func WriteResult(w io.Writer, res *mining.Result) error {
	for _, pc := range res.Sorted() {
		if _, err := fmt.Fprintf(w, "%s support=%d\n", pc.Pattern, pc.Support); err != nil {
			return err
		}
	}
	return nil
}
