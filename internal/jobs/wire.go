// The wire form of the job error taxonomy. It lives in this package —
// not in the HTTP binary — because two network surfaces speak it: the
// tenant-facing job API of cmd/discserve and the shard dispatch protocol
// of internal/cluster. A coordinator that receives a worker's typed
// error can therefore hand it to its own client unchanged, and the ops
// runbook keys on one Kind vocabulary for local and clustered runs
// alike.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"github.com/disc-mining/disc/internal/mining"
)

// WireError is the typed JSON error payload: Kind is stable and
// machine-matchable, the rest is context. The acceptance contract is
// that a contained worker panic surfaces as kind "invariant" on a 5xx
// while the process keeps serving.
type WireError struct {
	Kind      string `json:"kind"` // invariant | budget | deadline | canceled | input | shed | draining | not_found | auth | internal
	Message   string `json:"message"`
	Resource  string `json:"resource,omitempty"`  // budget errors: "patterns" or "memory"
	Partition string `json:"partition,omitempty"` // invariant errors: where the panic fired
}

// Error implements error, so a decoded WireError can propagate through
// ordinary error returns (the cluster coordinator surfaces a worker's
// typed failure this way).
func (e *WireError) Error() string {
	return fmt.Sprintf("%s: %s", e.Kind, e.Message)
}

// TypedWireError maps an error from the engine or manager onto the wire
// taxonomy. A *WireError passes through unchanged (a coordinator
// relaying a worker's error does not re-wrap it).
func TypedWireError(err error) *WireError {
	var we *WireError
	if errors.As(err, &we) {
		return we
	}
	e := &WireError{Kind: "internal", Message: err.Error()}
	var ie *mining.InvariantError
	var be *mining.BudgetError
	switch {
	case errors.As(err, &ie):
		e.Kind = "invariant"
		e.Partition = ie.Partition
		// The stack is in the server log, not the client payload.
		e.Message = fmt.Sprintf("internal invariant violated in partition %s: %v", ie.Partition, ie.Value)
	case errors.As(err, &be):
		e.Kind = "budget"
		e.Resource = be.Resource
	case errors.Is(err, context.DeadlineExceeded):
		e.Kind = "deadline"
	case errors.Is(err, context.Canceled):
		e.Kind = "canceled"
	}
	return e
}

// FailureStatusCode maps a terminal job's error onto the HTTP status
// used when the client asked for the outcome (wait=1 submits and result
// fetches): the taxonomy the ops runbook keys on.
func FailureStatusCode(st Status) int {
	var we *WireError
	switch {
	case st.State == StateCanceled:
		return http.StatusConflict // 409: the client (or drain) canceled it
	case errors.Is(st.Err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout // 504: per-job deadline
	case errors.Is(st.Err, mining.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity // 422: result exceeds service budgets
	case errors.As(st.Err, &we):
		return we.StatusCode() // a relayed cluster-worker failure keeps its class
	default:
		return http.StatusInternalServerError // 500: invariant or unclassified
	}
}

// StatusCode maps the error kind onto the HTTP status the job API uses
// for it — the inverse of the mapping the submit/result handlers apply,
// used when a typed error crosses a second network hop (coordinator
// relaying a worker failure).
func (e *WireError) StatusCode() int {
	switch e.Kind {
	case "canceled":
		return http.StatusConflict
	case "deadline":
		return http.StatusGatewayTimeout
	case "budget":
		return http.StatusUnprocessableEntity
	case "input":
		return http.StatusBadRequest
	case "shed":
		return http.StatusTooManyRequests
	case "draining":
		return http.StatusServiceUnavailable
	case "not_found":
		return http.StatusNotFound
	case "auth":
		return http.StatusUnauthorized
	default:
		return http.StatusInternalServerError
	}
}
