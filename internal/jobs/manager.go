package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/obs"
)

// Config shapes a Manager. The zero value is usable: a queue of 16, one
// worker, no deadline, no checkpointing, no budgets.
type Config struct {
	// QueueDepth bounds the backlog of admitted-but-not-yet-running
	// jobs; Submit sheds load with ErrQueueFull beyond it (default 16).
	QueueDepth int
	// Workers is the number of jobs mined concurrently (default 1).
	// Each job additionally parallelizes internally through its own
	// Opts.Workers partition pool.
	Workers int
	// JobTimeout is the per-job deadline (0 = none). A job hitting it
	// fails with context.DeadlineExceeded after checkpointing.
	JobTimeout time.Duration
	// MaxPatterns and MaxMemBytes are the per-job resource budgets
	// (core.Options semantics: degrade at 80%, stop with a typed
	// *mining.BudgetError at 100%). They override whatever the request
	// carries, so one tenant cannot opt out of the service's limits.
	MaxPatterns int
	MaxMemBytes int64
	// CheckpointDir, when set, persists each disc-all-family job's
	// completed first-level partitions to <dir>/<id>.ckpt: on
	// cancellation, deadline or failure immediately, and additionally
	// every CheckpointInterval while running. Resubmitting an identical
	// job — same process or after a restart — resumes from the file.
	CheckpointDir string
	// CheckpointInterval is the periodic snapshot cadence (0 = only at
	// job exit). Periodic snapshots are what make kill -9 survivable.
	CheckpointInterval time.Duration
	// FS is the filesystem checkpoint writes, removals and quarantine
	// renames go through (nil = the real filesystem). Tests and fault
	// drills plug in faultinject.Injector.FS here.
	FS checkpoint.FS
	// DegradeAfter is how many consecutive checkpoint write failures
	// switch the manager into degraded-durability mode: mining continues,
	// results are byte-identical, but snapshots stop until a probe write
	// succeeds (default 3; negative disables degradation).
	DegradeAfter int
	// DurabilityProbe is how often a degraded manager retries one
	// checkpoint write to see whether the disk recovered (default 15s).
	DurabilityProbe time.Duration
	// StorageRetention is the age beyond which orphaned checkpoints,
	// quarantined files and stale .tmp staging files in CheckpointDir are
	// reclaimed by GC (0 = keep forever).
	StorageRetention time.Duration
	// StorageGCInterval is the cadence of the periodic retention GC and
	// resting-file scrub over CheckpointDir (0 = startup pass only).
	StorageGCInterval time.Duration
	// CacheJobs bounds how many terminal jobs are retained for result
	// caching and idempotent resubmission (default 64, FIFO eviction).
	CacheJobs int
	// RetryAfter is the hint handed to shed clients (default 1s).
	RetryAfter time.Duration
	// Faults arms the deterministic fault-injection points on the job
	// path: WorkerPanic at the job boundary and inside the engine,
	// CtxCancel at engine partition boundaries (wired to the running
	// job's cancel). Production managers leave it nil.
	Faults *faultinject.Injector
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
	// Obs is the observability handle shared with the serving binary.
	// The manager's counters ARE registry instruments (Metrics reads
	// them back), every job run hands the observer to the engine, and
	// checkpoint writes observe their latency and size. Nil gets a
	// private registry so the accounting is identical either way.
	Obs *obs.Observer
	// Node names this process in the trace records its spans and events
	// carry ("" is fine for a single-process service; the cluster role
	// wiring sets coordinator/worker names so a fleet timeline says
	// where each span ran).
	Node string
	// TraceEvents bounds each job's flight-recorder ring (0 selects
	// obs.DefaultRecorderEvents). The recorder never grows past it:
	// oldest events are evicted and counted in the timeline's
	// dropped_events.
	TraceEvents int
	// TraceSeed seeds trace/span ID minting (0 = time-seeded). Tests
	// set it for reproducible golden timelines.
	TraceSeed int64
	// Mine, when set, replaces the local mining of a job — the cluster
	// coordinator plugs in here to shard the job across workers. It
	// receives the request with the service budgets already folded in and
	// the job's checkpointer (nil when checkpointing is off); recording
	// received partitions into the checkpointer keeps periodic snapshots
	// and crash-resume working unchanged. Everything around the run —
	// admission, dedup, deadline, containment, terminal accounting — stays
	// the manager's.
	Mine func(ctx context.Context, req Request, cp *core.Checkpointer) (*mining.Result, error)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.CacheJobs <= 0 {
		c.CacheJobs = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.FS == nil {
		c.FS = checkpoint.OS
	}
	if c.DegradeAfter == 0 {
		c.DegradeAfter = 3
	}
	if c.DurabilityProbe <= 0 {
		c.DurabilityProbe = 15 * time.Second
	}
	return c
}

// Metrics counts what the manager has done since start. Queued and
// Running are gauges; the rest are monotone counters. It is a snapshot
// read back from the manager's registry instruments — the same numbers
// /metrics exposes, by construction.
type Metrics struct {
	Submitted int // jobs admitted into the queue
	Deduped   int // submissions attached to an existing queued/running job
	CacheHits int // submissions served from a completed job
	Shed      int // submissions rejected with ErrQueueFull
	Drained   int // submissions rejected with ErrDraining
	Executed  int // job runs started (≤ Submitted: dedup prevents re-runs)
	Done      int
	Failed    int
	Canceled  int
	Resumed   int // runs that restored partitions from a checkpoint
	Queued    int
	Running   int
}

// Manager owns the job queue, the worker pool and the completed-job
// cache. Construct with NewManager; stop with Drain.
type Manager struct {
	cfg Config

	mu        sync.Mutex
	jobs      map[string]*Job // every known job, keyed by fingerprint id
	termOrder []string        // terminal jobs in completion order (cache eviction)
	// pending is the admission backlog. A slice (not a channel) so that
	// canceling a queued job can remove it immediately — a canceled job
	// must stop counting against QueueDepth and admission capacity the
	// moment it turns terminal, not when a worker happens to pop it.
	pending  []*Job
	notEmpty *sync.Cond // signaled on append to pending and on drain
	draining bool
	execs    map[string]int // job id -> times actually mined

	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// The manager's accounting lives in registry instruments; Metrics()
	// and /metrics both read them, so the two views cannot disagree.
	// The counters are pre-created here so hot paths (Submit under
	// m.mu) touch only atomics, never the registry lock.
	obs       *obs.Observer
	ids       *obs.IDSource // trace/span ID minting for every job trace
	submitted *obs.Counter
	deduped   *obs.Counter
	cacheHits *obs.Counter
	shed      *obs.Counter
	drained   *obs.Counter
	executed  *obs.Counter
	resumed      *obs.Counter
	finished     map[State]*obs.Counter
	jobDur       map[State]*obs.Histogram
	ckptDur      *obs.Histogram
	ckptBytes    *obs.Histogram
	ckptFailures *obs.Counter
	quarantined  *obs.Counter // disc_storage_quarantined_total{kind="checkpoint"}

	// Durability state: consecutive checkpoint write failures and the
	// degraded-durability latch. dmu is a leaf lock — never held while
	// calling into the registry or taking m.mu — because the
	// disc_storage_degraded gauge reads it at render time.
	dmu         sync.Mutex
	consecFails int
	degraded    bool
	lastProbe   time.Time
	lastErr     error
	lastErrAt   time.Time

	gcStop chan struct{} // closed by Drain; ends the periodic storage GC
	gcDone chan struct{}

	// mine runs one job; replaced by lifecycle tests to control timing.
	mine func(ctx context.Context, j *Job, cp *core.Checkpointer) (*mining.Result, error)
	// writeCkpt is the snapshot write used by the periodic goroutine;
	// replaced by tests to make an in-flight write observable (proving
	// stopSnapshots waits for it). Defaults to writeCheckpoint.
	writeCkpt func(j *Job, cp *core.Checkpointer, path string)
}

// NewManager starts a manager with cfg's worker pool running.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		jobs:       map[string]*Job{},
		execs:      map[string]int{},
		baseCtx:    ctx,
		baseCancel: cancel,
		ids:        obs.NewIDSource(cfg.TraceSeed),
	}
	m.notEmpty = sync.NewCond(&m.mu)
	m.initObs(cfg.Obs)
	m.mine = m.defaultMine
	m.writeCkpt = m.writeCheckpoint
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	m.startupStorage()
	m.reportOrphans()
	return m
}

// sweeper builds the retention sweeper over CheckpointDir, wired to the
// manager's log, metrics and live-job protection.
func (m *Manager) sweeper() *checkpoint.Sweeper {
	r := m.obs.Registry
	return &checkpoint.Sweeper{
		FS:             m.cfg.FS,
		Retention:      m.cfg.StorageRetention,
		MaxQuarantined: maxQuarantined,
		Keep: func(path string) bool {
			// Never reclaim the checkpoint of a job still queued or
			// running — it is the job's crash-survival state.
			if !strings.HasSuffix(path, ".ckpt") {
				return false
			}
			id := strings.TrimSuffix(filepath.Base(path), ".ckpt")
			m.mu.Lock()
			defer m.mu.Unlock()
			j, ok := m.jobs[id]
			return ok && !j.State().Terminal()
		},
		Logf: m.logf,
		OnReclaim: func(kind string, files int, bytes int64) {
			r.Counter("disc_storage_reclaimed_files_total",
				"Durable-state files reclaimed by retention GC, by kind.",
				obs.Label{Key: "kind", Value: kind}).Add(int64(files))
			r.Counter("disc_storage_reclaimed_bytes_total",
				"Bytes reclaimed by retention GC, by kind.",
				obs.Label{Key: "kind", Value: kind}).Add(bytes)
		},
		OnQuarantine: func(kind string) {
			r.Counter("disc_storage_quarantined_total",
				"Durable-state files quarantined after failing CRC or decode verification, by kind.",
				obs.Label{Key: "kind", Value: kind}).Inc()
		},
	}
}

// maxQuarantined caps *.corrupt files kept per directory: enough to
// diagnose a corruption episode, bounded so a flapping disk cannot fill
// the volume with evidence.
const maxQuarantined = 32

// startupStorage runs the scrub+sweep pass over CheckpointDir and, when
// configured, starts the periodic GC loop. The scrub quarantines any
// checkpoint that no longer decodes — startup is when bit-rot from the
// previous process's lifetime surfaces — and the sweep reclaims files
// past retention, so a restart never trips over last month's garbage.
func (m *Manager) startupStorage() {
	if m.cfg.CheckpointDir == "" {
		return
	}
	s := m.sweeper()
	s.Scrub(m.cfg.CheckpointDir)
	s.Sweep(m.cfg.CheckpointDir)
	if m.cfg.StorageGCInterval <= 0 {
		return
	}
	m.gcStop = make(chan struct{})
	m.gcDone = make(chan struct{})
	go func() {
		defer close(m.gcDone)
		tick := time.NewTicker(m.cfg.StorageGCInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.Scrub(m.cfg.CheckpointDir)
				s.Sweep(m.cfg.CheckpointDir)
			case <-m.gcStop:
				return
			}
		}
	}()
}

// reportOrphans logs the checkpoints a previous process left behind.
// Each resumes automatically when an identical job is resubmitted (the
// cluster's ledger recovery does so on its own), but until then the
// operator should know interrupted work is waiting on disk rather than
// discover it from a mysteriously fast "fresh" run later.
func (m *Manager) reportOrphans() {
	if m.cfg.CheckpointDir == "" {
		return
	}
	matches, err := filepath.Glob(filepath.Join(m.cfg.CheckpointDir, "*.ckpt"))
	if err != nil || len(matches) == 0 {
		return
	}
	sort.Strings(matches)
	for _, path := range matches {
		id := strings.TrimSuffix(filepath.Base(path), ".ckpt")
		m.logf("jobs: checkpoint for job %s survives from a previous run; resubmitting the identical job resumes it", id)
	}
	m.logf("jobs: %d orphaned checkpoint(s) in %s", len(matches), m.cfg.CheckpointDir)
}

// initObs wires the manager's instruments. Every family is registered
// eagerly so a scrape of a fresh server already shows them at zero.
func (m *Manager) initObs(o *obs.Observer) {
	if o == nil {
		o = obs.NewObserver()
	}
	m.obs = o
	r := o.Registry
	m.submitted = r.Counter("disc_jobs_submitted_total", "Jobs admitted into the queue.")
	m.deduped = r.Counter("disc_jobs_deduped_total", "Submissions attached to an already queued or running identical job.")
	m.cacheHits = r.Counter("disc_jobs_cache_hits_total", "Submissions served from the completed-job cache.")
	m.shed = r.Counter("disc_jobs_shed_total", "Submissions rejected by admission control (queue full).")
	m.drained = r.Counter("disc_jobs_drained_total", "Submissions rejected during graceful drain.")
	m.executed = r.Counter("disc_jobs_executed_total", "Job runs actually started (dedup keeps this at most one per admission).")
	m.resumed = r.Counter("disc_jobs_resumed_total", "Job runs that restored completed partitions from a checkpoint.")
	m.finished = map[State]*obs.Counter{}
	m.jobDur = map[State]*obs.Histogram{}
	for _, s := range []State{StateDone, StateFailed, StateCanceled} {
		m.finished[s] = r.Counter("disc_jobs_finished_total",
			"Jobs reaching a terminal state, by state.", obs.Label{Key: "state", Value: string(s)})
		m.jobDur[s] = r.Histogram("disc_job_duration_seconds",
			"End-to-end job latency (admission to terminal state), by terminal state.",
			obs.DurationBuckets, obs.Label{Key: "state", Value: string(s)})
	}
	m.ckptDur = r.Histogram("disc_checkpoint_write_seconds",
		"Latency of one atomic checkpoint snapshot write.", obs.DurationBuckets)
	m.ckptBytes = r.Histogram("disc_checkpoint_bytes",
		"Size of one checkpoint snapshot.", obs.SizeBuckets)
	m.ckptFailures = r.Counter("disc_jobs_checkpoint_failures_total",
		"Checkpoint snapshot writes that failed (disk full, torn write, sync error).")
	m.quarantined = r.Counter("disc_storage_quarantined_total",
		"Durable-state files quarantined after failing CRC or decode verification, by kind.",
		obs.Label{Key: "kind", Value: checkpoint.KindCheckpoint})
	r.GaugeFunc("disc_storage_degraded",
		"1 while durability is degraded (checkpoint writes suspended after repeated failures), by component.",
		func() float64 {
			if m.Durability().Degraded {
				return 1
			}
			return 0
		}, obs.Label{Key: "component", Value: "jobs"})
	// Live state reads through at render time: the gauges evaluate the
	// queue and job table when scraped, so they can never go stale.
	r.GaugeFunc("disc_jobs_queue_depth", "Jobs waiting in the admission queue.",
		func() float64 { return float64(m.QueueDepth()) })
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		s := s
		r.GaugeFunc("disc_jobs_by_state", "Known jobs by lifecycle state.",
			func() float64 { return float64(m.JobsByState()[s]) },
			obs.Label{Key: "state", Value: string(s)})
	}
}

// Registry exposes the registry the manager's instruments live in — the
// one the serving binary mounts at /metrics.
func (m *Manager) Registry() *obs.Registry { return m.obs.Registry }

// QueueDepth reports the jobs admitted but not yet claimed by a worker.
// Jobs canceled while queued leave the backlog immediately, so they
// never inflate this number.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// JobsByState counts every known job (including cached terminal ones) by
// lifecycle state.
func (m *Manager) JobsByState() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[State]int{}
	for _, j := range m.jobs {
		out[j.State()]++
	}
	return out
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// RetryAfter is the backoff hint for clients shed with ErrQueueFull or
// ErrDraining.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// Metrics snapshots the manager's counters and gauges by reading the
// registry instruments back.
func (m *Manager) Metrics() Metrics {
	byState := m.JobsByState()
	return Metrics{
		Submitted: int(m.submitted.Value()),
		Deduped:   int(m.deduped.Value()),
		CacheHits: int(m.cacheHits.Value()),
		Shed:      int(m.shed.Value()),
		Drained:   int(m.drained.Value()),
		Executed:  int(m.executed.Value()),
		Done:      int(m.finished[StateDone].Value()),
		Failed:    int(m.finished[StateFailed].Value()),
		Canceled:  int(m.finished[StateCanceled].Value()),
		Resumed:   int(m.resumed.Value()),
		Queued:    m.QueueDepth(),
		Running:   byState[StateRunning],
	}
}

// ExecCount reports how many times the job's mining actually ran —
// the deduplication invariant is that identical submissions never push
// it past 1 per admission.
func (m *Manager) ExecCount(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.execs[id]
}

// Submit admits a job. Identical requests (same fingerprint) attach to
// the already queued or running job, or hit the completed-job cache;
// either way the returned Job is the shared one and no second execution
// happens. A previously failed or canceled job is re-admitted — and, if
// it checkpointed, resumes where it stopped. Submit sheds load with
// ErrQueueFull when the backlog is at QueueDepth and refuses with
// ErrDraining during shutdown.
func (m *Manager) Submit(req Request) (*Job, error) {
	req = req.normalize()
	// Reject unknown algorithms at admission, not at execution.
	if _, err := minerFor(req.Algo, req.Opts); err != nil {
		return nil, err
	}
	fp := req.fingerprint()
	id := fmt.Sprintf("%016x", fp)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.drained.Inc()
		return nil, ErrDraining
	}
	if j, ok := m.jobs[id]; ok {
		switch j.State() {
		case StateQueued, StateRunning:
			m.deduped.Inc()
			return j, nil
		case StateDone:
			m.cacheHits.Inc()
			return j, nil
		default: // failed or canceled: re-admit (resumes from checkpoint)
			m.evictLocked(id)
		}
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		m.shed.Inc()
		return nil, ErrQueueFull
	}
	j := newJob(id, fp, req)
	// Admission mints the job's trace: one trace ID bound to the job
	// fingerprint, one bounded flight recorder, for the job's whole
	// life across every process that works on it.
	j.trace = obs.NewTraceContext(m.ids.TraceID(), m.cfg.Node, m.ids,
		obs.NewRecorder(m.cfg.TraceEvents))
	j.trace.Event("queue-admit", 0, map[string]string{
		"job":         id,
		"queue_depth": fmt.Sprint(len(m.pending)),
	})
	m.pending = append(m.pending, j)
	m.jobs[id] = j
	m.submitted.Inc()
	m.notEmpty.Signal()
	return j, nil
}

// Get returns a known job by id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Timeline assembles the job's trace — every span and structured
// event its flight recorder retained, including span records folded
// back from cluster workers — sorted and ready to serve as JSON.
func (m *Manager) Timeline(id string) (*obs.Timeline, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	tc := j.Trace()
	if tc == nil {
		return nil, ErrNotFound
	}
	return tc.Timeline(id), nil
}

// ActiveTraces lists the trace IDs of every non-terminal job, sorted —
// the /healthz view that turns "the service is slow" into "go look at
// these timelines".
func (m *Manager) ActiveTraces() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []string{}
	for _, j := range m.jobs {
		if j.State().Terminal() {
			continue
		}
		if tc := j.trace; tc != nil {
			out = append(out, tc.TraceID().String())
		}
	}
	sort.Strings(out)
	return out
}

// Cancel requests cancellation of a job: a queued job terminates
// immediately, a running one is cut at its next cooperative engine
// check (checkpointing what completed). Canceling a terminal job is an
// idempotent no-op.
func (m *Manager) Cancel(id string) (*Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	j.canceled = true
	cancel := j.cancel
	queued := j.state == StateQueued
	j.mu.Unlock()
	switch {
	case queued:
		// Pull it out of the backlog so it frees its admission slot now
		// — QueueDepth and shedding must not count a terminal job — and
		// finish it so pollers see the terminal state immediately. If a
		// worker popped it in the meantime, the removal is a no-op and
		// runJob's own canceled check skips the run.
		m.unqueue(j)
		m.finishJob(j, StateCanceled, nil, context.Canceled)
	case cancel != nil:
		cancel()
	}
	return j, nil
}

// unqueue removes a job from the pending backlog, if it is still there.
func (m *Manager) unqueue(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, q := range m.pending {
		if q == j {
			copy(m.pending[i:], m.pending[i+1:])
			m.pending[len(m.pending)-1] = nil
			m.pending = m.pending[:len(m.pending)-1]
			return
		}
	}
}

// Draining reports whether the manager has stopped admitting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain shuts down gracefully: stop admitting, let queued and running
// jobs finish, then return. If ctx expires first, in-flight jobs are
// canceled — they checkpoint their completed partitions — and Drain
// waits for the workers to wind down before returning ctx's error.
// Either way, no job is left mid-flight without a checkpoint.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return errors.New("jobs: already draining")
	}
	m.draining = true
	m.notEmpty.Broadcast() // wake idle workers so they can exit
	m.mu.Unlock()
	if m.gcStop != nil {
		close(m.gcStop)
		<-m.gcDone
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseCancel() // cancel in-flight jobs; they checkpoint and exit
		<-done
		return fmt.Errorf("jobs: drain cut short, in-flight jobs checkpointed: %w", ctx.Err())
	}
}

// worker pops and runs pending jobs until Drain empties the backlog.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.nextJob()
		if j == nil {
			return
		}
		m.runJob(j)
	}
}

// nextJob blocks until a pending job is available, claiming the oldest.
// It returns nil once the manager is draining and the backlog is empty —
// queued work still finishes during drain.
func (m *Manager) nextJob() *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) == 0 {
		if m.draining {
			return nil
		}
		m.notEmpty.Wait()
	}
	j := m.pending[0]
	m.pending[0] = nil
	m.pending = m.pending[1:]
	if len(m.pending) == 0 {
		m.pending = nil // let the backing array go once drained
	}
	return j
}

// finishJob moves a job to a terminal state and maintains the cache:
// terminal jobs stay addressable (result cache, idempotent retries)
// until CacheJobs newer ones evict them.
func (m *Manager) finishJob(j *Job, s State, res *mining.Result, err error) {
	j.mu.Lock()
	already := j.state.Terminal()
	j.mu.Unlock()
	if already {
		return
	}
	j.finish(s, res, err)
	// Terminal accounting: the per-state counter and the end-to-end
	// latency histogram (admission to terminal state).
	st := j.State()
	if c, ok := m.finished[st]; ok {
		c.Inc()
	}
	j.mu.Lock()
	dur := j.finished.Sub(j.created)
	j.mu.Unlock()
	if h, ok := m.jobDur[st]; ok && dur > 0 {
		h.Observe(dur.Seconds())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.termOrder = append(m.termOrder, j.id)
	for len(m.termOrder) > m.cfg.CacheJobs {
		victim := m.termOrder[0]
		m.termOrder = m.termOrder[1:]
		// Only evict if the map entry is still this terminal incarnation
		// (a re-admitted job reuses the id).
		if cur, ok := m.jobs[victim]; ok && cur.State().Terminal() {
			delete(m.jobs, victim)
			delete(m.execs, victim)
		}
	}
}

// evictLocked removes a terminal job so a fresh incarnation can take its
// id. Caller holds m.mu.
func (m *Manager) evictLocked(id string) {
	delete(m.jobs, id)
	for i, tid := range m.termOrder {
		if tid == id {
			m.termOrder = append(m.termOrder[:i], m.termOrder[i+1:]...)
			break
		}
	}
}

// runJob executes one dequeued job: claim it, arm deadline and faults,
// restore or create its checkpointer, mine under containment, and map
// the outcome onto the terminal states — checkpointing on every
// non-success so the work is never lost.
func (m *Manager) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued || j.canceled {
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if !terminal {
			m.finishJob(j, StateCanceled, nil, context.Canceled)
		}
		return
	}
	timeout := m.cfg.JobTimeout
	if j.req.Timeout > 0 && (timeout <= 0 || j.req.Timeout < timeout) {
		timeout = j.req.Timeout
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(m.baseCtx)
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	// The run's root span: everything the job does — local engine
	// recursion or coordinator shard fan-out — hangs off this span in
	// the assembled timeline.
	sp := m.obs.WithTrace(j.trace, 0).Span("job")
	j.mu.Lock()
	j.rootSpan = sp.ID()
	j.mu.Unlock()
	defer sp.End()

	m.executed.Inc()
	m.mu.Lock()
	m.execs[j.id]++
	m.mu.Unlock()

	cp, ckptPath := m.checkpointFor(j)
	stopSnapshots := m.periodicSnapshots(j, cp, ckptPath)
	if f := m.cfg.Faults; f != nil {
		f.OnCancel(cancel)
	}

	res, err := m.mine(ctx, j, cp)
	stopSnapshots()

	switch {
	case err == nil:
		if ckptPath != "" {
			m.cfg.FS.Remove(ckptPath) // the run finished; the checkpoint is obsolete
		}
		m.finishJob(j, StateDone, res, nil)
	case errors.Is(err, context.Canceled):
		m.writeCheckpoint(j, cp, ckptPath)
		m.finishJob(j, StateCanceled, nil, err)
	default:
		// Deadline, contained panic, budget breach, malformed input:
		// keep the completed partitions — an identical resubmission
		// resumes instead of restarting.
		m.writeCheckpoint(j, cp, ckptPath)
		m.finishJob(j, StateFailed, nil, err)
	}
}

// checkpointable reports whether the algorithm supports partition
// checkpointing (the disc-all family; the baselines mine monolithically).
func checkpointable(algo string) bool {
	return algo == "disc-all" || algo == "dynamic-disc-all"
}

// checkpointFor returns the job's checkpointer — seeded from a prior
// run's file when one exists and belongs to this job — and the path its
// snapshots go to. Returns (nil, "") when checkpointing is off.
func (m *Manager) checkpointFor(j *Job) (*core.Checkpointer, string) {
	if m.cfg.CheckpointDir == "" || !checkpointable(j.req.Algo) {
		return nil, ""
	}
	path := filepath.Join(m.cfg.CheckpointDir, j.id+".ckpt")
	switch f, err := checkpoint.ReadFileFS(m.cfg.FS, path); {
	case err == nil && f.Fingerprint == j.fp && f.Algo == j.req.Algo && f.MinSup == j.req.MinSup:
		j.mu.Lock()
		j.resumed = len(f.Partitions)
		j.mu.Unlock()
		m.resumed.Inc()
		m.logf("jobs: %s resuming from checkpoint (%d completed partitions)", j.id, len(f.Partitions))
		return core.ResumeFrom(f), path
	case err == nil:
		m.logf("jobs: %s ignoring checkpoint at %s: belongs to a different job", j.id, path)
	case checkpoint.Undecodable(err):
		// Corrupt or torn: the CRC caught it. Quarantine the file so the
		// evidence survives and the job mines from scratch — crashing, or
		// tripping over the same file every restart, helps nobody.
		if q, qerr := checkpoint.Quarantine(m.cfg.FS, path); qerr == nil {
			m.quarantined.Inc()
			m.logf("jobs: %s quarantined corrupt checkpoint to %s: %v", j.id, q, err)
		} else {
			m.logf("jobs: %s cannot quarantine corrupt checkpoint at %s: %v (read error: %v)", j.id, path, qerr, err)
		}
	case !errors.Is(err, os.ErrNotExist):
		m.logf("jobs: %s ignoring unreadable checkpoint at %s: %v", j.id, path, err)
	}
	return core.NewCheckpointer(), path
}

// periodicSnapshots writes the checkpoint every CheckpointInterval while
// the job runs, so kill -9 loses at most one interval of work. The
// returned stop function is idempotent and synchronous: it does not
// return until the snapshot goroutine has exited, so a caller that
// writes the same checkpoint path afterwards (runJob's final write)
// can never race an in-flight periodic write.
func (m *Manager) periodicSnapshots(j *Job, cp *core.Checkpointer, path string) func() {
	if cp == nil || path == "" || m.cfg.CheckpointInterval <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(done)
		tick := time.NewTicker(m.cfg.CheckpointInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				m.writeCkpt(j, cp, path)
			case <-stop:
				return
			}
		}
	}()
	return func() {
		once.Do(func() { close(stop) })
		<-done
	}
}

func (m *Manager) writeCheckpoint(j *Job, cp *core.Checkpointer, path string) {
	if cp == nil || path == "" {
		return
	}
	if !m.durabilityAttempt() {
		return // degraded and no probe due: mining continues, durability off
	}
	start := time.Now()
	n, err := cp.File(j.req.Algo, j.req.MinSup, j.fp).WriteFileFS(m.cfg.FS, path)
	if err != nil {
		m.ckptFailures.Inc()
		j.trace.Event("checkpoint-failed", j.rootSpanID(),
			map[string]string{"error": err.Error()})
		if m.durabilityFailed(err) {
			j.trace.Event("degrade-latch", j.rootSpanID(),
				map[string]string{"error": err.Error()})
		}
		m.logf("jobs: %s checkpoint write failed: %v", j.id, err)
		return
	}
	m.durabilityOK()
	m.ckptDur.Observe(time.Since(start).Seconds())
	m.ckptBytes.Observe(float64(n))
	j.trace.Event("checkpoint-write", j.rootSpanID(),
		map[string]string{"bytes": fmt.Sprint(n)})
}

// durabilityAttempt reports whether a checkpoint write should be tried
// now. Healthy managers always write; a degraded one writes only the
// periodic probe that tests whether the disk recovered.
func (m *Manager) durabilityAttempt() bool {
	m.dmu.Lock()
	defer m.dmu.Unlock()
	if !m.degraded {
		return true
	}
	if time.Since(m.lastProbe) < m.cfg.DurabilityProbe {
		return false
	}
	m.lastProbe = time.Now()
	return true
}

// durabilityFailed records one failed checkpoint write and latches
// degraded-durability mode after DegradeAfter consecutive failures,
// reporting whether this call tripped the latch.
func (m *Manager) durabilityFailed(err error) bool {
	m.dmu.Lock()
	m.consecFails++
	m.lastErr = err
	m.lastErrAt = time.Now()
	trip := !m.degraded && m.cfg.DegradeAfter > 0 && m.consecFails >= m.cfg.DegradeAfter
	if trip {
		m.degraded = true
		m.lastProbe = time.Now()
	}
	n := m.consecFails
	m.dmu.Unlock()
	if trip {
		m.logf("jobs: durability degraded after %d consecutive checkpoint write failures; mining continues, probing every %s", n, m.cfg.DurabilityProbe)
	}
	return trip
}

// durabilityOK records one successful checkpoint write, re-arming
// durability if it was degraded.
func (m *Manager) durabilityOK() {
	m.dmu.Lock()
	rearmed := m.degraded
	m.degraded = false
	m.consecFails = 0
	m.dmu.Unlock()
	if rearmed {
		m.logf("jobs: durability re-armed, checkpoint writes succeeding again")
	}
}

// DurabilityStatus is the durability view /healthz serves: whether
// checkpointing is currently degraded and what the last failure was.
type DurabilityStatus struct {
	Degraded            bool      `json:"degraded"`
	ConsecutiveFailures int       `json:"consecutive_failures,omitempty"`
	CheckpointFailures  int64     `json:"checkpoint_failures_total"`
	LastError           string    `json:"last_error,omitempty"`
	LastErrorAt         time.Time `json:"last_error_at"`
}

// Durability snapshots the manager's durability state.
func (m *Manager) Durability() DurabilityStatus {
	m.dmu.Lock()
	defer m.dmu.Unlock()
	s := DurabilityStatus{
		Degraded:            m.degraded,
		ConsecutiveFailures: m.consecFails,
		CheckpointFailures:  m.ckptFailures.Value(),
		LastErrorAt:         m.lastErrAt,
	}
	if m.lastErr != nil {
		s.LastError = m.lastErr.Error()
	}
	return s
}

// tighterBudget resolves a per-request resource budget against the
// service-wide one: the minimum of the pair, where zero means unset
// rather than zero capacity.
func tighterBudget[T int | int64](request, service T) T {
	switch {
	case request <= 0:
		return service
	case service <= 0:
		return request
	case request < service:
		return request
	default:
		return service
	}
}

// minerFor builds the requested algorithm with the job's options (the
// disc-all family natively; everything else through the registry).
func minerFor(algo string, opts core.Options) (mining.Miner, error) {
	switch algo {
	case "disc-all":
		return &core.Miner{Opts: opts}, nil
	case "dynamic-disc-all":
		return &core.Dynamic{Opts: opts}, nil
	}
	return mining.NewRegistered(algo)
}

// defaultMine runs the job's mining under service-boundary panic
// containment: a panic anywhere outside the engine's own contained
// goroutines — option plumbing, miner construction, result handling —
// still degrades to a typed *mining.InvariantError on this job instead
// of killing the process.
func (m *Manager) defaultMine(ctx context.Context, j *Job, cp *core.Checkpointer) (*mining.Result, error) {
	var res *mining.Result
	err := mining.Contain("job:"+j.id, func() error {
		if f := m.cfg.Faults; f != nil {
			f.Panic(faultinject.WorkerPanic, "job:"+j.id)
		}
		opts := j.req.Opts
		// The effective budget is the tighter of the request's and the
		// service's — a zero on either side means "no opinion", not
		// "unlimited overrides": the service cap still binds a request
		// that asked for nothing, and a request's tighter cap survives a
		// service with no configured limit.
		opts.MaxPatterns = tighterBudget(opts.MaxPatterns, m.cfg.MaxPatterns)
		opts.MaxMemBytes = tighterBudget(opts.MaxMemBytes, m.cfg.MaxMemBytes)
		if m.cfg.Mine != nil {
			req := j.req
			req.Opts = opts
			req.Trace = j.trace
			req.ParentSpan = j.rootSpanID()
			r, err := m.cfg.Mine(ctx, req, cp)
			if err != nil {
				return err
			}
			res = r
			return nil
		}
		opts.Checkpoint = cp
		opts.Faults = m.cfg.Faults
		opts.Obs = m.obs.WithTrace(j.trace, j.rootSpanID())
		miner, err := minerFor(j.req.Algo, opts)
		if err != nil {
			return err
		}
		r, err := mining.AsContextMiner(miner).MineContext(ctx, j.req.DB, j.req.MinSup)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
