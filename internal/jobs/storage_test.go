package jobs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/obs"
)

// flakyFS fails every Create while tripped, passing everything else to
// the real filesystem — the simplest "disk came back" lever for tests.
type flakyFS struct {
	checkpoint.FS
	fail atomic.Bool
}

func newFlakyFS() *flakyFS { return &flakyFS{FS: checkpoint.OS} }

func (f *flakyFS) Create(path string) (checkpoint.FileWriter, error) {
	if f.fail.Load() {
		return nil, errors.New("injected: device not ready")
	}
	return f.FS.Create(path)
}

// TestCheckpointFailuresCountedAndDegrade is the regression test for the
// log-only failure path: before, a failing checkpoint write left no
// metric and no state — operators learned their jobs had no durable
// state only when a resume silently started from scratch. Now every
// failure increments disc_jobs_checkpoint_failures_total, is surfaced in
// Durability(), and repeated failures latch degraded mode, which stops
// hammering the broken disk.
func TestCheckpointFailuresCountedAndDegrade(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1).Arm(faultinject.StorageENOSPC, faultinject.Spec{Prob: 1})
	m := NewManager(Config{
		CheckpointDir: dir, FS: inj.FS(nil),
		DegradeAfter: 2, DurabilityProbe: time.Hour,
		Logf: t.Logf,
	})
	defer drain(t, m)

	j := newJob("000000000000000a", 0xa, reqFor(smallDB(1), 2))
	cp := core.NewCheckpointer()
	path := filepath.Join(dir, j.id+".ckpt")

	m.writeCheckpoint(j, cp, path)
	d := m.Durability()
	if d.CheckpointFailures != 1 || d.Degraded || d.LastError == "" {
		t.Fatalf("after one failure: %+v", d)
	}
	m.writeCheckpoint(j, cp, path)
	d = m.Durability()
	if d.CheckpointFailures != 2 || !d.Degraded || d.ConsecutiveFailures != 2 {
		t.Fatalf("after two failures (DegradeAfter=2): %+v", d)
	}
	if inj.Fired(faultinject.StorageENOSPC) != 2 {
		t.Fatalf("ENOSPC fired %d times, want 2", inj.Fired(faultinject.StorageENOSPC))
	}

	// Degraded with the next probe an hour away: writes are suppressed
	// entirely — the failure counter must not move.
	m.writeCheckpoint(j, cp, path)
	if d := m.Durability(); d.CheckpointFailures != 2 {
		t.Fatalf("degraded mode still hammering the disk: %+v", d)
	}
}

// TestDurabilityRearmsAfterProbe: a degraded manager retries one write
// per DurabilityProbe, and a success re-arms full durability.
func TestDurabilityRearmsAfterProbe(t *testing.T) {
	dir := t.TempDir()
	fs := newFlakyFS()
	m := NewManager(Config{
		CheckpointDir: dir, FS: fs,
		DegradeAfter: 1, DurabilityProbe: time.Millisecond,
		Logf: t.Logf,
	})
	defer drain(t, m)

	j := newJob("000000000000000b", 0xb, reqFor(smallDB(1), 2))
	cp := core.NewCheckpointer()
	path := filepath.Join(dir, j.id+".ckpt")

	fs.fail.Store(true)
	m.writeCheckpoint(j, cp, path)
	if d := m.Durability(); !d.Degraded {
		t.Fatalf("DegradeAfter=1 must degrade on the first failure: %+v", d)
	}

	// The disk recovers; the next probe write must re-arm durability.
	fs.fail.Store(false)
	time.Sleep(5 * time.Millisecond)
	m.writeCheckpoint(j, cp, path)
	if d := m.Durability(); d.Degraded || d.ConsecutiveFailures != 0 {
		t.Fatalf("probe success must re-arm durability: %+v", d)
	}
	if _, err := checkpoint.ReadFile(path); err != nil {
		t.Fatalf("the probe write must have produced a valid checkpoint: %v", err)
	}
}

// TestCorruptCheckpointQuarantinedNotCrash: a job whose prior checkpoint
// no longer decodes must quarantine the file, mine fresh to Done, and
// leave the evidence at <id>.ckpt.corrupt.
func TestCorruptCheckpointQuarantinedNotCrash(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{CheckpointDir: dir, Logf: t.Logf})
	defer drain(t, m)

	// Plant the corrupt checkpoint after the manager's startup scrub, so
	// it is the resume path — not the scrubber — that must cope.
	req := reqFor(smallDB(3), 2).normalize()
	id := fmt.Sprintf("%016x", req.fingerprint())
	path := filepath.Join(dir, id+".ckpt")
	if err := os.WriteFile(path, []byte("DISCCKPT v1 crc32=00000000 bytes=9999\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st.State != StateDone {
		t.Fatalf("job over a corrupt checkpoint = %+v, want done", st)
	}
	if _, err := os.Stat(path + checkpoint.QuarantineSuffix); err != nil {
		t.Fatalf("quarantine evidence missing: %v", err)
	}
	if d := m.Durability(); d.Degraded {
		t.Fatalf("a corrupt checkpoint is not a write failure: %+v", d)
	}
}

// TestStartupGCReclaimsOrphans is the regression test for reportOrphans
// being log-only: checkpoints past StorageRetention, stale .tmp staging
// files and aged quarantine evidence are now reclaimed at startup, with
// the reclaimed files and bytes counted.
func TestStartupGCReclaimsOrphans(t *testing.T) {
	dir := t.TempDir()
	old := time.Now().Add(-48 * time.Hour)
	orphan := filepath.Join(dir, "00000000000000aa.ckpt")
	if _, err := (&checkpoint.File{Algo: "disc-all", Fingerprint: 0xaa, MinSup: 2}).WriteFile(orphan); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "00000000000000bb.ckpt.tmp")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	evidence := filepath.Join(dir, "00000000000000cc.ckpt.corrupt")
	if err := os.WriteFile(evidence, []byte("old evidence"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{orphan, stale, evidence} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}

	m := NewManager(Config{CheckpointDir: dir, StorageRetention: 24 * time.Hour, Logf: t.Logf})
	defer drain(t, m)

	for _, p := range []string{orphan, stale, evidence} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s survived startup GC (stat err: %v)", filepath.Base(p), err)
		}
	}
	files := m.Registry().Counter("disc_storage_reclaimed_files_total",
		"Durable-state files reclaimed by retention GC, by kind.",
		obs.Label{Key: "kind", Value: checkpoint.KindCheckpoint}).Value()
	if files != 1 {
		t.Fatalf("reclaimed checkpoint files counter = %d, want 1", files)
	}
	bytes := m.Registry().Counter("disc_storage_reclaimed_bytes_total",
		"Bytes reclaimed by retention GC, by kind.",
		obs.Label{Key: "kind", Value: checkpoint.KindCheckpoint}).Value()
	if bytes == 0 {
		t.Fatal("reclaimed bytes counter never moved")
	}
}

// TestStartupScrubQuarantinesBitRot: a checkpoint that rotted while the
// process was down is quarantined by the startup scrub, before any
// resume could trip over it.
func TestStartupScrubQuarantinesBitRot(t *testing.T) {
	dir := t.TempDir()
	rotted := filepath.Join(dir, "00000000000000dd.ckpt")
	if _, err := (&checkpoint.File{Algo: "disc-all", Fingerprint: 0xdd, MinSup: 2}).WriteFile(rotted); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(rotted)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x04
	if err := os.WriteFile(rotted, b, 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewManager(Config{CheckpointDir: dir, Logf: t.Logf})
	defer drain(t, m)

	if _, err := os.Stat(rotted + checkpoint.QuarantineSuffix); err != nil {
		t.Fatalf("startup scrub did not quarantine the rotted checkpoint: %v", err)
	}
	n := m.Registry().Counter("disc_storage_quarantined_total",
		"Durable-state files quarantined after failing CRC or decode verification, by kind.",
		obs.Label{Key: "kind", Value: checkpoint.KindCheckpoint}).Value()
	if n != 1 {
		t.Fatalf("quarantined counter = %d, want 1", n)
	}
}

// TestPeriodicStorageGC: the GC ticker keeps sweeping while the manager
// runs, and Drain stops the loop cleanly.
func TestPeriodicStorageGC(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{
		CheckpointDir: dir, StorageRetention: time.Millisecond,
		StorageGCInterval: 5 * time.Millisecond, Logf: t.Logf,
	})
	defer drain(t, m)

	// Planted after startup: only the periodic loop can reclaim it.
	late := filepath.Join(dir, "00000000000000ee.ckpt.tmp")
	if err := os.WriteFile(late, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(late); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic GC never reclaimed the stale .tmp file")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
