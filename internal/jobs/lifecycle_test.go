package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/mining"
)

// TestConcurrentLifecycle hammers one manager from many goroutines —
// submitting, polling and canceling the same and distinct fingerprints
// — and asserts the two service invariants under -race:
//
//   - no duplicate execution: an identical job submitted N times mines
//     at most once;
//   - no lost cancellation: every job a Cancel landed on before release
//     terminates canceled, never done.
//
// The mining function is stubbed with a gate so every job is still
// in-flight (queued or blocked running) when the cancellations land,
// making the expected terminal states deterministic.
func TestConcurrentLifecycle(t *testing.T) {
	const (
		distinct   = 8 // distinct fingerprints
		submitters = 8 // concurrent submitters per fingerprint
	)
	release := make(chan struct{})
	m := NewManager(Config{Workers: 4, QueueDepth: distinct * submitters, CacheJobs: 2 * distinct})
	m.mine = func(ctx context.Context, j *Job, cp *core.Checkpointer) (*mining.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return mining.NewResult(), nil
		}
	}

	// Phase 1: everyone submits concurrently; identical requests must
	// collapse onto one shared job.
	jobsByKey := make([][]*Job, distinct)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for k := 0; k < distinct; k++ {
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				j, err := m.Submit(reqFor(smallDB(k+1), 2))
				if err != nil {
					t.Errorf("submit %d: %v", k, err)
					return
				}
				// Poll while in flight: must never observe an invalid state.
				switch st := j.Status(); st.State {
				case StateQueued, StateRunning, StateDone, StateCanceled:
				default:
					t.Errorf("job %s in unexpected state %q", j.ID(), st.State)
				}
				mu.Lock()
				jobsByKey[k] = append(jobsByKey[k], j)
				mu.Unlock()
			}(k)
		}
	}
	wg.Wait()
	for k, js := range jobsByKey {
		if len(js) != submitters {
			t.Fatalf("fingerprint %d: %d submissions survived, want %d", k, len(js), submitters)
		}
		for _, j := range js[1:] {
			if j != js[0] {
				t.Fatalf("fingerprint %d: identical submissions returned distinct jobs", k)
			}
		}
	}

	// Phase 2: cancel half the fingerprints from many goroutines at once
	// (every cancel is concurrent with the workers dequeuing).
	canceled := map[string]bool{}
	for k := 0; k < distinct; k += 2 {
		canceled[jobsByKey[k][0].ID()] = true
		for s := 0; s < 4; s++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				if _, err := m.Cancel(id); err != nil {
					t.Errorf("cancel %s: %v", id, err)
				}
			}(jobsByKey[k][0].ID())
		}
	}
	wg.Wait()

	// Phase 3: release the gate and wait for every job to terminate.
	close(release)
	for _, js := range jobsByKey {
		waitTerminal(t, js[0])
	}

	for k, js := range jobsByKey {
		j := js[0]
		st := j.Status()
		if canceled[j.ID()] {
			if st.State != StateCanceled {
				t.Errorf("fingerprint %d: cancellation lost, state = %s", k, st.State)
			}
		} else if st.State != StateDone {
			t.Errorf("fingerprint %d: state = %s (err=%v), want done", k, st.State, st.Err)
		}
		if n := m.ExecCount(j.ID()); n > 1 {
			t.Errorf("fingerprint %d executed %d times, want at most 1", k, n)
		}
		if st.State == StateDone && m.ExecCount(j.ID()) != 1 {
			t.Errorf("fingerprint %d done without exactly one execution", k)
		}
	}

	met := m.Metrics()
	if met.Submitted != distinct {
		t.Errorf("Submitted = %d, want %d (one per fingerprint)", met.Submitted, distinct)
	}
	if met.Deduped != distinct*(submitters-1) {
		t.Errorf("Deduped = %d, want %d", met.Deduped, distinct*(submitters-1))
	}
	if met.Done+met.Canceled != distinct {
		t.Errorf("Done+Canceled = %d+%d, want %d", met.Done, met.Canceled, distinct)
	}
	drain(t, m)
}

// TestConcurrentSubmitAfterTerminal re-admits terminal (failed/canceled)
// fingerprints from many goroutines: exactly one fresh incarnation per
// re-admission wave may run, and the job map never hands out a stale
// pointer for a re-admitted id.
func TestConcurrentSubmitAfterTerminal(t *testing.T) {
	m := NewManager(Config{Workers: 2, QueueDepth: 8})
	defer drain(t, m)

	req := reqFor(smallDB(1), 2)
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.State() != StateCanceled {
		t.Fatalf("seed job state = %s, want canceled", j.State())
	}

	// Concurrent resubmission of the canceled fingerprint: all callers
	// must land on the same fresh incarnation.
	var wg sync.WaitGroup
	fresh := make([]*Job, 8)
	for i := range fresh {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nj, err := m.Submit(req)
			if err != nil && !errors.Is(err, ErrQueueFull) {
				t.Errorf("resubmit: %v", err)
				return
			}
			fresh[i] = nj
		}(i)
	}
	wg.Wait()
	var incarnation *Job
	for _, nj := range fresh {
		if nj == nil {
			continue
		}
		if nj == j {
			t.Fatal("resubmission returned the canceled incarnation")
		}
		if incarnation == nil {
			incarnation = nj
		} else if nj != incarnation {
			t.Fatal("concurrent resubmissions created distinct incarnations")
		}
	}
	if incarnation == nil {
		t.Fatal("no resubmission was admitted")
	}
	if st := waitTerminal(t, incarnation); st.State != StateDone {
		t.Fatalf("re-admitted job = %+v, want done", st)
	}
	if n := m.ExecCount(incarnation.ID()); n != 1 {
		t.Fatalf("re-admitted fingerprint executed %d times, want 1", n)
	}
	// Polling by id reaches the fresh incarnation.
	got, err := m.Get(incarnation.ID())
	if err != nil || got != incarnation {
		t.Fatalf("Get after re-admission = (%v, %v)", got, err)
	}
}

// TestCancelRunningJobCheckpointsProgress cancels a genuinely running
// mining job and verifies it ends canceled with the context error, fast.
func TestCancelRunningJobCheckpointsProgress(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer drain(t, m)
	started := make(chan struct{})
	m.mine = func(ctx context.Context, j *Job, cp *core.Checkpointer) (*mining.Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	j, err := m.Submit(reqFor(smallDB(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateCanceled || !errors.Is(st.Err, context.Canceled) {
		t.Fatalf("status = %+v, want canceled with context.Canceled", st)
	}
}
