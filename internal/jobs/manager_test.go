package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

// reqFor is the canonical test request: DISC-all with the paper's
// options over db.
func reqFor(db mining.Database, minSup int) Request {
	return Request{
		Algo:   "disc-all",
		MinSup: minSup,
		Opts:   core.Options{BiLevel: true, Levels: 2, Workers: 2},
		DB:     db,
	}
}

// smallDB returns a tiny database whose content varies with i, so tests
// can mint distinct job fingerprints on demand.
func smallDB(i int) mining.Database {
	a := seq.MustParseCustomerSeq(1, "(1 2)(3)")
	b := seq.MustParseCustomerSeq(2, "(2)(3)(4)")
	c := seq.MustParseCustomerSeq(3, seqBody(i))
	return mining.Database{a, b, c}
}

func seqBody(i int) string {
	var b strings.Builder
	b.WriteString("(1)")
	for ; i > 0; i-- {
		b.WriteString("(2 3)")
	}
	return b.String()
}

func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never reached a terminal state (%s)", j.ID(), j.State())
	}
	return j.Status()
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestSubmitMinesAndServesFromCache(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer drain(t, m)

	req := reqFor(testutil.Table1(), 2)
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone || st.Patterns == 0 {
		t.Fatalf("status = %+v", st)
	}

	// The reference engine agrees byte-for-byte.
	ref, err := (&core.Miner{Opts: core.Options{BiLevel: true, Levels: 2}}).Mine(req.DB, req.MinSup)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := j.Result()
	if !ok {
		t.Fatal("done job has no result")
	}
	var got, want strings.Builder
	if err := WriteResult(&got, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteResult(&want, ref); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("service result diverges from engine:\n%s", ref.Diff(res))
	}

	// An identical resubmission is a cache hit on the same job — no
	// second execution.
	j2, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j {
		t.Fatal("identical resubmission returned a different job")
	}
	if n := m.ExecCount(j.ID()); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
	met := m.Metrics()
	if met.CacheHits != 1 || met.Done != 1 || met.Submitted != 1 {
		t.Fatalf("metrics = %+v", met)
	}
}

func TestUnknownAlgorithmRejectedAtAdmission(t *testing.T) {
	m := NewManager(Config{})
	defer drain(t, m)
	if _, err := m.Submit(Request{Algo: "no-such-algo", MinSup: 1, DB: testutil.Table1()}); err == nil {
		t.Fatal("unknown algorithm admitted")
	}
	if met := m.Metrics(); met.Submitted != 0 {
		t.Fatalf("rejected submission counted as admitted: %+v", met)
	}
}

func TestQueueFullShedsLoad(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	m.mine = func(ctx context.Context, j *Job, cp *core.Checkpointer) (*mining.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return mining.NewResult(), nil
		}
	}

	// First job occupies the worker, second the single queue slot.
	j1, err := m.Submit(reqFor(smallDB(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked up j1, so the queue slot is truly free.
	for i := 0; j1.State() != StateRunning; i++ {
		if i > 5000 {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(reqFor(smallDB(2), 2)); err != nil {
		t.Fatal(err)
	}
	// The third distinct job is shed.
	if _, err := m.Submit(reqFor(smallDB(3), 2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if m.RetryAfter() <= 0 {
		t.Fatal("no Retry-After hint configured")
	}
	// A duplicate of a queued/running job is NOT shed: deduplication
	// admits it for free.
	if _, err := m.Submit(reqFor(smallDB(1), 2)); err != nil {
		t.Fatalf("duplicate of running job shed: %v", err)
	}
	met := m.Metrics()
	if met.Shed != 1 || met.Deduped != 1 {
		t.Fatalf("metrics = %+v", met)
	}
	close(release)
	drain(t, m)
}

func TestDrainStopsAdmittingAndFinishesBacklog(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	j1, err := m.Submit(reqFor(smallDB(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(reqFor(smallDB(2), 2))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, m)
	if _, err := m.Submit(reqFor(smallDB(3), 2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during/after drain = %v, want ErrDraining", err)
	}
	// Both the running and the queued job finished, not abandoned.
	if st := j1.Status(); st.State != StateDone {
		t.Fatalf("j1 = %+v", st)
	}
	if st := j2.Status(); st.State != StateDone {
		t.Fatalf("j2 = %+v", st)
	}
}

func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	m.mine = func(ctx context.Context, j *Job, cp *core.Checkpointer) (*mining.Result, error) {
		<-ctx.Done() // only a forced drain releases this job
		return nil, ctx.Err()
	}
	j, err := m.Submit(reqFor(smallDB(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain = %v, want DeadlineExceeded", err)
	}
	if st := waitTerminal(t, j); st.State != StateCanceled {
		t.Fatalf("in-flight job after forced drain = %+v, want canceled", st)
	}
}

func TestJobDeadlineFailsTyped(t *testing.T) {
	m := NewManager(Config{Workers: 1, JobTimeout: 20 * time.Millisecond})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Drain(ctx)
	}()
	m.mine = func(ctx context.Context, j *Job, cp *core.Checkpointer) (*mining.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	j, err := m.Submit(reqFor(smallDB(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateFailed || !errors.Is(st.Err, context.DeadlineExceeded) {
		t.Fatalf("status = %+v, want failed with DeadlineExceeded", st)
	}
}

func TestBudgetBreachFailsTyped(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxPatterns: 1})
	defer drain(t, m)
	j, err := m.Submit(reqFor(testutil.Table1(), 1)) // δ=1 floods patterns
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateFailed || !errors.Is(st.Err, mining.ErrBudgetExceeded) {
		t.Fatalf("status = %+v, want failed with ErrBudgetExceeded", st)
	}
	var be *mining.BudgetError
	if !errors.As(st.Err, &be) || be.Resource != "patterns" {
		t.Fatalf("err = %v, want *BudgetError{patterns}", st.Err)
	}
}

func TestInjectedPanicContainedProcessKeepsServing(t *testing.T) {
	inj := faultinject.New(1).Arm(faultinject.WorkerPanic, faultinject.Spec{AfterN: 1})
	m := NewManager(Config{Workers: 1, Faults: inj})
	defer drain(t, m)

	j, err := m.Submit(reqFor(smallDB(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateFailed || !errors.Is(st.Err, mining.ErrInternalInvariant) {
		t.Fatalf("status = %+v, want failed with ErrInternalInvariant", st)
	}
	var ie *mining.InvariantError
	if !errors.As(st.Err, &ie) {
		t.Fatalf("err %v does not expose *InvariantError", st.Err)
	}

	// The panic was contained to its job: the next job succeeds.
	j2, err := m.Submit(reqFor(smallDB(2), 2))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j2); st.State != StateDone {
		t.Fatalf("follow-up job = %+v, want done", st)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	m := NewManager(Config{})
	defer drain(t, m)
	if _, err := m.Cancel("deadbeefdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := m.Get("deadbeefdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestCacheEviction(t *testing.T) {
	m := NewManager(Config{Workers: 2, CacheJobs: 2})
	var ids []string
	for i := 1; i <= 4; i++ {
		j, err := m.Submit(reqFor(smallDB(i), 2))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		ids = append(ids, j.ID())
	}
	drain(t, m)
	// Only the two newest terminal jobs remain addressable.
	for _, id := range ids[:2] {
		if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("old job %s not evicted (err=%v)", id, err)
		}
	}
	for _, id := range ids[2:] {
		if _, err := m.Get(id); err != nil {
			t.Errorf("recent job %s evicted early: %v", id, err)
		}
	}
}

// TestOrphanedCheckpointsReportedAtStartup: a manager starting over a
// CheckpointDir holding checkpoints from a previous process must say so
// — interrupted work silently waiting on disk is how resumable jobs get
// forgotten.
func TestOrphanedCheckpointsReportedAtStartup(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef01234567.ckpt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	m := NewManager(Config{CheckpointDir: dir, Logf: func(f string, a ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(f, a...))
		mu.Unlock()
	}})
	defer drain(t, m)
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, l := range lines {
		if strings.Contains(l, "deadbeef01234567") {
			found = true
		}
	}
	if !found {
		t.Fatalf("startup log never mentioned the orphaned checkpoint: %q", lines)
	}
}
