package jobs

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/testutil"
)

// resumeDB is the same shape the engine's own checkpoint tests use:
// skewed item frequencies give a mix of deep and shallow first-level
// partitions, so injected cancellations land at interesting points.
func resumeDB() mining.Database {
	return testutil.SkewedRandomDB(rand.New(rand.NewSource(92)), 90, 12, 6, 4)
}

func render(t *testing.T, res *mining.Result) string {
	t.Helper()
	var b strings.Builder
	if err := WriteResult(&b, res); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestKillRestartResubmitByteIdentical is the service acceptance
// criterion: a job interrupted mid-run is resubmitted to a FRESH manager
// over the same checkpoint directory. The new manager has no record of
// the job — only the checkpoint file carries the history, exactly the
// state a kill -9 leaves behind. The resumed result must render
// byte-identically to an uninterrupted run, and at least one kill point
// must demonstrably restore partitions rather than re-mine from scratch.
func TestKillRestartResubmitByteIdentical(t *testing.T) {
	db := resumeDB()
	const minSup = 2
	req := reqFor(db, minSup)

	// Reference: a straight engine run.
	ref, err := (&core.Miner{Opts: core.Options{BiLevel: true, Levels: 2, Workers: 2}}).Mine(db, minSup)
	if err != nil {
		t.Fatal(err)
	}
	want := render(t, ref)
	if ref.Len() == 0 {
		t.Fatal("degenerate reference: no patterns mined")
	}

	totalRestored := 0
	// Kill points span the run's life: 1 cancels before any first-level
	// partition completes (the checkpoint is empty but the restart must
	// still converge), 50 and 100 leave a genuine partial checkpoint,
	// 150 may race the natural end of the run (~200 partition entries).
	for _, n := range []int{1, 50, 100, 150} {
		dir := t.TempDir()

		// "Process 1": the job is cut down at the n-th partition boundary.
		inj := faultinject.New(int64(n)).
			Arm(faultinject.CtxCancel, faultinject.Spec{AfterN: n})
		m1 := NewManager(Config{Workers: 1, CheckpointDir: dir, Faults: inj})
		j1, err := m1.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, j1)
		drain(t, m1)
		if inj.Fired(faultinject.CtxCancel) == 0 {
			// The run outpaced the injector and finished — valid, but no
			// restart to exercise at this kill point.
			if st.State != StateDone {
				t.Fatalf("n=%d: uninterrupted job = %+v, want done", n, st)
			}
			continue
		}
		if st.State != StateCanceled || !errors.Is(st.Err, context.Canceled) {
			t.Fatalf("n=%d: interrupted job = %+v, want canceled", n, st)
		}
		ckpt := filepath.Join(dir, j1.ID()+".ckpt")
		f, err := checkpoint.ReadFile(ckpt)
		if err != nil {
			t.Fatalf("n=%d: interrupted job left no readable checkpoint: %v", n, err)
		}

		// "Process 2": a fresh manager, same directory, identical request.
		m2 := NewManager(Config{Workers: 1, CheckpointDir: dir})
		j2, err := m2.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		st2 := waitTerminal(t, j2)
		if st2.State != StateDone {
			t.Fatalf("n=%d: resumed job = %+v, want done", n, st2)
		}
		if st2.Resumed != len(f.Partitions) {
			t.Errorf("n=%d: restored %d partitions, checkpoint held %d", n, st2.Resumed, len(f.Partitions))
		}
		totalRestored += st2.Resumed
		if j2.ID() != j1.ID() {
			t.Fatalf("n=%d: identical request changed identity across restart: %s vs %s", n, j1.ID(), j2.ID())
		}
		res, ok := j2.Result()
		if !ok {
			t.Fatalf("n=%d: done job has no result", n)
		}
		if got := render(t, res); got != want {
			t.Errorf("n=%d: resumed result diverges from straight run:\n%s", n, ref.Diff(res))
		}
		// Success retires the checkpoint.
		if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("n=%d: completed job left its checkpoint behind (err=%v)", n, err)
		}
		drain(t, m2)
	}
	if totalRestored == 0 {
		t.Error("no kill point restored any partitions: resume path never exercised")
	}
}

// TestResubmitSameManagerResumes covers in-process re-admission: the
// first incarnation is interrupted, the resubmission (same manager)
// resumes from its checkpoint and completes byte-identically.
func TestResubmitSameManagerResumes(t *testing.T) {
	db := resumeDB()
	const minSup = 2
	req := reqFor(db, minSup)

	ref, err := (&core.Miner{Opts: core.Options{BiLevel: true, Levels: 2, Workers: 2}}).Mine(db, minSup)
	if err != nil {
		t.Fatal(err)
	}
	want := render(t, ref)

	dir := t.TempDir()
	inj := faultinject.New(60).Arm(faultinject.CtxCancel, faultinject.Spec{AfterN: 60})
	m := NewManager(Config{Workers: 1, CheckpointDir: dir, Faults: inj})
	defer drain(t, m)

	j1, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j1); st.State != StateCanceled {
		t.Fatalf("interrupted job = %+v, want canceled", st)
	}

	// The injector is one-shot (AfterN already consumed), so the
	// resubmission runs to completion — seeded from the checkpoint.
	j2, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j2 == j1 {
		t.Fatal("terminal job was not re-admitted as a fresh incarnation")
	}
	st2 := waitTerminal(t, j2)
	if st2.State != StateDone || st2.Resumed == 0 {
		t.Fatalf("resubmitted job = %+v, want done with restored partitions", st2)
	}
	res, _ := j2.Result()
	if got := render(t, res); got != want {
		t.Errorf("resumed result diverges:\n%s", ref.Diff(res))
	}
	if m.Metrics().Resumed != 1 {
		t.Errorf("Resumed metric = %d, want 1 (checkpoint not consulted)", m.Metrics().Resumed)
	}
}

// TestPeriodicSnapshotsSurviveHardKill simulates the kill -9 window: the
// job hangs after making progress, never reaching the exit-path
// checkpoint write, so only the periodic snapshot ticker persists its
// work. The snapshot bytes captured BEFORE teardown are restored over
// the checkpoint file (discarding anything the teardown path may have
// written), and a fresh manager must resume from them.
func TestPeriodicSnapshotsSurviveHardKill(t *testing.T) {
	db := resumeDB()
	const minSup = 2
	req := reqFor(db, minSup)
	dir := t.TempDir()

	m1 := NewManager(Config{
		Workers:            1,
		CheckpointDir:      dir,
		CheckpointInterval: 5 * time.Millisecond,
	})
	// Mine for real into the job's checkpointer, then hang forever —
	// only the periodic snapshot goroutine can persist the progress.
	m1.mine = func(ctx context.Context, j *Job, cp *core.Checkpointer) (*mining.Result, error) {
		opts := j.req.Opts
		opts.Checkpoint = cp
		if _, err := (&core.Miner{Opts: opts}).MineContext(ctx, j.req.DB, j.req.MinSup); err != nil {
			return nil, err
		}
		<-ctx.Done() // "hang" until the process is killed
		return nil, ctx.Err()
	}
	j1, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, j1.ID()+".ckpt")
	// Wait for a periodic snapshot with content to land on disk, and
	// capture its bytes: this is the durable state at "kill time".
	var snapshot []byte
	deadline := time.Now().Add(10 * time.Second)
	for {
		if f, err := checkpoint.ReadFile(ckpt); err == nil && len(f.Partitions) > 0 {
			if snapshot, err = os.ReadFile(ckpt); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no periodic snapshot appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Tear the manager down forcibly and reinstate the pre-kill bytes:
	// whatever the teardown path wrote afterwards did not survive the
	// simulated kill.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_ = m1.Drain(ctx)
	if err := os.WriteFile(ckpt, snapshot, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(Config{Workers: 1, CheckpointDir: dir})
	defer drain(t, m2)
	j2, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j2)
	if st.State != StateDone {
		t.Fatalf("post-kill job = %+v, want done", st)
	}
	if st.Resumed == 0 {
		t.Fatal("post-kill job restored no partitions: periodic snapshot ignored")
	}
	ref, err := (&core.Miner{Opts: core.Options{BiLevel: true, Levels: 2, Workers: 2}}).Mine(db, minSup)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := j2.Result()
	if got, want := render(t, res), render(t, ref); got != want {
		t.Errorf("post-kill result diverges:\n%s", ref.Diff(res))
	}
}
