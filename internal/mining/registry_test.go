package mining

import (
	"strings"
	"testing"
)

type registryFakeMiner struct{ Miner }

func (registryFakeMiner) Name() string { return "fake" }

func TestRegistry(t *testing.T) {
	Register("registry-test-fake", func() Miner { return registryFakeMiner{} })

	found := false
	for _, name := range RegisteredNames() {
		if name == "registry-test-fake" {
			found = true
		}
	}
	if !found {
		t.Fatalf("RegisteredNames() = %v, missing registry-test-fake", RegisteredNames())
	}

	m, err := NewRegistered("registry-test-fake")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "fake" {
		t.Errorf("Name() = %q", m.Name())
	}

	if _, err := NewRegistered("no-such-miner"); err == nil || !strings.Contains(err.Error(), "no-such-miner") {
		t.Errorf("NewRegistered on unknown name: %v", err)
	}

	for _, bad := range []func(){
		func() { Register("", func() Miner { return registryFakeMiner{} }) },
		func() { Register("x", nil) },
		func() { Register("registry-test-fake", func() Miner { return registryFakeMiner{} }) }, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Register call must panic")
				}
			}()
			bad()
		}()
	}
}
