// Package mining defines the types shared by every sequence miner in this
// repository: databases, result sets (frequent sequences with exact support
// counts), the Miner interface, support-threshold helpers and the
// non-reduction-rate (NRR) analytics of §4.2 of Chiu, Wu & Chen (ICDE
// 2004).
package mining

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/disc-mining/disc/internal/seq"
)

// Database is a set of customer sequences.
type Database []*seq.CustomerSeq

// MaxItem returns the largest item id occurring in the database.
func (db Database) MaxItem() seq.Item {
	var m seq.Item
	for _, cs := range db {
		for _, it := range cs.Items() {
			if it > m {
				m = it
			}
		}
	}
	return m
}

// TotalItems returns the total number of item occurrences.
func (db Database) TotalItems() int {
	n := 0
	for _, cs := range db {
		n += cs.Len()
	}
	return n
}

// AvgTransPerCustomer returns the paper's θ: the average number of
// transactions per customer sequence.
func (db Database) AvgTransPerCustomer() float64 {
	if len(db) == 0 {
		return 0
	}
	n := 0
	for _, cs := range db {
		n += cs.NTrans()
	}
	return float64(n) / float64(len(db))
}

// AbsSupport converts a relative minimum support threshold into the paper's
// δ (an absolute minimum support count): δ = ⌈frac·n⌉, at least 1.
//
// The product frac·n is computed in floating point, so thresholds that are
// exact in decimal can land one ulp off an integer (0.01·100 =
// 1.0000000000000002): a bare Ceil would round those up one customer too
// far. Products within a relative 1e-9 of an integer are therefore treated
// as that integer before taking the ceiling; genuine fractions (off by
// more than the guard) still round up.
func AbsSupport(frac float64, n int) int {
	x := frac * float64(n)
	var d int
	if r := math.Round(x); math.Abs(x-r) <= 1e-9*math.Max(1, math.Abs(r)) {
		d = int(r)
	} else {
		d = int(math.Ceil(x))
	}
	if d < 1 {
		d = 1
	}
	return d
}

// PatternCount is one frequent sequence with its exact support count.
type PatternCount struct {
	Pattern seq.Pattern
	Support int
}

// Result is a set of frequent sequences with supports. The zero value is
// not usable; construct with NewResult.
type Result struct {
	byKey    map[string]int // pattern key -> index into patterns
	patterns []PatternCount
}

// NewResult returns an empty result set.
func NewResult() *Result {
	return &Result{byKey: map[string]int{}}
}

// Add records a frequent pattern. Adding the same pattern twice is a bug in
// the caller and panics, because every miner here computes each support
// exactly once.
func (r *Result) Add(p seq.Pattern, support int) {
	k := p.Key()
	if _, dup := r.byKey[k]; dup {
		panic(fmt.Sprintf("mining: duplicate pattern %s", p))
	}
	r.byKey[k] = len(r.patterns)
	r.patterns = append(r.patterns, PatternCount{Pattern: p, Support: support})
}

// Len returns the number of frequent patterns.
func (r *Result) Len() int { return len(r.patterns) }

// Support returns the recorded support of p, or ok=false.
func (r *Result) Support(p seq.Pattern) (int, bool) {
	i, ok := r.byKey[p.Key()]
	if !ok {
		return 0, false
	}
	return r.patterns[i].Support, true
}

// Sorted returns the patterns in ascending comparative order.
func (r *Result) Sorted() []PatternCount {
	out := append([]PatternCount(nil), r.patterns...)
	sort.Slice(out, func(i, j int) bool {
		return seq.Compare(out[i].Pattern, out[j].Pattern) < 0
	})
	return out
}

// MaxLen returns the length of the longest frequent sequence.
func (r *Result) MaxLen() int {
	m := 0
	for _, pc := range r.patterns {
		if pc.Pattern.Len() > m {
			m = pc.Pattern.Len()
		}
	}
	return m
}

// CountByLength returns a histogram of pattern counts per length k.
func (r *Result) CountByLength() map[int]int {
	h := map[int]int{}
	for _, pc := range r.patterns {
		h[pc.Pattern.Len()]++
	}
	return h
}

// Equal reports whether r and o contain exactly the same patterns with the
// same supports.
func (r *Result) Equal(o *Result) bool {
	return r.Diff(o) == ""
}

// Diff returns a human-readable description of the first few differences
// between two result sets, or "" if identical. Used by the cross-miner
// integration tests.
func (r *Result) Diff(o *Result) string {
	var b strings.Builder
	n := 0
	note := func(format string, args ...any) bool {
		n++
		if n <= 10 {
			fmt.Fprintf(&b, format+"\n", args...)
		}
		return n < 50
	}
	for _, pc := range r.patterns {
		sup, ok := o.Support(pc.Pattern)
		if !ok {
			if !note("missing in other: %s (support %d)", pc.Pattern, pc.Support) {
				break
			}
			continue
		}
		if sup != pc.Support {
			if !note("support mismatch for %s: %d vs %d", pc.Pattern, pc.Support, sup) {
				break
			}
		}
	}
	for _, pc := range o.patterns {
		if _, ok := r.Support(pc.Pattern); !ok {
			if !note("extra in other: %s (support %d)", pc.Pattern, pc.Support) {
				break
			}
		}
	}
	if n > 10 {
		fmt.Fprintf(&b, "... and %d more differences\n", n-10)
	}
	return b.String()
}

// String summarizes the result set.
func (r *Result) String() string {
	return fmt.Sprintf("%d frequent sequences (max length %d)", r.Len(), r.MaxLen())
}

// Miner is the interface implemented by every mining algorithm in this
// repository. Mine returns all sequences with support count >= minSup.
type Miner interface {
	Name() string
	Mine(db Database, minSup int) (*Result, error)
}

// NRRByLevel computes the paper's average non-reduction rate (Eq. 2) per
// partition level from a result set, using the simplification of §4.2: the
// size of the child partition of a frequent (k+1)-sequence is its support
// count. Index 0 of the returned slice is the NRR of the original database
// (children = frequent 1-sequences, parent size = dbSize); index k is the
// average NRR of the level-k partitions (parents = frequent k-sequences
// with at least one frequent (k+1)-extension). Levels without any parent
// carry NaN-free 0 and are truncated from the tail.
func NRRByLevel(r *Result, dbSize int) []float64 {
	// Group children under their k-prefix parents.
	type agg struct {
		sum float64
		n   int
	}
	parents := map[string]*agg{} // parent pattern key -> child ratio aggregate
	supports := map[string]PatternCount{}
	for _, pc := range r.patterns {
		supports[pc.Pattern.Key()] = pc
	}
	maxLen := r.MaxLen()
	levels := make([]agg, maxLen+1) // levels[k] aggregates NRR_Q over parents Q at level k
	for _, pc := range r.patterns {
		k := pc.Pattern.Len()
		if k == 1 {
			continue
		}
		parentKey := pc.Pattern.Prefix(k - 1).Key()
		a := parents[parentKey]
		if a == nil {
			a = &agg{}
			parents[parentKey] = a
		}
		parent, ok := supports[parentKey]
		if !ok {
			// The (k-1)-prefix of a frequent k-sequence is itself frequent
			// (anti-monotone); a missing parent means the result set is
			// inconsistent.
			panic(fmt.Sprintf("mining: frequent %s has non-frequent prefix", pc.Pattern))
		}
		a.sum += float64(pc.Support) / float64(parent.Support)
		a.n++
	}
	// Per-level average over parents that have children.
	for key, a := range parents {
		k := len(key) / 5 // Key encodes 5 bytes per item
		levels[k].sum += a.sum / float64(a.n)
		levels[k].n++
	}
	// Level 0: the original database.
	var l0 agg
	for _, pc := range r.patterns {
		if pc.Pattern.Len() == 1 {
			l0.sum += float64(pc.Support) / float64(dbSize)
			l0.n++
		}
	}
	out := make([]float64, 0, maxLen+1)
	if l0.n > 0 {
		out = append(out, l0.sum/float64(l0.n))
	} else {
		out = append(out, 0)
	}
	for k := 1; k <= maxLen; k++ {
		if levels[k].n == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, levels[k].sum/float64(levels[k].n))
	}
	// Trim trailing zero levels (no parents with children there).
	for len(out) > 1 && out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	return out
}
