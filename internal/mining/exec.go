// Execution layer: the options, progress hooks and context-aware miner
// interface that every algorithm in this repository runs through. The
// DISC-all engine implements ContextMiner natively (cooperative
// cancellation plus a bounded partition worker pool); the serial baseline
// miners are adapted with AsContextMiner, which provides cancellation at
// the granularity of the whole run.
package mining

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
)

// StagePartitions is the ProgressEvent stage reporting first-level
// partition scheduling and completion of a partitioned DISC-all run.
const StagePartitions = "partitions"

// ProgressEvent is one execution progress report. An event with Done == 0
// announces a stage with Total units of work; subsequent events carry the
// number of completed units.
type ProgressEvent struct {
	// Stage identifies the unit of work (e.g. StagePartitions).
	Stage string
	// Done and Total count completed and scheduled units of work.
	Done, Total int
	// Workers is the size of the worker pool executing the stage (1 for a
	// serial run).
	Workers int
}

// ProgressFunc receives progress events during a mining run. Engines
// serialize their callbacks: a ProgressFunc never runs concurrently with
// itself, but it may be invoked from a goroutine other than the caller of
// Mine, so it must not touch the caller's state without synchronization.
type ProgressFunc func(ProgressEvent)

// ExecOptions configures how a mining run executes, independently of the
// algorithm: how many workers may run concurrently, where progress is
// reported, and the soft resource budgets of the run. The zero value
// selects a serial-equivalent default (GOMAXPROCS workers, no progress
// reporting, no budgets).
type ExecOptions struct {
	// Workers bounds the number of concurrently running workers. 0 selects
	// runtime.GOMAXPROCS(0); 1 forces a serial run. Engines guarantee that
	// the mined result is identical at every setting.
	Workers int
	// Progress, when non-nil, receives execution progress events.
	Progress ProgressFunc
	// MaxPatterns is a soft budget on the number of frequent patterns a
	// run may produce; 0 means unlimited. When a run crosses the
	// degradation threshold (BudgetDegradeFraction of the budget) the
	// engine degrades — it stops multi-level partitioning below the first
	// level and shrinks the worker pool, both result-preserving — and on
	// reaching the budget itself it stops with a *BudgetError (matching
	// ErrBudgetExceeded). Statistics of the work completed before the
	// stop remain available through LastStats.
	MaxPatterns int
	// MaxMemBytes is a soft budget on the process heap (runtime
	// HeapAlloc), sampled at partition boundaries; 0 means unlimited. The
	// degradation ladder is the same as MaxPatterns'. Because heap size
	// depends on the collector, breaching is not deterministic — set it
	// as an operational guard, not as a correctness knob.
	MaxMemBytes int64
}

// EffectiveWorkers resolves the Workers field: values below 1 select
// GOMAXPROCS.
func (o ExecOptions) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ContextMiner is a Miner whose runs can be cancelled through a
// context.Context (cancellation or deadline). MineContext returns
// ctx.Err() when the run was cut short; the partial result is discarded.
type ContextMiner interface {
	Miner
	MineContext(ctx context.Context, db Database, minSup int) (*Result, error)
}

// AsContextMiner returns m itself when it already implements ContextMiner
// (the DISC-all family does, with cooperative per-partition cancellation),
// and otherwise wraps it so that MineContext works uniformly across all
// eight algorithms.
//
// The wrapper runs the serial Mine on its own goroutine and abandons it on
// cancellation: MineContext returns ctx.Err() immediately, while the
// goroutine finishes its (discarded) computation in the background and
// then exits. This trades promptness for the inability to interrupt the
// underlying serial algorithm mid-flight — acceptable for the baselines,
// whose runs the repository only uses for verification and benchmarks.
func AsContextMiner(m Miner) ContextMiner {
	if cm, ok := m.(ContextMiner); ok {
		return cm
	}
	return &contextAdapter{Miner: m}
}

// contextAdapter adapts a serial Miner to ContextMiner.
type contextAdapter struct {
	Miner
}

// MineContext implements ContextMiner.
func (a *contextAdapter) MineContext(ctx context.Context, db Database, minSup int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1) // buffered: the goroutine never blocks, so it exits even after abandonment
	go func() {
		res, err := a.Miner.Mine(db, minSup)
		ch <- outcome{res, err}
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case o := <-ch:
		return o.res, o.err
	}
}

// BudgetDegradeFraction is the point of the resource budgets at which an
// engine degrades before failing: at 80% of MaxPatterns or MaxMemBytes
// it switches to its cheapest execution shape (single-level
// partitioning, inline workers), and only at 100% does it stop with a
// *BudgetError. Degradation never changes the mined result set — only
// how (and how fast) it is computed.
const BudgetDegradeFraction = 0.8

// ErrInternalInvariant is matched (via errors.Is) by the error a mining
// run returns when an internal invariant violation — a bug — was caught
// by the engine's panic containment instead of crashing the process.
var ErrInternalInvariant = errors.New("mining: internal invariant violated")

// InvariantError is the concrete contained-panic error: the partition
// the panic fired in, the recovered value and the goroutine stack. It
// matches ErrInternalInvariant.
type InvariantError struct {
	// Partition identifies where the panic fired (a partition key, or
	// "<root>" for the top-level walk).
	Partition string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("mining: internal invariant violated in partition %s: %v\n%s",
		e.Partition, e.Value, e.Stack)
}

// Is matches ErrInternalInvariant.
func (e *InvariantError) Is(target error) bool { return target == ErrInternalInvariant }

// Unwrap exposes a panic value that was itself an error (e.g. an
// injected fault), so errors.As reaches it.
func (e *InvariantError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Contain runs fn, converting a panic into a returned *InvariantError so
// that a bug inside a partition worker surfaces as an error from Mine
// instead of crashing the process. Every goroutine the engine spawns
// runs under it: a panic on a worker goroutine is uncatchable by the
// caller of Mine, so this is the only boundary that can keep the
// process alive.
func Contain(partition string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &InvariantError{Partition: partition, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// ErrBudgetExceeded is matched (via errors.Is) by the error a run
// returns when it exhausts one of the ExecOptions soft budgets after
// degrading.
var ErrBudgetExceeded = errors.New("mining: resource budget exceeded")

// BudgetError reports which budget a stopped run exhausted. It matches
// ErrBudgetExceeded. Statistics of the completed work remain available
// through the miner's LastStats.
type BudgetError struct {
	Resource    string // "patterns" or "memory"
	Limit, Used int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("mining: %s budget exceeded (%d used, limit %d) after degraded execution",
		e.Resource, e.Used, e.Limit)
}

// Is matches ErrBudgetExceeded.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Merge adds every pattern of o into r, preserving o's insertion order.
// The two pattern sets must be disjoint (Add panics on duplicates); the
// parallel DISC-all scheduler merges per-partition results whose patterns
// extend distinct partition keys, so disjointness holds by construction.
func (r *Result) Merge(o *Result) {
	for _, pc := range o.patterns {
		r.Add(pc.Pattern, pc.Support)
	}
}
