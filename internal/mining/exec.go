// Execution layer: the options, progress hooks and context-aware miner
// interface that every algorithm in this repository runs through. The
// DISC-all engine implements ContextMiner natively (cooperative
// cancellation plus a bounded partition worker pool); the serial baseline
// miners are adapted with AsContextMiner, which provides cancellation at
// the granularity of the whole run.
package mining

import (
	"context"
	"runtime"
)

// StagePartitions is the ProgressEvent stage reporting first-level
// partition scheduling and completion of a partitioned DISC-all run.
const StagePartitions = "partitions"

// ProgressEvent is one execution progress report. An event with Done == 0
// announces a stage with Total units of work; subsequent events carry the
// number of completed units.
type ProgressEvent struct {
	// Stage identifies the unit of work (e.g. StagePartitions).
	Stage string
	// Done and Total count completed and scheduled units of work.
	Done, Total int
	// Workers is the size of the worker pool executing the stage (1 for a
	// serial run).
	Workers int
}

// ProgressFunc receives progress events during a mining run. Engines
// serialize their callbacks: a ProgressFunc never runs concurrently with
// itself, but it may be invoked from a goroutine other than the caller of
// Mine, so it must not touch the caller's state without synchronization.
type ProgressFunc func(ProgressEvent)

// ExecOptions configures how a mining run executes, independently of the
// algorithm: how many workers may run concurrently and where progress is
// reported. The zero value selects a serial-equivalent default
// (GOMAXPROCS workers, no progress reporting).
type ExecOptions struct {
	// Workers bounds the number of concurrently running workers. 0 selects
	// runtime.GOMAXPROCS(0); 1 forces a serial run. Engines guarantee that
	// the mined result is identical at every setting.
	Workers int
	// Progress, when non-nil, receives execution progress events.
	Progress ProgressFunc
}

// EffectiveWorkers resolves the Workers field: values below 1 select
// GOMAXPROCS.
func (o ExecOptions) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ContextMiner is a Miner whose runs can be cancelled through a
// context.Context (cancellation or deadline). MineContext returns
// ctx.Err() when the run was cut short; the partial result is discarded.
type ContextMiner interface {
	Miner
	MineContext(ctx context.Context, db Database, minSup int) (*Result, error)
}

// AsContextMiner returns m itself when it already implements ContextMiner
// (the DISC-all family does, with cooperative per-partition cancellation),
// and otherwise wraps it so that MineContext works uniformly across all
// eight algorithms.
//
// The wrapper runs the serial Mine on its own goroutine and abandons it on
// cancellation: MineContext returns ctx.Err() immediately, while the
// goroutine finishes its (discarded) computation in the background and
// then exits. This trades promptness for the inability to interrupt the
// underlying serial algorithm mid-flight — acceptable for the baselines,
// whose runs the repository only uses for verification and benchmarks.
func AsContextMiner(m Miner) ContextMiner {
	if cm, ok := m.(ContextMiner); ok {
		return cm
	}
	return &contextAdapter{Miner: m}
}

// contextAdapter adapts a serial Miner to ContextMiner.
type contextAdapter struct {
	Miner
}

// MineContext implements ContextMiner.
func (a *contextAdapter) MineContext(ctx context.Context, db Database, minSup int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1) // buffered: the goroutine never blocks, so it exits even after abandonment
	go func() {
		res, err := a.Miner.Mine(db, minSup)
		ch <- outcome{res, err}
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case o := <-ch:
		return o.res, o.err
	}
}

// Merge adds every pattern of o into r, preserving o's insertion order.
// The two pattern sets must be disjoint (Add panics on duplicates); the
// parallel DISC-all scheduler merges per-partition results whose patterns
// extend distinct partition keys, so disjointness holds by construction.
func (r *Result) Merge(o *Result) {
	for _, pc := range o.patterns {
		r.Add(pc.Pattern, pc.Support)
	}
}
