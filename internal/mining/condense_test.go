package mining

import (
	"math/rand"
	"testing"
)

// TestClosedAndMaximalHandExample: supports chosen so that <(a)> is closed
// but not maximal, <(a)(b)> and <(a, c)> are closed and maximal, and <(b)>
// and <(c)> are not even closed (a supersequence carries the same
// support).
func TestClosedAndMaximalHandExample(t *testing.T) {
	r := NewResult()
	r.Add(pat("(a)"), 5)
	r.Add(pat("(b)"), 2)    // same support as its superseq <(a)(b)>: not closed
	r.Add(pat("(a)(b)"), 2) // maximal
	r.Add(pat("(a, c)"), 3) // maximal
	r.Add(pat("(c)"), 3)    // equal support to <(a, c)>: not closed
	closed := r.Closed()
	for _, s := range []string{"(a)", "(a)(b)", "(a, c)"} {
		if _, ok := closed.Support(pat(s)); !ok {
			t.Errorf("%s should be closed", s)
		}
	}
	for _, s := range []string{"(b)", "(c)"} {
		if _, ok := closed.Support(pat(s)); ok {
			t.Errorf("%s should not be closed", s)
		}
	}
	maximal := r.Maximal()
	for _, s := range []string{"(a)(b)", "(a, c)"} {
		if _, ok := maximal.Support(pat(s)); !ok {
			t.Errorf("%s should be maximal", s)
		}
	}
	if maximal.Len() != 2 {
		t.Errorf("maximal set = %v", maximal.Sorted())
	}
}

// TestCondenseProperties: maximal ⊆ closed ⊆ all, supports preserved, and
// every pattern is covered by some maximal pattern.
func TestCondenseProperties(t *testing.T) {
	r := NewResult()
	// A synthetic but structurally consistent result set: all prefixes of
	// a few chains with non-increasing supports.
	rng := rand.New(rand.NewSource(8))
	chains := [][]string{
		{"(a)", "(a)(b)", "(a)(b)(c)"},
		{"(a)", "(a, d)", "(a, d)(e)"},
		{"(b)", "(b)(b)"},
		{"(c)"},
	}
	added := map[string]bool{}
	for _, chain := range chains {
		sup := 10 + rng.Intn(5)
		for _, s := range chain {
			if !added[s] {
				added[s] = true
				r.Add(pat(s), sup)
			}
			if sup > 2 {
				sup -= rng.Intn(3)
			}
		}
	}
	closed, maximal := r.Closed(), r.Maximal()
	if maximal.Len() > closed.Len() || closed.Len() > r.Len() {
		t.Fatalf("sizes: maximal %d, closed %d, all %d", maximal.Len(), closed.Len(), r.Len())
	}
	for _, pc := range maximal.Sorted() {
		if _, ok := closed.Support(pc.Pattern); !ok {
			t.Errorf("maximal %s missing from closed set", pc.Pattern.Letters())
		}
	}
	for _, pc := range closed.Sorted() {
		sup, ok := r.Support(pc.Pattern)
		if !ok || sup != pc.Support {
			t.Errorf("closed set changed support of %s", pc.Pattern.Letters())
		}
	}
	for _, pc := range r.Sorted() {
		covered := false
		for _, m := range maximal.Sorted() {
			if CoveredBy(pc.Pattern, m.Pattern) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("%s not covered by any maximal pattern", pc.Pattern.Letters())
		}
	}
}

func TestCoveredBy(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"(a)(b)", "(a, c)(b, d)", true},
		{"(a, b)", "(a)(b)", false},
		{"(a)(a)", "(a)", false},
		{"(a)", "(a)", true},
		{"(b)(a)", "(a)(b)", false},
	}
	for _, c := range cases {
		if got := CoveredBy(pat(c.p), pat(c.q)); got != c.want {
			t.Errorf("CoveredBy(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}
