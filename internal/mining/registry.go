// Miner registry. Each algorithm package registers a constructor for its
// miner(s) from an init function, so that callers that want "every
// available algorithm" — the public NewMiner entry point and the
// differential-correctness harness in internal/difftest — enumerate one
// authoritative list instead of maintaining parallel switch statements.
package mining

import (
	"fmt"
	"sort"
	"sync"
)

var registry = struct {
	mu        sync.RWMutex
	factories map[string]func() Miner
}{factories: map[string]func() Miner{}}

// Register records a miner constructor under the algorithm's canonical
// name. It is called from the algorithm packages' init functions; the
// factory must return a fresh miner on every call (miners may carry
// per-run state such as statistics). Registering an empty name, a nil
// factory or a duplicate name panics — all three are programming errors.
func Register(name string, factory func() Miner) {
	if name == "" || factory == nil {
		panic("mining: Register called with empty name or nil factory")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.factories[name]; dup {
		panic(fmt.Sprintf("mining: duplicate miner registration %q", name))
	}
	registry.factories[name] = factory
}

// RegisteredNames returns the names of every registered miner, sorted.
func RegisteredNames() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewRegistered constructs a fresh miner by registered name.
func NewRegistered(name string) (Miner, error) {
	registry.mu.RLock()
	factory := registry.factories[name]
	registry.mu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("mining: no registered miner %q (available: %v)", name, RegisteredNames())
	}
	return factory(), nil
}
