package mining

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestEffectiveWorkers(t *testing.T) {
	if got := (ExecOptions{}).EffectiveWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("zero value = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (ExecOptions{Workers: -3}).EffectiveWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, w := range []int{1, 2, 16} {
		if got := (ExecOptions{Workers: w}).EffectiveWorkers(); got != w {
			t.Errorf("Workers %d = %d", w, got)
		}
	}
}

// fakeMiner is a controllable serial Miner for adapter tests.
type fakeMiner struct {
	block chan struct{} // when non-nil, Mine blocks until closed
	res   *Result
	err   error
	runs  int
}

func (f *fakeMiner) Name() string { return "fake" }

func (f *fakeMiner) Mine(db Database, minSup int) (*Result, error) {
	f.runs++
	if f.block != nil {
		<-f.block
	}
	return f.res, f.err
}

func TestAsContextMinerPassThrough(t *testing.T) {
	want := NewResult()
	want.Add(pat("(a)"), 3)
	f := &fakeMiner{res: want}
	cm := AsContextMiner(f)
	if cm.Name() != "fake" {
		t.Errorf("Name = %q", cm.Name())
	}
	res, err := cm.MineContext(context.Background(), nil, 2)
	if err != nil || res != want {
		t.Fatalf("MineContext = (%v, %v), want (%v, nil)", res, err, want)
	}
	// The plain Mine path still works through the embedded Miner.
	if res, err := cm.Mine(nil, 2); err != nil || res != want {
		t.Fatalf("Mine = (%v, %v)", res, err)
	}
	if f.runs != 2 {
		t.Errorf("underlying miner ran %d times, want 2", f.runs)
	}
}

func TestAsContextMinerPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	cm := AsContextMiner(&fakeMiner{err: boom})
	if _, err := cm.MineContext(context.Background(), nil, 2); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestAsContextMinerCancellation(t *testing.T) {
	block := make(chan struct{})
	f := &fakeMiner{block: block}
	cm := AsContextMiner(f)
	defer close(block) // let the abandoned goroutine finish

	// Pre-cancelled context: the mine never starts.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := cm.MineContext(pre, nil, 2); err != context.Canceled {
		t.Fatalf("pre-cancelled err = %v", err)
	}
	if f.runs != 0 {
		t.Fatalf("pre-cancelled context still started the miner")
	}

	// Cancellation mid-run: MineContext returns promptly even though the
	// underlying Mine is stuck.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cm.MineContext(ctx, nil, 2)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("MineContext did not return after cancellation")
	}
}

func TestAsContextMinerIdempotent(t *testing.T) {
	cm := AsContextMiner(&fakeMiner{})
	if AsContextMiner(cm) != cm {
		t.Error("wrapping a ContextMiner must return it unchanged")
	}
}

func TestResultMerge(t *testing.T) {
	a, b := NewResult(), NewResult()
	a.Add(pat("(a)"), 3)
	b.Add(pat("(b)"), 2)
	b.Add(pat("(b)(c)"), 2)
	a.Merge(b)
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	if sup, ok := a.Support(pat("(b)(c)")); !ok || sup != 2 {
		t.Errorf("merged support = %d,%v", sup, ok)
	}
}

// TestContain pins the panic-containment contract: fn's error passes
// through untouched, a panic becomes an *InvariantError carrying the
// partition, value and stack, and error panic values stay unwrappable.
func TestContain(t *testing.T) {
	if err := Contain("p", func() error { return nil }); err != nil {
		t.Fatalf("clean fn: %v", err)
	}
	want := errors.New("boom")
	if err := Contain("p", func() error { return want }); err != want {
		t.Fatalf("error fn: %v, want pass-through", err)
	}
	err := Contain("<root>", func() error { panic("invariant dead") })
	if !errors.Is(err, ErrInternalInvariant) {
		t.Fatalf("panic fn: %v does not match ErrInternalInvariant", err)
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("panic fn: %T is not *InvariantError", err)
	}
	if ie.Partition != "<root>" || len(ie.Stack) == 0 {
		t.Errorf("InvariantError = %+v, missing partition or stack", ie)
	}
	cause := errors.New("typed panic")
	err = Contain("p", func() error { panic(cause) })
	if !errors.Is(err, cause) {
		t.Errorf("error panic value not unwrapped: %v", err)
	}
}

// TestBudgetError: typed budget failures match the sentinel and carry
// the breached resource.
func TestBudgetError(t *testing.T) {
	err := error(&BudgetError{Resource: "patterns", Limit: 10, Used: 11})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("BudgetError does not match ErrBudgetExceeded")
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "patterns" || be.Limit != 10 || be.Used != 11 {
		t.Fatalf("BudgetError = %+v", be)
	}
	if be.Error() == "" || !errors.Is(err, err) {
		t.Error("BudgetError must render and self-match")
	}
}
