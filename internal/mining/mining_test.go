package mining

import (
	"math"
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/seq"
)

func pat(s string) seq.Pattern { return seq.MustParsePattern(s) }

func TestAbsSupport(t *testing.T) {
	cases := []struct {
		frac float64
		n    int
		want int
	}{
		{0.0025, 10000, 25},
		{0.005, 10000, 50},
		{0.02, 10000, 200},
		{0.5, 4, 2},
		{0.26, 4, 2},  // ceil(1.04)
		{0.0, 100, 1}, // at least 1
		{0.001, 5, 1},
		// Exact products must not be bumped to the next integer even when
		// the float product lands an ulp above (0.01 × 100 is
		// 1.0000000000000002 in float64).
		{0.01, 100, 1},
		{0.25, 4, 1},
		{1.0, 7, 7},
		{1.0, 1000000, 1000000},
		{0.005, 200000000, 1000000},
		{0.1, 30, 3},
		// Genuinely fractional products still round up.
		{0.33333334, 3, 2}, // 1.00000002 is not within tolerance of 1
		{1.0 / 3, 3, 1},    // float64(1/3)·3 lands within tolerance of 1
	}
	for _, c := range cases {
		if got := AbsSupport(c.frac, c.n); got != c.want {
			t.Errorf("AbsSupport(%v, %d) = %d, want %d", c.frac, c.n, got, c.want)
		}
	}
}

func TestResultBasics(t *testing.T) {
	r := NewResult()
	r.Add(pat("(a)"), 4)
	r.Add(pat("(a)(b)"), 3)
	r.Add(pat("(a, b)"), 2)
	if r.Len() != 3 || r.MaxLen() != 2 {
		t.Fatalf("Len=%d MaxLen=%d", r.Len(), r.MaxLen())
	}
	if sup, ok := r.Support(pat("(a)(b)")); !ok || sup != 3 {
		t.Errorf("Support = %d,%v", sup, ok)
	}
	if _, ok := r.Support(pat("(b)")); ok {
		t.Error("phantom support")
	}
	h := r.CountByLength()
	if h[1] != 1 || h[2] != 2 {
		t.Errorf("CountByLength = %v", h)
	}
	s := r.Sorted()
	if !s[0].Pattern.Equal(pat("(a)")) || !s[1].Pattern.Equal(pat("(a, b)")) || !s[2].Pattern.Equal(pat("(a)(b)")) {
		t.Errorf("Sorted order wrong: %v", s)
	}
}

func TestResultAddDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add must panic")
		}
	}()
	r := NewResult()
	r.Add(pat("(a)"), 1)
	r.Add(pat("(a)"), 2)
}

func TestResultDiff(t *testing.T) {
	a, b := NewResult(), NewResult()
	a.Add(pat("(a)"), 3)
	a.Add(pat("(b)"), 2)
	b.Add(pat("(a)"), 3)
	b.Add(pat("(b)"), 5)
	b.Add(pat("(c)"), 1)
	d := a.Diff(b)
	if !strings.Contains(d, "support mismatch") || !strings.Contains(d, "extra in other") {
		t.Errorf("Diff = %q", d)
	}
	if a.Equal(b) {
		t.Error("Equal on differing results")
	}
	if !a.Equal(a) {
		t.Error("Equal on itself")
	}
	c := NewResult()
	c.Add(pat("(b)"), 2)
	c.Add(pat("(a)"), 3)
	if !a.Equal(c) {
		t.Error("insertion order must not matter")
	}
}

func TestDatabaseStats(t *testing.T) {
	db := Database{
		seq.MustParseCustomerSeq(1, "(a, b)(c)"),
		seq.MustParseCustomerSeq(2, "(d)"),
	}
	if db.MaxItem() != 4 {
		t.Errorf("MaxItem = %d", db.MaxItem())
	}
	if db.TotalItems() != 4 {
		t.Errorf("TotalItems = %d", db.TotalItems())
	}
	if got := db.AvgTransPerCustomer(); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("AvgTransPerCustomer = %v", got)
	}
	var empty Database
	if empty.AvgTransPerCustomer() != 0 {
		t.Error("empty database average should be 0")
	}
}

// TestNRRByLevel builds a small result set by hand and checks Eq. 2:
// NRR_Q = (1/N_Q) Σ size_child/size_Q, averaged per level.
func TestNRRByLevel(t *testing.T) {
	r := NewResult()
	// Level 0 children (frequent 1-sequences): supports 8 and 4 over a
	// 10-customer database -> NRR_0 = (0.8 + 0.4)/2 = 0.6.
	r.Add(pat("(a)"), 8)
	r.Add(pat("(b)"), 4)
	// Children of <(a)>: supports 4 and 2 -> NRR = (0.5+0.25)/2 = 0.375.
	// <(b)> has no children. Level 1 average = 0.375.
	r.Add(pat("(a)(a)"), 4)
	r.Add(pat("(a)(b)"), 2)
	// Child of <(a)(a)>: support 2 -> NRR = 0.5. Level 2 average = 0.5.
	r.Add(pat("(a)(a)(c)"), 2)
	got := NRRByLevel(r, 10)
	want := []float64{0.6, 0.375, 0.5}
	if len(got) != len(want) {
		t.Fatalf("NRRByLevel = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("NRRByLevel = %v, want %v", got, want)
		}
	}
}

// TestNRRPrefixParent: the parent of a frequent k-sequence under the NRR
// accounting is its (k-1)-PREFIX, which for an i-extension shares the last
// itemset.
func TestNRRPrefixParent(t *testing.T) {
	r := NewResult()
	r.Add(pat("(a)"), 6)
	r.Add(pat("(a, b)"), 3) // child of <(a)> via i-extension
	got := NRRByLevel(r, 6)
	if len(got) != 2 || math.Abs(got[1]-0.5) > 1e-9 {
		t.Fatalf("NRRByLevel = %v", got)
	}
}

func TestNRRInconsistentResultPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing prefix must panic")
		}
	}()
	r := NewResult()
	r.Add(pat("(a)(b)"), 3) // prefix <(a)> missing
	NRRByLevel(r, 10)
}
