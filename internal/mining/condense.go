package mining

import "github.com/disc-mining/disc/internal/seq"

// Closed returns the closed frequent sequences of r: those with no frequent
// supersequence of equal support. Because supports are anti-monotone along
// subsequence chains, it suffices to compare each pattern against its
// immediate (length+1) supersequences, and every immediate subsequence of a
// pattern arises from dropping one item.
func (r *Result) Closed() *Result {
	return r.condense(func(sub, super PatternCount) bool {
		return super.Support == sub.Support
	})
}

// Maximal returns the maximal frequent sequences of r: those with no
// frequent supersequence at all.
func (r *Result) Maximal() *Result {
	return r.condense(func(sub, super PatternCount) bool { return true })
}

// condense drops every pattern for which some frequent (len+1)
// supersequence satisfies kill.
func (r *Result) condense(kill func(sub, super PatternCount) bool) *Result {
	killed := make([]bool, len(r.patterns))
	for _, super := range r.patterns {
		if super.Pattern.Len() < 2 {
			continue
		}
		for i := 0; i < super.Pattern.Len(); i++ {
			subKey := super.Pattern.DropItem(i).Key()
			if idx, ok := r.byKey[subKey]; ok && !killed[idx] && kill(r.patterns[idx], super) {
				killed[idx] = true
			}
		}
	}
	out := NewResult()
	for i, pc := range r.patterns {
		if !killed[i] {
			out.Add(pc.Pattern, pc.Support)
		}
	}
	return out
}

// CoveredBy reports whether p is a subsequence of q, treating both as
// itemset sequences. Exposed for the condense tests and downstream users
// working with Result values.
func CoveredBy(p, q seq.Pattern) bool {
	ps, qs := p.Itemsets(), q.Itemsets()
	j := 0
	for _, s := range ps {
		for j < len(qs) && !qs[j].Contains(s) {
			j++
		}
		if j >= len(qs) {
			return false
		}
		j++
	}
	return true
}
