// Package cliutil holds the flag plumbing shared by the mining binaries
// (discmine and discserve): the resource-budget and checkpoint-cadence
// knobs are registered through one function with one set of names,
// defaults and help strings, so the two binaries cannot drift apart.
package cliutil

import (
	"flag"
	"time"

	"github.com/disc-mining/disc/internal/core"
)

// SharedFlags are the budget/checkpoint settings every mining binary
// exposes under identical flag names.
type SharedFlags struct {
	// MaxPatterns is the soft budget on discovered patterns (-max-patterns).
	MaxPatterns int
	// MaxMemBytes is the soft heap budget in bytes (-max-mem-bytes).
	MaxMemBytes int64
	// CheckpointInterval is the periodic checkpoint snapshot cadence
	// (-checkpoint-interval); 0 snapshots only on interruption.
	CheckpointInterval time.Duration
}

// RegisterShared registers the shared flags on fs and returns the struct
// their parsed values land in.
func RegisterShared(fs *flag.FlagSet) *SharedFlags {
	s := &SharedFlags{}
	fs.IntVar(&s.MaxPatterns, "max-patterns", 0,
		"soft budget on discovered patterns; the run degrades near it and fails past it (0 = unbounded)")
	fs.Int64Var(&s.MaxMemBytes, "max-mem-bytes", 0,
		"soft heap budget in bytes with the same degradation ladder (0 = unbounded)")
	fs.DurationVar(&s.CheckpointInterval, "checkpoint-interval", 0,
		"additionally snapshot the checkpoint at this interval (0 = only on interruption)")
	return s
}

// Apply copies the budget settings into engine options.
func (s *SharedFlags) Apply(o *core.Options) {
	o.MaxPatterns = s.MaxPatterns
	o.MaxMemBytes = s.MaxMemBytes
}

// SharedFlagNames lists the names RegisterShared defines. The regression
// tests of both binaries iterate it to prove each binary accepts every
// shared flag.
func SharedFlagNames() []string {
	return []string{"max-patterns", "max-mem-bytes", "checkpoint-interval"}
}
