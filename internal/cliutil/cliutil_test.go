package cliutil

import (
	"flag"
	"io"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/core"
)

func TestRegisterSharedDefinesEveryName(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	RegisterShared(fs)
	for _, name := range SharedFlagNames() {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	// SharedFlagNames must be exhaustive, too: a flag added to
	// RegisterShared without a name entry would escape the binaries'
	// drift regression tests.
	n := 0
	fs.VisitAll(func(*flag.Flag) { n++ })
	if n != len(SharedFlagNames()) {
		t.Errorf("RegisterShared defines %d flags, SharedFlagNames lists %d", n, len(SharedFlagNames()))
	}
}

func TestSharedFlagsParseAndApply(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	s := RegisterShared(fs)
	err := fs.Parse([]string{"-max-patterns", "7", "-max-mem-bytes", "1024", "-checkpoint-interval", "250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxPatterns != 7 || s.MaxMemBytes != 1024 || s.CheckpointInterval != 250*time.Millisecond {
		t.Fatalf("parsed = %+v", s)
	}
	var o core.Options
	s.Apply(&o)
	if o.MaxPatterns != 7 || o.MaxMemBytes != 1024 {
		t.Fatalf("applied options = %+v", o)
	}
}

func TestSharedFlagsDefaultsUnbounded(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	s := RegisterShared(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s.MaxPatterns != 0 || s.MaxMemBytes != 0 || s.CheckpointInterval != 0 {
		t.Fatalf("defaults = %+v, want all zero (unbounded)", s)
	}
}
