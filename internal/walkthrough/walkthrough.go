// Package walkthrough renders the worked examples of §1–§3 of Chiu, Wu &
// Chen (ICDE 2004) — Tables 1-4 and 8-10, the §1.1 SPADE ID-list merge,
// the §2 ordering examples and Examples 3.3-3.5 — with every value
// computed by this repository's implementations. It is the human-readable
// companion to the golden unit tests and is printed by cmd/paperwalk.
package walkthrough

import (
	"fmt"
	"io"
	"sort"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/kmin"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Run writes the whole walkthrough to w.
func Run(w io.Writer) error {
	db := table1()
	sections := []func(io.Writer, mining.Database) error{
		sectionTable1,
		sectionOrdering,
		sectionKMinimum,
		sectionSortedDatabases,
		sectionPartitionDiscovery,
	}
	for _, s := range sections {
		if err := s(w, db); err != nil {
			return err
		}
	}
	return nil
}

func table1() mining.Database {
	return mining.Database{
		seq.MustParseCustomerSeq(1, "(a, e, g)(b)(h)(f)(c)(b, f)"),
		seq.MustParseCustomerSeq(2, "(b)(d, f)(e)"),
		seq.MustParseCustomerSeq(3, "(b, f, g)"),
		seq.MustParseCustomerSeq(4, "(f)(a, g)(b, f, h)(b, f)"),
	}
}

func sectionTable1(w io.Writer, db mining.Database) error {
	fmt.Fprintln(w, "== Table 1: the example database ==")
	for _, cs := range db {
		fmt.Fprintf(w, "  CID %d  %s\n", cs.CID, cs.Pattern().Letters())
	}

	res, err := bruteforce.Exhaustive{}.Mine(db, 2)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n§1.1 frequent 1-sequences at δ=2 (paper: a, b, e, f, g, h):\n  ")
	for _, pc := range res.Sorted() {
		if pc.Pattern.Len() == 1 {
			fmt.Fprintf(w, "%s:%d ", pc.Pattern.Letters(), pc.Support)
		}
	}
	fmt.Fprintln(w)

	// The SPADE ID-list example.
	fmt.Fprintf(w, "\n§1.1 ID-list of <(a, g)(b)> (paper: (1,2), (1,6), (4,3), (4,4)):\n  ")
	for _, e := range idList(db, seq.MustParsePattern("(a, g)(b)")) {
		fmt.Fprintf(w, "(%d,%d) ", e[0], e[1])
	}
	fmt.Fprintln(w)
	sup, _ := res.Support(seq.MustParsePattern("(a, g)(h)(f)"))
	fmt.Fprintf(w, "§1.1 temporal join result <(a, g)(h)(f)> support (paper: 2): %d\n", sup)

	// Table 2: the projected database of <(a)>.
	fmt.Fprintln(w, "\n== Table 2: the projected database of <(a)> ==")
	for _, cs := range db {
		for t := 0; t < cs.NTrans(); t++ {
			if cs.Transaction(t).Has(1) {
				fmt.Fprintf(w, "  CID %d  %s\n", cs.CID, cs.Suffix(t, 1).Pattern().Letters())
				break
			}
		}
	}
	fmt.Fprintln(w)
	return nil
}

// idList lists (cid, 1-based transaction) ends of p across the database.
func idList(db mining.Database, p seq.Pattern) [][2]int {
	var out [][2]int
	sets := p.Itemsets()
	for _, cs := range db {
		for e := 0; e < cs.NTrans(); e++ {
			if !cs.Transaction(e).Contains(sets[len(sets)-1]) {
				continue
			}
			// The prefix must match before transaction e.
			t := 0
			ok := true
			for _, s := range sets[:len(sets)-1] {
				for ; t < e; t++ {
					if cs.Transaction(t).Contains(s) {
						break
					}
				}
				if t >= e {
					ok = false
					break
				}
				t++
			}
			if ok {
				out = append(out, [2]int{cs.CID, e + 1})
			}
		}
	}
	return out
}

func sectionOrdering(w io.Writer, _ mining.Database) error {
	fmt.Fprintln(w, "== §1.2 / §2: the comparative order ==")
	pairs := [][2]string{
		{"(a)(b)(h)", "(a)(c)(f)"},
		{"(a, b)(c)", "(a)(b, c)"},
	}
	for _, pr := range pairs {
		a, b := seq.MustParsePattern(pr[0]), seq.MustParsePattern(pr[1])
		rel := "<"
		if seq.Compare(a, b) > 0 {
			rel = ">"
		}
		fmt.Fprintf(w, "  %s %s %s\n", a.Letters(), rel, b.Letters())
	}
	a := seq.MustParsePattern("(a, c, d)(d, b)")
	fmt.Fprintf(w, "\nExample 2.2 (canonical itemsets; see DESIGN.md for the paper's literal '(d, b)'):\n")
	fmt.Fprintf(w, "  A = %s\n", a.Letters())
	cs := seq.NewCustomerSeq(0, a.Itemsets()...)
	for k := 1; k <= 5; k++ {
		subs := kmin.AllKSubsequences(cs, k)
		fmt.Fprintf(w, "  %d-minimum subsequence: %s\n", k, subs[0].Letters())
	}
	fmt.Fprintln(w)
	return nil
}

func sectionKMinimum(w io.Writer, db mining.Database) error {
	fmt.Fprintln(w, "== Table 3: the 3-sorted database of Table 1 ==")
	type row struct {
		cid int
		min seq.Pattern
		cs  *seq.CustomerSeq
	}
	var rows []row
	for _, cs := range db {
		list := kmin.SortedList(kmin.AllKSubsequences(cs, 2))
		if r, ok := kmin.KMS(cs, list); ok {
			rows = append(rows, row{cs.CID, r.Min, cs})
		} else if subs := kmin.AllKSubsequences(cs, 3); len(subs) > 0 {
			rows = append(rows, row{cs.CID, subs[0], cs})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return seq.Compare(rows[i].min, rows[j].min) < 0 })
	for _, r := range rows {
		fmt.Fprintf(w, "  CID %d  %-16s %s\n", r.cid, r.min.Letters(), r.cs.Pattern().Letters())
	}

	fmt.Fprintln(w, "\n== Table 4: after re-sorting CID 1 and 4 past α_δ = <(b)(d)(e)> (δ=3) ==")
	bound := seq.MustParsePattern("(b)(d)(e)")
	for i := range rows {
		if seq.Compare(rows[i].min, bound) < 0 {
			list := kmin.SortedList(kmin.AllKSubsequences(rows[i].cs, 2))
			if r, ok := kmin.CKMS(rows[i].cs, list, 0, bound, false); ok {
				rows[i].min = r.Min
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return seq.Compare(rows[i].min, rows[j].min) < 0 })
	for _, r := range rows {
		fmt.Fprintf(w, "  CID %d  %-16s %s\n", r.cid, r.min.Letters(), r.cs.Pattern().Letters())
	}
	fmt.Fprintln(w)
	return nil
}

// The reduced <(a)(a)>-partition of Tables 7/8.
func partition() []*seq.CustomerSeq {
	return []*seq.CustomerSeq{
		seq.MustParseCustomerSeq(1, "(a)(a, g, h)(c)"),
		seq.MustParseCustomerSeq(2, "(b)(a)(a, c, e, g)"),
		seq.MustParseCustomerSeq(3, "(a, f, g)(a, e, g, h)(c, g, h)"),
		seq.MustParseCustomerSeq(4, "(f)(a, f)(a, c, e, g, h)"),
		seq.MustParseCustomerSeq(6, "(a, f)(a, e, g, h)"),
		seq.MustParseCustomerSeq(7, "(a, g)(a, e, g)(g, h)"),
	}
}

func list3() kmin.SortedList {
	return kmin.SortedList{
		seq.MustParsePattern("(a)(a, e)"),
		seq.MustParsePattern("(a)(a, g)"),
		seq.MustParsePattern("(a)(a, h)"),
	}
}

func sectionSortedDatabases(w io.Writer, _ mining.Database) error {
	fmt.Fprintln(w, "== Table 9: the 4-sorted database of the <(a)(a)>-partition (Example 3.3) ==")
	type row struct {
		cid int
		min seq.Pattern
		ptr int
	}
	var rows []row
	for _, cs := range partition() {
		if r, ok := kmin.KMS(cs, list3()); ok {
			rows = append(rows, row{cs.CID, r.Min, r.AprioriIdx})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return seq.Compare(rows[i].min, rows[j].min) < 0 })
	for _, r := range rows {
		fmt.Fprintf(w, "  CID %d  %-18s apriori ptr %d\n", r.cid, r.min.Letters(), r.ptr+1)
	}

	fmt.Fprintln(w, "\n== Table 10: after re-sorting CID 3 (Example 3.4, bound <(a)(a, e, g)>, Ω='≥') ==")
	bound := seq.MustParsePattern("(a)(a, e, g)")
	// Every key below the bound (here only CID 3's <(a)(a, e)(c)>) moves to
	// its conditional 4-minimum subsequence.
	for i := range rows {
		if seq.Compare(rows[i].min, bound) < 0 {
			if r, ok := kmin.CKMS(partitionByCID(rows[i].cid), list3(), rows[i].ptr, bound, false); ok {
				rows[i].min, rows[i].ptr = r.Min, r.AprioriIdx
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return seq.Compare(rows[i].min, rows[j].min) < 0 })
	for _, r := range rows {
		fmt.Fprintf(w, "  CID %d  %-18s apriori ptr %d\n", r.cid, r.min.Letters(), r.ptr+1)
	}
	fmt.Fprintln(w)
	return nil
}

func partitionByCID(cid int) *seq.CustomerSeq {
	for _, cs := range partition() {
		if cs.CID == cid {
			return cs
		}
	}
	panic("unknown cid")
}

func sectionPartitionDiscovery(w io.Writer, _ mining.Database) error {
	fmt.Fprintln(w, "== Example 3.5 / Figure 7: bi-level counting over the virtual partition ==")
	// Supporters of the frequent 4-sequence <(a)(a, e, g)>.
	key := seq.MustParsePattern("(a)(a, e, g)")
	var supporters []*seq.CustomerSeq
	for _, cs := range partition() {
		if cs.Contains(key) {
			supporters = append(supporters, cs)
		}
	}
	fmt.Fprintf(w, "  <(a)(a, e, g)> support (Table 10 shows its 5 supporters): %d\n", len(supporters))
	counts := map[seq.Item]int{}
	for ci, cs := range supporters {
		seen := map[seq.Item]bool{}
		_ = ci
		kmin.EnumExtensions(cs, key, func(x seq.Item) {
			if !seen[x] {
				seen[x] = true
				counts[x]++
			}
		}, nil)
	}
	fmt.Fprintf(w, "  i-extension counts (paper's Figure 7 reaches (_h)=3): ")
	var items []seq.Item
	for x := range counts {
		items = append(items, x)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, x := range items {
		fmt.Fprintf(w, "(_%c)=%d ", 'a'+rune(x)-1, counts[x])
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "  => <(a)(a, e, g, h)> is the only frequent 5-sequence with this 4-prefix (Example 3.5)")
	return nil
}
