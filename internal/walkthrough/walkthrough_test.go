package walkthrough

import (
	"bytes"
	"strings"
	"testing"
)

// TestWalkthroughGolden pins the paper-fidelity facts the walkthrough
// renders: the Table 3 and Table 9 orderings, the ID-list, the Table 4 and
// Table 10 re-sorted states, and the Example 3.5 conclusion.
func TestWalkthroughGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantInOrder := []string{
		// Table 1 + §1.1 facts.
		"CID 1  <(a, e, g)(b)(h)(f)(c)(b, f)>",
		"(1,2) (1,6) (4,3) (4,4)",
		"<(a, g)(h)(f)> support (paper: 2): 2",
		// Table 2.
		"CID 4  <(a, g)(b, f, h)(b, f)>",
		// Ordering.
		"<(a)(b)(h)> < <(a)(c)(f)>",
		"<(a, b)(c)> < <(a)(b, c)>",
		// Table 3: ascending 3-minimums, CID 1/4 before CID 2 before CID 3.
		"CID 1  <(a)(b)(b)>",
		"CID 4  <(a)(b)(b)>",
		"CID 2  <(b)(d)(e)>",
		"CID 3  <(b, f, g)>",
		// Table 4: CID 2 first, then CID 4 <(b, f)(b)>, CID 3, CID 1.
		"CID 2  <(b)(d)(e)>",
		"CID 4  <(b, f)(b)>",
		"CID 3  <(b, f, g)>",
		"CID 1  <(b)(f)(b)>",
		// Table 9.
		"CID 3  <(a)(a, e)(c)>",
		"CID 1  <(a)(a, g)(c)>",
		// Table 10: CID 3 re-sorted to <(a)(a, e, g)>.
		"CID 3  <(a)(a, e, g)>",
		// Example 3.5.
		"support (Table 10 shows its 5 supporters): 5",
		"(_h)=3",
		"<(a)(a, e, g, h)> is the only frequent 5-sequence",
	}
	pos := 0
	for _, want := range wantInOrder {
		idx := strings.Index(out[pos:], want)
		if idx < 0 {
			t.Fatalf("missing (or out of order) %q in walkthrough output:\n%s", want, out)
		}
		pos += idx
	}
}
