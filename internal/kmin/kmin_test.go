package kmin

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/disc-mining/disc/internal/seq"
)

func pat(s string) seq.Pattern { return seq.MustParsePattern(s) }

func cust(cid int, s string) *seq.CustomerSeq { return seq.MustParseCustomerSeq(cid, s) }

// fullList returns every distinct (k-1)-subsequence of cs as the sorted
// list, so that KMS degenerates to the unrestricted k-minimum subsequence.
func fullList(cs *seq.CustomerSeq, k int) SortedList {
	return SortedList(AllKSubsequences(cs, k-1))
}

// TestKMinExample22 checks the k-minimum subsequences of Example 2.2 under
// canonical itemsets. A = <(a,c,d)(d,b)> canonicalizes to <(a,c,d)(b,d)>;
// the 1- and 2-minimums match the paper; from k=3 on, the canonical form
// admits <(a)(b,d)> which the paper's literal "(d, b)" ordering hides (see
// DESIGN.md).
func TestKMinExample22(t *testing.T) {
	A := cust(1, "(a, c, d)(d, b)")
	want := map[int]string{
		1: "<(a)>",
		2: "<(a)(b)>",
		3: "<(a)(b, d)>",
		4: "<(a, c)(b, d)>",
		5: "<(a, c, d)(b, d)>",
	}
	for k := 1; k <= 5; k++ {
		var res Result
		var ok bool
		if k == 1 {
			subs := AllKSubsequences(A, 1)
			if len(subs) == 0 {
				t.Fatal("no 1-subsequences")
			}
			res, ok = Result{Min: subs[0]}, true
		} else {
			res, ok = KMS(A, fullList(A, k))
		}
		if !ok {
			t.Fatalf("k=%d: no minimum found", k)
		}
		if res.Min.Letters() != want[k] {
			t.Errorf("k=%d minimum = %s, want %s", k, res.Min.Letters(), want[k])
		}
	}
	// B = <(a,d,e)(a)> is already canonical; its 3-minimum matches the
	// paper: <(a, d)(a)>.
	B := cust(2, "(a, d, e)(a)")
	res, ok := KMS(B, fullList(B, 3))
	if !ok || res.Min.Letters() != "<(a, d)(a)>" {
		t.Errorf("3-minimum of B = %v %v, want <(a, d)(a)>", res.Min.Letters(), ok)
	}
}

// TestKMinTable3 reproduces Table 3: the 3-minimum subsequences of the
// Table 1 database.
func TestKMinTable3(t *testing.T) {
	want := map[int]string{
		1: "<(a)(b)(b)>",
		2: "<(b)(d)(e)>",
		3: "<(b, f, g)>",
		4: "<(a)(b)(b)>",
	}
	for cid, w := range want {
		cs := table1()[cid-1]
		res, ok := KMS(cs, fullList(cs, 3))
		if !ok || res.Min.Letters() != w {
			t.Errorf("CID %d 3-minimum = %s (%v), want %s", cid, res.Min.Letters(), ok, w)
		}
	}
}

func table1() []*seq.CustomerSeq {
	return []*seq.CustomerSeq{
		cust(1, "(a, e, g)(b)(h)(f)(c)(b, f)"),
		cust(2, "(b)(d, f)(e)"),
		cust(3, "(b, f, g)"),
		cust(4, "(f)(a, g)(b, f, h)(b, f)"),
	}
}

// TestAprioriKMSTable9 reproduces Example 3.3 / Table 9: generating the
// 4-minimum subsequences of the <(a)(a)>-partition with the 3-sorted list
// {<(a)(a,e)>, <(a)(a,g)>, <(a)(a,h)>}.
func TestAprioriKMSTable9(t *testing.T) {
	list := SortedList{pat("(a)(a, e)"), pat("(a)(a, g)"), pat("(a)(a, h)")}
	partition := map[int]string{
		1: "(a)(a, g, h)(c)",
		2: "(b)(a)(a, c, e, g)",
		3: "(a, f, g)(a, e, g, h)(c, g, h)",
		4: "(f)(a, f)(a, c, e, g, h)",
		6: "(a, f)(a, e, g, h)",
		7: "(a, g)(a, e, g)(g, h)",
	}
	want := map[int]struct {
		min string
		ptr int // 0-based index into the 3-sorted list
	}{
		1: {"<(a)(a, g)(c)>", 1},
		2: {"<(a)(a, e, g)>", 0},
		3: {"<(a)(a, e)(c)>", 0},
		4: {"<(a)(a, e, g)>", 0},
		6: {"<(a)(a, e, g)>", 0},
		7: {"<(a)(a, e, g)>", 0},
	}
	for cid, body := range partition {
		res, ok := KMS(cust(cid, body), list)
		if !ok {
			t.Fatalf("CID %d: no 4-minimum", cid)
		}
		if res.Min.Letters() != want[cid].min || res.AprioriIdx != want[cid].ptr {
			t.Errorf("CID %d 4-minimum = %s ptr %d, want %s ptr %d",
				cid, res.Min.Letters(), res.AprioriIdx, want[cid].min, want[cid].ptr)
		}
	}
}

// TestAprioriCKMSExample34 reproduces Example 3.4: the conditional
// 4-minimum subsequence of CID 3 under bound <(a)(a,e,g)> with Ω = '≥' is
// <(a)(a,e,g)> itself.
func TestAprioriCKMSExample34(t *testing.T) {
	list := SortedList{pat("(a)(a, e)"), pat("(a)(a, g)"), pat("(a)(a, h)")}
	cs := cust(3, "(a, f, g)(a, e, g, h)(c, g, h)")
	res, ok := CKMS(cs, list, 0, pat("(a)(a, e, g)"), false)
	if !ok || res.Min.Letters() != "<(a)(a, e, g)>" {
		t.Fatalf("CKMS = %s (%v), want <(a)(a, e, g)>", res.Min.Letters(), ok)
	}
}

// TestCKMSLaterMatchIExtension is the correctness-fix case from the package
// comment: the bound itself is contained in S but only reachable through an
// i-extension at a non-leftmost match of the prefix.
func TestCKMSLaterMatchIExtension(t *testing.T) {
	cs := cust(1, "(a)(b)(b, c)")
	list := SortedList{pat("(a)(b)")}
	bound := pat("(a)(b, c)")
	res, ok := CKMS(cs, list, 0, bound, false)
	if !ok || !res.Min.Equal(bound) {
		t.Fatalf("CKMS = %s (%v), want %s", res.Min.Letters(), ok, bound.Letters())
	}
	// With Ω = '>' the bound itself is excluded and the leftmost
	// s-extension <(a)(b)(b)> is next... but it is smaller than the bound;
	// the true next is <(a)(b)(c)>.
	res, ok = CKMS(cs, list, 0, bound, true)
	if !ok || res.Min.Letters() != "<(a)(b)(c)>" {
		t.Fatalf("strict CKMS = %s (%v), want <(a)(b)(c)>", res.Min.Letters(), ok)
	}
}

func TestKMSNoResult(t *testing.T) {
	cs := cust(1, "(a)(b)")
	// <(a)(b)> matches but its matching point is the end of the sequence.
	if _, ok := KMS(cs, SortedList{pat("(a)(b)")}); ok {
		t.Fatal("KMS should fail when the only match ends the sequence")
	}
	// No frequent prefix contained at all.
	if _, ok := KMS(cs, SortedList{pat("(c)")}); ok {
		t.Fatal("KMS should fail when no prefix matches")
	}
	if _, ok := KMS(cs, nil); ok {
		t.Fatal("KMS with an empty list should fail")
	}
}

func TestCKMSSkipsToBoundPrefix(t *testing.T) {
	cs := cust(1, "(a)(a)(b)(c)")
	list := SortedList{pat("(a)(a)"), pat("(a)(b)"), pat("(b)(c)")}
	// Bound <(a)(b)(x)> with prefix <(a)(b)>: list entries before it must
	// be skipped even with aprioriIdx = 0.
	bound := pat("(a)(b)(a)")
	res, ok := CKMS(cs, list, 0, bound, false)
	if !ok || res.Min.Letters() != "<(a)(b)(c)>" {
		t.Fatalf("CKMS = %s (%v), want <(a)(b)(c)>", res.Min.Letters(), ok)
	}
	if res.AprioriIdx != 1 {
		t.Errorf("AprioriIdx = %d, want 1", res.AprioriIdx)
	}
}

// --- differential tests against the exhaustive oracle ---

func randomCustomer(r *rand.Rand, n, maxTrans, maxPerTrans int) *seq.CustomerSeq {
	nt := 1 + r.Intn(maxTrans)
	sets := make([]seq.Itemset, nt)
	for i := range sets {
		sz := 1 + r.Intn(maxPerTrans)
		var is seq.Itemset
		for j := 0; j < sz; j++ {
			is = append(is, seq.Item(1+r.Intn(n)))
		}
		sets[i] = is
	}
	return seq.NewCustomerSeq(0, sets...)
}

// randomList builds a random plausible (k-1)-sorted list by sampling
// subsequences of random customers.
func randomList(r *rand.Rand, k int, n int) SortedList {
	set := map[string]seq.Pattern{}
	for i := 0; i < 3; i++ {
		cs := randomCustomer(r, n, 4, 3)
		for _, p := range AllKSubsequences(cs, k-1) {
			if r.Intn(2) == 0 {
				set[p.Key()] = p
			}
		}
	}
	var out SortedList
	for _, p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return seq.Compare(out[i], out[j]) < 0 })
	return out
}

func TestKMSMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1500; i++ {
		k := 2 + r.Intn(3)
		cs := randomCustomer(r, 5, 5, 3)
		list := randomList(r, k, 5)
		got, gok := KMS(cs, list)
		want, wok := RefKMS(cs, list, k)
		if gok != wok {
			t.Fatalf("k=%d cs=%s list=%v: KMS ok=%v oracle ok=%v",
				k, cs.Pattern().Letters(), list, gok, wok)
		}
		if gok && !got.Min.Equal(want) {
			t.Fatalf("k=%d cs=%s: KMS=%s oracle=%s",
				k, cs.Pattern().Letters(), got.Min.Letters(), want.Letters())
		}
		if gok && !list[got.AprioriIdx].Equal(got.Min.Prefix(k-1)) {
			t.Fatalf("apriori pointer inconsistent: %s vs %s",
				list[got.AprioriIdx].Letters(), got.Min.Prefix(k-1).Letters())
		}
	}
}

func TestCKMSMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1500; i++ {
		k := 2 + r.Intn(3)
		cs := randomCustomer(r, 5, 5, 3)
		list := randomList(r, k, 5)
		if len(list) == 0 {
			continue
		}
		// A plausible bound: extend a random list entry with a random pair.
		f := list[r.Intn(len(list))]
		var bound seq.Pattern
		if x := seq.Item(1 + r.Intn(5)); x > f.LastItem() && r.Intn(2) == 0 {
			bound = f.ExtendI(x)
		} else {
			bound = f.ExtendS(seq.Item(1 + r.Intn(5)))
		}
		strict := r.Intn(2) == 0
		got, gok := CKMS(cs, list, 0, bound, strict)
		want, wok := RefCKMS(cs, list, bound, strict)
		if gok != wok {
			t.Fatalf("k=%d cs=%s bound=%s strict=%v: CKMS ok=%v oracle ok=%v",
				k, cs.Pattern().Letters(), bound.Letters(), strict, gok, wok)
		}
		if gok && !got.Min.Equal(want) {
			t.Fatalf("k=%d cs=%s bound=%s strict=%v: CKMS=%s oracle=%s",
				k, cs.Pattern().Letters(), bound.Letters(), strict,
				got.Min.Letters(), want.Letters())
		}
	}
}

// TestCKMSAprioriPointerSkip: starting CKMS from the customer's apriori
// pointer must not change the result as long as the pointer is at or below
// the bound prefix position.
func TestCKMSAprioriPointerSkip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		k := 2 + r.Intn(2)
		cs := randomCustomer(r, 5, 5, 3)
		list := randomList(r, k, 5)
		if len(list) == 0 {
			continue
		}
		f := list[r.Intn(len(list))]
		bound := f.ExtendS(seq.Item(1 + r.Intn(5)))
		// Any pointer position pointing at or before the bound prefix is
		// valid; the bound prefix position is the largest safe value.
		safe := 0
		for safe < len(list) && seq.Compare(list[safe], f) < 0 {
			safe++
		}
		a, aok := CKMS(cs, list, 0, bound, false)
		b, bok := CKMS(cs, list, safe, bound, false)
		if aok != bok || (aok && !a.Min.Equal(b.Min)) {
			t.Fatalf("pointer skip changed result: %v/%v vs %v/%v", a.Min, aok, b.Min, bok)
		}
	}
}

func TestEnumExtensionsMatchesContainment(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 1500; i++ {
		cs := randomCustomer(r, 5, 5, 3)
		k := 1 + r.Intn(3)
		subs := AllKSubsequences(cs, k)
		if len(subs) == 0 {
			continue
		}
		f := subs[r.Intn(len(subs))]
		gotI := map[seq.Item]bool{}
		gotS := map[seq.Item]bool{}
		EnumExtensions(cs, f, func(z seq.Item) { gotI[z] = true }, func(z seq.Item) { gotS[z] = true })
		for x := seq.Item(1); x <= 5; x++ {
			wantS := cs.Contains(f.ExtendS(x))
			if gotS[x] != wantS {
				t.Fatalf("s-ext %d of %s in %s: got %v want %v",
					x, f.Letters(), cs.Pattern().Letters(), gotS[x], wantS)
			}
			wantI := false
			if x > f.LastItem() {
				wantI = cs.Contains(f.ExtendI(x))
			}
			if gotI[x] != wantI {
				t.Fatalf("i-ext %d of %s in %s: got %v want %v",
					x, f.Letters(), cs.Pattern().Letters(), gotI[x], wantI)
			}
		}
	}
}

func TestAllKSubsequencesBasics(t *testing.T) {
	cs := cust(1, "(a, b)(a)")
	subs := AllKSubsequences(cs, 2)
	var got []string
	for _, p := range subs {
		got = append(got, p.Letters())
	}
	want := []string{"<(a)(a)>", "<(a, b)>", "<(b)(a)>"}
	if len(got) != len(want) {
		t.Fatalf("AllKSubsequences = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AllKSubsequences = %v, want %v", got, want)
		}
	}
	if AllKSubsequences(cs, 0) != nil {
		t.Error("k=0 should yield nil")
	}
	if len(AllKSubsequences(cs, 4)) != 0 {
		t.Error("k beyond length should yield nothing")
	}
}
