// Package kmin implements the k-minimum subsequence machinery of §3.2 of
// Chiu, Wu & Chen (ICDE 2004): the Apriori-KMS algorithm (Figure 5) that
// finds the minimum k-subsequence of a customer sequence whose (k-1)-prefix
// is frequent, and the Apriori-CKMS algorithm (Figure 6) that finds the
// conditional k-minimum subsequence subject to a lower bound (Definition
// 2.5).
//
// # Correctness of the leftmost-match rule (Apriori-KMS)
//
// For a fixed frequent (k-1)-sequence F, the candidate k-sequences with
// pair-prefix F contained in S are F+(z, n) — z joins F's last itemset, an
// i-extension, where n = F.LastTNo() — and F+(z, n+1) — z opens a new
// itemset, an s-extension. Let M be the greedy leftmost matching point of F
// on S and t_M its transaction. Every item right of M yields a candidate:
// items of t_M after M give (z, n); items of later transactions give
// (z, n+1). An i-extension may additionally be available only at a later
// match of F, in some transaction t' > t_M with lastItemset(F) ⊆ t' and
// z ∈ t', z > lastItem(F). But then lastItem(F) itself lies in t', right of
// M, so (lastItem(F), n+1) is a leftmost candidate with a *smaller* item
// than z — hence the extension minimum over the leftmost candidates alone
// equals the true minimum, and the paper's Figure 5 is exact.
//
// # Why Apriori-CKMS needs the complete i-extension scan
//
// Under a lower-bound constraint the same argument fails: the dominating
// smaller candidate (lastItem(F), n+1) may fall below the bound and be
// filtered out, leaving a later-match i-extension as the true constrained
// minimum. Example: S = (a)(b)(b,c), bound α_δ = <(a)(b,c)>, Ω = '≥'. The
// leftmost match of <(a)(b)> ends at transaction 2 and offers only (b,3)
// (below the bound) and (c,3), i.e. <(a)(b)(c)>; but S contains α_δ itself
// via the match of <(a)(b)> ending at transaction 3. Returning <(a)(b)(c)>
// would place the customer after α_δ in the re-sorted database and
// under-count α_δ. CKMS therefore also scans every transaction after the
// prefix match that contains F's last itemset and offers its items greater
// than lastItem(F) as (z, n) candidates, which makes the candidate set
// complete.
package kmin

import (
	"github.com/disc-mining/disc/internal/seq"
)

// SortedList is a list of frequent (k-1)-sequences in ascending comparative
// order — the paper's "(k-1)-sorted list".
type SortedList []seq.Pattern

// Result is the outcome of a KMS/CKMS run: the k-minimum subsequence and
// the index into the sorted list of its (k-1)-prefix (the paper's "apriori
// pointer").
type Result struct {
	Min        seq.Pattern
	AprioriIdx int
}

// KMS implements Apriori-KMS (Figure 5): it returns the minimum
// k-subsequence of cs whose (k-1)-prefix appears in list, iterating the
// frequent (k-1)-sequences in ascending order and extending the first one
// that matches with room to spare. ok is false when no such k-subsequence
// exists.
func KMS(cs *seq.CustomerSeq, list SortedList) (Result, bool) {
	for idx, f := range list {
		if z, tno, ok := minExtension(cs, f); ok {
			return Result{Min: f.Extend(z, tno), AprioriIdx: idx}, true
		}
	}
	return Result{}, false
}

// CKMS implements Apriori-CKMS (Figure 6) with the complete constrained
// extension search described in the package comment. It returns the minimum
// k-subsequence of cs that has its (k-1)-prefix in list and is greater than
// (strict=true) or greater than or equal to (strict=false) bound. aprioriIdx
// is the customer's apriori pointer from the previous round and is used to
// skip the head of the list; pass 0 when unknown.
func CKMS(cs *seq.CustomerSeq, list SortedList, aprioriIdx int, bound seq.Pattern, strict bool) (Result, bool) {
	k := bound.Len()
	x := bound.Prefix(k - 1)
	y := bound.LastItem()
	yno := bound.LastTNo()

	idx := aprioriIdx
	if idx < 0 {
		idx = 0
	}
	// Steps 4-7: skip frequent (k-1)-sequences smaller than prefix(α_δ).
	for idx < len(list) && seq.Compare(list[idx], x) < 0 {
		idx++
	}
	for ; idx < len(list); idx++ {
		f := list[idx]
		if seq.Compare(f, x) != 0 {
			// F > X: any extension beats the bound (the differential point
			// sits inside the first k-1 pairs), so the unconstrained
			// minimum extension is the answer.
			if z, tno, ok := minExtension(cs, f); ok {
				return Result{Min: f.Extend(z, tno), AprioriIdx: idx}, true
			}
			continue
		}
		if z, tno, ok := minConstrainedExtension(cs, f, y, yno, strict); ok {
			return Result{Min: f.Extend(z, tno), AprioriIdx: idx}, true
		}
	}
	return Result{}, false
}

// minExtension finds the minimum extension pair (z, tno) of the pattern f
// on cs: the smallest (item, transaction-number) pair, ordered item first,
// among the items right of the leftmost matching point of f.
func minExtension(cs *seq.CustomerSeq, f seq.Pattern) (z seq.Item, tno int32, ok bool) {
	tM, pos, found := cs.LeftmostMatch(f)
	if !found {
		return 0, 0, false
	}
	n := f.LastTNo()
	var best seq.Item
	var bestNo int32
	have := false
	// i-extension candidates: items of t_M after the matching point. The
	// transaction is sorted, so the first such item is their minimum.
	if pos+1 < cs.Len() && cs.TNoAt(pos+1) == cs.TNoAt(pos) {
		best, bestNo, have = cs.ItemAt(pos+1), n, true
	}
	// s-extension candidates: any item of a later transaction.
	for t := tM + 1; t < cs.NTrans(); t++ {
		for _, it := range cs.Transaction(t) {
			if !have || it < best {
				best, bestNo, have = it, n+1, true
			}
		}
	}
	return best, bestNo, have
}

// minConstrainedExtension finds the minimum extension pair (z, tno) of f on
// cs such that (z, tno) is greater than (strict) or at least (otherwise)
// the bound pair (y, yno). It scans the complete candidate set: leftmost
// i- and s-extensions plus i-extensions at every later match of f.
func minConstrainedExtension(cs *seq.CustomerSeq, f seq.Pattern, y seq.Item, yno int32, strict bool) (z seq.Item, tno int32, ok bool) {
	tM, pos, found := cs.LeftmostMatch(f)
	if !found {
		return 0, 0, false
	}
	n := f.LastTNo()
	var best seq.Item
	var bestNo int32
	have := false
	consider := func(it seq.Item, no int32) {
		c := seq.ComparePair(it, no, y, yno)
		if c < 0 || (strict && c == 0) {
			return
		}
		if !have || seq.ComparePair(it, no, best, bestNo) < 0 {
			best, bestNo, have = it, no, true
		}
	}
	// Leftmost i-extensions: items of t_M after the matching point.
	for p := pos + 1; p < cs.Len() && cs.TNoAt(p) == cs.TNoAt(pos); p++ {
		consider(cs.ItemAt(p), n)
	}
	// Leftmost s-extensions: items of transactions after t_M.
	for t := tM + 1; t < cs.NTrans(); t++ {
		for _, it := range cs.Transaction(t) {
			consider(it, n+1)
		}
	}
	// i-extensions at later matches: any transaction after the prefix match
	// that contains f's last itemset offers its items greater than f's last
	// item.
	last := f.LastItemset()
	lastItem := f.LastItem()
	prefixEnd, pok := cs.MatchPrefixEnd(f)
	if pok {
		for t := prefixEnd + 1; t < cs.NTrans(); t++ {
			if t == tM {
				continue // already covered by the leftmost scan
			}
			tr := cs.Transaction(t)
			if !tr.Contains(last) {
				continue
			}
			for _, it := range tr {
				if it > lastItem {
					consider(it, n)
				}
			}
		}
	}
	return best, bestNo, have
}

// EnumExtensions reports every extension item of the pattern f contained in
// cs: onI(z) is called for items z such that cs contains f i-extended with
// z, and onS(z) for items such that cs contains f s-extended with z.
// Callbacks may fire more than once for the same item; the counting array's
// last-CID mechanism absorbs duplicates. This drives the counting-array
// passes of §3.1 (frequent 2- and 3-sequences) and the bi-level technique
// of §3.2 (Figure 7).
func EnumExtensions(cs *seq.CustomerSeq, f seq.Pattern, onI, onS func(seq.Item)) {
	tM, _, found := cs.LeftmostMatch(f)
	if !found {
		return
	}
	// s-extensions: every item in a transaction after the leftmost match.
	if onS != nil {
		for t := tM + 1; t < cs.NTrans(); t++ {
			for _, it := range cs.Transaction(t) {
				onS(it)
			}
		}
	}
	// i-extensions: items greater than f's last item in any transaction
	// after the prefix match that contains f's last itemset.
	if onI != nil {
		last := f.LastItemset()
		lastItem := f.LastItem()
		prefixEnd, pok := cs.MatchPrefixEnd(f)
		if !pok {
			return
		}
		for t := prefixEnd + 1; t < cs.NTrans(); t++ {
			tr := cs.Transaction(t)
			if !tr.Contains(last) {
				continue
			}
			for _, it := range tr {
				if it > lastItem {
					onI(it)
				}
			}
		}
	}
}
