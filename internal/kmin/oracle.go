package kmin

import (
	"sort"

	"github.com/disc-mining/disc/internal/seq"
)

// AllKSubsequences exhaustively enumerates the distinct k-subsequences of
// cs, returned in ascending comparative order. It is exponential in the
// transaction sizes and exists as the ground-truth oracle for tests and the
// bruteforce miner; transactions longer than 20 items are rejected by
// panic to catch accidental production use.
func AllKSubsequences(cs *seq.CustomerSeq, k int) []seq.Pattern {
	if k <= 0 {
		return nil
	}
	set := map[string]seq.Pattern{}
	var cur []seq.Itemset
	var rec func(t, need int)
	rec = func(t, need int) {
		if need == 0 {
			p := seq.NewPattern(cur...)
			set[p.Key()] = p
			return
		}
		for tt := t; tt < cs.NTrans(); tt++ {
			tr := cs.Transaction(tt)
			if len(tr) > 20 {
				panic("kmin: AllKSubsequences is a test oracle; transaction too large")
			}
			for mask := 1; mask < 1<<len(tr); mask++ {
				var is seq.Itemset
				for b := 0; b < len(tr); b++ {
					if mask&(1<<b) != 0 {
						is = append(is, tr[b])
					}
				}
				if len(is) > need {
					continue
				}
				cur = append(cur, is)
				rec(tt+1, need-len(is))
				cur = cur[:len(cur)-1]
			}
		}
	}
	rec(0, k)
	out := make([]seq.Pattern, 0, len(set))
	for _, p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return seq.Compare(out[i], out[j]) < 0 })
	return out
}

// RefKMS is the exhaustive reference for KMS: the minimum k-subsequence of
// cs whose (k-1)-prefix appears in list, where k = len(list[i]) + 1.
func RefKMS(cs *seq.CustomerSeq, list SortedList, k int) (seq.Pattern, bool) {
	return refMin(cs, list, k, seq.Pattern{}, false, false)
}

// RefCKMS is the exhaustive reference for CKMS.
func RefCKMS(cs *seq.CustomerSeq, list SortedList, bound seq.Pattern, strict bool) (seq.Pattern, bool) {
	return refMin(cs, list, bound.Len(), bound, strict, true)
}

func refMin(cs *seq.CustomerSeq, list SortedList, k int, bound seq.Pattern, strict, bounded bool) (seq.Pattern, bool) {
	prefixes := map[string]bool{}
	for _, f := range list {
		prefixes[f.Key()] = true
	}
	for _, p := range AllKSubsequences(cs, k) {
		if !prefixes[p.Prefix(k-1).Key()] {
			continue
		}
		if bounded {
			c := seq.Compare(p, bound)
			if c < 0 || (strict && c == 0) {
				continue
			}
		}
		return p, true // ascending order: first hit is the minimum
	}
	return seq.Pattern{}, false
}
