package kmin

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/seq"
)

// TestKMSStructuralProperties: whatever KMS returns must actually be a
// k-subsequence of the customer whose (k-1)-prefix is the list entry at
// the apriori pointer, and no smaller list entry may admit an extension.
func TestKMSStructuralProperties(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	for i := 0; i < 1200; i++ {
		k := 2 + r.Intn(3)
		cs := randomCustomer(r, 5, 5, 3)
		list := randomList(r, k, 5)
		res, ok := KMS(cs, list)
		if !ok {
			continue
		}
		if res.Min.Len() != k {
			t.Fatalf("result length %d, want %d", res.Min.Len(), k)
		}
		if !cs.Contains(res.Min) {
			t.Fatalf("%s not contained in %s", res.Min.Letters(), cs.Pattern().Letters())
		}
		if !list[res.AprioriIdx].Equal(res.Min.Prefix(k - 1)) {
			t.Fatalf("apriori pointer mismatch")
		}
		// Minimality across list entries: no earlier entry has any
		// extension contained in cs.
		for j := 0; j < res.AprioriIdx; j++ {
			f := list[j]
			for x := seq.Item(1); x <= 5; x++ {
				if cs.Contains(f.ExtendS(x)) {
					t.Fatalf("earlier entry %s extends with s(%d) but was skipped", f.Letters(), x)
				}
				if x > f.LastItem() && cs.Contains(f.ExtendI(x)) {
					t.Fatalf("earlier entry %s extends with i(%d) but was skipped", f.Letters(), x)
				}
			}
		}
	}
}

// TestCKMSRespectsBound: the conditional minimum always satisfies the Ω
// constraint of Definition 2.5 and is contained in the customer.
func TestCKMSRespectsBound(t *testing.T) {
	r := rand.New(rand.NewSource(402))
	for i := 0; i < 1200; i++ {
		k := 2 + r.Intn(3)
		cs := randomCustomer(r, 5, 5, 3)
		list := randomList(r, k, 5)
		if len(list) == 0 {
			continue
		}
		f := list[r.Intn(len(list))]
		bound := f.ExtendS(seq.Item(1 + r.Intn(5)))
		strict := r.Intn(2) == 0
		res, ok := CKMS(cs, list, 0, bound, strict)
		if !ok {
			continue
		}
		c := seq.Compare(res.Min, bound)
		if c < 0 || (strict && c == 0) {
			t.Fatalf("CKMS result %s violates bound %s (strict=%v)",
				res.Min.Letters(), bound.Letters(), strict)
		}
		if !cs.Contains(res.Min) {
			t.Fatalf("CKMS result not contained")
		}
	}
}

// TestCKMSMonotoneInBound: raising the bound can only raise (or remove)
// the conditional minimum.
func TestCKMSMonotoneInBound(t *testing.T) {
	r := rand.New(rand.NewSource(403))
	for i := 0; i < 800; i++ {
		k := 2 + r.Intn(2)
		cs := randomCustomer(r, 5, 5, 3)
		list := randomList(r, k, 5)
		if len(list) == 0 {
			continue
		}
		f := list[r.Intn(len(list))]
		lo := f.ExtendS(seq.Item(1 + r.Intn(3)))
		hi := f.ExtendS(seq.Item(3 + r.Intn(3)))
		if seq.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		a, aok := CKMS(cs, list, 0, lo, false)
		b, bok := CKMS(cs, list, 0, hi, false)
		if bok && !aok {
			t.Fatalf("higher bound found a result where lower did not")
		}
		if aok && bok && seq.Compare(a.Min, b.Min) > 0 {
			t.Fatalf("conditional minimum decreased when bound rose: %s vs %s",
				a.Min.Letters(), b.Min.Letters())
		}
	}
}

// TestKMSChainTerminates: repeatedly replacing the current minimum by the
// strict conditional minimum must enumerate a strictly increasing chain
// that terminates — the backbone of the DISC loop's termination argument.
func TestKMSChainTerminates(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for i := 0; i < 400; i++ {
		k := 2 + r.Intn(2)
		cs := randomCustomer(r, 4, 5, 3)
		list := SortedList(AllKSubsequences(cs, k-1))
		res, ok := KMS(cs, list)
		if !ok {
			continue
		}
		prev := res.Min
		steps := 0
		for {
			nxt, ok := CKMS(cs, list, 0, prev, true)
			if !ok {
				break
			}
			if seq.Compare(nxt.Min, prev) <= 0 {
				t.Fatalf("chain not strictly increasing: %s then %s",
					prev.Letters(), nxt.Min.Letters())
			}
			prev = nxt.Min
			if steps++; steps > 10000 {
				t.Fatalf("chain did not terminate")
			}
		}
		// The chain must have enumerated exactly the distinct
		// k-subsequences of cs (the list admits all prefixes here).
		if want := len(AllKSubsequences(cs, k)); steps+1 != want {
			t.Fatalf("chain enumerated %d k-subsequences, want %d", steps+1, want)
		}
	}
}
