// The seed pointer-per-node AVL tree, retained verbatim (renamed Tree →
// Pointer) as the differential oracle for the slab Tree: the property
// tests in this package drive both implementations through identical
// operation sequences, and the engine can be forced onto it with
// core.Options.PointerTree so the differential harness proves the slab
// tree byte-identical across the full grid. It allocates one node per
// key and is scheduled for removal once the slab tree has survived a
// release cycle as the default engine.
package avl

// Pointer is the seed locative AVL tree mapping keys to buckets of
// values. The zero value is not usable; construct with NewPointer.
type Pointer[K, V any] struct {
	cmp  func(a, b K) int
	root *pnode[K, V]
	rec  *Recorder
}

type pnode[K, V any] struct {
	key         K
	vals        []V
	left, right *pnode[K, V]
	height      int
	size        int // total number of values in this subtree
}

// NewPointer returns an empty pointer tree ordered by cmp (negative:
// a<b, zero: equal, positive: a>b).
func NewPointer[K, V any](cmp func(a, b K) int) *Pointer[K, V] {
	return &Pointer[K, V]{cmp: cmp}
}

// Observe attaches a rotation recorder (nil detaches) and returns the
// tree for chaining at construction sites.
func (t *Pointer[K, V]) Observe(r *Recorder) *Pointer[K, V] {
	t.rec = r
	return t
}

// Reset empties the tree. The pointer implementation has no slabs to
// retain: every node is released to the garbage collector.
func (t *Pointer[K, V]) Reset() { t.root = nil }

// MemBytes estimates the heap footprint of the tree's nodes. The pointer
// implementation cannot account exactly without a full walk, so it
// reports a per-node estimate; the slab Tree reports exact slab sizes.
func (t *Pointer[K, V]) MemBytes() int64 {
	n := 0
	t.Ascend(func(K, []V) bool { n++; return true })
	return int64(n) * pointerNodeEstimate[K, V]()
}

// pointerNodeEstimate approximates the bytes one pointer node costs:
// the node struct plus one bucket slot.
func pointerNodeEstimate[K, V any]() int64 {
	var k K
	var v V
	return int64(sizeOfValue(k)) + int64(sizeOfValue(v)) + 48
}

// Size returns the total number of values stored (with multiplicity).
func (t *Pointer[K, V]) Size() int { return t.root.sizeOf() }

// NumKeys returns the number of distinct keys.
func (t *Pointer[K, V]) NumKeys() int {
	n := 0
	t.Ascend(func(K, []V) bool { n++; return true })
	return n
}

// Insert adds the value v under the key k, creating the key's bucket if
// needed.
func (t *Pointer[K, V]) Insert(k K, v V) {
	t.root = t.insert(t.root, k, v)
}

func (t *Pointer[K, V]) insert(n *pnode[K, V], k K, v V) *pnode[K, V] {
	if n == nil {
		return &pnode[K, V]{key: k, vals: []V{v}, height: 1, size: 1}
	}
	switch c := t.cmp(k, n.key); {
	case c < 0:
		n.left = t.insert(n.left, k, v)
	case c > 0:
		n.right = t.insert(n.right, k, v)
	default:
		n.vals = append(n.vals, v)
		n.size++
		return n
	}
	return t.rebalance(n)
}

// Min returns the smallest key and its bucket. ok is false on an empty
// tree. The returned bucket slice is owned by the tree; do not mutate.
func (t *Pointer[K, V]) Min() (k K, vals []V, ok bool) {
	n := t.root
	if n == nil {
		return k, nil, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.vals, true
}

// PopMin removes the smallest key's entire bucket and returns it.
func (t *Pointer[K, V]) PopMin() (k K, vals []V, ok bool) {
	if t.root == nil {
		return k, nil, false
	}
	var out *pnode[K, V]
	t.root, out = t.popMin(t.root)
	return out.key, out.vals, true
}

func (t *Pointer[K, V]) popMin(n *pnode[K, V]) (root, removed *pnode[K, V]) {
	if n.left == nil {
		return n.right, n
	}
	var out *pnode[K, V]
	n.left, out = t.popMin(n.left)
	return t.rebalance(n), out
}

// Select returns the key at 1-based rank r, counting values with
// multiplicity: rank 1 is the first value of the minimum key. ok is false
// when r is out of range.
func (t *Pointer[K, V]) Select(r int) (k K, ok bool) {
	n := t.root
	if n == nil || r < 1 || r > n.size {
		return k, false
	}
	for {
		ls := n.left.sizeOf()
		switch {
		case r <= ls:
			n = n.left
		case r <= ls+len(n.vals):
			return n.key, true
		default:
			r -= ls + len(n.vals)
			n = n.right
		}
	}
}

// Rank returns the number of values with keys strictly smaller than k.
func (t *Pointer[K, V]) Rank(k K) int {
	r := 0
	n := t.root
	for n != nil {
		switch c := t.cmp(k, n.key); {
		case c <= 0:
			n = n.left
		default:
			r += n.left.sizeOf() + len(n.vals)
			n = n.right
		}
	}
	return r
}

// Get returns the bucket stored under k, or ok=false.
func (t *Pointer[K, V]) Get(k K) (vals []V, ok bool) {
	n := t.root
	for n != nil {
		switch c := t.cmp(k, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.vals, true
		}
	}
	return nil, false
}

// Delete removes the entire bucket stored under k; it reports whether the
// key was present.
func (t *Pointer[K, V]) Delete(k K) bool {
	var deleted bool
	t.root, deleted = t.delete(t.root, k)
	return deleted
}

func (t *Pointer[K, V]) delete(n *pnode[K, V], k K) (*pnode[K, V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch c := t.cmp(k, n.key); {
	case c < 0:
		n.left, deleted = t.delete(n.left, k)
	case c > 0:
		n.right, deleted = t.delete(n.right, k)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		var succ *pnode[K, V]
		n.right, succ = t.popMin(n.right)
		succ.left, succ.right = n.left, n.right
		n = succ
	}
	if !deleted {
		return n, false
	}
	return t.rebalance(n), true
}

// Ascend visits buckets in ascending key order until fn returns false.
func (t *Pointer[K, V]) Ascend(fn func(k K, vals []V) bool) {
	pascend(t.root, fn)
}

func pascend[K, V any](n *pnode[K, V], fn func(K, []V) bool) bool {
	if n == nil {
		return true
	}
	return pascend(n.left, fn) && fn(n.key, n.vals) && pascend(n.right, fn)
}

// Height returns the tree height (0 for empty); exposed for balance tests.
func (t *Pointer[K, V]) Height() int { return t.root.heightOf() }

func (n *pnode[K, V]) sizeOf() int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *pnode[K, V]) heightOf() int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *pnode[K, V]) update() {
	n.height = 1 + max(n.left.heightOf(), n.right.heightOf())
	n.size = len(n.vals) + n.left.sizeOf() + n.right.sizeOf()
}

func (t *Pointer[K, V]) rebalance(n *pnode[K, V]) *pnode[K, V] {
	n.update()
	switch bf := n.left.heightOf() - n.right.heightOf(); {
	case bf > 1:
		if n.left.right.heightOf() > n.left.left.heightOf() {
			n.left = t.rotateLeft(n.left)
		}
		return t.rotateRight(n)
	case bf < -1:
		if n.right.left.heightOf() > n.right.right.heightOf() {
			n.right = t.rotateRight(n.right)
		}
		return t.rotateLeft(n)
	}
	return n
}

func (t *Pointer[K, V]) rotateLeft(n *pnode[K, V]) *pnode[K, V] {
	t.rec.rotation()
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

func (t *Pointer[K, V]) rotateRight(n *pnode[K, V]) *pnode[K, V] {
	t.rec.rotation()
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}
