package avl

import "testing"

// TestRecorderCountsRotations inserts an ascending run — the worst case
// for an AVL tree — and checks the recorder saw the rebalancing work,
// while an unobserved tree (nil recorder) takes the same path safely.
func TestRecorderCountsRotations(t *testing.T) {
	cmp := func(a, b int) int { return a - b }

	var rec Recorder
	obs := New[int, int](cmp).Observe(&rec)
	plain := New[int, int](cmp)
	for i := 0; i < 64; i++ {
		obs.Insert(i, i)
		plain.Insert(i, i) // nil recorder path must not panic
	}
	if got := rec.Rotations.Load(); got == 0 {
		t.Fatal("ascending inserts produced zero rotations")
	}
	before := rec.Rotations.Load()
	for i := 0; i < 32; i++ {
		obs.Delete(i)
		plain.Delete(i)
	}
	if rec.Rotations.Load() <= before {
		t.Errorf("deletes produced no rotations (before=%d after=%d)", before, rec.Rotations.Load())
	}
	if obs.Height() != plain.Height() {
		t.Error("observed tree diverged from plain tree")
	}
}
