// Package avl implements the locative tree of §3.2 of Chiu, Wu & Chen
// (ICDE 2004): a height-balanced order-statistic tree whose nodes carry
// subtree value counts, so that the k-sorted database can retrieve both
// its minimum key (the candidate k-sequence α₁) and the key at any rank
// (the condition k-sequence α_δ at rank δ) in O(log n).
//
// Each distinct key holds a bucket of values (the customer sequences whose
// current k-minimum subsequence equals that key); ranks count values with
// multiplicity, exactly like positions in the paper's k-sorted database
// tables.
//
// # Memory layout
//
// Tree is an array-backed implicit order-statistic tree: structural nodes
// are 16-byte entries of a single slab ([]node) linked by int32 indices,
// and the keys and value buckets live in parallel slabs indexed by the
// same node index. Index 0 is a shared null sentinel whose height and
// size are zero, so child statistics are read without branch-per-link nil
// checks. Freed nodes go on an intrusive free list threaded through their
// left links, and Reset rewinds the whole structure in O(1) without
// releasing the slabs to the garbage collector — a tree drawn from a
// per-worker arena is reused across DISC rounds and partitions at zero
// steady-state allocation cost. The seed pointer-per-node implementation
// survives as Pointer (see pointer.go) purely as a differential oracle.
package avl

import (
	"sync/atomic"
	"unsafe"
)

// Recorder accumulates structural counters for one or more trees. It is
// deliberately not a registry instrument: hot insert/delete paths count
// into local atomics and the engine folds the totals into its metrics
// once per run. A nil *Recorder is valid and costs one pointer check.
type Recorder struct {
	// Rotations counts single AVL rotations (a double rotation is two).
	Rotations atomic.Int64
	// SlabGrows counts slab reallocations: node allocations that found
	// every slab slot occupied and had to grow the backing arrays. A
	// warm, Reset-reused tree performs zero of these.
	SlabGrows atomic.Int64
}

func (r *Recorder) rotation() {
	if r != nil {
		r.Rotations.Add(1)
	}
}

func (r *Recorder) slabGrow() {
	if r != nil {
		r.SlabGrows.Add(1)
	}
}

// Interface is the ordered bucket-tree API the DISC engine consumes,
// satisfied by both the slab Tree (the default) and the seed Pointer
// tree (the differential oracle behind core.Options.PointerTree).
type Interface[K, V any] interface {
	Insert(k K, v V)
	Min() (k K, vals []V, ok bool)
	PopMin() (k K, vals []V, ok bool)
	Select(r int) (k K, ok bool)
	Size() int
	Reset()
	MemBytes() int64
}

// node is one slot of the structural slab: child links are indices into
// the same slab, height and size are the AVL height and the
// order-statistic subtree weight (values counted with multiplicity).
// Slot 0 is the null sentinel with height 0 and size 0.
type node struct {
	left, right int32
	height      int32
	size        int32
}

// Tree is the slab-allocated locative tree mapping keys to buckets of
// values. The zero value is not usable; construct with New.
//
// Ownership contract: the bucket slice returned by PopMin stays valid
// until the next PopMin, Delete or Reset call on the same tree — Inserts
// are safe while the bucket is being iterated (the freed slot is
// recycled one mutation late, see pending). This matches the DISC
// engine's pop-then-reinsert round structure exactly.
type Tree[K, V any] struct {
	cmp   func(a, b K) int
	nodes []node
	keys  []K
	vals  [][]V
	root  int32
	free  int32 // free-list head, threaded through node.left; 0 = empty
	used  int32 // slab high-water mark: slots [1, used) are live or freed
	// pending is the slot released by the most recent PopMin/Delete. It
	// joins the free list only at the next PopMin/Delete/Reset, so the
	// bucket handed to the caller cannot be aliased by an Insert that
	// happens while the caller still iterates it.
	pending   int32
	bucketCap int64 // total bucket capacity (elements), kept incrementally
	rec       *Recorder
}

// New returns an empty tree ordered by cmp (negative: a<b, zero: equal,
// positive: a>b). No slab memory is allocated until the first Insert.
func New[K, V any](cmp func(a, b K) int) *Tree[K, V] {
	return &Tree[K, V]{cmp: cmp}
}

// Observe attaches a structural recorder (nil detaches) and returns the
// tree for chaining at construction sites.
func (t *Tree[K, V]) Observe(r *Recorder) *Tree[K, V] {
	t.rec = r
	return t
}

// Reset empties the tree in O(used) time (one memclr of the key slab)
// while keeping every slab and every bucket's capacity allocated: the
// next fill of comparable size performs zero allocations. Buckets keep
// their element storage; keys are cleared eagerly so large key values
// (patterns) do not outlive the round that created them.
func (t *Tree[K, V]) Reset() {
	if t.used > 1 {
		clear(t.keys[1:t.used])
	}
	t.root, t.free, t.pending = 0, 0, 0
	if len(t.nodes) > 0 {
		t.used = 1
	} else {
		t.used = 0
	}
}

// MemBytes returns the exact heap footprint of the tree's slabs: the
// node, key and bucket-header arrays plus the accumulated bucket element
// capacity. O(1); the engine feeds it to the resource-budget accounting
// at partition boundaries.
func (t *Tree[K, V]) MemBytes() int64 {
	var k K
	var v V
	var n node
	return int64(cap(t.nodes))*int64(unsafe.Sizeof(n)) +
		int64(cap(t.keys))*int64(sizeOfValue(k)) +
		int64(cap(t.vals))*int64(unsafe.Sizeof([]V(nil))) +
		t.bucketCap*int64(sizeOfValue(v))
}

func sizeOfValue[T any](v T) uintptr { return unsafe.Sizeof(v) }

// Size returns the total number of values stored (with multiplicity).
func (t *Tree[K, V]) Size() int {
	if t.root == 0 {
		return 0
	}
	return int(t.nodes[t.root].size)
}

// NumKeys returns the number of distinct keys.
func (t *Tree[K, V]) NumKeys() int {
	n := 0
	t.Ascend(func(K, []V) bool { n++; return true })
	return n
}

// Height returns the tree height (0 for empty); exposed for balance tests.
func (t *Tree[K, V]) Height() int {
	if t.root == 0 {
		return 0
	}
	return int(t.nodes[t.root].height)
}

// Insert adds the value v under the key k, creating the key's bucket if
// needed.
func (t *Tree[K, V]) Insert(k K, v V) {
	t.root = t.insert(t.root, k, v)
}

func (t *Tree[K, V]) insert(i int32, k K, v V) int32 {
	if i == 0 {
		return t.alloc(k, v)
	}
	// Child links are re-read through the slab after each recursive call:
	// the recursion may grow the slab, so no *node pointer is held across
	// it.
	switch c := t.cmp(k, t.keys[i]); {
	case c < 0:
		l := t.insert(t.nodes[i].left, k, v)
		t.nodes[i].left = l
	case c > 0:
		r := t.insert(t.nodes[i].right, k, v)
		t.nodes[i].right = r
	default:
		t.appendVal(i, v)
		t.nodes[i].size++
		return i
	}
	return t.rebalance(i)
}

// appendVal grows bucket i by one value, keeping the incremental
// bucket-capacity accounting exact.
func (t *Tree[K, V]) appendVal(i int32, v V) {
	b := t.vals[i]
	oc := cap(b)
	b = append(b, v)
	if nc := cap(b); nc != oc {
		t.bucketCap += int64(nc - oc)
	}
	t.vals[i] = b
}

// alloc claims a slot for a fresh node: first from the free list (the
// slot's previous bucket capacity is reused), then from the unused tail
// of the slab, and only when both are exhausted by growing the slabs.
func (t *Tree[K, V]) alloc(k K, v V) int32 {
	var i int32
	switch {
	case t.free != 0:
		i = t.free
		t.free = t.nodes[i].left
	case int(t.used) < len(t.nodes):
		i = t.used
		t.used++
	default:
		i = t.grow()
	}
	t.keys[i] = k
	t.nodes[i] = node{height: 1, size: 1}
	b := t.vals[i][:0]
	oc := cap(b)
	b = append(b, v)
	if nc := cap(b); nc != oc {
		t.bucketCap += int64(nc - oc)
	}
	t.vals[i] = b
	return i
}

// grow extends all three slabs by one slot (allocating the sentinel
// first if the tree has never held a node) and returns the new index.
func (t *Tree[K, V]) grow() int32 {
	var zk K
	if len(t.nodes) == 0 {
		t.nodes = append(t.nodes, node{})
		t.keys = append(t.keys, zk)
		t.vals = append(t.vals, nil)
	}
	if cap(t.nodes) == len(t.nodes) {
		t.rec.slabGrow()
	}
	i := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{})
	t.keys = append(t.keys, zk)
	t.vals = append(t.vals, nil)
	t.used = i + 1
	return i
}

// flushPending moves the previously popped slot onto the free list; its
// bucket (still holding the caller-visible slice header) becomes
// reusable from here on.
func (t *Tree[K, V]) flushPending() {
	if p := t.pending; p != 0 {
		t.pending = 0
		t.freeSlot(p)
	}
}

// freeSlot pushes slot i onto the free list. The key is cleared eagerly
// (large keys must not outlive their round); the bucket keeps its
// backing array so a future alloc of this slot appends into warm memory.
func (t *Tree[K, V]) freeSlot(i int32) {
	var zk K
	t.keys[i] = zk
	t.nodes[i].left = t.free
	t.free = i
}

// Min returns the smallest key and its bucket. ok is false on an empty
// tree. The returned bucket slice is owned by the tree; do not mutate.
func (t *Tree[K, V]) Min() (k K, vals []V, ok bool) {
	i := t.root
	if i == 0 {
		return k, nil, false
	}
	for t.nodes[i].left != 0 {
		i = t.nodes[i].left
	}
	return t.keys[i], t.vals[i], true
}

// PopMin removes the smallest key's entire bucket and returns it. The
// returned bucket stays valid until the next PopMin, Delete or Reset;
// Inserts in between are safe (see the Tree ownership contract).
func (t *Tree[K, V]) PopMin() (k K, vals []V, ok bool) {
	t.flushPending()
	if t.root == 0 {
		return k, nil, false
	}
	var out int32
	t.root, out = t.popMin(t.root)
	t.pending = out
	return t.keys[out], t.vals[out], true
}

func (t *Tree[K, V]) popMin(i int32) (root, removed int32) {
	if t.nodes[i].left == 0 {
		return t.nodes[i].right, i
	}
	l, out := t.popMin(t.nodes[i].left)
	t.nodes[i].left = l
	return t.rebalance(i), out
}

// Select returns the key at 1-based rank r, counting values with
// multiplicity: rank 1 is the first value of the minimum key. ok is false
// when r is out of range. This locates the paper's condition k-sequence
// α_δ with r = δ.
func (t *Tree[K, V]) Select(r int) (k K, ok bool) {
	i := t.root
	if i == 0 || r < 1 || r > int(t.nodes[i].size) {
		return k, false
	}
	for {
		n := t.nodes[i]
		ls := int(t.nodes[n.left].size)
		switch {
		case r <= ls:
			i = n.left
		case r <= ls+len(t.vals[i]):
			return t.keys[i], true
		default:
			r -= ls + len(t.vals[i])
			i = n.right
		}
	}
}

// Rank returns the number of values with keys strictly smaller than k.
func (t *Tree[K, V]) Rank(k K) int {
	r := 0
	i := t.root
	for i != 0 {
		switch c := t.cmp(k, t.keys[i]); {
		case c <= 0:
			i = t.nodes[i].left
		default:
			r += int(t.nodes[t.nodes[i].left].size) + len(t.vals[i])
			i = t.nodes[i].right
		}
	}
	return r
}

// Get returns the bucket stored under k, or ok=false. The bucket is
// owned by the tree; do not mutate, and treat it as invalidated by the
// next mutating call.
func (t *Tree[K, V]) Get(k K) (vals []V, ok bool) {
	i := t.root
	for i != 0 {
		switch c := t.cmp(k, t.keys[i]); {
		case c < 0:
			i = t.nodes[i].left
		case c > 0:
			i = t.nodes[i].right
		default:
			return t.vals[i], true
		}
	}
	return nil, false
}

// Delete removes the entire bucket stored under k; it reports whether
// the key was present. Like PopMin, the freed slot is recycled one
// mutating call late.
func (t *Tree[K, V]) Delete(k K) bool {
	t.flushPending()
	var deleted bool
	t.root, deleted = t.delete(t.root, k)
	return deleted
}

func (t *Tree[K, V]) delete(i int32, k K) (int32, bool) {
	if i == 0 {
		return 0, false
	}
	var deleted bool
	switch c := t.cmp(k, t.keys[i]); {
	case c < 0:
		l, d := t.delete(t.nodes[i].left, k)
		t.nodes[i].left, deleted = l, d
	case c > 0:
		r, d := t.delete(t.nodes[i].right, k)
		t.nodes[i].right, deleted = r, d
	default:
		l, r := t.nodes[i].left, t.nodes[i].right
		t.pending = i
		if l == 0 {
			return r, true
		}
		if r == 0 {
			return l, true
		}
		// Splice the successor node (minimum of the right subtree) into
		// i's position; the successor keeps its own key and bucket.
		nr, s := t.popMin(r)
		t.nodes[s].left, t.nodes[s].right = l, nr
		return t.rebalance(s), true
	}
	if !deleted {
		return i, false
	}
	return t.rebalance(i), true
}

// Ascend visits buckets in ascending key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(k K, vals []V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[K, V]) ascend(i int32, fn func(K, []V) bool) bool {
	if i == 0 {
		return true
	}
	return t.ascend(t.nodes[i].left, fn) && fn(t.keys[i], t.vals[i]) && t.ascend(t.nodes[i].right, fn)
}

// update recomputes height and size of node i from its children. The
// sentinel at slot 0 contributes zero to both, so no branches are
// needed on the child links.
func (t *Tree[K, V]) update(i int32) {
	n := &t.nodes[i]
	l, r := &t.nodes[n.left], &t.nodes[n.right]
	h := l.height
	if r.height > h {
		h = r.height
	}
	n.height = h + 1
	n.size = int32(len(t.vals[i])) + l.size + r.size
}

func (t *Tree[K, V]) rebalance(i int32) int32 {
	t.update(i)
	l, r := t.nodes[i].left, t.nodes[i].right
	switch bf := t.nodes[l].height - t.nodes[r].height; {
	case bf > 1:
		if t.nodes[t.nodes[l].right].height > t.nodes[t.nodes[l].left].height {
			t.nodes[i].left = t.rotateLeft(l)
		}
		return t.rotateRight(i)
	case bf < -1:
		if t.nodes[t.nodes[r].left].height > t.nodes[t.nodes[r].right].height {
			t.nodes[i].right = t.rotateRight(r)
		}
		return t.rotateLeft(i)
	}
	return i
}

func (t *Tree[K, V]) rotateLeft(i int32) int32 {
	t.rec.rotation()
	r := t.nodes[i].right
	t.nodes[i].right = t.nodes[r].left
	t.nodes[r].left = i
	t.update(i)
	t.update(r)
	return r
}

func (t *Tree[K, V]) rotateRight(i int32) int32 {
	t.rec.rotation()
	l := t.nodes[i].left
	t.nodes[i].left = t.nodes[l].right
	t.nodes[l].right = i
	t.update(i)
	t.update(l)
	return l
}
