// Package avl implements the locative AVL tree of §3.2 of Chiu, Wu & Chen
// (ICDE 2004): a height-balanced search tree whose nodes carry subtree
// value counts, so that the k-sorted database can retrieve both its minimum
// key (the candidate k-sequence α₁) and the key at any rank (the condition
// k-sequence α_δ at rank δ) in O(log n).
//
// Each distinct key holds a bucket of values (the customer sequences whose
// current k-minimum subsequence equals that key); ranks count values with
// multiplicity, exactly like positions in the paper's k-sorted database
// tables.
package avl

import "sync/atomic"

// Recorder accumulates structural counters for one or more trees. It is
// deliberately not a registry instrument: hot insert/delete paths count
// into local atomics and the engine folds the totals into its metrics
// once per run. A nil *Recorder is valid and costs one pointer check.
type Recorder struct {
	// Rotations counts single AVL rotations (a double rotation is two).
	Rotations atomic.Int64
}

func (r *Recorder) rotation() {
	if r != nil {
		r.Rotations.Add(1)
	}
}

// Tree is a locative AVL tree mapping keys to buckets of values. The zero
// value is not usable; construct with New.
type Tree[K, V any] struct {
	cmp  func(a, b K) int
	root *node[K, V]
	rec  *Recorder
}

type node[K, V any] struct {
	key         K
	vals        []V
	left, right *node[K, V]
	height      int
	size        int // total number of values in this subtree
}

// New returns an empty tree ordered by cmp (negative: a<b, zero: equal,
// positive: a>b).
func New[K, V any](cmp func(a, b K) int) *Tree[K, V] {
	return &Tree[K, V]{cmp: cmp}
}

// Observe attaches a rotation recorder (nil detaches) and returns the
// tree for chaining at construction sites.
func (t *Tree[K, V]) Observe(r *Recorder) *Tree[K, V] {
	t.rec = r
	return t
}

// Size returns the total number of values stored (with multiplicity).
func (t *Tree[K, V]) Size() int { return t.root.sizeOf() }

// NumKeys returns the number of distinct keys.
func (t *Tree[K, V]) NumKeys() int {
	n := 0
	t.Ascend(func(K, []V) bool { n++; return true })
	return n
}

// Insert adds the value v under the key k, creating the key's bucket if
// needed.
func (t *Tree[K, V]) Insert(k K, v V) {
	t.root = t.insert(t.root, k, v)
}

func (t *Tree[K, V]) insert(n *node[K, V], k K, v V) *node[K, V] {
	if n == nil {
		return &node[K, V]{key: k, vals: []V{v}, height: 1, size: 1}
	}
	switch c := t.cmp(k, n.key); {
	case c < 0:
		n.left = t.insert(n.left, k, v)
	case c > 0:
		n.right = t.insert(n.right, k, v)
	default:
		n.vals = append(n.vals, v)
		n.size++
		return n
	}
	return t.rebalance(n)
}

// Min returns the smallest key and its bucket. ok is false on an empty
// tree. The returned bucket slice is owned by the tree; do not mutate.
func (t *Tree[K, V]) Min() (k K, vals []V, ok bool) {
	n := t.root
	if n == nil {
		return k, nil, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.vals, true
}

// PopMin removes the smallest key's entire bucket and returns it.
func (t *Tree[K, V]) PopMin() (k K, vals []V, ok bool) {
	if t.root == nil {
		return k, nil, false
	}
	var out *node[K, V]
	t.root, out = t.popMin(t.root)
	return out.key, out.vals, true
}

func (t *Tree[K, V]) popMin(n *node[K, V]) (root, removed *node[K, V]) {
	if n.left == nil {
		return n.right, n
	}
	var out *node[K, V]
	n.left, out = t.popMin(n.left)
	return t.rebalance(n), out
}

// Select returns the key at 1-based rank r, counting values with
// multiplicity: rank 1 is the first value of the minimum key. ok is false
// when r is out of range. This locates the paper's condition k-sequence
// α_δ with r = δ.
func (t *Tree[K, V]) Select(r int) (k K, ok bool) {
	n := t.root
	if n == nil || r < 1 || r > n.size {
		return k, false
	}
	for {
		ls := n.left.sizeOf()
		switch {
		case r <= ls:
			n = n.left
		case r <= ls+len(n.vals):
			return n.key, true
		default:
			r -= ls + len(n.vals)
			n = n.right
		}
	}
}

// Rank returns the number of values with keys strictly smaller than k.
func (t *Tree[K, V]) Rank(k K) int {
	r := 0
	n := t.root
	for n != nil {
		switch c := t.cmp(k, n.key); {
		case c <= 0:
			n = n.left
		default:
			r += n.left.sizeOf() + len(n.vals)
			n = n.right
		}
	}
	return r
}

// Get returns the bucket stored under k, or ok=false.
func (t *Tree[K, V]) Get(k K) (vals []V, ok bool) {
	n := t.root
	for n != nil {
		switch c := t.cmp(k, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.vals, true
		}
	}
	return nil, false
}

// Delete removes the entire bucket stored under k; it reports whether the
// key was present.
func (t *Tree[K, V]) Delete(k K) bool {
	var deleted bool
	t.root, deleted = t.delete(t.root, k)
	return deleted
}

func (t *Tree[K, V]) delete(n *node[K, V], k K) (*node[K, V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch c := t.cmp(k, n.key); {
	case c < 0:
		n.left, deleted = t.delete(n.left, k)
	case c > 0:
		n.right, deleted = t.delete(n.right, k)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		var succ *node[K, V]
		n.right, succ = t.popMin(n.right)
		succ.left, succ.right = n.left, n.right
		n = succ
	}
	if !deleted {
		return n, false
	}
	return t.rebalance(n), true
}

// Ascend visits buckets in ascending key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(k K, vals []V) bool) {
	ascend(t.root, fn)
}

func ascend[K, V any](n *node[K, V], fn func(K, []V) bool) bool {
	if n == nil {
		return true
	}
	return ascend(n.left, fn) && fn(n.key, n.vals) && ascend(n.right, fn)
}

// Height returns the tree height (0 for empty); exposed for balance tests.
func (t *Tree[K, V]) Height() int { return t.root.heightOf() }

func (n *node[K, V]) sizeOf() int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node[K, V]) heightOf() int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node[K, V]) update() {
	n.height = 1 + max(n.left.heightOf(), n.right.heightOf())
	n.size = len(n.vals) + n.left.sizeOf() + n.right.sizeOf()
}

func (t *Tree[K, V]) rebalance(n *node[K, V]) *node[K, V] {
	n.update()
	switch bf := n.left.heightOf() - n.right.heightOf(); {
	case bf > 1:
		if n.left.right.heightOf() > n.left.left.heightOf() {
			n.left = t.rotateLeft(n.left)
		}
		return t.rotateRight(n)
	case bf < -1:
		if n.right.left.heightOf() > n.right.right.heightOf() {
			n.right = t.rotateRight(n.right)
		}
		return t.rotateLeft(n)
	}
	return n
}

func (t *Tree[K, V]) rotateLeft(n *node[K, V]) *node[K, V] {
	t.rec.rotation()
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

func (t *Tree[K, V]) rotateRight(n *node[K, V]) *node[K, V] {
	t.rec.rotation()
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}
