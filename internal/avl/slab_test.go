package avl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestSlabMatchesPointerAndOracle is the differential property test for the
// slab tree: a random mix of insert / delete / pop-min / reset operations is
// applied to the slab Tree, the seed Pointer tree, and a sorted-slice
// oracle, and after every operation the three must agree on Size, Min,
// Select at every rank, Rank at probe keys, and Get buckets.
func TestSlabMatchesPointerAndOracle(t *testing.T) {
	cmp := func(a, b int) int { return a - b }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slab := New[int, int](cmp)
		ptr := NewPointer[int, int](cmp)
		var model []int // sorted multiset of keys
		agree := func() bool {
			if slab.Size() != len(model) || ptr.Size() != len(model) {
				return false
			}
			sk, sv, sok := slab.Min()
			pk, pv, pok := ptr.Min()
			if sok != pok || (sok && (sk != pk || len(sv) != len(pv))) {
				return false
			}
			for rk := 1; rk <= len(model); rk++ {
				a, aok := slab.Select(rk)
				b, bok := ptr.Select(rk)
				if !aok || !bok || a != b || a != model[rk-1] {
					return false
				}
			}
			for probe := -1; probe < 42; probe += 7 {
				if slab.Rank(probe) != ptr.Rank(probe) {
					return false
				}
				sv, sok := slab.Get(probe)
				pv, pok := ptr.Get(probe)
				if sok != pok || len(sv) != len(pv) {
					return false
				}
				for i := range sv {
					if sv[i] != pv[i] {
						return false
					}
				}
			}
			return true
		}
		for op := 0; op < 400; op++ {
			switch r.Intn(8) {
			case 0, 1, 2, 3: // insert
				k := r.Intn(40)
				slab.Insert(k, op)
				ptr.Insert(k, op)
				i := sort.SearchInts(model, k)
				model = append(model, 0)
				copy(model[i+1:], model[i:])
				model[i] = k
			case 4, 5: // pop min bucket, compare contents
				sk, sv, sok := slab.PopMin()
				pk, pv, pok := ptr.PopMin()
				if sok != pok {
					return false
				}
				if !sok {
					continue
				}
				if sk != pk || len(sv) != len(pv) {
					return false
				}
				for i := range sv {
					if sv[i] != pv[i] {
						return false
					}
				}
				cnt := 0
				for cnt < len(model) && model[cnt] == sk {
					cnt++
				}
				if len(sv) != cnt {
					return false
				}
				model = model[cnt:]
			case 6: // delete random key
				if len(model) == 0 {
					continue
				}
				k := model[r.Intn(len(model))]
				if !slab.Delete(k) || !ptr.Delete(k) {
					return false
				}
				lo := sort.SearchInts(model, k)
				hi := lo
				for hi < len(model) && model[hi] == k {
					hi++
				}
				model = append(model[:lo], model[hi:]...)
			case 7: // occasional full reset: exercises slab reuse
				if r.Intn(10) == 0 {
					slab.Reset()
					ptr.Reset()
					model = model[:0]
				}
			}
			if !agree() {
				return false
			}
		}
		checkInvariants(t, slab)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPopMinBucketSurvivesInserts pins the ownership contract the DISC
// round loop relies on: the bucket returned by PopMin must remain intact
// while the caller re-Inserts into the same tree, and may only be recycled
// by the next PopMin/Delete/Reset.
func TestPopMinBucketSurvivesInserts(t *testing.T) {
	tr := New[int, int](func(a, b int) int { return a - b })
	for i := 0; i < 8; i++ {
		tr.Insert(1, 100+i)
	}
	for k := 2; k < 40; k++ {
		tr.Insert(k, k)
	}
	_, vals, ok := tr.PopMin()
	if !ok || len(vals) != 8 {
		t.Fatalf("PopMin bucket = %v %v", vals, ok)
	}
	// Re-insert aggressively while holding the popped bucket, mimicking the
	// discover loop (pop bucket, CKMS each member, insert under new keys).
	for i, v := range vals {
		if v != 100+i {
			t.Fatalf("bucket corrupted before inserts: %v", vals)
		}
		tr.Insert(50+i, v)
	}
	for i, v := range vals {
		if v != 100+i {
			t.Fatalf("bucket corrupted by inserts during iteration: index %d = %d", i, v)
		}
	}
	checkInvariants(t, tr)
}

// TestResetReusesSlabs proves the arena property: after Reset, refilling a
// tree of the same shape performs zero heap allocations and zero slab
// growth events.
func TestResetReusesSlabs(t *testing.T) {
	var rec Recorder
	tr := New[int, int](func(a, b int) int { return a - b }).Observe(&rec)
	fill := func() {
		for i := 0; i < 256; i++ {
			tr.Insert(i%37, i)
		}
		for {
			if _, _, ok := tr.PopMin(); !ok {
				break
			}
		}
		for i := 0; i < 256; i++ {
			tr.Insert(i%37, i)
		}
	}
	fill()
	grows := rec.SlabGrows.Load()
	if grows == 0 {
		t.Fatal("cold fill recorded no slab growth")
	}
	tr.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		fill()
		tr.Reset()
	})
	if allocs != 0 {
		t.Fatalf("warm refill allocated %.0f times per run, want 0", allocs)
	}
	if got := rec.SlabGrows.Load(); got != grows {
		t.Fatalf("warm refill grew slabs: %d -> %d", grows, got)
	}
}

// TestMemBytesTracksSlabs sanity-checks the O(1) footprint accounting:
// empty tree reports zero, filling grows it, Reset keeps it (memory is
// retained by design).
func TestMemBytesTracksSlabs(t *testing.T) {
	tr := New[int, int](func(a, b int) int { return a - b })
	if tr.MemBytes() != 0 {
		t.Fatalf("empty tree MemBytes = %d", tr.MemBytes())
	}
	for i := 0; i < 1000; i++ {
		tr.Insert(i%97, i)
	}
	full := tr.MemBytes()
	if full <= 0 {
		t.Fatalf("filled tree MemBytes = %d", full)
	}
	// 97 nodes * 16B + keys + bucket headers + ~1000 bucket slots: sanity
	// band, not an exact figure (append over-allocates capacity).
	if full < 97*16 || full > 1<<20 {
		t.Fatalf("MemBytes %d outside sanity band", full)
	}
	tr.Reset()
	if got := tr.MemBytes(); got != full {
		t.Fatalf("Reset changed MemBytes %d -> %d; slabs should be retained", full, got)
	}
}

// TestInterfaceCompliance pins both implementations to the engine-facing
// Interface at compile time.
func TestInterfaceCompliance(t *testing.T) {
	cmp := func(a, b int) int { return a - b }
	var _ Interface[int, int] = New[int, int](cmp)
	var _ Interface[int, int] = NewPointer[int, int](cmp)
}
