package avl

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int, int] {
	return New[int, int](func(a, b int) int { return a - b })
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Size() != 0 || tr.NumKeys() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree has nonzero size/keys/height")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree")
	}
	if _, _, ok := tr.PopMin(); ok {
		t.Error("PopMin on empty tree")
	}
	if _, ok := tr.Select(1); ok {
		t.Error("Select on empty tree")
	}
	if tr.Delete(3) {
		t.Error("Delete on empty tree")
	}
}

func TestInsertBucketsAndMin(t *testing.T) {
	tr := intTree()
	tr.Insert(5, 50)
	tr.Insert(3, 30)
	tr.Insert(5, 51)
	tr.Insert(8, 80)
	if tr.Size() != 4 || tr.NumKeys() != 3 {
		t.Fatalf("Size=%d NumKeys=%d, want 4,3", tr.Size(), tr.NumKeys())
	}
	k, vals, ok := tr.Min()
	if !ok || k != 3 || len(vals) != 1 || vals[0] != 30 {
		t.Fatalf("Min = %d %v %v", k, vals, ok)
	}
	vals, ok = tr.Get(5)
	if !ok || len(vals) != 2 {
		t.Fatalf("Get(5) = %v %v", vals, ok)
	}
	if _, ok := tr.Get(4); ok {
		t.Error("Get(4) should miss")
	}
}

func TestSelectCountsMultiplicity(t *testing.T) {
	tr := intTree()
	// Keys: 1 (x2), 2 (x3), 3 (x1). Ranks: 1,2 -> 1; 3,4,5 -> 2; 6 -> 3.
	for i, k := range []int{1, 1, 2, 2, 2, 3} {
		tr.Insert(k, i)
	}
	want := []int{1, 1, 2, 2, 2, 3}
	for r := 1; r <= 6; r++ {
		k, ok := tr.Select(r)
		if !ok || k != want[r-1] {
			t.Errorf("Select(%d) = %d %v, want %d", r, k, ok, want[r-1])
		}
	}
	if _, ok := tr.Select(0); ok {
		t.Error("Select(0) should fail")
	}
	if _, ok := tr.Select(7); ok {
		t.Error("Select(7) should fail")
	}
}

func TestRank(t *testing.T) {
	tr := intTree()
	for i, k := range []int{1, 1, 2, 2, 2, 5} {
		tr.Insert(k, i)
	}
	for _, c := range []struct{ k, want int }{{0, 0}, {1, 0}, {2, 2}, {3, 5}, {5, 5}, {9, 6}} {
		if got := tr.Rank(c.k); got != c.want {
			t.Errorf("Rank(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestPopMinDrains(t *testing.T) {
	tr := intTree()
	keys := []int{7, 3, 9, 3, 1, 7, 5}
	for i, k := range keys {
		tr.Insert(k, i)
	}
	var got []int
	for {
		k, vals, ok := tr.PopMin()
		if !ok {
			break
		}
		for range vals {
			got = append(got, k)
		}
	}
	want := append([]int(nil), keys...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	if tr.Size() != 0 {
		t.Error("tree not empty after drain")
	}
}

func TestDelete(t *testing.T) {
	tr := intTree()
	for i := 0; i < 64; i++ {
		tr.Insert(i, i)
	}
	// Delete interior keys with both children, leaves, and the root path.
	for _, k := range []int{31, 0, 63, 16, 48, 32} {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) = false", k)
		}
		if tr.Delete(k) {
			t.Fatalf("double Delete(%d) = true", k)
		}
		checkInvariants(t, tr)
	}
	if tr.Size() != 58 {
		t.Fatalf("Size = %d, want 58", tr.Size())
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	tr := intTree()
	for _, k := range []int{5, 1, 9, 3, 7} {
		tr.Insert(k, k)
	}
	var got []int
	tr.Ascend(func(k int, _ []int) bool {
		got = append(got, k)
		return true
	})
	want := []int{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend order %v, want %v", got, want)
		}
	}
	n := 0
	tr.Ascend(func(int, []int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

// checkInvariants verifies the AVL balance factor, the subtree sizes, the
// key ordering, and that the sentinel slot stays pristine.
func checkInvariants(t *testing.T, tr *Tree[int, int]) {
	t.Helper()
	if len(tr.nodes) > 0 && tr.nodes[0] != (node{}) {
		t.Fatalf("sentinel slot corrupted: %+v", tr.nodes[0])
	}
	var rec func(i int32) (h, sz int32)
	rec = func(i int32) (int32, int32) {
		if i == 0 {
			return 0, 0
		}
		n := tr.nodes[i]
		lh, ls := rec(n.left)
		rh, rs := rec(n.right)
		if d := lh - rh; d < -1 || d > 1 {
			t.Fatalf("unbalanced node key=%d: %d vs %d", tr.keys[i], lh, rh)
		}
		if n.height != 1+max(lh, rh) {
			t.Fatalf("bad height at key=%d", tr.keys[i])
		}
		if n.size != int32(len(tr.vals[i]))+ls+rs {
			t.Fatalf("bad size at key=%d: %d != %d+%d+%d", tr.keys[i], n.size, len(tr.vals[i]), ls, rs)
		}
		if n.left != 0 && tr.keys[n.left] >= tr.keys[i] {
			t.Fatalf("order violation at key=%d", tr.keys[i])
		}
		if n.right != 0 && tr.keys[n.right] <= tr.keys[i] {
			t.Fatalf("order violation at key=%d", tr.keys[i])
		}
		return n.height, n.size
	}
	rec(tr.root)
}

// TestInvariantsUnderRandomOps is a property test: after any random mix of
// inserts, pop-mins and deletes, the AVL invariants hold and Select agrees
// with a sorted-slice model.
func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := intTree()
		var model []int // sorted multiset of keys
		for op := 0; op < 300; op++ {
			switch r.Intn(4) {
			case 0, 1: // insert
				k := r.Intn(40)
				tr.Insert(k, op)
				i := sort.SearchInts(model, k)
				model = append(model, 0)
				copy(model[i+1:], model[i:])
				model[i] = k
			case 2: // pop min bucket
				k, vals, ok := tr.PopMin()
				if !ok {
					if len(model) != 0 {
						return false
					}
					continue
				}
				if k != model[0] {
					return false
				}
				cnt := 0
				for cnt < len(model) && model[cnt] == k {
					cnt++
				}
				if len(vals) != cnt {
					return false
				}
				model = model[cnt:]
			case 3: // delete random key
				if len(model) == 0 {
					continue
				}
				k := model[r.Intn(len(model))]
				if !tr.Delete(k) {
					return false
				}
				lo := sort.SearchInts(model, k)
				hi := lo
				for hi < len(model) && model[hi] == k {
					hi++
				}
				model = append(model[:lo], model[hi:]...)
			}
		}
		checkInvariants(t, tr)
		if tr.Size() != len(model) {
			return false
		}
		for r2 := 1; r2 <= len(model); r2++ {
			k, ok := tr.Select(r2)
			if !ok || k != model[r2-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLogarithmicHeight checks that n sequential inserts produce height
// O(log n) (AVL bound: 1.44 log2(n+2)).
func TestLogarithmicHeight(t *testing.T) {
	tr := intTree()
	n := 1 << 12
	for i := 0; i < n; i++ {
		tr.Insert(i, i)
	}
	bound := int(1.45*math.Log2(float64(n+2))) + 2
	if tr.Height() > bound {
		t.Fatalf("height %d exceeds AVL bound %d for %d sequential inserts", tr.Height(), bound, n)
	}
}
