package faultinject

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

func testFile() *checkpoint.File {
	return &checkpoint.File{
		Algo:        "disc-all",
		Fingerprint: 0x0123456789abcdef,
		MinSup:      2,
		Partitions: []checkpoint.Partition{
			{
				Key: seq.MustParsePattern("(3)"),
				Patterns: []mining.PatternCount{
					{Pattern: seq.MustParsePattern("(3)(4)"), Support: 2},
				},
			},
		},
	}
}

func TestFSNilInjectorIsPassthrough(t *testing.T) {
	var in *Injector
	if got := in.FS(checkpoint.OS); got != checkpoint.OS {
		t.Fatal("nil injector must return the wrapped FS unchanged")
	}
	if got := in.FS(nil); got != checkpoint.OS {
		t.Fatal("nil injector over nil FS must resolve to checkpoint.OS")
	}
}

func TestStorageENOSPCByteBudget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "0123456789abcdef.ckpt")
	in := New(42).Arm(StorageENOSPC, Spec{AfterN: 64})
	fs := in.FS(nil)

	_, err := testFile().WriteFileFS(fs, path)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC once the byte budget is spent, got %v", err)
	}
	if in.Fired(StorageENOSPC) == 0 {
		t.Fatal("the ENOSPC arm must record that it fired")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("no file may appear under the final name after a failed write (stat err: %v)", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("the torn .tmp staging file must be cleaned up (stat err: %v)", err)
	}

	// The budget is cumulative across files on one FS, like a shared
	// volume: a later, unrelated write on the same FS also has no room.
	_, err = testFile().WriteFileFS(fs, filepath.Join(dir, "fedcba9876543210.ckpt"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("a full volume stays full for the next file too, got %v", err)
	}
}

func TestStorageENOSPCBudgetLargeEnough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "0123456789abcdef.ckpt")
	fs := New(42).Arm(StorageENOSPC, Spec{AfterN: 1 << 20}).FS(nil)
	if _, err := testFile().WriteFileFS(fs, path); err != nil {
		t.Fatalf("a write within the byte budget must succeed: %v", err)
	}
	if _, err := checkpoint.ReadFileFS(fs, path); err != nil {
		t.Fatalf("and decode cleanly: %v", err)
	}
}

func TestStorageTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "0123456789abcdef.ckpt")
	in := New(7).Arm(StorageTorn, Spec{Prob: 1})
	_, err := testFile().WriteFileFS(in.FS(nil), path)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("want ErrShortWrite from a torn write, got %v", err)
	}
	if in.Fired(StorageTorn) == 0 {
		t.Fatal("the torn-write arm must record that it fired")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("a torn write must never reach the final name (stat err: %v)", err)
	}
}

func TestStorageSyncError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "0123456789abcdef.ckpt")
	in := New(7).Arm(StorageSync, Spec{Prob: 1})
	_, err := testFile().WriteFileFS(in.FS(nil), path)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO from a failing fsync, got %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("an unsynced write must never be renamed into place (stat err: %v)", err)
	}
}

func TestStorageBitFlipCaughtByCRC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "0123456789abcdef.ckpt")
	in := New(11).Arm(StorageBitFlip, Spec{Prob: 1})
	// The flip is silent: the write path reports success end to end.
	if _, err := testFile().WriteFileFS(in.FS(nil), path); err != nil {
		t.Fatalf("a bit flip must be invisible to the writer: %v", err)
	}
	if in.Fired(StorageBitFlip) == 0 {
		t.Fatal("the bit-flip arm must record that it fired")
	}
	_, err := checkpoint.ReadFile(path)
	if !checkpoint.Undecodable(err) {
		t.Fatalf("the CRC must catch the flipped bit on read, got %v", err)
	}

	// Determinism: the same seed flips the same bit, byte for byte.
	path2 := filepath.Join(dir, "two", "0123456789abcdef.ckpt")
	if err := os.Mkdir(filepath.Dir(path2), 0o755); err != nil {
		t.Fatal(err)
	}
	in2 := New(11).Arm(StorageBitFlip, Spec{Prob: 1})
	if _, err := testFile().WriteFileFS(in2.FS(nil), path2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("the same seed must produce the same corruption")
	}
}
