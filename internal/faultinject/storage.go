// Storage faults: a fault-injecting implementation of the checkpoint
// package's filesystem seam. FS wraps a real (or further-wrapped)
// checkpoint.FS so that the durable-state plane's writes experience the
// disk failures production eventually sees — a volume running out of
// space mid-write, a torn write persisting only a prefix, an fsync that
// reports EIO, a bit flipped between the buffer and the platter — all
// deterministically from the injector's seed, so every resilience
// failure the grids find is reproducible.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"

	"github.com/disc-mining/disc/internal/checkpoint"
)

// The storage injection points.
const (
	// StorageENOSPC makes durable-state writes fail with ENOSPC.
	// AfterN is reinterpreted as a byte budget: the FS accepts AfterN
	// bytes in total (across all files it creates), then every further
	// write persists only the prefix that fits and fails — a disk
	// filling up mid-ledger. Prob mode instead fails whole writes at
	// seed-chosen sites, leaving nothing of the failing write.
	StorageENOSPC Point = "storage-enospc"
	// StorageTorn makes a chosen write persist only its first half and
	// return io.ErrShortWrite — a torn write.
	StorageTorn Point = "storage-torn"
	// StorageSync makes a chosen Sync report EIO without flushing — the
	// write-back failure mode journalling filesystems surface at fsync.
	StorageSync Point = "storage-sync"
	// StorageBitFlip flips one seed-chosen bit of a chosen write while
	// reporting success — silent corruption on the way to the platter,
	// detectable only by the CRC when the file is next read.
	StorageBitFlip Point = "storage-bitflip"
)

// faultFS threads every write of a wrapped FS through the storage
// points. The ENOSPC byte budget is cumulative across all files created
// by one faultFS, like a shared volume.
type faultFS struct {
	in    *Injector
	next  checkpoint.FS
	bytes atomic.Int64 // total bytes accepted, for the ENOSPC budget
}

// FS wraps next (nil = the real filesystem) with the storage fault
// points. A nil injector returns next unwrapped, so production paths
// pay nothing.
func (in *Injector) FS(next checkpoint.FS) checkpoint.FS {
	if next == nil {
		next = checkpoint.OS
	}
	if in == nil {
		return next
	}
	return &faultFS{in: in, next: next}
}

func (fs *faultFS) Create(path string) (checkpoint.FileWriter, error) {
	w, err := fs.next.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, path: path, w: w}, nil
}

func (fs *faultFS) Open(path string) (io.ReadCloser, error) { return fs.next.Open(path) }
func (fs *faultFS) Rename(oldpath, newpath string) error    { return fs.next.Rename(oldpath, newpath) }
func (fs *faultFS) Remove(path string) error                { return fs.next.Remove(path) }
func (fs *faultFS) SyncDir(dir string) error                { return fs.next.SyncDir(dir) }

// faultFile is one write handle under fault injection. Sites are
// "<basename>:w<n>" per write and "<basename>:sync", so Prob-armed
// points pick deterministic victims independent of scheduling.
type faultFile struct {
	fs     *faultFS
	path   string
	w      checkpoint.FileWriter
	writes int
}

func (f *faultFile) site(op string) string {
	return fmt.Sprintf("%s:%s", filepath.Base(f.path), op)
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.writes++
	site := f.site(fmt.Sprintf("w%d", f.writes))

	// Byte-budget ENOSPC: accept what fits, fail the rest. When a
	// budget is armed the Add below accounts for this write; otherwise
	// accounting happens after the underlying write succeeds.
	a := f.fs.in.lookup(StorageENOSPC)
	budgeted := a != nil && a.spec.AfterN > 0
	if budgeted {
		budget := int64(a.spec.AfterN)
		total := f.fs.bytes.Add(int64(len(p)))
		if total > budget {
			room := budget - (total - int64(len(p)))
			if room < 0 {
				room = 0
			}
			n, err := f.w.Write(p[:room])
			if err == nil {
				a.fired.Add(1)
				err = &os.PathError{Op: "write", Path: f.path, Err: syscall.ENOSPC}
			}
			return n, err
		}
	}
	if f.fs.in.Fire(StorageENOSPC, site) {
		return 0, &os.PathError{Op: "write", Path: f.path, Err: syscall.ENOSPC}
	}
	if f.fs.in.Fire(StorageTorn, site) {
		n, err := f.w.Write(p[:len(p)/2])
		if err == nil {
			err = io.ErrShortWrite
		}
		return n, err
	}
	if f.fs.in.Fire(StorageBitFlip, site) {
		// Flip one seed-chosen bit in a copy and report success: the
		// caller believes the write was clean.
		flipped := make([]byte, len(p))
		copy(flipped, p)
		if len(flipped) > 0 {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d\x00%s", f.fs.in.seed, site)
			bit := h.Sum64() % uint64(len(flipped)*8)
			flipped[bit/8] ^= 1 << (bit % 8)
		}
		n, err := f.w.Write(flipped)
		if !budgeted && n > 0 {
			f.fs.bytes.Add(int64(n))
		}
		return n, err
	}
	n, err := f.w.Write(p)
	if !budgeted && n > 0 {
		f.fs.bytes.Add(int64(n))
	}
	return n, err
}

func (f *faultFile) Sync() error {
	if f.fs.in.Fire(StorageSync, f.site("sync")) {
		return &os.PathError{Op: "sync", Path: f.path, Err: syscall.EIO}
	}
	return f.w.Sync()
}

func (f *faultFile) Close() error { return f.w.Close() }
