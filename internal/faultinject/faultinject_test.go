package faultinject

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Fire(WorkerPanic, "x") {
		t.Error("nil injector fired")
	}
	if in.Fired(WorkerPanic) != 0 {
		t.Error("nil injector counted fires")
	}
	in.Panic(WorkerPanic, "x") // must not panic
	if in.Cancel(CtxCancel, "x") {
		t.Error("nil injector cancelled")
	}
	r := strings.NewReader("abc")
	if in.FlakyReader(r) != io.Reader(r) {
		t.Error("nil injector wrapped the reader")
	}
}

func TestDisarmedPointNeverFires(t *testing.T) {
	in := New(1).Arm(WorkerPanic, Spec{Prob: 1})
	if in.Fire(CtxCancel, "x") {
		t.Error("disarmed point fired")
	}
	if !in.Fire(WorkerPanic, "x") {
		t.Error("armed Prob=1 point did not fire")
	}
}

// TestProbDeterminism: the same (seed, point, site) always decides the
// same way, and different seeds decide differently somewhere.
func TestProbDeterminism(t *testing.T) {
	sites := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	decide := func(seed int64) []bool {
		in := New(seed).Arm(WorkerPanic, Spec{Prob: 0.5})
		out := make([]bool, len(sites))
		for i, s := range sites {
			out[i] = in.Fire(WorkerPanic, s)
		}
		return out
	}
	a, b := decide(42), decide(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed decided differently at site %q", sites[i])
		}
	}
	diff := false
	other := decide(43)
	for i := range a {
		if a[i] != other[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("seeds 42 and 43 produced identical decisions over 10 sites (suspicious hash)")
	}
}

func TestProbBounds(t *testing.T) {
	in := New(7).Arm(WorkerPanic, Spec{Prob: 1})
	for _, s := range []string{"x", "y", "z"} {
		if !in.Fire(WorkerPanic, s) {
			t.Errorf("Prob=1 did not fire at %q", s)
		}
	}
	in = New(7).Arm(WorkerPanic, Spec{Prob: 0})
	for _, s := range []string{"x", "y", "z"} {
		if in.Fire(WorkerPanic, s) {
			t.Errorf("Prob=0 fired at %q", s)
		}
	}
}

func TestAfterNFiresExactlyOnce(t *testing.T) {
	in := New(1).Arm(CtxCancel, Spec{AfterN: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Fire(CtxCancel, "site") {
			fired++
			if i != 2 {
				t.Errorf("fired on hit %d, want hit 3", i+1)
			}
		}
	}
	if fired != 1 || in.Fired(CtxCancel) != 1 {
		t.Errorf("fired %d times (counter %d), want exactly once", fired, in.Fired(CtxCancel))
	}
}

func TestPanicThrowsFault(t *testing.T) {
	in := New(1).Arm(WorkerPanic, Spec{AfterN: 1})
	defer func() {
		v := recover()
		f, ok := v.(*Fault)
		if !ok || f.Point != WorkerPanic || f.Site != "p" {
			t.Errorf("recovered %#v, want *Fault{WorkerPanic, p}", v)
		}
	}()
	in.Panic(WorkerPanic, "p")
	t.Fatal("Panic did not panic")
}

func TestCancelInvokesCallback(t *testing.T) {
	called := 0
	in := New(1).Arm(CtxCancel, Spec{AfterN: 1}).OnCancel(func() { called++ })
	if !in.Cancel(CtxCancel, "s") {
		t.Fatal("AfterN=1 did not fire")
	}
	if in.Cancel(CtxCancel, "s") {
		t.Fatal("fired twice")
	}
	if called != 1 {
		t.Fatalf("cancel callback ran %d times", called)
	}
}

func TestFlakyReader(t *testing.T) {
	in := New(1).Arm(DataRead, Spec{AfterN: 2})
	r := in.FlakyReader(strings.NewReader("hello"))
	buf := make([]byte, 2)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("first read failed: %v", err)
	}
	_, err := r.Read(buf)
	var te *TransientError
	if !errors.As(err, &te) || !te.Transient() || te.Call != 2 {
		t.Fatalf("second read err = %v, want TransientError{Call: 2}", err)
	}
	// Subsequent reads pass through again.
	rest, err := io.ReadAll(r)
	if err != nil || string(buf[:0])+"llo" != "llo" || !strings.HasSuffix("hello", string(rest)) {
		t.Fatalf("post-fault reads: %q, %v", rest, err)
	}
}
