// Package faultinject provides seed-driven deterministic fault injection
// for the resilience tests: the engine and the readers expose named
// injection points, and an Injector armed with a seed decides — purely as
// a function of (seed, point, site) — whether a fault fires there. The
// same seed always injects the same faults at the same sites, so every
// resilience failure found by the differential grid is reproducible.
//
// The production code paths carry a nil *Injector; every method is
// nil-receiver safe and compiles to a single pointer check there, so the
// injection points cost nothing when disarmed.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
)

// Point names one fault-injection site class.
type Point string

// The injection points wired into the repository.
const (
	// WorkerPanic panics inside a partition worker at a partition
	// boundary — exercising the engine's panic-containment path.
	WorkerPanic Point = "worker-panic"
	// CtxCancel invokes the injector's registered cancel function at a
	// partition boundary — simulating a timeout or SIGINT landing at a
	// random point of the run.
	CtxCancel Point = "ctx-cancel"
	// DataRead makes a wrapped dataset reader return a transient error —
	// exercising the retry/backoff path of internal/data.
	DataRead Point = "data-read"
	// ShardDrop makes a cluster worker abort the shard request's
	// connection mid-flight (no response at all) — exercising the
	// coordinator's transport-failure retry and reschedule path.
	ShardDrop Point = "shard-drop"
	// ShardSlow stalls a cluster worker before it starts mining a shard —
	// exercising shard timeouts and slow-worker rescheduling.
	ShardSlow Point = "shard-slow"
	// ShardHang stalls a cluster worker's shard request until the request
	// context is canceled — a straggler that never finishes on its own,
	// exercising hedged dispatch and heartbeat-TTL expiry cancellation
	// (unlike ShardSlow, which unsticks itself after a bounded stall).
	ShardHang Point = "shard-hang"
	// CoordinatorCrash aborts the coordinator right after it persists a
	// shard-ledger transition — simulating the coordinator process dying
	// (kill -9) at that instant; recovery drills restart a coordinator
	// over the surviving ledger.
	CoordinatorCrash Point = "coordinator-crash"
)

// Spec arms one point. Exactly one trigger mode is used:
//
//   - Prob > 0: the point fires at a given site with probability Prob,
//     decided by hashing (seed, point, site) — fully deterministic and
//     independent of scheduling order.
//   - AfterN > 0: the point fires exactly once, on its AfterN-th hit.
//     The count is deterministic, but under parallel execution the site
//     receiving the N-th hit may vary between runs.
type Spec struct {
	Prob   float64
	AfterN int
}

type arm struct {
	spec  Spec
	hits  atomic.Int64
	fired atomic.Int64
}

// Injector decides, deterministically from its seed, which armed points
// fire at which sites. A nil Injector is valid and never fires.
type Injector struct {
	seed     int64
	mu       sync.Mutex
	arms     map[Point]*arm
	onCancel func()
}

// New returns an injector with no armed points.
func New(seed int64) *Injector {
	return &Injector{seed: seed, arms: map[Point]*arm{}}
}

// Arm arms a point and returns the injector for chaining. Re-arming a
// point replaces its spec and resets its counters.
func (in *Injector) Arm(p Point, s Spec) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.arms[p] = &arm{spec: s}
	return in
}

// OnCancel registers the function the CtxCancel point invokes (typically
// the context.CancelFunc of the run under test).
func (in *Injector) OnCancel(fn func()) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.onCancel = fn
	return in
}

func (in *Injector) lookup(p Point) *arm {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.arms[p]
}

// Fire reports whether point p fires at site. Nil injectors and disarmed
// points never fire.
func (in *Injector) Fire(p Point, site string) bool {
	if in == nil {
		return false
	}
	a := in.lookup(p)
	if a == nil {
		return false
	}
	if n := a.spec.AfterN; n > 0 {
		if a.hits.Add(1) != int64(n) {
			return false
		}
		a.fired.Add(1)
		return true
	}
	if a.spec.Prob <= 0 {
		return false
	}
	a.hits.Add(1)
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%s", in.seed, p, site)
	if float64(h.Sum64()%1_000_000)/1_000_000 >= a.spec.Prob {
		return false
	}
	a.fired.Add(1)
	return true
}

// Fired returns how many times point p has fired.
func (in *Injector) Fired(p Point) int {
	if in == nil {
		return 0
	}
	a := in.lookup(p)
	if a == nil {
		return 0
	}
	return int(a.fired.Load())
}

// Fault is the panic value thrown by Panic, carrying the point and site
// so contained-panic errors identify the injection.
type Fault struct {
	Point Point
	Site  string
}

// Error makes a Fault readable when it surfaces inside a contained-panic
// error message.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %q", f.Point, f.Site)
}

// Panic panics with a *Fault when point p fires at site, and is a no-op
// otherwise.
func (in *Injector) Panic(p Point, site string) {
	if in.Fire(p, site) {
		panic(&Fault{Point: p, Site: site})
	}
}

// Cancel invokes the registered cancel function when point p fires at
// site (no-op without a registered function), and reports whether it
// fired.
func (in *Injector) Cancel(p Point, site string) bool {
	if !in.Fire(p, site) {
		return false
	}
	in.mu.Lock()
	fn := in.onCancel
	in.mu.Unlock()
	if fn != nil {
		fn()
	}
	return true
}

// TransientError is the injected dataset-read error. It implements the
// Transient() contract internal/data retries on.
type TransientError struct {
	Call int // 1-based Read call number that failed
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("faultinject: injected transient read error (call %d)", e.Call)
}

// Transient marks the error as retryable for internal/data.
func (e *TransientError) Transient() bool { return true }

// flakyReader injects TransientErrors into an io.Reader's Read calls via
// the DataRead point, the call number serving as the site.
type flakyReader struct {
	in    *Injector
	r     io.Reader
	calls int
}

// FlakyReader wraps r so that Read calls chosen by the DataRead point
// fail with a *TransientError. With a nil injector it returns r
// unchanged.
func (in *Injector) FlakyReader(r io.Reader) io.Reader {
	if in == nil {
		return r
	}
	return &flakyReader{in: in, r: r}
}

func (f *flakyReader) Read(p []byte) (int, error) {
	f.calls++
	if f.in.Fire(DataRead, fmt.Sprintf("read-%d", f.calls)) {
		return 0, &TransientError{Call: f.calls}
	}
	return f.r.Read(p)
}
