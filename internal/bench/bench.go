// Package bench regenerates every table and figure of the evaluation
// section (§4) of Chiu, Wu & Chen (ICDE 2004):
//
//	Table 5   strategy matrix of the five algorithms
//	Figure 8  runtime vs database size (50K-500K customers, minsup 0.0025)
//	Figure 9  runtime vs minimum support (dense 10K database)
//	Table 12  average NRR per partition level vs minimum support
//	Table 13  Pseudo/DISC-all runtime ratio vs minimum support
//	Table 14  average NRR per level vs θ (avg transactions per customer)
//	Figure 10 runtime vs θ for PrefixSpan, Pseudo, DISC-all, Dynamic
//
// Workloads come from the internal IBM-Quest-style generator with the
// paper's Table 11 parameters. A Scale factor shrinks the customer counts
// (δ/|DB| ratios and all other parameters are preserved) so the suite runs
// on a laptop; Scale=1 reproduces the paper-sized runs. Absolute times
// differ from the paper's 2.8 GHz Pentium 4; the reproduction targets are
// the curve shapes and ratios. Every measurement also cross-checks that
// all algorithms in the experiment found the same number of frequent
// sequences.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/gen"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/prefixspan"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies the paper's customer counts (1.0 = paper size).
	Scale float64
	// Seed feeds the data generator.
	Seed int64
	// Workers bounds the partition worker pool of the DISC-all variants
	// (0 = one per CPU). Results are identical at every setting; only the
	// timings change.
	Workers int
	// Progress, when non-nil, receives one line per measurement.
	Progress io.Writer

	// Sizes, Fracs and Thetas override the paper sweeps (for tests and
	// partial runs); nil selects the paper's values.
	Sizes  []int
	Fracs  []float64
	Thetas []float64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.1
	}
	return c
}

// Measurement is one (algorithm, workload point) timing.
type Measurement struct {
	Experiment string
	Algo       string
	X          float64 // the sweep variable (customers, minsup, θ, or workers)
	Seconds    float64
	Patterns   int
	Workers    int // worker pool size the run used (1 for serial algorithms)
}

// Table is a rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Report is the outcome of one experiment.
type Report struct {
	ID           string
	Title        string
	PaperShape   string // what the paper's version of this table/figure shows
	Tables       []Table
	Measurements []Measurement
}

// Render writes the report as plain text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(w, "paper: %s\n", r.PaperShape)
	for _, t := range r.Tables {
		fmt.Fprintf(w, "\n%s\n", t.Title)
		widths := make([]int, len(t.Header))
		for i, h := range t.Header {
			widths[i] = len(h)
		}
		for _, row := range t.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			parts := make([]string, len(cells))
			for i, c := range cells {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			}
			fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		}
		line(t.Header)
		for _, row := range t.Rows {
			line(row)
		}
	}
	fmt.Fprintln(w)
}

// Experiment is one runnable paper table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Report, error)
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"table5", "Strategy matrix of the existing algorithms", Table5},
		{"fig8", "Runtime vs database size", Fig8},
		{"fig9", "Runtime vs minimum support (dense database)", Fig9},
		{"table12", "Average NRR per level vs minimum support", Table12},
		{"table13", "Pseudo/DISC-all runtime ratio vs minimum support", Table13},
		{"table14", "Average NRR per level vs theta", Table14},
		{"fig10", "Runtime vs theta (incl. Dynamic DISC-all)", Fig10},
		{"ablation", "DISC-all design-choice ablation (extra, not in the paper)", Ablation},
		{"speedup", "DISC-all parallel speedup vs worker count (extra, not in the paper)", Speedup},
	}
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// scaledMinSup converts a relative threshold to δ with a floor of 2: at
// the paper's scale the smallest δ is 25, and δ=1 (every subsequence of
// every customer "frequent") only arises from extreme down-scaling.
func scaledMinSup(frac float64, n int) int {
	d := mining.AbsSupport(frac, n)
	if d < 2 {
		d = 2
	}
	return d
}

// Note on scaling: the Quest pattern pools stay at the paper's defaults
// (5000 sequences / 25000 itemsets) at every scale. With fixed pools both
// the minimum support count δ = frac·n and the expected support of each
// planted pattern (≈ n·patternsPerCustomer/poolSize) scale linearly with
// the database size, so the δ-to-planted-support ratio — which determines
// how much of the planted pattern tail is frequent, i.e. the workload
// shape — is preserved across scales.

// discMiner returns a fresh static DISC-all miner with the given worker
// pool bound.
func discMiner(workers int) *core.Miner {
	m := core.New()
	m.Opts.Workers = workers
	return m
}

// dynamicMiner is discMiner for the Dynamic variant.
func dynamicMiner(workers int) *core.Dynamic {
	m := core.NewDynamic()
	m.Opts.Workers = workers
	return m
}

// miners returns fresh instances per run (DISC miners carry stats).
func competitorSet(workers int, withDynamic bool) []mining.Miner {
	ms := []mining.Miner{discMiner(workers), prefixspan.Basic{}, prefixspan.Pseudo{}}
	if withDynamic {
		ms = append(ms, dynamicMiner(workers))
	}
	return ms
}

// minerWorkers reports the worker pool size a miner will run with: the
// resolved Options.Workers for the parallel DISC-all variants, 1 for the
// serial baselines.
func minerWorkers(m mining.Miner) int {
	switch dm := m.(type) {
	case *core.Miner:
		return dm.Opts.EffectiveWorkers()
	case *core.Dynamic:
		return dm.Opts.EffectiveWorkers()
	}
	return 1
}

// measure runs every miner on the workload and cross-checks that all found
// the same number of patterns.
func measure(cfg Config, exp string, x float64, db mining.Database, minSup int, miners []mining.Miner) ([]Measurement, error) {
	out := make([]Measurement, 0, len(miners))
	patterns := -1
	for _, m := range miners {
		start := time.Now()
		res, err := m.Mine(db, minSup)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", m.Name(), exp, err)
		}
		sec := time.Since(start).Seconds()
		if patterns == -1 {
			patterns = res.Len()
		} else if res.Len() != patterns {
			return nil, fmt.Errorf("%s: %s found %d patterns, expected %d (x=%v, δ=%d)",
				exp, m.Name(), res.Len(), patterns, x, minSup)
		}
		out = append(out, Measurement{Experiment: exp, Algo: m.Name(), X: x, Seconds: sec,
			Patterns: res.Len(), Workers: minerWorkers(m)})
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%s x=%v %s: %.3fs (%d patterns, δ=%d)\n", exp, x, m.Name(), sec, patterns, minSup)
		}
	}
	return out, nil
}

// seriesTable renders measurements as an X-by-algorithm seconds table.
func seriesTable(title, xName string, ms []Measurement) Table {
	algos := []string{}
	seen := map[string]bool{}
	xs := []float64{}
	xseen := map[float64]bool{}
	cells := map[string]string{}
	for _, m := range ms {
		if !seen[m.Algo] {
			seen[m.Algo] = true
			algos = append(algos, m.Algo)
		}
		if !xseen[m.X] {
			xseen[m.X] = true
			xs = append(xs, m.X)
		}
		cells[fmt.Sprintf("%v/%s", m.X, m.Algo)] = fmt.Sprintf("%.3f", m.Seconds)
	}
	sort.Float64s(xs)
	t := Table{Title: title, Header: append([]string{xName}, algos...)}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, a := range algos {
			row = append(row, cells[fmt.Sprintf("%v/%s", x, a)])
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%v", x)
	return s
}

// Table5 prints the paper's strategy matrix (static content).
func Table5(cfg Config) (*Report, error) {
	r := &Report{
		ID:         "table5",
		Title:      "The existing algorithms and strategies",
		PaperShape: "DISC-all is the only algorithm using all four strategies",
	}
	yes, no := "x", "-"
	r.Tables = []Table{{
		Title:  "strategy matrix",
		Header: []string{"Algorithm", "CandidatePruning", "DbPartitioning", "CustSeqReducing", "DISC"},
		Rows: [][]string{
			{"GSP", yes, no, no, no},
			{"SPADE", yes, yes, no, no},
			{"SPAM", yes, yes, no, no},
			{"PrefixSpan", yes, yes, yes, no},
			{"DISC-all", yes, yes, yes, yes},
		},
	}}
	return r, nil
}

// fig8Sizes returns the §4.1 database-size sweep, scaled.
func fig8Sizes(scale float64) []int {
	base := []int{50000, 100000, 200000, 300000, 400000, 500000}
	out := make([]int, 0, len(base))
	for _, n := range base {
		s := int(float64(n) * scale)
		if s < 200 {
			s = 200
		}
		out = append(out, s)
	}
	return out
}

// Fig8 regenerates Figure 8: runtime vs database size at minsup 0.0025 with
// the Table 11 parameters.
func Fig8(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:         "fig8",
		Title:      "Comparisons on database sizes (minsup 0.0025)",
		PaperShape: "DISC-all fastest at every size; its advantage over PrefixSpan/Pseudo grows with database size",
	}
	sizes := cfg.Sizes
	if sizes == nil {
		sizes = fig8Sizes(cfg.Scale)
	}
	for _, n := range sizes {
		c := gen.PaperDefaults(n)
		c.Seed = cfg.Seed
		db, err := gen.Generate(c)
		if err != nil {
			return nil, err
		}
		minSup := scaledMinSup(0.0025, n)
		ms, err := measure(cfg, "fig8", float64(n), db, minSup, competitorSet(cfg.Workers, false))
		if err != nil {
			return nil, err
		}
		r.Measurements = append(r.Measurements, ms...)
	}
	r.Tables = []Table{seriesTable("seconds by database size", "customers", r.Measurements)}
	return r, nil
}

// fig9MinSups is the §4.1 threshold sweep.
func fig9MinSups() []float64 {
	return []float64{0.02, 0.0175, 0.015, 0.0125, 0.01, 0.0075, 0.005, 0.0025}
}

func (c Config) fracs() []float64 {
	if c.Fracs != nil {
		return c.Fracs
	}
	return fig9MinSups()
}

func (c Config) thetas() []float64 {
	if c.Thetas != nil {
		return c.Thetas
	}
	return thetaSweep()
}

func denseDB(cfg Config) (mining.Database, error) {
	n := int(10000 * cfg.Scale)
	if n < 200 {
		n = 200
	}
	c := gen.DenseDefaults(n)
	c.Seed = cfg.Seed
	return gen.Generate(c)
}

// Fig9 regenerates Figure 9: runtime vs minimum support on the dense
// (slen=tlen=seq.patlen=8) database.
func Fig9(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	db, err := denseDB(cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:         "fig9",
		Title:      "Comparisons on different minimum supports (dense 10K-scale database)",
		PaperShape: "DISC-all fastest across 0.02 down to 0.0025; all runtimes grow steeply as the threshold drops",
	}
	for _, frac := range cfg.fracs() {
		minSup := scaledMinSup(frac, len(db))
		ms, err := measure(cfg, "fig9", frac, db, minSup, competitorSet(cfg.Workers, false))
		if err != nil {
			return nil, err
		}
		r.Measurements = append(r.Measurements, ms...)
	}
	r.Tables = []Table{seriesTable("seconds by minimum support", "minsup", r.Measurements)}
	return r, nil
}

// Table12 regenerates Table 12: average NRR per level vs minimum support.
func Table12(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	db, err := denseDB(cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:         "table12",
		Title:      "Average NRR under different minimum supports",
		PaperShape: "NRR small at the original database and level 1, rising toward ~0.9 at deeper levels; deep levels appear only at low thresholds",
	}
	t := Table{Title: "average NRR by level", Header: []string{"minsup", "Original", "1", "2", "3", "4", "5", "6", "7", "8"}}
	m := discMiner(cfg.Workers)
	for _, frac := range cfg.fracs() {
		minSup := scaledMinSup(frac, len(db))
		res, err := m.Mine(db, minSup)
		if err != nil {
			return nil, err
		}
		nrr := mining.NRRByLevel(res, len(db))
		row := []string{trimFloat(frac)}
		for lvl := 0; lvl <= 8; lvl++ {
			if lvl < len(nrr) && nrr[lvl] > 0 {
				row = append(row, fmt.Sprintf("%.4f", nrr[lvl]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "table12 minsup=%v: %d patterns, %d levels\n", frac, res.Len(), len(nrr))
		}
	}
	r.Tables = []Table{t}
	return r, nil
}

// Table13 regenerates Table 13: the Pseudo / DISC-all runtime ratio per
// minimum support on the dense database.
func Table13(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	db, err := denseDB(cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:         "table13",
		Title:      "The ratio of Pseudo to DISC-all",
		PaperShape: "ratio above 1 everywhere, peaking (~8x) at moderate thresholds around 0.0075-0.01",
	}
	t := Table{Title: "runtime ratio", Header: []string{"minsup", "Pseudo(s)", "DISC-all(s)", "Pseudo/DISC-all"}}
	for _, frac := range cfg.fracs() {
		minSup := scaledMinSup(frac, len(db))
		ms, err := measure(cfg, "table13", frac, db, minSup,
			[]mining.Miner{prefixspan.Pseudo{}, discMiner(cfg.Workers)})
		if err != nil {
			return nil, err
		}
		r.Measurements = append(r.Measurements, ms...)
		ratio := ms[0].Seconds / ms[1].Seconds
		t.Rows = append(t.Rows, []string{
			trimFloat(frac),
			fmt.Sprintf("%.3f", ms[0].Seconds),
			fmt.Sprintf("%.3f", ms[1].Seconds),
			fmt.Sprintf("%.3f", ratio),
		})
	}
	r.Tables = []Table{t}
	return r, nil
}

// thetaSweep is the §4.3 sweep of average transactions per customer.
func thetaSweep() []float64 { return []float64{10, 15, 20, 25, 30, 35, 40} }

func thetaDB(cfg Config, theta float64) (mining.Database, error) {
	n := int(50000 * cfg.Scale)
	if n < 200 {
		n = 200
	}
	c := gen.PaperDefaults(n)
	c.SLen = theta
	c.Seed = cfg.Seed
	return gen.Generate(c)
}

// Table14 regenerates Table 14: average NRR per level vs θ at minsup 0.005.
func Table14(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:         "table14",
		Title:      "Average NRR under different thetas (minsup 0.005)",
		PaperShape: "level-2 NRR decreases as theta grows (0.83 at θ=10 down to ~0.2 at θ=40); deeper levels stay high",
	}
	t := Table{Title: "average NRR by level", Header: []string{"theta", "Original", "1", "2", "3", "4", "5", "6"}}
	m := discMiner(cfg.Workers)
	for _, theta := range cfg.thetas() {
		db, err := thetaDB(cfg, theta)
		if err != nil {
			return nil, err
		}
		minSup := scaledMinSup(0.005, len(db))
		res, err := m.Mine(db, minSup)
		if err != nil {
			return nil, err
		}
		nrr := mining.NRRByLevel(res, len(db))
		row := []string{trimFloat(theta)}
		for lvl := 0; lvl <= 6; lvl++ {
			if lvl < len(nrr) && nrr[lvl] > 0 {
				row = append(row, fmt.Sprintf("%.4f", nrr[lvl]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "table14 theta=%v: %d patterns\n", theta, res.Len())
		}
	}
	r.Tables = []Table{t}
	return r, nil
}

// Fig10 regenerates Figure 10: runtime vs θ for PrefixSpan, Pseudo,
// DISC-all and Dynamic DISC-all at minsup 0.005.
func Fig10(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:         "fig10",
		Title:      "Comparisons on different thetas (minsup 0.005)",
		PaperShape: "Dynamic DISC-all fastest everywhere; static DISC-all wins except at θ=40 where Pseudo catches up",
	}
	for _, theta := range cfg.thetas() {
		db, err := thetaDB(cfg, theta)
		if err != nil {
			return nil, err
		}
		minSup := scaledMinSup(0.005, len(db))
		ms, err := measure(cfg, "fig10", theta, db, minSup, competitorSet(cfg.Workers, true))
		if err != nil {
			return nil, err
		}
		r.Measurements = append(r.Measurements, ms...)
	}
	r.Tables = []Table{seriesTable("seconds by theta", "theta", r.Measurements)}
	return r, nil
}
