package bench

import (
	"fmt"

	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/mining"
)

// Ablation is not a paper artifact: it quantifies the design choices that
// DESIGN.md calls out, on one Figure-9-style workload:
//
//   - the bi-level technique (§3.2) on vs off,
//   - the number of static partitioning levels (1, 2 as in the paper, 3),
//   - the Dynamic DISC-all NRR threshold γ.
func Ablation(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	db, err := denseDB(cfg)
	if err != nil {
		return nil, err
	}
	fracs := cfg.Fracs
	if fracs == nil {
		fracs = []float64{0.01, 0.005}
	}
	r := &Report{
		ID:         "ablation",
		Title:      "DISC-all design-choice ablation (dense workload)",
		PaperShape: "not in the paper; isolates bi-level, partitioning depth and γ",
	}
	variants := []struct {
		name  string
		miner mining.Miner
	}{
		{"bilevel-on-2lv", &core.Miner{Opts: core.Options{BiLevel: true, Levels: 2, Workers: cfg.Workers}}},
		{"bilevel-off-2lv", &core.Miner{Opts: core.Options{BiLevel: false, Levels: 2, Workers: cfg.Workers}}},
		{"bilevel-on-1lv", &core.Miner{Opts: core.Options{BiLevel: true, Levels: 1, Workers: cfg.Workers}}},
		{"bilevel-on-3lv", &core.Miner{Opts: core.Options{BiLevel: true, Levels: 3, Workers: cfg.Workers}}},
		{"pure-disc", &core.Miner{Opts: core.Options{BiLevel: true, Levels: -1, Workers: cfg.Workers}}},
		{"dynamic-g0.25", &core.Dynamic{Opts: core.Options{BiLevel: true, Gamma: 0.25, Workers: cfg.Workers}}},
		{"dynamic-g0.50", &core.Dynamic{Opts: core.Options{BiLevel: true, Gamma: 0.5, Workers: cfg.Workers}}},
		{"dynamic-g0.75", &core.Dynamic{Opts: core.Options{BiLevel: true, Gamma: 0.75, Workers: cfg.Workers}}},
	}
	t := Table{Title: "seconds by variant", Header: []string{"minsup"}}
	for _, v := range variants {
		t.Header = append(t.Header, v.name)
	}
	for _, frac := range fracs {
		minSup := scaledMinSup(frac, len(db))
		row := []string{trimFloat(frac)}
		miners := make([]mining.Miner, len(variants))
		for i, v := range variants {
			miners[i] = v.miner
		}
		ms, err := measure(cfg, "ablation", frac, db, minSup, miners)
		if err != nil {
			return nil, err
		}
		r.Measurements = append(r.Measurements, ms...)
		for _, m := range ms {
			row = append(row, fmt.Sprintf("%.3f", m.Seconds))
		}
		t.Rows = append(t.Rows, row)
	}
	r.Tables = []Table{t}
	return r, nil
}
