package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/disc-mining/disc/internal/gen"
)

// workerSweep returns the worker counts the speedup experiment measures:
// 1, 2, 4 and GOMAXPROCS, deduplicated and ascending.
func workerSweep() []int {
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	sort.Ints(counts)
	out := counts[:1]
	for _, w := range counts[1:] {
		if w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	return out
}

// Speedup is not a paper artifact: it measures the static DISC-all
// wall-clock time on one Figure-8-style workload as the partition worker
// pool grows, reporting the speedup over the serial (Workers=1) run. The
// mined result set is byte-identical at every worker count (the experiment
// cross-checks the pattern counts); only the schedule changes. On a
// single-CPU host the sweep degenerates gracefully: extra workers cannot
// run and the speedup stays ≈1.
func Speedup(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	n := int(100000 * cfg.Scale)
	if n < 200 {
		n = 200
	}
	c := gen.PaperDefaults(n)
	c.Seed = cfg.Seed
	db, err := gen.Generate(c)
	if err != nil {
		return nil, err
	}
	minSup := scaledMinSup(0.0025, n)
	r := &Report{
		ID:         "speedup",
		Title:      fmt.Sprintf("DISC-all parallel speedup (%d customers, δ=%d, %d CPUs)", n, minSup, runtime.NumCPU()),
		PaperShape: "not in the paper; the partition worker pool is this reproduction's extension",
	}
	t := Table{Title: "seconds by worker count", Header: []string{"workers", "seconds", "speedup", "patterns"}}
	serial, patterns := 0.0, -1
	for _, w := range workerSweep() {
		m := discMiner(w)
		start := time.Now()
		res, err := m.Mine(db, minSup)
		if err != nil {
			return nil, fmt.Errorf("speedup at %d workers: %w", w, err)
		}
		sec := time.Since(start).Seconds()
		if patterns == -1 {
			serial, patterns = sec, res.Len()
		} else if res.Len() != patterns {
			return nil, fmt.Errorf("speedup: %d workers found %d patterns, serial found %d", w, res.Len(), patterns)
		}
		r.Measurements = append(r.Measurements, Measurement{
			Experiment: "speedup", Algo: m.Name(), X: float64(w),
			Seconds: sec, Patterns: res.Len(), Workers: w,
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.3f", sec),
			fmt.Sprintf("%.2fx", serial/sec),
			fmt.Sprintf("%d", res.Len()),
		})
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "speedup workers=%d: %.3fs (%d patterns, δ=%d)\n", w, sec, res.Len(), minSup)
		}
	}
	r.Tables = []Table{t}
	return r, nil
}
