package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/gen"
)

// tiny returns a configuration small and moderate enough for unit tests:
// short sweeps at thresholds that keep pattern counts bounded.
func tiny() Config {
	return Config{
		Scale:  0.02,
		Seed:   1,
		Sizes:  []int{300, 600},
		Fracs:  []float64{0.05, 0.02},
		Thetas: []float64{10, 15},
	}
}

func TestRegistry(t *testing.T) {
	ids := []string{"table5", "fig8", "fig9", "table12", "table13", "table14", "fig10", "ablation", "speedup"}
	all := All()
	if len(all) != len(ids) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(ids))
	}
	for i, id := range ids {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%s) missed", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should miss")
	}
}

func TestTable5Static(t *testing.T) {
	r, err := Table5(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"GSP", "SPADE", "SPAM", "PrefixSpan", "DISC-all"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 missing %s:\n%s", want, out)
		}
	}
	// Only DISC-all has the DISC strategy.
	if rows := r.Tables[0].Rows; rows[4][4] != "x" || rows[3][4] != "-" {
		t.Errorf("DISC column wrong: %v", rows)
	}
}

func TestScaledMinSupFloor(t *testing.T) {
	if got := scaledMinSup(0.0025, 200); got != 2 {
		t.Errorf("floor: %d", got)
	}
	if got := scaledMinSup(0.0025, 10000); got != 25 {
		t.Errorf("paper δ: %d", got)
	}
}

// TestPoolsStayAtPaperDefaults guards the scaling invariant documented in
// the package: the generator pools are never shrunk, so the
// δ-to-planted-support ratio is preserved across scales.
func TestPoolsStayAtPaperDefaults(t *testing.T) {
	c := gen.PaperDefaults(500)
	if c.NSeqPatterns != 0 || c.NLitPatterns != 0 {
		t.Errorf("workload configs must leave pool sizes at generator defaults, got %d/%d",
			c.NSeqPatterns, c.NLitPatterns)
	}
}

func TestFig8Tiny(t *testing.T) {
	cfg := tiny()
	r, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Measurements) != len(cfg.Sizes)*3 {
		t.Fatalf("fig8 measurements = %d, want %d", len(r.Measurements), len(cfg.Sizes)*3)
	}
	for _, m := range r.Measurements {
		if m.Seconds < 0 || m.Patterns <= 0 {
			t.Errorf("bad measurement %+v", m)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "disc-all") || !strings.Contains(buf.String(), "pseudo") {
		t.Errorf("render missing algorithms:\n%s", buf.String())
	}
}

func TestFig9AndTable13Tiny(t *testing.T) {
	cfg := tiny()
	r9, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r9.Measurements) != len(cfg.Fracs)*3 {
		t.Fatalf("fig9 measurements = %d", len(r9.Measurements))
	}
	r13, err := Table13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r13.Tables[0].Rows) != len(cfg.Fracs) {
		t.Fatalf("table13 rows = %d", len(r13.Tables[0].Rows))
	}
	// Each row ends with a positive ratio.
	for _, row := range r13.Tables[0].Rows {
		if !strings.ContainsAny(row[3], "0123456789") {
			t.Errorf("ratio cell %q", row[3])
		}
	}
}

func TestTable12Tiny(t *testing.T) {
	cfg := tiny()
	r, err := Table12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	if len(rows) != len(cfg.Fracs) {
		t.Fatalf("table12 rows = %d", len(rows))
	}
	// The Original column must hold a small positive NRR for every row.
	for _, row := range rows {
		if row[1] == "-" {
			t.Errorf("missing Original NRR in row %v", row)
		}
	}
}

func TestTable14AndFig10Tiny(t *testing.T) {
	cfg := tiny()
	r14, err := Table14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r14.Tables[0].Rows) != len(cfg.Thetas) {
		t.Fatalf("table14 rows = %d", len(r14.Tables[0].Rows))
	}
	r10, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r10.Measurements) != len(cfg.Thetas)*4 {
		t.Fatalf("fig10 measurements = %d", len(r10.Measurements))
	}
	algos := map[string]bool{}
	for _, m := range r10.Measurements {
		algos[m.Algo] = true
	}
	if !algos["dynamic-disc-all"] {
		t.Error("fig10 must include the dynamic variant")
	}
}

func TestAblationTiny(t *testing.T) {
	cfg := tiny()
	r, err := Ablation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables[0].Rows) != len(cfg.Fracs) {
		t.Fatalf("ablation rows = %d", len(r.Tables[0].Rows))
	}
	// All eight variants measured per threshold, all agreeing on the
	// pattern count (enforced inside measure).
	if len(r.Measurements) != len(cfg.Fracs)*8 {
		t.Fatalf("ablation measurements = %d", len(r.Measurements))
	}
}

func TestSpeedupTiny(t *testing.T) {
	r, err := Speedup(Config{Scale: 0.005, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sweep := workerSweep()
	if len(r.Measurements) != len(sweep) {
		t.Fatalf("speedup measurements = %d, want %d", len(r.Measurements), len(sweep))
	}
	if r.Measurements[0].Workers != 1 {
		t.Errorf("first measurement workers = %d, want 1", r.Measurements[0].Workers)
	}
	patterns := r.Measurements[0].Patterns
	for _, m := range r.Measurements {
		if m.Patterns != patterns {
			t.Errorf("workers=%d found %d patterns, serial found %d", m.Workers, m.Patterns, patterns)
		}
		if m.Workers != int(m.X) {
			t.Errorf("measurement %+v: X and Workers disagree", m)
		}
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] <= sweep[i-1] {
			t.Fatalf("workerSweep not strictly ascending: %v", sweep)
		}
	}
}

func TestCSVAndChartRendering(t *testing.T) {
	r := &Report{
		ID:    "x",
		Title: "demo",
		Measurements: []Measurement{
			{Experiment: "x", Algo: "a", X: 1, Seconds: 0.5, Patterns: 10, Workers: 1},
			{Experiment: "x", Algo: "b", X: 1, Seconds: 1.0, Patterns: 10, Workers: 4},
			{Experiment: "x", Algo: "a", X: 2, Seconds: 2.0, Patterns: 20, Workers: 1},
		},
	}
	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "experiment,algo,x,seconds,patterns,workers") ||
		!strings.Contains(csv.String(), "x,b,1,1.000000,10,4") {
		t.Errorf("CSV:\n%s", csv.String())
	}
	var chart bytes.Buffer
	r.RenderChart(&chart)
	out := chart.String()
	if !strings.Contains(out, "x=1") || !strings.Contains(out, "x=2") || !strings.Contains(out, "#") {
		t.Errorf("chart:\n%s", out)
	}
	// Empty reports render nothing and error nowhere.
	empty := &Report{ID: "e", Title: "e"}
	var b2 bytes.Buffer
	empty.RenderChart(&b2)
	if b2.Len() != 0 {
		t.Errorf("empty chart output %q", b2.String())
	}
}
