package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteCSV emits the report's raw measurements as CSV
// (experiment,algo,x,seconds,patterns,workers), suitable for external
// plotting.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "experiment,algo,x,seconds,patterns,workers"); err != nil {
		return err
	}
	for _, m := range r.Measurements {
		if _, err := fmt.Fprintf(w, "%s,%s,%v,%.6f,%d,%d\n",
			m.Experiment, m.Algo, m.X, m.Seconds, m.Patterns, m.Workers); err != nil {
			return err
		}
	}
	return nil
}

// RenderChart draws the measurements as a horizontal ASCII bar chart,
// grouped by sweep point — the terminal stand-in for the paper's figures.
func (r *Report) RenderChart(w io.Writer) {
	if len(r.Measurements) == 0 {
		return
	}
	const width = 48
	maxSec := 0.0
	algoW := 0
	for _, m := range r.Measurements {
		if m.Seconds > maxSec {
			maxSec = m.Seconds
		}
		if len(m.Algo) > algoW {
			algoW = len(m.Algo)
		}
	}
	if maxSec <= 0 {
		maxSec = 1
	}
	// Group by X, ascending.
	xs := []float64{}
	seen := map[float64]bool{}
	for _, m := range r.Measurements {
		if !seen[m.X] {
			seen[m.X] = true
			xs = append(xs, m.X)
		}
	}
	sort.Float64s(xs)
	fmt.Fprintf(w, "%s (bar = seconds, full width = %.3fs)\n", r.Title, maxSec)
	for _, x := range xs {
		fmt.Fprintf(w, "x=%v\n", x)
		for _, m := range r.Measurements {
			if m.X != x {
				continue
			}
			n := int(m.Seconds / maxSec * width)
			if n < 1 && m.Seconds > 0 {
				n = 1
			}
			fmt.Fprintf(w, "  %-*s %s %.3fs\n", algoW, m.Algo, strings.Repeat("#", n), m.Seconds)
		}
	}
}
