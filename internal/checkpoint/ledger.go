// Shard ledger: the coordinator's durable scheduling state for one
// clustered job. Where a checkpoint records *mining* progress (completed
// partitions), the ledger records *scheduling* progress — which shards
// are pending, assigned or done, which worker holds or finished each
// one, the attempt history, and each shard's last-known partitions — so
// a coordinator killed mid-job restarts, reloads the ledger, and
// schedules only the unfinished shards. The job's database and
// result-relevant options travel inside the ledger, making it a
// self-contained resubmission: recovery needs no surviving client.
//
// The encoding reuses the checkpoint document discipline (versioned
// header, CRC32 over the payload, fsync-before-rename writes) under its
// own magic:
//
//	DISCLEDG v1 crc32=<hex> bytes=<payload length>
//	algo <miner name>
//	fingerprint <16 hex digits>
//	minsup <δ>
//	options <bilevel> <levels> <gamma float64-bits-hex> <workers>
//	db <line count>
//	<database, data.Native text>   × line count
//	shards <count>
//	shard <index> <state> <worker|-> <attempt count>
//	attempt <worker> <outcome>     × attempt count
//	partitions <count>
//	<partition blocks, checkpoint grammar>
//
// The fingerprint is recomputed from the decoded database and options on
// recovery, so a ledger that decodes but disagrees with its own job is
// rejected before any mining happens.
package checkpoint

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Shard states recorded in a ledger.
const (
	ShardPending  = "pending"
	ShardAssigned = "assigned"
	ShardDone     = "done"
)

// ShardAttempt is one entry of a shard's dispatch history: which worker
// was involved and how the attempt ended ("dispatched" for one still in
// flight when the ledger was last written).
type ShardAttempt struct {
	Worker  string
	Outcome string
}

// LedgerShard is the scheduling state of one shard.
type LedgerShard struct {
	State      string
	Worker     string // worker currently holding the shard ("" unless assigned)
	Attempts   []ShardAttempt
	Partitions []Partition // the shard's last-known completed partitions
}

// Ledger is the durable scheduling state of one clustered job.
type Ledger struct {
	Algo        string
	Fingerprint uint64
	MinSup      int
	BiLevel     bool
	Levels      int
	Gamma       float64
	Workers     int
	DB          string // data.Native text of the job's database
	Shards      []LedgerShard
}

// token encodes a worker URL (or "") as a single whitespace-free field.
func token(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func untoken(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

func (l *Ledger) payload() string {
	var b strings.Builder
	fmt.Fprintf(&b, "algo %s\n", l.Algo)
	fmt.Fprintf(&b, "fingerprint %016x\n", l.Fingerprint)
	fmt.Fprintf(&b, "minsup %d\n", l.MinSup)
	fmt.Fprintf(&b, "options %t %d %016x %d\n",
		l.BiLevel, l.Levels, math.Float64bits(l.Gamma), l.Workers)
	db := strings.Split(strings.TrimSuffix(l.DB, "\n"), "\n")
	if l.DB == "" {
		db = nil
	}
	fmt.Fprintf(&b, "db %d\n", len(db))
	for _, line := range db {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "shards %d\n", len(l.Shards))
	for i, s := range l.Shards {
		fmt.Fprintf(&b, "shard %d %s %s %d\n", i, s.State, token(s.Worker), len(s.Attempts))
		for _, a := range s.Attempts {
			fmt.Fprintf(&b, "attempt %s %s\n", token(a.Worker), a.Outcome)
		}
		fmt.Fprintf(&b, "partitions %d\n", len(s.Partitions))
		for _, p := range s.Partitions {
			writePartition(&b, p)
		}
	}
	return b.String()
}

// Write renders the ledger to w (header + payload), returning the byte
// count so callers can observe ledger sizes.
func (l *Ledger) Write(w io.Writer) (int, error) {
	return writeDoc(w, "DISCLEDG", l.payload())
}

// WriteFile persists the ledger atomically and durably with the same
// fsync-before-rename discipline as checkpoints: a coordinator killed at
// any instant leaves either the previous ledger state or the new one,
// never a torn file.
func (l *Ledger) WriteFile(path string) (int, error) {
	return l.WriteFileFS(OS, path)
}

// WriteFileFS is WriteFile over an explicit filesystem (nil means OS).
func (l *Ledger) WriteFileFS(fsys FS, path string) (int, error) {
	return writeFileAtomic(fsys, path, l.Write)
}

// ReadLedger decodes a ledger, verifying version, payload length and
// checksum before parsing.
func ReadLedger(r io.Reader) (*Ledger, error) {
	lr, err := readDoc(r, "DISCLEDG")
	if err != nil {
		return nil, err
	}
	l := &Ledger{}
	fields, err := lr.next("algo")
	if err != nil {
		return nil, err
	}
	if len(fields) != 1 {
		return nil, fmt.Errorf("%w: bad algo line", ErrCorrupt)
	}
	l.Algo = fields[0]
	if fields, err = lr.next("fingerprint"); err != nil {
		return nil, err
	}
	if len(fields) != 1 {
		return nil, fmt.Errorf("%w: bad fingerprint line", ErrCorrupt)
	}
	if l.Fingerprint, err = strconv.ParseUint(fields[0], 16, 64); err != nil {
		return nil, fmt.Errorf("%w: bad fingerprint %q", ErrCorrupt, fields[0])
	}
	if fields, err = lr.next("minsup"); err != nil {
		return nil, err
	}
	if len(fields) != 1 {
		return nil, fmt.Errorf("%w: bad minsup line", ErrCorrupt)
	}
	if l.MinSup, err = atoi(fields[0]); err != nil {
		return nil, fmt.Errorf("%w: bad minsup %q", ErrCorrupt, fields[0])
	}
	if fields, err = lr.next("options"); err != nil {
		return nil, err
	}
	if len(fields) != 4 {
		return nil, fmt.Errorf("%w: options line has %d fields, want 4", ErrCorrupt, len(fields))
	}
	if l.BiLevel, err = strconv.ParseBool(fields[0]); err != nil {
		return nil, fmt.Errorf("%w: bad bilevel %q", ErrCorrupt, fields[0])
	}
	if l.Levels, err = atoi(fields[1]); err != nil {
		return nil, fmt.Errorf("%w: bad levels %q", ErrCorrupt, fields[1])
	}
	bits, err := strconv.ParseUint(fields[2], 16, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad gamma bits %q", ErrCorrupt, fields[2])
	}
	l.Gamma = math.Float64frombits(bits)
	if l.Workers, err = atoi(fields[3]); err != nil {
		return nil, fmt.Errorf("%w: bad workers %q", ErrCorrupt, fields[3])
	}
	if fields, err = lr.next("db"); err != nil {
		return nil, err
	}
	ndb, err := atoi(fields[0])
	if err != nil || ndb < 0 {
		return nil, fmt.Errorf("%w: bad db line count", ErrCorrupt)
	}
	if lr.pos+ndb > len(lr.lines) {
		return nil, fmt.Errorf("%w: truncated database block", ErrCorrupt)
	}
	var db strings.Builder
	for i := 0; i < ndb; i++ {
		db.WriteString(lr.lines[lr.pos])
		db.WriteByte('\n')
		lr.pos++
	}
	l.DB = db.String()
	if fields, err = lr.next("shards"); err != nil {
		return nil, err
	}
	nshards, err := atoi(fields[0])
	if err != nil || nshards < 0 {
		return nil, fmt.Errorf("%w: bad shard count", ErrCorrupt)
	}
	for i := 0; i < nshards; i++ {
		if fields, err = lr.next("shard"); err != nil {
			return nil, err
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("%w: shard line has %d fields, want 4", ErrCorrupt, len(fields))
		}
		idx, err := atoi(fields[0])
		if err != nil || idx != i {
			return nil, fmt.Errorf("%w: shard index %q out of order (want %d)", ErrCorrupt, fields[0], i)
		}
		s := LedgerShard{State: fields[1], Worker: untoken(fields[2])}
		switch s.State {
		case ShardPending, ShardAssigned, ShardDone:
		default:
			return nil, fmt.Errorf("%w: unknown shard state %q", ErrCorrupt, s.State)
		}
		natt, err := atoi(fields[3])
		if err != nil || natt < 0 {
			return nil, fmt.Errorf("%w: bad attempt count %q", ErrCorrupt, fields[3])
		}
		for j := 0; j < natt; j++ {
			af, err := lr.next("attempt")
			if err != nil {
				return nil, err
			}
			if len(af) != 2 {
				return nil, fmt.Errorf("%w: attempt line has %d fields, want 2", ErrCorrupt, len(af))
			}
			s.Attempts = append(s.Attempts, ShardAttempt{Worker: untoken(af[0]), Outcome: af[1]})
		}
		if fields, err = lr.next("partitions"); err != nil {
			return nil, err
		}
		nparts, err := atoi(fields[0])
		if err != nil || nparts < 0 {
			return nil, fmt.Errorf("%w: bad partition count", ErrCorrupt)
		}
		for j := 0; j < nparts; j++ {
			p, err := readPartition(lr)
			if err != nil {
				return nil, err
			}
			s.Partitions = append(s.Partitions, p)
		}
		l.Shards = append(l.Shards, s)
	}
	return l, nil
}

// ReadLedgerFile loads a ledger from path.
func ReadLedgerFile(path string) (*Ledger, error) {
	return ReadLedgerFileFS(OS, path)
}

// ReadLedgerFileFS is ReadLedgerFile over an explicit filesystem (nil
// means OS).
func ReadLedgerFileFS(fsys FS, path string) (*Ledger, error) {
	return readFileFS(fsys, path, ReadLedger)
}
