package checkpoint

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/seq"
)

func sampleLedger() *Ledger {
	return &Ledger{
		Algo:        "disc-all",
		Fingerprint: 0xdeadbeefcafef00d,
		MinSup:      3,
		BiLevel:     true,
		Levels:      2,
		Gamma:       0.6250000000000001,
		Workers:     4,
		DB:          "1 2 2 3\n2 5\n",
		Shards: []LedgerShard{
			{
				State:  ShardDone,
				Worker: "",
				Attempts: []ShardAttempt{
					{Worker: "http://w1:1", Outcome: "transport-error"},
					{Worker: "http://w2:2", Outcome: "done"},
				},
				Partitions: sample().Partitions,
			},
			{State: ShardAssigned, Worker: "http://w1:1",
				Attempts: []ShardAttempt{{Worker: "http://w1:1", Outcome: "dispatched"}}},
			{State: ShardPending},
		},
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	l := sampleLedger()
	var b strings.Builder
	if _, err := l.Write(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLedger(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ReadLedger: %v\nencoded:\n%s", err, b.String())
	}
	if back.Algo != l.Algo || back.Fingerprint != l.Fingerprint || back.MinSup != l.MinSup ||
		back.BiLevel != l.BiLevel || back.Levels != l.Levels || back.Gamma != l.Gamma ||
		back.Workers != l.Workers {
		t.Fatalf("job identity round trip: %+v", back)
	}
	if back.DB != l.DB {
		t.Fatalf("db round trip: %q, want %q", back.DB, l.DB)
	}
	if len(back.Shards) != 3 {
		t.Fatalf("shard count %d, want 3", len(back.Shards))
	}
	for i, want := range l.Shards {
		got := back.Shards[i]
		if got.State != want.State || got.Worker != want.Worker {
			t.Errorf("shard %d state round trip: %+v, want %+v", i, got, want)
		}
		if len(got.Attempts) != len(want.Attempts) {
			t.Fatalf("shard %d attempt count %d, want %d", i, len(got.Attempts), len(want.Attempts))
		}
		for j := range want.Attempts {
			if got.Attempts[j] != want.Attempts[j] {
				t.Errorf("shard %d attempt %d: %+v, want %+v", i, j, got.Attempts[j], want.Attempts[j])
			}
		}
		if len(got.Partitions) != len(want.Partitions) {
			t.Fatalf("shard %d partition count %d, want %d", i, len(got.Partitions), len(want.Partitions))
		}
		for j := range want.Partitions {
			if seq.Compare(got.Partitions[j].Key, want.Partitions[j].Key) != 0 {
				t.Errorf("shard %d partition %d key differs", i, j)
			}
			if len(got.Partitions[j].Patterns) != len(want.Partitions[j].Patterns) {
				t.Errorf("shard %d partition %d pattern count differs", i, j)
			}
		}
	}
}

func TestLedgerFileRoundTripAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.ledger")
	l := sampleLedger()
	if _, err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a new state: the rename must replace, not append.
	l.Shards[1].State = ShardDone
	l.Shards[1].Worker = ""
	if _, err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Shards[1].State != ShardDone {
		t.Fatalf("second write not visible: %+v", back.Shards[1])
	}
}

func TestLedgerCorruptionAndMagicRejected(t *testing.T) {
	l := sampleLedger()
	var b strings.Builder
	if _, err := l.Write(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	// Flip a payload byte: the CRC must catch it.
	corrupt := []byte(text)
	corrupt[len(corrupt)-2] ^= 0x20
	if _, err := ReadLedger(strings.NewReader(string(corrupt))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted ledger read back: %v", err)
	}
	// Truncation must be caught by the declared payload length.
	if _, err := ReadLedger(strings.NewReader(text[:len(text)-10])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated ledger read back: %v", err)
	}
	// A checkpoint document is not a ledger: magic mismatch.
	ckpt := encode(t, sample())
	if _, err := ReadLedger(strings.NewReader(ckpt)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("checkpoint accepted as ledger: %v", err)
	}
	// And a ledger is not a checkpoint.
	if _, err := Read(strings.NewReader(text)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("ledger accepted as checkpoint: %v", err)
	}
	// Unknown shard state.
	bad := strings.Replace(l.payload(), "shard 2 pending", "shard 2 limbo", 1)
	var doc strings.Builder
	if _, err := writeDoc(&doc, "DISCLEDG", bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLedger(strings.NewReader(doc.String())); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown shard state read back: %v", err)
	}
}

func TestLedgerEmptyDB(t *testing.T) {
	l := &Ledger{Algo: "disc-all", Shards: []LedgerShard{{State: ShardPending}}}
	var b strings.Builder
	if _, err := l.Write(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLedger(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.DB != "" || len(back.Shards) != 1 {
		t.Fatalf("empty-db round trip: %+v", back)
	}
}
