// Retention GC and resting-file scrubbing for durable-state
// directories. Checkpoints of abandoned jobs, ledgers of jobs whose
// retire() never ran, interrupted .tmp staging files and quarantined
// *.corrupt evidence all accumulate without bound unless something
// sweeps them; and a file that verified when written can still rot on
// the platter. The Sweeper bounds the first problem by age and count,
// the Scrub pass catches the second by re-verifying CRCs at rest and
// quarantining what no longer decodes.
package checkpoint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Kinds labelling swept and quarantined files in metrics and logs.
const (
	KindCheckpoint  = "checkpoint"
	KindLedger      = "ledger"
	KindQuarantined = "quarantined"
	KindTmp         = "tmp"
)

// kindOf classifies a durable-state file by its suffix ("" = not ours).
func kindOf(path string) string {
	switch {
	case strings.HasSuffix(path, QuarantineSuffix):
		return KindQuarantined
	case strings.HasSuffix(path, ".tmp"):
		return KindTmp
	case strings.HasSuffix(path, ".ckpt"):
		return KindCheckpoint
	case strings.HasSuffix(path, ".ledger"):
		return KindLedger
	}
	return ""
}

// Sweeper reclaims aged durable-state files and re-verifies resting
// ones. The zero value never deletes anything; callers opt in per
// policy field.
type Sweeper struct {
	// FS is the filesystem removals and quarantine renames go through
	// (nil = OS). Directory listing and mtime stat use the os package
	// directly: metadata reads are not a fault-injection surface.
	FS FS
	// Retention is the age beyond which an orphaned checkpoint, retired
	// ledger, quarantined file or stale .tmp is reclaimed. Zero disables
	// age-based sweeping.
	Retention time.Duration
	// MaxQuarantined caps how many *.corrupt files a directory may hold;
	// beyond it the oldest are reclaimed regardless of age. Zero means
	// uncapped.
	MaxQuarantined int
	// Keep vetoes reclamation of a live file — the jobs manager supplies
	// one that protects checkpoints of queued and running jobs. Nil
	// keeps nothing extra.
	Keep func(path string) bool
	// Now is the clock (nil = time.Now), a seam for tests.
	Now func() time.Time
	// Logf receives one line per reclaimed or quarantined file (nil =
	// silent).
	Logf func(format string, args ...any)
	// OnReclaim observes every successful removal, by kind.
	OnReclaim func(kind string, files int, bytes int64)
	// OnQuarantine observes every file the scrubber quarantines, by kind.
	OnQuarantine func(kind string)
}

func (s *Sweeper) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Sweeper) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

type agedFile struct {
	path  string
	kind  string
	size  int64
	mtime time.Time
}

// list stats every durable-state file in dir, oldest first.
func (s *Sweeper) list(dir string) []agedFile {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if !os.IsNotExist(err) {
			s.logf("storage: gc cannot list %s: %v", dir, err)
		}
		return nil
	}
	var files []agedFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		kind := kindOf(path)
		if kind == "" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, agedFile{path: path, kind: kind, size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	return files
}

func (s *Sweeper) reclaim(f agedFile, why string) bool {
	if s.Keep != nil && s.Keep(f.path) {
		return false
	}
	if err := orOS(s.FS).Remove(f.path); err != nil {
		s.logf("storage: gc cannot remove %s: %v", f.path, err)
		return false
	}
	s.logf("storage: gc reclaimed %s %s (%d bytes, %s)", f.kind, filepath.Base(f.path), f.size, why)
	if s.OnReclaim != nil {
		s.OnReclaim(f.kind, 1, f.size)
	}
	return true
}

// Sweep applies the retention policy to dir: files older than Retention
// are removed (subject to Keep), and *.corrupt files beyond
// MaxQuarantined are removed oldest-first regardless of age. Returns
// the number of files reclaimed. A missing directory sweeps to zero.
func (s *Sweeper) Sweep(dir string) int {
	files := s.list(dir)
	reclaimed := 0
	var quarantined []agedFile
	cutoff := time.Time{}
	if s.Retention > 0 {
		cutoff = s.now().Add(-s.Retention)
	}
	for _, f := range files {
		if !cutoff.IsZero() && f.mtime.Before(cutoff) {
			if s.reclaim(f, "older than retention") {
				reclaimed++
				continue
			}
		}
		if f.kind == KindQuarantined {
			quarantined = append(quarantined, f)
		}
	}
	if s.MaxQuarantined > 0 && len(quarantined) > s.MaxQuarantined {
		// quarantined inherits list's oldest-first order.
		for _, f := range quarantined[:len(quarantined)-s.MaxQuarantined] {
			if s.reclaim(f, "over quarantine cap") {
				reclaimed++
			}
		}
	}
	return reclaimed
}

// Scrub re-verifies every resting checkpoint and ledger in dir and
// quarantines the ones that no longer decode — bit-rot caught before a
// resume would trip over it. Unreadable files (permissions, vanished
// mid-scrub) are skipped, not quarantined: the file may be fine next
// pass. Returns the number of files quarantined.
func (s *Sweeper) Scrub(dir string) int {
	quarantined := 0
	for _, f := range s.list(dir) {
		var err error
		switch f.kind {
		case KindCheckpoint:
			_, err = ReadFileFS(s.FS, f.path)
		case KindLedger:
			_, err = ReadLedgerFileFS(s.FS, f.path)
		default:
			continue
		}
		if err == nil || !Undecodable(err) {
			continue
		}
		q, qerr := Quarantine(s.FS, f.path)
		if qerr != nil {
			s.logf("storage: scrub cannot quarantine %s: %v", f.path, qerr)
			continue
		}
		s.logf("storage: scrub quarantined %s %s -> %s: %v", f.kind, filepath.Base(f.path), filepath.Base(q), err)
		if s.OnQuarantine != nil {
			s.OnQuarantine(f.kind)
		}
		quarantined++
	}
	return quarantined
}
