package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

func sample() *File {
	return &File{
		Algo:        "disc-all",
		Fingerprint: 0xdeadbeefcafef00d,
		MinSup:      3,
		Partitions: []Partition{
			{
				Key: seq.MustParsePattern("(2)"),
				Patterns: []mining.PatternCount{
					{Pattern: seq.MustParsePattern("(2)(5)"), Support: 4},
					{Pattern: seq.MustParsePattern("(2 3)"), Support: 3},
				},
				Stats: Stats2(),
			},
			{
				Key:      seq.MustParsePattern("(7)"),
				Patterns: nil, // a partition may complete with no deeper patterns
				Stats:    PartitionStats{},
			},
		},
	}
}

func Stats2() PartitionStats {
	return PartitionStats{
		Rounds: 12, FrequentHits: 4, Skips: 8, KMSCalls: 20, CKMSCalls: 9, Dropped: 2,
		PartitionsByLevel: []int{0, 3, 1},
		NRRByLevel:        []float64{0, 1.0 / 3.0, 0.6250000000000001},
		NRRCount:          []int{0, 3, 1},
	}
}

func TestRoundTrip(t *testing.T) {
	f := sample()
	var b strings.Builder
	if _, err := f.Write(&b); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Read: %v\nencoded:\n%s", err, b.String())
	}
	if back.Algo != f.Algo || back.Fingerprint != f.Fingerprint || back.MinSup != f.MinSup {
		t.Fatalf("header round trip: %+v", back)
	}
	if len(back.Partitions) != len(f.Partitions) {
		t.Fatalf("partition count %d, want %d", len(back.Partitions), len(f.Partitions))
	}
	for i, p := range f.Partitions {
		q := back.Partitions[i]
		if seq.Compare(p.Key, q.Key) != 0 {
			t.Errorf("partition %d key %s != %s", i, q.Key, p.Key)
		}
		if len(p.Patterns) != len(q.Patterns) {
			t.Fatalf("partition %d pattern count %d, want %d", i, len(q.Patterns), len(p.Patterns))
		}
		for j := range p.Patterns {
			if seq.Compare(p.Patterns[j].Pattern, q.Patterns[j].Pattern) != 0 ||
				p.Patterns[j].Support != q.Patterns[j].Support {
				t.Errorf("partition %d pattern %d differs", i, j)
			}
		}
		// NRR means must be bit-exact, not merely approximately equal.
		for l := range p.Stats.NRRByLevel {
			if math.Float64bits(p.Stats.NRRByLevel[l]) != math.Float64bits(q.Stats.NRRByLevel[l]) {
				t.Errorf("partition %d NRR level %d not bit-exact: %x vs %x", i, l,
					math.Float64bits(p.Stats.NRRByLevel[l]), math.Float64bits(q.Stats.NRRByLevel[l]))
			}
		}
		if p.Stats.Rounds != q.Stats.Rounds || p.Stats.Dropped != q.Stats.Dropped {
			t.Errorf("partition %d stats counters differ: %+v vs %+v", i, p.Stats, q.Stats)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	f := sample()
	if _, err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint != f.Fingerprint || len(back.Partitions) != 2 {
		t.Fatalf("file round trip: %+v", back)
	}
}

func encode(t *testing.T, f *File) string {
	t.Helper()
	var b strings.Builder
	if _, err := f.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCorruptionDetected(t *testing.T) {
	good := encode(t, sample())
	cases := map[string]string{
		"empty":             "",
		"garbage header":    "hello world\n",
		"flipped byte":      strings.Replace(good, "minsup 3", "minsup 4", 1),
		"truncated payload": good[:len(good)-10],
		"extra payload":     good + "trailing\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestVersionRejected(t *testing.T) {
	bumped := strings.Replace(encode(t, sample()), "DISCCKPT v1", "DISCCKPT v9", 1)
	if _, err := Read(strings.NewReader(bumped)); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestFingerprintBindsJob(t *testing.T) {
	db := mining.Database{
		seq.MustParseCustomerSeq(1, "(1 5)(2)"),
		seq.MustParseCustomerSeq(2, "(2)(3)"),
	}
	base := Fingerprint("disc-all", "bilevel=true levels=2", 2, db)
	if got := Fingerprint("disc-all", "bilevel=true levels=2", 2, db); got != base {
		t.Error("fingerprint is not deterministic")
	}
	for name, got := range map[string]uint64{
		"algo":    Fingerprint("dynamic-disc-all", "bilevel=true levels=2", 2, db),
		"options": Fingerprint("disc-all", "bilevel=false levels=2", 2, db),
		"minsup":  Fingerprint("disc-all", "bilevel=true levels=2", 3, db),
		"db":      Fingerprint("disc-all", "bilevel=true levels=2", 2, db[:1]),
	} {
		if got == base {
			t.Errorf("fingerprint insensitive to %s", name)
		}
	}
	// CIDs are excluded: renumbering customers must not invalidate a
	// checkpoint (results do not depend on ids).
	renum := mining.Database{
		seq.MustParseCustomerSeq(10, "(1 5)(2)"),
		seq.MustParseCustomerSeq(20, "(2)(3)"),
	}
	if got := Fingerprint("disc-all", "bilevel=true levels=2", 2, renum); got != base {
		t.Error("fingerprint depends on customer ids")
	}
}

// reheader recomputes a payload's header line, so a test can mutate the
// payload without tripping the checksum.
func reheader(payload string) string {
	return fmt.Sprintf("DISCCKPT v%d crc32=%08x bytes=%d\n%s",
		Version, crc32.ChecksumIEEE([]byte(payload)), len(payload), payload)
}

// TestShardRoundTrip pins the optional shard marker: a shard-granular
// snapshot round-trips its index and count, a whole-job snapshot omits
// the line entirely (so pre-shard readers and writers agree), and an
// out-of-range marker is corruption.
func TestShardRoundTrip(t *testing.T) {
	f := sample()
	f.Shard, f.ShardCount = 2, 5
	enc := encode(t, f)
	if !strings.Contains(enc, "\nshard 2 5\n") {
		t.Fatalf("encoded shard snapshot missing shard line:\n%s", enc)
	}
	back, err := Read(strings.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if back.Shard != 2 || back.ShardCount != 5 {
		t.Fatalf("shard round trip: got %d/%d, want 2/5", back.Shard, back.ShardCount)
	}
	if len(back.Partitions) != len(f.Partitions) {
		t.Fatalf("partition count %d, want %d", len(back.Partitions), len(f.Partitions))
	}

	plain := encode(t, sample())
	if strings.Contains(plain, "shard") {
		t.Fatalf("whole-job snapshot encodes a shard line:\n%s", plain)
	}
	back, err = Read(strings.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if back.Shard != 0 || back.ShardCount != 0 {
		t.Fatalf("whole-job snapshot decoded shard %d/%d, want 0/0", back.Shard, back.ShardCount)
	}

	for _, bad := range []string{"shard 5 5", "shard -1 5", "shard 0 0", "shard x 5", "shard 1"} {
		mutated := strings.Replace(enc, "shard 2 5", bad, 1)
		// Fix the header's byte count and CRC so only the shard line is at fault.
		payload := mutated[strings.Index(mutated, "\n")+1:]
		refixed := reheader(payload)
		if _, err := Read(strings.NewReader(refixed)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%q: err = %v, want ErrCorrupt", bad, err)
		}
	}
}
