package checkpoint

import (
	"bytes"
	"strings"
	"testing"
)

// fuzz seeds: the clean encodings plus the classic storage failure shapes
// (truncation, a flipped bit, garbage) so the generators start from inputs
// that exercise every stage of the decoder.
func seedCorpus(f *testing.F, clean []byte) {
	f.Add(clean)
	for _, cut := range []int{0, 1, len(clean) / 4, len(clean) / 2, len(clean) - 1} {
		if cut >= 0 && cut < len(clean) {
			f.Add(clean[:cut])
		}
	}
	for _, bit := range []int{7, len(clean) * 4, len(clean)*8 - 3} {
		flipped := append([]byte(nil), clean...)
		flipped[bit/8] ^= 1 << (bit % 8)
		f.Add(flipped)
	}
	f.Add([]byte("DISCCKPT v99 crc32=00000000 bytes=0\n"))
	f.Add([]byte("DISCLEDG v99 crc32=00000000 bytes=0\n"))
	f.Add([]byte("not a checkpoint at all"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00, 0x01})
}

// FuzzRead asserts the checkpoint decoder's contract over arbitrary bytes:
// it never panics, and every failure is typed — ErrCorrupt or ErrVersion —
// so callers can quarantine rather than crash. When a mutation happens to
// decode, the result must re-encode to something that decodes again.
func FuzzRead(f *testing.F) {
	var b strings.Builder
	if _, err := sample().Write(&b); err != nil {
		f.Fatal(err)
	}
	seedCorpus(f, []byte(b.String()))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			if !Undecodable(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var rb strings.Builder
		if _, werr := got.Write(&rb); werr != nil {
			t.Fatalf("re-encoding a decoded checkpoint: %v", werr)
		}
		if _, rerr := Read(strings.NewReader(rb.String())); rerr != nil {
			t.Fatalf("re-decoding a re-encoded checkpoint: %v", rerr)
		}
	})
}

// FuzzReadLedger is the same contract for the shard-ledger decoder.
func FuzzReadLedger(f *testing.F) {
	var b strings.Builder
	if _, err := sampleLedger().Write(&b); err != nil {
		f.Fatal(err)
	}
	seedCorpus(f, []byte(b.String()))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadLedger(bytes.NewReader(data))
		if err != nil {
			if !Undecodable(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var rb strings.Builder
		if _, werr := got.Write(&rb); werr != nil {
			t.Fatalf("re-encoding a decoded ledger: %v", werr)
		}
		if _, rerr := ReadLedger(strings.NewReader(rb.String())); rerr != nil {
			t.Fatalf("re-decoding a re-encoded ledger: %v", rerr)
		}
	})
}
