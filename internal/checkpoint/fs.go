// The filesystem seam of the durable-state plane. Every byte this
// package persists — checkpoints, shard ledgers, their .tmp staging
// files — and every rename, removal and directory sync flows through an
// FS, so storage faults (a full disk, a torn write, a failing fsync, a
// flipped bit on the way to the platter) can be injected deterministically
// by tests and drills (internal/faultinject arms the seam) while
// production code runs on the real os package via OS.
package checkpoint

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// FileWriter is the write handle an FS hands out: sequential writes,
// an explicit flush to stable storage, and a close.
type FileWriter interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the durable-state plane runs on. The
// methods mirror the exact os calls the fsync-before-rename discipline
// uses, so a fault-injecting implementation can fail any individual
// step the way a real disk would.
type FS interface {
	// Create opens path for writing, truncating an existing file.
	Create(path string) (FileWriter, error)
	// Open opens path for reading.
	Open(path string) (io.ReadCloser, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// SyncDir flushes a directory's entries to stable storage.
	SyncDir(dir string) error
}

type osFS struct{}

func (osFS) Create(path string) (FileWriter, error)  { return os.Create(path) }
func (osFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }
func (osFS) Rename(oldpath, newpath string) error    { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                { return os.Remove(path) }

// SyncDir fsyncs a directory. Filesystems that cannot sync a directory
// handle (reporting EINVAL or ENOTSUP) keep the rename's atomicity, just
// not its durability ordering, so those errors are not fatal.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// OS is the production filesystem: the os package, unmodified.
var OS FS = osFS{}

// orOS resolves a nil FS (the zero-config case everywhere) to OS.
func orOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

// Undecodable reports whether a read failure marks a file this build can
// never decode — corrupt content or an unknown format version — as
// opposed to a transient or environmental error (missing file,
// permission). Undecodable files are the quarantine criterion: retrying
// the read cannot help, and leaving the file in place would fail every
// future startup the same way.
func Undecodable(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion)
}

// QuarantineSuffix marks a durable-state file set aside after failing
// CRC or decode verification. Quarantined files keep their full original
// name (id or fingerprint included) so an operator can inspect what was
// lost; retention GC bounds how long and how many of them accumulate.
const QuarantineSuffix = ".corrupt"

// Quarantine renames an undecodable durable-state file to
// path+".corrupt" so the run can proceed fresh while the evidence
// survives for inspection. Returns the quarantine path. Renaming over an
// existing quarantine file of the same name replaces it — the newest
// corruption is the interesting one.
func Quarantine(fsys FS, path string) (string, error) {
	q := path + QuarantineSuffix
	if err := orOS(fsys).Rename(path, q); err != nil {
		return "", err
	}
	return q, nil
}

// readFileFS opens and decodes one document through the seam.
func readFileFS[T any](fsys FS, path string, read func(io.Reader) (T, error)) (T, error) {
	f, err := orOS(fsys).Open(path)
	if err != nil {
		var zero T
		return zero, err
	}
	defer f.Close()
	return read(f)
}

// writeFileAtomic implements the fsync-before-rename discipline for any
// document renderer — checkpoints and shard ledgers share it. All
// filesystem access goes through fsys so storage faults are injectable
// at every step.
func writeFileAtomic(fsys FS, path string, write func(io.Writer) (int, error)) (int, error) {
	fsys = orOS(fsys)
	tmp := path + ".tmp"
	out, err := fsys.Create(tmp)
	if err != nil {
		return 0, err
	}
	n, err := write(out)
	if err != nil {
		out.Close()
		fsys.Remove(tmp)
		return n, err
	}
	// Flush the content to stable storage before the rename: a rename
	// can be durable while the data it points at is not, which would
	// surface after a power loss as a truncated file under the final
	// name (caught by the CRC, but the previous checkpoint is lost).
	if err := out.Sync(); err != nil {
		out.Close()
		fsys.Remove(tmp)
		return n, err
	}
	if err := out.Close(); err != nil {
		fsys.Remove(tmp)
		return n, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return n, err
	}
	// Persist the rename itself: the directory entry is metadata of the
	// parent directory, not of the file.
	return n, fsys.SyncDir(filepath.Dir(path))
}
