// Package checkpoint defines the on-disk snapshot format of an
// interrupted DISC-all run: the results and statistics of every completed
// first-level partition, so a resumed run re-executes only the unfinished
// ones and still produces a result set byte-identical to an uninterrupted
// run (the engine merges restored and freshly mined partitions in the
// same ascending key order either way).
//
// The encoding is a versioned, checksummed text format:
//
//	DISCCKPT v1 crc32=<hex> bytes=<payload length>
//	algo <miner name>
//	fingerprint <16 hex digits>
//	minsup <δ>
//	shard <index> <count>            (optional: shard-granular snapshot)
//	partitions <count>
//	partition <pairs>
//	stats <Rounds> <FrequentHits> <Skips> <KMSCalls> <CKMSCalls> <Dropped>
//	levels <count per partitioning level...>
//	nrr <float64-bits-hex/sample-count pairs per level...>
//	patterns <count>
//	<pairs> <support>        × count
//
// where <pairs> is a pattern in the paper's (item, transaction-number)
// representation, one "item:tno" token per pair. The CRC32 (IEEE) covers
// the payload after the header line; a length or checksum mismatch reads
// back as ErrCorrupt, an unknown version as ErrVersion, so a torn or
// truncated write can never silently resume from garbage. NRR means are
// stored as raw IEEE-754 bits, so restored statistics are bit-exact.
//
// The fingerprint binds a checkpoint to the job that produced it — the
// algorithm, its result-relevant options, δ and the database content.
// Resuming under a different job is detected by the caller via
// Fingerprint and rejected with ErrMismatch before any mining happens.
// The worker count is deliberately excluded: the engine's result is
// identical at every worker count, so a run may resume on different
// hardware.
package checkpoint

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Version is the current encoding version.
const Version = 1

// The typed failures of reading a checkpoint.
var (
	// ErrCorrupt marks a checkpoint whose checksum, length or structure
	// does not decode: a torn write, truncation or hand-editing.
	ErrCorrupt = errors.New("checkpoint: corrupt file")
	// ErrVersion marks a checkpoint written by an unknown format version.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrMismatch marks a checkpoint that decodes but belongs to a
	// different job (algorithm, options, δ or database changed).
	ErrMismatch = errors.New("checkpoint: job mismatch")
)

// PartitionStats is the serializable projection of the engine's
// per-partition statistics. NRRByLevel and NRRCount run in parallel: the
// mean observed non-reduction rate per level and the number of samples
// behind it (needed to merge means exactly as a live run would).
type PartitionStats struct {
	Rounds, FrequentHits, Skips, KMSCalls, CKMSCalls, Dropped int
	PartitionsByLevel                                         []int
	NRRByLevel                                                []float64
	NRRCount                                                  []int
}

// Partition is the completed work of one first-level partition: its key
// (a frequent 1-sequence), every frequent pattern mined inside it with
// exact supports, and the statistics of the subtree.
type Partition struct {
	Key      seq.Pattern
	Patterns []mining.PatternCount
	Stats    PartitionStats
}

// File is a decoded checkpoint. A ShardCount above zero marks a
// shard-granular snapshot — the partitions of shard Shard of ShardCount,
// the unit the cluster protocol ships between worker and coordinator.
// ShardCount zero (the default, and the only form older files carry) is
// a whole-job snapshot. The shard marker is advisory routing metadata:
// the fingerprint still binds the file to the whole job, and restoring a
// shard file into a differently sharded (or local) run stays correct
// because partitions restore by key.
type File struct {
	Algo        string
	Fingerprint uint64
	MinSup      int
	Shard       int
	ShardCount  int
	Partitions  []Partition
}

// Fingerprint binds a checkpoint to a mining job: the algorithm name, a
// caller-provided signature of the result-relevant options, δ, and the
// database content (customer sequences in order; customer ids are
// excluded because results do not depend on them).
func Fingerprint(algo, optionsSig string, minSup int, db mining.Database) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00", algo, optionsSig, minSup)
	for _, cs := range db {
		io.WriteString(h, cs.Pattern().Key())
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func writePairs(b *strings.Builder, p seq.Pattern) {
	for i := 0; i < p.Len(); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "%d:%d", p.ItemAt(i), p.TNoAt(i))
	}
}

func parsePairs(fields []string) (seq.Pattern, error) {
	items := make([]seq.Item, len(fields))
	tnos := make([]int32, len(fields))
	for i, f := range fields {
		c := strings.IndexByte(f, ':')
		if c < 0 {
			return seq.Pattern{}, fmt.Errorf("bad pair %q", f)
		}
		it, err := strconv.ParseUint(f[:c], 10, 32)
		if err != nil {
			return seq.Pattern{}, fmt.Errorf("bad item in pair %q", f)
		}
		tn, err := strconv.ParseInt(f[c+1:], 10, 32)
		if err != nil {
			return seq.Pattern{}, fmt.Errorf("bad tno in pair %q", f)
		}
		items[i], tnos[i] = seq.Item(it), int32(tn)
	}
	return seq.PatternFromPairs(items, tnos)
}

// writePartition renders one partition block — the unit both the
// checkpoint payload and the shard ledger share.
func writePartition(b *strings.Builder, p Partition) {
	b.WriteString("partition ")
	writePairs(b, p.Key)
	b.WriteByte('\n')
	s := p.Stats
	fmt.Fprintf(b, "stats %d %d %d %d %d %d\n",
		s.Rounds, s.FrequentHits, s.Skips, s.KMSCalls, s.CKMSCalls, s.Dropped)
	b.WriteString("levels")
	for _, n := range s.PartitionsByLevel {
		fmt.Fprintf(b, " %d", n)
	}
	b.WriteByte('\n')
	b.WriteString("nrr")
	for i, v := range s.NRRByLevel {
		n := 0
		if i < len(s.NRRCount) {
			n = s.NRRCount[i]
		}
		fmt.Fprintf(b, " %016x/%d", math.Float64bits(v), n)
	}
	b.WriteByte('\n')
	fmt.Fprintf(b, "patterns %d\n", len(p.Patterns))
	for _, pc := range p.Patterns {
		writePairs(b, pc.Pattern)
		fmt.Fprintf(b, " %d\n", pc.Support)
	}
}

// payload renders everything after the header line.
func (f *File) payload() string {
	var b strings.Builder
	fmt.Fprintf(&b, "algo %s\n", f.Algo)
	fmt.Fprintf(&b, "fingerprint %016x\n", f.Fingerprint)
	fmt.Fprintf(&b, "minsup %d\n", f.MinSup)
	if f.ShardCount > 0 {
		fmt.Fprintf(&b, "shard %d %d\n", f.Shard, f.ShardCount)
	}
	fmt.Fprintf(&b, "partitions %d\n", len(f.Partitions))
	for _, p := range f.Partitions {
		writePartition(&b, p)
	}
	return b.String()
}

// writeDoc writes one versioned+checksummed document: a header line
// carrying magic, version, CRC32 and payload length, then the payload.
// The checkpoint and the shard ledger differ only in magic and payload
// grammar.
func writeDoc(w io.Writer, magic, payload string) (int, error) {
	header := fmt.Sprintf("%s v%d crc32=%08x bytes=%d\n",
		magic, Version, crc32.ChecksumIEEE([]byte(payload)), len(payload))
	n, err := io.WriteString(w, header)
	if err != nil {
		return n, err
	}
	m, err := io.WriteString(w, payload)
	return n + m, err
}

// readDoc verifies a document's magic, version, payload length and
// checksum, returning a lineReader over the payload.
func readDoc(r io.Reader, magic string) (*lineReader, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrCorrupt, err)
	}
	var version int
	var sum uint32
	var n int
	if _, err := fmt.Sscanf(strings.TrimSuffix(header, "\n"),
		magic+" v%d crc32=%x bytes=%d", &version, &sum, &n); err != nil {
		return nil, fmt.Errorf("%w: bad header %q", ErrCorrupt, strings.TrimSpace(header))
	}
	if version != Version {
		return nil, fmt.Errorf("%w: v%d (this build reads v%d)", ErrVersion, version, Version)
	}
	payload, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(payload) != n {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrCorrupt, len(payload), n)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum %08x, header says %08x", ErrCorrupt, got, sum)
	}
	return &lineReader{lines: strings.Split(strings.TrimSuffix(string(payload), "\n"), "\n")}, nil
}

// Write renders the checkpoint to w: header line with version, CRC32 and
// payload length, then the payload. It returns the number of bytes
// written so callers can observe snapshot sizes.
func (f *File) Write(w io.Writer) (int, error) {
	return writeDoc(w, "DISCCKPT", f.payload())
}

// WriteFile writes the checkpoint atomically and durably: to path+".tmp"
// first, fsynced before the rename over path, with the parent directory
// fsynced after — so a crash (or kill -9) at any point leaves either the
// previous checkpoint or the new one under the real name, never a torn
// file. A leftover .tmp from a crash mid-write is invisible to readers
// and overwritten by the next attempt. Returns the snapshot size in
// bytes.
func (f *File) WriteFile(path string) (int, error) {
	return f.WriteFileFS(OS, path)
}

// WriteFileFS is WriteFile over an explicit filesystem (nil means OS) —
// the entry point fault-injecting callers use.
func (f *File) WriteFileFS(fsys FS, path string) (int, error) {
	return writeFileAtomic(fsys, path, f.Write)
}

// lineReader walks the payload line by line with context for errors.
type lineReader struct {
	lines []string
	pos   int
}

func (lr *lineReader) next(prefix string) ([]string, error) {
	if lr.pos >= len(lr.lines) {
		return nil, fmt.Errorf("%w: truncated payload, expected %q line", ErrCorrupt, prefix)
	}
	line := lr.lines[lr.pos]
	lr.pos++
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != prefix {
		return nil, fmt.Errorf("%w: line %d: expected %q, got %q", ErrCorrupt, lr.pos, prefix, line)
	}
	return fields[1:], nil
}

// tryNext consumes and returns the next line's fields when it starts
// with prefix, leaving the reader untouched otherwise — for optional
// lines, which keep the format at v1.
func (lr *lineReader) tryNext(prefix string) ([]string, bool) {
	if lr.pos >= len(lr.lines) {
		return nil, false
	}
	fields := strings.Fields(lr.lines[lr.pos])
	if len(fields) == 0 || fields[0] != prefix {
		return nil, false
	}
	lr.pos++
	return fields[1:], true
}

func atoi(s string) (int, error) { return strconv.Atoi(s) }

// Read decodes a checkpoint, verifying version, payload length and
// checksum before parsing.
func Read(r io.Reader) (*File, error) {
	lr, err := readDoc(r, "DISCCKPT")
	if err != nil {
		return nil, err
	}

	f := &File{}
	var fields []string
	fields, err = lr.next("algo")
	if err != nil {
		return nil, err
	}
	if len(fields) != 1 {
		return nil, fmt.Errorf("%w: bad algo line", ErrCorrupt)
	}
	f.Algo = fields[0]
	if fields, err = lr.next("fingerprint"); err != nil {
		return nil, err
	}
	if len(fields) != 1 {
		return nil, fmt.Errorf("%w: bad fingerprint line", ErrCorrupt)
	}
	if f.Fingerprint, err = strconv.ParseUint(fields[0], 16, 64); err != nil {
		return nil, fmt.Errorf("%w: bad fingerprint %q", ErrCorrupt, fields[0])
	}
	if fields, err = lr.next("minsup"); err != nil {
		return nil, err
	}
	if len(fields) != 1 {
		return nil, fmt.Errorf("%w: bad minsup line", ErrCorrupt)
	}
	if f.MinSup, err = atoi(fields[0]); err != nil {
		return nil, fmt.Errorf("%w: bad minsup %q", ErrCorrupt, fields[0])
	}
	if sf, ok := lr.tryNext("shard"); ok {
		if len(sf) != 2 {
			return nil, fmt.Errorf("%w: shard line has %d fields, want 2", ErrCorrupt, len(sf))
		}
		if f.Shard, err = atoi(sf[0]); err != nil {
			return nil, fmt.Errorf("%w: bad shard index %q", ErrCorrupt, sf[0])
		}
		if f.ShardCount, err = atoi(sf[1]); err != nil {
			return nil, fmt.Errorf("%w: bad shard count %q", ErrCorrupt, sf[1])
		}
		if f.ShardCount < 1 || f.Shard < 0 || f.Shard >= f.ShardCount {
			return nil, fmt.Errorf("%w: shard %d of %d out of range", ErrCorrupt, f.Shard, f.ShardCount)
		}
	}
	if fields, err = lr.next("partitions"); err != nil {
		return nil, err
	}
	nparts, err := atoi(fields[0])
	if err != nil || nparts < 0 {
		return nil, fmt.Errorf("%w: bad partition count", ErrCorrupt)
	}
	for i := 0; i < nparts; i++ {
		p, err := readPartition(lr)
		if err != nil {
			return nil, err
		}
		f.Partitions = append(f.Partitions, p)
	}
	return f, nil
}

func readPartition(lr *lineReader) (Partition, error) {
	var p Partition
	fields, err := lr.next("partition")
	if err != nil {
		return p, err
	}
	if p.Key, err = parsePairs(fields); err != nil || p.Key.IsEmpty() {
		return p, fmt.Errorf("%w: bad partition key: %v", ErrCorrupt, err)
	}
	if fields, err = lr.next("stats"); err != nil {
		return p, err
	}
	if len(fields) != 6 {
		return p, fmt.Errorf("%w: stats line has %d fields, want 6", ErrCorrupt, len(fields))
	}
	dst := []*int{&p.Stats.Rounds, &p.Stats.FrequentHits, &p.Stats.Skips,
		&p.Stats.KMSCalls, &p.Stats.CKMSCalls, &p.Stats.Dropped}
	for i, f := range fields {
		if *dst[i], err = atoi(f); err != nil {
			return p, fmt.Errorf("%w: bad stats field %q", ErrCorrupt, f)
		}
	}
	if fields, err = lr.next("levels"); err != nil {
		return p, err
	}
	for _, f := range fields {
		n, err := atoi(f)
		if err != nil {
			return p, fmt.Errorf("%w: bad level count %q", ErrCorrupt, f)
		}
		p.Stats.PartitionsByLevel = append(p.Stats.PartitionsByLevel, n)
	}
	if fields, err = lr.next("nrr"); err != nil {
		return p, err
	}
	for _, f := range fields {
		c := strings.IndexByte(f, '/')
		if c < 0 {
			return p, fmt.Errorf("%w: bad nrr pair %q", ErrCorrupt, f)
		}
		bits, err := strconv.ParseUint(f[:c], 16, 64)
		if err != nil {
			return p, fmt.Errorf("%w: bad nrr bits %q", ErrCorrupt, f)
		}
		n, err := atoi(f[c+1:])
		if err != nil {
			return p, fmt.Errorf("%w: bad nrr count %q", ErrCorrupt, f)
		}
		p.Stats.NRRByLevel = append(p.Stats.NRRByLevel, math.Float64frombits(bits))
		p.Stats.NRRCount = append(p.Stats.NRRCount, n)
	}
	if fields, err = lr.next("patterns"); err != nil {
		return p, err
	}
	npat, err := atoi(fields[0])
	if err != nil || npat < 0 {
		return p, fmt.Errorf("%w: bad pattern count", ErrCorrupt)
	}
	for j := 0; j < npat; j++ {
		if lr.pos >= len(lr.lines) {
			return p, fmt.Errorf("%w: truncated pattern list", ErrCorrupt)
		}
		line := strings.Fields(lr.lines[lr.pos])
		lr.pos++
		if len(line) < 2 {
			return p, fmt.Errorf("%w: bad pattern line %d", ErrCorrupt, lr.pos)
		}
		pat, err := parsePairs(line[:len(line)-1])
		if err != nil {
			return p, fmt.Errorf("%w: bad pattern: %v", ErrCorrupt, err)
		}
		sup, err := atoi(line[len(line)-1])
		if err != nil {
			return p, fmt.Errorf("%w: bad support %q", ErrCorrupt, line[len(line)-1])
		}
		p.Patterns = append(p.Patterns, mining.PatternCount{Pattern: pat, Support: sup})
	}
	return p, nil
}

// ReadFile loads a checkpoint from path.
func ReadFile(path string) (*File, error) {
	return ReadFileFS(OS, path)
}

// ReadFileFS is ReadFile over an explicit filesystem (nil means OS).
func ReadFileFS(fsys FS, path string) (*File, error) {
	return readFileFS(fsys, path, Read)
}
