package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeAged writes content at path and backdates its mtime by age.
func writeAged(t *testing.T, path, content string, now time.Time, age time.Duration) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	when := now.Add(-age)
	if err := os.Chtimes(path, when, when); err != nil {
		t.Fatal(err)
	}
}

func TestKindOf(t *testing.T) {
	cases := map[string]string{
		"a/b/0123.ckpt":           KindCheckpoint,
		"a/b/0123.ledger":         KindLedger,
		"a/b/0123.ckpt.tmp":       KindTmp,
		"a/b/0123.ledger.corrupt": KindQuarantined,
		"a/b/0123.ckpt.corrupt":   KindQuarantined,
		"a/b/README.md":           "",
		"a/b/results.json":        "",
	}
	for path, want := range cases {
		if got := kindOf(path); got != want {
			t.Errorf("kindOf(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestSweepReclaimsByAge(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	writeAged(t, filepath.Join(dir, "old.ckpt"), "x", now, 48*time.Hour)
	writeAged(t, filepath.Join(dir, "old.ledger"), "x", now, 48*time.Hour)
	writeAged(t, filepath.Join(dir, "stale.ckpt.tmp"), "x", now, 48*time.Hour)
	writeAged(t, filepath.Join(dir, "fresh.ckpt"), "x", now, time.Hour)
	writeAged(t, filepath.Join(dir, "kept.ckpt"), "x", now, 48*time.Hour)
	writeAged(t, filepath.Join(dir, "not-ours.txt"), "x", now, 48*time.Hour)

	var gotFiles int
	var gotBytes int64
	s := &Sweeper{
		Retention: 24 * time.Hour,
		Now:       func() time.Time { return now },
		Keep:      func(path string) bool { return filepath.Base(path) == "kept.ckpt" },
		OnReclaim: func(kind string, files int, bytes int64) { gotFiles += files; gotBytes += bytes },
	}
	if n := s.Sweep(dir); n != 3 {
		t.Fatalf("Sweep reclaimed %d files, want 3", n)
	}
	if gotFiles != 3 || gotBytes != 3 {
		t.Fatalf("OnReclaim saw %d files / %d bytes, want 3 / 3", gotFiles, gotBytes)
	}
	for _, name := range []string{"fresh.ckpt", "kept.ckpt", "not-ours.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s should have survived the sweep: %v", name, err)
		}
	}
	for _, name := range []string{"old.ckpt", "old.ledger", "stale.ckpt.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s should have been reclaimed (stat err: %v)", name, err)
		}
	}
}

func TestSweepCapsQuarantine(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	// Five young quarantined files, oldest first by mtime; cap of 2 must
	// keep only the two newest even though none exceed the retention age.
	names := []string{"a.ckpt.corrupt", "b.ckpt.corrupt", "c.ledger.corrupt", "d.ckpt.corrupt", "e.ckpt.corrupt"}
	for i, name := range names {
		writeAged(t, filepath.Join(dir, name), "x", now, time.Duration(len(names)-i)*time.Minute)
	}
	s := &Sweeper{
		Retention:      24 * time.Hour,
		MaxQuarantined: 2,
		Now:            func() time.Time { return now },
	}
	if n := s.Sweep(dir); n != 3 {
		t.Fatalf("Sweep reclaimed %d files, want 3", n)
	}
	for _, name := range names[:3] {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("oldest quarantined file %s should be gone (stat err: %v)", name, err)
		}
	}
	for _, name := range names[3:] {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("newest quarantined file %s should survive: %v", name, err)
		}
	}
}

func TestSweepZeroValueDeletesNothing(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	writeAged(t, filepath.Join(dir, "ancient.ckpt"), "x", now, 1000*time.Hour)
	writeAged(t, filepath.Join(dir, "ancient.ckpt.corrupt"), "x", now, 1000*time.Hour)
	var s Sweeper
	if n := s.Sweep(dir); n != 0 {
		t.Fatalf("zero-value Sweep reclaimed %d files, want 0", n)
	}
}

func TestSweepMissingDir(t *testing.T) {
	s := &Sweeper{Retention: time.Hour}
	if n := s.Sweep(filepath.Join(t.TempDir(), "never-created")); n != 0 {
		t.Fatal("sweeping a missing directory should reclaim nothing")
	}
}

func TestScrubQuarantinesBitRot(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "0000000000000001.ckpt")
	if _, err := sample().WriteFile(good); err != nil {
		t.Fatal(err)
	}
	rotted := filepath.Join(dir, "0000000000000002.ckpt")
	if _, err := sample().WriteFile(rotted); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(rotted)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10 // rot one bit at rest
	if err := os.WriteFile(rotted, b, 0o644); err != nil {
		t.Fatal(err)
	}
	ledger := filepath.Join(dir, "0000000000000003.ledger")
	if _, err := sampleLedger().WriteFile(ledger); err != nil {
		t.Fatal(err)
	}

	var kinds []string
	s := &Sweeper{OnQuarantine: func(kind string) { kinds = append(kinds, kind) }}
	if n := s.Scrub(dir); n != 1 {
		t.Fatalf("Scrub quarantined %d files, want 1", n)
	}
	if len(kinds) != 1 || kinds[0] != KindCheckpoint {
		t.Fatalf("OnQuarantine kinds = %v, want [checkpoint]", kinds)
	}
	if _, err := os.Stat(rotted + QuarantineSuffix); err != nil {
		t.Fatalf("rotted checkpoint should be at %s: %v", rotted+QuarantineSuffix, err)
	}
	if _, err := os.Stat(rotted); !os.IsNotExist(err) {
		t.Fatalf("rotted checkpoint should no longer hold its original name (stat err: %v)", err)
	}
	if _, err := ReadFileFS(nil, good); err != nil {
		t.Fatalf("intact checkpoint must survive a scrub untouched: %v", err)
	}
	if _, err := ReadLedgerFileFS(nil, ledger); err != nil {
		t.Fatalf("intact ledger must survive a scrub untouched: %v", err)
	}
	// A second pass finds nothing left to quarantine.
	if n := s.Scrub(dir); n != 0 {
		t.Fatalf("second Scrub quarantined %d files, want 0", n)
	}
}

func TestQuarantineRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deadbeef.ledger")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := Quarantine(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if q != path+QuarantineSuffix {
		t.Fatalf("quarantine path %q, want %q", q, path+QuarantineSuffix)
	}
	b, err := os.ReadFile(q)
	if err != nil || string(b) != "garbage" {
		t.Fatalf("quarantined evidence must survive intact: %q, %v", b, err)
	}
	if _, err := Quarantine(nil, path); err == nil {
		t.Fatal("quarantining a missing file should fail")
	}
}
