package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileSurvivesTornTemp simulates a crash mid-write: a partial
// .tmp file left behind by a killed process must never be visible at the
// final path, must not disturb an existing good checkpoint, and must be
// rejected by the CRC check if read directly.
func TestWriteFileSurvivesTornTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	f := sample()
	if _, err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	// A later write crashes after emitting only part of the payload.
	torn := encode(t, f)[:20]
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// The final path still carries the intact previous checkpoint.
	back, err := ReadFile(path)
	if err != nil {
		t.Fatalf("good checkpoint unreadable after torn temp: %v", err)
	}
	if back.Fingerprint != f.Fingerprint {
		t.Fatalf("checkpoint content changed: %+v", back)
	}
	// The torn temp itself never decodes.
	if _, err := ReadFile(tmp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn temp read = %v, want ErrCorrupt", err)
	}

	// The next successful write replaces both the leftover temp and the
	// final file, and retires the temp name.
	f.MinSup = 9
	if _, err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if back, err = ReadFile(path); err != nil || back.MinSup != 9 {
		t.Fatalf("rewrite: (%+v, %v)", back, err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file still visible after successful write: %v", err)
	}
}

// TestTruncatedFileRejected covers every truncation point of the encoded
// file: whatever prefix a torn write leaves, Read must fail with a typed
// error, never decode garbage.
func TestTruncatedFileRejected(t *testing.T) {
	good := encode(t, sample())
	for _, frac := range []int{0, 1, len(good) / 4, len(good) / 2, len(good) - 1} {
		if _, err := Read(strings.NewReader(good[:frac])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated at %d: err = %v, want ErrCorrupt", frac, err)
		}
	}
}

// TestWriteFileFailurePaths verifies failed writes clean up their temp
// file instead of leaving debris for the next attempt to trip on.
func TestWriteFileFailurePaths(t *testing.T) {
	dir := t.TempDir()
	// Creating the temp file in a missing directory fails outright.
	if _, err := sample().WriteFile(filepath.Join(dir, "missing", "run.ckpt")); err == nil {
		t.Fatal("WriteFile into a missing directory should fail")
	}
	// A successful write leaves exactly the checkpoint behind.
	path := filepath.Join(dir, "run.ckpt")
	if _, err := sample().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.ckpt" {
		t.Fatalf("directory contents = %v, want only run.ckpt", entries)
	}
}
