package prefixspan

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

// TestTable2Projection reproduces the paper's Table 2: the projected
// database of <(a)> over Table 1 contains CIDs 1 and 4, with the first
// transactions reduced to the items from a onward.
func TestTable2Projection(t *testing.T) {
	db := testutil.Table1()
	var got []proj
	for _, cs := range db {
		if pr, ok := projectInitial(cs, 1, false); ok {
			got = append(got, pr)
		}
	}
	if len(got) != 2 {
		t.Fatalf("projected database of <(a)> has %d entries, want 2", len(got))
	}
	// CID 1: (a,e,g)(b)(h)(f)(c)(b,f) -> (_,e,g)(b)(h)(f)(c)(b,f); our
	// postfix keeps the matched item a in front of the "_" fragment.
	want0 := "<(a, e, g)(b)(h)(f)(c)(b, f)>"
	if got[0].cs.Pattern().Letters() != want0 {
		t.Errorf("postfix of CID 1 = %s, want %s", got[0].cs.Pattern().Letters(), want0)
	}
	// CID 4: (f)(a,g)(b,f,h)(b,f) -> (_,g)(b,f,h)(b,f).
	want1 := "<(a, g)(b, f, h)(b, f)>"
	if got[1].cs.Pattern().Letters() != want1 {
		t.Errorf("postfix of CID 4 = %s, want %s", got[1].cs.Pattern().Letters(), want1)
	}
	if got[0].t0 != 0 || got[0].i0 != 0 {
		t.Errorf("matching point of postfix should be (0,0), got (%d,%d)", got[0].t0, got[0].i0)
	}
}

// TestTable1Golden mines the paper's Table 1 with δ=2 and compares both
// variants against the exhaustive oracle.
func TestTable1Golden(t *testing.T) {
	db := testutil.Table1()
	ref, err := bruteforce.Exhaustive{}.Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, []mining.Miner{Basic{}, Pseudo{}}, db, 2)
}

// TestTable6Golden mines the §3.1 example with δ=3.
func TestTable6Golden(t *testing.T) {
	db := testutil.Table6()
	ref, err := bruteforce.Exhaustive{}.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, []mining.Miner{Basic{}, Pseudo{}}, db, 3)
}

// TestIExtensionAcrossTransactions is the classic itemset-PrefixSpan trap:
// the i-extension pattern <(a)(b, c)> is only visible in a transaction
// *after* the first postfix itemset. Implementations that only scan the
// "_"-marked itemset miss it.
func TestIExtensionAcrossTransactions(t *testing.T) {
	db := mining.Database{
		seq.MustParseCustomerSeq(1, "(a)(b)(b, c)"),
		seq.MustParseCustomerSeq(2, "(a)(b, c)"),
	}
	for _, m := range []mining.Miner{Basic{}, Pseudo{}} {
		res, err := m.Mine(db, 2)
		if err != nil {
			t.Fatal(err)
		}
		if sup, ok := res.Support(seq.MustParsePattern("(a)(b, c)")); !ok || sup != 2 {
			t.Errorf("%s: support of <(a)(b, c)> = %d,%v, want 2,true", m.Name(), sup, ok)
		}
	}
}

// TestRepeatedItemsetsDeepPatterns exercises repeated itemsets, which
// stress the leftmost-projection logic.
func TestRepeatedItemsetsDeepPatterns(t *testing.T) {
	db := mining.Database{
		seq.MustParseCustomerSeq(1, "(a, b)(a, b)(a, b)(a, b)"),
		seq.MustParseCustomerSeq(2, "(a, b)(a, b)(a, b)(a, b)"),
	}
	ref, err := bruteforce.Exhaustive{}.Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, []mining.Miner{Basic{}, Pseudo{}}, db, 2)
	res, _ := Basic{}.Mine(db, 2)
	if sup, ok := res.Support(seq.MustParsePattern("(a, b)(a, b)(a, b)(a, b)")); !ok || sup != 2 {
		t.Errorf("longest pattern support = %d,%v", sup, ok)
	}
}

// TestRandomAgainstOracle is the main differential test for both variants.
func TestRandomAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 60; i++ {
		db := testutil.RandomDB(r, 6+r.Intn(8), 5, 4, 3)
		minSup := 1 + r.Intn(4)
		ref, err := bruteforce.Exhaustive{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, []mining.Miner{Basic{}, Pseudo{}}, db, minSup)
	}
}

// TestSkewedAgainstLevelWise uses larger skewed databases (too big for the
// exponential oracle) against the level-wise miner.
func TestSkewedAgainstLevelWise(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 10; i++ {
		db := testutil.SkewedRandomDB(r, 60, 12, 6, 4)
		minSup := 3 + r.Intn(6)
		ref, err := bruteforce.LevelWise{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, []mining.Miner{Basic{}, Pseudo{}}, db, minSup)
	}
}

func TestDegenerateInputs(t *testing.T) {
	for _, m := range []mining.Miner{Basic{}, Pseudo{}} {
		res, err := m.Mine(nil, 1)
		if err != nil || res.Len() != 0 {
			t.Errorf("%s on empty db: %v, %d patterns", m.Name(), err, res.Len())
		}
		db := mining.Database{seq.MustParseCustomerSeq(1, "(a)")}
		res, err = m.Mine(db, 1)
		if err != nil || res.Len() != 1 {
			t.Errorf("%s on singleton db: %v, %d patterns", m.Name(), err, res.Len())
		}
		// minSup 0 is clamped to 1.
		res, err = m.Mine(db, 0)
		if err != nil || res.Len() != 1 {
			t.Errorf("%s with minSup 0: %v, %d patterns", m.Name(), err, res.Len())
		}
	}
}
