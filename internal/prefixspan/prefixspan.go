// Package prefixspan implements the PrefixSpan algorithm of Pei et al.
// (ICDE 2001) for itemset sequences, in the two variants compared by Chiu,
// Wu & Chen (ICDE 2004, §4.1):
//
//   - Basic: physical projection — every recursion level materializes the
//     projected postfix databases (the paper's Table 2 shows the projected
//     database of <(a)> for Table 1).
//   - Pseudo: pseudo-projection — projections are (sequence, offset)
//     pointers into the original database, avoiding the copying cost when
//     the database fits in memory.
//
// Both share one recursion engine. A projection records the greedy leftmost
// matching point (t0, i0) of the current prefix pattern p in a customer
// sequence: t0 is the transaction holding p's last itemset, i0 the
// flattened index of p's last item. From there:
//
//   - s-extension items are the items of transactions after t0;
//   - i-extension items are the items after i0 within t0, plus — required
//     for completeness on itemset sequences — the items x > lastItem(p) of
//     any later transaction that contains p's entire last itemset (the
//     recursion's prefix part is matched before t0 < t, so such a
//     transaction hosts a full match of p extended with x). Implementations
//     that only look at the "_"-marked first postfix itemset lose patterns.
package prefixspan

import (
	"github.com/disc-mining/disc/internal/counting"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

func init() {
	mining.Register("prefixspan", func() mining.Miner { return Basic{} })
	mining.Register("pseudo", func() mining.Miner { return Pseudo{} })
}

// Basic is PrefixSpan with physically materialized projected databases.
type Basic struct{}

// Name implements mining.Miner.
func (Basic) Name() string { return "prefixspan" }

// Mine implements mining.Miner.
func (Basic) Mine(db mining.Database, minSup int) (*mining.Result, error) {
	return run(db, minSup, false)
}

// Pseudo is PrefixSpan with pseudo-projection (pointer projections).
type Pseudo struct{}

// Name implements mining.Miner.
func (Pseudo) Name() string { return "pseudo" }

// Mine implements mining.Miner.
func (Pseudo) Mine(db mining.Database, minSup int) (*mining.Result, error) {
	return run(db, minSup, true)
}

// proj is one projected customer: the sequence to scan (the original
// sequence under pseudo-projection, the materialized postfix under physical
// projection) plus the matching point of the current prefix within it.
type proj struct {
	cs *seq.CustomerSeq
	t0 int32 // transaction index of the prefix's last itemset
	i0 int32 // flattened index of the prefix's last item
}

type engine struct {
	minSup int
	pseudo bool
	res    *mining.Result
	arrays []*counting.Array // one counting array per recursion depth
	max    seq.Item
}

func run(db mining.Database, minSup int, pseudo bool) (*mining.Result, error) {
	e := &engine{
		minSup: minSup,
		pseudo: pseudo,
		res:    mining.NewResult(),
		max:    db.MaxItem(),
	}
	if minSup < 1 {
		minSup = 1
		e.minSup = 1
	}

	// Frequent 1-sequences by one scan.
	sup := make([]int, e.max+1)
	seen := make([]bool, e.max+1)
	var scratch []seq.Item
	for _, cs := range db {
		scratch = cs.DistinctItems(scratch[:0], seen)
		for _, it := range scratch {
			sup[it]++
		}
	}
	for x := seq.Item(1); x <= e.max; x++ {
		if sup[x] < minSup {
			continue
		}
		p := seq.NewPattern(seq.Itemset{x})
		// Project every customer containing x on its leftmost occurrence.
		var projs []proj
		for _, cs := range db {
			if pr, ok := projectInitial(cs, x, pseudo); ok {
				projs = append(projs, pr)
			}
		}
		e.mine(p, projs, 0)
	}
	return e.res, nil
}

func projectInitial(cs *seq.CustomerSeq, x seq.Item, pseudo bool) (proj, bool) {
	for t := 0; t < cs.NTrans(); t++ {
		tr := cs.Transaction(t)
		if !tr.Has(x) {
			continue
		}
		i0 := int(cs.TransStart(t))
		for cs.ItemAt(i0) != x {
			i0++
		}
		if pseudo {
			return proj{cs: cs, t0: int32(t), i0: int32(i0)}, true
		}
		post := cs.Suffix(t, x)
		return proj{cs: post, t0: 0, i0: 0}, true
	}
	return proj{}, false
}

// mine records p (supported by every projected customer) and recurses into
// its frequent extensions.
func (e *engine) mine(p seq.Pattern, projs []proj, depth int) {
	e.res.Add(p, len(projs))
	if len(projs) < e.minSup {
		return
	}
	arr := e.array(depth)
	arr.Reset()
	lastSet := p.LastItemset()
	le := p.LastItem()
	for ci, pr := range projs {
		cid := int32(ci)
		cs := pr.cs
		// i-extensions within the matched transaction, after the matching
		// point.
		end := cs.TransStart(int(pr.t0) + 1)
		for j := pr.i0 + 1; j < end; j++ {
			arr.TouchI(cs.ItemAt(int(j)), cid)
		}
		// Later transactions: s-extensions always, i-extensions when the
		// transaction contains p's whole last itemset.
		for t := int(pr.t0) + 1; t < cs.NTrans(); t++ {
			tr := cs.Transaction(t)
			for _, x := range tr {
				arr.TouchS(x, cid)
			}
			if tr.Contains(lastSet) {
				for _, x := range tr {
					if x > le {
						arr.TouchI(x, cid)
					}
				}
			}
		}
	}
	for _, x := range arr.FrequentI(e.minSup, nil) {
		child := p.ExtendI(x)
		e.mine(child, e.project(projs, child, x, true), depth+1)
	}
	for _, x := range arr.FrequentS(e.minSup, nil) {
		child := p.ExtendS(x)
		e.mine(child, e.project(projs, child, x, false), depth+1)
	}
}

// project builds the projected database of the child pattern from the
// parent's projections.
func (e *engine) project(projs []proj, child seq.Pattern, x seq.Item, iext bool) []proj {
	lastSet := child.LastItemset()
	out := make([]proj, 0, len(projs))
	for _, pr := range projs {
		cs := pr.cs
		t, i, ok := int32(-1), int32(-1), false
		if iext {
			// Candidate 1: x occurs after the matching point within t0.
			end := cs.TransStart(int(pr.t0) + 1)
			for j := pr.i0 + 1; j < end; j++ {
				if cs.ItemAt(int(j)) == x {
					t, i, ok = pr.t0, j, true
					break
				}
			}
			// Candidate 2: a later transaction containing the whole new
			// last itemset.
			if !ok {
				t, i, ok = findTransWith(cs, int(pr.t0)+1, lastSet, x)
			}
		} else {
			t, i, ok = findTransWith(cs, int(pr.t0)+1, seq.Itemset{x}, x)
		}
		if !ok {
			continue
		}
		if e.pseudo {
			out = append(out, proj{cs: cs, t0: t, i0: i})
		} else {
			// The postfix's first transaction is cs.Transaction(t) filtered
			// to items >= x, so the matched item x sits at index 0.
			out = append(out, proj{cs: cs.Suffix(int(t), x), t0: 0, i0: 0})
		}
	}
	return out
}

// findTransWith scans transactions from index from for the first one
// containing set; it returns the transaction index and the flattened index
// of x within it.
func findTransWith(cs *seq.CustomerSeq, from int, set seq.Itemset, x seq.Item) (int32, int32, bool) {
	for t := from; t < cs.NTrans(); t++ {
		tr := cs.Transaction(t)
		if !tr.Contains(set) {
			continue
		}
		i := int(cs.TransStart(t))
		for cs.ItemAt(i) != x {
			i++
		}
		return int32(t), int32(i), true
	}
	return 0, 0, false
}

func (e *engine) array(depth int) *counting.Array {
	for len(e.arrays) <= depth {
		e.arrays = append(e.arrays, counting.New(e.max))
	}
	return e.arrays[depth]
}
