// Package testutil provides shared fixtures for the mining test suites:
// the paper's example databases, random database generation, and the
// cross-miner agreement checker used by every algorithm's differential
// tests.
package testutil

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Table1 returns the paper's Table 1 example database.
func Table1() mining.Database {
	return mining.Database{
		seq.MustParseCustomerSeq(1, "(a, e, g)(b)(h)(f)(c)(b, f)"),
		seq.MustParseCustomerSeq(2, "(b)(d, f)(e)"),
		seq.MustParseCustomerSeq(3, "(b, f, g)"),
		seq.MustParseCustomerSeq(4, "(f)(a, g)(b, f, h)(b, f)"),
	}
}

// Table6 returns the paper's Table 6 example database (§3.1, δ = 3).
func Table6() mining.Database {
	return mining.Database{
		seq.MustParseCustomerSeq(1, "(a, d)(d)(a, g, h)(c)"),
		seq.MustParseCustomerSeq(2, "(b)(a)(f)(a, c, e, g)"),
		seq.MustParseCustomerSeq(3, "(a, f, g)(a, e, g, h)(c, g, h)"),
		seq.MustParseCustomerSeq(4, "(f)(a, c, f)(a, c, e, g, h)"),
		seq.MustParseCustomerSeq(5, "(a, g)"),
		seq.MustParseCustomerSeq(6, "(a, f)(a, e, g, h)"),
		seq.MustParseCustomerSeq(7, "(a, b, g)(a, e, g)(g, h)"),
		seq.MustParseCustomerSeq(8, "(b, f)(b, e)(e, f, h)"),
		seq.MustParseCustomerSeq(9, "(d, f)(d, f, g, h)"),
		seq.MustParseCustomerSeq(10, "(b, f, g)(c, e, h)"),
		seq.MustParseCustomerSeq(11, "(e, g)(f)(e, f)"),
	}
}

// RandomDB builds a random database of ncust customer sequences over an
// alphabet of nitems, with up to maxTrans transactions of up to maxPerTrans
// items each.
func RandomDB(r *rand.Rand, ncust, nitems, maxTrans, maxPerTrans int) mining.Database {
	db := make(mining.Database, ncust)
	for c := range db {
		nt := 1 + r.Intn(maxTrans)
		sets := make([]seq.Itemset, nt)
		for i := range sets {
			sz := 1 + r.Intn(maxPerTrans)
			var is seq.Itemset
			for j := 0; j < sz; j++ {
				is = append(is, seq.Item(1+r.Intn(nitems)))
			}
			sets[i] = is
		}
		db[c] = seq.NewCustomerSeq(c+1, sets...)
	}
	return db
}

// SkewedRandomDB builds a random database where item probabilities follow a
// Zipf-ish skew, which produces longer frequent sequences than uniform
// sampling and stresses the deep-recursion paths of the miners.
func SkewedRandomDB(r *rand.Rand, ncust, nitems, maxTrans, maxPerTrans int) mining.Database {
	zipf := rand.NewZipf(r, 1.3, 1.0, uint64(nitems-1))
	db := make(mining.Database, ncust)
	for c := range db {
		nt := 1 + r.Intn(maxTrans)
		sets := make([]seq.Itemset, nt)
		for i := range sets {
			sz := 1 + r.Intn(maxPerTrans)
			var is seq.Itemset
			for j := 0; j < sz; j++ {
				is = append(is, seq.Item(1+zipf.Uint64()))
			}
			sets[i] = is
		}
		db[c] = seq.NewCustomerSeq(c+1, sets...)
	}
	return db
}

// CheckAgainst mines db with every miner and requires each result to be
// identical (patterns and exact supports) to the reference result.
func CheckAgainst(t *testing.T, ref *mining.Result, miners []mining.Miner, db mining.Database, minSup int) {
	t.Helper()
	for _, m := range miners {
		got, err := m.Mine(db, minSup)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if diff := ref.Diff(got); diff != "" {
			t.Fatalf("%s disagrees with reference (minSup=%d, %d customers):\n%s",
				m.Name(), minSup, len(db), diff)
		}
	}
}
