// Package gsp implements the GSP algorithm of Srikant & Agrawal (EDBT
// 1996) in its plain form (no time constraints, sliding windows or
// taxonomies): level-wise candidate generation by self-joining the frequent
// (k-1)-sequences, anti-monotone pruning, and support counting by database
// scan. It is the oldest baseline summarized in §1.1 of Chiu, Wu & Chen
// (ICDE 2004), and the one whose support-counting cost motivates all the
// later algorithms.
package gsp

import (
	"sort"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Miner is the GSP miner. Support counting uses the Srikant-Agrawal
// candidate hash tree unless NoHashTree selects the simpler
// first-item-bucketed scan (kept for differential testing).
type Miner struct {
	NoHashTree bool
}

func init() {
	mining.Register("gsp", func() mining.Miner { return Miner{} })
}

// Name implements mining.Miner.
func (Miner) Name() string { return "gsp" }

// Mine implements mining.Miner.
func (m Miner) Mine(db mining.Database, minSup int) (*mining.Result, error) {
	if minSup < 1 {
		minSup = 1
	}
	res := mining.NewResult()
	maxItem := db.MaxItem()

	// Frequent 1-sequences.
	sup := make([]int, maxItem+1)
	seen := make([]bool, maxItem+1)
	var scratch []seq.Item
	for _, cs := range db {
		scratch = cs.DistinctItems(scratch[:0], seen)
		for _, it := range scratch {
			sup[it]++
		}
	}
	var f1 []seq.Item
	var freq []seq.Pattern // frequent (k-1)-sequences for the next round
	for x := seq.Item(1); x <= maxItem; x++ {
		if sup[x] >= minSup {
			f1 = append(f1, x)
			p := seq.NewPattern(seq.Itemset{x})
			res.Add(p, sup[x])
			freq = append(freq, p)
		}
	}

	for k := 2; len(freq) > 0; k++ {
		var cands []seq.Pattern
		if k == 2 {
			cands = candidates2(f1)
		} else {
			cands = join(freq)
			cands = prune(cands, freq)
		}
		var counts []int
		if m.NoHashTree {
			counts = countSupports(db, cands)
		} else {
			counts = countSupportsHashTree(db, cands)
		}
		freq = freq[:0]
		for i, c := range cands {
			if counts[i] >= minSup {
				res.Add(c, counts[i])
				freq = append(freq, c)
			}
		}
	}
	return res, nil
}

// candidates2 builds the length-2 candidates from the frequent items:
// <(x)(y)> for every ordered pair and <(x, y)> for every x < y.
func candidates2(f1 []seq.Item) []seq.Pattern {
	var out []seq.Pattern
	for _, x := range f1 {
		px := seq.NewPattern(seq.Itemset{x})
		for _, y := range f1 {
			out = append(out, px.ExtendS(y))
			if y > x {
				out = append(out, px.ExtendI(y))
			}
		}
	}
	return out
}

// join implements the GSP join step: s1 joins s2 when s1 minus its first
// item equals s2 minus its last item; the candidate is s1 extended with
// s2's last item, as a new itemset iff that item formed its own itemset in
// s2.
func join(freq []seq.Pattern) []seq.Pattern {
	byDropLast := map[string][]seq.Pattern{}
	for _, s := range freq {
		byDropLast[dropLast(s).Key()] = append(byDropLast[dropLast(s).Key()], s)
	}
	var out []seq.Pattern
	for _, s1 := range freq {
		key := dropFirst(s1).Key()
		for _, s2 := range byDropLast[key] {
			last := s2.LastItem()
			if lastIsAlone(s2) {
				out = append(out, s1.ExtendS(last))
			} else if last > s1.LastItem() {
				// The joined suffixes agree, so s1's last itemset ends with
				// s2's second-to-last item, which is smaller than last.
				out = append(out, s1.ExtendI(last))
			}
		}
	}
	return out
}

// prune drops candidates that have a non-frequent (k-1)-subsequence
// (anti-monotone property). Only item-drop subsequences need checking.
func prune(cands []seq.Pattern, freq []seq.Pattern) []seq.Pattern {
	freqSet := make(map[string]bool, len(freq))
	for _, f := range freq {
		freqSet[f.Key()] = true
	}
	out := cands[:0]
cand:
	for _, c := range cands {
		for i := 0; i < c.Len(); i++ {
			if !freqSet[DropItem(c, i).Key()] {
				continue cand
			}
		}
		out = append(out, c)
	}
	return out
}

// DropItem returns the pattern with the item at flattened position i
// removed; see seq.Pattern.DropItem. Kept as the name the prune tests use.
func DropItem(p seq.Pattern, i int) seq.Pattern { return p.DropItem(i) }

func dropFirst(p seq.Pattern) seq.Pattern { return p.DropItem(0) }

func dropLast(p seq.Pattern) seq.Pattern { return p.DropItem(p.Len() - 1) }

// lastIsAlone reports whether the last item of p forms its own itemset.
func lastIsAlone(p seq.Pattern) bool {
	n := p.Len()
	return n == 1 || p.TNoAt(n-1) != p.TNoAt(n-2)
}

// countSupports scans the database once per level and counts each
// candidate's support by containment. Candidates are bucketed by their
// first item so that a customer only pays for candidates it could possibly
// contain.
func countSupports(db mining.Database, cands []seq.Pattern) []int {
	counts := make([]int, len(cands))
	if len(cands) == 0 {
		return counts
	}
	// Bucket candidate indices by first item.
	buckets := map[seq.Item][]int{}
	for i, c := range cands {
		buckets[c.ItemAt(0)] = append(buckets[c.ItemAt(0)], i)
	}
	var maxItem seq.Item
	for _, c := range cands {
		if c.ItemAt(0) > maxItem {
			maxItem = c.ItemAt(0)
		}
	}
	seen := make([]bool, maxItem+1)
	var scratch []seq.Item
	for _, cs := range db {
		scratch = scratch[:0]
		for _, it := range cs.Items() {
			if it <= maxItem && !seen[it] {
				seen[it] = true
				scratch = append(scratch, it)
			}
		}
		for _, it := range scratch {
			seen[it] = false
			for _, ci := range buckets[it] {
				if cs.Contains(cands[ci]) {
					counts[ci]++
				}
			}
		}
	}
	return counts
}

// sortPatterns orders patterns ascending; used by tests for deterministic
// candidate inspection.
func sortPatterns(ps []seq.Pattern) {
	sort.Slice(ps, func(i, j int) bool { return seq.Compare(ps[i], ps[j]) < 0 })
}
