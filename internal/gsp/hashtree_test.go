package gsp

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

// TestHashTreeCountsEqualNaive: the hash tree must produce the same
// support counts as the bucketed scan for random candidate sets.
func TestHashTreeCountsEqualNaive(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for i := 0; i < 60; i++ {
		db := testutil.RandomDB(r, 10+r.Intn(10), 6, 4, 3)
		// Candidate set: random subsequences of random customers plus a
		// few random non-occurring patterns.
		var cands []seq.Pattern
		keys := map[string]bool{}
		add := func(p seq.Pattern) {
			if p.Len() > 0 && !keys[p.Key()] {
				keys[p.Key()] = true
				cands = append(cands, p)
			}
		}
		for j := 0; j < 40; j++ {
			cs := db[r.Intn(len(db))]
			p := cs.Pattern()
			if p.Len() > 1 {
				k := 1 + r.Intn(p.Len()-1)
				add(p.Prefix(k))
			}
		}
		for j := 0; j < 10; j++ {
			add(seq.NewPattern(
				seq.NewItemset(seq.Item(1+r.Intn(6))),
				seq.NewItemset(seq.Item(1+r.Intn(6)), seq.Item(1+r.Intn(6)))))
		}
		a := countSupports(db, cands)
		b := countSupportsHashTree(db, cands)
		for ci := range cands {
			if a[ci] != b[ci] {
				t.Fatalf("candidate %s: bucketed %d, hash tree %d",
					cands[ci].Letters(), a[ci], b[ci])
			}
		}
	}
}

// TestHashTreeSplits forces leaf splits and deep interior nodes.
func TestHashTreeSplits(t *testing.T) {
	var cands []seq.Pattern
	// 40 candidates sharing the same first two items force splits below
	// depth 2.
	for x := seq.Item(1); x <= 40; x++ {
		cands = append(cands, seq.NewPattern(
			seq.NewItemset(1), seq.NewItemset(2), seq.NewItemset(2+x)))
	}
	tree := newHashTree()
	for i, c := range cands {
		tree.insert(i, c, cands)
	}
	if tree.leaf {
		t.Fatal("root should have split")
	}
	// A probe with a sequence containing everything must visit all
	// candidates at least once.
	items := make([]seq.Itemset, 0, 43)
	for x := seq.Item(1); x <= 43; x++ {
		items = append(items, seq.NewItemset(x))
	}
	cs := seq.NewCustomerSeq(1, items...)
	visited := map[int]bool{}
	tree.probe(cs, func(ci int) { visited[ci] = true })
	if len(visited) != len(cands) {
		t.Fatalf("probe visited %d of %d candidates", len(visited), len(cands))
	}
}

// TestHashTreeMinerEqualsBucketedMiner: end-to-end on the paper's data.
func TestHashTreeMinerEqualsBucketedMiner(t *testing.T) {
	db := testutil.Table6()
	a, err := Miner{}.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Miner{NoHashTree: true}.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diff := a.Diff(b); diff != "" {
		t.Fatalf("hash tree changes results:\n%s", diff)
	}
	ref, err := bruteforce.Exhaustive{}.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}, Miner{NoHashTree: true}}, db, 3)
}

// TestHashTreeNeverSplitsShortCandidates: candidates shorter than the
// dispatch depth must keep the leaf a leaf (no infinite split loop).
func TestHashTreeNeverSplitsShortCandidates(t *testing.T) {
	var cands []seq.Pattern
	for x := seq.Item(1); x <= 30; x++ {
		cands = append(cands, seq.NewPattern(seq.NewItemset(1))) // all identical, length 1
	}
	tree := newHashTree()
	for i, c := range cands {
		tree.insert(i, c, cands) // must not loop or split past length
	}
	if !tree.leaf {
		// Splitting on depth 0 is fine, but then the depth-1 children hold
		// length-1 candidates and must remain leaves.
		for _, child := range tree.children {
			if !child.leaf {
				t.Fatal("child with exhausted candidates split")
			}
		}
	}
}
