package gsp

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

func pat(s string) seq.Pattern { return seq.MustParsePattern(s) }

func TestDropItem(t *testing.T) {
	cases := []struct {
		in   string
		pos  int
		want string
	}{
		{"(a, b)(c)", 0, "<(b)(c)>"},
		{"(a, b)(c)", 1, "<(a)(c)>"},
		{"(a, b)(c)", 2, "<(a, b)>"},
		{"(a)(b)(c)", 1, "<(a)(c)>"},
		{"(a)", 0, "<>"},
	}
	for _, c := range cases {
		if got := DropItem(pat(c.in), c.pos).Letters(); got != c.want {
			t.Errorf("DropItem(%s, %d) = %s, want %s", c.in, c.pos, got, c.want)
		}
	}
}

func TestJoinProducesClassicCandidates(t *testing.T) {
	// The canonical GSP example: F3 = {<(1,2)(3)>, <(1,2)(4)>, <(1)(3,4)>,
	// <(1,3)(5)>, <(2)(3,4)>, <(2)(3)(5)>} joins into <(1,2)(3,4)> and
	// <(1,2)(3)(5)>; pruning then removes <(1,2)(3)(5)> because <(1)(3)(5)>
	// is not frequent.
	f3 := []seq.Pattern{
		pat("(1 2)(3)"), pat("(1 2)(4)"), pat("(1)(3 4)"),
		pat("(1 3)(5)"), pat("(2)(3 4)"), pat("(2)(3)(5)"),
	}
	cands := join(f3)
	sortPatterns(cands)
	if len(cands) != 2 || cands[0].String() != "<(1, 2)(3, 4)>" || cands[1].String() != "<(1, 2)(3)(5)>" {
		var got []string
		for _, c := range cands {
			got = append(got, c.String())
		}
		t.Fatalf("join candidates = %v, want [<(1, 2)(3, 4)> <(1, 2)(3)(5)>]", got)
	}
	pruned := prune(cands, f3)
	if len(pruned) != 1 || pruned[0].String() != "<(1, 2)(3, 4)>" {
		t.Fatalf("pruned = %v, want only <(1, 2)(3, 4)>", pruned)
	}
}

func TestCandidates2(t *testing.T) {
	cands := candidates2([]seq.Item{1, 2})
	// <(1)(1)>, <(1)(2)>, <(1,2)>, <(2)(1)>, <(2)(2)>.
	if len(cands) != 5 {
		t.Fatalf("len(candidates2) = %d, want 5", len(cands))
	}
}

func TestTable1Golden(t *testing.T) {
	db := testutil.Table1()
	ref, err := bruteforce.Exhaustive{}.Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, 2)
}

func TestRandomAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		db := testutil.RandomDB(r, 6+r.Intn(8), 5, 4, 3)
		minSup := 1 + r.Intn(4)
		ref, err := bruteforce.Exhaustive{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, minSup)
	}
}

func TestSkewedAgainstLevelWise(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 6; i++ {
		db := testutil.SkewedRandomDB(r, 50, 12, 6, 4)
		minSup := 3 + r.Intn(6)
		ref, err := bruteforce.LevelWise{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, []mining.Miner{Miner{}}, db, minSup)
	}
}

func TestDegenerate(t *testing.T) {
	res, err := Miner{}.Mine(nil, 1)
	if err != nil || res.Len() != 0 {
		t.Errorf("empty db: %v, %d", err, res.Len())
	}
	res, err = Miner{}.Mine(mining.Database{seq.MustParseCustomerSeq(1, "(a)(a)(a)")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sup, ok := res.Support(pat("(a)(a)(a)")); !ok || sup != 1 {
		t.Errorf("<(a)(a)(a)> = %d,%v", sup, ok)
	}
}
