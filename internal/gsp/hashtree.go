package gsp

import (
	"github.com/disc-mining/disc/internal/seq"
)

// hashTree is the candidate hash tree of Srikant & Agrawal (EDBT 1996).
// Interior nodes at depth d dispatch on a candidate's d-th item; leaves
// hold candidate indices until they overflow and split. Probing with a
// customer sequence walks every item path whose items appear in order in
// the customer, visiting a superset of the contained candidates — the
// caller then verifies containment only for the visited ones.
type hashTree struct {
	depth    int
	leaf     bool
	cands    []int
	children map[seq.Item]*hashTree
}

// leafCapacity is the split threshold; small enough to exercise interior
// nodes in tests, large enough to avoid deep degenerate trees.
const leafCapacity = 16

func newHashTree() *hashTree {
	return &hashTree{leaf: true}
}

// insert adds candidate index ci with pattern p.
func (h *hashTree) insert(ci int, p seq.Pattern, all []seq.Pattern) {
	if h.leaf {
		h.cands = append(h.cands, ci)
		// Split when over capacity, unless the dispatch item is exhausted
		// for some resident (then the leaf must stay a leaf).
		if len(h.cands) <= leafCapacity {
			return
		}
		for _, c := range h.cands {
			if all[c].Len() <= h.depth {
				return
			}
		}
		h.leaf = false
		h.children = map[seq.Item]*hashTree{}
		old := h.cands
		h.cands = nil
		for _, c := range old {
			h.insertInterior(c, all)
		}
		return
	}
	h.insertInterior(ci, all)
}

func (h *hashTree) insertInterior(ci int, all []seq.Pattern) {
	x := all[ci].ItemAt(h.depth)
	child := h.children[x]
	if child == nil {
		child = &hashTree{depth: h.depth + 1, leaf: true}
		h.children[x] = child
	}
	child.insert(ci, all[ci], all)
}

// probe visits candidate indices that might be contained in cs. A
// candidate can be visited more than once; visit must deduplicate.
func (h *hashTree) probe(cs *seq.CustomerSeq, visit func(int)) {
	h.probeFrom(cs, 0, visit)
}

func (h *hashTree) probeFrom(cs *seq.CustomerSeq, from int, visit func(int)) {
	if h.leaf {
		for _, c := range h.cands {
			visit(c)
		}
		return
	}
	// Dispatch on every remaining item of the customer: a contained
	// candidate's depth-th item must occur at or after position `from`.
	for i := from; i < cs.Len(); i++ {
		if child, ok := h.children[cs.ItemAt(i)]; ok {
			// The next candidate item must come at or after the same
			// transaction (itemset extensions share the transaction).
			next := i + 1
			child.probeFrom(cs, next, visit)
		}
	}
}

// countSupportsHashTree counts candidate supports with the hash tree; it
// equals countSupports but touches only plausible candidates per customer.
func countSupportsHashTree(db []*seq.CustomerSeq, cands []seq.Pattern) []int {
	counts := make([]int, len(cands))
	if len(cands) == 0 {
		return counts
	}
	tree := newHashTree()
	for i, c := range cands {
		tree.insert(i, c, cands)
	}
	seen := make([]int32, len(cands))
	for csi, cs := range db {
		stamp := int32(csi) + 1
		tree.probe(cs, func(ci int) {
			if seen[ci] == stamp {
				return
			}
			seen[ci] = stamp
			if cs.Contains(cands[ci]) {
				counts[ci]++
			}
		})
	}
	return counts
}
