package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/testutil"
)

// TestWorkerPanicContained is the regression test for the uncatchable
// worker-goroutine panic (the findExtension invariant in parallel.go):
// a panic injected at a partition boundary must come back from Mine as
// an *mining.InvariantError — carrying the partition and a stack — with
// the process alive and the run drained, at every worker count.
func TestWorkerPanicContained(t *testing.T) {
	db := testutil.Table6()
	for _, workers := range []int{1, 2, 8} {
		inj := faultinject.New(9).Arm(faultinject.WorkerPanic, faultinject.Spec{AfterN: 3})
		m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: workers, Faults: inj}}
		res, err := m.Mine(db, 2)
		if res != nil || err == nil {
			t.Fatalf("workers=%d: Mine = (%v, %v), want contained panic error", workers, res, err)
		}
		if !errors.Is(err, mining.ErrInternalInvariant) {
			t.Fatalf("workers=%d: err %v does not match ErrInternalInvariant", workers, err)
		}
		var ie *mining.InvariantError
		if !errors.As(err, &ie) {
			t.Fatalf("workers=%d: err %T is not *InvariantError", workers, err)
		}
		if len(ie.Stack) == 0 || ie.Partition == "" {
			t.Errorf("workers=%d: InvariantError missing stack or partition: %+v", workers, ie)
		}
		var fault *faultinject.Fault
		if !errors.As(err, &fault) {
			t.Errorf("workers=%d: panic value not unwrapped: %v", workers, err)
		}
		if inj.Fired(faultinject.WorkerPanic) != 1 {
			t.Errorf("workers=%d: fault fired %d times", workers, inj.Fired(faultinject.WorkerPanic))
		}
	}
}

// TestPanicContainedEverySite: arming the panic point at every partition
// boundary with probability 1 must still return an error (never crash),
// wherever the first panic lands — including the root walk.
func TestPanicContainedEverySite(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	db := testutil.SkewedRandomDB(r, 50, 10, 6, 4)
	for _, workers := range []int{1, 8} {
		inj := faultinject.New(5).Arm(faultinject.WorkerPanic, faultinject.Spec{Prob: 1})
		m := &Dynamic{Opts: Options{BiLevel: true, Gamma: 0.5, Workers: workers, Faults: inj}}
		if _, err := m.Mine(db, 2); !errors.Is(err, mining.ErrInternalInvariant) {
			t.Fatalf("workers=%d: err = %v, want ErrInternalInvariant", workers, err)
		}
	}
}

// interruptRun mines db with an injected cancellation at the n-th
// partition boundary and a checkpointer attached, returning the
// checkpointer (with whatever completed).
func interruptRun(t *testing.T, mk func(Options) mining.ContextMiner, base Options, db mining.Database, minSup, n int) *Checkpointer {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cp := NewCheckpointer()
	inj := faultinject.New(int64(n)).
		Arm(faultinject.CtxCancel, faultinject.Spec{AfterN: n}).
		OnCancel(cancel)
	opts := base
	opts.Checkpoint = cp
	opts.Faults = inj
	res, err := mk(opts).MineContext(ctx, db, minSup)
	if inj.Fired(faultinject.CtxCancel) == 0 {
		// The run finished before the n-th boundary: that is a valid
		// outcome (checkpoint holds everything); it must have succeeded.
		if err != nil {
			t.Fatalf("uninterrupted run failed: %v", err)
		}
	} else if err != context.Canceled {
		t.Fatalf("interrupted run: (%v, %v), want context.Canceled", res, err)
	}
	return cp
}

// TestCheckpointResumeByteIdentical: kill a run at assorted partition
// boundaries, resume from the recorded checkpoint, and require the
// resumed result set to render byte-identically to a straight run —
// for the static and dynamic algorithms at one and many workers.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	db := testutil.SkewedRandomDB(r, 90, 12, 6, 4)
	const minSup = 2
	for _, tc := range []struct {
		name string
		mk   func(Options) mining.ContextMiner
		base Options
	}{
		{"disc-all", func(o Options) mining.ContextMiner { return &Miner{Opts: o} },
			Options{BiLevel: true, Levels: 2}},
		{"dynamic", func(o Options) mining.ContextMiner { return &Dynamic{Opts: o} },
			Options{BiLevel: true, Gamma: 0.5}},
	} {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			opts := tc.base
			opts.Workers = workers
			straightM := tc.mk(opts)
			straight, err := straightM.MineContext(context.Background(), db, minSup)
			if err != nil {
				t.Fatal(err)
			}
			want := renderSorted(straight)
			for _, killAt := range []int{1, 3, 7, 20} {
				cp := interruptRun(t, tc.mk, opts, db, minSup, killAt)
				resumed := ResumeFrom(cp.File(tc.name, minSup, 0))
				ropts := opts
				ropts.Checkpoint = resumed
				res, err := tc.mk(ropts).MineContext(context.Background(), db, minSup)
				if err != nil {
					t.Fatalf("%s workers=%d killAt=%d: resume failed: %v", tc.name, workers, killAt, err)
				}
				if got := renderSorted(res); got != want {
					t.Fatalf("%s workers=%d killAt=%d: resumed result differs from straight run\n%s",
						tc.name, workers, killAt, straight.Diff(res))
				}
				if cp.Completed() > 0 && resumed.Restored() == 0 && killAt > 1 {
					t.Errorf("%s workers=%d killAt=%d: checkpoint had %d partitions but resume restored none",
						tc.name, workers, killAt, cp.Completed())
				}
			}
		}
	}
}

// TestCheckpointedStatsMatchStraightRun: a resumed run's merged
// statistics must equal a straight run's (restored partition statistics
// merge exactly like live ones).
func TestCheckpointedStatsMatchStraightRun(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	db := testutil.SkewedRandomDB(r, 80, 12, 6, 4)
	opts := Options{BiLevel: true, Levels: 2, Workers: 4}
	ms := &Miner{Opts: opts}
	if _, err := ms.Mine(db, 2); err != nil {
		t.Fatal(err)
	}
	cp := interruptRun(t, func(o Options) mining.ContextMiner { return &Miner{Opts: o} }, opts, db, 2, 4)
	ropts := opts
	ropts.Checkpoint = ResumeFrom(cp.File("disc-all", 2, 0))
	mr := &Miner{Opts: ropts}
	if _, err := mr.Mine(db, 2); err != nil {
		t.Fatal(err)
	}
	s, p := ms.LastStats(), mr.LastStats()
	if s.Rounds != p.Rounds || s.FrequentHits != p.FrequentHits || s.Skips != p.Skips ||
		s.KMSCalls != p.KMSCalls || s.CKMSCalls != p.CKMSCalls || s.Dropped != p.Dropped {
		t.Errorf("counters differ:\nstraight %+v\nresumed  %+v", s, p)
	}
}

// TestBudgetPatternsExceeded: a pattern budget far below the true result
// size stops the run with a typed *BudgetError; partial statistics stay
// available through LastStats.
func TestBudgetPatternsExceeded(t *testing.T) {
	r := rand.New(rand.NewSource(94))
	db := testutil.SkewedRandomDB(r, 80, 12, 6, 4)
	for _, workers := range []int{1, 8} {
		m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: workers, MaxPatterns: 5}}
		res, err := m.Mine(db, 2)
		if res != nil || !errors.Is(err, mining.ErrBudgetExceeded) {
			t.Fatalf("workers=%d: Mine = (%v, %v), want ErrBudgetExceeded", workers, res, err)
		}
		var be *mining.BudgetError
		if !errors.As(err, &be) || be.Resource != "patterns" || be.Limit != 5 || be.Used <= 5 {
			t.Fatalf("workers=%d: BudgetError = %+v", workers, be)
		}
		if st := m.LastStats(); len(st.PartitionsByLevel) == 0 || st.PartitionsByLevel[0] == 0 {
			t.Errorf("workers=%d: no partial stats after budget stop: %+v", workers, st)
		}
	}
}

// TestBudgetMemoryExceeded: an absurdly small memory budget trips on the
// first heap sample with a typed memory BudgetError.
func TestBudgetMemoryExceeded(t *testing.T) {
	m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: 1, MaxMemBytes: 1}}
	_, err := m.Mine(testutil.Table6(), 2)
	var be *mining.BudgetError
	if !errors.As(err, &be) || be.Resource != "memory" {
		t.Fatalf("err = %v, want memory BudgetError", err)
	}
}

// TestDegradedRunCompletesWithProgress: a budget the run meets exactly
// triggers degradation (the 80% threshold is crossed) but not failure —
// the result is identical to an unbudgeted run, Stats.Degraded reports
// the ladder was entered, and every first-level partition still emits
// its progress event.
func TestDegradedRunCompletesWithProgress(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	db := testutil.SkewedRandomDB(r, 80, 12, 6, 4)
	ref, err := (&Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: 4}}).Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var events []mining.ProgressEvent
		m := &Miner{Opts: Options{
			BiLevel: true, Levels: 2, Workers: workers,
			MaxPatterns: ref.Len(), // crossed at 80%, never exceeded
			Progress: func(ev mining.ProgressEvent) {
				mu.Lock()
				events = append(events, ev)
				mu.Unlock()
			},
		}}
		res, err := m.Mine(db, 2)
		if err != nil {
			t.Fatalf("workers=%d: degraded run failed: %v", workers, err)
		}
		if got, want := renderSorted(res), renderSorted(ref); got != want {
			t.Fatalf("workers=%d: degraded run changed the result set:\n%s", workers, ref.Diff(res))
		}
		if !m.LastStats().Degraded {
			t.Errorf("workers=%d: Stats.Degraded not set", workers)
		}
		if len(events) == 0 {
			t.Fatalf("workers=%d: no progress events during degraded run", workers)
		}
		last := events[len(events)-1]
		if last.Done != last.Total || last.Total == 0 {
			t.Errorf("workers=%d: progress did not complete during degraded run: %+v", workers, last)
		}
	}
}

// TestProgressNeverConcurrent pins the documented ProgressFunc
// guarantee: the callback never runs concurrently with itself, at every
// worker count from 1 to GOMAXPROCS. The callback mutates shared state
// without synchronization — under -race any overlap is a detected race,
// and the explicit in-flight flag catches overlap even without -race.
func TestProgressNeverConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	db := testutil.SkewedRandomDB(r, 100, 12, 6, 4)
	for workers := 1; workers <= runtime.GOMAXPROCS(0); workers++ {
		inFlight := false
		calls := 0
		var sink strings.Builder // unsynchronized mutation the race detector watches
		m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: workers,
			Progress: func(ev mining.ProgressEvent) {
				if inFlight {
					t.Error("ProgressFunc re-entered concurrently")
				}
				inFlight = true
				calls++
				sink.WriteByte(byte(ev.Done))
				inFlight = false
			}}}
		if _, err := m.Mine(db, 2); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls == 0 {
			t.Fatalf("workers=%d: progress callback never ran", workers)
		}
	}
}
