package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

// renderSorted serializes a result set byte-for-byte comparably.
func renderSorted(res *mining.Result) string {
	var b strings.Builder
	for _, pc := range res.Sorted() {
		fmt.Fprintf(&b, "%s=%d\n", pc.Pattern, pc.Support)
	}
	return b.String()
}

// TestParallelDeterminism: for several generated databases and δ values,
// Workers: 1 and Workers: 8 must produce byte-identical Sorted() output
// (patterns and supports) for both the static and the dynamic algorithm.
// Run under -race this also exercises the scheduler for data races.
func TestParallelDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for i := 0; i < 6; i++ {
		db := testutil.SkewedRandomDB(r, 60+r.Intn(60), 10, 6, 4)
		minSup := 2 + r.Intn(5)
		for _, mk := range []func(workers int) mining.Miner{
			func(w int) mining.Miner { return &Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: w}} },
			func(w int) mining.Miner { return &Miner{Opts: Options{BiLevel: false, Levels: 3, Workers: w}} },
			func(w int) mining.Miner { return &Dynamic{Opts: Options{BiLevel: true, Gamma: 0.5, Workers: w}} },
		} {
			serial, err := mk(1).Mine(db, minSup)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := mk(8).Mine(db, minSup)
			if err != nil {
				t.Fatal(err)
			}
			if s, p := renderSorted(serial), renderSorted(parallel); s != p {
				t.Fatalf("db %d δ=%d: workers=1 and workers=8 outputs differ:\n%s", i, minSup,
					serial.Diff(parallel))
			}
		}
	}
}

// TestParallelStatsMatchSerial: the merged statistics of a parallel run
// must carry the same counters as the serial run (the per-level NRR means
// may differ in the last ulps from merge associativity).
func TestParallelStatsMatchSerial(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	db := testutil.SkewedRandomDB(r, 80, 12, 6, 4)
	ms, mp := &Miner{Opts: Options{Levels: 2, Workers: 1}}, &Miner{Opts: Options{Levels: 2, Workers: 8}}
	if _, err := ms.Mine(db, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Mine(db, 3); err != nil {
		t.Fatal(err)
	}
	s, p := ms.LastStats(), mp.LastStats()
	if s.Rounds != p.Rounds || s.FrequentHits != p.FrequentHits || s.Skips != p.Skips ||
		s.KMSCalls != p.KMSCalls || s.CKMSCalls != p.CKMSCalls || s.Dropped != p.Dropped {
		t.Errorf("counters differ:\nserial   %+v\nparallel %+v", s, p)
	}
	if fmt.Sprint(s.PartitionsByLevel) != fmt.Sprint(p.PartitionsByLevel) {
		t.Errorf("PartitionsByLevel %v vs %v", s.PartitionsByLevel, p.PartitionsByLevel)
	}
	for lvl := range s.NRRByLevel {
		if lvl >= len(p.NRRByLevel) || absDiff(s.NRRByLevel[lvl], p.NRRByLevel[lvl]) > 1e-9 {
			t.Errorf("NRRByLevel[%d]: %v vs %v", lvl, s.NRRByLevel, p.NRRByLevel)
			break
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// slowDB returns a database on which mining takes long enough to cancel
// mid-run (many customers over a small skewed alphabet, low δ).
func slowDB(seed int64) mining.Database {
	r := rand.New(rand.NewSource(seed))
	return testutil.SkewedRandomDB(r, 400, 14, 6, 4)
}

// TestCancellationPrompt: a context cancelled mid-mine must surface
// ctx.Err() promptly (bounded by a generous timeout) with no goroutine
// leaks, for serial and parallel DISC-all and for the dynamic variant.
func TestCancellationPrompt(t *testing.T) {
	db := slowDB(73)
	base := runtime.NumGoroutine()
	for _, tc := range []struct {
		name  string
		miner mining.ContextMiner
	}{
		{"serial", &Miner{Opts: Options{Levels: 2, Workers: 1}}},
		{"parallel", &Miner{Opts: Options{Levels: 2, Workers: 8}}},
		{"dynamic-parallel", &Dynamic{Opts: Options{Gamma: 0.5, Workers: 8}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			var once sync.Once
			// Cancel deterministically mid-run: the first progress event
			// (the first-level partition schedule, emitted after the
			// level-0 scan) pulls the trigger, so the bulk of the
			// partition work is still ahead when the context dies.
			trigger := func(mining.ProgressEvent) { once.Do(cancel) }
			switch m := tc.miner.(type) {
			case *Miner:
				m.Opts.Progress = trigger
			case *Dynamic:
				m.Opts.Progress = trigger
			}
			defer cancel()
			type outcome struct {
				res *mining.Result
				err error
			}
			ch := make(chan outcome, 1)
			go func() {
				res, err := tc.miner.MineContext(ctx, db, 2)
				ch <- outcome{res, err}
			}()
			select {
			case o := <-ch:
				if o.err != context.Canceled {
					t.Fatalf("MineContext = (%v, %v), want context.Canceled", o.res, o.err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("MineContext did not return within 60s of cancellation")
			}
		})
	}
	waitGoroutinesSettle(t, base)
}

// TestDeadlineExceeded: an already-expired context never starts mining.
func TestDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	res, err := New().MineContext(ctx, testutil.Table1(), 2)
	if err != context.DeadlineExceeded || res != nil {
		t.Fatalf("MineContext = (%v, %v), want (nil, DeadlineExceeded)", res, err)
	}
}

func waitGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d now vs %d at start", runtime.NumGoroutine(), base)
}

// TestProgressEvents: the progress hook reports the first-level partition
// schedule and one completion per partition, at any worker count.
func TestProgressEvents(t *testing.T) {
	db := testutil.Table6()
	for _, workers := range []int{1, 8} {
		var mu sync.Mutex
		var events []mining.ProgressEvent
		m := &Miner{Opts: Options{Levels: 2, Workers: workers, Progress: func(ev mining.ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}}}
		if _, err := m.Mine(db, 3); err != nil {
			t.Fatal(err)
		}
		// Table 6 at δ=3 has 7 frequent 1-sequences → 7 first-level
		// partitions (see TestPartitionAssignmentExample31).
		const want = 7
		if len(events) != want+1 {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(events), want+1)
		}
		first, last := events[0], events[len(events)-1]
		if first.Stage != mining.StagePartitions || first.Done != 0 || first.Total != want {
			t.Errorf("workers=%d: first event %+v", workers, first)
		}
		if last.Done != want || last.Total != want {
			t.Errorf("workers=%d: last event %+v", workers, last)
		}
		if first.Workers != workers {
			t.Errorf("workers=%d: event reports %d workers", workers, first.Workers)
		}
		seen := map[int]bool{}
		for _, ev := range events[1:] {
			if ev.Done < 1 || ev.Done > want || seen[ev.Done] {
				t.Errorf("workers=%d: bad completion sequence %+v", workers, events)
				break
			}
			seen[ev.Done] = true
		}
	}
}

// TestEagerBucketsMatchLazySplit pins the closure property the scheduler
// relies on: eager bucket i holds exactly the members containing list[i],
// which is what the lazy reassignment walk eventually delivers.
func TestEagerBucketsMatchLazySplit(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	for i := 0; i < 20; i++ {
		db := testutil.RandomDB(r, 12+r.Intn(10), 6, 4, 3)
		minSup := 1 + r.Intn(3)
		e := &engine{opts: DefaultOptions(), minSup: minSup, res: mining.NewResult(), maxItem: db.MaxItem()}
		var members []*member
		for _, cs := range db {
			members = append(members, &member{cs: cs})
		}
		list, _ := e.frequentExtensions(seq.Pattern{}, members, 0)
		buckets, err := e.eagerBuckets(seq.Pattern{}, members, list, 0)
		if err != nil {
			t.Fatal(err)
		}
		for b, key := range list {
			var want []*member
			for _, mb := range members {
				if mb.cs.Contains(key) {
					want = append(want, mb)
				}
			}
			if len(want) != len(buckets[b]) {
				t.Fatalf("db %d: bucket %s has %d members, want %d", i, key, len(buckets[b]), len(want))
			}
			for j := range want {
				if want[j] != buckets[b][j] {
					t.Fatalf("db %d: bucket %s order differs at %d", i, key, j)
				}
			}
		}
	}
}
