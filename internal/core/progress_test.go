package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/testutil"
)

// collectProgress mines db with the given faults and returns the full
// event stream plus the run error. The callback needs no locking: the
// tracker serializes it (see TestProgressNeverConcurrent).
func collectProgress(t *testing.T, opts Options, db mining.Database, minSup int) ([]mining.ProgressEvent, error) {
	t.Helper()
	var events []mining.ProgressEvent
	opts.Progress = func(ev mining.ProgressEvent) { events = append(events, ev) }
	m := &Miner{Opts: opts}
	_, err := m.MineContext(context.Background(), db, minSup)
	return events, err
}

// checkFinalExactlyOnce asserts the progressTracker closing contract:
// the stream ends with Done == Total, that terminal event appears
// exactly once, and Done never regresses.
func checkFinalExactlyOnce(t *testing.T, events []mining.ProgressEvent) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no progress events at all")
	}
	last := events[len(events)-1]
	if last.Done != last.Total {
		t.Fatalf("last event %d/%d, want Done == Total", last.Done, last.Total)
	}
	finals, prev := 0, -1
	for i, ev := range events {
		if ev.Done < prev {
			t.Fatalf("event %d: Done regressed %d -> %d", i, prev, ev.Done)
		}
		prev = ev.Done
		if ev.Total == last.Total && ev.Done == ev.Total && ev.Total > 0 {
			finals++
		}
	}
	if finals != 1 {
		t.Fatalf("Done == Total emitted %d times, want exactly once:\n%v", finals, events)
	}
}

// TestProgressFinalEventOnPartitionError: a run killed by a contained
// worker panic still closes its progress stream with one final
// Done == Total event, so consumers can always tell "finished" from
// "abandoned".
func TestProgressFinalEventOnPartitionError(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	db := testutil.SkewedRandomDB(r, 90, 12, 6, 4)
	for _, workers := range []int{1, 4} {
		inj := faultinject.New(7).Arm(faultinject.WorkerPanic, faultinject.Spec{AfterN: 2})
		opts := Options{BiLevel: true, Levels: 2, Workers: workers, Faults: inj}
		events, err := collectProgress(t, opts, db, 2)
		if err == nil {
			t.Fatalf("workers=%d: injected panic produced no error", workers)
		}
		checkFinalExactlyOnce(t, events)
	}
}

// TestProgressFinalEventOnCancel: same contract under mid-run context
// cancellation.
func TestProgressFinalEventOnCancel(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	db := testutil.SkewedRandomDB(r, 90, 12, 6, 4)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		inj := faultinject.New(3).
			Arm(faultinject.CtxCancel, faultinject.Spec{AfterN: 2}).
			OnCancel(cancel)
		var events []mining.ProgressEvent
		opts := Options{BiLevel: true, Levels: 2, Workers: workers, Faults: inj}
		opts.Progress = func(ev mining.ProgressEvent) { events = append(events, ev) }
		m := &Miner{Opts: opts}
		_, err := m.MineContext(ctx, db, 2)
		cancel()
		if inj.Fired(faultinject.CtxCancel) > 0 && !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		checkFinalExactlyOnce(t, events)
	}
}

// TestProgressFinalEventOnSuccess: a clean run's natural last step IS
// the final event — finish() must not duplicate it.
func TestProgressFinalEventOnSuccess(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	db := testutil.SkewedRandomDB(r, 60, 10, 6, 4)
	for _, workers := range []int{1, 4} {
		events, err := collectProgress(t, Options{BiLevel: true, Levels: 2, Workers: workers}, db, 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkFinalExactlyOnce(t, events)
	}
}
