package core

import (
	"github.com/disc-mining/disc/internal/kmin"
	"github.com/disc-mining/disc/internal/seq"
)

// discEntry is one customer inside a k-sorted database: the (reduced)
// customer sequence plus its apriori pointer — the index into the frequent
// (k-1)-sorted list of the prefix of its current k-minimum subsequence
// (§3.2, Table 9).
type discEntry struct {
	cs  *seq.CustomerSeq
	ptr int
}

// discLoop repeats the frequent k-sequence discovery procedure (Figure 4)
// from startK upwards until a level produces no frequent sequences or the
// partition shrinks below δ (Step 2.1.3.2 of Figure 2). With the bi-level
// option each call to discover handles lengths k and k+1 in one pass over
// the k-sorted database.
func (e *engine) discLoop(members []*member, listPrev []seq.Pattern, startK int) error {
	// Copy: the slice is filtered in place below, and the caller's split
	// still needs its bucket intact for reassignment. The copy lives in
	// the arena (discLoop is a leaf of the partition recursion, so one
	// buffer per engine suffices).
	s := e.scratch()
	s.membersBuf = append(s.membersBuf[:0], members...)
	members = s.membersBuf
	k := startK
	for len(listPrev) > 0 && len(members) >= e.minSup {
		if err := e.interrupted(); err != nil {
			return err
		}
		listK, listK1 := e.discover(members, listPrev, k)
		if e.opts.BiLevel {
			listPrev = listK1
			k += 2
		} else {
			listPrev = listK
			k++
		}
		// Customers too short for the next level can never host another
		// frequent sequence of this partition.
		alive := members[:0]
		for _, mb := range members {
			if mb.cs.Len() >= k {
				alive = append(alive, mb)
			}
		}
		members = alive
	}
	return e.interrupted()
}

// discover runs the frequent k-sequence discovery procedure of Figure 4 on
// one partition:
//
//  1. Apriori-KMS builds the k-sorted database (a locative AVL tree keyed
//     by k-minimum subsequence).
//  2. While at least δ customers remain, the candidate α₁ = Min() is
//     compared against the condition α_δ = Select(δ). Equality proves α₁
//     frequent with support = |bucket(α₁)| (Lemma 2.1); inequality proves
//     every k-sequence in [α₁, α_δ) non-frequent (Lemma 2.2).
//  3. Affected customers move to their conditional k-minimum subsequences
//     via Apriori-CKMS (bound α_δ; strict after a frequent hit, non-strict
//     otherwise — Definition 2.5) or drop out of the k-sorted database.
//
// With BiLevel on, each frequent α₁'s bucket is the §3.2 virtual
// partition: a counting-array pass over it yields the frequent
// (k+1)-sequences with k-prefix α₁ (Figure 7), so one scan of the k-sorted
// database serves two lengths.
func (e *engine) discover(members []*member, listPrev []seq.Pattern, k int) (listK, listK1 []seq.Pattern) {
	tree := e.scratch().discTree()
	for i, mb := range members {
		if i&cancelCheckMask == cancelCheckMask && e.interrupted() != nil {
			return nil, nil
		}
		e.stats.KMSCalls++
		if r, ok := kmin.KMS(mb.cs, listPrev); ok {
			tree.Insert(r.Min, discEntry{cs: mb.cs, ptr: r.AprioriIdx})
		} else {
			e.stats.Dropped++
		}
	}
	for tree.Size() >= e.minSup {
		// Cooperative stopping point, checked one round in 64: the
		// caller (discLoop) notices the context or budget error and
		// discards the partial lists returned here.
		if e.stats.Rounds&cancelCheckMask == 0 && e.interrupted() != nil {
			break
		}
		e.stats.Rounds++
		alpha1, _, _ := tree.Min()
		alphaD, _ := tree.Select(e.minSup)
		if seq.Compare(alpha1, alphaD) == 0 {
			// Frequent: the bucket holds exactly the supporters of α₁.
			e.stats.FrequentHits++
			key, bucket, _ := tree.PopMin()
			e.res.Add(key, len(bucket))
			e.budget.notePatterns(1)
			listK = append(listK, key)
			if e.opts.BiLevel {
				listK1 = e.bilevelCount(key, bucket, k, listK1)
			}
			for _, en := range bucket {
				e.stats.CKMSCalls++
				if r, ok := kmin.CKMS(en.cs, listPrev, en.ptr, key, true); ok {
					tree.Insert(r.Min, discEntry{cs: en.cs, ptr: r.AprioriIdx})
				} else {
					e.stats.Dropped++
				}
			}
			continue
		}
		// Non-frequent: skip [α₁, α_δ) wholesale and move every customer
		// below α_δ to its conditional k-minimum ≥ α_δ.
		e.stats.Skips++
		for {
			minKey, _, ok := tree.Min()
			if !ok || seq.Compare(minKey, alphaD) >= 0 {
				break
			}
			_, bucket, _ := tree.PopMin()
			for _, en := range bucket {
				e.stats.CKMSCalls++
				if r, ok := kmin.CKMS(en.cs, listPrev, en.ptr, alphaD, false); ok {
					tree.Insert(r.Min, discEntry{cs: en.cs, ptr: r.AprioriIdx})
				} else {
					e.stats.Dropped++
				}
			}
		}
	}
	sortPatternList(listK1)
	return listK, listK1
}

// bilevelCount runs the counting array over the virtual partition of a
// freshly confirmed frequent k-sequence key and records the frequent
// (k+1)-sequences with k-prefix key.
func (e *engine) bilevelCount(key seq.Pattern, bucket []discEntry, k int, listK1 []seq.Pattern) []seq.Pattern {
	s := e.scratch()
	arr := s.array(k) // depth-indexed scratch array, disjoint from the partition levels in use
	for ci, en := range bucket {
		cid := int32(ci)
		kmin.EnumExtensions(en.cs, key,
			func(x seq.Item) { arr.TouchI(x, cid) },
			func(x seq.Item) { arr.TouchS(x, cid) })
	}
	s.fi = arr.FrequentI(e.minSup, s.fi[:0])
	s.fs = arr.FrequentS(e.minSup, s.fs[:0])
	exts, sups := mergeExtensions(key, arr, s.fi, s.fs)
	for i, p := range exts {
		e.res.Add(p, sups[i])
		listK1 = append(listK1, p)
	}
	e.budget.notePatterns(len(exts))
	return listK1
}
