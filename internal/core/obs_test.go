package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/obs"
	"github.com/disc-mining/disc/internal/testutil"
)

// snapInt reads one counter out of a registry snapshot.
func snapInt(t *testing.T, snap map[string]any, key string) int64 {
	t.Helper()
	v, ok := snap[key]
	if !ok {
		t.Fatalf("snapshot has no %q; keys: %v", key, keysOf(snap))
	}
	n, ok := v.(int64)
	if !ok {
		t.Fatalf("%q is %T, want int64", key, v)
	}
	return n
}

func keysOf(m map[string]any) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// TestObsRegistryMatchesStats pins the read-through contract: the
// registry counters flushed at run end are the same accumulation
// LastStats reports — the two surfaces cannot disagree.
func TestObsRegistryMatchesStats(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	db := testutil.SkewedRandomDB(r, 80, 12, 6, 4)
	for _, workers := range []int{1, 4} {
		o := obs.NewObserver()
		m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: workers, Obs: o}}
		if _, err := m.Mine(db, 3); err != nil {
			t.Fatal(err)
		}
		s := m.LastStats()
		snap := o.Registry.Snapshot()
		for key, want := range map[string]int{
			"disc_mine_runs_total":         1,
			"disc_rounds_total":            s.Rounds,
			"disc_frequent_hits_total":     s.FrequentHits,
			"disc_skips_total":             s.Skips,
			"disc_kms_calls_total":         s.KMSCalls,
			"disc_ckms_calls_total":        s.CKMSCalls,
			"disc_dropped_customers_total": s.Dropped,
			"disc_arena_acquires_total":    s.ArenaAcquires,
			"disc_arena_reuses_total":      s.ArenaReuses,
		} {
			if got := snapInt(t, snap, key); got != int64(want) {
				t.Errorf("workers=%d: %s = %d, registry has %d", workers, key, want, got)
			}
		}
		for level, n := range s.PartitionsByLevel {
			key := fmt.Sprintf(`disc_partitions_total{level="%d"}`, level)
			if got := snapInt(t, snap, key); got != int64(n) {
				t.Errorf("workers=%d: %s = %d, registry has %d", workers, key, n, got)
			}
		}
		// The substrate recorders fire on real work: a database this size
		// must rotate AVL nodes and dedup counting-array touches.
		if snapInt(t, snap, "disc_avl_rotations_total") == 0 {
			t.Error("disc_avl_rotations_total is zero")
		}
		if snapInt(t, snap, "disc_counting_dedup_hits_total") == 0 {
			t.Error("disc_counting_dedup_hits_total is zero")
		}
		// Spans landed in the stage-duration histogram, including the
		// whole-run "mine" stage and the level-0 partition stage.
		var text strings.Builder
		if err := o.Registry.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{
			`disc_stage_duration_seconds_count{stage="mine"} 1`,
			`disc_stage_duration_seconds_count{stage="partition_l0"}`,
		} {
			if !strings.Contains(text.String(), want) {
				t.Errorf("workers=%d: exposition lacks %q", workers, want)
			}
		}
	}
}

// TestObsAccumulatesAcrossRuns: a shared observer (the discserve shape —
// one registry, many jobs) sums counters across runs instead of
// overwriting them.
func TestObsAccumulatesAcrossRuns(t *testing.T) {
	r := rand.New(rand.NewSource(112))
	db := testutil.SkewedRandomDB(r, 50, 10, 6, 4)
	o := obs.NewObserver()
	var rounds int
	for i := 0; i < 3; i++ {
		m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Obs: o}}
		if _, err := m.Mine(db, 2); err != nil {
			t.Fatal(err)
		}
		rounds += m.LastStats().Rounds
	}
	snap := o.Registry.Snapshot()
	if got := snapInt(t, snap, "disc_mine_runs_total"); got != 3 {
		t.Fatalf("disc_mine_runs_total = %d, want 3", got)
	}
	if got := snapInt(t, snap, "disc_rounds_total"); got != int64(rounds) {
		t.Fatalf("disc_rounds_total = %d, want %d", got, rounds)
	}
}
