package core

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

func TestShardOfStableAndInRange(t *testing.T) {
	keys := []seq.Pattern{
		seq.Pattern{}.ExtendS(1), seq.Pattern{}.ExtendS(2),
		seq.Pattern{}.ExtendS(7), seq.Pattern{}.ExtendS(100),
	}
	for _, count := range []int{1, 2, 3, 8} {
		for _, k := range keys {
			s := ShardOf(k, count)
			if s < 0 || s >= count {
				t.Fatalf("ShardOf(%v, %d) = %d, out of range", k, count, s)
			}
			if again := ShardOf(k, count); again != s {
				t.Fatalf("ShardOf(%v, %d) unstable: %d then %d", k, count, s, again)
			}
		}
	}
	if ShardOf(keys[0], 0) != 0 || ShardOf(keys[0], 1) != 0 {
		t.Fatal("count <= 1 must map everything to shard 0")
	}
}

func TestShardSpecValidateRejectsBadSpecs(t *testing.T) {
	for _, bad := range []*ShardSpec{
		{Index: -1, Count: 2}, {Index: 2, Count: 2}, {Index: 0, Count: 0},
	} {
		m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Shard: bad}}
		if _, err := m.Mine(testutil.Table1(), 2); err == nil {
			t.Errorf("shard %+v accepted, want error", bad)
		}
	}
	// A 1-of-1 shard is just a local run.
	m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Shard: &ShardSpec{Index: 0, Count: 1}}}
	if _, err := m.Mine(testutil.Table1(), 2); err != nil {
		t.Fatalf("1-of-1 shard failed: %v", err)
	}
}

// TestShardUnionByteIdentical is the foundation the cluster protocol
// stands on: mining every shard separately (each recording its completed
// first-level partitions), folding all recorded partitions into one
// checkpoint, and finishing with a ResumeFrom assembly run must produce
// a result byte-identical to a straight local run — for both algorithms,
// including configurations whose policy would never split on its own
// (Levels=0, γ=0), at one and many workers, across shard counts. It also
// pins disjointness: no first-level partition is recorded by two shards.
func TestShardUnionByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	db := testutil.SkewedRandomDB(r, 90, 12, 6, 4)
	const minSup = 2
	for _, tc := range []struct {
		name string
		mk   func(Options) mining.ContextMiner
		base Options
	}{
		{"disc-all", func(o Options) mining.ContextMiner { return &Miner{Opts: o} },
			Options{BiLevel: true, Levels: 2}},
		{"disc-all-nolevels", func(o Options) mining.ContextMiner { return &Miner{Opts: o} },
			Options{BiLevel: true, Levels: 0}},
		{"dynamic", func(o Options) mining.ContextMiner { return &Dynamic{Opts: o} },
			Options{BiLevel: true, Gamma: 0.5}},
		{"dynamic-gamma0", func(o Options) mining.ContextMiner { return &Dynamic{Opts: o} },
			Options{BiLevel: true, Gamma: 0}},
	} {
		straight, err := tc.mk(tc.base).MineContext(context.Background(), db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := renderSorted(straight)
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			for _, shards := range []int{2, 3, 5} {
				seen := map[string]int{}
				var all []checkpoint.Partition
				for idx := 0; idx < shards; idx++ {
					opts := tc.base
					opts.Workers = workers
					opts.Checkpoint = NewCheckpointer()
					opts.Shard = &ShardSpec{Index: idx, Count: shards}
					if _, err := tc.mk(opts).MineContext(context.Background(), db, minSup); err != nil {
						t.Fatalf("%s workers=%d shard %d/%d: %v", tc.name, workers, idx, shards, err)
					}
					parts := opts.Checkpoint.File(tc.name, minSup, 0).Partitions
					for _, p := range parts {
						seen[p.Key.Key()]++
						if owner := ShardOf(p.Key, shards); owner != idx {
							t.Fatalf("%s shard %d/%d recorded partition %s owned by shard %d",
								tc.name, idx, shards, p.Key, owner)
						}
					}
					all = append(all, parts...)
				}
				for k, n := range seen {
					if n != 1 {
						t.Fatalf("%s workers=%d shards=%d: partition %s recorded %d times",
							tc.name, workers, shards, k, n)
					}
				}
				// The assembly run: resume from the union of the shards'
				// checkpoints. Every partition restores; the level-0 scan
				// and the ascending merge are all that executes locally.
				opts := tc.base
				opts.Workers = workers
				asm := ResumeFrom(&checkpoint.File{Algo: tc.name, MinSup: minSup, Partitions: all})
				opts.Checkpoint = asm
				res, err := tc.mk(opts).MineContext(context.Background(), db, minSup)
				if err != nil {
					t.Fatalf("%s workers=%d shards=%d: assembly run: %v", tc.name, workers, shards, err)
				}
				if got := renderSorted(res); got != want {
					t.Fatalf("%s workers=%d shards=%d: shard union differs from local run\n%s",
						tc.name, workers, shards, straight.Diff(res))
				}
				if len(all) > 0 && asm.Restored() != len(all) {
					t.Errorf("%s workers=%d shards=%d: assembly restored %d of %d shipped partitions",
						tc.name, workers, shards, asm.Restored(), len(all))
				}
			}
		}
	}
}

// TestShardedResumeSkipsForeignPartitions: a shard seeded with the whole
// job's checkpoint (the coordinator resends everything it has) restores
// only its own partitions and records nothing foreign.
func TestShardedResumeSkipsForeignPartitions(t *testing.T) {
	r := rand.New(rand.NewSource(94))
	db := testutil.SkewedRandomDB(r, 60, 10, 6, 4)
	const minSup, shards = 2, 3

	full := NewCheckpointer()
	m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Checkpoint: full}}
	if _, err := m.Mine(db, minSup); err != nil {
		t.Fatal(err)
	}
	file := full.File("disc-all", minSup, 0)
	if len(file.Partitions) == 0 {
		t.Fatal("no partitions recorded")
	}

	cp := ResumeFrom(file)
	sm := &Miner{Opts: Options{BiLevel: true, Levels: 2,
		Checkpoint: cp, Shard: &ShardSpec{Index: 1, Count: shards}}}
	if _, err := sm.Mine(db, minSup); err != nil {
		t.Fatal(err)
	}
	for _, p := range cp.File("disc-all", minSup, 0).Partitions {
		if owner := ShardOf(p.Key, shards); owner != 1 {
			t.Fatalf("sharded resume emitted partition %s owned by shard %d", p.Key, owner)
		}
	}
}
