package core

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

func allVariants() []mining.Miner {
	return []mining.Miner{
		New(),
		&Miner{Opts: Options{BiLevel: false, Levels: 2}},
		&Miner{Opts: Options{BiLevel: true, Levels: 1}},
		&Miner{Opts: Options{BiLevel: true, Levels: 3}},
		&Miner{Opts: Options{BiLevel: true, Levels: -1}}, // pure DISC, no partitioning
		&Miner{}, // zero options: no partitioning, no bi-level (explicit zero is honoured)
		&Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: 4}},  // parallel scheduler
		&Miner{Opts: Options{BiLevel: false, Levels: 3, Workers: 3}}, // parallel, deeper static split
		NewDynamic(),
		&Dynamic{Opts: Options{BiLevel: true, Gamma: 0.05}},
		&Dynamic{Opts: Options{BiLevel: false, Gamma: 0.95}},
		&Dynamic{Opts: Options{BiLevel: true, Gamma: 0.5, Workers: 4}}, // parallel dynamic
	}
}

// TestTable1Golden mines the paper's Table 1 with δ=2.
func TestTable1Golden(t *testing.T) {
	db := testutil.Table1()
	ref, err := bruteforce.Exhaustive{}.Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, allVariants(), db, 2)
}

// TestTable6Golden mines the §3.1 running example with δ=3 and spot-checks
// the patterns the paper names: <(a, e)>, <(a)(g, h)>, the frequent
// 4-sequence <(a)(a, e, g)> of Example 3.5 and its unique frequent
// 5-extension <(a)(a, e, g, h)>.
func TestTable6Golden(t *testing.T) {
	db := testutil.Table6()
	ref, err := bruteforce.Exhaustive{}.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, allVariants(), db, 3)

	m := New()
	res, err := m.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"(a, e)", "(a)(g, h)", "(a)(a, e, g)", "(a)(a, e, g, h)"} {
		if _, ok := res.Support(seq.MustParsePattern(s)); !ok {
			t.Errorf("%s should be frequent", s)
		}
	}
	// Example 3.5: <(a)(a, e, g, h)> is the only frequent 5-sequence with
	// 4-prefix <(a)(a, e, g)>.
	for _, pc := range res.Sorted() {
		if pc.Pattern.Len() == 5 && pc.Pattern.Prefix(4).Equal(seq.MustParsePattern("(a)(a, e, g)")) {
			if !pc.Pattern.Equal(seq.MustParsePattern("(a)(a, e, g, h)")) {
				t.Errorf("unexpected frequent 5-sequence %s", pc.Pattern.Letters())
			}
		}
	}
}

// TestRandomAgainstOracle is the central differential test: every DISC
// variant must equal the exhaustive oracle on random databases.
func TestRandomAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for i := 0; i < 80; i++ {
		db := testutil.RandomDB(r, 6+r.Intn(8), 5, 4, 3)
		minSup := 1 + r.Intn(4)
		ref, err := bruteforce.Exhaustive{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, allVariants(), db, minSup)
	}
}

// TestSkewedAgainstLevelWise stresses deeper recursion with larger skewed
// databases.
func TestSkewedAgainstLevelWise(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for i := 0; i < 10; i++ {
		db := testutil.SkewedRandomDB(r, 70, 12, 6, 4)
		minSup := 3 + r.Intn(6)
		ref, err := bruteforce.LevelWise{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckAgainst(t, ref, allVariants(), db, minSup)
	}
}

// TestLongIdenticalSequences forces very long frequent sequences through
// the DISC loop (every k up to the sequence length is frequent).
func TestLongIdenticalSequences(t *testing.T) {
	db := mining.Database{
		seq.MustParseCustomerSeq(1, "(a, b)(c)(a, b)(c)(a, b)(c)"),
		seq.MustParseCustomerSeq(2, "(a, b)(c)(a, b)(c)(a, b)(c)"),
	}
	ref, err := bruteforce.Exhaustive{}.Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, allVariants(), db, 2)
	res, _ := New().Mine(db, 2)
	if sup, ok := res.Support(seq.MustParsePattern("(a, b)(c)(a, b)(c)(a, b)(c)")); !ok || sup != 2 {
		t.Errorf("full-length pattern support = %d,%v", sup, ok)
	}
}

// TestMinSupOne exercises the δ=1 edge: α_δ is always α₁, so every DISC
// round is a frequent hit.
func TestMinSupOne(t *testing.T) {
	db := mining.Database{seq.MustParseCustomerSeq(1, "(b)(a, c)(b)")}
	ref, err := bruteforce.Exhaustive{}.Mine(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainst(t, ref, allVariants(), db, 1)
}

func TestEmptyAndTinyDatabases(t *testing.T) {
	for _, m := range allVariants() {
		res, err := m.Mine(nil, 1)
		if err != nil || res.Len() != 0 {
			t.Errorf("%s on empty db: %v, %d", m.Name(), err, res.Len())
		}
		res, err = m.Mine(mining.Database{seq.MustParseCustomerSeq(1, "(a)")}, 2)
		if err != nil || res.Len() != 0 {
			t.Errorf("%s single customer, δ=2: %v, %d", m.Name(), err, res.Len())
		}
	}
}

// TestStatsAreMeaningful checks the instrumentation that the NRR analysis
// (§4.2) builds on: DISC rounds happen, skips happen on data with
// non-frequent minimums, partitions are counted per level.
func TestStatsAreMeaningful(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	db := testutil.SkewedRandomDB(r, 60, 10, 6, 4)
	m := New()
	if _, err := m.Mine(db, 4); err != nil {
		t.Fatal(err)
	}
	st := m.LastStats()
	if st.Rounds == 0 || st.KMSCalls == 0 {
		t.Errorf("no DISC activity recorded: %+v", st)
	}
	if st.FrequentHits+st.Skips != st.Rounds {
		t.Errorf("rounds %d != hits %d + skips %d", st.Rounds, st.FrequentHits, st.Skips)
	}
	if len(st.PartitionsByLevel) == 0 || st.PartitionsByLevel[0] != 1 {
		t.Errorf("PartitionsByLevel = %v", st.PartitionsByLevel)
	}
	if len(st.NRRByLevel) == 0 || st.NRRByLevel[0] <= 0 || st.NRRByLevel[0] >= 1 {
		t.Errorf("root NRR = %v, expected in (0,1)", st.NRRByLevel)
	}
}

// TestSkipsOccur verifies Lemma 2.2 actually triggers: a database designed
// so that customers disagree on their k-minimums must produce skip events.
func TestSkipsOccur(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	db := testutil.RandomDB(r, 30, 8, 5, 3)
	m := &Miner{Opts: Options{BiLevel: true, Levels: 1}}
	if _, err := m.Mine(db, 3); err != nil {
		t.Fatal(err)
	}
	if m.LastStats().Skips == 0 {
		t.Errorf("expected at least one Lemma-2.2 skip, stats %+v", m.LastStats())
	}
}

// TestDynamicMatchesStaticOnPaperData: the two algorithms must agree
// pattern-for-pattern regardless of γ.
func TestDynamicMatchesStatic(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	for _, gamma := range []float64{0.01, 0.3, 0.7, 0.99} {
		db := testutil.SkewedRandomDB(r, 50, 10, 5, 3)
		sRes, err := New().Mine(db, 3)
		if err != nil {
			t.Fatal(err)
		}
		d := &Dynamic{Opts: Options{BiLevel: true, Gamma: gamma}}
		dRes, err := d.Mine(db, 3)
		if err != nil {
			t.Fatal(err)
		}
		if diff := sRes.Diff(dRes); diff != "" {
			t.Fatalf("gamma=%v:\n%s", gamma, diff)
		}
	}
}

// TestReduceMembersTable7 reproduces Table 7: the <(a)>-partition of Table
// 6 with reduced customer sequences (δ=3). CID 5 drops out (too short).
func TestReduceMembersTable7(t *testing.T) {
	db := testutil.Table6()
	e := &engine{minSup: 3, res: mining.NewResult(), maxItem: db.MaxItem(),
		opts: DefaultOptions(), policy: func(int, float64) bool { return true }}
	var members []*member
	for _, cs := range db[:7] { // CIDs 1-7 form the <(a)>-partition
		members = append(members, &member{cs: cs})
	}
	list2, _ := e.frequentExtensions(seq.MustParsePattern("(a)"), members, 1)
	reduced, err := e.reduceMembers(1, members, list2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{
		1: "<(a)(a, g, h)(c)>",
		2: "<(b)(a)(a, c, e, g)>",
		3: "<(a, f, g)(a, e, g, h)(c, g, h)>",
		4: "<(f)(a, f)(a, c, e, g, h)>",
		6: "<(a, f)(a, e, g, h)>",
		7: "<(a, g)(a, e, g)(g, h)>",
	}
	if len(reduced) != len(want) {
		var got []string
		for _, mb := range reduced {
			got = append(got, mb.cs.Pattern().Letters())
		}
		t.Fatalf("reduced partition = %v, want %d members", got, len(want))
	}
	for _, mb := range reduced {
		if mb.cs.Pattern().Letters() != want[mb.cs.CID] {
			t.Errorf("CID %d reduced = %s, want %s", mb.cs.CID, mb.cs.Pattern().Letters(), want[mb.cs.CID])
		}
	}
}

// TestPartitionAssignmentExample31 checks the first-level partition
// assignment of Example 3.1 (Table 6, δ=3) through minFreqExtension. Two
// deliberate differences from the paper's bookkeeping are also pinned
// down: CID 9's minimum item d is not frequent, so it is assigned directly
// to its minimal *frequent* item f (the paper parks it in the
// <(d)>-partition, which is later skipped and reassigned — same effect);
// and after the <(a)>-partition is processed, CID 5 = (a, g) is reassigned
// to <(g)> rather than removed (the paper drops it because the minimum
// point sits at the end; keeping it preserves the partition-size =
// support invariant and is harmless since it cannot host any 2-sequence).
func TestPartitionAssignmentExample31(t *testing.T) {
	db := testutil.Table6()
	// Frequent items at δ=3: everything but d (support 2).
	freqS := make([]bool, 9)
	for _, x := range []seq.Item{1, 2, 3, 5, 6, 7, 8} {
		freqS[x] = true
	}
	wantInitial := map[int]seq.Item{
		1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1, 7: 1, // <(a)>-partition
		8: 2, 10: 2, // <(b)>-partition
		9:  6, // paper: <(d)>-partition; d is non-frequent, so directly f
		11: 5, // <(e)>-partition
	}
	for _, cs := range db {
		x, no, ok := minFreqExtension(cs, seq.Pattern{}, nil, freqS, 0, 0, false)
		if !ok || no != 1 || x != wantInitial[cs.CID] {
			t.Errorf("CID %d initial partition = item %d (%v), want %d", cs.CID, x, ok, wantInitial[cs.CID])
		}
	}
	// Reassignment after processing the <(a)>-partition (bound item a,
	// strict): the rightmost column of Table 6.
	wantNext := map[int]seq.Item{
		1: 3, // <(c)>-partition
		2: 2, // <(b)>-partition
		3: 3, 4: 3,
		5: 7, // paper: removed; here <(g)> (see comment above)
		6: 5, // <(e)>-partition
		7: 2,
	}
	for _, cs := range db[:7] {
		x, _, ok := minFreqExtension(cs, seq.Pattern{}, nil, freqS, 1, 1, true)
		if !ok || x != wantNext[cs.CID] {
			t.Errorf("CID %d next partition = item %d (%v), want %d", cs.CID, x, ok, wantNext[cs.CID])
		}
	}
	// End-to-end: exactly the 7 frequent first-level partitions are
	// processed.
	m := New()
	if _, err := m.Mine(db, 3); err != nil {
		t.Fatal(err)
	}
	st := m.LastStats()
	if len(st.PartitionsByLevel) < 2 || st.PartitionsByLevel[0] != 1 || st.PartitionsByLevel[1] != 7 {
		t.Errorf("PartitionsByLevel = %v, want [1 7 ...]", st.PartitionsByLevel)
	}
}
