// Package core implements the contribution of Chiu, Wu & Chen (ICDE 2004):
// the DISC (DIrect Sequence Comparison) strategy and the DISC-all and
// Dynamic DISC-all algorithms.
//
// The DISC strategy (§1.2, §2) finds all frequent k-sequences of a
// partition without computing support counts of non-frequent sequences: a
// k-sorted database keeps every customer ordered by its current k-minimum
// subsequence; the candidate α₁ (minimum) is frequent iff it equals the
// condition α_δ (the key at rank δ), in which case its support is the size
// of its bucket (Lemma 2.1); otherwise every k-sequence in [α₁, α_δ) is
// skipped wholesale (Lemma 2.2) and the affected customers move to their
// conditional k-minimum subsequences (Definition 2.5).
//
// DISC-all (§3, Figure 2) combines four strategies: multi-level database
// partitioning (by minimum 1-sequences, then 2-minimum sequences), customer
// sequence reducing (§3.1 removal of non-frequent 1-/2-sequence
// occurrences), candidate sequence pruning (Apriori-KMS/CKMS only extend
// frequent (k-1)-prefixes), and DISC itself for lengths ≥ 4, with the
// bi-level technique (§3.2) discovering frequent k- and (k+1)-sequences in
// one pass over each k-sorted database.
//
// Dynamic DISC-all (Appendix) replaces the fixed two-level split with a
// per-partition decision: keep partitioning while the partition's
// non-reduction rate (NRR, Eq. 2) is below a threshold γ, switch to DISC
// once it is not.
package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/disc-mining/disc/internal/avl"
	"github.com/disc-mining/disc/internal/counting"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/kmin"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/obs"
	"github.com/disc-mining/disc/internal/seq"
)

func init() {
	mining.Register("disc-all", func() mining.Miner { return New() })
	mining.Register("dynamic-disc-all", func() mining.Miner { return NewDynamic() })
}

// Options configures the DISC-all family.
type Options struct {
	// BiLevel enables the §3.2 bi-level technique (one k-sorted database
	// yields both frequent k- and (k+1)-sequences). The paper's
	// experimental version has it on, and DefaultOptions selects it; the
	// zero Options leaves it off.
	BiLevel bool

	// Levels is the number of partitioning levels of the static DISC-all.
	// The paper presents and evaluates the two-level scheme, which
	// DefaultOptions selects (Levels = 2). Zero or negative disables
	// partitioning entirely — the pure DISC strategy runs on the whole
	// database from length 2 upward, the ablation baseline for the
	// multi-level partitioning strategy. The mining run uses the value as
	// given: defaults are resolved only by New and DefaultOptions, so an
	// explicit 0 is representable. Ignored by Dynamic.
	Levels int

	// Gamma is the Dynamic DISC-all NRR threshold γ: a partition whose NRR
	// is at least γ switches from partitioning to DISC. γ = 0 (or below)
	// switches to DISC immediately on the whole database; γ ≥ 1 partitions
	// for as long as partitioning is productive. The mining run uses the
	// value as given: defaults are resolved only by NewDynamic and
	// DefaultOptions (γ = 0.5), so an explicit 0 is representable. Ignored
	// by the static algorithm.
	Gamma float64

	// Workers bounds the number of concurrent partition workers of the
	// execution layer. 0 selects runtime.GOMAXPROCS(0); 1 forces the
	// serial walk. The mined result is identical at every setting: the
	// parallel scheduler assigns deterministic per-partition inputs and
	// merges partition results in ascending key order.
	Workers int

	// Progress, when non-nil, receives execution progress events (one per
	// scheduled and per completed first-level partition). Callbacks are
	// serialized but may run on worker goroutines.
	Progress mining.ProgressFunc

	// MaxPatterns and MaxMemBytes are the soft resource budgets of the
	// run (see mining.ExecOptions): past 80% of a budget the engine
	// degrades (single-level partitioning, inline workers — both
	// result-preserving), past 100% it stops with a *mining.BudgetError.
	// Zero means unlimited.
	MaxPatterns int
	MaxMemBytes int64

	// Checkpoint, when non-nil, enables checkpoint/resume: the engine
	// records each completed first-level partition into the Checkpointer
	// and skips partitions it already holds (from ResumeFrom). The mined
	// result set is byte-identical with or without checkpointing, and a
	// killed-then-resumed run equals an uninterrupted one.
	Checkpoint *Checkpointer

	// Shard, when non-nil, restricts the run to one shard of the
	// first-level partition space (see ShardSpec): partitions hashing
	// outside the shard are skipped after the level-0 scan. The cluster
	// layer sets it on worker runs; it is not part of the checkpoint
	// fingerprint — a shard is a piece of the same job, not a different
	// one. Combined with Checkpoint, the run records exactly its shard's
	// completed partitions.
	Shard *ShardSpec

	// Faults, when non-nil, arms the deterministic fault-injection
	// points at partition boundaries (faultinject.WorkerPanic,
	// faultinject.CtxCancel). Production runs leave it nil; the
	// resilience tests drive every containment and recovery path
	// through it.
	Faults *faultinject.Injector

	// Obs, when non-nil, attaches the observability layer: the run opens
	// tracing spans around the mine and its shallow partitions, counts
	// AVL rotations and counting-array dedup hits through nil-safe
	// recorders, and folds the merged Stats into the observer's registry
	// when it finishes — /metrics and LastStats read the same numbers.
	// It does not influence the mined result or the checkpoint identity.
	Obs *obs.Observer

	// PointerTree forces the engine onto the seed pointer-per-node AVL
	// implementation instead of the default slab tree. It exists for the
	// differential harness (the two implementations must produce
	// byte-identical results across the full grid) and costs one extra
	// allocation per tree node; production runs leave it false. Scheduled
	// for removal together with avl.Pointer.
	PointerTree bool
}

// WithExec copies the execution-layer settings of x into the options.
func (o Options) WithExec(x mining.ExecOptions) Options {
	o.Workers = x.Workers
	o.Progress = x.Progress
	o.MaxPatterns = x.MaxPatterns
	o.MaxMemBytes = x.MaxMemBytes
	return o
}

// EffectiveWorkers resolves the Workers field (values below 1 select
// GOMAXPROCS), mirroring mining.ExecOptions.
func (o Options) EffectiveWorkers() int {
	return mining.ExecOptions{Workers: o.Workers}.EffectiveWorkers()
}

// DefaultOptions returns the configuration used in the paper's experiments:
// bi-level on, two partitioning levels, γ = 0.5 for the dynamic variant.
func DefaultOptions() Options {
	return Options{BiLevel: true, Levels: 2, Gamma: 0.5}
}

// Stats reports what a run did; retrieved with Miner.LastStats.
type Stats struct {
	// Rounds is the number of DISC iterations (α₁ vs α_δ comparisons).
	Rounds int
	// FrequentHits counts rounds with α₁ = α_δ (a frequent sequence found).
	FrequentHits int
	// Skips counts rounds with α₁ ≠ α_δ (a whole key range skipped without
	// support counting).
	Skips int
	// KMSCalls and CKMSCalls count minimum-subsequence generations.
	KMSCalls, CKMSCalls int
	// Dropped counts customers removed from k-sorted databases for lack of
	// a conditional k-minimum subsequence.
	Dropped int
	// PartitionsByLevel counts processed (frequent) partitions per level.
	PartitionsByLevel []int
	// NRRByLevel aggregates the observed NRR of partitions per level
	// (sample mean over partitions where the decision was taken).
	NRRByLevel []float64
	// Degraded reports that the run crossed a resource-budget
	// degradation threshold (Options.MaxPatterns / MaxMemBytes) and
	// finished in the degraded execution shape. The result set is
	// unaffected.
	Degraded bool
	// ArenaAcquires counts scratch-arena bundles drawn by the run's
	// engines; ArenaReuses counts the draws satisfied by a warm bundle a
	// finished worker returned to the pool. Execution-shape counters like
	// Degraded: not part of the checkpoint identity.
	ArenaAcquires int
	ArenaReuses   int
	nrrCount      []int
}

func (s *Stats) observeNRR(level int, nrr float64) {
	for len(s.NRRByLevel) <= level {
		s.NRRByLevel = append(s.NRRByLevel, 0)
		s.nrrCount = append(s.nrrCount, 0)
	}
	n := float64(s.nrrCount[level])
	s.NRRByLevel[level] = (s.NRRByLevel[level]*n + nrr) / (n + 1)
	s.nrrCount[level]++
}

func (s *Stats) partitionProcessed(level int) {
	for len(s.PartitionsByLevel) <= level {
		s.PartitionsByLevel = append(s.PartitionsByLevel, 0)
	}
	s.PartitionsByLevel[level]++
}

// merge folds the statistics of a completed partition worker into s. The
// scheduler merges workers in ascending partition-key order, so the merged
// statistics are deterministic for a fixed input; the counters equal the
// serial run's exactly, and the per-level NRR means (combined by weighted
// average) match it up to floating-point associativity.
func (s *Stats) merge(o *Stats) {
	s.Rounds += o.Rounds
	s.FrequentHits += o.FrequentHits
	s.Skips += o.Skips
	s.KMSCalls += o.KMSCalls
	s.CKMSCalls += o.CKMSCalls
	s.Dropped += o.Dropped
	s.ArenaAcquires += o.ArenaAcquires
	s.ArenaReuses += o.ArenaReuses
	for level, n := range o.PartitionsByLevel {
		for len(s.PartitionsByLevel) <= level {
			s.PartitionsByLevel = append(s.PartitionsByLevel, 0)
		}
		s.PartitionsByLevel[level] += n
	}
	for level, mean := range o.NRRByLevel {
		if o.nrrCount[level] == 0 {
			continue
		}
		for len(s.NRRByLevel) <= level {
			s.NRRByLevel = append(s.NRRByLevel, 0)
			s.nrrCount = append(s.nrrCount, 0)
		}
		n, m := float64(s.nrrCount[level]), float64(o.nrrCount[level])
		s.NRRByLevel[level] = (s.NRRByLevel[level]*n + mean*m) / (n + m)
		s.nrrCount[level] += o.nrrCount[level]
	}
}

// Miner is the static DISC-all algorithm (Figure 2).
type Miner struct {
	Opts  Options
	stats Stats
}

// New returns a DISC-all miner with the paper's default options.
func New() *Miner { return &Miner{Opts: DefaultOptions()} }

// Name implements mining.Miner.
func (m *Miner) Name() string { return "disc-all" }

// LastStats returns statistics from the most recent Mine call.
func (m *Miner) LastStats() Stats { return m.stats }

// Mine implements mining.Miner.
func (m *Miner) Mine(db mining.Database, minSup int) (*mining.Result, error) {
	return m.MineContext(context.Background(), db, minSup)
}

// MineContext implements mining.ContextMiner: the run observes ctx
// cooperatively (per partition, per DISC round batch) and returns ctx.Err()
// when cancelled, after every partition worker has stopped.
func (m *Miner) MineContext(ctx context.Context, db mining.Database, minSup int) (*mining.Result, error) {
	levels := m.Opts.Levels // used as given; New/DefaultOptions resolve defaults
	e := &engine{
		opts:   m.Opts,
		policy: func(level int, nrr float64) bool { return level < levels },
	}
	res, err := e.run(ctx, db, minSup)
	m.stats = e.stats
	return res, err
}

// Dynamic is the Dynamic DISC-all algorithm (Appendix): it partitions while
// the NRR is below γ and switches to DISC afterwards.
type Dynamic struct {
	Opts  Options
	stats Stats
}

// NewDynamic returns a Dynamic DISC-all miner with default options.
func NewDynamic() *Dynamic { return &Dynamic{Opts: DefaultOptions()} }

// Name implements mining.Miner.
func (d *Dynamic) Name() string { return "dynamic-disc-all" }

// LastStats returns statistics from the most recent Mine call.
func (d *Dynamic) LastStats() Stats { return d.stats }

// Mine implements mining.Miner.
func (d *Dynamic) Mine(db mining.Database, minSup int) (*mining.Result, error) {
	return d.MineContext(context.Background(), db, minSup)
}

// MineContext implements mining.ContextMiner (see Miner.MineContext).
func (d *Dynamic) MineContext(ctx context.Context, db mining.Database, minSup int) (*mining.Result, error) {
	gamma := d.Opts.Gamma // used as given; NewDynamic/DefaultOptions resolve defaults
	e := &engine{
		opts:   d.Opts,
		policy: func(level int, nrr float64) bool { return nrr < gamma },
	}
	res, err := e.run(ctx, db, minSup)
	d.stats = e.stats
	return res, err
}

// member is one customer sequence inside a partition.
type member struct {
	cs *seq.CustomerSeq
}

// engine runs the shared partition-or-DISC recursion. A parallel run
// creates one child engine per scheduled partition (its own result set,
// statistics and counting-array scratch state) and merges the children
// back in ascending partition-key order; ctx, sched, pool and prog are
// shared across the engine tree.
type engine struct {
	opts    Options
	policy  func(level int, nrr float64) bool
	minSup  int
	res     *mining.Result
	maxItem seq.Item
	scr     *scratch // this engine's arena bundle; drawn lazily (see arena.go)
	stats   Stats
	ctx     context.Context       // nil means "never cancelled" (direct engine use in tests)
	sched   *scheduler            // nil for a serial run
	pool    *scratchPool          // shared arena-bundle pool of a parallel run
	prog    *progressTracker      // nil unless Options.Progress is set
	budget  *budgetState          // nil unless a resource budget is set
	ckpt    *Checkpointer         // nil unless checkpoint/resume is enabled
	shard   *ShardSpec            // nil unless this run mines one shard of the partition space
	faults  *faultinject.Injector // nil in production runs
	obs     *obs.Observer         // nil unless Options.Obs is set
	cur     obs.Span              // innermost open span: the parent for spans opened below
	avlRec  *avl.Recorder         // run-wide rotation recorder; nil without obs
	cntRec  *counting.Recorder    // run-wide dedup recorder; nil without obs
}

func (e *engine) run(ctx context.Context, db mining.Database, minSup int) (*mining.Result, error) {
	if minSup < 1 {
		minSup = 1
	}
	e.minSup = minSup
	e.ctx = ctx
	e.res = mining.NewResult()
	e.maxItem = db.MaxItem()
	if err := e.cancelled(); err != nil {
		return nil, err
	}
	if len(db) == 0 {
		return e.res, nil
	}
	workers := e.opts.EffectiveWorkers()
	if e.opts.Progress != nil {
		e.prog = &progressTracker{fn: e.opts.Progress, workers: workers}
	}
	e.budget = newBudgetState(e.opts)
	e.ckpt = e.opts.Checkpoint
	if s := e.opts.Shard; s != nil {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if s.Count > 1 { // 1 of 1 is just a local run
			e.shard = s
		}
	}
	e.faults = e.opts.Faults
	e.initObs()
	if workers > 1 {
		e.sched = newScheduler(workers)
		e.sched.degraded = e.budget
		e.pool = &scratchPool{maxItem: e.maxItem, pointer: e.opts.PointerTree, avlRec: e.avlRec, cntRec: e.cntRec}
	}
	members := make([]*member, len(db))
	for i, cs := range db {
		members[i] = &member{cs: cs}
	}
	// The serial walk (and everything the root goroutine itself executes)
	// is contained here; worker goroutines are contained at their spawn
	// sites in parallel.go. Either way a panic surfaces as an
	// *mining.InvariantError from Mine instead of crashing the process.
	sp := e.obs.Span("mine")
	e.cur = sp
	err := mining.Contain("<root>", func() error {
		return e.processPartition(seq.Pattern{}, members, 0)
	})
	sp.End()
	e.releaseScratch()
	// The run is over: close the progress stream (so consumers always see
	// a final Done == Total event, even on error or cancellation) and fold
	// the merged statistics into the observer's registry.
	e.prog.finish()
	e.stats.Degraded = e.budget.isDegraded()
	e.flushObs(err)
	if err != nil {
		return nil, err
	}
	return e.res, nil
}

// child returns a worker engine for one scheduled partition: it shares the
// run-wide configuration and coordination state but owns its result set,
// statistics and counting arrays.
func (e *engine) child() *engine {
	return &engine{
		opts:    e.opts,
		policy:  e.policy,
		minSup:  e.minSup,
		res:     mining.NewResult(),
		maxItem: e.maxItem,
		ctx:     e.ctx,
		sched:   e.sched,
		pool:    e.pool,
		prog:    e.prog,
		budget:  e.budget,
		ckpt:    e.ckpt,
		shard:   e.shard,
		faults:  e.faults,
		obs:     e.obs,
		cur:     e.cur,
		avlRec:  e.avlRec,
		cntRec:  e.cntRec,
	}
}

// cancelled returns the context's error once the run is cancelled or past
// its deadline.
func (e *engine) cancelled() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// interrupted returns the first reason the run must stop: a context
// cancellation / deadline, or an exhausted resource budget. It is the
// check every cooperative stopping point uses.
func (e *engine) interrupted() error {
	if err := e.cancelled(); err != nil {
		return err
	}
	return e.budget.err()
}

// site names a partition for fault injection and contained-panic
// reports.
func site(key seq.Pattern) string {
	if key.IsEmpty() {
		return "<root>"
	}
	return key.String()
}

// array returns the counting array for one recursion depth, from the
// engine's arena bundle (see arena.go: parallel runs draw whole bundles
// from a shared pool, so live scratch memory stays proportional to
// workers × depth rather than to the number of scheduled partitions).
func (e *engine) array(depth int) *counting.Array {
	return e.scratch().array(depth)
}

// processPartition handles one <key>-partition whose members are exactly
// the customers containing key (len(key) == level). It discovers the
// frequent (level+1)-sequences with prefix key, then either splits into
// child partitions or runs DISC, per the policy.
func (e *engine) processPartition(key seq.Pattern, members []*member, level int) error {
	// Deterministic fault-injection points: a partition boundary is
	// where an injected worker panic or cancellation lands. Both are
	// no-ops (one pointer check) without an armed injector.
	e.faults.Panic(faultinject.WorkerPanic, site(key))
	e.faults.Cancel(faultinject.CtxCancel, site(key))
	if err := e.interrupted(); err != nil {
		return err
	}
	e.budget.sampleMem(e.scratchBytes())
	e.stats.partitionProcessed(level)
	// The partition span becomes the parent of everything opened while
	// mining this partition — deeper partitions, eager-bucket closures —
	// so a traced run yields a hierarchy mirroring the recursion. The
	// previous innermost span is restored on the way out (the serial
	// split walks partitions depth-first on one goroutine; parallel
	// children each carry their own copy of cur from child()).
	sp := e.span("partition", level)
	prev := e.cur
	if sp.Live() {
		e.cur = sp
	}
	defer func() { sp.End(); e.cur = prev }()

	// Step 1: one scan with the counting array finds the frequent
	// extensions of key.
	listNext, supports := e.frequentExtensions(key, members, level)
	for i, p := range listNext {
		e.res.Add(p, supports[i])
	}
	e.budget.notePatterns(len(listNext))
	if len(listNext) == 0 {
		return nil
	}

	// The non-reduction rate of this partition (Eq. 2, with child sizes
	// taken as the children's support counts).
	sum := 0
	for _, s := range supports {
		sum += s
	}
	nrr := float64(sum) / float64(len(supports)) / float64(len(members))
	e.stats.observeNRR(level, nrr)

	// Customer sequence reducing (§3.1): inside a first-level partition,
	// occurrences that can only form non-frequent 1- or 2-sequences are
	// removed before going deeper.
	if level == 1 {
		var err error
		members, err = e.reduceMembers(key.LastItem(), members, listNext)
		if err != nil {
			return err
		}
	}

	// A checkpointed or sharded run always splits eagerly at level 0,
	// regardless of the policy: the eager split isolates each first-level
	// partition's result (for recording) and is where the shard filter
	// applies (a shard that fell through to the whole-database DISC loop
	// would mine every other shard's work too). Forcing the split is
	// result-preserving — the partitioning strategies never change the
	// mined set, only how it is found (the difftest Levels/γ grid pins
	// this) — so a γ=0 dynamic run and its forced-split shard still agree
	// byte for byte.
	if level == 0 && (e.ckpt != nil || e.shard != nil) {
		return e.splitParallel(key, members, listNext, level)
	}
	// The degradation ladder's first rung: past the soft-budget
	// threshold, deeper partitions switch straight to DISC (the Levels=1
	// shape) — fewer live child partitions and scratch trees, with a
	// result set proven identical by the differential harness.
	if e.policy(level, nrr) && !(level >= 1 && e.budget.isDegraded()) {
		// The eager (scheduled) split handles level-0 and level-1 splits
		// of a parallel run.
		if len(listNext) > 1 && e.sched != nil && level < parallelSplitDepth {
			return e.splitParallel(key, members, listNext, level)
		}
		return e.split(key, members, listNext, level)
	}
	return e.discLoop(members, listNext, level+2)
}

// split partitions members by their minimal contained frequent extension
// of key, processes the partitions in ascending order, and reassigns
// customers to their next minimal contained extension after each partition
// finishes (Steps 2.2 and 2.1.3.3 of Figure 2).
func (e *engine) split(key seq.Pattern, members []*member, list []seq.Pattern, level int) error {
	freqI, freqS := e.extensionFlags(key, list, level)
	if level == 0 && e.prog != nil {
		e.prog.begin(len(list))
	}
	tree := e.scratch().splitTree(level)
	for _, mb := range members {
		if x, no, ok := minFreqExtension(mb.cs, key, freqI, freqS, 0, 0, false); ok {
			tree.Insert(key.Extend(x, no), mb)
		}
	}
	for tree.Size() > 0 {
		if err := e.interrupted(); err != nil {
			return err
		}
		pkey, bucket, _ := tree.PopMin()
		// The bucket holds every remaining customer containing pkey, so
		// its size is pkey's exact support; pkey comes from the frequent
		// list.
		if len(bucket) >= e.minSup {
			if err := e.processPartition(pkey, bucket, level+1); err != nil {
				return err
			}
		}
		if level == 0 && e.prog != nil {
			e.prog.step()
		}
		bx, bno := pkey.LastItem(), pkey.LastTNo()
		for _, mb := range bucket {
			if x, no, ok := minFreqExtension(mb.cs, key, freqI, freqS, bx, bno, true); ok {
				tree.Insert(key.Extend(x, no), mb)
			}
		}
	}
	return nil
}

// extensionFlags spreads the frequent extension list of key into the
// per-item lookup tables consumed by minFreqExtension: freqI flags items
// whose i-form (growing key's last itemset) is frequent, freqS the s-form.
// The tables come from the arena's per-level pair — the split at this
// level holds them across its deeper recursion, which only touches
// higher-level pairs.
func (e *engine) extensionFlags(key seq.Pattern, list []seq.Pattern, level int) (freqI, freqS []bool) {
	freqI, freqS = e.scratch().levelFlags(level)
	for _, p := range list {
		if p.LastTNo() == key.LastTNoOrZero() {
			freqI[p.LastItem()] = true
		} else {
			freqS[p.LastItem()] = true
		}
	}
	return freqI, freqS
}

// minFreqExtension returns the minimal frequent extension pair (x, no) of
// key contained in cs, restricted to pairs greater than (boundX, boundNo)
// when strict (or at least it otherwise); boundX == 0 accepts everything.
// Frequency of a pair is read from freqI/freqS (indexed by item, selected
// by whether the pair grows key's last itemset).
func minFreqExtension(cs *seq.CustomerSeq, key seq.Pattern, freqI, freqS []bool, boundX seq.Item, boundNo int32, strict bool) (seq.Item, int32, bool) {
	var bestX seq.Item
	var bestNo int32
	have := false
	consider := func(x seq.Item, no int32) {
		if boundX != 0 {
			c := seq.ComparePair(x, no, boundX, boundNo)
			if c < 0 || (strict && c == 0) {
				return
			}
		}
		if !have || seq.ComparePair(x, no, bestX, bestNo) < 0 {
			bestX, bestNo, have = x, no, true
		}
	}
	if key.IsEmpty() {
		for _, x := range cs.Items() {
			if freqS[x] {
				consider(x, 1)
			}
		}
		return bestX, bestNo, have
	}
	n := key.LastTNo()
	kmin.EnumExtensions(cs, key,
		func(x seq.Item) {
			if freqI[x] {
				consider(x, n)
			}
		},
		func(x seq.Item) {
			if freqS[x] {
				consider(x, n+1)
			}
		})
	return bestX, bestNo, have
}

// frequentExtensions finds the frequent (len(key)+1)-sequences with prefix
// key among members, in ascending order, together with their supports.
func (e *engine) frequentExtensions(key seq.Pattern, members []*member, depth int) ([]seq.Pattern, []int) {
	s := e.scratch()
	arr := s.array(depth)
	if key.IsEmpty() {
		// Level 0: frequent 1-sequences.
		seen := s.seenBitmap()
		buf := s.itemBuf
		for ci, mb := range members {
			buf = mb.cs.DistinctItems(buf[:0], seen)
			for _, it := range buf {
				arr.TouchS(it, int32(ci))
			}
		}
		s.itemBuf = buf
	} else {
		for ci, mb := range members {
			cid := int32(ci)
			kmin.EnumExtensions(mb.cs, key,
				func(x seq.Item) { arr.TouchI(x, cid) },
				func(x seq.Item) { arr.TouchS(x, cid) })
		}
	}
	s.fi = arr.FrequentI(e.minSup, s.fi[:0])
	s.fs = arr.FrequentS(e.minSup, s.fs[:0])
	return mergeExtensions(key, arr, s.fi, s.fs)
}

// mergeExtensions interleaves the frequent i- and s-extensions of key into
// one ascending pattern list. For equal items the i-form <.. x> precedes
// the s-form <..>(x) under the comparative order (smaller transaction
// number).
func mergeExtensions(key seq.Pattern, arr *counting.Array, fi, fs []seq.Item) ([]seq.Pattern, []int) {
	out := make([]seq.Pattern, 0, len(fi)+len(fs))
	sups := make([]int, 0, len(fi)+len(fs))
	i, j := 0, 0
	for i < len(fi) || j < len(fs) {
		if j >= len(fs) || (i < len(fi) && fi[i] <= fs[j]) {
			out = append(out, key.ExtendI(fi[i]))
			sups = append(sups, arr.SupI(fi[i]))
			i++
		} else {
			out = append(out, key.ExtendS(fs[j]))
			sups = append(sups, arr.SupS(fs[j]))
			j++
		}
	}
	return out, sups
}

// reduceMembers applies the §3.1 reduction inside the <(λ)>-partition:
// every item occurrence right of the minimum point survives only if it can
// still participate in a frequent sequence with first item λ, judged by the
// frequent 2-sequences <(λ)(x)> and <(λ x)>. Occurrences of λ itself are
// always kept. Customers reduced below length 3 are dropped (they were
// already counted for lengths 1 and 2).
//
// A member of the <(λ)>-partition must contain λ; a member that does not
// means the database violates the documented canonical form (itemsets
// sorted ascending, duplicate-free — see seq.NewCustomerSeq), and the run
// reports that as an error rather than crashing from a worker goroutine.
func (e *engine) reduceMembers(lambda seq.Item, members []*member, list2 []seq.Pattern) ([]*member, error) {
	s := e.scratch()
	// reduceMembers runs at level 1 while the level-0 split's flag tables
	// are live, so it uses the arena's dedicated pair.
	freqI, freqS := s.reduceFlags()
	for _, p := range list2 {
		x := p.LastItem()
		if p.NumItemsets() == 1 {
			freqI[x] = true
		} else {
			freqS[x] = true
		}
	}
	// The caller's slice is left untouched: the parent split still walks it
	// (with the original, unreduced sequences) for reassignment. The
	// reduced sequences escape into deeper partitions, so out is a fresh
	// allocation; the surviving-item staging below is not (NewCustomerSeq
	// copies, so one flat arena buffer serves every customer in turn).
	out := make([]*member, 0, len(members))
	sets := s.sets[:0]
	buf := s.redBuf
	for _, mb := range members {
		cs := mb.cs
		minTrans := -1
		for t := 0; t < cs.NTrans(); t++ {
			if cs.Transaction(t).Has(lambda) {
				minTrans = t
				break
			}
		}
		if minTrans < 0 {
			return nil, fmt.Errorf("core: malformed database: customer cid=%d was assigned to the partition of item %d but does not contain it (itemsets must be sorted ascending and duplicate-free; construct customer sequences with seq.NewCustomerSeq)", cs.CID, lambda)
		}
		sets = sets[:0]
		if cap(buf) < cs.Len() {
			buf = make([]seq.Item, 0, cs.Len())
		}
		buf = buf[:0]
		// The removal rules of §3.1 apply to items right of the minimum
		// point only; earlier transactions are carried over unchanged (they
		// cannot match any pattern starting with λ, but the paper's Table 7
		// keeps them and they are harmless).
		for t := 0; t < minTrans; t++ {
			sets = append(sets, cs.Transaction(t))
		}
		for t := minTrans; t < cs.NTrans(); t++ {
			tr := cs.Transaction(t)
			hasLambda := tr.Has(lambda)
			start := len(buf)
			for _, x := range tr {
				keep := false
				switch {
				case x == lambda:
					keep = true
				case t == minTrans:
					// Condition 1 holds (the minimum point's transaction
					// contains λ), condition 2 does not: x survives only
					// through the itemset form, which also requires x > λ.
					keep = x > lambda && freqI[x]
				case hasLambda:
					// Both conditions hold: either form keeps x alive.
					keep = freqS[x] || (x > lambda && freqI[x])
				default:
					// Condition 1 fails: only the sequence form applies.
					keep = freqS[x]
				}
				if keep {
					buf = append(buf, x)
				}
			}
			if len(buf) > start {
				sets = append(sets, seq.Itemset(buf[start:len(buf):len(buf)]))
			}
		}
		red := seq.NewCustomerSeq(cs.CID, sets...)
		if red.Len() < 3 {
			continue
		}
		out = append(out, &member{cs: red})
	}
	s.sets, s.redBuf = sets, buf
	return out, nil
}

// sortPatternList sorts patterns ascending in place (defensive helper for
// the bi-level list construction).
func sortPatternList(ps []seq.Pattern) {
	sort.Slice(ps, func(i, j int) bool { return seq.Compare(ps[i], ps[j]) < 0 })
}
