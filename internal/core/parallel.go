// Parallel partition scheduling. DISC-all's divide-and-conquer structure
// (Figure 2) produces independent partitions — processPartition touches
// only its own members, counting arrays and AVL scratch state — so the
// first two partitioning levels are fanned out onto a bounded worker pool.
//
// The serial algorithm assigns customers to partitions lazily: each
// customer sits in the bucket of its minimal contained frequent extension
// and is reassigned to the next one when that bucket is popped (Steps 2.2
// and 2.1.3.3 of Figure 2). Walked to completion, the reassignment chain
// visits exactly the frequent extensions the customer contains, so the
// bucket a partition eventually sees is precisely "the members containing
// its key". The parallel path computes that closure upfront
// (eagerBuckets), which makes every partition's input independent of the
// processing order and therefore schedulable: per-partition results and
// statistics are merged back in ascending key order, so a parallel run is
// deterministic and produces the same result set as the serial walk at
// any worker count.
package core

import (
	"sort"
	"sync"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// parallelSplitDepth is the number of partitioning levels fanned out onto
// the worker pool: splits at levels 0 and 1 schedule their level-1 and
// level-2 partitions concurrently. Deeper splits (Levels > 2 or Dynamic
// configurations) stay serial within their worker — by then the fan-out
// above them already saturates the pool.
const parallelSplitDepth = 2

// cancelCheckMask throttles cooperative cancellation checks inside the
// DISC round loop to one in 64, keeping ctx.Err() off the per-round hot
// path.
const cancelCheckMask = 63

// scheduler is the bounded worker pool of a parallel run. Its capacity is
// workers-1 because the submitting goroutine always works too (the inline
// fallback of do), so at most `workers` partition jobs run concurrently
// and submission never blocks — which also makes the nested fan-out
// (level-1 partitions scheduling level-2 partitions) deadlock-free.
//
// A nil *scheduler is valid and runs everything inline — the serial
// execution path of a checkpointed single-worker run.
type scheduler struct {
	workers  int
	sem      chan struct{}
	degraded *budgetState // when non-nil and degraded, stop spawning
}

func newScheduler(workers int) *scheduler {
	return &scheduler{workers: workers, sem: make(chan struct{}, workers-1)}
}

// do runs fn on its own goroutine when a worker slot is free, and inline
// on the caller otherwise. Spawned goroutines are tracked by wg; callers
// wait on it after submitting a whole batch. A degraded run (resource
// budget nearly exhausted) shrinks the pool by running everything inline
// from then on: in-flight workers finish, no new goroutines (and none of
// their private scratch state) are created.
func (s *scheduler) do(wg *sync.WaitGroup, fn func()) {
	if s == nil || s.degraded.isDegraded() {
		fn()
		return
	}
	select {
	case s.sem <- struct{}{}:
		wg.Add(1)
		go func() {
			defer func() {
				<-s.sem
				wg.Done()
			}()
			fn()
		}()
	default:
		fn()
	}
}

// progressTracker serializes Options.Progress callbacks and counts
// completed first-level partitions. Its closing contract: consumers see
// a final Done == Total event exactly once, whether the run completes,
// a partition errors, or the context is cancelled mid-run — so
// "finished" is always distinguishable from "abandoned".
type progressTracker struct {
	mu      sync.Mutex
	fn      mining.ProgressFunc
	done    int
	total   int
	workers int
	begun   bool
	closed  bool
}

// begin announces the first-level partition count.
func (p *progressTracker) begin(total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.total = total
	p.begun = true
	p.fn(mining.ProgressEvent{Stage: mining.StagePartitions, Done: 0, Total: total, Workers: p.workers})
}

// step reports one more completed first-level partition.
func (p *progressTracker) step() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.done++
	p.fn(mining.ProgressEvent{Stage: mining.StagePartitions, Done: p.done, Total: p.total, Workers: p.workers})
}

// finish closes the stream when the run ends. A run that stepped through
// every partition already emitted its Done == Total event and gets no
// duplicate; an interrupted run (error, cancellation, or a run that died
// before begin) gets the final event synthesized here. Idempotent; safe
// on a nil tracker (no Progress configured). The engine calls it after
// every worker has stopped, so no step can race in behind it.
func (p *progressTracker) finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.begun && p.done == p.total {
		return
	}
	p.done = p.total
	p.fn(mining.ProgressEvent{Stage: mining.StagePartitions, Done: p.total, Total: p.total, Workers: p.workers})
}

// splitParallel is the scheduled counterpart of split: it computes every
// child partition's membership upfront and runs the qualifying partitions
// on the worker pool, each on a child engine with private result,
// statistics and scratch state. Children are merged back in ascending
// key order (list is sorted), so the outcome is deterministic and equal to
// the serial walk's.
//
// It is also the checkpoint boundary: at level 0 with a Checkpointer
// attached, partitions a prior run completed are restored instead of
// re-mined, and each freshly completed partition is recorded the moment
// its worker finishes. Restored and mined partitions interleave in the
// same ascending-key merge, so a resumed run's result set is
// byte-identical to a straight run's.
//
// Worker closures run under mining.Contain: a panic inside a partition
// (e.g. the findExtension invariant) surfaces as that partition's error
// — the run drains cleanly and Mine returns an *mining.InvariantError —
// instead of killing the process from a goroutine no caller can recover.
func (e *engine) splitParallel(key seq.Pattern, members []*member, list []seq.Pattern, level int) error {
	buckets, err := e.eagerBuckets(key, members, list, level)
	if err != nil {
		return err
	}
	if level == 0 && e.prog != nil {
		e.prog.begin(len(list))
	}
	children := make([]*engine, len(list))
	restored := make([]*checkpoint.Partition, len(list))
	errs := make([]error, len(list))
	var wg sync.WaitGroup
	for i := range list {
		// The shard filter: a first-level partition hashing outside this
		// run's shard belongs to another worker. It is skipped before the
		// restore check, so a resumed shard consumes only its own
		// restored partitions even if the checkpoint carries foreign ones.
		if level == 0 && e.shard != nil && ShardOf(list[i], e.shard.Count) != e.shard.Index {
			if e.prog != nil {
				e.prog.step()
			}
			continue
		}
		if level == 0 && e.ckpt != nil {
			if p, ok := e.ckpt.restore(list[i]); ok {
				restored[i] = &p
				if e.prog != nil {
					e.prog.step()
				}
				continue
			}
		}
		if len(buckets[i]) < e.minSup {
			// Too few members survive reduction to host a frequent
			// (level+2)-sequence; the partition key itself was already
			// counted by the parent.
			if level == 0 && e.prog != nil {
				e.prog.step()
			}
			continue
		}
		i := i
		child := e.child()
		children[i] = child
		e.sched.do(&wg, func() {
			errs[i] = mining.Contain(site(list[i]), func() error {
				return child.processPartition(list[i], buckets[i], level+1)
			})
			child.releaseScratch()
			if errs[i] == nil && level == 0 && e.ckpt != nil {
				e.ckpt.record(list[i], child.res, &child.stats)
			}
			if level == 0 && e.prog != nil {
				e.prog.step()
			}
		})
	}
	wg.Wait()
	// Merge completed children and restored partitions in ascending key
	// order before reporting any error: an interrupted run keeps the
	// statistics of the work that did finish, and the merged order is
	// identical whether a partition was mined now or restored.
	var firstErr error
	for i := range list {
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
		if p := restored[i]; p != nil {
			for _, pc := range p.Patterns {
				e.res.Add(pc.Pattern, pc.Support)
			}
			st := statsFromCheckpoint(&p.Stats)
			e.stats.merge(&st)
			continue
		}
		if child := children[i]; child != nil && errs[i] == nil {
			e.stats.merge(&child.stats)
			e.res.Merge(child.res)
		}
	}
	return firstErr
}

// eagerBuckets assigns every member to the bucket of each frequent
// extension of key it contains — the transitive closure of Figure 2's
// reassignment walk, computed upfront so the partitions can be scheduled
// concurrently. Bucket i collects the members containing list[i] in member
// order, making each scheduled partition's input (and hence the merged
// output) independent of scheduling order. The closure walk is itself
// chunked across the pool; chunk results are concatenated in member
// order. Chunk goroutines run under mining.Contain — the findExtension
// invariant panic comes back as an error, never as a process crash.
// eagerBuckets' chunk goroutines read the submitting engine's arena flag
// tables concurrently but strictly read-only, and all of them finish
// (wg.Wait) before anything writes those tables again.
func (e *engine) eagerBuckets(key seq.Pattern, members []*member, list []seq.Pattern, level int) ([][]*member, error) {
	if e.obs != nil {
		defer e.obs.SpanUnder(e.cur, "eager_buckets").End()
	}
	freqI, freqS := e.extensionFlags(key, list, level)
	assign := func(members []*member, buckets [][]*member) {
		for _, mb := range members {
			x, no, ok := minFreqExtension(mb.cs, key, freqI, freqS, 0, 0, false)
			for ok {
				i := findExtension(list, x, no)
				buckets[i] = append(buckets[i], mb)
				x, no, ok = minFreqExtension(mb.cs, key, freqI, freqS, x, no, true)
			}
		}
	}
	const chunkMin = 256 // below this, chunking overhead beats the win
	if len(members) < chunkMin || e.sched == nil {
		buckets := make([][]*member, len(list))
		// Inline on the submitting goroutine: a panic here is contained
		// by the enclosing Contain of the worker (or of run itself).
		assign(members, buckets)
		return buckets, nil
	}
	chunks := e.sched.workers
	if max := len(members) / chunkMin; chunks > max {
		chunks = max
	}
	per := (len(members) + chunks - 1) / chunks
	parts := make([][][]*member, chunks)
	errs := make([]error, chunks)
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		c := c
		lo := c * per
		hi := lo + per
		if hi > len(members) {
			hi = len(members)
		}
		part := make([][]*member, len(list))
		parts[c] = part
		e.sched.do(&wg, func() {
			errs[c] = mining.Contain(site(key), func() error {
				assign(members[lo:hi], part)
				return nil
			})
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	buckets := parts[0]
	for c := 1; c < chunks; c++ {
		for i := range buckets {
			buckets[i] = append(buckets[i], parts[c][i]...)
		}
	}
	return buckets, nil
}

// findExtension locates the extension pair (x, no) in the ascending
// frequent extension list. All entries share the same prefix, so the
// comparative order reduces to ComparePair on the last pair.
//
// A pair outside the list violates the closure invariant the scheduler
// is built on — a bug, reported by panicking. The panic is contained by
// the mining.Contain wrapper every execution path runs under (worker
// closures and the root walk), so it surfaces from Mine as an
// *mining.InvariantError carrying this message and the stack instead of
// crashing the process from a worker goroutine.
func findExtension(list []seq.Pattern, x seq.Item, no int32) int {
	i := sort.Search(len(list), func(i int) bool {
		return seq.ComparePair(list[i].LastItem(), list[i].LastTNo(), x, no) >= 0
	})
	if i == len(list) || list[i].LastItem() != x || list[i].LastTNo() != no {
		panic("core: extension chain produced a pair outside the frequent list")
	}
	return i
}
