// Observability threading of the engine. The contract with internal/obs:
// recording sites inside the mining recursion never talk to the registry —
// hot substrate counters (AVL rotations, counting-array dedup hits)
// accumulate into local nil-safe recorders and per-partition counters
// accumulate into the same Stats the merge machinery already carries;
// flushObs folds everything into registry instruments once per run. The
// registry is therefore a read-through of Stats: LastStats and /metrics
// are computed from one accumulation and cannot disagree.
package core

import (
	"errors"
	"fmt"

	"github.com/disc-mining/disc/internal/avl"
	"github.com/disc-mining/disc/internal/counting"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/obs"
)

// spanLevels caps the partition levels that open tracing spans: levels 0
// through 2 are where the fan-out and the paper's partitioning decisions
// live; deeper recursion is far too frequent to time individually.
const spanLevels = 2

// initObs prepares the run's recorders. With no observer attached every
// recording site below costs a nil check and nothing else.
func (e *engine) initObs() {
	if e.opts.Obs == nil {
		return
	}
	e.obs = e.opts.Obs
	e.avlRec = &avl.Recorder{}
	e.cntRec = &counting.Recorder{}
}

// flushObs folds the run's merged statistics and substrate recorders into
// the observer's registry. Called once per run, success or failure —
// an interrupted run still reports the work that finished.
func (e *engine) flushObs(runErr error) {
	if e.obs == nil {
		return
	}
	r := e.obs.Registry
	if r == nil {
		return
	}
	s := &e.stats
	r.Counter("disc_mine_runs_total", "Completed engine runs (including failed ones).").Inc()
	r.Counter("disc_rounds_total", "DISC rounds: alpha_1 vs alpha_delta comparisons (Lemma 2.1/2.2 decisions).").Add(int64(s.Rounds))
	r.Counter("disc_frequent_hits_total", "DISC rounds where alpha_1 = alpha_delta: a frequent sequence taken with bucket-size support (Lemma 2.1).").Add(int64(s.FrequentHits))
	r.Counter("disc_skips_total", "DISC rounds where alpha_1 < alpha_delta: the whole range [alpha_1, alpha_delta) skipped without support counting (Lemma 2.2).").Add(int64(s.Skips))
	r.Counter("disc_kms_calls_total", "k-minimum subsequence generations.").Add(int64(s.KMSCalls))
	r.Counter("disc_ckms_calls_total", "Conditional k-minimum subsequence generations.").Add(int64(s.CKMSCalls))
	r.Counter("disc_dropped_customers_total", "Customers dropped from k-sorted databases for lack of a conditional k-minimum subsequence.").Add(int64(s.Dropped))
	for level, n := range s.PartitionsByLevel {
		r.Counter("disc_partitions_total", "Processed (frequent) partitions by level.",
			obs.Label{Key: "level", Value: fmt.Sprint(level)}).Add(int64(n))
	}
	if s.Degraded {
		r.Counter("disc_degraded_runs_total", "Runs that crossed a resource-budget degradation threshold.").Inc()
	}
	var be *mining.BudgetError
	if errors.As(runErr, &be) {
		r.Counter("disc_budget_breaches_total", "Runs stopped by an exhausted resource budget, by resource.",
			obs.Label{Key: "resource", Value: be.Resource}).Inc()
	}
	r.Counter("disc_arena_acquires_total", "Scratch-arena bundles drawn by the run's engines.").Add(int64(s.ArenaAcquires))
	r.Counter("disc_arena_reuses_total", "Arena draws satisfied by a warm pooled bundle (zero-allocation reuse).").Add(int64(s.ArenaReuses))
	r.Counter("disc_avl_rotations_total", "AVL rotations across the run's k-sorted database trees.").Add(e.avlRec.Rotations.Load())
	r.Counter("disc_avl_slab_grows_total", "Locative-tree slab reallocations (cold growth; warm rounds perform none).").Add(e.avlRec.SlabGrows.Load())
	r.Counter("disc_counting_dedup_hits_total", "Counting-array touches suppressed by the last-customer-id check (Figure 3 dedup).").Add(e.cntRec.DedupHits.Load())
}

// span opens a tracing span for a partition level, or a zero no-op span
// when tracing is off or the level is below the fan-out. The span is
// parented to the engine's innermost open span, so a bound trace sees
// the partition hierarchy.
func (e *engine) span(stage string, level int) obs.Span {
	if e.obs == nil || level > spanLevels {
		return obs.Span{}
	}
	return e.obs.SpanUnder(e.cur, fmt.Sprintf("%s_l%d", stage, level))
}
