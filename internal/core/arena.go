// Round arenas of the DISC-all engine. Every per-round and per-partition
// scratch structure — counting arrays, split trees, the k-sorted database
// tree, extension flag tables, k-minimum buffers — lives in one scratch
// bundle owned by an engine. A serial run keeps one bundle for its whole
// lifetime; a parallel run draws bundles from a sync.Pool shared by the
// engine tree, so live scratch memory stays proportional to workers ×
// depth while steady-state rounds allocate nothing: trees reset by slab
// rewind, counting arrays by epoch stamping, flag tables by memclr, item
// buffers by re-slicing to length zero.
//
// Aliasing rules (all proven by the -race hammer in arena_test.go):
//
//   - A bundle belongs to exactly one engine at a time; engines of a
//     parallel run never share one (children draw their own).
//   - Split trees and flag tables are per recursion level: the split at
//     level L holds its tree and flags across the deeper recursion, which
//     only touches level L+1 structures. reduceMembers gets a dedicated
//     flag pair because it runs at level 1 while the level-0 split's
//     flags are live and before the level-1 split fills its own.
//   - One DISC tree suffices per bundle: discLoop is a leaf of the
//     partition recursion (discover never re-enters processPartition).
//   - eagerBuckets chunk goroutines read the submitting engine's flag
//     tables concurrently but strictly read-only, bounded by the wg.Wait
//     in the same call.
package core

import (
	"sync"

	"github.com/disc-mining/disc/internal/avl"
	"github.com/disc-mining/disc/internal/counting"
	"github.com/disc-mining/disc/internal/seq"
)

// boolTable is a pair of per-item flag tables (i-form / s-form), the
// lookup structure minFreqExtension reads.
type boolTable struct {
	freqI, freqS []bool
}

// scratch is one engine's arena bundle. All fields are lazily grown and
// retained across partitions and rounds; nothing in it escapes into the
// mined result.
type scratch struct {
	maxItem seq.Item
	pointer bool
	avlRec  *avl.Recorder
	cntRec  *counting.Recorder

	arrays     []*counting.Array                     // per-depth counting arrays
	splitTrees []avl.Interface[seq.Pattern, *member] // per-level split trees
	disc       avl.Interface[seq.Pattern, discEntry] // the k-sorted database tree
	flags      []boolTable                           // per-level extension flags
	redFlags   boolTable                             // reduceMembers' dedicated pair
	seen       []bool                                // level-0 DistinctItems bitmap
	itemBuf    []seq.Item                            // DistinctItems output buffer
	fi, fs     []seq.Item                            // FrequentI/FrequentS output buffers
	membersBuf []*member                             // discLoop's mutable member copy
	sets       []seq.Itemset                         // reduceMembers per-customer itemset headers
	redBuf     []seq.Item                            // reduceMembers flat surviving-item storage
}

func newScratch(maxItem seq.Item, pointer bool, avlRec *avl.Recorder, cntRec *counting.Recorder) *scratch {
	return &scratch{maxItem: maxItem, pointer: pointer, avlRec: avlRec, cntRec: cntRec}
}

// array returns the reset counting array for one recursion depth.
func (s *scratch) array(depth int) *counting.Array {
	for len(s.arrays) <= depth {
		s.arrays = append(s.arrays, nil)
	}
	a := s.arrays[depth]
	if a == nil {
		a = counting.New(s.maxItem).Observe(s.cntRec)
		s.arrays[depth] = a
	}
	a.Reset()
	return a
}

// splitTree returns the reset split tree for one recursion level.
func (s *scratch) splitTree(level int) avl.Interface[seq.Pattern, *member] {
	for len(s.splitTrees) <= level {
		s.splitTrees = append(s.splitTrees, nil)
	}
	t := s.splitTrees[level]
	if t == nil {
		t = newTree[*member](s.pointer, s.avlRec)
		s.splitTrees[level] = t
	}
	t.Reset()
	return t
}

// discTree returns the reset k-sorted database tree.
func (s *scratch) discTree() avl.Interface[seq.Pattern, discEntry] {
	if s.disc == nil {
		s.disc = newTree[discEntry](s.pointer, s.avlRec)
	}
	s.disc.Reset()
	return s.disc
}

// newTree builds one locative tree: the slab implementation by default,
// the seed pointer implementation under Options.PointerTree.
func newTree[V any](pointer bool, rec *avl.Recorder) avl.Interface[seq.Pattern, V] {
	if pointer {
		return avl.NewPointer[seq.Pattern, V](seq.Compare).Observe(rec)
	}
	return avl.New[seq.Pattern, V](seq.Compare).Observe(rec)
}

// levelFlags returns the cleared flag pair for one recursion level.
func (s *scratch) levelFlags(level int) (freqI, freqS []bool) {
	for len(s.flags) <= level {
		s.flags = append(s.flags, boolTable{})
	}
	return s.flags[level].cleared(s.maxItem)
}

// reduceFlags returns the cleared flag pair reserved for reduceMembers.
func (s *scratch) reduceFlags() (freqI, freqS []bool) {
	return s.redFlags.cleared(s.maxItem)
}

func (t *boolTable) cleared(maxItem seq.Item) (freqI, freqS []bool) {
	if len(t.freqI) < int(maxItem)+1 {
		t.freqI = make([]bool, maxItem+1)
		t.freqS = make([]bool, maxItem+1)
	} else {
		clear(t.freqI)
		clear(t.freqS)
	}
	return t.freqI, t.freqS
}

// seenBitmap returns the cleared level-0 distinct-items bitmap.
func (s *scratch) seenBitmap() []bool {
	if len(s.seen) < int(s.maxItem)+1 {
		s.seen = make([]bool, s.maxItem+1)
	}
	// DistinctItems leaves the bitmap clean (it unsets what it set), so no
	// clear here; newly grown bitmaps start zeroed.
	return s.seen
}

// release drops round-local references (pattern keys in trees, member
// pointers in buffers) while keeping every slab and capacity, so a pooled
// bundle neither leaks the previous partition's data nor re-allocates.
func (s *scratch) release() {
	for _, t := range s.splitTrees {
		if t != nil {
			t.Reset()
		}
	}
	if s.disc != nil {
		s.disc.Reset()
	}
	clear(s.membersBuf)
	s.membersBuf = s.membersBuf[:0]
	clear(s.sets)
	s.sets = s.sets[:0]
}

// MemBytes reports the bundle's total slab footprint: exact for the slab
// trees and counting arrays, estimated for the pointer-tree fallback. The
// budget accounting reads it at partition boundaries.
func (s *scratch) MemBytes() int64 {
	var total int64
	for _, a := range s.arrays {
		if a != nil {
			total += a.MemBytes()
		}
	}
	for _, t := range s.splitTrees {
		if t != nil {
			total += t.MemBytes()
		}
	}
	if s.disc != nil {
		total += s.disc.MemBytes()
	}
	perFlag := int64(len(s.seen))
	for _, f := range s.flags {
		perFlag += int64(cap(f.freqI) + cap(f.freqS))
	}
	perFlag += int64(cap(s.redFlags.freqI) + cap(s.redFlags.freqS))
	total += perFlag
	total += int64(cap(s.itemBuf)+cap(s.fi)+cap(s.fs)+cap(s.redBuf)) * 4
	total += int64(cap(s.membersBuf)) * 8
	total += int64(cap(s.sets)) * 24
	return total
}

// scratchPool shares arena bundles across the partition workers of one
// run. All bundles of a pool share the run-wide recorders and tree
// implementation, so a recycled bundle is indistinguishable from a fresh
// one apart from its warm slabs.
type scratchPool struct {
	maxItem seq.Item
	pointer bool
	avlRec  *avl.Recorder
	cntRec  *counting.Recorder
	p       sync.Pool
}

// get draws a bundle; reused reports whether it came back warm from a
// finished worker (an arena reuse, counted in Stats).
func (sp *scratchPool) get() (s *scratch, reused bool) {
	if s, ok := sp.p.Get().(*scratch); ok {
		return s, true
	}
	return newScratch(sp.maxItem, sp.pointer, sp.avlRec, sp.cntRec), false
}

func (sp *scratchPool) put(s *scratch) {
	s.release()
	sp.p.Put(s)
}

// scratch returns the engine's arena bundle, drawing one lazily from the
// run's pool (parallel) or building a private one (serial).
func (e *engine) scratch() *scratch {
	if e.scr == nil {
		e.stats.ArenaAcquires++
		if e.pool != nil {
			var reused bool
			e.scr, reused = e.pool.get()
			if reused {
				e.stats.ArenaReuses++
			}
		} else {
			e.scr = newScratch(e.maxItem, e.opts.PointerTree, e.avlRec, e.cntRec)
		}
	}
	return e.scr
}

// releaseScratch returns the engine's bundle to the run's pool (or to the
// garbage collector for a serial run). Called when a partition worker
// finishes and at the end of the run.
func (e *engine) releaseScratch() {
	if e.scr == nil {
		return
	}
	if e.pool != nil {
		e.pool.put(e.scr)
	}
	e.scr = nil
}

// scratchBytes is the nil-safe footprint read for the budget sampler.
func (e *engine) scratchBytes() int64 {
	if e.scr == nil {
		return 0
	}
	return e.scr.MemBytes()
}
