package core

import (
	"math/rand"
	"os"
	"testing"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/obs"
	"github.com/disc-mining/disc/internal/testutil"
)

// benchDB builds one fixed database for the instrumentation benchmarks.
func benchDB() mining.Database {
	return testutil.SkewedRandomDB(rand.New(rand.NewSource(77)), 400, 14, 8, 5)
}

func mineOnce(b testing.TB, db mining.Database, o *obs.Observer) {
	m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Obs: o}}
	if _, err := m.Mine(db, 4); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMine is the no-recorder configuration: Options.Obs is nil, so
// every instrumentation site in the hot path reduces to a nil check.
// This is the baseline the overhead guard holds BenchmarkMineInstrumented
// against.
func BenchmarkMine(b *testing.B) {
	db := benchDB()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mineOnce(b, db, nil)
	}
}

// BenchmarkMineInstrumented mines the same database with a full observer
// attached: live AVL/counting recorders, partition spans, and the
// end-of-run registry flush.
func BenchmarkMineInstrumented(b *testing.B) {
	db := benchDB()
	o := obs.NewObserver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mineOnce(b, db, o)
	}
}

// TestInstrumentationOverheadGuard is the CI benchmark guard: mining with
// the full observer attached must stay within 2% of the no-recorder
// baseline, which bounds the nil-check cost from above (the nil path
// does strictly less). Each side takes the best of three measurements to
// damp scheduler noise; opt-in via DISC_BENCH_GUARD=1 because it runs
// real benchmarks.
func TestInstrumentationOverheadGuard(t *testing.T) {
	if os.Getenv("DISC_BENCH_GUARD") == "" {
		t.Skip("set DISC_BENCH_GUARD=1 to run the instrumentation overhead guard")
	}
	db := benchDB()
	o := obs.NewObserver()
	best := func(f func(b *testing.B)) float64 {
		min := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(f)
			ns := float64(r.NsPerOp())
			if min == 0 || ns < min {
				min = ns
			}
		}
		return min
	}
	base := best(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mineOnce(b, db, nil)
		}
	})
	instr := best(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mineOnce(b, db, o)
		}
	})
	overhead := instr/base - 1
	t.Logf("baseline %.0f ns/op, instrumented %.0f ns/op, overhead %+.2f%%", base, instr, overhead*100)
	if overhead > 0.02 {
		t.Fatalf("instrumentation overhead %.2f%% exceeds the 2%% budget", overhead*100)
	}
}
