package core

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/obs"
	"github.com/disc-mining/disc/internal/testutil"
)

// benchDB builds one fixed database for the instrumentation benchmarks.
func benchDB() mining.Database {
	return testutil.SkewedRandomDB(rand.New(rand.NewSource(77)), 400, 14, 8, 5)
}

func mineOnce(b testing.TB, db mining.Database, o *obs.Observer) {
	m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Obs: o}}
	if _, err := m.Mine(db, 4); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMine is the no-recorder configuration: Options.Obs is nil, so
// every instrumentation site in the hot path reduces to a nil check.
// This is the baseline the overhead guard holds BenchmarkMineInstrumented
// against.
func BenchmarkMine(b *testing.B) {
	db := benchDB()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mineOnce(b, db, nil)
	}
}

// BenchmarkMineInstrumented mines the same database with a full observer
// attached: live AVL/counting recorders, partition spans, and the
// end-of-run registry flush.
func BenchmarkMineInstrumented(b *testing.B) {
	db := benchDB()
	o := obs.NewObserver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mineOnce(b, db, o)
	}
}

// tracedObserver binds a fresh per-run trace context (the per-job shape:
// its own ID, a bounded flight recorder) to the shared observer — the
// configuration a traced discserve job mines under.
func tracedObserver(o *obs.Observer, src *obs.IDSource) *obs.Observer {
	tc := obs.NewTraceContext(src.TraceID(), "bench", src, obs.NewRecorder(0))
	return o.WithTrace(tc, 0)
}

// BenchmarkMineTraced adds the tracing layer on top of the instrumented
// configuration: every span mints IDs and lands start/end records in
// the trace's flight recorder, exactly like a job mined with tracing on.
func BenchmarkMineTraced(b *testing.B) {
	db := benchDB()
	o := obs.NewObserver()
	src := obs.NewIDSource(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mineOnce(b, db, tracedObserver(o, src))
	}
}

// guardPct reads a percentage threshold from the environment, falling
// back to def when the variable is unset or malformed.
func guardPct(t *testing.T, name string, def float64) float64 {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	pct, err := strconv.ParseFloat(v, 64)
	if err != nil {
		t.Fatalf("%s=%q: %v", name, v, err)
	}
	return pct
}

// TestInstrumentationOverheadGuard is the CI benchmark guard: mining with
// the full observer attached must stay within the ns/op budget of the
// no-recorder baseline — which bounds the nil-check cost from above (the
// nil path does strictly less) — and within the allocs/op budget, so an
// instrumentation change that starts allocating per partition or per
// round fails even when the clock noise hides it. Timing takes the best
// of three measurements to damp scheduler noise; allocs/op is
// deterministic, so the single largest measurement is held to the bar.
// Budgets default to 2% each and are tunable via
// DISC_BENCH_GUARD_MAX_NS_PCT / DISC_BENCH_GUARD_MAX_ALLOCS_PCT; opt-in
// via DISC_BENCH_GUARD=1 because it runs real benchmarks.
func TestInstrumentationOverheadGuard(t *testing.T) {
	if os.Getenv("DISC_BENCH_GUARD") == "" {
		t.Skip("set DISC_BENCH_GUARD=1 to run the instrumentation overhead guard")
	}
	maxNsPct := guardPct(t, "DISC_BENCH_GUARD_MAX_NS_PCT", 2)
	maxAllocsPct := guardPct(t, "DISC_BENCH_GUARD_MAX_ALLOCS_PCT", 2)
	// The guard mines a smaller database than the named benchmarks: a
	// sub-second op lets testing.Benchmark average tens of iterations per
	// measurement, which is what keeps a 2% budget decidable on noisy CI
	// machines (a 2 s op yields N=1 and single-sample jitter swamps the
	// signal). Relative instrumentation overhead is slightly *higher* on
	// the smaller database — more partitions per unit of mining work — so
	// the bar is conservative, not lenient.
	db := testutil.SkewedRandomDB(rand.New(rand.NewSource(77)), 150, 12, 6, 4)
	o := obs.NewObserver()
	best := func(f func(b *testing.B)) (minNs float64, maxAllocs int64) {
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(f)
			if ns := float64(r.NsPerOp()); minNs == 0 || ns < minNs {
				minNs = ns
			}
			if a := r.AllocsPerOp(); a > maxAllocs {
				maxAllocs = a
			}
		}
		return minNs, maxAllocs
	}
	base, baseAllocs := best(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mineOnce(b, db, nil)
		}
	})
	instr, instrAllocs := best(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mineOnce(b, db, o)
		}
	})
	src := obs.NewIDSource(1)
	traced, tracedAllocs := best(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mineOnce(b, db, tracedObserver(o, src))
		}
	})
	check := func(what string, ns float64, allocs int64) {
		overhead := ns/base - 1
		allocOverhead := float64(allocs)/float64(baseAllocs) - 1
		t.Logf("baseline %.0f ns/op %d allocs/op, %s %.0f ns/op %d allocs/op, overhead %+.2f%% ns %+.2f%% allocs",
			base, baseAllocs, what, ns, allocs, overhead*100, allocOverhead*100)
		if overhead > maxNsPct/100 {
			t.Errorf("%s ns/op overhead %.2f%% exceeds the %.2g%% budget", what, overhead*100, maxNsPct)
		}
		if allocOverhead > maxAllocsPct/100 {
			t.Errorf("%s allocs/op overhead %.2f%% exceeds the %.2g%% budget", what, allocOverhead*100, maxAllocsPct)
		}
	}
	check("instrumented", instr, instrAllocs)
	check("traced", traced, tracedAllocs)
}
