// Shard-scoped mining: the cluster entry point into the engine. A shard
// run mines only the first-level partitions assigned to it, recording
// them through the ordinary Checkpointer machinery; the union of all
// shards' recorded partitions is exactly the set a local run records, so
// a coordinator that folds every shard's checkpoint into one file and
// finishes with ResumeFrom obtains a byte-identical result (the same
// ascending-key merge that makes resume byte-identical).
package core

import (
	"fmt"
	"hash/fnv"
	"io"

	"github.com/disc-mining/disc/internal/seq"
)

// ShardSpec restricts a run to one shard of the first-level partition
// space: the partitions p with ShardOf(p, Count) == Index. Everything
// outside the shard is skipped after the level-0 scan (the frequent
// 1-sequences are still discovered — they define the partition space and
// must be identical on every shard).
type ShardSpec struct {
	Index int // which shard this run mines, in [0, Count)
	Count int // total shards the partition space is divided into
}

// Validate rejects specs the engine cannot honor.
func (s *ShardSpec) Validate() error {
	if s == nil {
		return nil
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("core: invalid shard %d of %d", s.Index, s.Count)
	}
	return nil
}

// ShardOf assigns a first-level partition key to a shard by hashing the
// key's canonical encoding. Coordinator and workers agree on the
// assignment without exchanging the partition list — the hash depends
// only on the key — and the assignment is stable across runs, so a
// rescheduled shard resumes exactly the partitions it was mining.
func ShardOf(key seq.Pattern, count int) int {
	if count <= 1 {
		return 0
	}
	h := fnv.New64a()
	io.WriteString(h, key.Key())
	return int(h.Sum64() % uint64(count))
}
