// Resilience layer of the DISC-all engine: checkpoint/resume of
// first-level partitions and the soft resource budgets with their
// degradation ladder. Panic containment lives at the goroutine
// boundaries in parallel.go and run (core.go); the deterministic
// fault-injection points are in processPartition.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// Checkpointer carries completed first-level partition results across
// runs of one mining job. Attached to Options.Checkpoint it makes the
// engine (1) record each first-level partition's result set and
// statistics as the partition completes, and (2) skip — restoring the
// recorded outcome instead — every partition a previous interrupted run
// already completed. Because partitions merge in ascending key order
// whether mined or restored, a resumed run produces a result set
// byte-identical to an uninterrupted one.
//
// A Checkpointer is safe for concurrent use: workers record into it
// while a snapshot (Snapshot/File) may be taken from another goroutine,
// e.g. on a periodic checkpoint interval.
type Checkpointer struct {
	mu        sync.Mutex
	restored  map[string]checkpoint.Partition // partition key -> prior result
	completed []checkpoint.Partition          // this run's completed partitions, in completion order
	reused    int                             // restored partitions consumed by this run
}

// NewCheckpointer returns an empty checkpointer (a fresh, resumable
// run).
func NewCheckpointer() *Checkpointer {
	return &Checkpointer{restored: map[string]checkpoint.Partition{}}
}

// ResumeFrom returns a checkpointer seeded with the completed partitions
// of a decoded checkpoint: the next run skips them.
func ResumeFrom(f *checkpoint.File) *Checkpointer {
	c := NewCheckpointer()
	for _, p := range f.Partitions {
		c.restored[p.Key.Key()] = p
	}
	return c
}

// restore hands back the stored outcome of a first-level partition, if a
// prior run completed it. A consumed partition counts as completed for
// the current run too, so a resumed-then-interrupted run writes a
// checkpoint covering both runs' work.
func (c *Checkpointer) restore(key seq.Pattern) (checkpoint.Partition, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.restored[key.Key()]
	if ok {
		c.reused++
		c.completed = append(c.completed, p)
	}
	return p, ok
}

// record snapshots one freshly completed first-level partition.
func (c *Checkpointer) record(key seq.Pattern, res *mining.Result, stats *Stats) {
	p := checkpoint.Partition{
		Key:      key,
		Patterns: res.Sorted(),
		Stats:    statsToCheckpoint(stats),
	}
	c.mu.Lock()
	c.completed = append(c.completed, p)
	c.mu.Unlock()
}

// RecordPartition folds an externally completed first-level partition —
// one a cluster worker mined and shipped back in its shard checkpoint —
// into this checkpointer, as if the local run had completed it. The
// coordinator records received partitions here so the job's ordinary
// periodic snapshots persist cluster progress too.
func (c *Checkpointer) RecordPartition(p checkpoint.Partition) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.completed = append(c.completed, p)
}

// RestoredPartitions returns the partitions this checkpointer was seeded
// with (ResumeFrom), sorted by key. The coordinator uses it to pre-seed
// shard accumulators, so a restarted clustered job does not re-dispatch
// work a previous incarnation already collected.
func (c *Checkpointer) RestoredPartitions() []checkpoint.Partition {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]checkpoint.Partition, 0, len(c.restored))
	for _, p := range c.restored {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Key() < out[j].Key.Key() })
	return out
}

// Completed returns how many first-level partitions the current run has
// finished (mined or restored).
func (c *Checkpointer) Completed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.completed)
}

// Restored returns how many partitions the current run skipped by
// restoring a prior run's results.
func (c *Checkpointer) Restored() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reused
}

// File snapshots the completed partitions into an encodable checkpoint
// for the given job identity. Safe to call while the run is still in
// flight (periodic checkpointing) — it captures whatever has completed
// so far.
func (c *Checkpointer) File(algo string, minSup int, fingerprint uint64) *checkpoint.File {
	c.mu.Lock()
	parts := append([]checkpoint.Partition(nil), c.completed...)
	c.mu.Unlock()
	return &checkpoint.File{Algo: algo, Fingerprint: fingerprint, MinSup: minSup, Partitions: parts}
}

// CheckpointFingerprint binds a checkpoint to a mining job: the
// algorithm, the options that shape the first-level partition
// decomposition and the recorded statistics (BiLevel, Levels, Gamma —
// Workers is excluded, results and partitions are identical at every
// worker count), δ and the database content.
func CheckpointFingerprint(algo string, o Options, minSup int, db mining.Database) uint64 {
	sig := fmt.Sprintf("bilevel=%t levels=%d gamma=%g", o.BiLevel, o.Levels, o.Gamma)
	return checkpoint.Fingerprint(algo, sig, minSup, db)
}

// statsToCheckpoint projects a partition worker's statistics into the
// serializable checkpoint form.
func statsToCheckpoint(s *Stats) checkpoint.PartitionStats {
	return checkpoint.PartitionStats{
		Rounds: s.Rounds, FrequentHits: s.FrequentHits, Skips: s.Skips,
		KMSCalls: s.KMSCalls, CKMSCalls: s.CKMSCalls, Dropped: s.Dropped,
		PartitionsByLevel: append([]int(nil), s.PartitionsByLevel...),
		NRRByLevel:        append([]float64(nil), s.NRRByLevel...),
		NRRCount:          append([]int(nil), s.nrrCount...),
	}
}

// statsFromCheckpoint is the inverse projection; restored statistics
// merge exactly as the live partition's would have (NRR counts are
// preserved, so the weighted means combine bit-identically).
func statsFromCheckpoint(p *checkpoint.PartitionStats) Stats {
	return Stats{
		Rounds: p.Rounds, FrequentHits: p.FrequentHits, Skips: p.Skips,
		KMSCalls: p.KMSCalls, CKMSCalls: p.CKMSCalls, Dropped: p.Dropped,
		PartitionsByLevel: append([]int(nil), p.PartitionsByLevel...),
		NRRByLevel:        append([]float64(nil), p.NRRByLevel...),
		nrrCount:          append([]int(nil), p.NRRCount...),
	}
}

// budgetState tracks the run's soft resource budgets. It is shared
// across the engine tree; recording sites (pattern additions, heap
// samples) flip it to degraded or breached, and the engine's control
// points (partition entries, DISC round loops) observe the breach and
// stop. A nil *budgetState (no budgets configured) costs one pointer
// check everywhere.
type budgetState struct {
	maxPatterns int64
	maxMem      int64
	patterns    atomic.Int64
	memTick     atomic.Int64
	degraded    atomic.Bool
	breach      atomic.Pointer[mining.BudgetError]
}

// newBudgetState returns nil when no budget is configured.
func newBudgetState(o Options) *budgetState {
	if o.MaxPatterns <= 0 && o.MaxMemBytes <= 0 {
		return nil
	}
	return &budgetState{maxPatterns: int64(o.MaxPatterns), maxMem: o.MaxMemBytes}
}

// err returns the budget breach that stops the run, if one happened.
func (b *budgetState) err() error {
	if b == nil {
		return nil
	}
	if e := b.breach.Load(); e != nil {
		return e
	}
	return nil
}

// isDegraded reports whether the degradation ladder has been entered.
func (b *budgetState) isDegraded() bool {
	return b != nil && b.degraded.Load()
}

// notePatterns records n newly discovered frequent patterns: past
// BudgetDegradeFraction of the pattern budget the run degrades, past the
// budget itself it is marked breached (the next control point stops).
func (b *budgetState) notePatterns(n int) {
	if b == nil || b.maxPatterns <= 0 {
		return
	}
	total := b.patterns.Add(int64(n))
	if total > b.maxPatterns {
		b.breach.CompareAndSwap(nil, &mining.BudgetError{
			Resource: "patterns", Limit: b.maxPatterns, Used: total,
		})
		return
	}
	if float64(total) >= mining.BudgetDegradeFraction*float64(b.maxPatterns) {
		b.degraded.Store(true)
	}
}

// sampleMem samples memory against the budget at a partition boundary.
// Two signals feed it: scratchBytes, the calling engine's exact arena
// slab footprint (O(1) to read, so it is checked on every call — the
// degrade path sees the allocator's own accounting even between heap
// samples), and the global heap, whose ReadMemStats briefly stops the
// world and therefore runs only one call in 32.
func (b *budgetState) sampleMem(scratchBytes int64) {
	if b == nil || b.maxMem <= 0 {
		return
	}
	if scratchBytes > b.maxMem {
		b.breach.CompareAndSwap(nil, &mining.BudgetError{
			Resource: "memory", Limit: b.maxMem, Used: scratchBytes,
		})
		return
	}
	if float64(scratchBytes) >= mining.BudgetDegradeFraction*float64(b.maxMem) {
		b.degraded.Store(true)
	}
	if b.memTick.Add(1)&31 != 1 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	used := int64(ms.HeapAlloc)
	if used > b.maxMem {
		b.breach.CompareAndSwap(nil, &mining.BudgetError{
			Resource: "memory", Limit: b.maxMem, Used: used,
		})
		return
	}
	if float64(used) >= mining.BudgetDegradeFraction*float64(b.maxMem) {
		b.degraded.Store(true)
	}
}
