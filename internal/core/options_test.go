package core

import (
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

// TestExplicitZeroLevels: Levels = 0 now means "no partitioning" (pure
// DISC), exactly like a negative value — it is no longer silently coerced
// to the two-level default. Defaults come only from New/DefaultOptions.
func TestExplicitZeroLevels(t *testing.T) {
	db := testutil.Table6()
	ref, err := New().Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}

	m := &Miner{Opts: Options{BiLevel: true, Levels: 0}}
	res, err := m.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Diff(res); diff != "" {
		t.Fatalf("Levels=0 changes the result set:\n%s", diff)
	}
	// Pure DISC processes exactly one partition: the root database.
	if got := m.LastStats().PartitionsByLevel; len(got) != 1 || got[0] != 1 {
		t.Errorf("Levels=0 PartitionsByLevel = %v, want [1]", got)
	}

	// The default miner really does partition (two levels), so the zero
	// setting is observably different behaviour, not a silent default.
	def := New()
	if def.Opts.Levels != 2 {
		t.Fatalf("New() Levels = %d, want 2", def.Opts.Levels)
	}
	if _, err := def.Mine(db, 3); err != nil {
		t.Fatal(err)
	}
	if got := def.LastStats().PartitionsByLevel; len(got) < 2 || got[1] == 0 {
		t.Errorf("default PartitionsByLevel = %v, want level-1 partitions", got)
	}
}

// TestExplicitZeroGamma: γ = 0 means "switch to DISC immediately" — every
// partition's NRR is at least 0, so the dynamic policy never partitions.
// Previously Gamma <= 0 was coerced to 0.5, making γ=0 unrepresentable.
func TestExplicitZeroGamma(t *testing.T) {
	db := testutil.Table6()
	ref, err := bruteforce.Exhaustive{}.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}

	d := &Dynamic{Opts: Options{BiLevel: true, Gamma: 0}}
	res, err := d.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Diff(res); diff != "" {
		t.Fatalf("Gamma=0 changes the result set:\n%s", diff)
	}
	if got := d.LastStats().PartitionsByLevel; len(got) != 1 || got[0] != 1 {
		t.Errorf("Gamma=0 PartitionsByLevel = %v, want [1] (DISC from the root)", got)
	}

	// γ ≥ 1 keeps partitioning while productive; on this data that means
	// going past the root.
	deep := &Dynamic{Opts: Options{BiLevel: true, Gamma: 1.5}}
	res, err = deep.Mine(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Diff(res); diff != "" {
		t.Fatalf("Gamma=1.5 changes the result set:\n%s", diff)
	}
	if got := deep.LastStats().PartitionsByLevel; len(got) < 2 || got[1] == 0 {
		t.Errorf("Gamma=1.5 PartitionsByLevel = %v, want level-1 partitions", got)
	}

	// NewDynamic still carries the paper's default.
	if g := NewDynamic().Opts.Gamma; g != 0.5 {
		t.Errorf("NewDynamic() Gamma = %v, want 0.5", g)
	}
}

// malformedDB builds a database whose third customer violates canonical
// form: its backing item slice (exposed by Items for read-only scanning)
// is mutated to hold an unsorted transaction, so partition assignment sees
// item 1 but the sorted-itemset lookups of the reduction step do not.
func malformedDB() mining.Database {
	bad := seq.NewCustomerSeq(3, seq.Itemset{1, 2, 3})
	items := bad.Items()
	items[0], items[2] = items[2], items[0] // transaction now reads (3 2 1)
	return mining.Database{
		seq.MustParseCustomerSeq(1, "(1)(2)"),
		seq.MustParseCustomerSeq(2, "(1)(2)"),
		bad,
	}
}

// TestMalformedDatabaseSurfacesError: a database breaking the canonical
// itemset invariant must make Mine return an error instead of panicking
// from (possibly) a parallel worker goroutine.
func TestMalformedDatabaseSurfacesError(t *testing.T) {
	for _, m := range []mining.Miner{
		&Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: 1}},
		&Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: 4}},
		// γ high enough that the dynamic policy partitions this database
		// (its root NRR is 1.0) and reaches the reduction step.
		&Dynamic{Opts: Options{BiLevel: true, Gamma: 1.5, Workers: 4}},
	} {
		_, err := m.Mine(malformedDB(), 2)
		if err == nil {
			t.Fatalf("%T: malformed database must error", m)
		}
		if !strings.Contains(err.Error(), "malformed database") {
			t.Errorf("%T: error %q does not identify the malformed database", m, err)
		}
	}
}
