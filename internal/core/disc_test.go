package core

import (
	"testing"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
)

// TestDiscoverGoldenTables8to10 drives the frequent k-sequence discovery
// procedure (Figure 4) directly over the paper's <(a)(a)>-partition
// (Tables 8-10, δ=3): the customers are the reduced sequences of Table 7
// and the 3-sorted list is {<(a)(a,e)>, <(a)(a,g)>, <(a)(a,h)>}. The
// procedure must find every frequent 4-sequence with a prefix in that
// list, and — via the bi-level counting of Example 3.5 / Figure 7 —
// exactly one frequent 5-sequence, <(a)(a,e,g,h)>, with support 3.
func TestDiscoverGoldenTables8to10(t *testing.T) {
	partition := []string{
		"(a)(a, g, h)(c)",                // CID 1
		"(b)(a)(a, c, e, g)",             // CID 2
		"(a, f, g)(a, e, g, h)(c, g, h)", // CID 3
		"(f)(a, f)(a, c, e, g, h)",       // CID 4
		"(a, f)(a, e, g, h)",             // CID 6
		"(a, g)(a, e, g)(g, h)",          // CID 7
	}
	cids := []int{1, 2, 3, 4, 6, 7}
	var members []*member
	for i, body := range partition {
		members = append(members, &member{cs: seq.MustParseCustomerSeq(cids[i], body)})
	}
	list3 := []seq.Pattern{
		seq.MustParsePattern("(a)(a, e)"),
		seq.MustParsePattern("(a)(a, g)"),
		seq.MustParsePattern("(a)(a, h)"),
	}
	e := &engine{minSup: 3, res: mining.NewResult(), maxItem: 8, opts: Options{BiLevel: true}}
	listK, listK1 := e.discover(members, list3, 4)

	wantK := []string{"<(a)(a, e, g)>", "<(a)(a, e, h)>", "<(a)(a, g, h)>"}
	if len(listK) != len(wantK) {
		var got []string
		for _, p := range listK {
			got = append(got, p.Letters())
		}
		t.Fatalf("frequent 4-sequences = %v, want %v", got, wantK)
	}
	for i, w := range wantK {
		if listK[i].Letters() != w {
			t.Errorf("listK[%d] = %s, want %s", i, listK[i].Letters(), w)
		}
	}
	// Example 3.5: exactly one frequent 5-sequence.
	if len(listK1) != 1 || listK1[0].Letters() != "<(a)(a, e, g, h)>" {
		t.Fatalf("frequent 5-sequences = %v, want only <(a)(a, e, g, h)>", listK1)
	}
	// Supports: <(a)(a,e,g)> is supported by CIDs 2,3,4,6,7 (Table 10);
	// <(a)(a,g,h)> by 1,3,4,6; <(a)(a,e,h)> and <(a)(a,e,g,h)> by 3,4,6
	// (Figure 7's counting array reaches 3 on (_h)).
	wantSup := map[string]int{
		"(a)(a, e, g)":    5,
		"(a)(a, e, h)":    3,
		"(a)(a, g, h)":    4,
		"(a)(a, e, g, h)": 3,
	}
	for s, w := range wantSup {
		sup, ok := e.res.Support(seq.MustParsePattern(s))
		if !ok || sup != w {
			t.Errorf("support of <%s> = %d,%v, want %d", s, sup, ok, w)
		}
	}
	// Lemma 2.2 must have fired at least once in this partition (Example
	// 3.4 skips <(a)(a, e)(c)>).
	if e.stats.Skips == 0 {
		t.Error("expected at least one skip event in the Table 9 partition")
	}
	if e.stats.FrequentHits != 3 {
		t.Errorf("frequent hits = %d, want 3", e.stats.FrequentHits)
	}
}

// TestDiscoverWithoutBiLevel: the same partition mined level by level must
// find the same sequences, with the 5-sequences coming from a second
// k-sorted database instead of the counting array.
func TestDiscoverWithoutBiLevel(t *testing.T) {
	partition := []string{
		"(a)(a, g, h)(c)",
		"(b)(a)(a, c, e, g)",
		"(a, f, g)(a, e, g, h)(c, g, h)",
		"(f)(a, f)(a, c, e, g, h)",
		"(a, f)(a, e, g, h)",
		"(a, g)(a, e, g)(g, h)",
	}
	var members []*member
	for i, body := range partition {
		members = append(members, &member{cs: seq.MustParseCustomerSeq(i+1, body)})
	}
	list3 := []seq.Pattern{
		seq.MustParsePattern("(a)(a, e)"),
		seq.MustParsePattern("(a)(a, g)"),
		seq.MustParsePattern("(a)(a, h)"),
	}
	e := &engine{minSup: 3, res: mining.NewResult(), maxItem: 8, opts: Options{BiLevel: false}}
	listK, listK1 := e.discover(members, list3, 4)
	if len(listK) != 3 || len(listK1) != 0 {
		t.Fatalf("non-bilevel discover: %d 4-seqs, %d 5-seqs", len(listK), len(listK1))
	}
	// Second pass at k=5 from the frequent 4-list.
	list5, _ := e.discover(members, listK, 5)
	if len(list5) != 1 || list5[0].Letters() != "<(a)(a, e, g, h)>" {
		t.Fatalf("5-sequences = %v", list5)
	}
}
