package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"
	"github.com/disc-mining/disc/internal/testutil"
)

// TestArenaRaceHammer is the -race proof of the aliasing rules stated in
// arena.go: several complete parallel runs — slab and pointer engines —
// mine the same database concurrently, each drawing arena bundles from
// its own run pool, and every run must reproduce the serial reference
// result. Any sharing of scratch state across engines, any flag-table
// write racing an eagerBuckets reader, or any bundle recycled while
// still referenced shows up as a race report or a diverging result.
func TestArenaRaceHammer(t *testing.T) {
	ncust, runs := 400, 4
	if testing.Short() {
		// The -short race pass still hammers the pool, on a smaller
		// database; the full-size hammer runs in the plain test pass and
		// the dedicated difftest/faultinject race jobs.
		ncust, runs = 150, 2
	}
	db := testutil.SkewedRandomDB(rand.New(rand.NewSource(77)), ncust, 14, 8, 5)
	const minSup = 4
	ref, err := (&Miner{Opts: Options{BiLevel: true, Levels: 2}}).Mine(db, minSup)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Sorted()
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for run := 0; run < runs; run++ {
		pointer := run%2 == 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := &Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: workers, PointerTree: pointer}}
			res, err := m.Mine(db, minSup)
			if err != nil {
				errs <- err
				return
			}
			got := res.Sorted()
			if len(got) != len(want) {
				errs <- errors.New("concurrent run diverged from serial reference")
				return
			}
			for i := range got {
				if !got[i].Pattern.Equal(want[i].Pattern) || got[i].Support != want[i].Support {
					errs <- errors.New("concurrent run diverged from serial reference")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestArenaStatsCounters pins the acquire/reuse accounting: a serial run
// owns exactly one private bundle, and a parallel run over a database
// with more first-level partitions than workers must recycle bundles
// through the pool (reuses > 0, and never more reuses than draws).
func TestArenaStatsCounters(t *testing.T) {
	ncust := 400
	if testing.Short() {
		ncust = 200
	}
	db := testutil.SkewedRandomDB(rand.New(rand.NewSource(77)), ncust, 14, 8, 5)
	serial := &Miner{Opts: Options{BiLevel: true, Levels: 2}}
	if _, err := serial.Mine(db, 4); err != nil {
		t.Fatal(err)
	}
	if s := serial.LastStats(); s.ArenaAcquires != 1 || s.ArenaReuses != 0 {
		t.Fatalf("serial run: acquires=%d reuses=%d, want 1/0", s.ArenaAcquires, s.ArenaReuses)
	}
	par := &Miner{Opts: Options{BiLevel: true, Levels: 2, Workers: 4}}
	if _, err := par.Mine(db, 4); err != nil {
		t.Fatal(err)
	}
	s := par.LastStats()
	if s.ArenaAcquires == 0 {
		t.Fatal("parallel run acquired no arena bundles")
	}
	if s.ArenaReuses == 0 {
		t.Fatalf("parallel run never recycled a bundle through the pool (acquires=%d)", s.ArenaAcquires)
	}
	if s.ArenaReuses > s.ArenaAcquires {
		t.Fatalf("reuses %d exceed acquires %d", s.ArenaReuses, s.ArenaAcquires)
	}
}

// TestScratchSteadyStateAllocs is the regression guard for per-round
// slice churn: once a bundle has served one partition of a given shape,
// serving the same shape again — counting array, split tree, DISC tree,
// flag tables, distinct-items scan, frequent-extension collection — must
// not touch the heap at all.
func TestScratchSteadyStateAllocs(t *testing.T) {
	s := newScratch(40, false, nil, nil)
	pats := make([]seq.Pattern, 16)
	for i := range pats {
		pats[i] = seq.NewPattern(seq.NewItemset(seq.Item(i+1)), seq.NewItemset(seq.Item(i/2+1)))
	}
	round := func() {
		arr := s.array(1)
		for i := 0; i < 64; i++ {
			arr.TouchI(seq.Item(i%37+1), int32(i%9))
			arr.TouchS(seq.Item(i%23+1), int32(i%9))
		}
		s.fi = arr.FrequentI(2, s.fi[:0])
		s.fs = arr.FrequentS(2, s.fs[:0])
		freqI, freqS := s.levelFlags(1)
		for _, it := range s.fi {
			freqI[it] = true
		}
		for _, it := range s.fs {
			freqS[it] = true
		}
		rI, rS := s.reduceFlags()
		rI[3], rS[5] = true, true
		_ = s.seenBitmap()
		tree := s.splitTree(1)
		for _, p := range pats {
			tree.Insert(p, nil)
		}
		disc := s.discTree()
		for _, p := range pats {
			disc.Insert(p, discEntry{})
		}
		for {
			if _, _, ok := disc.PopMin(); !ok {
				break
			}
		}
		s.release()
	}
	round() // cold: slabs grow
	round() // settle capacities (FrequentI buffers, bucket slots)
	if allocs := testing.AllocsPerRun(20, round); allocs != 0 {
		t.Fatalf("steady-state round allocated %.0f times, want 0", allocs)
	}
}

// TestScratchMemBudgetBreach proves the MaxMemBytes wiring to the slab
// accounting: with a budget far below any real arena footprint, the
// exact scratchBytes check in sampleMem must stop the run with a typed
// memory BudgetError — deterministically, not only when the sampled
// global heap happens to cross the limit.
func TestScratchMemBudgetBreach(t *testing.T) {
	db := testutil.SkewedRandomDB(rand.New(rand.NewSource(77)), 150, 14, 8, 5)
	m := &Miner{Opts: Options{BiLevel: true, Levels: 2, MaxMemBytes: 64}}
	_, err := m.Mine(db, 4)
	var be *mining.BudgetError
	if !errors.As(err, &be) || be.Resource != "memory" {
		t.Fatalf("Mine with a 64-byte memory budget returned %v, want a memory BudgetError", err)
	}
	if be.Used <= be.Limit {
		t.Fatalf("budget error reports used %d <= limit %d", be.Used, be.Limit)
	}
}
