package difftest

import (
	"testing"
)

// TestStorageFaultGrid: across the sampled grid, the durable-state plane
// survives its own disk — a ledger volume running out of space mid-run
// degrades durability without losing result bytes, and a ledger
// corrupted between a coordinator crash and its recovery is quarantined
// while the job mines fresh, byte-identical. This is the `make
// storagefault` harness; CI runs it under -race.
func TestStorageFaultGrid(t *testing.T) {
	for _, c := range clusterGrid(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			db, minSup := gridDB(t, c)
			if err := CheckStorageFaults(db, minSup, c.Config.Seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}
