package difftest

import (
	"strings"
	"testing"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/mining"
)

// parseFuzzDB turns fuzzer bytes into a database through the SPMF parser
// and gates it to oracle-feasible size: small customer count, short
// sequences, bounded item universe (the counting structures allocate by
// max item id).
func parseFuzzDB(text string) (mining.Database, bool) {
	db, err := data.Read(strings.NewReader(text), data.SPMF)
	if err != nil || len(db) == 0 || len(db) > 16 {
		return nil, false
	}
	for _, cs := range db {
		if cs.Len() > 10 {
			return nil, false
		}
		for _, it := range cs.Items() {
			if it < 1 || it > 512 {
				return nil, false
			}
		}
	}
	return db, true
}

func fuzzSeeds(f *testing.F) {
	f.Helper()
	f.Add("1 -1 -2", uint8(0))
	f.Add("1 5 -1 2 -1 -2 2 -1 -2", uint8(1))
	f.Add("1 2 -1 3 -1 -2\n1 -1 3 -1 -2\n2 3 -1 -2", uint8(2))
	f.Add("4 -1 4 -1 4 -1 -2 4 -1 -2 4 -1 -2", uint8(3))
}

// FuzzDISCAllVsOracle feeds fuzzer-mutated SPMF databases through the
// default DISC-all miner and the exhaustive enumeration oracle and
// demands identical result sets plus clean invariants.
func FuzzDISCAllVsOracle(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, text string, rawSup uint8) {
		db, ok := parseFuzzDB(text)
		if !ok {
			t.Skip()
		}
		minSup := 1 + int(rawSup)%len(db)
		want, err := bruteforce.Exhaustive{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.New().Mine(db, minSup)
		if err != nil {
			t.Fatalf("disc-all: %v\ndatabase:\n%s", err, Counterexample(db))
		}
		if diff := want.Diff(got); diff != "" {
			t.Fatalf("disc-all vs oracle at minsup=%d:\n%s\ndatabase:\n%s",
				minSup, diff, Counterexample(db))
		}
		if err := CheckInvariants(got, minSup, len(db)); err != nil {
			t.Fatalf("invariant: %v\ndatabase:\n%s", err, Counterexample(db))
		}
	})
}

// FuzzDynamicVsOracle is FuzzDISCAllVsOracle for Dynamic DISC-all, with
// the NRR threshold γ (including the boundary γ = 0) taken from the
// fuzzer too.
func FuzzDynamicVsOracle(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, text string, raw uint8) {
		db, ok := parseFuzzDB(text)
		if !ok {
			t.Skip()
		}
		minSup := 1 + int(raw)%len(db)
		gamma := float64(raw%8) / 4 // 0, 0.25, ..., 1.75
		want, err := bruteforce.Exhaustive{}.Mine(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		d := &core.Dynamic{Opts: core.Options{BiLevel: raw%2 == 0, Gamma: gamma, Workers: 1}}
		got, err := d.Mine(db, minSup)
		if err != nil {
			t.Fatalf("dynamic-disc-all(γ=%g): %v\ndatabase:\n%s", gamma, err, Counterexample(db))
		}
		if diff := want.Diff(got); diff != "" {
			t.Fatalf("dynamic-disc-all(γ=%g) vs oracle at minsup=%d:\n%s\ndatabase:\n%s",
				gamma, minSup, diff, Counterexample(db))
		}
		if err := CheckInvariants(got, minSup, len(db)); err != nil {
			t.Fatalf("invariant: %v\ndatabase:\n%s", err, Counterexample(db))
		}
	})
}
