// Storage-fault cluster checks: the disk-failure counterpart of the
// chaos regimes. Where CheckClusterChaos proves the fleet survives its
// own coordinator, these regimes prove the durable-state plane survives
// its own disk: a volume running out of space mid-ledger (the run must
// finish byte-identical with durability degraded, not crash), and a
// ledger corrupted between a crash and its recovery (the successor must
// quarantine the evidence and mine fresh, again byte-identical). Both
// regimes assert the fault actually fired.
package difftest

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"time"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/cluster"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
)

// CheckStorageFaults runs db through the two disk-fault regimes on both
// shardable engines. CheckClusterChaos includes these same regimes; this
// entry point lets the storage-fault harness run them alone.
func CheckStorageFaults(db mining.Database, minSup int, seed int64) error {
	const shards = 3
	for _, cfg := range clusterConfigs() {
		straight, err := cfg.mk(cfg.opts).MineContext(context.Background(), db, minSup)
		if err != nil {
			return fmt.Errorf("%s: local run failed: %w", cfg.name, err)
		}
		want := render(straight)
		req := jobs.Request{Algo: cfg.name, MinSup: minSup, Opts: cfg.opts, DB: db}

		if err := chaosLedgerENOSPC(cfg.name, req, want, shards, seed); err != nil {
			return err
		}
		if err := chaosCorruptLedgerRecover(cfg.name, req, want, shards, seed); err != nil {
			return err
		}
	}
	return nil
}

// chaosLedgerENOSPC fills the ledger volume after a small byte budget:
// ledger writes start failing with ENOSPC mid-run, the coordinator must
// trip into degraded-durability mode and keep scheduling, and the result
// must still be byte-identical to a local run — losing the disk loses
// restartability, never result bytes.
func chaosLedgerENOSPC(name string, req jobs.Request, want string, shards int, seed int64) error {
	urls, shutdown := clusterFleet(3, nil)
	defer shutdown()
	dir, err := os.MkdirTemp("", "disc-chaos-enospc-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	inj := faultinject.New(seed).Arm(faultinject.StorageENOSPC, faultinject.Spec{AfterN: 512})
	c := cluster.New(cluster.Config{
		Peers: urls, Shards: shards, ShardTimeout: time.Minute,
		Cooldown: time.Millisecond, LedgerDir: dir,
		FS: inj.FS(nil), DegradeAfter: 2, DurabilityProbe: time.Hour,
	})
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		return fmt.Errorf("%s/ledger-enospc seed=%d: a full ledger volume must not fail the run: %w", name, seed, err)
	}
	if got := render(res); got != want {
		return fmt.Errorf("%s/ledger-enospc seed=%d: result differs from local run", name, seed)
	}
	if inj.Fired(faultinject.StorageENOSPC) == 0 {
		return fmt.Errorf("%s/ledger-enospc seed=%d: the byte budget never ran out — the drill proved nothing", name, seed)
	}
	if got := c.LedgerWriteFailures(); got < 2 {
		return fmt.Errorf("%s/ledger-enospc seed=%d: %d ledger write failures counted, want >= 2", name, seed, got)
	}
	if !c.DegradedDurability() {
		return fmt.Errorf("%s/ledger-enospc seed=%d: coordinator never tripped into degraded-durability mode", name, seed)
	}
	return nil
}

// chaosCorruptLedgerRecover crashes a coordinator mid-job (stranding a
// real ledger), corrupts that ledger on disk, and requires the successor
// to quarantine it at Recover — not resubmit it, not crash — and then
// mine the job fresh to a byte-identical result.
func chaosCorruptLedgerRecover(name string, req jobs.Request, want string, shards int, seed int64) error {
	urls, shutdown := clusterFleet(3, nil)
	defer shutdown()
	dir, err := os.MkdirTemp("", "disc-chaos-rot-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	inj := faultinject.New(seed).Arm(faultinject.CoordinatorCrash,
		faultinject.Spec{AfterN: 1 + int(seed%4)})
	c1 := cluster.New(cluster.Config{
		Peers: urls, Shards: shards, ShardTimeout: time.Minute,
		Cooldown: time.Millisecond, LedgerDir: dir, Faults: inj,
	})
	if _, err := c1.Mine(context.Background(), req, nil); !errors.Is(err, cluster.ErrCoordinatorCrash) {
		return fmt.Errorf("%s/corrupt-ledger seed=%d: want ErrCoordinatorCrash, got %v", name, seed, err)
	}

	fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)
	path := cluster.LedgerPath(dir, fp)
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%s/corrupt-ledger seed=%d: the crash left no ledger to corrupt: %w", name, seed, err)
	}
	b[len(b)/2] ^= 0x01 // rot one bit between the crash and the restart
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}

	c2 := cluster.New(cluster.Config{
		Peers: urls, Shards: shards, ShardTimeout: time.Minute,
		Cooldown: time.Millisecond, LedgerDir: dir,
	})
	if n := c2.Recover(func(jobs.Request) (*jobs.Job, error) {
		return nil, fmt.Errorf("a corrupt ledger must never be resubmitted")
	}); n != 0 {
		return fmt.Errorf("%s/corrupt-ledger seed=%d: Recover resubmitted %d jobs from a corrupt ledger", name, seed, n)
	}
	if got := c2.QuarantinedLedgers(); got != 1 {
		return fmt.Errorf("%s/corrupt-ledger seed=%d: %d ledgers quarantined at recover, want 1", name, seed, got)
	}
	if _, err := os.Stat(path + checkpoint.QuarantineSuffix); err != nil {
		return fmt.Errorf("%s/corrupt-ledger seed=%d: quarantine evidence missing: %v", name, seed, err)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%s/corrupt-ledger seed=%d: corrupt ledger still holds its name (stat: %v)", name, seed, err)
	}

	res, err := c2.Mine(context.Background(), req, nil)
	if err != nil {
		return fmt.Errorf("%s/corrupt-ledger seed=%d: fresh run after quarantine failed: %w", name, seed, err)
	}
	if got := render(res); got != want {
		return fmt.Errorf("%s/corrupt-ledger seed=%d: post-quarantine result differs from local run", name, seed)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%s/corrupt-ledger seed=%d: fresh ledger not retired after the run (stat: %v)", name, seed, err)
	}
	return nil
}
