package difftest

import (
	"testing"
)

// clusterGrid strides the differential grid harder than faultGrid: every
// cluster check runs six full fleet minings (two algorithms × three
// fault regimes), each spinning up three HTTP workers.
func clusterGrid(t *testing.T) []Case {
	cases := Grid()
	stride := 8
	if testing.Short() {
		stride = 32
	}
	sampled := make([]Case, 0, len(cases)/stride+1)
	for i := 0; i < len(cases); i += stride {
		sampled = append(sampled, cases[i])
	}
	if !testing.Short() && len(sampled) < 8 {
		t.Fatalf("cluster grid has %d databases, want at least 8", len(sampled))
	}
	return sampled
}

// TestClusterEqualsLocalGrid: across the sampled grid, a job mined by a
// coordinator/worker fleet — healthy, with a worker panicking mid-shard
// (rescheduled from its checkpoint), and with a worker dropping
// connections — is byte-identical to a local run. This is the `make
// cluster` harness; CI runs it under -race.
func TestClusterEqualsLocalGrid(t *testing.T) {
	for _, c := range clusterGrid(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			db, minSup := gridDB(t, c)
			if err := CheckClusterEquivalence(db, minSup, c.Config.Seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}
