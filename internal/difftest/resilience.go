// Differential resilience checks: the fault-injection counterparts of
// Check. CheckPanicContainment proves that injected worker panics always
// surface as typed errors from Mine — zero crashes — and that runs the
// injection happens to miss stay byte-identical to the reference.
// CheckKillResume proves the checkpoint/resume loop: a run killed at an
// injected partition boundary, snapshotted through the full encode/
// decode cycle and resumed, produces a result set byte-identical to an
// uninterrupted run — for DISC-all and Dynamic DISC-all at one and many
// workers.
package difftest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"

	"github.com/disc-mining/disc/internal/checkpoint"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/mining"
)

// resilienceConfig is one engine configuration the fault-injection
// checks exercise.
type resilienceConfig struct {
	name string
	opts core.Options
	mk   func(core.Options) mining.ContextMiner
}

func resilienceConfigs() []resilienceConfig {
	workers := []int{1}
	if np := runtime.GOMAXPROCS(0); np > 1 {
		workers = append(workers, np)
	}
	var cfgs []resilienceConfig
	for _, w := range workers {
		cfgs = append(cfgs,
			resilienceConfig{
				name: fmt.Sprintf("disc-all[workers=%d]", w),
				opts: core.Options{BiLevel: true, Levels: 2, Workers: w},
				mk:   func(o core.Options) mining.ContextMiner { return &core.Miner{Opts: o} },
			},
			resilienceConfig{
				name: fmt.Sprintf("dynamic-disc-all[workers=%d]", w),
				opts: core.Options{BiLevel: true, Gamma: 0.5, Workers: w},
				mk:   func(o core.Options) mining.ContextMiner { return &core.Dynamic{Opts: o} },
			},
			// The seed pointer-tree engine must survive the same fault and
			// resume grids, byte-identical to the slab default.
			resilienceConfig{
				name: fmt.Sprintf("disc-all[pointer-tree,workers=%d]", w),
				opts: core.Options{BiLevel: true, Levels: 2, Workers: w, PointerTree: true},
				mk:   func(o core.Options) mining.ContextMiner { return &core.Miner{Opts: o} },
			})
	}
	return cfgs
}

// render serializes a result set byte-for-byte comparably.
func render(res *mining.Result) string {
	var b strings.Builder
	for _, pc := range res.Sorted() {
		fmt.Fprintf(&b, "%s=%d\n", pc.Pattern, pc.Support)
	}
	return b.String()
}

// CheckPanicContainment mines db with the WorkerPanic point armed at
// probability derived from seed on every engine configuration. Whenever
// the injection fires, Mine must return an error matching
// mining.ErrInternalInvariant (the process never crashes); whenever it
// misses, the run must succeed with the reference result set.
func CheckPanicContainment(db mining.Database, minSup int, seed int64) error {
	ref, err := (&core.Miner{Opts: core.Options{BiLevel: true, Levels: 2}}).Mine(db, minSup)
	if err != nil {
		return fmt.Errorf("reference run failed: %w", err)
	}
	want := render(ref)
	// Sweep the firing probability so both outcomes — contained panics
	// and clean misses — occur across the grid.
	for _, prob := range []float64{0.02, 0.3, 1} {
		for _, cfg := range armedConfigs(seed, prob) {
			res, err := cfg.mk(cfg.opts).MineContext(context.Background(), db, minSup)
			fired := cfg.opts.Faults.Fired(faultinject.WorkerPanic)
			switch {
			case fired > 0 && err == nil:
				return fmt.Errorf("%s prob=%g seed=%d: %d panics injected but Mine succeeded",
					cfg.name, prob, seed, fired)
			case fired > 0 && !errors.Is(err, mining.ErrInternalInvariant):
				return fmt.Errorf("%s prob=%g seed=%d: injected panic surfaced as %v, not ErrInternalInvariant",
					cfg.name, prob, seed, err)
			case fired == 0 && err != nil:
				return fmt.Errorf("%s prob=%g seed=%d: no injection yet Mine failed: %v",
					cfg.name, prob, seed, err)
			case fired == 0 && render(res) != want:
				return fmt.Errorf("%s prob=%g seed=%d: uninjected run diverged from reference",
					cfg.name, prob, seed)
			}
		}
	}
	return nil
}

// armedConfigs returns the engine configurations each armed with a
// fresh WorkerPanic injector (injectors hold per-run counters).
func armedConfigs(seed int64, prob float64) []resilienceConfig {
	cfgs := resilienceConfigs()
	for i := range cfgs {
		cfgs[i].opts.Faults = faultinject.New(seed).
			Arm(faultinject.WorkerPanic, faultinject.Spec{Prob: prob})
	}
	return cfgs
}

// CheckKillResume kills each engine configuration at a seed-derived
// partition boundary, snapshots the checkpoint through a full encode/
// decode round trip, resumes, and requires the resumed result set to be
// byte-identical to an uninterrupted run's. The killed run must fail
// with context.Canceled (a clean cooperative stop) and the decoded
// checkpoint must carry the job fingerprint intact.
func CheckKillResume(db mining.Database, minSup int, seed int64) error {
	for _, cfg := range resilienceConfigs() {
		straight, err := cfg.mk(cfg.opts).MineContext(context.Background(), db, minSup)
		if err != nil {
			return fmt.Errorf("%s: straight run failed: %w", cfg.name, err)
		}
		want := render(straight)
		for _, killAt := range []int{1 + int(seed%7), 4 + int(seed%13)} {
			ctx, cancel := context.WithCancel(context.Background())
			cp := core.NewCheckpointer()
			inj := faultinject.New(seed).
				Arm(faultinject.CtxCancel, faultinject.Spec{AfterN: killAt}).
				OnCancel(cancel)
			opts := cfg.opts
			opts.Checkpoint = cp
			opts.Faults = inj
			_, err := cfg.mk(opts).MineContext(ctx, db, minSup)
			cancel()
			if inj.Fired(faultinject.CtxCancel) == 0 {
				// The run had fewer partition boundaries than killAt and
				// completed; the checkpoint covers everything and the
				// resume below must still reproduce the result.
				if err != nil {
					return fmt.Errorf("%s killAt=%d: uninterrupted run failed: %w", cfg.name, killAt, err)
				}
			} else if !errors.Is(err, context.Canceled) {
				return fmt.Errorf("%s killAt=%d: killed run returned %v, want context.Canceled",
					cfg.name, killAt, err)
			}

			// Snapshot through the real encoding: write, integrity-check,
			// decode, seed the resumed run.
			fp := core.CheckpointFingerprint(cfg.name, cfg.opts, minSup, db)
			var buf bytes.Buffer
			if _, err := cp.File(cfg.name, minSup, fp).Write(&buf); err != nil {
				return fmt.Errorf("%s killAt=%d: checkpoint encode: %w", cfg.name, killAt, err)
			}
			f, err := checkpoint.Read(&buf)
			if err != nil {
				return fmt.Errorf("%s killAt=%d: checkpoint decode: %w", cfg.name, killAt, err)
			}
			if f.Fingerprint != fp || f.Algo != cfg.name || f.MinSup != minSup {
				return fmt.Errorf("%s killAt=%d: checkpoint identity corrupted in round trip", cfg.name, killAt)
			}

			ropts := cfg.opts
			ropts.Checkpoint = core.ResumeFrom(f)
			res, err := cfg.mk(ropts).MineContext(context.Background(), db, minSup)
			if err != nil {
				return fmt.Errorf("%s killAt=%d: resumed run failed: %w", cfg.name, killAt, err)
			}
			if render(res) != want {
				return fmt.Errorf("%s killAt=%d seed=%d: resumed result differs from straight run:\n%s",
					cfg.name, killAt, seed, straight.Diff(res))
			}
		}
	}
	return nil
}
