// Package difftest is the differential-correctness harness: it mines the
// same randomly generated databases with every registered algorithm and
// with the DISC-all family under every option combination that must not
// change the result set (bi-level on/off, partitioning levels, worker
// counts, the dynamic NRR threshold γ), and demands byte-identical result
// sets. On small inputs the reference is the exhaustive enumeration
// oracle; on larger ones the miners check each other. Every result set is
// additionally validated against algorithm-independent invariants
// (canonical patterns, support bounds, downward closure).
//
// When a mismatch is found, Shrink reduces the offending database to a
// minimal counterexample — dropping whole customers first, then
// transactions, then single items, to a fixpoint — and Counterexample
// renders it in the native text format ready to paste into a regression
// test.
package difftest

import (
	"fmt"
	"runtime"
	"strings"

	"github.com/disc-mining/disc/internal/bruteforce"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/data"
	"github.com/disc-mining/disc/internal/gen"
	"github.com/disc-mining/disc/internal/gsp"
	"github.com/disc-mining/disc/internal/mining"
	"github.com/disc-mining/disc/internal/seq"

	// Imported for their miner registrations: Variants enumerates the
	// registry, so every production algorithm must be linked in.
	_ "github.com/disc-mining/disc/internal/prefixspan"
	_ "github.com/disc-mining/disc/internal/spade"
	_ "github.com/disc-mining/disc/internal/spam"
)

// Variant is one mining configuration under test. New must return a fresh
// miner on every call: DISC miners carry per-run statistics, so instances
// are never shared between concurrent checks.
type Variant struct {
	Name string
	New  func() mining.Miner
}

// Variants enumerates every configuration that must produce identical
// results: all registered algorithms, the DISC-all option matrix
// (BiLevel × Levels ∈ {-1, 1, 2} × Workers ∈ {1, GOMAXPROCS}), a Dynamic
// DISC-all γ sweep including the newly representable γ = 0, and GSP's
// linear-scan counting path.
func Variants() []Variant {
	var vs []Variant
	for _, name := range mining.RegisteredNames() {
		name := name
		vs = append(vs, Variant{Name: name, New: func() mining.Miner {
			m, err := mining.NewRegistered(name)
			if err != nil {
				panic(err) // unreachable: the name came from the registry
			}
			return m
		}})
	}
	workers := []int{1}
	if np := runtime.GOMAXPROCS(0); np > 1 {
		workers = append(workers, np)
	}
	for _, bi := range []bool{false, true} {
		for _, levels := range []int{-1, 1, 2} {
			for _, w := range workers {
				opts := core.Options{BiLevel: bi, Levels: levels, Workers: w}
				vs = append(vs, Variant{
					Name: fmt.Sprintf("disc-all[bilevel=%t,levels=%d,workers=%d]", bi, levels, w),
					New:  func() mining.Miner { return &core.Miner{Opts: opts} },
				})
			}
		}
	}
	for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1.5} {
		for _, w := range workers {
			opts := core.Options{BiLevel: true, Gamma: gamma, Workers: w}
			vs = append(vs, Variant{
				Name: fmt.Sprintf("dynamic-disc-all[gamma=%g,workers=%d]", gamma, w),
				New:  func() mining.Miner { return &core.Dynamic{Opts: opts} },
			})
		}
	}
	// The slab-vs-pointer tree axis: the engine on the seed pointer-per-node
	// AVL must agree byte-for-byte with the default slab tree under both the
	// static and dynamic algorithms, serially and parallel.
	for _, w := range workers {
		ptrStatic := core.Options{BiLevel: true, Levels: 2, Workers: w, PointerTree: true}
		vs = append(vs, Variant{
			Name: fmt.Sprintf("disc-all[pointer-tree,workers=%d]", w),
			New:  func() mining.Miner { return &core.Miner{Opts: ptrStatic} },
		})
		ptrDyn := core.Options{BiLevel: true, Gamma: 0.5, Workers: w, PointerTree: true}
		vs = append(vs, Variant{
			Name: fmt.Sprintf("dynamic-disc-all[pointer-tree,workers=%d]", w),
			New:  func() mining.Miner { return &core.Dynamic{Opts: ptrDyn} },
		})
	}
	vs = append(vs, Variant{
		Name: "gsp[nohashtree]",
		New:  func() mining.Miner { return gsp.Miner{NoHashTree: true} },
	})
	return vs
}

// Case is one cell of the differential grid: a generator shape plus a
// relative support threshold. Mutate additionally perturbs the generated
// database through gen.Mutate, reaching shapes the statistical process
// never emits.
type Case struct {
	Name   string
	Config gen.Config
	Frac   float64
	Mutate bool
}

// Grid returns the differential test grid: generator shapes crossed over
// ncust, slen, tlen, nitems, minsup fraction and seed — 128 databases.
// Even-seed cells run through gen.Mutate.
func Grid() []Case {
	var cases []Case
	for _, nc := range []int{25, 60} {
		for _, sl := range []float64{2.5, 5} {
			for _, tl := range []float64{1.25, 2} {
				for _, ni := range []int{10, 40} {
					for _, frac := range []float64{0.15, 0.4} {
						for seed := int64(1); seed <= 4; seed++ {
							cases = append(cases, Case{
								Name: fmt.Sprintf("ncust=%d/slen=%g/tlen=%g/nitems=%d/frac=%g/seed=%d",
									nc, sl, tl, ni, frac, seed),
								Config: gen.Config{
									NCust: nc, SLen: sl, TLen: tl, NItems: ni,
									SeqPatLen: 2, NSeqPatterns: 30, NLitPatterns: 60,
									Seed: seed,
								},
								Frac:   frac,
								Mutate: seed%2 == 0,
							})
						}
					}
				}
			}
		}
	}
	return cases
}

// Mismatch reports a disagreement: the result sets of two variants (or of
// a variant and the oracle) differ on DB, or a variant's result violates
// an invariant or errors. Its Error text embeds the database in native
// format via Counterexample.
type Mismatch struct {
	Ref, Got string // variant names ("" Ref when Got itself is invalid)
	MinSup   int
	DB       mining.Database
	Detail   string
}

// Error implements error.
func (m *Mismatch) Error() string {
	head := fmt.Sprintf("difftest: %s disagrees with %s at minsup=%d", m.Got, m.Ref, m.MinSup)
	if m.Ref == "" {
		head = fmt.Sprintf("difftest: %s is invalid at minsup=%d", m.Got, m.MinSup)
	}
	return fmt.Sprintf("%s:\n%s\ndatabase (%d customers, native format):\n%s",
		head, m.Detail, len(m.DB), Counterexample(m.DB))
}

// oracleMaxLen bounds the customer-sequence length the exhaustive oracle
// is asked to enumerate (its cost is exponential in it).
const oracleMaxLen = 12

// OracleFeasible reports whether db is small enough for the exhaustive
// enumeration oracle to be the reference.
func OracleFeasible(db mining.Database) bool {
	if len(db) > 40 {
		return false
	}
	for _, cs := range db {
		if cs.Len() > oracleMaxLen {
			return false
		}
	}
	return true
}

// Check mines db at minSup with every Variants() configuration and
// returns the first disagreement, or nil when all agree and every result
// set satisfies the invariants. On oracle-feasible databases the
// reference is the exhaustive oracle; otherwise the variants are compared
// against each other (first one is the reference).
func Check(db mining.Database, minSup int) *Mismatch {
	return CheckVariants(db, minSup, Variants())
}

// CheckVariants is Check over an explicit variant list — the shrinking
// loop uses it with just the two disagreeing configurations to keep the
// fail predicate cheap.
func CheckVariants(db mining.Database, minSup int, vs []Variant) *Mismatch {
	var ref *mining.Result
	refName := ""
	if OracleFeasible(db) {
		res, err := bruteforce.Exhaustive{}.Mine(db, minSup)
		if err != nil {
			return &Mismatch{Got: "exhaustive-oracle", MinSup: minSup, DB: db,
				Detail: "oracle error: " + err.Error()}
		}
		ref, refName = res, "exhaustive-oracle"
	}
	for _, v := range vs {
		res, err := v.New().Mine(db, minSup)
		if err != nil {
			return &Mismatch{Got: v.Name, MinSup: minSup, DB: db,
				Detail: "mine error: " + err.Error()}
		}
		if err := CheckInvariants(res, minSup, len(db)); err != nil {
			return &Mismatch{Got: v.Name, MinSup: minSup, DB: db,
				Detail: "invariant violated: " + err.Error()}
		}
		if ref == nil {
			ref, refName = res, v.Name
			continue
		}
		if diff := ref.Diff(res); diff != "" {
			return &Mismatch{Ref: refName, Got: v.Name, MinSup: minSup, DB: db, Detail: diff}
		}
	}
	return nil
}

// CheckInvariants validates algorithm-independent properties of a result
// set: every pattern is canonical and non-empty, every support lies in
// [minSup, dbSize], and the set is downward closed — each (k-1)-item
// subsequence of a reported pattern is reported too, with at least the
// superpattern's support.
func CheckInvariants(res *mining.Result, minSup, dbSize int) error {
	for _, pc := range res.Sorted() {
		p := pc.Pattern
		if p.Len() == 0 {
			return fmt.Errorf("empty pattern reported")
		}
		items := make([]seq.Item, p.Len())
		tnos := make([]int32, p.Len())
		for i := 0; i < p.Len(); i++ {
			items[i], tnos[i] = p.ItemAt(i), p.TNoAt(i)
		}
		if _, err := seq.PatternFromPairs(items, tnos); err != nil {
			return fmt.Errorf("non-canonical pattern %s: %w", p, err)
		}
		if pc.Support < minSup || pc.Support > dbSize {
			return fmt.Errorf("pattern %s: support %d outside [%d, %d]",
				p, pc.Support, minSup, dbSize)
		}
		if p.Len() == 1 {
			continue
		}
		for i := 0; i < p.Len(); i++ {
			sub := p.DropItem(i)
			ssup, ok := res.Support(sub)
			if !ok {
				return fmt.Errorf("downward closure violated: %s reported but its subsequence %s is not", p, sub)
			}
			if ssup < pc.Support {
				return fmt.Errorf("anti-monotonicity violated: %s has support %d > subsequence %s with %d",
					p, pc.Support, sub, ssup)
			}
		}
	}
	return nil
}

// Shrink minimizes a database that makes fail return true: it repeatedly
// drops whole customers, then transactions, then single items, restarting
// after every successful reduction until no single removal keeps the
// predicate failing. fail must be deterministic. The input database is
// not modified; if fail(db) is false, db is returned unchanged.
func Shrink(db mining.Database, fail func(mining.Database) bool) mining.Database {
	if !fail(db) {
		return db
	}
	cur := append(mining.Database(nil), db...)
	for changed := true; changed; {
		changed = false
		// Pass 1: drop customers.
		for i := 0; i < len(cur); i++ {
			cand := make(mining.Database, 0, len(cur)-1)
			cand = append(append(cand, cur[:i]...), cur[i+1:]...)
			if fail(cand) {
				cur, changed = cand, true
				i--
			}
		}
		// Pass 2: drop transactions.
		for c := 0; c < len(cur); c++ {
			for t := 0; t < cur[c].NTrans(); t++ {
				if cand := dropTrans(cur, c, t); fail(cand) {
					cur, changed = cand, true
					if c >= len(cur) { // customer vanished
						break
					}
					t--
				}
			}
		}
		// Pass 3: drop single items.
		for c := 0; c < len(cur); c++ {
			for t := 0; t < cur[c].NTrans(); t++ {
				for i := 0; i < len(cur[c].Transaction(t)); i++ {
					if cand := dropItem(cur, c, t, i); fail(cand) {
						cur, changed = cand, true
						if c >= len(cur) || t >= cur[c].NTrans() {
							break
						}
						i--
					}
				}
			}
		}
	}
	return cur
}

// rebuild replaces customer c of db with one built from sets (dropping it
// when sets is empty), sharing all other customers.
func rebuild(db mining.Database, c int, sets []seq.Itemset) mining.Database {
	out := make(mining.Database, 0, len(db))
	out = append(out, db[:c]...)
	if len(sets) > 0 {
		out = append(out, seq.NewCustomerSeq(db[c].CID, sets...))
	}
	return append(out, db[c+1:]...)
}

func dropTrans(db mining.Database, c, t int) mining.Database {
	src := db[c].Itemsets()
	sets := make([]seq.Itemset, 0, len(src)-1)
	sets = append(append(sets, src[:t]...), src[t+1:]...)
	return rebuild(db, c, sets)
}

func dropItem(db mining.Database, c, t, i int) mining.Database {
	src := db[c].Itemsets()
	sets := make([]seq.Itemset, len(src))
	copy(sets, src)
	tx := src[t]
	if len(tx) == 1 {
		return dropTrans(db, c, t)
	}
	nt := make(seq.Itemset, 0, len(tx)-1)
	nt = append(append(nt, tx[:i]...), tx[i+1:]...)
	sets[t] = nt
	return rebuild(db, c, sets)
}

// Counterexample renders db in the native text format, one customer per
// line, ready to paste into a regression test or a file for
// cmd/discmine.
func Counterexample(db mining.Database) string {
	var b strings.Builder
	if err := data.Write(&b, db, data.Native); err != nil {
		return "unrenderable database: " + err.Error()
	}
	return b.String()
}
