// Chaos cluster checks: the self-healing counterpart of
// CheckClusterEquivalence. Where the cluster grid proves the fleet
// survives worker faults, CheckClusterChaos proves the fleet survives
// its own coordinator: a coordinator killed at a ledger transition whose
// successor resumes only the unfinished shards, a registered worker
// dying with a shard in hand (heartbeat-TTL expiry must reschedule it
// immediately), and a straggler that never answers (hedged dispatch must
// race a second attempt and keep exactly one). Every regime must end
// byte-identical to a local run, and every regime asserts its fault
// actually fired — a chaos drill that cannot show its fault happened
// proves nothing.
package difftest

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"time"

	"github.com/disc-mining/disc/internal/cluster"
	"github.com/disc-mining/disc/internal/core"
	"github.com/disc-mining/disc/internal/faultinject"
	"github.com/disc-mining/disc/internal/jobs"
	"github.com/disc-mining/disc/internal/mining"
)

// CheckClusterChaos runs db through the coordinator-side failure
// regimes — and the disk-fault regimes of CheckStorageFaults — on both
// shardable engines and verifies byte-identical results plus fired-fault
// evidence for each.
func CheckClusterChaos(db mining.Database, minSup int, seed int64) error {
	const shards = 3
	for _, cfg := range clusterConfigs() {
		straight, err := cfg.mk(cfg.opts).MineContext(context.Background(), db, minSup)
		if err != nil {
			return fmt.Errorf("%s: local run failed: %w", cfg.name, err)
		}
		want := render(straight)
		req := jobs.Request{Algo: cfg.name, MinSup: minSup, Opts: cfg.opts, DB: db}

		if err := chaosCoordinatorCrash(cfg.name, req, want, shards, seed); err != nil {
			return err
		}
		if err := chaosTTLExpiry(cfg.name, req, want, shards, seed); err != nil {
			return err
		}
		if err := chaosStragglerHedge(cfg.name, req, want, shards, seed); err != nil {
			return err
		}
		if err := chaosLedgerENOSPC(cfg.name, req, want, shards, seed); err != nil {
			return err
		}
		if err := chaosCorruptLedgerRecover(cfg.name, req, want, shards, seed); err != nil {
			return err
		}
	}
	return nil
}

// chaosCoordinatorCrash kills the coordinator (in-process: the
// CoordinatorCrash point) at a seed-derived ledger transition, then
// restarts a fresh coordinator over the surviving ledger and requires
// the resumed job to be byte-identical, the ledger to be retired, and
// only unfinished shards to have been re-dispatched.
func chaosCoordinatorCrash(name string, req jobs.Request, want string, shards int, seed int64) error {
	urls, shutdown := clusterFleet(3, nil)
	defer shutdown()
	dir, err := os.MkdirTemp("", "disc-chaos-ledger-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	inj := faultinject.New(seed).Arm(faultinject.CoordinatorCrash,
		faultinject.Spec{AfterN: 1 + int(seed%4)})
	c1 := cluster.New(cluster.Config{
		Peers: urls, Shards: shards, ShardTimeout: time.Minute,
		Cooldown: time.Millisecond, LedgerDir: dir, Faults: inj,
	})
	if _, err := c1.Mine(context.Background(), req, nil); !errors.Is(err, cluster.ErrCoordinatorCrash) {
		return fmt.Errorf("%s/coordinator-crash seed=%d: want ErrCoordinatorCrash, got %v", name, seed, err)
	}
	if got := inj.Fired(faultinject.CoordinatorCrash); got != 1 {
		return fmt.Errorf("%s/coordinator-crash seed=%d: crash fired %d times, want 1", name, seed, got)
	}

	c2 := cluster.New(cluster.Config{
		Peers: urls, Shards: shards, ShardTimeout: time.Minute, Cooldown: time.Millisecond, LedgerDir: dir,
	})
	res, err := c2.Mine(context.Background(), req, nil)
	if err != nil {
		return fmt.Errorf("%s/coordinator-crash seed=%d: resumed run failed: %w", name, seed, err)
	}
	if got := render(res); got != want {
		return fmt.Errorf("%s/coordinator-crash seed=%d: resumed result differs from local run", name, seed)
	}
	fp := core.CheckpointFingerprint(req.Algo, req.Opts, req.MinSup, req.DB)
	if _, err := os.Stat(cluster.LedgerPath(dir, fp)); !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%s/coordinator-crash seed=%d: ledger not retired after resume (stat: %v)", name, seed, err)
	}
	return nil
}

// chaosTTLExpiry registers a worker that hangs every shard it receives
// and never heartbeats again: the coordinator must cancel its in-flight
// dispatch the moment the heartbeat TTL expires and reschedule onto the
// healthy static workers, well before the shard timeout.
func chaosTTLExpiry(name string, req jobs.Request, want string, shards int, seed int64) error {
	hangInj := faultinject.New(seed).Arm(faultinject.ShardHang, faultinject.Spec{Prob: 1})
	urls, shutdown := clusterFleet(3, map[int]*faultinject.Injector{0: hangInj})
	defer shutdown()

	// Workers 1 and 2 are static peers; the hanging worker 0 joins by
	// registration only and goes silent after one beat.
	c := cluster.New(cluster.Config{
		Peers: urls[1:], Shards: shards, ShardTimeout: time.Minute,
		HeartbeatTTL: 200 * time.Millisecond, Cooldown: time.Millisecond,
	})
	c.Register(urls[0])
	start := time.Now()
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		return fmt.Errorf("%s/ttl-expiry seed=%d: run failed: %w", name, seed, err)
	}
	if got := render(res); got != want {
		return fmt.Errorf("%s/ttl-expiry seed=%d: result differs from local run", name, seed)
	}
	if hangInj.Fired(faultinject.ShardHang) == 0 {
		return fmt.Errorf("%s/ttl-expiry seed=%d: the registered worker never received (and hung) a shard", name, seed)
	}
	if c.ExpiredDispatches() == 0 {
		return fmt.Errorf("%s/ttl-expiry seed=%d: hung dispatch was not canceled by TTL expiry", name, seed)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		return fmt.Errorf("%s/ttl-expiry seed=%d: reschedule took %v — the shard waited out the timeout", name, seed, elapsed)
	}
	return nil
}

// chaosStragglerHedge makes one static worker hang forever: the
// latency-quantile hedge must race a second dispatch, the winning reply
// is kept, and each shard counts exactly once (no double-merge — the
// byte-identity check would catch duplicated support counts too).
func chaosStragglerHedge(name string, req jobs.Request, want string, shards int, seed int64) error {
	hangInj := faultinject.New(seed).Arm(faultinject.ShardHang, faultinject.Spec{Prob: 1})
	urls, shutdown := clusterFleet(3, map[int]*faultinject.Injector{0: hangInj})
	defer shutdown()

	c := cluster.New(cluster.Config{
		Peers: urls, Shards: shards, ShardTimeout: time.Minute, Cooldown: time.Millisecond,
		HedgeQuantile: 0.95, HedgeMinDelay: 50 * time.Millisecond,
	})
	res, err := c.Mine(context.Background(), req, nil)
	if err != nil {
		return fmt.Errorf("%s/straggler-hedge seed=%d: run failed: %w", name, seed, err)
	}
	if got := render(res); got != want {
		return fmt.Errorf("%s/straggler-hedge seed=%d: hedged result differs from local run", name, seed)
	}
	if hangInj.Fired(faultinject.ShardHang) == 0 {
		return fmt.Errorf("%s/straggler-hedge seed=%d: the straggler never received a shard", name, seed)
	}
	if c.HedgesLaunched() == 0 {
		return fmt.Errorf("%s/straggler-hedge seed=%d: straggler held a shard but no hedge launched", name, seed)
	}
	return nil
}
