package difftest

import (
	"math/rand"
	"testing"

	"github.com/disc-mining/disc/internal/gen"
	"github.com/disc-mining/disc/internal/mining"
)

// faultGrid samples the differential grid for the fault-injection
// checks: every resilience run mines each database many times (engine
// configurations × probabilities × kill points), so a stride keeps the
// full sweep affordable under -race while still crossing every generator
// shape. Short mode strides harder.
func faultGrid(t *testing.T) []Case {
	cases := Grid()
	stride := 4
	if testing.Short() {
		stride = 16
	}
	sampled := make([]Case, 0, len(cases)/stride+1)
	for i := 0; i < len(cases); i += stride {
		sampled = append(sampled, cases[i])
	}
	if !testing.Short() && len(sampled) < 16 {
		t.Fatalf("fault grid has %d databases, want at least 16", len(sampled))
	}
	return sampled
}

func gridDB(t *testing.T, c Case) (mining.Database, int) {
	t.Helper()
	db, err := gen.Generate(c.Config)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mutate {
		db = gen.Mutate(rand.New(rand.NewSource(c.Config.Seed)), db)
	}
	if len(db) == 0 {
		t.Skip("mutated to empty")
	}
	return db, mining.AbsSupport(c.Frac, len(db))
}

// TestFaultInjectionPanicGrid: across the sampled grid, injected worker
// panics always surface as ErrInternalInvariant errors — the process
// never crashes — and runs the injection misses stay byte-identical to
// the reference. This is the `make faultinject` harness; CI runs it
// under -race.
func TestFaultInjectionPanicGrid(t *testing.T) {
	for _, c := range faultGrid(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			db, minSup := gridDB(t, c)
			if err := CheckPanicContainment(db, minSup, c.Config.Seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFaultInjectionKillResumeGrid: across the sampled grid, a run
// killed at an injected partition boundary, checkpointed through the
// versioned encoding and resumed, is byte-identical to a straight run —
// for DISC-all and Dynamic DISC-all at one and many workers.
func TestFaultInjectionKillResumeGrid(t *testing.T) {
	for _, c := range faultGrid(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			db, minSup := gridDB(t, c)
			if err := CheckKillResume(db, minSup, 3*c.Config.Seed+1); err != nil {
				t.Fatal(err)
			}
		})
	}
}
